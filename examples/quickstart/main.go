// Quickstart: the paper's §1 enabling example, end to end.
//
// It builds the four-clause formula F, solves it twice — once plainly and
// once with enabling EC — and then simulates every single-variable
// elimination against both solutions, reproducing the S-versus-E contrast
// that motivates the whole methodology.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ilpec"
)

func main() {
	// F = (v1 + v3' + v5')(v2 + v3' + v5')(v2 + v4 + v5)(v3' + v4')
	f := ilpec.NewFormula(
		[]int{1, -3, -5},
		[]int{2, -3, -5},
		[]int{2, 4, 5},
		[]int{-3, -4},
	)
	fmt.Println("F =", f)

	// The paper's solution S = {0,1,1,0,0}: perfectly valid, but brittle.
	plain := ilpec.Assignment{ilpec.Unassigned, ilpec.False, ilpec.True, ilpec.True, ilpec.False, ilpec.False}
	if !plain.Satisfies(f) {
		log.Fatal("transcription error: S does not satisfy F")
	}
	fmt.Println("\npaper's S:        ", plain)

	// Enabling EC (§5): every clause 2-satisfied or safely flip-supported.
	sol, err := ilpec.EnableDomain(ilpec.CNFDomain(), f, ilpec.DomainEnableOptions{Hard: true})
	if err != nil {
		log.Fatal(err)
	}
	enabled := sol.(ilpec.Assignment)
	fmt.Println("enabled solution: ", enabled)
	rep := ilpec.VerifyFlexibility(f, enabled, 2)
	fmt.Printf("flexibility: %d/%d clauses (k-satisfied %d, flip-supported %d)\n",
		rep.Flexible(), rep.Total, rep.KSatisfied, rep.Supported)

	// The §1 experiment: eliminate each variable in turn and see whether
	// the solution absorbs the change with only local restructuring.
	fmt.Println("\nelimination survival (ok = absorbed, flips = local repairs):")
	fmt.Println("  var   paper's S          enabled")
	sUntouched, eUntouched := 0, 0
	for v := 1; v <= f.NumVars; v++ {
		rp := ilpec.SimulateElimination(f, plain, v)
		re := ilpec.SimulateElimination(f, enabled, v)
		if rp.OK && rp.Flips == 0 {
			sUntouched++
		}
		if re.OK && re.Flips == 0 {
			eUntouched++
		}
		fmt.Printf("  v%-4d ok=%-5v flips=%-3d ok=%-5v flips=%d\n",
			v, rp.OK, rp.Flips, re.OK, re.Flips)
	}

	ps, pt := ilpec.EliminationSurvival(f, plain)
	es, et := ilpec.EliminationSurvival(f, enabled)
	fmt.Printf("\npaper's S survives %d/%d eliminations (%d untouched);\n", ps, pt, sUntouched)
	fmt.Printf("the enabled solution survives %d/%d (%d untouched)\n", es, et, eUntouched)
}
