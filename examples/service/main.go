// Service walkthrough: the EC session service end to end, in process.
//
// It starts the same HTTP/JSON server cmd/ecserve runs, then plays the
// role of several clients: three sessions over the same design absorb a
// stream of engineering changes. The run shows the three amortization
// mechanisms at work:
//
//   - batching: each session posts 3 changes but pays for ONE re-solve;
//   - the solve cache: sessions 2 and 3 repeat session 1's subproblems
//     and are answered without touching the solver;
//   - the relax fast-path: a relaxing-only batch costs no solver call.
//
// Each session also serves its solves through a persistent kernel
// instance (see README "Instance lifecycle"); the closing metrics dump
// shows the instance_* counters alongside the cache counters.
//
// It closes with the durability demo: a session created against a
// file-backed store (what `ecserve -data-dir` uses) survives a full
// service restart — the fresh server lists it and answers with the
// identical solution.
//
// Every request is printed as the equivalent curl command, so this doubles
// as the HTTP API tour for the README.
//
// Run with: go run ./examples/service
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"

	"ilpec"
)

func main() {
	svc := ilpec.NewService(ilpec.ServiceOptions{})
	defer svc.Close()
	ts := httptest.NewServer(ilpec.NewServiceHandler(svc))
	defer ts.Close()
	fmt.Println("ecserve-equivalent listening at", ts.URL)

	// The change stream every session will absorb: two tightening clauses
	// plus a new variable (batch 1), then a relaxing-only batch.
	tightening := `{"changes": [
	  {"kind": "add-clause", "lits": [-2, 3]},
	  {"kind": "add-variable"},
	  {"kind": "add-clause", "lits": [1, 7]}
	]}`
	relaxing := `{"changes": [
	  {"kind": "add-variable"},
	  {"kind": "remove-clause", "index": 0}
	]}`

	for i := 0; i < 3; i++ {
		// 1. Create a session over the design (a 6-variable CNF).
		id := fmt.Sprint(post(ts.URL+"/v1/sessions", `{
		  "clauses": [[1,2],[-1,3],[2,4],[-3,-4,5],[5,6]],
		  "strategy": "fast"
		}`, "id"))
		fmt.Printf("\n== session %s ==\n", id)
		base := ts.URL + "/v1/sessions/" + id

		// 2. Initial solve (cached for sessions 2 and 3).
		solve := postRaw(base+"/solve", "")
		fmt.Printf("initial: status=%v cached=%v dont_cares=%v\n",
			solve["status"], solve["cached"], solve["dont_cares"])

		// 3. Queue three changes, then resolve them in ONE fast-EC pass.
		post(base+"/changes", tightening, "pending")
		solve = postRaw(base+"/solve", "")
		fmt.Printf("batch:   status=%v batched=%v cached=%v preserved=%.2f\n",
			solve["status"], solve["batched"], solve["cached"], solve["preserved"])

		// 4. A relaxing-only batch never runs the solver.
		post(base+"/changes", relaxing, "pending")
		solve = postRaw(base+"/solve", "")
		fmt.Printf("relax:   status=%v batched=%v\n", solve["status"], solve["batched"])

		// 5. Audit the flexibility of what survived.
		flex := get(base + "/flex?k=2")
		fmt.Printf("flex:    %v/%v clauses flexible\n", flex["flexible"], flex["total"])
	}

	// The service-wide counters tell the amortization story.
	m := svc.Metrics()
	fmt.Printf("\n== metrics (GET /v1/metrics) ==\n")
	fmt.Printf("sessions=%d solves=%d solver_runs=%d cache_hits=%d relax_fast_paths=%d\n",
		m.SessionsCreated, m.Solves, m.SolverRuns, m.CacheHits, m.RelaxFastPaths)
	fmt.Printf("changes_queued=%d batches=%d (each batch = one EC pass)\n",
		m.ChangesQueued, m.Batches)
	fmt.Printf("instance_reuses=%d instance_rebuilds=%d instance_rows_delta=%d reseparated_rows=%d\n",
		m.InstanceReuses, m.InstanceRebuilds, m.InstanceRowsDelta, m.ReseparatedRows)
	if m.CacheHits == 0 || m.Batches >= m.ChangesQueued {
		log.Fatal("amortization failed: expected cache hits and coalesced batches")
	}
	if m.InstanceRebuilds == 0 {
		log.Fatal("instance lifecycle failed: no session ever built a persistent instance")
	}

	// ---- persistence: the session survives a process restart ----------
	//
	// The same server, now with a durable store (what `ecserve -data-dir`
	// wires up): every queued change is journaled before it is
	// acknowledged and snapshots are cut periodically, so killing the
	// process loses nothing. Here we "restart" by closing the whole
	// service and building a fresh one over the surviving directory.
	fmt.Printf("\n== restart-survives-session demo (ecserve -data-dir) ==\n")
	dataDir, err := os.MkdirTemp("", "ecserve-demo-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dataDir)
	st, err := ilpec.NewFileSessionStore(dataDir)
	if err != nil {
		log.Fatal(err)
	}
	dsvc := ilpec.NewService(ilpec.ServiceOptions{Store: st})
	ts2 := httptest.NewServer(ilpec.NewServiceHandler(dsvc))
	id := fmt.Sprint(post(ts2.URL+"/v1/sessions", `{
	  "clauses": [[1,2],[-1,3],[2,4],[-3,-4,5],[5,6]]
	}`, "id"))
	base := ts2.URL + "/v1/sessions/" + id
	postRaw(base+"/solve", "")
	post(base+"/changes", tightening, "pending")
	solved := postRaw(base+"/solve", "")
	fmt.Printf("pre-restart:  solution=%v\n", solved["solution"])

	// Kill the process (graceful here; a crash only costs the torn tail
	// of one unacknowledged append — see README "Persistence").
	ts2.Close()
	dsvc.Close()

	st2, err := ilpec.NewFileSessionStore(dataDir)
	if err != nil {
		log.Fatal(err)
	}
	dsvc2 := ilpec.NewService(ilpec.ServiceOptions{Store: st2})
	defer dsvc2.Close()
	ts3 := httptest.NewServer(ilpec.NewServiceHandler(dsvc2))
	defer ts3.Close()
	listing := get(ts3.URL + "/v1/sessions")
	fmt.Printf("post-restart: sessions=%v (recovered from %s)\n", listing["sessions"], dataDir)
	recovered := postRaw(ts3.URL+"/v1/sessions/"+id+"/solve", "")
	fmt.Printf("post-restart: status=%v solution=%v\n", recovered["status"], recovered["solution"])
	if fmt.Sprint(recovered["solution"]) != fmt.Sprint(solved["solution"]) {
		log.Fatal("persistence failed: solution diverged across the restart")
	}
	fmt.Println("the session survived the restart with an identical solution")
}

// post sends a JSON body, echoes the curl equivalent, and returns field.
func post(url, body, field string) any {
	return request("POST", url, body)[field]
}

func postRaw(url, body string) map[string]any { return request("POST", url, body) }

func get(url string) map[string]any { return request("GET", url, "") }

func request(method, url, body string) map[string]any {
	if body != "" {
		fmt.Printf("$ curl -X %s %s -d '%s'\n", method, url, compact(body))
	} else if method != "GET" {
		fmt.Printf("$ curl -X %s %s\n", method, url)
	} else {
		fmt.Printf("$ curl %s\n", url)
	}
	req, err := http.NewRequest(method, url, bytes.NewReader([]byte(body)))
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 300 {
		log.Fatalf("%s %s: %d %s", method, url, resp.StatusCode, raw)
	}
	var out map[string]any
	if err := json.Unmarshal(raw, &out); err != nil {
		log.Fatalf("bad response %q: %v", raw, err)
	}
	return out
}

func compact(s string) string {
	var buf bytes.Buffer
	if err := json.Compact(&buf, []byte(s)); err != nil {
		return s
	}
	return buf.String()
}
