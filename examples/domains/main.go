// Command domains demonstrates the pluggable problem-domain API: it
// implements minimum-weight VERTEX COVER as a custom ilpec.Domain,
// registers it in the process-wide registry, and drives it through the
// same generic EC engine and session service that power the built-in
// CNF, coloring, scheduling, and partitioning domains — without writing
// any EC machinery of its own.
//
// The adapter supplies exactly the hooks of the Domain contract:
//
//   - Encode/Decode/WarmStart: the problem ↔ 0-1 ILP translation;
//   - ApplyChanges/Tightening: the specification-change model;
//   - AffectedRegion: the fast-EC sub-instance (uncovered-edge endpoints,
//     escalating through graph neighborhoods);
//   - PreserveTerms: the agreement-maximizing objective;
//   - EnableTerms: slack rewards (double-covered edges);
//   - ParseProblem/ParseChange/Render and their inverses RenderProblem/
//     RenderChange/ParseSolution: the HTTP wire codecs, which also make
//     sessions of this domain durable (journal + snapshots) for free.
//
// Run it with: go run ./examples/domains
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"strings"

	"ilpec"
)

// ---- the custom domain: minimum vertex cover ------------------------------

// coverProblem is a graph over vertices 1..N with unit vertex costs.
type coverProblem struct {
	N     int
	Edges [][2]int
}

// coverSolution marks the chosen vertices (index 0 unused).
type coverSolution []bool

// coverChange is one specification change: "add-edge" (tightening — the
// new edge may be uncovered) or "remove-edge" (relaxing).
type coverChange struct {
	Kind string `json:"kind"`
	U    int    `json:"u"`
	V    int    `json:"v"`
}

type coverDomain struct{}

func (coverDomain) Name() string { return "vcover" }

func (coverDomain) Validate(p any) error {
	cp := p.(*coverProblem)
	for _, e := range cp.Edges {
		if e[0] < 1 || e[1] < 1 || e[0] > cp.N || e[1] > cp.N || e[0] == e[1] {
			return fmt.Errorf("vcover: bad edge %v", e)
		}
	}
	return nil
}

func (coverDomain) CloneProblem(p any) any {
	cp := p.(*coverProblem)
	return &coverProblem{N: cp.N, Edges: append([][2]int(nil), cp.Edges...)}
}

func (coverDomain) ProblemSize(p any) (int, int) {
	cp := p.(*coverProblem)
	return cp.N, len(cp.Edges)
}

func (coverDomain) ParseProblem(spec json.RawMessage) (any, error) {
	var req struct {
		Vertices int      `json:"vertices"`
		Edges    [][2]int `json:"edges"`
	}
	if err := json.Unmarshal(spec, &req); err != nil {
		return nil, err
	}
	return &coverProblem{N: req.Vertices, Edges: req.Edges}, nil
}

// RenderProblem is the ParseProblem inverse; the session store snapshots
// problems through it.
func (coverDomain) RenderProblem(p any) any {
	cp := p.(*coverProblem)
	return map[string]any{"vertices": cp.N, "edges": cp.Edges}
}

func (coverDomain) ParseChange(spec json.RawMessage) (any, error) {
	var c coverChange
	if err := json.Unmarshal(spec, &c); err != nil {
		return nil, err
	}
	c.Kind = strings.ToLower(c.Kind)
	if c.Kind != "add-edge" && c.Kind != "remove-edge" {
		return nil, fmt.Errorf("vcover: unknown kind %q", c.Kind)
	}
	return c, nil
}

// RenderChange is the ParseChange inverse; the session store journals
// queued changes through it.
func (coverDomain) RenderChange(change any) any { return change.(coverChange) }

func (d coverDomain) ApplyChanges(p any, changes []any) (any, error) {
	out := d.CloneProblem(p).(*coverProblem)
	for _, raw := range changes {
		c := raw.(coverChange)
		switch c.Kind {
		case "add-edge":
			out.Edges = append(out.Edges, [2]int{c.U, c.V})
		case "remove-edge":
			kept := out.Edges[:0]
			for _, e := range out.Edges {
				if !(e[0] == c.U && e[1] == c.V) && !(e[0] == c.V && e[1] == c.U) {
					kept = append(kept, e)
				}
			}
			out.Edges = kept
		}
	}
	return out, d.Validate(out)
}

func (coverDomain) Tightening(change any) bool {
	return change.(coverChange).Kind == "add-edge"
}

func (coverDomain) CloneSolution(s any) any {
	return append(coverSolution(nil), s.(coverSolution)...)
}

func (coverDomain) ExtendSolution(p, prev any) (any, error) {
	cp, sol := p.(*coverProblem), prev.(coverSolution)
	next := make(coverSolution, cp.N+1)
	copy(next, sol)
	return next, nil
}

func (coverDomain) Verify(p, s any) error {
	cp, sol := p.(*coverProblem), s.(coverSolution)
	for _, e := range cp.Edges {
		if !sol[e[0]] && !sol[e[1]] {
			return fmt.Errorf("vcover: edge %v uncovered", e)
		}
	}
	return nil
}

func (coverDomain) Render(p, s any) any {
	var chosen []int
	for v, in := range s.(coverSolution) {
		if in {
			chosen = append(chosen, v)
		}
	}
	return chosen
}

// ParseSolution is the Render inverse; the session store rehydrates
// persisted solutions through it.
func (coverDomain) ParseSolution(p any, spec json.RawMessage) (any, error) {
	cp := p.(*coverProblem)
	var chosen []int
	if err := json.Unmarshal(spec, &chosen); err != nil {
		return nil, err
	}
	sol := make(coverSolution, cp.N+1)
	for _, v := range chosen {
		if v < 1 || v > cp.N {
			return nil, fmt.Errorf("vcover: vertex %d out of range", v)
		}
		sol[v] = true
	}
	return sol, nil
}

func (coverDomain) Agreement(prev, next any) float64 {
	ps, ns := prev.(coverSolution), next.(coverSolution)
	same, total := 0, 0
	for v := 1; v < len(ps); v++ {
		total++
		if v < len(ns) && ns[v] == ps[v] {
			same++
		}
	}
	if total == 0 {
		return 1
	}
	return float64(same) / float64(total)
}

func (coverDomain) DontCares(p, s any) int { return 0 }

// Flex counts removable cover vertices: chosen vertices all of whose
// edges are double-covered.
func (coverDomain) Flex(p, s any, k int) (ilpec.DomainFlexReport, error) {
	cp, sol := p.(*coverProblem), s.(coverSolution)
	rep := ilpec.DomainFlexReport{Total: cp.N}
	for v := 1; v <= cp.N; v++ {
		if !sol[v] {
			continue
		}
		removable := true
		for _, e := range cp.Edges {
			if (e[0] == v && !sol[e[1]]) || (e[1] == v && !sol[e[0]]) {
				removable = false
				break
			}
		}
		if removable {
			rep.Flexible++
		}
	}
	return rep, nil
}

// coverEncoding is the ILP: x_v ∈ {0,1}, min Σ x_v, x_u + x_v ≥ 1 per edge.
type coverEncoding struct {
	m *ilpec.Model
	n int
}

func (e *coverEncoding) ILP() *ilpec.Model { return e.m }

func (e *coverEncoding) Decode(sol ilpec.ILPSolution) (any, error) {
	out := make(coverSolution, e.n+1)
	for v := 1; v <= e.n; v++ {
		out[v] = sol[v-1] == 1
	}
	return out, nil
}

func (e *coverEncoding) WarmStart(sol any) (ilpec.ILPSolution, bool) {
	cs, ok := sol.(coverSolution)
	if !ok {
		return nil, false
	}
	ws := make(ilpec.ILPSolution, e.m.NumVars())
	for v := 1; v <= e.n && v < len(cs); v++ {
		if cs[v] {
			ws[v-1] = 1
		}
	}
	return ws, true
}

func (d coverDomain) encode(cp *coverProblem, freeze coverSolution, region map[int]bool) *coverEncoding {
	m := ilpec.NewModel(false)
	for v := 1; v <= cp.N; v++ {
		m.AddVar(fmt.Sprintf("x%d", v), 1)
	}
	for _, e := range cp.Edges {
		m.AddRow("", []ilpec.ModelCoef{{Var: e[0] - 1, Val: 1}, {Var: e[1] - 1, Val: 1}}, ilpec.RowGE, 1)
	}
	// Fast-EC freezing: out-of-region vertices keep their previous value.
	for v := 1; v <= cp.N && freeze != nil; v++ {
		if region[v] {
			continue
		}
		want := 0.0
		if v < len(freeze) && freeze[v] {
			want = 1
		}
		m.AddRow(fmt.Sprintf("freeze_%d", v), []ilpec.ModelCoef{{Var: v - 1, Val: 1}}, ilpec.RowEQ, want)
	}
	return &coverEncoding{m: m, n: cp.N}
}

func (d coverDomain) Encode(p any) (ilpec.DomainEncoding, error) {
	return d.encode(p.(*coverProblem), nil, nil), nil
}

func (d coverDomain) PreserveTerms(enc ilpec.DomainEncoding, p, prev any) error {
	e := enc.(*coverEncoding)
	sol := prev.(coverSolution)
	for v := 1; v <= e.n; v++ {
		// Reward matching the previous in/out decision.
		if v < len(sol) && sol[v] {
			e.m.SetObj(v-1, -1)
		} else {
			e.m.SetObj(v-1, 1)
		}
	}
	return nil
}

func (d coverDomain) EnableTerms(enc ilpec.DomainEncoding, p any, opts ilpec.DomainEnableOptions) error {
	e := enc.(*coverEncoding)
	cp := p.(*coverProblem)
	w := opts.Weight
	if w <= 0 {
		w = 0.25
	}
	// Reward double-covered edges: s_e ≤ x_u, s_e ≤ x_v, objective -w·s_e.
	for _, ed := range cp.Edges {
		s := e.m.AddVar("", -w)
		e.m.AddRow("", []ilpec.ModelCoef{{Var: s, Val: 1}, {Var: ed[0] - 1, Val: -1}}, ilpec.RowLE, 0)
		e.m.AddRow("", []ilpec.ModelCoef{{Var: s, Val: 1}, {Var: ed[1] - 1, Val: -1}}, ilpec.RowLE, 0)
	}
	return nil
}

// coverRegion re-decides the endpoints of uncovered edges.
type coverRegion struct {
	d      coverDomain
	p      *coverProblem
	prev   coverSolution
	region map[int]bool
	full   bool
}

func (d coverDomain) AffectedRegion(p, prev any) (ilpec.DomainRegion, error) {
	cp := p.(*coverProblem)
	sol := prev.(coverSolution)
	grown := make(coverSolution, cp.N+1)
	copy(grown, sol)
	region := map[int]bool{}
	for _, e := range cp.Edges {
		if !grown[e[0]] && !grown[e[1]] {
			region[e[0]] = true
			region[e[1]] = true
		}
	}
	if len(region) == 0 {
		return nil, nil
	}
	return &coverRegion{d: d, p: cp, prev: grown, region: region}, nil
}

func (r *coverRegion) Size() int {
	if r.full {
		return r.p.N
	}
	return len(r.region)
}

func (r *coverRegion) Full() bool { return r.full || len(r.region) >= r.p.N }

func (r *coverRegion) Encoding() (ilpec.DomainEncoding, error) {
	if r.Full() {
		return r.d.encode(r.p, nil, nil), nil
	}
	return r.d.encode(r.p, r.prev, r.region), nil
}

func (r *coverRegion) Merge(sub any) (any, error) { return sub, nil }

func (r *coverRegion) Escalate() bool {
	grew := false
	for _, e := range r.p.Edges {
		if r.region[e[0]] != r.region[e[1]] {
			r.region[e[0]], r.region[e[1]] = true, true
			grew = true
		}
	}
	return grew
}

func (r *coverRegion) EscalateToFull() { r.full = true }

func (coverDomain) FingerprintProblem(w io.Writer, p any) {
	cp := p.(*coverProblem)
	fmt.Fprintf(w, "vcover/%d", cp.N)
	for _, e := range cp.Edges {
		fmt.Fprintf(w, "/%d-%d", e[0], e[1])
	}
}

func (coverDomain) FingerprintSolution(w io.Writer, s any) {
	for v, in := range s.(coverSolution) {
		if in {
			fmt.Fprintf(w, "/%d", v)
		}
	}
}

// ---- the walkthrough ------------------------------------------------------

func main() {
	// 1. Register the custom domain: it is now a first-class citizen of
	// the engine, the session service, and the ecserve HTTP API.
	ilpec.RegisterDomain(coverDomain{})
	fmt.Println("registered domains:", ilpec.Domains())

	problem := &coverProblem{N: 6, Edges: [][2]int{{1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 1}}}

	// 2. The generic engine solves it like any built-in domain.
	sol, err := ilpec.SolveDomain(coverDomain{}, problem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("initial cover:", coverDomain{}.Render(problem, sol))

	// 3. Engineering change: two new edges arrive; fast EC re-decides
	// only the uncovered endpoints.
	changed, err := coverDomain{}.ApplyChanges(problem, []any{
		coverChange{Kind: "add-edge", U: 2, V: 4},
		coverChange{Kind: "add-edge", U: 4, V: 6},
	})
	if err != nil {
		log.Fatal(err)
	}
	next, stats, err := ilpec.FastResolveDomain(coverDomain{}, changed, sol)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fast EC: cover %v (re-decided %d of %d vertices)\n",
		coverDomain{}.Render(changed, next), stats.SubSize, problem.N)

	// 4. The same instance through the session service: batching, the
	// solve cache, and the flexibility audit come for free.
	svc := ilpec.NewService(ilpec.ServiceOptions{})
	defer svc.Close()
	sess, err := svc.CreateDomainSession("vcover", problem, ilpec.SessionConfig{})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sess.Solve(); err != nil {
		log.Fatal(err)
	}
	sess.QueueChanges(
		coverChange{Kind: "add-edge", U: 2, V: 4},
		coverChange{Kind: "add-edge", U: 4, V: 6},
	)
	res, err := sess.Solve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("service: status=%s batched=%d preserved=%.2f cover=%v\n",
		res.Status, res.Batched, res.Preserved, coverDomain{}.Render(sess.Problem(), res.Solution))
	rep, err := sess.FlexReport(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flex audit: %d/%d vertices removable\n", rep.Flexible, rep.Total)
	fmt.Printf("metrics: %+v\n", svc.Metrics())
}
