// coloring: engineering change on graph k-coloring — the second EC domain
// (the paper's §8 points to comprehensive coloring experiments; its
// predecessor work [5] was restricted to coloring/scheduling).
//
// The demo colors a planted-colorable graph, adds conflicting edges (an
// engineering change), and contrasts three reactions: full replan, fast EC
// (local recolor), and preserving EC (maximize kept colors).
//
// Run with: go run ./examples/coloring
package main

import (
	"fmt"
	"log"
	"time"

	"ilpec"
	"ilpec/internal/coloring"
)

func main() {
	const n, k = 40, 5
	g, planted := coloring.PlantedColorable(n, k, 0.35, 7)
	fmt.Printf("graph: %d vertices, %d edges, planted %d-coloring\n", g.N, g.NumEdges(), k)

	opts := ilpec.SolveOptions{TimeLimit: 30 * time.Second}

	// Baseline coloring: exact, warm-started from the plant.
	col, res, err := ilpec.ColorExact(g, k, ilpec.GraphColoring(planted), opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact coloring uses %d colors (%d nodes, %v)\n",
		col.NumColors(), res.Nodes, res.Runtime.Round(time.Millisecond))

	greedy := ilpec.ColorGreedy(g)
	fmt.Printf("DSATUR greedy baseline uses %d colors\n", greedy.NumColors())

	// Engineering change: add edges between same-colored vertices.
	changed := g.Clone()
	added := 0
	for u := 1; u <= g.N && added < 3; u++ {
		for v := u + 1; v <= g.N && added < 3; v++ {
			if col[u] == col[v] && !changed.HasEdge(u, v) {
				changed.AddEdge(u, v)
				added++
			}
		}
	}
	fmt.Printf("\nengineering change: %d conflicting edges added\n", added)

	// Reaction 1: full replan.
	start := time.Now()
	replan, _, err := ilpec.ColorExact(changed, k, nil, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replan:      agreement %.1f%%  (%v)\n",
		100*replan.Agreement(col), time.Since(start).Round(time.Millisecond))

	// Reaction 2: fast EC — recolor only the conflicted region.
	start = time.Now()
	fastSol, stats, err := ilpec.FastResolveDomain(ilpec.ColoringDomain(), &ilpec.ColoringProblem{G: changed, K: k}, col, opts)
	if err != nil {
		log.Fatal(err)
	}
	fast := fastSol.(ilpec.GraphColoring)
	fmt.Printf("fast EC:     agreement %.1f%%  (%d vertices recolored, %v)\n",
		100*fast.Agreement(col), stats.SubSize, time.Since(start).Round(time.Millisecond))

	// Reaction 3: preserving EC — maximize kept colors globally.
	start = time.Now()
	presSol, err := ilpec.PreserveResolveDomain(ilpec.ColoringDomain(), &ilpec.ColoringProblem{G: changed, K: k}, col, opts)
	if err != nil {
		log.Fatal(err)
	}
	pres := presSol.(ilpec.GraphColoring)
	fmt.Printf("preserving:  agreement %.1f%%  (%v)\n",
		100*pres.Agreement(col), time.Since(start).Round(time.Millisecond))

	// Enabling EC: spare colors per vertex before the change arrives.
	enSol, err := ilpec.EnableDomain(ilpec.ColoringDomain(), &ilpec.ColoringProblem{G: g, K: k}, ilpec.DomainEnableOptions{Weight: 2}, opts)
	if err != nil {
		log.Fatal(err)
	}
	enabled := enSol.(ilpec.GraphColoring)
	repBefore := coloring.VerifyFlexibility(g, col, k)
	repEnabled := coloring.VerifyFlexibility(g, enabled, k)
	fmt.Printf("\nenabling EC: vertices with a spare color %d/%d → %d/%d\n",
		repBefore.WithSpare, g.N, repEnabled.WithSpare, g.N)
}
