// ecoflow: the full Figure-1 flow on a jnh-class instance.
//
// Original specification → enabling EC solve → tightening change →
// fast EC → another change → preserving EC, printing instance sizes,
// preserved fractions, and runtimes per step — an executable rendering of
// the paper's flow diagram.
//
// Run with: go run ./examples/ecoflow
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"ilpec"
)

func main() {
	// A jnh-class instance (wide random clauses with a planted
	// 2-satisfying assignment) at a laptop-friendly size.
	spec, ok := ilpec.BenchmarkByName("jnh1")
	if !ok {
		log.Fatal("benchmark registry broken")
	}
	spec.Vars, spec.Clauses = 48, 240 // scale down for the demo
	f, _ := spec.Generate()
	fmt.Printf("instance: %s-class, %d vars / %d clauses\n", spec.Family, f.NumVars, f.NumClauses())

	flow := ilpec.NewFlow(f, ilpec.FlowOptions{
		Enable: &ilpec.EnableOptions{Mode: ilpec.EnableObjective, Weight: 2},
		Exact:  ilpec.SolveOptions{TimeLimit: 15 * time.Second},
		Fast:   ilpec.FastOptions{Minimal: true},
	})

	if _, err := flow.Solve(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n[1] enabled solve: %d committed vars, %d don't-cares\n",
		flow.Solution().AssignedCount(), flow.Solution().DontCareCount())

	// Change 1: three clauses that contradict the current solution on
	// committed variables — resolved with fast EC.
	rng := rand.New(rand.NewSource(42))
	changes := contradictingClauses(flow, rng, 3)
	if _, err := flow.ApplyChange(changes, ilpec.FastEC); err != nil {
		log.Fatal(err)
	}
	last := flow.History()[len(flow.History())-1]
	fmt.Printf("[2] fast EC: sub-instance %d vars / %d clauses, preserved %.1f%%\n",
		last.Vars, last.Clauses, 100*last.Preserved)

	// Change 2: eliminate a variable and add another clause — resolved
	// with preserving EC.
	v := 1 + rng.Intn(flow.Formula().NumVars)
	changes = append(contradictingClauses(flow, rng, 1), ilpec.EliminateVariable(v))
	if _, err := flow.ApplyChange(changes, ilpec.PreservingEC); err != nil {
		log.Fatal(err)
	}
	last = flow.History()[len(flow.History())-1]
	fmt.Printf("[3] preserving EC after eliminating v%d: preserved %.1f%%\n",
		v, 100*last.Preserved)

	// Change 3: purely relaxing — no re-solve at all.
	if _, err := flow.ApplyChange([]ilpec.Change{ilpec.GrowVariable()}, ilpec.FastEC); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[4] relaxing change absorbed without re-solving\n")

	fmt.Println("\nflow history:")
	for i, s := range flow.History() {
		fmt.Printf("  %d. %-10s %5d vars %6d clauses  %v\n", i+1, s.Action, s.Vars, s.Clauses, s.Runtime.Round(time.Microsecond))
	}
	if !flow.Solution().Satisfies(flow.Formula()) {
		log.Fatal("internal error: final solution invalid")
	}
	fmt.Println("\nfinal solution verified against the evolved specification ✓")
}

// contradictingClauses builds n change clauses that are false under the
// flow's current solution (forcing actual EC work) but keep the instance
// satisfiable: each clause contains two negations of currently-committed
// literals plus one literal on a don't-care variable.
func contradictingClauses(flow *ilpec.Flow, rng *rand.Rand, n int) []ilpec.Change {
	sol := flow.Solution()
	f := flow.Formula()
	var committed, free []int
	for v := 1; v <= f.NumVars; v++ {
		if sol.Get(v) == ilpec.Unassigned {
			free = append(free, v)
		} else {
			committed = append(committed, v)
		}
	}
	var out []ilpec.Change
	for i := 0; i < n && len(committed) >= 2 && len(free) >= 1; i++ {
		a := committed[rng.Intn(len(committed))]
		b := committed[rng.Intn(len(committed))]
		c := free[rng.Intn(len(free))]
		la, lb := -a, -b
		if sol.Get(a) == ilpec.False {
			la = a
		}
		if sol.Get(b) == ilpec.False {
			lb = b
		}
		out = append(out, ilpec.NewClause(la, lb, c))
	}
	return out
}
