// Cluster walkthrough: a three-node ecserve fleet behind ecrouter, in
// process — including the kill-one-node failover demo.
//
// What it shows, end to end:
//
//   - three nodes share ONE store directory (what `ecserve -cluster
//     -node-id nX -data-dir DIR` does); membership is heartbeat records
//     in that store, no extra coordination service;
//   - the router consistent-hashes session ids onto live, ready nodes
//     and proxies the ordinary HTTP/JSON API unchanged;
//   - a solve proven on one node answers the identical problem on
//     another node from the fleet-wide cache (cluster_peek_hits);
//   - killing a node mid-batch loses nothing: its sessions' leases
//     expire, the ring successor rehydrates them from the shared
//     journal, and a retrying client rides through on 502/503 +
//     Retry-After responses.
//
// Lease fencing semantics (the correctness core, see README
// "Clustering"): ownership is a lease in the shared store, and every
// journal append both re-proves the lease and lands through a
// compare-and-swap on the sequence number. A stale owner — wrong about
// time, partitioned, or half-dead — either notices the lease moved
// (refuses up front) or loses the CAS (its write never lands). Both
// surface as 503 "not_owner" + Retry-After; a double commit is
// impossible no matter how stale a router's ring view is.
//
// Run with: go run ./examples/cluster
package main

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"ilpec"
	"ilpec/internal/cluster"
	"ilpec/internal/ecclient"
)

// node bundles one fleet member's moving parts.
type node struct {
	id  string
	n   *ilpec.ClusterNode
	svc *ilpec.Service
	srv *httptest.Server
}

func startNode(dir, id string) *node {
	st, err := ilpec.NewSharedFileSessionStore(dir)
	check(err)
	srv := httptest.NewUnstartedServer(nil)
	cn, err := ilpec.NewClusterNode(ilpec.ClusterNodeConfig{
		ID:                id,
		Addr:              "http://" + srv.Listener.Addr().String(),
		Store:             st,
		HeartbeatInterval: 100 * time.Millisecond,
		LeaseTTL:          500 * time.Millisecond,
	})
	check(err)
	svc := ilpec.NewService(ilpec.ServiceOptions{Store: st, Cluster: cn})
	srv.Config.Handler = ilpec.NewServiceHandler(svc)
	check(cn.Start())
	srv.Start()
	fmt.Printf("  %s serving at %s\n", id, srv.URL)
	return &node{id: id, n: cn, svc: svc, srv: srv}
}

func main() {
	dir, err := os.MkdirTemp("", "ecfleet-*")
	check(err)
	defer os.RemoveAll(dir)

	fmt.Println("== three nodes, one shared store ==")
	nodes := map[string]*node{}
	var ids []string
	for _, id := range []string{"n1", "n2", "n3"} {
		nodes[id] = startNode(dir, id)
		ids = append(ids, id)
	}

	rtStore, err := ilpec.NewSharedFileSessionStore(dir)
	check(err)
	rt, err := ilpec.NewClusterRouter(ilpec.ClusterRouterOptions{
		Store:   rtStore,
		Refresh: 100 * time.Millisecond,
	})
	check(err)
	check(rt.Start())
	defer rt.Stop()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	fmt.Println("  router at", front.URL)

	// The retrying client every consumer should use: it honors the
	// Retry-After hints the fleet answers during failover.
	client := &ecclient.Client{Base: front.URL, Retries: 60, Backoff: 50 * time.Millisecond, MaxWait: 300 * time.Millisecond}
	ctx := context.Background()
	do := func(method, path string, in any) map[string]any {
		var out map[string]any
		check(client.DoJSON(ctx, method, path, in, &out))
		return out
	}

	fmt.Println("\n== sessions through the router (ids consistent-hashed) ==")
	problem := map[string]any{"dimacs": "p cnf 3 3\n1 2 0\n-1 3 0\n2 3 0\n"}
	ring := cluster.BuildRing(ids, cluster.DefaultVirtualNodes)
	var sids []string
	for i := 0; i < 4; i++ {
		resp := do(http.MethodPost, "/v1/sessions", map[string]any{"id": fmt.Sprintf("job-%d", i), "domain": "cnf", "problem": problem})
		sid := resp["id"].(string)
		owner, _ := ring.Owner(sid)
		sids = append(sids, sid)
		solve := do(http.MethodPost, "/v1/sessions/"+sid+"/solve", map[string]any{})
		fmt.Printf("  %s -> owner %s  solved status=%v cached=%v\n", sid, owner, solve["status"], solve["cached"])
	}
	fmt.Println("  (identical problems after the first: answered fleet-wide, no extra solver runs)")
	for id, n := range nodes {
		m := n.svc.Metrics()
		fmt.Printf("  %s metrics: solver_runs=%d cluster_peek_hits=%d cluster_peek_stores=%d\n",
			id, m.SolverRuns, m.ClusterPeekHits, m.ClusterPeekStores)
	}

	fmt.Println("\n== kill one node mid-batch ==")
	// Queue a tightening change on every session, then crash the owner of
	// job-0 BEFORE the batch is solved.
	change := map[string]any{"changes": []any{map[string]any{"kind": "add-clause", "lits": []int{1, 3}}}}
	for _, sid := range sids {
		do(http.MethodPost, "/v1/sessions/"+sid+"/changes", change)
	}
	victimID, _ := ring.Owner("job-0")
	victim := nodes[victimID]
	victim.srv.CloseClientConnections()
	victim.srv.Close() // crash: no drain, no lease release
	victim.n.Stop()
	delete(nodes, victimID)
	fmt.Printf("  killed %s (owner of job-0) with its change batch still queued\n", victimID)

	start := time.Now()
	for _, sid := range sids {
		solve := do(http.MethodPost, "/v1/sessions/"+sid+"/solve", map[string]any{})
		fmt.Printf("  %s solved after kill: status=%v batched=%v\n", sid, solve["status"], solve["batched"])
	}
	fmt.Printf("  fleet converged in %v — the successor rehydrated job-0 from the shared journal\n", time.Since(start).Round(time.Millisecond))

	view := do(http.MethodGet, "/v1/cluster", nil)
	fmt.Printf("  /v1/cluster now sees %v node(s); router metrics: %+v\n", view["ring_nodes"], rt.Metrics())

	fmt.Println("\n== graceful teardown of the survivors ==")
	for id, n := range nodes {
		n.svc.Close() // releases the node's session leases
		n.n.Stop()    // deregisters from membership
		n.srv.Close()
		fmt.Printf("  %s drained and left\n", id)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
