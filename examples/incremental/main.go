// incremental: a stream of successive engineering changes.
//
// The paper distinguishes itself from Kirovski–Potkonjak [5] by supporting
// *successive* EC requests: each re-solve's output is the next change's
// input. This demo drives a long random change stream through the flow,
// alternating strategies, and tracks cumulative preservation and the total
// fraction of the instance ever re-solved.
//
// Run with: go run ./examples/incremental
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"ilpec"
)

func main() {
	spec, _ := ilpec.BenchmarkByName("ii8a1")
	f, _ := spec.Generate()
	fmt.Printf("instance: %s (%d vars / %d clauses)\n", spec.Name, f.NumVars, f.NumClauses())

	flow := ilpec.NewFlow(f, ilpec.FlowOptions{
		Exact: ilpec.SolveOptions{TimeLimit: 30 * time.Second},
	})
	first, err := flow.Solve()
	if err != nil {
		log.Fatal(err)
	}
	initial := first.Clone()

	rng := rand.New(rand.NewSource(2002))
	const rounds = 12
	var resolvedVars int
	fmt.Printf("\n%-6s %-11s %-28s %10s %10s\n", "round", "strategy", "change", "preserved", "vs initial")
	for round := 1; round <= rounds; round++ {
		prev := flow.Solution().Clone()
		change, desc := randomChange(flow, rng)
		strategy := ilpec.FastEC
		if round%3 == 0 {
			strategy = ilpec.PreservingEC
		}
		if _, err := flow.ApplyChange(change, strategy); err != nil {
			// An occasional unsatisfiable mutation is part of life; skip it.
			fmt.Printf("%-6d %-11s %-28s %10s\n", round, strategy, desc, "UNSAT-skip")
			continue
		}
		step := flow.History()[len(flow.History())-1]
		if step.Action == "fast" {
			resolvedVars += step.Vars
		} else if step.Action != "relax" {
			resolvedVars += flow.Formula().NumVars
		}
		_ = prev
		fmt.Printf("%-6d %-11s %-28s %9.1f%% %9.1f%%\n",
			round, step.Action, desc, 100*step.Preserved,
			100*flow.Solution().PreservedFraction(initial))
	}

	totalVars := flow.Formula().NumVars
	fmt.Printf("\nacross %d rounds the flow re-solved %d variable slots in total\n", rounds, resolvedVars)
	fmt.Printf("(a replan-every-time baseline would have re-solved %d)\n", rounds*totalVars)
	if !flow.Solution().Satisfies(flow.Formula()) {
		log.Fatal("internal error: final solution invalid")
	}
	fmt.Println("final solution verified ✓")
}

// randomChange emits a small random specification change that keeps the
// instance satisfiable for most draws: mostly clause additions anchored on
// don't-care or agreeing literals, occasionally variable growth or clause
// deletion.
func randomChange(flow *ilpec.Flow, rng *rand.Rand) ([]ilpec.Change, string) {
	f := flow.Formula()
	sol := flow.Solution()
	switch rng.Intn(5) {
	case 0:
		return []ilpec.Change{ilpec.GrowVariable()}, "add variable"
	case 1:
		if f.NumClauses() == 0 {
			return []ilpec.Change{ilpec.GrowVariable()}, "add variable"
		}
		i := rng.Intn(f.NumClauses())
		return []ilpec.Change{ilpec.DropClause(i)}, fmt.Sprintf("drop clause #%d", i)
	default:
		// Add a clause violating the current solution on two committed
		// variables, escorted by one free variable for satisfiability.
		var committed, free []int
		for v := 1; v <= f.NumVars; v++ {
			if sol.Get(v) == ilpec.Unassigned {
				free = append(free, v)
			} else {
				committed = append(committed, v)
			}
		}
		if len(committed) < 2 || len(free) < 1 {
			return []ilpec.Change{ilpec.GrowVariable()}, "add variable"
		}
		a := committed[rng.Intn(len(committed))]
		b := committed[rng.Intn(len(committed))]
		c := free[rng.Intn(len(free))]
		la, lb := -a, -b
		if sol.Get(a) == ilpec.False {
			la = a
		}
		if sol.Get(b) == ilpec.False {
			lb = b
		}
		return []ilpec.Change{ilpec.NewClause(la, lb, c)},
			fmt.Sprintf("add clause (%d %d %d)", la, lb, c)
	}
}
