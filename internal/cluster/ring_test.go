package cluster

import (
	"fmt"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("s%d", i+1)
	}
	return keys
}

func ownersOf(t *testing.T, r *Ring, keys []string) map[string]string {
	t.Helper()
	owners := make(map[string]string, len(keys))
	for _, k := range keys {
		o, ok := r.Owner(k)
		if !ok {
			t.Fatalf("Owner(%q) not ok on %d-node ring", k, r.Len())
		}
		owners[k] = o
	}
	return owners
}

// Distribution skew over 10k ids: with DefaultVirtualNodes points per
// node, every node's share must stay within ±35% of fair share. The
// hash is deterministic, so this pins a concrete distribution — if a
// hash or vnode change regresses placement uniformity, this fails.
func TestRingDistributionSkew(t *testing.T) {
	const K = 10000
	for _, n := range []int{2, 3, 5, 8} {
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("node-%d", i+1)
		}
		r := BuildRing(nodes, 0)
		counts := make(map[string]int, n)
		for _, k := range testKeys(K) {
			o, _ := r.Owner(k)
			counts[o]++
		}
		fair := float64(K) / float64(n)
		for _, node := range nodes {
			c := counts[node]
			if fc := float64(c); fc > 1.35*fair || fc < 0.65*fair {
				t.Errorf("%d nodes: %s owns %d keys, outside ±35%% of fair share %.0f", n, node, c, fair)
			}
		}
	}
}

// Minimal movement: when a node joins an N-node ring, at most
// ceil(K/N) of K keys change owner, and every moved key lands on the
// new node (no shuffling between surviving nodes). Symmetrically on
// leave: only the departing node's keys move.
func TestRingMinimalMovementOnJoin(t *testing.T) {
	const K = 10000
	keys := testKeys(K)
	for _, n := range []int{2, 3, 5} {
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("node-%d", i+1)
		}
		before := ownersOf(t, BuildRing(nodes, 0), keys)
		joined := "node-new"
		after := ownersOf(t, BuildRing(append(append([]string{}, nodes...), joined), 0), keys)
		moved := 0
		for _, k := range keys {
			if before[k] != after[k] {
				moved++
				if after[k] != joined {
					t.Fatalf("%d nodes: key %q moved %s→%s, not to the joining node", n, k, before[k], after[k])
				}
			}
		}
		bound := (K + n - 1) / n // ceil(K/N)
		if moved > bound {
			t.Errorf("%d nodes: %d keys moved on join, want ≤ ceil(K/N)=%d", n, moved, bound)
		}
		if moved == 0 {
			t.Errorf("%d nodes: no keys moved on join — new node owns nothing", n)
		}
	}
}

func TestRingMinimalMovementOnLeave(t *testing.T) {
	const K = 10000
	keys := testKeys(K)
	for _, n := range []int{3, 4, 6} {
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("node-%d", i+1)
		}
		before := ownersOf(t, BuildRing(nodes, 0), keys)
		departed := nodes[n-1]
		after := ownersOf(t, BuildRing(nodes[:n-1], 0), keys)
		moved := 0
		for _, k := range keys {
			if before[k] != after[k] {
				moved++
				if before[k] != departed {
					t.Fatalf("%d nodes: key %q moved %s→%s though its owner stayed", n, k, before[k], after[k])
				}
			}
		}
		bound := (K + n - 2) / (n - 1) // ceil(K/N) for the surviving fleet size
		if moved > bound {
			t.Errorf("%d nodes: %d keys moved on leave, want ≤ %d", n, moved, bound)
		}
	}
}

// Ownership must not depend on the order membership happened to be
// listed in — routers and nodes rebuild rings independently.
func TestRingOrderIndependent(t *testing.T) {
	a := BuildRing([]string{"n1", "n2", "n3"}, 64)
	b := BuildRing([]string{"n3", "n1", "n2", "n2"}, 64)
	for _, k := range testKeys(500) {
		oa, _ := a.Owner(k)
		ob, _ := b.Owner(k)
		if oa != ob {
			t.Fatalf("owner of %q differs by build order: %s vs %s", k, oa, ob)
		}
	}
}

func TestRingSuccessors(t *testing.T) {
	r := BuildRing([]string{"n1", "n2", "n3"}, 64)
	for _, k := range testKeys(100) {
		owner, _ := r.Owner(k)
		succ := r.Successors(k, 3)
		if len(succ) != 3 {
			t.Fatalf("Successors(%q,3) = %v, want 3 distinct nodes", k, succ)
		}
		if succ[0] != owner {
			t.Fatalf("Successors(%q)[0] = %s, want owner %s", k, succ[0], owner)
		}
		seen := map[string]bool{}
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("Successors(%q) = %v has duplicates", k, succ)
			}
			seen[s] = true
		}
	}
}

// The first successor after the owner is where the key lands if the
// owner leaves — the router's failover target must agree with the
// rebalanced ring, or failover and rebalance would fight.
func TestRingSuccessorMatchesLeaveRebalance(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4"}
	r := BuildRing(nodes, 0)
	for _, k := range testKeys(1000) {
		owner, _ := r.Owner(k)
		var survivors []string
		for _, n := range nodes {
			if n != owner {
				survivors = append(survivors, n)
			}
		}
		after, _ := BuildRing(survivors, 0).Owner(k)
		if succ := r.Successors(k, 2); succ[1] != after {
			t.Fatalf("key %q: successor %s, but leave-rebalance owner %s", k, succ[1], after)
		}
	}
}

func TestRingEmpty(t *testing.T) {
	r := BuildRing(nil, 0)
	if _, ok := r.Owner("s1"); ok {
		t.Fatal("empty ring claims an owner")
	}
	if s := r.Successors("s1", 2); s != nil {
		t.Fatalf("empty ring successors = %v, want nil", s)
	}
}
