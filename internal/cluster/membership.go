package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"ilpec/internal/store"
)

// NodeInfo is one live cluster member as recorded in the shared store.
type NodeInfo struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
	// Expiry is when the last heartbeat lapses; a node past it is
	// treated as departed even though it never deregistered (crash,
	// partition from the shared store).
	Expiry time.Time `json:"expiry"`
}

// beatMeta is the wire form of one heartbeat (Record.Meta / Snapshot.Meta).
type beatMeta struct {
	Addr     string `json:"addr"`
	ExpiryMS int64  `json:"expiry_ms"`
}

// Membership tracks the node roster through `_cluster_node_<id>` meta
// sessions. Each node is the single writer of its own record (appends of
// KindHeartbeat, compacted by the node itself), so there is no write
// contention; readers (the router, peers) list and load.
type Membership struct {
	st store.Store

	mu   sync.Mutex
	seqs map[string]uint64 // next-append bookkeeping for ids we write
	tail map[string]int    // appends since last compaction
}

// NewMembership wraps the shared store for roster reads and writes.
func NewMembership(st store.Store) *Membership {
	return &Membership{st: st, seqs: make(map[string]uint64), tail: make(map[string]int)}
}

// Heartbeat records that node id serves at addr until now+ttl. The first
// beat creates the meta session; every maxLeaseTail beats the journal is
// compacted into the snapshot. A sequence conflict means another process
// is writing the same node id — a deployment error worth surfacing.
//
//ecvet:fenced
func (m *Membership) Heartbeat(id, addr string, ttl time.Duration, now time.Time) error {
	if err := store.ValidateID(nodeMetaID(id)); err != nil {
		return fmt.Errorf("cluster: node id: %w", err)
	}
	meta, err := json.Marshal(beatMeta{Addr: addr, ExpiryMS: now.Add(ttl).UnixMilli()})
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	mid := nodeMetaID(id)
	seq, known := m.seqs[mid]
	if !known {
		snap, tail, err := m.st.Load(mid)
		switch {
		case errors.Is(err, store.ErrNotFound):
			if err := m.st.WriteSnapshot(store.Snapshot{SessionID: mid, Meta: meta}); err != nil {
				return err
			}
			seq = 0
		case err != nil:
			return err
		default:
			seq = snap.Seq
			if len(tail) > 0 {
				seq = tail[len(tail)-1].Seq
			}
		}
	}
	rec := store.Record{Seq: seq + 1, Kind: store.KindHeartbeat, Meta: meta}
	if err := m.st.Append(mid, rec); err != nil {
		// Re-derive once: a restart of this node id (or shared-mode
		// compaction by our own earlier incarnation) legitimately moves
		// the sequence; persistent conflict = two live writers.
		if errors.Is(err, store.ErrSeqConflict) {
			delete(m.seqs, mid)
		}
		return err
	}
	m.seqs[mid] = rec.Seq
	m.tail[mid]++
	if m.tail[mid] >= maxLeaseTail {
		// Single-writer compaction: fold the latest beat into the snapshot
		// and drop the journal. Best effort — the journal just grows a
		// little longer if it fails.
		if err := m.st.WriteSnapshot(store.Snapshot{SessionID: mid, Seq: rec.Seq, Meta: meta}); err == nil {
			m.tail[mid] = 0
		}
	}
	return nil
}

// Alive returns the members whose heartbeat has not expired at now,
// sorted by id (store.List is sorted). Unreadable member records are
// skipped — one corrupt node entry must not hide the rest of the fleet.
func (m *Membership) Alive(now time.Time) ([]NodeInfo, error) {
	ids, err := m.st.List()
	if err != nil {
		return nil, err
	}
	var out []NodeInfo
	for _, id := range ids {
		if !isNodeMetaID(id) {
			continue
		}
		snap, tail, err := m.st.Load(id)
		if err != nil {
			continue
		}
		meta := snap.Meta
		if len(tail) > 0 {
			meta = tail[len(tail)-1].Meta
		}
		var b beatMeta
		if json.Unmarshal(meta, &b) != nil {
			continue
		}
		exp := time.UnixMilli(b.ExpiryMS)
		if !exp.After(now) {
			continue
		}
		out = append(out, NodeInfo{ID: nodeFromMetaID(id), Addr: b.Addr, Expiry: exp})
	}
	return out, nil
}

// Deregister removes node id from the roster (clean shutdown). Expiry
// handles the unclean case.
func (m *Membership) Deregister(id string) error {
	m.mu.Lock()
	delete(m.seqs, nodeMetaID(id))
	delete(m.tail, nodeMetaID(id))
	m.mu.Unlock()
	return m.st.Delete(nodeMetaID(id))
}
