// Package cluster is the multi-node serving tier behind cmd/ecrouter and
// cmd/ecserve -cluster: consistent-hash session placement, lease-based
// session ownership, node membership, and a fleet-wide solve cache — all
// coordinated through the shared store.Store the nodes already use for
// session durability, so the cluster needs no extra infrastructure (no
// etcd, no gossip): a shared directory IS the control plane.
//
// The coordination substrate is "meta sessions": pseudo session ids with
// the `_cluster_` prefix that reuse the snapshot + CAS journal machinery.
//
//	_cluster_node_<node>    membership heartbeats (single writer: the node)
//	_cluster_lease_<sid>    session ownership lease (multi-writer via CAS)
//	_cluster_cache_<hash>   fleet solve-cache entries (last write wins)
//
// Lease safety rests on the store's CAS append contract: an append whose
// sequence number is not exactly one past the durable high-water mark
// fails with store.ErrSeqConflict. Two nodes racing for an expired lease
// both observe the same last sequence; only one append lands. The same
// contract fences a stale owner's session journal appends — see
// internal/service's fencing path.
package cluster

import "strings"

// metaPrefix namespaces cluster pseudo-sessions inside the shared store.
// internal/service filters these ids out of session recovery and listing.
const (
	metaPrefix   = "_cluster_"
	nodePrefix   = metaPrefix + "node_"
	leasePrefix  = metaPrefix + "lease_"
	cachePrefix  = metaPrefix + "cache_"
	maxLeaseTail = 16 // lease journal records kept before the holder compacts
)

// IsMetaID reports whether id is cluster metadata rather than a real
// session (session recovery, listing, and sweeping must skip these).
func IsMetaID(id string) bool { return strings.HasPrefix(id, metaPrefix) }

func nodeMetaID(node string) string   { return nodePrefix + node }
func leaseMetaID(sid string) string   { return leasePrefix + sid }
func cacheMetaID(hash string) string  { return cachePrefix + hash }
func isNodeMetaID(id string) bool     { return strings.HasPrefix(id, nodePrefix) }
func nodeFromMetaID(id string) string { return strings.TrimPrefix(id, nodePrefix) }
