package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"ilpec/internal/obs"
	"ilpec/internal/store"
)

// ErrLeaseHeld reports an acquire attempt on a lease currently held,
// unexpired, by a different node. Match with errors.Is; the concrete
// *HeldError carries the holder for diagnostics.
var ErrLeaseHeld = errors.New("cluster: lease held by another node")

// HeldError is the concrete ErrLeaseHeld with holder details.
type HeldError struct {
	SessionID string
	Holder    string
	Expiry    time.Time
}

func (e *HeldError) Error() string {
	return fmt.Sprintf("cluster: lease for %q held by %q until %s", e.SessionID, e.Holder, e.Expiry.Format(time.RFC3339Nano))
}

// Is makes errors.Is(err, ErrLeaseHeld) match.
func (e *HeldError) Is(target error) bool { return target == ErrLeaseHeld }

// ErrSessionDeleted reports an acquire attempt on a session whose lease
// state carries a deletion tombstone: the session was deliberately
// closed cluster-wide and must not be resurrected from stale data. Only
// AcquireForCreate (an explicit re-create) clears the tombstone.
var ErrSessionDeleted = errors.New("cluster: session deleted")

// Lease is a granted (or observed) ownership claim on one session.
type Lease struct {
	SessionID string
	Holder    string
	Expiry    time.Time
	// seq is the journal sequence of the record establishing this state;
	// Renew/Release CAS against it, which is what detects a stolen lease.
	seq uint64
}

// leaseMeta is the wire form of lease state (Record.Meta). An empty
// holder means released/free. Deleted is a tombstone: the session data
// was removed on purpose, so ordinary acquires must refuse rather than
// rehydrate whatever stale remnants a lagging node still sees.
type leaseMeta struct {
	Holder   string `json:"holder,omitempty"`
	ExpiryMS int64  `json:"expiry_ms,omitempty"`
	Deleted  bool   `json:"deleted,omitempty"`
}

// Leases implements lease-based session ownership over the shared store.
//
// Protocol: the lease state of session sid lives in meta session
// `_cluster_lease_<sid>` — the latest journal record (or the snapshot if
// the journal is empty) is authoritative. Every transition is a CAS
// append at exactly observed-seq+1; the store's sequence check makes two
// racing transitions resolve to one winner, atomically, in any backend
// (Memory, File, shared File across processes).
//
// A lease may be acquired when it is free, expired, or already held by
// the requesting node (re-acquire extends). Expiry comparisons assume
// loosely synchronized clocks across nodes — the TTL must comfortably
// exceed worst-case clock skew. Fencing does NOT rest on clocks: even if
// a stale owner believes its lease valid, its first journal append for
// the session fails the store's CAS check (the new owner has appended
// past it) and the service drops the session.
type Leases struct {
	st store.Store

	// Latency histograms; nil (uninstrumented) drops observations.
	acquireH *obs.Histogram
	renewH   *obs.Histogram
	fenceH   *obs.Histogram

	mu   sync.Mutex
	tail map[string]int // appends since last compaction, per meta id
}

// NewLeases wraps the shared store for lease transitions.
func NewLeases(st store.Store) *Leases {
	return &Leases{st: st, tail: make(map[string]int)}
}

// instrument registers the lease latency histograms on r: acquire and
// renew time the full caller-visible operation (reads + CAS), fence
// times just the CAS transition append that enforces ownership.
func (l *Leases) instrument(r *obs.Registry) {
	help := "Lease %s latency (seconds)."
	l.acquireH = r.Histogram("ec_cluster_lease_latency_seconds", fmt.Sprintf(help, "operation"), obs.Label{Key: "op", Value: "acquire"})
	l.renewH = r.Histogram("ec_cluster_lease_latency_seconds", fmt.Sprintf(help, "operation"), obs.Label{Key: "op", Value: "renew"})
	l.fenceH = r.Histogram("ec_cluster_lease_latency_seconds", fmt.Sprintf(help, "operation"), obs.Label{Key: "op", Value: "fence"})
}

// read loads the authoritative lease state of sid. found is false when
// the meta session does not exist yet.
func (l *Leases) read(sid string) (state leaseMeta, seq uint64, found bool, err error) {
	snap, tail, err := l.st.Load(leaseMetaID(sid))
	if errors.Is(err, store.ErrNotFound) {
		return leaseMeta{}, 0, false, nil
	}
	if err != nil {
		return leaseMeta{}, 0, false, err
	}
	seq = snap.Seq
	meta := snap.Meta
	if len(tail) > 0 {
		seq = tail[len(tail)-1].Seq
		meta = tail[len(tail)-1].Meta
	}
	if len(meta) > 0 {
		if err := json.Unmarshal(meta, &state); err != nil {
			return leaseMeta{}, 0, false, fmt.Errorf("cluster: corrupt lease state for %q: %w", sid, err)
		}
	}
	return state, seq, true, nil
}

// Acquire claims the lease on sid for node until now+ttl. It succeeds
// when the lease is free, expired, or already ours; otherwise it returns
// a *HeldError (errors.Is ErrLeaseHeld). Store trouble propagates with
// its transience intact so callers can retry or degrade.
func (l *Leases) Acquire(sid, node string, ttl time.Duration, now time.Time) (Lease, error) {
	defer l.acquireH.Since(time.Now())
	if err := store.ValidateID(leaseMetaID(sid)); err != nil {
		return Lease{}, err
	}
	state, seq, found, err := l.read(sid)
	if err != nil {
		return Lease{}, err
	}
	if state.Deleted {
		return Lease{}, fmt.Errorf("cluster: lease for %q: %w", sid, ErrSessionDeleted)
	}
	if !found {
		// Birth snapshot for the meta session. Racing creators both write
		// an empty seq-0 snapshot (idempotent: compaction preserves any
		// record a faster racer already appended), then race the CAS below.
		if err := l.st.WriteSnapshot(store.Snapshot{SessionID: leaseMetaID(sid)}); err != nil {
			return Lease{}, err
		}
	}
	if state.Holder != "" && state.Holder != node {
		if exp := time.UnixMilli(state.ExpiryMS); exp.After(now) {
			return Lease{}, &HeldError{SessionID: sid, Holder: state.Holder, Expiry: exp}
		}
	}
	return l.transition(sid, node, seq, ttl, now)
}

// AcquireForCreate is Acquire for an explicit session create: a deletion
// tombstone does not refuse the claim, it is reclaimed (the id is being
// reused on purpose). reclaimed reports that a tombstone was cleared, so
// the creator knows to scrub any orphaned session data before writing
// fresh state — the lease it now holds serializes that cleanup against
// every other node.
func (l *Leases) AcquireForCreate(sid, node string, ttl time.Duration, now time.Time) (ls Lease, reclaimed bool, err error) {
	if err := store.ValidateID(leaseMetaID(sid)); err != nil {
		return Lease{}, false, err
	}
	state, seq, found, err := l.read(sid)
	if err != nil {
		return Lease{}, false, err
	}
	if !found {
		if err := l.st.WriteSnapshot(store.Snapshot{SessionID: leaseMetaID(sid)}); err != nil {
			return Lease{}, false, err
		}
	}
	if !state.Deleted && state.Holder != "" && state.Holder != node {
		if exp := time.UnixMilli(state.ExpiryMS); exp.After(now) {
			return Lease{}, false, &HeldError{SessionID: sid, Holder: state.Holder, Expiry: exp}
		}
	}
	ls, err = l.transition(sid, node, seq, ttl, now)
	if err != nil {
		return Lease{}, false, err
	}
	return ls, state.Deleted, nil
}

// transition CAS-appends the new lease state at seq+1. This IS the
// fence: the CAS at seq+1 proves no competing transition landed first.
//
//ecvet:fenced
func (l *Leases) transition(sid, node string, seq uint64, ttl time.Duration, now time.Time) (Lease, error) {
	defer l.fenceH.Since(time.Now())
	exp := now.Add(ttl)
	meta, err := json.Marshal(leaseMeta{Holder: node, ExpiryMS: exp.UnixMilli()})
	if err != nil {
		return Lease{}, err
	}
	rec := store.Record{Seq: seq + 1, Kind: store.KindLease, Meta: meta}
	if err := l.st.Append(leaseMetaID(sid), rec); err != nil {
		if errors.Is(err, store.ErrSeqConflict) {
			// Lost the race. Report the winner if it holds a live lease;
			// otherwise surface a retryable held error with what we know.
			if state, _, _, rerr := l.read(sid); rerr == nil && state.Holder != "" {
				return Lease{}, &HeldError{SessionID: sid, Holder: state.Holder, Expiry: time.UnixMilli(state.ExpiryMS)}
			}
			return Lease{}, &HeldError{SessionID: sid}
		}
		return Lease{}, err
	}
	l.compactMaybe(sid, rec.Seq, meta)
	return Lease{SessionID: sid, Holder: node, Expiry: exp, seq: rec.Seq}, nil
}

// Renew extends ls by ttl from now. The CAS at ls.seq+1 doubles as the
// held-by-us check: if any other transition landed since ls was granted,
// the renew conflicts and resolves through a full Acquire (which fails
// ErrLeaseHeld when the lease was genuinely stolen).
//
//ecvet:fenced
func (l *Leases) Renew(ls Lease, ttl time.Duration, now time.Time) (Lease, error) {
	defer l.renewH.Since(time.Now())
	exp := now.Add(ttl)
	meta, err := json.Marshal(leaseMeta{Holder: ls.Holder, ExpiryMS: exp.UnixMilli()})
	if err != nil {
		return Lease{}, err
	}
	rec := store.Record{Seq: ls.seq + 1, Kind: store.KindLease, Meta: meta}
	if err := l.st.Append(leaseMetaID(ls.SessionID), rec); err != nil {
		if errors.Is(err, store.ErrSeqConflict) {
			return l.Acquire(ls.SessionID, ls.Holder, ttl, now)
		}
		return Lease{}, err
	}
	l.compactMaybe(ls.SessionID, rec.Seq, meta)
	return Lease{SessionID: ls.SessionID, Holder: ls.Holder, Expiry: exp, seq: rec.Seq}, nil
}

// Release frees ls (drain, session close). A sequence conflict means the
// lease already moved on — released either way, so it is not an error.
//
//ecvet:fenced
func (l *Leases) Release(ls Lease) error {
	meta, err := json.Marshal(leaseMeta{})
	if err != nil {
		return err
	}
	rec := store.Record{Seq: ls.seq + 1, Kind: store.KindLease, Meta: meta}
	if err := l.st.Append(leaseMetaID(ls.SessionID), rec); err != nil {
		if errors.Is(err, store.ErrSeqConflict) {
			return nil
		}
		return err
	}
	l.compactMaybe(ls.SessionID, rec.Seq, meta)
	return nil
}

// Holder reports the current lease state of sid: held is true when an
// unexpired claim exists.
func (l *Leases) Holder(sid string, now time.Time) (Lease, bool, error) {
	state, seq, found, err := l.read(sid)
	if err != nil || !found || state.Holder == "" {
		return Lease{}, false, err
	}
	exp := time.UnixMilli(state.ExpiryMS)
	if !exp.After(now) {
		return Lease{}, false, nil
	}
	return Lease{SessionID: sid, Holder: state.Holder, Expiry: exp, seq: seq}, true, nil
}

// MarkDeleted writes a deletion tombstone into sid's lease state on
// behalf of node (which should hold the lease — a live claim by anyone
// else refuses with *HeldError). The tombstone outlives the session
// data: after the store delete, a stale former owner re-acquiring the
// expired lease sees Deleted and fails ErrSessionDeleted instead of
// resurrecting the session from its in-memory copy. A bounded CAS retry
// absorbs benign conflicts (our own renewer racing the close).
//
//ecvet:fenced
func (l *Leases) MarkDeleted(sid, node string, now time.Time) error {
	meta, err := json.Marshal(leaseMeta{Deleted: true})
	if err != nil {
		return err
	}
	for attempt := 0; attempt < 4; attempt++ {
		state, seq, found, err := l.read(sid)
		if err != nil {
			return err
		}
		if state.Deleted {
			return nil
		}
		if state.Holder != "" && state.Holder != node {
			if exp := time.UnixMilli(state.ExpiryMS); exp.After(now) {
				return &HeldError{SessionID: sid, Holder: state.Holder, Expiry: exp}
			}
		}
		if !found {
			if err := l.st.WriteSnapshot(store.Snapshot{SessionID: leaseMetaID(sid)}); err != nil {
				return err
			}
		}
		rec := store.Record{Seq: seq + 1, Kind: store.KindLease, Meta: meta}
		if err := l.st.Append(leaseMetaID(sid), rec); err != nil {
			if errors.Is(err, store.ErrSeqConflict) {
				continue
			}
			return err
		}
		// Compact immediately: the tombstone is the terminal state, so
		// folding it into the snapshot keeps the meta session at its
		// minimum footprint forever after. Best effort.
		l.st.WriteSnapshot(store.Snapshot{SessionID: leaseMetaID(sid), Seq: rec.Seq, Meta: meta}) //nolint:errcheck
		l.mu.Lock()
		l.tail[leaseMetaID(sid)] = 0
		l.mu.Unlock()
		return nil
	}
	return fmt.Errorf("cluster: tombstone %q: CAS retries exhausted", sid)
}

// Drop removes all persisted lease state of sid (session deletion).
func (l *Leases) Drop(sid string) error {
	l.mu.Lock()
	delete(l.tail, leaseMetaID(sid))
	l.mu.Unlock()
	return l.st.Delete(leaseMetaID(sid))
}

// compactMaybe folds the lease journal into its snapshot once the tail
// grows past maxLeaseTail appends. Safe under races: a competitor's
// append carries a higher sequence than the snapshot and survives
// compaction in every backend. Best effort — failure just defers it.
func (l *Leases) compactMaybe(sid string, seq uint64, meta json.RawMessage) {
	mid := leaseMetaID(sid)
	l.mu.Lock()
	l.tail[mid]++
	due := l.tail[mid] >= maxLeaseTail
	if due {
		l.tail[mid] = 0
	}
	l.mu.Unlock()
	if due {
		l.st.WriteSnapshot(store.Snapshot{SessionID: mid, Seq: seq, Meta: meta}) //nolint:errcheck // best effort
	}
}
