package cluster

import (
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	"ilpec/internal/store"
)

var t0 = time.UnixMilli(1_700_000_000_000)

func TestIsMetaID(t *testing.T) {
	for id, want := range map[string]bool{
		"_cluster_node_n1":   true,
		"_cluster_lease_s1":  true,
		"_cluster_cache_abc": true,
		"s1":                 false,
		"n1-s3":              false,
	} {
		if got := IsMetaID(id); got != want {
			t.Errorf("IsMetaID(%q) = %v, want %v", id, got, want)
		}
	}
}

func TestLeaseAcquireHeldExpiredSteal(t *testing.T) {
	st := store.NewMemory()
	l := NewLeases(st)
	ttl := 5 * time.Second

	ls, err := l.Acquire("s1", "n1", ttl, t0)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if ls.Holder != "n1" || !ls.Expiry.Equal(t0.Add(ttl)) {
		t.Fatalf("lease = %+v", ls)
	}
	// Unexpired: a different node is refused with the holder's identity.
	_, err = l.Acquire("s1", "n2", ttl, t0.Add(time.Second))
	if !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("acquire while held: %v, want ErrLeaseHeld", err)
	}
	var held *HeldError
	if !errors.As(err, &held) || held.Holder != "n1" {
		t.Fatalf("held error = %+v, want holder n1", err)
	}
	// Re-acquire by the holder extends.
	if _, err := l.Acquire("s1", "n1", ttl, t0.Add(time.Second)); err != nil {
		t.Fatalf("re-acquire by holder: %v", err)
	}
	// Expired: anyone may steal.
	stolen, err := l.Acquire("s1", "n2", ttl, t0.Add(ttl+2*time.Second))
	if err != nil {
		t.Fatalf("steal expired: %v", err)
	}
	if stolen.Holder != "n2" {
		t.Fatalf("stolen lease holder = %s", stolen.Holder)
	}
	// The old holder's renew must now fail — its cached seq is stale.
	if _, err := l.Renew(ls, ttl, t0.Add(ttl+3*time.Second)); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("stale renew: %v, want ErrLeaseHeld", err)
	}
}

func TestLeaseRenewReleaseHolder(t *testing.T) {
	st := store.NewMemory()
	l := NewLeases(st)
	ttl := 2 * time.Second

	ls, err := l.Acquire("s1", "n1", ttl, t0)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	ls, err = l.Renew(ls, ttl, t0.Add(time.Second))
	if err != nil {
		t.Fatalf("renew: %v", err)
	}
	if want := t0.Add(3 * time.Second); !ls.Expiry.Equal(want) {
		t.Fatalf("renewed expiry = %v, want %v", ls.Expiry, want)
	}
	got, held, err := l.Holder("s1", t0.Add(2*time.Second))
	if err != nil || !held || got.Holder != "n1" {
		t.Fatalf("Holder = %+v held=%v err=%v", got, held, err)
	}
	if err := l.Release(ls); err != nil {
		t.Fatalf("release: %v", err)
	}
	if _, held, _ := l.Holder("s1", t0.Add(2*time.Second)); held {
		t.Fatal("lease still held after release")
	}
	if _, err := l.Acquire("s1", "n2", ttl, t0.Add(2*time.Second)); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

// N nodes race for one free lease; the store CAS must pick exactly one.
func TestLeaseRaceSingleWinner(t *testing.T) {
	st := store.NewMemory()
	const racers = 8
	var wg sync.WaitGroup
	wins := make([]bool, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l := NewLeases(st) // each racer models a separate process
			if _, err := l.Acquire("s1", string(rune('a'+i)), time.Minute, t0); err == nil {
				wins[i] = true
			} else if !errors.Is(err, ErrLeaseHeld) {
				t.Errorf("racer %d unexpected error: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	won := 0
	for _, w := range wins {
		if w {
			won++
		}
	}
	if won != 1 {
		t.Fatalf("%d racers won the lease, want exactly 1", won)
	}
}

// The lease journal must not grow without bound under steady renewal.
func TestLeaseCompaction(t *testing.T) {
	st := store.NewMemory()
	l := NewLeases(st)
	ls, err := l.Acquire("s1", "n1", time.Minute, t0)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	for i := 0; i < 3*maxLeaseTail; i++ {
		if ls, err = l.Renew(ls, time.Minute, t0.Add(time.Duration(i)*time.Second)); err != nil {
			t.Fatalf("renew %d: %v", i, err)
		}
	}
	_, tail, err := st.Load(leaseMetaID("s1"))
	if err != nil {
		t.Fatalf("load lease meta: %v", err)
	}
	if len(tail) > maxLeaseTail {
		t.Fatalf("lease journal tail has %d records after compaction, want ≤ %d", len(tail), maxLeaseTail)
	}
	if got, held, _ := l.Holder("s1", t0.Add(80*time.Second)); !held || got.Holder != "n1" {
		t.Fatalf("holder after compaction = %+v held=%v", got, held)
	}
}

// Shared-file leases: the cross-process CAS backstop. Two store handles
// on one directory model two ecserve processes.
func TestLeaseSharedFileCrossProcess(t *testing.T) {
	dir := t.TempDir()
	stA, err := store.NewSharedFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	stB, err := store.NewSharedFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer stA.Close()
	defer stB.Close()

	la, lb := NewLeases(stA), NewLeases(stB)
	ls, err := la.Acquire("s1", "n1", 5*time.Second, t0)
	if err != nil {
		t.Fatalf("acquire via A: %v", err)
	}
	if _, err := lb.Acquire("s1", "n2", 5*time.Second, t0.Add(time.Second)); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("acquire via B while held: %v, want ErrLeaseHeld", err)
	}
	if _, err := lb.Acquire("s1", "n2", 5*time.Second, t0.Add(10*time.Second)); err != nil {
		t.Fatalf("steal expired via B: %v", err)
	}
	// A's fenced renew: B's transition advanced the sequence.
	if _, err := la.Renew(ls, 5*time.Second, t0.Add(11*time.Second)); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("stale renew via A: %v, want ErrLeaseHeld", err)
	}
}

func TestMembershipHeartbeatExpiryDeregister(t *testing.T) {
	st := store.NewMemory()
	m := NewMembership(st)
	ttl := 3 * time.Second
	if err := m.Heartbeat("n1", "http://a", ttl, t0); err != nil {
		t.Fatalf("heartbeat n1: %v", err)
	}
	if err := m.Heartbeat("n2", "http://b", ttl, t0.Add(time.Second)); err != nil {
		t.Fatalf("heartbeat n2: %v", err)
	}
	alive, err := m.Alive(t0.Add(2 * time.Second))
	if err != nil {
		t.Fatalf("alive: %v", err)
	}
	if len(alive) != 2 || alive[0].ID != "n1" || alive[0].Addr != "http://a" || alive[1].ID != "n2" {
		t.Fatalf("alive = %+v, want n1+n2", alive)
	}
	// n1's beat lapses; n2 is still covered.
	alive, _ = m.Alive(t0.Add(3500 * time.Millisecond))
	if len(alive) != 1 || alive[0].ID != "n2" {
		t.Fatalf("alive after n1 expiry = %+v, want just n2", alive)
	}
	if err := m.Deregister("n2"); err != nil {
		t.Fatalf("deregister: %v", err)
	}
	if alive, _ = m.Alive(t0.Add(2 * time.Second)); len(alive) != 1 || alive[0].ID != "n1" {
		t.Fatalf("alive after n2 deregister = %+v, want just n1", alive)
	}
}

// A restarted node (fresh Membership over existing state) must resume
// heartbeating without manual cleanup.
func TestMembershipRestartResumes(t *testing.T) {
	st := store.NewMemory()
	if err := NewMembership(st).Heartbeat("n1", "http://a", time.Second, t0); err != nil {
		t.Fatalf("first incarnation: %v", err)
	}
	m2 := NewMembership(st)
	if err := m2.Heartbeat("n1", "http://a", time.Second, t0.Add(5*time.Second)); err != nil {
		t.Fatalf("restarted incarnation: %v", err)
	}
	alive, _ := m2.Alive(t0.Add(5500 * time.Millisecond))
	if len(alive) != 1 {
		t.Fatalf("alive = %+v, want resumed n1", alive)
	}
}

func TestMembershipCompaction(t *testing.T) {
	st := store.NewMemory()
	m := NewMembership(st)
	for i := 0; i < 3*maxLeaseTail; i++ {
		if err := m.Heartbeat("n1", "http://a", time.Minute, t0.Add(time.Duration(i)*time.Second)); err != nil {
			t.Fatalf("heartbeat %d: %v", i, err)
		}
	}
	_, tail, err := st.Load(nodeMetaID("n1"))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(tail) > maxLeaseTail {
		t.Fatalf("heartbeat journal tail = %d records, want ≤ %d", len(tail), maxLeaseTail)
	}
}

func TestFleetCacheRoundTrip(t *testing.T) {
	st := store.NewMemory()
	c := NewFleetCache(st)
	key := "ab12cd34ab12cd34ab12cd34ab12cd34ab12cd34ab12cd34ab12cd34ab12cd34"
	if _, _, ok := c.Peek(key); ok {
		t.Fatal("peek before put hit")
	}
	sol := json.RawMessage(`{"assignment":[1,0,1]}`)
	if err := c.Put(key, "cnf", sol); err != nil {
		t.Fatalf("put: %v", err)
	}
	dom, got, ok := c.Peek(key)
	if !ok || dom != "cnf" || string(got) != string(sol) {
		t.Fatalf("peek = (%s, %s, %v)", dom, got, ok)
	}
}

func TestNodeLifecycle(t *testing.T) {
	st := store.NewMemory()
	var mu sync.Mutex
	now := t0
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	n, err := NewNode(Config{
		ID: "n1", Addr: "http://a", Store: st,
		HeartbeatInterval: 10 * time.Millisecond, Clock: clock,
	})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	if n.Ready() {
		t.Fatal("ready before Start")
	}
	if err := n.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if !n.Ready() {
		t.Fatal("not ready after successful Start")
	}
	alive, err := n.Membership().Alive(clock())
	if err != nil || len(alive) != 1 || alive[0].ID != "n1" {
		t.Fatalf("alive = %+v err=%v, want registered n1", alive, err)
	}
	n.Stop()
	if n.Ready() {
		t.Fatal("ready after Stop")
	}
	if alive, _ := n.Membership().Alive(clock()); len(alive) != 0 {
		t.Fatalf("alive after Stop = %+v, want deregistered", alive)
	}
}

func TestNodeConfigValidation(t *testing.T) {
	if _, err := NewNode(Config{Addr: "x", Store: store.NewMemory()}); err == nil {
		t.Fatal("missing id accepted")
	}
	if _, err := NewNode(Config{ID: "n1"}); err == nil {
		t.Fatal("missing store accepted")
	}
	if _, err := NewNode(Config{ID: "a/b", Store: store.NewMemory()}); err == nil {
		t.Fatal("unsafe id accepted")
	}
}
