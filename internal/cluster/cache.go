package cluster

import (
	"encoding/json"

	"ilpec/internal/store"
)

// FleetCache is the cluster-wide solve cache: proven-optimal solutions
// keyed by the service's content hash (problem + prior solution +
// ilp.Options.Fingerprint, sha256 hex), stored as `_cluster_cache_<hash>`
// snapshots in the shared store. A node that misses its in-process LRU
// peeks here before running the solver, so identical subproblems dedupe
// fleet-wide, not just per process.
//
// Entries are immutable in value (same key ⇒ same solve output for a
// deterministic solver), so last-write-wins snapshot semantics are safe:
// concurrent Puts of one key write equivalent payloads. The cache is
// best-effort by design — every error degrades to a miss.
type FleetCache struct {
	st store.Store
}

// NewFleetCache wraps the shared store.
func NewFleetCache(st store.Store) *FleetCache { return &FleetCache{st: st} }

// Put publishes a solved entry. The caller guarantees key is the
// service's hex content hash and solution is the domain wire form.
func (c *FleetCache) Put(key, domain string, solution json.RawMessage) error {
	if err := store.ValidateID(cacheMetaID(key)); err != nil {
		return err
	}
	return c.st.WriteSnapshot(store.Snapshot{
		SessionID: cacheMetaID(key),
		Domain:    domain,
		Solution:  solution,
	})
}

// Peek looks a key up; ok is false on miss or any store trouble.
func (c *FleetCache) Peek(key string) (domain string, solution json.RawMessage, ok bool) {
	if store.ValidateID(cacheMetaID(key)) != nil {
		return "", nil, false
	}
	snap, _, err := c.st.Load(cacheMetaID(key))
	if err != nil || len(snap.Solution) == 0 {
		return "", nil, false
	}
	return snap.Domain, snap.Solution, true
}
