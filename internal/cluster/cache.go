package cluster

import (
	"encoding/json"
	"strings"
	"sync"

	"ilpec/internal/store"
)

// DefaultCacheMaxEntries bounds the fleet cache's shared-store footprint.
// The workload is content-hashed solver results, so thousands of distinct
// live keys are already unusual; the bound exists to stop a pathological
// or adversarial stream of unique problems from growing the store without
// limit.
const DefaultCacheMaxEntries = 4096

// FleetCache is the cluster-wide solve cache: proven-optimal solutions
// keyed by the service's content hash (problem + prior solution +
// ilp.Options.Fingerprint, sha256 hex), stored as `_cluster_cache_<hash>`
// snapshots in the shared store. A node that misses its in-process LRU
// peeks here before running the solver, so identical subproblems dedupe
// fleet-wide, not just per process.
//
// Entries are immutable in value (same key ⇒ same solve output for a
// deterministic solver), so last-write-wins snapshot semantics are safe:
// concurrent Puts of one key write equivalent payloads. The cache is
// best-effort by design — every error degrades to a miss.
//
// The entry count is bounded (SetMaxEntries, default
// DefaultCacheMaxEntries): every few Puts the publisher sweeps the
// store's `_cluster_cache_` ids and deletes the excess. Store snapshots
// carry no access times, so the sweep's victim choice is arbitrary
// (sorted-first) rather than LRU — acceptable for a cache whose worst
// case is a re-solve.
type FleetCache struct {
	st store.Store

	mu   sync.Mutex
	max  int
	puts int // Puts since the last sweep
}

// NewFleetCache wraps the shared store.
func NewFleetCache(st store.Store) *FleetCache {
	return &FleetCache{st: st, max: DefaultCacheMaxEntries}
}

// SetMaxEntries overrides the fleet-wide entry bound (0 or negative
// disables sweeping entirely).
func (c *FleetCache) SetMaxEntries(n int) {
	c.mu.Lock()
	c.max = n
	c.mu.Unlock()
}

// Put publishes a solved entry. The caller guarantees key is the
// service's hex content hash and solution is the domain wire form.
func (c *FleetCache) Put(key, domain string, solution json.RawMessage) error {
	if err := store.ValidateID(cacheMetaID(key)); err != nil {
		return err
	}
	err := c.st.WriteSnapshot(store.Snapshot{
		SessionID: cacheMetaID(key),
		Domain:    domain,
		Solution:  solution,
	})
	if err == nil {
		c.sweepMaybe()
	}
	return err
}

// Peek looks a key up; ok is false on miss or any store trouble.
func (c *FleetCache) Peek(key string) (domain string, solution json.RawMessage, ok bool) {
	if store.ValidateID(cacheMetaID(key)) != nil {
		return "", nil, false
	}
	snap, _, err := c.st.Load(cacheMetaID(key))
	if err != nil || len(snap.Solution) == 0 {
		return "", nil, false
	}
	return snap.Domain, snap.Solution, true
}

// sweepMaybe enforces the entry bound every max/4 Puts (clamped to
// [1,64] so small bounds still sweep and large ones don't List the store
// on every publish). Best effort: list or delete trouble just defers the
// sweep, and a concurrent Put re-adding a victim is only a cache miss.
func (c *FleetCache) sweepMaybe() {
	c.mu.Lock()
	max := c.max
	if max <= 0 {
		c.mu.Unlock()
		return
	}
	every := max / 4
	if every < 1 {
		every = 1
	}
	if every > 64 {
		every = 64
	}
	c.puts++
	due := c.puts >= every
	if due {
		c.puts = 0
	}
	c.mu.Unlock()
	if !due {
		return
	}
	ids, err := c.st.List()
	if err != nil {
		return
	}
	var keys []string
	for _, id := range ids {
		if strings.HasPrefix(id, cachePrefix) {
			keys = append(keys, id)
		}
	}
	// List is sorted; dropping from the front picks deterministic victims
	// so concurrent sweepers on different nodes converge instead of
	// thrashing each other's survivors.
	for len(keys) > max {
		c.st.Delete(keys[0]) //nolint:errcheck // best effort
		keys = keys[1:]
	}
}
