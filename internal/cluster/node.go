package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ilpec/internal/obs"
	"ilpec/internal/store"
)

// Config shapes one cluster node (an ecserve process joining the fleet).
type Config struct {
	// ID uniquely names this node in the cluster ("n1"). Two live
	// processes must never share an id; membership appends will conflict
	// loudly if they do.
	ID string
	// Addr is the node's serving base URL as routers should dial it
	// ("http://10.0.0.5:8080").
	Addr string
	// Store is the SHARED store all cluster nodes point at (the same
	// directory via store.NewSharedFile, or one store.Memory instance for
	// in-process tests).
	Store store.Store
	// HeartbeatInterval is how often the node re-registers (default 1s).
	HeartbeatInterval time.Duration
	// HeartbeatTTL is how long a beat keeps the node in the roster
	// (default 3×interval). It bounds how long routers keep hashing
	// sessions onto a crashed node.
	HeartbeatTTL time.Duration
	// LeaseTTL is the session-ownership lease duration (default 5s). It
	// bounds the failover gap: a successor can claim a dead node's
	// session at most LeaseTTL after its last commit or lookup.
	LeaseTTL time.Duration
	// Clock overrides time.Now for tests.
	Clock func() time.Time
	// Obs, when set, receives the node's cluster metrics: lease
	// acquire/renew/fence latency histograms, heartbeat counters, and a
	// heartbeat staleness gauge. Nil disables instrumentation.
	Obs *obs.Registry
}

func (c *Config) withDefaults() error {
	if c.ID == "" {
		return fmt.Errorf("cluster: node id required")
	}
	if err := store.ValidateID(nodeMetaID(c.ID)); err != nil {
		return fmt.Errorf("cluster: node id: %w", err)
	}
	if c.Store == nil {
		return fmt.Errorf("cluster: shared store required")
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = time.Second
	}
	if c.HeartbeatTTL <= 0 {
		c.HeartbeatTTL = 3 * c.HeartbeatInterval
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 5 * time.Second
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return nil
}

// Node bundles a member's view of the cluster: its own registration
// loop plus handles on the lease table and fleet cache. internal/service
// consumes it through Options.Cluster.
type Node struct {
	cfg     Config
	members *Membership
	leases  *Leases
	cache   *FleetCache

	// ready is true while the latest heartbeat landed: the node is
	// registered and the shared store is reachable. /readyz keys off it.
	ready atomic.Bool
	// lastBeat is the clock reading (unix nanos) of the last successful
	// heartbeat; zero until one lands. Backs the staleness gauge.
	lastBeat atomic.Int64

	beats     *obs.Counter
	beatFails *obs.Counter

	mu      sync.Mutex
	started bool
	stop    chan struct{}
	done    chan struct{}
}

// NewNode validates cfg and builds the node. Call Start to join the
// cluster.
func NewNode(cfg Config) (*Node, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	n := &Node{
		cfg:     cfg,
		members: NewMembership(cfg.Store),
		leases:  NewLeases(cfg.Store),
		cache:   NewFleetCache(cfg.Store),
	}
	if r := cfg.Obs; r != nil {
		n.leases.instrument(r)
		n.beats = r.Counter("ec_cluster_heartbeats_total", "Heartbeat attempts by this node.")
		n.beatFails = r.Counter("ec_cluster_heartbeat_failures_total", "Heartbeats that failed to land in the shared store.")
		r.GaugeFunc("ec_cluster_heartbeat_staleness_ms",
			"Milliseconds since the last successful heartbeat (-1 before the first).",
			func() int64 {
				last := n.lastBeat.Load()
				if last == 0 {
					return -1
				}
				return (n.Now().UnixNano() - last) / int64(time.Millisecond)
			})
	}
	return n, nil
}

// ID returns the node id.
func (n *Node) ID() string { return n.cfg.ID }

// Addr returns the node's advertised serving address.
func (n *Node) Addr() string { return n.cfg.Addr }

// LeaseTTL returns the configured session lease duration.
func (n *Node) LeaseTTL() time.Duration { return n.cfg.LeaseTTL }

// Now returns the node's clock reading (overridable in tests).
func (n *Node) Now() time.Time { return n.cfg.Clock() }

// Leases exposes the lease table (internal/service's ownership guard).
func (n *Node) Leases() *Leases { return n.leases }

// Cache exposes the fleet solve cache.
func (n *Node) Cache() *FleetCache { return n.cache }

// Membership exposes the roster (routers build rings from it).
func (n *Node) Membership() *Membership { return n.members }

// Start registers the node (one synchronous heartbeat, so a nil return
// means the fleet can see us) and launches the re-registration loop.
func (n *Node) Start() error {
	n.mu.Lock()
	if n.started {
		n.mu.Unlock()
		return nil
	}
	n.started = true
	n.stop = make(chan struct{})
	n.done = make(chan struct{})
	n.mu.Unlock()
	if err := n.beat(); err != nil {
		n.ready.Store(false)
		close(n.done)
		n.mu.Lock()
		n.started = false
		n.mu.Unlock()
		return err
	}
	go n.loop()
	return nil
}

func (n *Node) loop() {
	defer close(n.done)
	t := time.NewTicker(n.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			n.beat() //nolint:errcheck // outcome lands in ready
		}
	}
}

func (n *Node) beat() error {
	err := n.members.Heartbeat(n.cfg.ID, n.cfg.Addr, n.cfg.HeartbeatTTL, n.Now())
	n.ready.Store(err == nil)
	n.beats.Inc()
	if err != nil {
		n.beatFails.Inc()
	} else {
		n.lastBeat.Store(n.Now().UnixNano())
	}
	return err
}

// Ready reports whether the node's latest heartbeat landed — i.e. it is
// registered in the roster and the shared store answers.
func (n *Node) Ready() bool { return n.ready.Load() }

// Stop halts the heartbeat loop and deregisters (best effort: TTL
// expiry covers a store that will not answer). Idempotent.
func (n *Node) Stop() {
	n.mu.Lock()
	if !n.started {
		n.mu.Unlock()
		return
	}
	n.started = false
	close(n.stop)
	n.mu.Unlock()
	<-n.done
	n.ready.Store(false)
	n.members.Deregister(n.cfg.ID) //nolint:errcheck // best effort
}
