package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"ilpec/internal/store"
)

// Tombstone protocol: MarkDeleted makes ordinary acquires fail
// ErrSessionDeleted for every node (including the deleter), while
// AcquireForCreate reclaims the id and restores normal lease semantics.
func TestLeaseTombstone(t *testing.T) {
	st := store.NewMemory()
	l := NewLeases(st)
	now := time.UnixMilli(1_700_000_000_000)
	ttl := 5 * time.Second

	if _, err := l.Acquire("s1", "n1", ttl, now); err != nil {
		t.Fatal(err)
	}
	// A non-holder may not tombstone a live lease.
	if err := l.MarkDeleted("s1", "n2", now); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("MarkDeleted by non-holder: %v, want ErrLeaseHeld", err)
	}
	if err := l.MarkDeleted("s1", "n1", now); err != nil {
		t.Fatal(err)
	}
	if err := l.MarkDeleted("s1", "n1", now); err != nil {
		t.Fatalf("MarkDeleted must be idempotent: %v", err)
	}

	for _, node := range []string{"n1", "n2"} {
		if _, err := l.Acquire("s1", node, ttl, now); !errors.Is(err, ErrSessionDeleted) {
			t.Fatalf("Acquire by %s on tombstone: %v, want ErrSessionDeleted", node, err)
		}
	}
	// The tombstone holds past any TTL — it is not a lease that expires.
	if _, err := l.Acquire("s1", "n2", ttl, now.Add(time.Hour)); !errors.Is(err, ErrSessionDeleted) {
		t.Fatalf("Acquire much later: %v, want ErrSessionDeleted", err)
	}

	ls, reclaimed, err := l.AcquireForCreate("s1", "n2", ttl, now)
	if err != nil || !reclaimed {
		t.Fatalf("AcquireForCreate on tombstone: lease=%+v reclaimed=%v err=%v", ls, reclaimed, err)
	}
	// Normal semantics are back: the holder re-acquires, others are held out.
	if _, err := l.Acquire("s1", "n2", ttl, now); err != nil {
		t.Fatalf("holder re-acquire after reclaim: %v", err)
	}
	if _, err := l.Acquire("s1", "n3", ttl, now); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("competitor after reclaim: %v, want ErrLeaseHeld", err)
	}
	// A plain create of a never-deleted id reports reclaimed=false.
	if _, reclaimed, err := l.AcquireForCreate("fresh", "n1", ttl, now); err != nil || reclaimed {
		t.Fatalf("AcquireForCreate on fresh id: reclaimed=%v err=%v", reclaimed, err)
	}
}

// A tombstone fences a stale owner's Renew too: the CAS conflict resolves
// through Acquire, which must refuse rather than resurrect.
func TestLeaseTombstoneFencesRenew(t *testing.T) {
	st := store.NewMemory()
	l := NewLeases(st)
	now := time.UnixMilli(1_700_000_000_000)
	ttl := 5 * time.Second

	stale, err := l.Acquire("s1", "n1", ttl, now)
	if err != nil {
		t.Fatal(err)
	}
	// n1's lease lapses; n2 takes over and deletes.
	later := now.Add(6 * time.Second)
	if _, err := l.Acquire("s1", "n2", ttl, later); err != nil {
		t.Fatal(err)
	}
	if err := l.MarkDeleted("s1", "n2", later); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Renew(stale, ttl, later.Add(6*time.Second)); !errors.Is(err, ErrSessionDeleted) {
		t.Fatalf("stale renew after tombstone: %v, want ErrSessionDeleted", err)
	}
}

// The fleet cache must hold its shared-store footprint near the
// configured bound no matter how many distinct keys stream through.
func TestFleetCacheBounded(t *testing.T) {
	st := store.NewMemory()
	c := NewFleetCache(st)
	c.SetMaxEntries(8)

	for i := 0; i < 100; i++ {
		if err := c.Put(fmt.Sprintf("k%03d", i), "cnf", json.RawMessage(`{"v":1}`)); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, id := range ids {
		if strings.HasPrefix(id, "_cluster_cache_") {
			n++
		}
	}
	// The sweep runs every max/4 Puts, so the count may overshoot by one
	// sweep interval but never grow unbounded.
	if n > 8+2 {
		t.Fatalf("fleet cache holds %d entries, want <= 10 under a bound of 8", n)
	}
	// Recent keys survive (victims are sorted-first = oldest-sorted here).
	if _, _, ok := c.Peek("k099"); !ok {
		t.Fatal("most recent key swept; victim choice should drop the sorted front")
	}
}
