package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the per-node point count used when a Ring is
// built with vnodes <= 0. 160 points per node keeps the distribution
// skew over 10k ids within ~15% of fair share for small fleets (pinned
// by TestRingDistributionSkew) at negligible memory cost.
const DefaultVirtualNodes = 160

// Ring is a consistent-hash ring with virtual nodes. A key (session id)
// is owned by the node whose first point follows the key's hash point
// clockwise. Adding or removing one node moves only the keys in the
// arcs adjacent to that node's points — about K/N of K keys on an
// N-node ring — which is exactly the rebalance-minimizing property the
// router needs when ecserve nodes join and leave.
//
// Ring is immutable after Build; the router swaps whole rings
// atomically on membership changes. All methods are safe for concurrent
// readers.
type Ring struct {
	vnodes int
	nodes  []string // sorted, distinct
	points []point  // sorted by hash
}

// point is one virtual node: a position on the 64-bit hash circle.
type point struct {
	hash uint64
	node string
}

// BuildRing constructs a ring over the given node ids (duplicates
// ignored, order irrelevant). vnodes <= 0 selects DefaultVirtualNodes.
// An empty node list yields a ring whose Owner always reports false.
func BuildRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	distinct := make([]string, 0, len(nodes))
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		distinct = append(distinct, n)
	}
	sort.Strings(distinct)
	r := &Ring{vnodes: vnodes, nodes: distinct}
	r.points = make([]point, 0, len(distinct)*vnodes)
	for _, n := range distinct {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: hashPoint(n, v), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Deterministic tie-break so equal hashes (vanishingly rare)
		// cannot make ownership depend on sort stability.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// hashPoint positions virtual node v of a node id on the circle.
// SHA-256 (first 8 bytes, big endian) keeps placement uniform and
// stable across processes and releases — router and nodes must agree.
func hashPoint(node string, v int) uint64 {
	return hashKey(node + "#" + strconv.Itoa(v))
}

// hashKey positions a session id on the circle.
func hashKey(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// Nodes returns the distinct node ids on the ring, sorted.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Len returns the number of distinct nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// Owner returns the node that owns key. ok is false on an empty ring.
func (r *Ring) Owner(key string) (node string, ok bool) {
	if len(r.points) == 0 {
		return "", false
	}
	return r.points[r.search(key)].node, true
}

// Successors returns up to n distinct nodes in ring order starting at
// key's owner: the preference list a router walks when the owner is
// unreachable (the first successor is the node that would own the key
// if the owner left, so session state converges to the same place the
// ring would rebalance it to).
func (r *Ring) Successors(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i, start := 0, r.search(key); len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// search finds the index of the first point at or after key's hash,
// wrapping to 0 past the highest point.
func (r *Ring) search(key string) int {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}
