package exp

import (
	"fmt"
	"time"

	"ilpec/internal/core"
	"ilpec/internal/encode"
	"ilpec/internal/gen"
	"ilpec/internal/heurilp"
	"ilpec/internal/ilp"
)

// Table1Row mirrors one row of the paper's Table 1: instance dimensions,
// the original solve runtime, and the normalized runtimes of the two
// enabling-EC formulations (specified constraints and objective function).
type Table1Row struct {
	Name     string
	Vars     int
	Clauses  int
	Orig     time.Duration
	SCNorm   float64 // EC (SC) runtime / original runtime
	OFNorm   float64 // EC (OF) runtime / original runtime
	Heur     bool    // solved with the heuristic ILP solver (paper's lower block)
	Flexible int     // clauses made flexible in OF mode (extra diagnostics)
	Err      string  // non-empty when a stage failed (e.g. SC infeasible)
}

// Table1Result carries all rows plus the paper-style aggregates.
type Table1Result struct {
	Rows []Table1Row
	// SmallAvgSC .. aggregates over the exact (upper) block.
	SmallAvgSC, SmallMedSC, SmallAvgOF, SmallMedOF float64
	// LargeAvgSC .. aggregates over the heuristic (lower) block.
	LargeAvgSC, LargeMedSC, LargeAvgOF, LargeMedOF float64
}

// RunTable1 regenerates Table 1 under the profile: for every instance it
// solves the plain set-cover ILP, then the enabling-EC models in SC and OF
// mode, reporting normalized runtimes.
func RunTable1(p Profile) Table1Result {
	specs := gen.Small()
	if !p.SmallOnly {
		specs = gen.All()
	}
	var out Table1Result
	for _, spec := range specs {
		row := runTable1Row(gen.Scaled(spec, p.Scale), spec.Large, p)
		out.Rows = append(out.Rows, row)
	}
	var sSC, sOF, lSC, lOF []float64
	for _, r := range out.Rows {
		if r.Err != "" {
			continue
		}
		if r.Heur {
			lSC = append(lSC, r.SCNorm)
			lOF = append(lOF, r.OFNorm)
		} else {
			sSC = append(sSC, r.SCNorm)
			sOF = append(sOF, r.OFNorm)
		}
	}
	out.SmallAvgSC, out.SmallMedSC = Mean(sSC), Median(sSC)
	out.SmallAvgOF, out.SmallMedOF = Mean(sOF), Median(sOF)
	out.LargeAvgSC, out.LargeMedSC = Mean(lSC), Median(lSC)
	out.LargeAvgOF, out.LargeMedOF = Mean(lOF), Median(lOF)
	return out
}

func runTable1Row(spec gen.Spec, heur bool, p Profile) Table1Row {
	row := Table1Row{Name: spec.Name, Vars: spec.Vars, Clauses: spec.Clauses, Heur: heur}
	f, _ := spec.Generate()
	row.Vars, row.Clauses = f.NumVars, f.NumClauses()

	exactOpts := ilp.Options{TimeLimit: p.ExactTimeLimit}
	heurOpts := heurilp.Options{Seed: spec.Seed, MaxFlips: p.HeurFlips}

	solveModel := func(m *ilp.Model) (time.Duration, bool) {
		start := time.Now()
		if heur {
			res := heurilp.Solve(m, heurOpts)
			return time.Since(start), res.Feasible
		}
		res := ilp.Solve(m, exactOpts)
		return time.Since(start), res.Status == ilp.Optimal || res.Status == ilp.Feasible
	}

	// Original instance.
	base := encode.New(f)
	orig, ok := solveModel(base.Model)
	if !ok {
		row.Err = "original solve failed"
		return row
	}
	row.Orig = orig

	// Enabling with specified constraints.
	scModel := core.BuildEnable(f, core.EnableOptions{Mode: core.EnableConstraints})
	scTime, scOK := solveModel(scModel.Encoding.Model)
	if scOK {
		row.SCNorm = ratio(scTime, orig)
	} else {
		row.Err = "SC solve failed"
	}

	// Enabling through the objective function.
	ofModel := core.BuildEnable(f, core.EnableOptions{Mode: core.EnableObjective})
	start := time.Now()
	var flexible int
	if heur {
		res := heurilp.Solve(ofModel.Encoding.Model, heurOpts)
		if res.Feasible {
			flexible = ofModel.FlexibleClauses(res.Solution)
		}
	} else {
		res := ilp.Solve(ofModel.Encoding.Model, exactOpts)
		if res.Status == ilp.Optimal || res.Status == ilp.Feasible {
			flexible = ofModel.FlexibleClauses(res.Solution)
		}
	}
	row.OFNorm = ratio(time.Since(start), orig)
	row.Flexible = flexible
	return row
}

func ratio(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Render produces the paper-style text table.
func (r Table1Result) Render() string {
	t := Table{
		Title:   "Table 1: Experimental Results for Enabling EC on SAT",
		Headers: []string{"Instance", "#Vars", "#Clauses", "Orig.Runtime(s)", "EC(SC) N.R.", "EC(OF) N.R."},
	}
	renderBlock := func(heur bool, avgSC, medSC, avgOF, medOF float64) {
		any := false
		for _, row := range r.Rows {
			if row.Heur != heur {
				continue
			}
			any = true
			sc, of := fmt.Sprintf("%.2f", row.SCNorm), fmt.Sprintf("%.2f", row.OFNorm)
			if row.Err != "" {
				sc, of = "-", "-"
			}
			t.Add(row.Name, fmt.Sprint(row.Vars), fmt.Sprint(row.Clauses), Seconds(row.Orig), sc, of)
		}
		if any {
			t.Add("average", "-", "-", "-", fmt.Sprintf("%.2f", avgSC), fmt.Sprintf("%.2f", avgOF))
			t.Add("median", "-", "-", "-", fmt.Sprintf("%.2f", medSC), fmt.Sprintf("%.2f", medOF))
		}
	}
	renderBlock(false, r.SmallAvgSC, r.SmallMedSC, r.SmallAvgOF, r.SmallMedOF)
	renderBlock(true, r.LargeAvgSC, r.LargeMedSC, r.LargeAvgOF, r.LargeMedOF)
	return t.Render()
}
