package exp

import (
	"strings"
	"testing"
	"time"

	"ilpec/internal/gen"
)

// testProfile selects the experiment scale: the Quick profile normally,
// Short under `go test -short` so CI stays fast.
func testProfile(t *testing.T) Profile {
	t.Helper()
	if testing.Short() {
		return Short()
	}
	return Quick()
}

func TestProfiles(t *testing.T) {
	for _, name := range []string{"ci", "quick", "short", "paper", ""} {
		p, err := ProfileByName(name)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if p.Scale <= 0 || p.Trials <= 0 {
			t.Fatalf("%q: bad profile %+v", name, p)
		}
	}
	if _, err := ProfileByName("bogus"); err == nil {
		t.Fatal("expected error")
	}
}

func TestStats(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Mean(xs) != 2 || Median(xs) != 2 {
		t.Fatal("stats wrong")
	}
	if Median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Fatal("even median wrong")
	}
	if Mean(nil) != 0 || Median(nil) != 0 {
		t.Fatal("empty stats wrong")
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{Title: "T", Headers: []string{"a", "bb"}}
	tb.Add("xxx", "1")
	tb.Add("y") // short row tolerated
	s := tb.Render()
	if !strings.Contains(s, "T\n") || !strings.Contains(s, "xxx") {
		t.Fatalf("render:\n%s", s)
	}
}

func TestSeconds(t *testing.T) {
	if Seconds(1500*time.Millisecond) != "1.50" {
		t.Fatalf("got %q", Seconds(1500*time.Millisecond))
	}
	if Seconds(120*time.Second) != "120" {
		t.Fatal("long format wrong")
	}
	if Seconds(2*time.Millisecond) != "0.0020" {
		t.Fatalf("short format wrong: %q", Seconds(2*time.Millisecond))
	}
}

// TestTable1Quick runs the enabling experiment on the quick profile and
// asserts the paper's qualitative shape: the OF overhead exceeds 1× on
// average (the paper reports 2.62× / 3.31×).
func TestTable1Quick(t *testing.T) {
	res := RunTable1(testProfile(t))
	if len(res.Rows) != len(gen.Small()) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	okRows := 0
	for _, r := range res.Rows {
		if r.Err == "" {
			okRows++
			if r.Orig <= 0 {
				t.Fatalf("%s: no original runtime", r.Name)
			}
			if r.SCNorm <= 0 || r.OFNorm <= 0 {
				t.Fatalf("%s: missing normalized runtimes", r.Name)
			}
		}
	}
	if okRows < len(res.Rows)/2 {
		t.Fatalf("too many failed rows: %d/%d ok", okRows, len(res.Rows))
	}
	if res.SmallAvgOF <= 0 {
		t.Fatal("no OF aggregate")
	}
	out := res.Render()
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "average") {
		t.Fatalf("render:\n%s", out)
	}
}

// TestTable2Quick asserts the fast-EC shape: sub-instances far smaller
// than the original and tiny normalized re-solve times.
func TestTable2Quick(t *testing.T) {
	res := RunTable2(testProfile(t))
	okRows := 0
	for _, r := range res.Rows {
		if r.Err != "" {
			continue
		}
		okRows++
		if r.AvgVars <= 0 || r.AvgVars >= float64(r.Vars) {
			t.Fatalf("%s: sub vars %v of %d not a reduction", r.Name, r.AvgVars, r.Vars)
		}
		if r.AvgCls >= float64(r.Clauses) {
			t.Fatalf("%s: sub clauses %v of %d", r.Name, r.AvgCls, r.Clauses)
		}
	}
	if okRows == 0 {
		t.Fatal("no successful rows")
	}
	out := res.Render()
	if !strings.Contains(out, "Table 2") {
		t.Fatalf("render:\n%s", out)
	}
}

// TestTable3Quick asserts the preserving-EC shape: with-EC preservation
// strictly dominates the plain baseline on average (the paper reports
// 73% → 97%).
func TestTable3Quick(t *testing.T) {
	res := RunTable3(testProfile(t))
	okRows := 0
	for _, r := range res.Rows {
		if r.Err != "" {
			continue
		}
		okRows++
		if r.PctWithEC < r.PctOriginal-1e-9 {
			t.Fatalf("%s: EC %.1f%% below baseline %.1f%%", r.Name, r.PctWithEC, r.PctOriginal)
		}
		if r.PctWithEC < 50 {
			t.Fatalf("%s: suspiciously low EC preservation %.1f%%", r.Name, r.PctWithEC)
		}
	}
	if okRows == 0 {
		t.Fatal("no successful rows")
	}
	if res.AvgEC < res.AvgOrig {
		t.Fatalf("aggregate EC %.1f%% below baseline %.1f%%", res.AvgEC, res.AvgOrig)
	}
	out := res.Render()
	if !strings.Contains(out, "Table 3") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestFigure2Quick(t *testing.T) {
	rows := RunFigure2(testProfile(t))
	ok := 0
	for _, r := range rows {
		if r.Err != "" {
			continue
		}
		ok++
		if r.ClsReduction < 1 {
			t.Fatalf("%s: no clause reduction (%.2f)", r.Name, r.ClsReduction)
		}
	}
	if ok == 0 {
		t.Fatal("no successful rows")
	}
	if !strings.Contains(RenderFigure2(rows), "Figure 2") {
		t.Fatal("render missing title")
	}
}

func TestFigure1Trace(t *testing.T) {
	spec := gen.Scaled(gen.Small()[1], 0.3) // ii8a1 scaled
	steps, err := Figure1Trace(spec, testProfile(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 3 {
		t.Fatalf("steps = %d, want 3 (enable, fast, preserving)", len(steps))
	}
	if steps[0].Action != "enable" {
		t.Fatalf("first step %q", steps[0].Action)
	}
	out := RenderFlowSteps(steps)
	if !strings.Contains(out, "Figure 1") {
		t.Fatal("render missing title")
	}
}
