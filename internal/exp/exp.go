// Package exp regenerates the paper's experimental tables (§8, Tables 1–3)
// and figure measurements on the synthetic benchmark families of
// internal/gen. Each runner produces typed rows plus a rendered text table
// whose columns mirror the paper's.
//
// Two profiles are provided: CI (scaled-down instances, minutes of
// runtime) and Paper (original dimensions — hours for the exact solves,
// exactly as the original CPLEX runs took hours on a 1 GHz Pentium III).
package exp

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Profile scales the experiment suite.
type Profile struct {
	// Name labels the profile in reports.
	Name string
	// Scale multiplies instance dimensions (1 = paper size).
	Scale float64
	// Trials is the number of randomized trials per instance (paper: 10).
	Trials int
	// SmallOnly drops the heuristic (Large) rows entirely.
	SmallOnly bool
	// ExactTimeLimit bounds each exact solve (0 = none). When the limit
	// stops a solve the row is reported with the best-so-far result.
	ExactTimeLimit time.Duration
	// HeurFlips bounds the heuristic solver's flip budget (0 = default).
	HeurFlips int64
}

// CI is the default profile: every table regenerates in minutes on a
// laptop while preserving the families, ratios, and trial protocol.
func CI() Profile {
	return Profile{Name: "ci", Scale: 0.10, Trials: 3, ExactTimeLimit: 20 * time.Second, HeurFlips: 60_000}
}

// Quick is a smoke-test profile for unit tests.
func Quick() Profile {
	return Profile{Name: "quick", Scale: 0.05, Trials: 2, SmallOnly: true, ExactTimeLimit: 5 * time.Second, HeurFlips: 20_000}
}

// Short is the `go test -short` profile: single-trial runs on the smallest
// instances with tight solve limits, so CI exercises every experiment path
// in seconds.
func Short() Profile {
	return Profile{Name: "short", Scale: 0.04, Trials: 1, SmallOnly: true, ExactTimeLimit: 2 * time.Second, HeurFlips: 10_000}
}

// Paper attempts the original dimensions. Expect very long exact solves on
// the big instances — the paper's own Table 1 reports 20089 seconds for
// ii8b2 on CPLEX.
func Paper() Profile {
	return Profile{Name: "paper", Scale: 1, Trials: 10, HeurFlips: 2_000_000}
}

// ProfileByName resolves "ci", "quick", "short" or "paper".
func ProfileByName(name string) (Profile, error) {
	switch strings.ToLower(name) {
	case "", "ci":
		return CI(), nil
	case "quick":
		return Quick(), nil
	case "short":
		return Short(), nil
	case "paper":
		return Paper(), nil
	default:
		return Profile{}, fmt.Errorf("exp: unknown profile %q (want ci, quick, or paper)", name)
	}
}

// ---- statistics ---------------------------------------------------------

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the median (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// ---- text-table rendering ------------------------------------------------

// Table is a minimal fixed-width text table renderer.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// Add appends a row (cells are used as-is).
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render produces the aligned text table.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// mutationSizes scales the paper's Table-2 protocol (eliminate 3
// variables, add 10 clauses — calibrated to its ≥64-variable instances) to
// the actual instance dimensions, so scaled-down CI instances receive a
// proportionally comparable change. At paper sizes the returned values are
// exactly 3 and 10.
func mutationSizes(vars, clauses int) (elim, add int) {
	elim = vars / 20
	if elim < 1 {
		elim = 1
	}
	if elim > 3 {
		elim = 3
	}
	add = clauses / 25
	if add < 2 {
		add = 2
	}
	if add > 10 {
		add = 10
	}
	return elim, add
}

// Seconds formats a duration as seconds with adaptive precision,
// echoing the paper's runtime columns.
func Seconds(d time.Duration) string {
	s := d.Seconds()
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0f", s)
	case s >= 1:
		return fmt.Sprintf("%.2f", s)
	default:
		return fmt.Sprintf("%.4f", s)
	}
}
