package exp

import (
	"fmt"
	"time"

	"ilpec/internal/core"
	"ilpec/internal/encode"
	"ilpec/internal/gen"
	"ilpec/internal/heurilp"
	"ilpec/internal/ilp"
)

// Table2Row mirrors one row of the paper's Table 2: original runtime, the
// average fast-EC sub-instance dimensions over the trials, and the (mean)
// fast-EC re-solve runtime — normalized for the exact block, absolute-vs-
// original inversion for the heuristic block, exactly as in the paper.
type Table2Row struct {
	Name    string
	Vars    int
	Clauses int
	Orig    time.Duration
	AvgVars float64
	AvgCls  float64
	NewTime time.Duration // mean fast-EC re-solve time
	NewNorm float64       // NewTime / Orig
	Trials  int
	Failed  int // trials whose mutation or re-solve failed
	Heur    bool
	Err     string
}

// Table2Result carries the rows and aggregates.
type Table2Result struct {
	Rows []Table2Row
	// Aggregates over the exact block (mirrors the paper's average/median
	// rows).
	SmallAvgVars, SmallMedVars, SmallAvgCls, SmallMedCls, SmallAvgNorm, SmallMedNorm float64
	// Aggregates over the heuristic block.
	LargeAvgVars, LargeMedVars, LargeAvgCls, LargeMedCls float64
}

// RunTable2 regenerates Table 2: per instance, solve the original once;
// then for each trial eliminate 3 variables and add 10 clauses
// (satisfiability-screened) and fast-EC re-solve.
func RunTable2(p Profile) Table2Result {
	specs := gen.Small()
	if !p.SmallOnly {
		specs = gen.All()
	}
	var out Table2Result
	for _, spec := range specs {
		out.Rows = append(out.Rows, runTable2Row(gen.Scaled(spec, p.Scale), spec.Large, p))
	}
	var sv, sc, sn, lv, lc []float64
	for _, r := range out.Rows {
		if r.Err != "" {
			continue
		}
		if r.Heur {
			lv = append(lv, r.AvgVars)
			lc = append(lc, r.AvgCls)
		} else {
			sv = append(sv, r.AvgVars)
			sc = append(sc, r.AvgCls)
			sn = append(sn, r.NewNorm)
		}
	}
	out.SmallAvgVars, out.SmallMedVars = Mean(sv), Median(sv)
	out.SmallAvgCls, out.SmallMedCls = Mean(sc), Median(sc)
	out.SmallAvgNorm, out.SmallMedNorm = Mean(sn), Median(sn)
	out.LargeAvgVars, out.LargeMedVars = Mean(lv), Median(lv)
	out.LargeAvgCls, out.LargeMedCls = Mean(lc), Median(lc)
	return out
}

func runTable2Row(spec gen.Spec, heur bool, p Profile) Table2Row {
	row := Table2Row{Name: spec.Name, Heur: heur, Trials: p.Trials}
	f, _ := spec.Generate()
	row.Vars, row.Clauses = f.NumVars, f.NumClauses()

	// Original solve (exact for the upper block, heuristic for the lower —
	// the paper then re-solves sub-instances with the off-the-shelf exact
	// solver in both cases).
	e := encode.New(f)
	start := time.Now()
	var orig []int8
	if heur {
		res := heurilp.Solve(e.Model, heurilp.Options{Seed: spec.Seed, MaxFlips: p.HeurFlips})
		if !res.Feasible {
			row.Err = "original heuristic solve failed"
			return row
		}
		orig = res.Solution
	} else {
		res := ilp.Solve(e.Model, ilp.Options{TimeLimit: p.ExactTimeLimit})
		if res.Status != ilp.Optimal && res.Status != ilp.Feasible {
			row.Err = "original exact solve failed"
			return row
		}
		orig = res.Solution
	}
	row.Orig = time.Since(start)
	pAsg := e.Decode(orig)

	mut := gen.NewMutator(spec.Seed * 7)
	elim, add := mutationSizes(f.NumVars, f.NumClauses())
	var vsum, csum float64
	var tsum time.Duration
	okTrials := 0
	for trial := 0; trial < p.Trials; trial++ {
		plan, err := mut.Table2Changes(f, pAsg, elim, add)
		if err != nil {
			row.Failed++
			continue
		}
		fPrime, err := core.Apply(f, plan.Changes)
		if err != nil {
			row.Failed++
			continue
		}
		t0 := time.Now()
		// Minimal-V policy: the reading of Figure 2 consistent with the
		// paper's own Table-2 sub-instance sizes (see core.SimplifyMinimal).
		res, err := core.FastResolve(fPrime, pAsg, core.FastOptions{
			Solve:   ilp.Options{TimeLimit: p.ExactTimeLimit},
			Minimal: true,
		})
		dt := time.Since(t0)
		if err != nil {
			row.Failed++
			continue
		}
		okTrials++
		vsum += float64(res.SubVars)
		csum += float64(res.SubClauses)
		tsum += dt
	}
	if okTrials == 0 {
		row.Err = "all trials failed"
		return row
	}
	row.AvgVars = vsum / float64(okTrials)
	row.AvgCls = csum / float64(okTrials)
	row.NewTime = tsum / time.Duration(okTrials)
	row.NewNorm = ratio(row.NewTime, row.Orig)
	return row
}

// Render produces the paper-style text table.
func (r Table2Result) Render() string {
	t := Table{
		Title:   "Table 2: Experimental Results for fast EC on SAT",
		Headers: []string{"Instance", "#Vars", "#Clauses", "Orig.Runtime(s)", "Ave.#Vars/Clauses", "New Runtime"},
	}
	for _, block := range []bool{false, true} {
		any := false
		for _, row := range r.Rows {
			if row.Heur != block {
				continue
			}
			any = true
			if row.Err != "" {
				t.Add(row.Name, fmt.Sprint(row.Vars), fmt.Sprint(row.Clauses), "-", "-", "-")
				continue
			}
			newCol := fmt.Sprintf("%.4f", row.NewNorm)
			if block {
				// The paper reports absolute seconds for the heuristic
				// block (the famous inversion: exact sub-solve slower than
				// the heuristic original).
				newCol = Seconds(row.NewTime)
			}
			t.Add(row.Name, fmt.Sprint(row.Vars), fmt.Sprint(row.Clauses), Seconds(row.Orig),
				fmt.Sprintf("%.1f/%.1f", row.AvgVars, row.AvgCls), newCol)
		}
		if any && !block {
			t.Add("average", "-", "-", "-",
				fmt.Sprintf("%.2f/%.2f", r.SmallAvgVars, r.SmallAvgCls),
				fmt.Sprintf("%.4f", r.SmallAvgNorm))
			t.Add("median", "-", "-", "-",
				fmt.Sprintf("%.2f/%.2f", r.SmallMedVars, r.SmallMedCls),
				fmt.Sprintf("%.4f", r.SmallMedNorm))
		}
		if any && block {
			t.Add("average", "-", "-", "-",
				fmt.Sprintf("%.2f/%.2f", r.LargeAvgVars, r.LargeAvgCls), "-")
			t.Add("median", "-", "-", "-",
				fmt.Sprintf("%.2f/%.2f", r.LargeMedVars, r.LargeMedCls), "-")
		}
	}
	return t.Render()
}
