package exp

import (
	"fmt"

	"ilpec/internal/cnf"
	"ilpec/internal/core"
	"ilpec/internal/encode"
	"ilpec/internal/gen"
	"ilpec/internal/heurilp"
	"ilpec/internal/ilp"
)

// Table3Row mirrors one row of the paper's Table 3: the percentage of the
// original assignment preserved by a plain re-solve versus the preserving-
// EC re-solve.
type Table3Row struct {
	Name        string
	Vars        int
	Clauses     int
	PctOriginal float64 // plain re-solve agreement with the original (%)
	PctWithEC   float64 // preserving-EC agreement (%)
	Trials      int
	Failed      int
	Heur        bool
	Err         string
}

// Table3Result carries the rows and the paper's average/median aggregates.
type Table3Result struct {
	Rows                           []Table3Row
	AvgOrig, MedOrig, AvgEC, MedEC float64
}

// RunTable3 regenerates Table 3: per instance, add & delete 5 variables
// and 5 clauses (screened to stay satisfiable), then compare preserved
// percentages of a plain re-solve vs preserving EC.
func RunTable3(p Profile) Table3Result {
	specs := gen.Small()
	if !p.SmallOnly {
		specs = gen.All()
	}
	var out Table3Result
	for _, spec := range specs {
		out.Rows = append(out.Rows, runTable3Row(gen.Scaled(spec, p.Scale), spec.Large, p))
	}
	var orig, ec []float64
	for _, r := range out.Rows {
		if r.Err != "" {
			continue
		}
		orig = append(orig, r.PctOriginal)
		ec = append(ec, r.PctWithEC)
	}
	out.AvgOrig, out.MedOrig = Mean(orig), Median(orig)
	out.AvgEC, out.MedEC = Mean(ec), Median(ec)
	return out
}

func runTable3Row(spec gen.Spec, heur bool, p Profile) Table3Row {
	row := Table3Row{Name: spec.Name, Heur: heur, Trials: p.Trials}
	f, _ := spec.Generate()
	row.Vars, row.Clauses = f.NumVars, f.NumClauses()

	// Initial solution (heuristic for the lower block, per the paper).
	e := encode.New(f)
	var pAsg cnf.Assignment
	if heur {
		res := heurilp.Solve(e.Model, heurilp.Options{Seed: spec.Seed, MaxFlips: p.HeurFlips})
		if !res.Feasible {
			row.Err = "original heuristic solve failed"
			return row
		}
		pAsg = e.Decode(res.Solution)
	} else {
		res := ilp.Solve(e.Model, ilp.Options{TimeLimit: p.ExactTimeLimit})
		if res.Status != ilp.Optimal && res.Status != ilp.Feasible {
			row.Err = "original exact solve failed"
			return row
		}
		pAsg = e.Decode(res.Solution)
	}

	mut := gen.NewMutator(spec.Seed * 13)
	var sumOrig, sumEC float64
	okTrials := 0
	for trial := 0; trial < p.Trials; trial++ {
		plan, err := mut.Table3Changes(f, pAsg, 5, 5, 5, 5)
		if err != nil {
			row.Failed++
			continue
		}
		fPrime, err := core.Apply(f, plan.Changes)
		if err != nil {
			row.Failed++
			continue
		}
		// Baseline: complete recalculation with no EC goals. Solved from a
		// different deterministic angle (no warm start) so agreement is
		// whatever the objective happens to produce — the paper's
		// "% Solution Original" column.
		plain, _, err := core.PlainResolve(fPrime, ilp.Options{TimeLimit: p.ExactTimeLimit})
		if err != nil {
			row.Failed++
			continue
		}
		pres, err := core.PreserveResolve(fPrime, pAsg, core.PreserveOptions{
			Mode:  core.PreserveMaximize,
			Solve: ilp.Options{TimeLimit: p.ExactTimeLimit},
		})
		if err != nil {
			row.Failed++
			continue
		}
		okTrials++
		sumOrig += plain.PreservedFraction(pAsg) * 100
		sumEC += pres.Preserved * 100
	}
	if okTrials == 0 {
		row.Err = "all trials failed"
		return row
	}
	row.PctOriginal = sumOrig / float64(okTrials)
	row.PctWithEC = sumEC / float64(okTrials)
	return row
}

// Render produces the paper-style text table.
func (r Table3Result) Render() string {
	t := Table{
		Title:   "Table 3: Experimental Results for preserving EC on SAT",
		Headers: []string{"Instance", "#Vars", "#Clauses", "%Solution Original", "%Solution with EC"},
	}
	for _, row := range r.Rows {
		if row.Err != "" {
			t.Add(row.Name, fmt.Sprint(row.Vars), fmt.Sprint(row.Clauses), "-", "-")
			continue
		}
		t.Add(row.Name, fmt.Sprint(row.Vars), fmt.Sprint(row.Clauses),
			fmt.Sprintf("%.1f", row.PctOriginal), fmt.Sprintf("%.1f", row.PctWithEC))
	}
	t.Add("average", "-", "-", fmt.Sprintf("%.2f", r.AvgOrig), fmt.Sprintf("%.2f", r.AvgEC))
	t.Add("median", "-", "-", fmt.Sprintf("%.2f", r.MedOrig), fmt.Sprintf("%.2f", r.MedEC))
	return t.Render()
}
