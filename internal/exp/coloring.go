package exp

import (
	"fmt"
	"time"

	"ilpec/internal/coloring"
	"ilpec/internal/ilp"
)

// ColoringRow reports the EC methodology on one graph-coloring instance —
// the second application domain the paper points to in §8. Columns follow
// the SAT tables: agreement of a plain re-color vs preserving EC, the fast
// EC region size, and spare-color coverage before/after enabling EC.
type ColoringRow struct {
	Name        string
	Vertices    int
	Edges       int
	K           int
	PctReplan   float64 // plain re-solve agreement after the change (%)
	PctFast     float64 // fast-EC agreement (%)
	PctPreserve float64 // preserving-EC agreement (%)
	FastRegion  float64 // mean recolored vertices per change
	SpareBase   int     // vertices with a spare color, plain coloring
	SpareEC     int     // vertices with a spare color, enabled coloring
	Trials      int
	Failed      int
	Err         string
}

// coloringSpec defines the sweep instances (planted-colorable graphs of
// growing size; deterministic seeds).
type coloringSpec struct {
	name    string
	n, k    int
	p       float64
	seed    int64
	changes int
}

func coloringSpecs(p Profile) []coloringSpec {
	specs := []coloringSpec{
		{"gc30.4", 30, 4, 0.35, 11, 2},
		{"gc40.5", 40, 5, 0.35, 13, 2},
		{"gc60.5", 60, 5, 0.25, 17, 3},
	}
	if p.SmallOnly {
		return specs[:2]
	}
	return specs
}

// RunColoring sweeps the EC components over graph-coloring instances.
func RunColoring(p Profile) []ColoringRow {
	var out []ColoringRow
	for _, spec := range coloringSpecs(p) {
		out = append(out, runColoringRow(spec, p))
	}
	return out
}

func runColoringRow(spec coloringSpec, p Profile) ColoringRow {
	row := ColoringRow{Name: spec.name, K: spec.k, Trials: p.Trials}
	g, plantedInts := coloring.PlantedColorable(spec.n, spec.k, spec.p, spec.seed)
	row.Vertices, row.Edges = g.N, g.NumEdges()
	opts := ilp.Options{TimeLimit: p.ExactTimeLimit}

	// Solve with one spare color beyond the planted chromatic bound: the
	// minimizing objective still prefers k colors, and the slack is the
	// design margin that lets EC absorb added edges.
	kk := spec.k + 1
	row.K = kk
	base, _, err := coloring.SolveExact(g, kk, coloring.Coloring(plantedInts), opts)
	if err != nil {
		row.Err = "base coloring failed"
		return row
	}
	row.SpareBase = coloring.VerifyFlexibility(g, base, kk).WithSpare
	if enabled, _, err := coloring.SolveEnable(g, kk, false, 2, base, opts); err == nil {
		row.SpareEC = coloring.VerifyFlexibility(g, enabled, kk).WithSpare
	}

	var repl, fast, pres, region float64
	ok := 0
	for trial := 0; trial < p.Trials; trial++ {
		changed := g.Clone()
		added := 0
		// Deterministically add conflicting edges (walk offset per trial).
		for u := 1; u <= g.N && added < spec.changes; u++ {
			for v := u + 1 + trial; v <= g.N && added < spec.changes; v++ {
				if base[u] == base[v] && !changed.HasEdge(u, v) {
					changed.AddEdge(u, v)
					added++
				}
			}
		}
		if added == 0 {
			continue
		}
		replan, _, err := coloring.SolveExact(changed, kk, nil, opts)
		if err != nil {
			row.Failed++
			continue
		}
		fres, err := coloring.FastRecolor(changed, base, kk, opts)
		if err != nil {
			row.Failed++
			continue
		}
		pcol, _, err := coloring.PreserveRecolor(changed, base, kk, opts)
		if err != nil {
			row.Failed++
			continue
		}
		ok++
		repl += replan.Agreement(base) * 100
		fast += fres.Coloring.Agreement(base) * 100
		pres += pcol.Agreement(base) * 100
		region += float64(fres.SubVertices)
	}
	if ok == 0 {
		row.Err = "no effective trials"
		return row
	}
	row.PctReplan = repl / float64(ok)
	row.PctFast = fast / float64(ok)
	row.PctPreserve = pres / float64(ok)
	row.FastRegion = region / float64(ok)
	return row
}

// RenderColoring renders the coloring sweep.
func RenderColoring(rows []ColoringRow) string {
	t := Table{
		Title: "Graph coloring: EC methodology on the second application domain",
		Headers: []string{"Instance", "V/E/k", "%Replan", "%Fast", "%Preserve",
			"Fast region", "Spare base→EC"},
	}
	for _, r := range rows {
		if r.Err != "" {
			t.Add(r.Name, fmt.Sprintf("%d/%d/%d", r.Vertices, r.Edges, r.K), "-", "-", "-", "-", "-")
			continue
		}
		t.Add(r.Name, fmt.Sprintf("%d/%d/%d", r.Vertices, r.Edges, r.K),
			fmt.Sprintf("%.1f", r.PctReplan),
			fmt.Sprintf("%.1f", r.PctFast),
			fmt.Sprintf("%.1f", r.PctPreserve),
			fmt.Sprintf("%.1f", r.FastRegion),
			fmt.Sprintf("%d→%d", r.SpareBase, r.SpareEC))
	}
	return t.Render()
}

// ColoringTimings measures replan vs fast-EC wall-clock on one instance
// (supplementary figure data).
func ColoringTimings(spec0 string, p Profile) (replan, fast time.Duration, err error) {
	for _, spec := range coloringSpecs(p) {
		if spec.name != spec0 {
			continue
		}
		g, plantedInts := coloring.PlantedColorable(spec.n, spec.k, spec.p, spec.seed)
		opts := ilp.Options{TimeLimit: p.ExactTimeLimit}
		kk := spec.k + 1
		base, _, berr := coloring.SolveExact(g, kk, coloring.Coloring(plantedInts), opts)
		if berr != nil {
			return 0, 0, berr
		}
		changed := g.Clone()
		for u := 1; u <= g.N; u++ {
			done := false
			for v := u + 1; v <= g.N; v++ {
				if base[u] == base[v] && !changed.HasEdge(u, v) {
					changed.AddEdge(u, v)
					done = true
					break
				}
			}
			if done {
				break
			}
		}
		t0 := time.Now()
		if _, _, err := coloring.SolveExact(changed, kk, nil, opts); err != nil {
			return 0, 0, err
		}
		replan = time.Since(t0)
		t0 = time.Now()
		if _, err := coloring.FastRecolor(changed, base, kk, opts); err != nil {
			return 0, 0, err
		}
		fast = time.Since(t0)
		return replan, fast, nil
	}
	return 0, 0, fmt.Errorf("exp: unknown coloring spec %q", spec0)
}
