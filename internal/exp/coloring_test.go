package exp

import (
	"strings"
	"testing"
)

func TestRunColoringQuick(t *testing.T) {
	rows := RunColoring(testProfile(t))
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	ok := 0
	for _, r := range rows {
		if r.Err != "" {
			continue
		}
		ok++
		// Table-3-style shape on coloring: preserving EC must dominate the
		// plain replan, and the fast region must stay below the graph size.
		if r.PctPreserve < r.PctReplan-1e-9 {
			t.Fatalf("%s: preserving %.1f%% below replan %.1f%%", r.Name, r.PctPreserve, r.PctReplan)
		}
		if r.FastRegion >= float64(r.Vertices) {
			t.Fatalf("%s: fast region %.1f not local", r.Name, r.FastRegion)
		}
		if r.SpareEC < r.SpareBase {
			t.Fatalf("%s: enabling reduced spare coverage %d -> %d", r.Name, r.SpareBase, r.SpareEC)
		}
	}
	if ok == 0 {
		t.Fatal("no successful rows")
	}
	out := RenderColoring(rows)
	if !strings.Contains(out, "Graph coloring") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestColoringTimings(t *testing.T) {
	replan, fast, err := ColoringTimings("gc30.4", testProfile(t))
	if err != nil {
		t.Fatal(err)
	}
	if replan <= 0 || fast <= 0 {
		t.Fatal("timings not measured")
	}
	if _, _, err := ColoringTimings("nope", testProfile(t)); err == nil {
		t.Fatal("expected error for unknown spec")
	}
}
