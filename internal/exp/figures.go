package exp

import (
	"fmt"
	"time"

	"ilpec/internal/core"
	"ilpec/internal/encode"
	"ilpec/internal/gen"
	"ilpec/internal/ilp"
)

// Figure2Row measures the Figure-2 simplification algorithm itself on one
// instance: the closure cost and the achieved reduction factors. The paper
// presents Figure 2 as pseudocode; this regenerates the quantitative
// behaviour behind its claim ("the size of our instance is decreased from
// ten clauses to three").
type Figure2Row struct {
	Name         string
	Vars         int
	Clauses      int
	SubVars      float64 // mean closure variable-set size (Figure-2 literal)
	SubClauses   float64 // mean marked-clause count (Figure-2 literal)
	MinVars      float64 // mean variable-set size, minimal-V policy
	MinClauses   float64 // mean marked-clause count, minimal-V policy
	VarReduction float64 // Vars / MinVars
	ClsReduction float64 // Clauses / MinClauses
	ClosureTime  time.Duration
	Trials       int
	Err          string
}

// RunFigure2 sweeps the instance families, measuring Simplify in
// isolation (no sub-solve) under Table-2-style mutations.
func RunFigure2(p Profile) []Figure2Row {
	specs := gen.Small()
	if !p.SmallOnly {
		specs = gen.All()
	}
	var out []Figure2Row
	for _, spec0 := range specs {
		spec := gen.Scaled(spec0, p.Scale)
		row := Figure2Row{Name: spec.Name, Trials: p.Trials}
		f, _ := spec.Generate()
		row.Vars, row.Clauses = f.NumVars, f.NumClauses()
		e := encode.New(f)
		res := ilp.Solve(e.Model, ilp.Options{TimeLimit: p.ExactTimeLimit})
		if res.Status != ilp.Optimal && res.Status != ilp.Feasible {
			row.Err = "original solve failed"
			out = append(out, row)
			continue
		}
		pAsg := e.Decode(res.Solution)
		mut := gen.NewMutator(spec.Seed * 3)
		elim, add := mutationSizes(f.NumVars, f.NumClauses())
		var vs, cs, mv, mc float64
		var total time.Duration
		ok := 0
		for trial := 0; trial < p.Trials; trial++ {
			plan, err := mut.Table2Changes(f, pAsg, elim, add)
			if err != nil {
				continue
			}
			fPrime, err := core.Apply(f, plan.Changes)
			if err != nil {
				continue
			}
			start := time.Now()
			simp := core.Simplify(fPrime, pAsg)
			total += time.Since(start)
			if simp.AlreadySatisfied {
				continue
			}
			minimal := core.SimplifyMinimal(fPrime, pAsg)
			ok++
			vs += float64(len(simp.Vars))
			cs += float64(len(simp.Marked))
			mv += float64(len(minimal.Vars))
			mc += float64(len(minimal.Marked))
		}
		if ok == 0 {
			row.Err = "no effective trials"
			out = append(out, row)
			continue
		}
		row.SubVars = vs / float64(ok)
		row.SubClauses = cs / float64(ok)
		row.MinVars = mv / float64(ok)
		row.MinClauses = mc / float64(ok)
		if row.MinVars > 0 {
			row.VarReduction = float64(row.Vars) / row.MinVars
		}
		if row.MinClauses > 0 {
			row.ClsReduction = float64(row.Clauses) / row.MinClauses
		}
		row.ClosureTime = total / time.Duration(p.Trials)
		out = append(out, row)
	}
	return out
}

// RenderFigure2 renders the Figure-2 measurement table.
func RenderFigure2(rows []Figure2Row) string {
	t := Table{
		Title:   "Figure 2: fast-EC simplification — closure sizes and reduction factors",
		Headers: []string{"Instance", "#Vars", "#Clauses", "Fig2 #V/#C", "MinV #V/#C", "Reduction V/C", "Closure time"},
	}
	for _, r := range rows {
		if r.Err != "" {
			t.Add(r.Name, fmt.Sprint(r.Vars), fmt.Sprint(r.Clauses), "-", "-", "-", "-")
			continue
		}
		t.Add(r.Name, fmt.Sprint(r.Vars), fmt.Sprint(r.Clauses),
			fmt.Sprintf("%.1f/%.1f", r.SubVars, r.SubClauses),
			fmt.Sprintf("%.1f/%.1f", r.MinVars, r.MinClauses),
			fmt.Sprintf("%.0fx/%.0fx", r.VarReduction, r.ClsReduction),
			r.ClosureTime.String())
	}
	return t.Render()
}

// Figure1Trace runs the full Figure-1 flow end to end on one instance and
// returns the recorded steps — the executable regeneration of the flow
// diagram.
func Figure1Trace(spec gen.Spec, p Profile) ([]core.Step, error) {
	f, _ := spec.Generate()
	fl := core.NewFlow(f, core.FlowOptions{
		Enable: &core.EnableOptions{Mode: core.EnableObjective},
		Exact:  ilp.Options{TimeLimit: p.ExactTimeLimit},
	})
	if _, err := fl.Solve(); err != nil {
		return nil, err
	}
	mut := gen.NewMutator(spec.Seed * 11)
	plan, err := mut.Table2Changes(fl.Formula(), fl.Solution(), 1, 3)
	if err != nil {
		return nil, err
	}
	if _, err := fl.ApplyChange(plan.Changes, core.FastEC); err != nil {
		return nil, err
	}
	plan2, err := gen.NewMutator(spec.Seed*17).Table3Changes(fl.Formula(), fl.Solution(), 1, 1, 2, 1)
	if err != nil {
		return nil, err
	}
	if _, err := fl.ApplyChange(plan2.Changes, core.PreservingEC); err != nil {
		return nil, err
	}
	return fl.History(), nil
}

// RenderFlowSteps renders a Figure-1 trace.
func RenderFlowSteps(steps []core.Step) string {
	t := Table{
		Title:   "Figure 1: generic ILP-based EC flow — executed trace",
		Headers: []string{"Step", "Action", "Vars", "Clauses", "Preserved", "Runtime"},
	}
	for i, s := range steps {
		pres := "-"
		if s.Action == "fast" || s.Action == "preserving" || s.Action == "replan" || s.Action == "relax" {
			pres = fmt.Sprintf("%.2f", s.Preserved)
		}
		t.Add(fmt.Sprint(i+1), s.Action, fmt.Sprint(s.Vars), fmt.Sprint(s.Clauses), pres, s.Runtime.String())
	}
	return t.Render()
}
