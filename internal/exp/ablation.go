package exp

import (
	"fmt"
	"time"

	"ilpec/internal/core"
	"ilpec/internal/encode"
	"ilpec/internal/gen"
	"ilpec/internal/ilp"
)

// AblationRow compares two solver configurations on one instance.
type AblationRow struct {
	Name     string
	Instance string
	// A and B label the two arms; NodesA/NodesB and TimeA/TimeB carry the
	// branch-and-bound effort of each.
	A, B           string
	NodesA, NodesB int64
	TimeA, TimeB   time.Duration
	Err            string
}

// RunAblations measures the design-choice ablations of DESIGN.md §5 that
// reduce to two-arm comparisons: warm-start vs cold EC re-solve, covering
// bound + greedy branching vs LP bounding, and fast EC vs full re-solve.
func RunAblations(p Profile) []AblationRow {
	var out []AblationRow
	spec := gen.Scaled(mustSpec("ii8a1"), p.Scale)
	f, _ := spec.Generate()
	opts := ilp.Options{TimeLimit: p.ExactTimeLimit}

	// Arm 1: warm vs cold on a preserving-EC style re-solve.
	row := AblationRow{Name: "warm-start", Instance: spec.Name, A: "warm", B: "cold"}
	pAsg, _, err := core.PlainResolve(f, opts)
	if err != nil {
		row.Err = err.Error()
		out = append(out, row)
	} else {
		mut := gen.NewMutator(spec.Seed * 41)
		plan, merr := mut.Table3Changes(f, pAsg, 2, 2, 3, 2)
		if merr != nil {
			row.Err = merr.Error()
			out = append(out, row)
		} else {
			fPrime, _ := core.Apply(f, plan.Changes)
			e := encode.New(fPrime)
			warmOpts := opts
			warmOpts.WarmStart = e.EncodeAssignment(pAsg.Grow(fPrime.NumVars))
			t0 := time.Now()
			ra := ilp.Solve(e.Model, warmOpts)
			row.TimeA = time.Since(t0)
			row.NodesA = ra.Nodes
			t0 = time.Now()
			rb := ilp.Solve(e.Model, opts)
			row.TimeB = time.Since(t0)
			row.NodesB = rb.Nodes
			out = append(out, row)
		}
	}

	// Arm 2: covering bound (default) vs LP-relaxation bounding.
	row2 := AblationRow{Name: "bounding", Instance: spec.Name, A: "cover", B: "lp"}
	e := encode.New(f)
	t0 := time.Now()
	ra := ilp.Solve(e.Model, ilp.Options{Bounding: ilp.CombBound, TimeLimit: p.ExactTimeLimit})
	row2.TimeA = time.Since(t0)
	row2.NodesA = ra.Nodes
	t0 = time.Now()
	rb := ilp.Solve(e.Model, ilp.Options{Bounding: ilp.LPBound, TimeLimit: p.ExactTimeLimit})
	row2.TimeB = time.Since(t0)
	row2.NodesB = rb.Nodes
	out = append(out, row2)

	// Arm 3: fast EC vs full re-solve on a small change.
	row3 := AblationRow{Name: "fast-vs-full", Instance: spec.Name, A: "fast", B: "full"}
	if pAsg != nil {
		mut := gen.NewMutator(spec.Seed * 43)
		elim, add := mutationSizes(f.NumVars, f.NumClauses())
		plan, merr := mut.Table2Changes(f, pAsg, elim, add)
		if merr != nil {
			row3.Err = merr.Error()
		} else {
			fPrime, _ := core.Apply(f, plan.Changes)
			t0 = time.Now()
			fres, ferr := core.FastResolve(fPrime, pAsg, core.FastOptions{Solve: opts, Minimal: true})
			row3.TimeA = time.Since(t0)
			if ferr == nil {
				row3.NodesA = fres.ILP.Nodes
			}
			t0 = time.Now()
			_, full, perr := core.PlainResolve(fPrime, opts)
			row3.TimeB = time.Since(t0)
			if perr == nil {
				row3.NodesB = full.Nodes
			}
		}
	}
	out = append(out, row3)

	// Arm 4: presolve + cut separation vs the raw kernel on the base
	// encoding (the PR-4 reduction layer).
	row4 := AblationRow{Name: "presolve", Instance: spec.Name, A: "presolve+cuts", B: "raw"}
	preOpts := opts
	preOpts.Presolve = true
	preOpts.Cuts = true
	t0 = time.Now()
	rp := ilp.Solve(e.Model, preOpts)
	row4.TimeA = time.Since(t0)
	row4.NodesA = rp.Nodes
	t0 = time.Now()
	rr := ilp.Solve(e.Model, opts)
	row4.TimeB = time.Since(t0)
	row4.NodesB = rr.Nodes
	if rp.Status != rr.Status {
		row4.Err = fmt.Sprintf("status mismatch: %v vs %v", rp.Status, rr.Status)
	}
	out = append(out, row4)
	return out
}

func mustSpec(name string) gen.Spec {
	s, ok := gen.ByName(name)
	if !ok {
		panic("exp: unknown spec " + name)
	}
	return s
}

// RenderAblations renders the two-arm comparisons.
func RenderAblations(rows []AblationRow) string {
	t := Table{
		Title:   "Ablations: design-choice comparisons (DESIGN.md §5)",
		Headers: []string{"Ablation", "Instance", "Arm A", "Nodes/Time A", "Arm B", "Nodes/Time B"},
	}
	for _, r := range rows {
		if r.Err != "" {
			t.Add(r.Name, r.Instance, r.A, "-", r.B, "-")
			continue
		}
		t.Add(r.Name, r.Instance,
			r.A, fmt.Sprintf("%d / %s", r.NodesA, Seconds(r.TimeA)),
			r.B, fmt.Sprintf("%d / %s", r.NodesB, Seconds(r.TimeB)))
	}
	return t.Render()
}
