package exp

import (
	"strings"
	"testing"
)

func TestRunAblations(t *testing.T) {
	rows := RunAblations(testProfile(t))
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Name] = true
	}
	for _, want := range []string{"warm-start", "bounding", "fast-vs-full", "presolve"} {
		if !names[want] {
			t.Fatalf("missing ablation %q", want)
		}
	}
	for _, r := range rows {
		if r.Err != "" {
			continue
		}
		switch r.Name {
		case "warm-start":
			if r.NodesA > r.NodesB {
				t.Fatalf("warm start explored more nodes (%d > %d)", r.NodesA, r.NodesB)
			}
		case "fast-vs-full":
			if r.TimeA > r.TimeB*4 {
				t.Fatalf("fast EC (%v) much slower than full re-solve (%v)", r.TimeA, r.TimeB)
			}
		case "presolve":
			// Reductions reshape the branching order, so node counts are
			// not strictly monotone per instance; gate only on
			// pathological blowups (the perf claim itself lives in
			// BenchmarkSolverPresolve*/BENCH_PR4.json).
			if r.NodesA > 2*r.NodesB+1000 {
				t.Fatalf("presolve+cuts blew the search up (%d vs %d nodes)", r.NodesA, r.NodesB)
			}
		}
	}
	out := RenderAblations(rows)
	if !strings.Contains(out, "Ablations") || !strings.Contains(out, "warm-start") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestMutationSizes(t *testing.T) {
	// At paper dimensions the protocol is exactly 3 eliminations and 10
	// added clauses.
	if e, a := mutationSizes(64, 254); e != 3 || a != 10 {
		t.Fatalf("paper scale: %d/%d", e, a)
	}
	if e, a := mutationSizes(600, 2550); e != 3 || a != 10 {
		t.Fatalf("paper scale large: %d/%d", e, a)
	}
	// Tiny instances receive proportionally small changes with floors.
	if e, a := mutationSizes(12, 47); e != 1 || a != 2 {
		t.Fatalf("tiny scale: %d/%d", e, a)
	}
	if e, a := mutationSizes(40, 320); e != 2 || a != 10 {
		t.Fatalf("mid scale: %d/%d", e, a)
	}
}
