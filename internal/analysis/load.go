package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one type-checked target package.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves patterns (e.g. "./...") with the go tool and type-checks
// every matched non-test package. Dependencies are not re-parsed: their
// compiled export data (produced by `go list -export`) feeds the gc
// importer, which keeps a whole-repo load to one compile plus one parse
// of the target sources. Test files are outside ecvet's scope — `go
// list`'s GoFiles excludes them by construction.
func Load(patterns []string) ([]*Package, error) {
	pkgs, err := goList(append([]string{"-export", "-deps"}, patterns...))
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	var targets []*listPkg
	for _, p := range pkgs {
		if p.Error != nil {
			return nil, fmt.Errorf("load %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && !p.DepOnly && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := NewImporter(fset, exports)
	var out []*Package
	for _, t := range targets {
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("parse %s: %w", t.ImportPath, err)
			}
			files = append(files, f)
		}
		tpkg, info, err := TypeCheck(fset, t.ImportPath, files, imp)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", t.ImportPath, err)
		}
		out = append(out, &Package{Path: t.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info})
	}
	return out, nil
}

// goList runs `go list -json=<fields> <args...>` and decodes the package
// stream.
func goList(args []string) ([]*listPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Error"}, args...)...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("go list: %s", msg)
	}
	dec := json.NewDecoder(&stdout)
	var pkgs []*listPkg
	for {
		p := new(listPkg)
		if err := dec.Decode(p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ExportData resolves the export-data files for the given import paths
// (and their dependencies). The analysistest harness uses it to satisfy
// testdata imports without a full build-system integration.
func ExportData(importPaths []string) (map[string]string, error) {
	if len(importPaths) == 0 {
		return map[string]string{}, nil
	}
	pkgs, err := goList(append([]string{"-export", "-deps", "--"}, importPaths...))
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	for _, p := range pkgs {
		if p.Error != nil {
			return nil, fmt.Errorf("load %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// NewImporter builds a gc-export-data importer over the path→file map
// produced by Load/ExportData.
func NewImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// TypeCheck type-checks one parsed package against the importer and
// returns its types plus a fully populated types.Info.
func TypeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	var firstErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if firstErr != nil {
		return nil, nil, firstErr
	}
	if err != nil {
		return nil, nil, err
	}
	return tpkg, info, nil
}
