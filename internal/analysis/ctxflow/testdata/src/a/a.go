package a

import (
	"context"
	"net/http"
)

func handler(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want `context.Background below the request path`
	_ = ctx
	resp, err := http.Get("http://backend/v1/metrics") // want `http\.Get drops the request context`
	if err == nil {
		resp.Body.Close()
	}
}

func goodHandler(w http.ResponseWriter, r *http.Request) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, "http://backend/v1/metrics", nil) // ok
	if err != nil {
		return
	}
	resp, err := http.DefaultClient.Do(req) // ok: Do takes the request's context
	if err == nil {
		resp.Body.Close()
	}
}

func clientFanout(ctx context.Context, c *http.Client) error {
	resp, err := c.Get("http://backend/x") // want `\(\*http\.Client\)\.Get drops the request context`
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

func todoBelow(ctx context.Context) context.Context {
	return context.TODO() // want `context.TODO below the request path`
}

func defaulted(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background() // ok: sanctioned defaulting idiom
	}
	return ctx
}

func doReq(ctx context.Context, q string) error { return nil }

func nilArg(ctx context.Context) error {
	return doReq(nil, "x") // want `nil passed as context.Context`
}

func threaded(ctx context.Context) error {
	return doReq(ctx, "x") // ok
}

func backgroundLoop() {
	ctx := context.Background() // ok: not a request-path function
	_ = ctx
}

func audited(ctx context.Context) {
	span := context.Background() //ecvet:ignore ctxflow detached span must outlive the request
	_ = span
}
