package ctxflow_test

import (
	"testing"

	"ilpec/internal/analysis/analysistest"
	"ilpec/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, ctxflow.Analyzer, "testdata/src/a")
}
