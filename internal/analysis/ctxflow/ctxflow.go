// Package ctxflow enforces context threading on the request path. A
// function that receives a context.Context (or an *http.Request, whose
// Context() is the request's) is a request-path function; inside it:
//
//   - context.Background()/context.TODO() are flagged — a fresh root
//     context detaches the work from the caller's deadline and
//     cancellation. The nil-defaulting idiom
//     `if ctx == nil { ctx = context.Background() }` on the function's
//     own ctx parameter is the one sanctioned use;
//   - the context-less HTTP convenience calls (http.Get/Post/PostForm/
//     Head and the same methods on *http.Client) are flagged — use
//     http.NewRequestWithContext;
//   - passing a literal nil where the callee expects a context.Context
//     is flagged.
//
// Functions without a context parameter (main, background loops with
// their own lifecycles) are out of scope.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"ilpec/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "check that request-path functions thread their context instead of minting context.Background()",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ctxParams := requestPathParams(pass, fn)
			if ctxParams == nil {
				continue
			}
			checkFunc(pass, fn, ctxParams)
		}
	}
	return nil
}

// isNamed reports whether t (after pointer unwrapping) is the named type
// pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

func isContextType(t types.Type) bool { return isNamed(t, "context", "Context") }

// requestPathParams returns the objects of fn's context.Context
// parameters when fn is a request-path function (has a ctx or
// *http.Request parameter); nil otherwise.
func requestPathParams(pass *analysis.Pass, fn *ast.FuncDecl) map[types.Object]bool {
	params := make(map[types.Object]bool)
	requestPath := false
	for _, field := range fn.Type.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok {
			continue
		}
		if isContextType(tv.Type) {
			requestPath = true
			for _, name := range field.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					params[obj] = true
				}
			}
		}
		if isNamed(tv.Type, "net/http", "Request") {
			requestPath = true
		}
	}
	if !requestPath {
		return nil
	}
	return params
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, ctxParams map[types.Object]bool) {
	exemptDefaulting := defaultingCalls(pass, fn, ctxParams)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if pkg, fnName, ok := packageCall(pass, sel); ok && pkg == "context" && (fnName == "Background" || fnName == "TODO") {
				if !exemptDefaulting[call] {
					pass.Reportf(call.Pos(), "context.%s below the request path: thread the caller's context instead", fnName)
				}
				return true
			}
			if bare, ok := contextlessHTTP(pass, sel); ok {
				pass.Reportf(call.Pos(), "%s drops the request context: use http.NewRequestWithContext", bare)
				return true
			}
		}
		// nil where the callee wants a context.Context.
		sig, ok := pass.TypesInfo.Types[call.Fun].Type.(*types.Signature)
		if !ok {
			return true
		}
		for i, arg := range call.Args {
			if i >= sig.Params().Len() && !sig.Variadic() {
				break
			}
			idx := i
			if idx >= sig.Params().Len() {
				idx = sig.Params().Len() - 1
			}
			if isContextType(sig.Params().At(idx).Type()) && analysis.IsNilExpr(pass.TypesInfo, arg) {
				pass.Reportf(arg.Pos(), "nil passed as context.Context on the request path: pass the caller's context")
			}
		}
		return true
	})
}

// packageCall resolves sel as a package-level call pkg.Fn, returning the
// package path and function name.
func packageCall(pass *analysis.Pass, sel *ast.SelectorExpr) (pkgPath, fnName string, ok bool) {
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return "", "", false
	}
	return pkgName.Imported().Path(), sel.Sel.Name, true
}

// contextlessHTTP matches the context-less convenience entry points:
// http.Get/Post/PostForm/Head and the same methods on *http.Client.
func contextlessHTTP(pass *analysis.Pass, sel *ast.SelectorExpr) (string, bool) {
	switch sel.Sel.Name {
	case "Get", "Post", "PostForm", "Head":
	default:
		return "", false
	}
	if pkg, fnName, ok := packageCall(pass, sel); ok {
		if pkg == "net/http" {
			return "http." + fnName, true
		}
		return "", false
	}
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return "", false
	}
	if isNamed(selection.Recv(), "net/http", "Client") {
		return "(*http.Client)." + sel.Sel.Name, true
	}
	return "", false
}

// defaultingCalls returns the context.Background() calls that implement
// the sanctioned `if ctx == nil { ctx = context.Background() }` idiom on
// one of fn's own context parameters.
func defaultingCalls(pass *analysis.Pass, fn *ast.FuncDecl, ctxParams map[types.Object]bool) map[*ast.CallExpr]bool {
	exempt := make(map[*ast.CallExpr]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		cond, ok := ifs.Cond.(*ast.BinaryExpr)
		if !ok || cond.Op != token.EQL {
			return true
		}
		var condID *ast.Ident
		switch {
		case analysis.IsNilExpr(pass.TypesInfo, cond.Y):
			condID, _ = ast.Unparen(cond.X).(*ast.Ident)
		case analysis.IsNilExpr(pass.TypesInfo, cond.X):
			condID, _ = ast.Unparen(cond.Y).(*ast.Ident)
		}
		if condID == nil || !ctxParams[pass.TypesInfo.Uses[condID]] {
			return true
		}
		for _, stmt := range ifs.Body.List {
			assign, ok := stmt.(*ast.AssignStmt)
			if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
				continue
			}
			lhs, ok := ast.Unparen(assign.Lhs[0]).(*ast.Ident)
			if !ok || pass.TypesInfo.Uses[lhs] != pass.TypesInfo.Uses[condID] {
				continue
			}
			if call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr); ok {
				exempt[call] = true
			}
		}
		return true
	})
	return exempt
}
