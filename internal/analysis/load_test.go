package analysis

import "testing"

// TestLoadTypechecks exercises the whole loader path — go list -export,
// export-data import, full type-check — against this very package.
func TestLoadTypechecks(t *testing.T) {
	pkgs, err := Load([]string{"ilpec/internal/analysis"})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Path != "ilpec/internal/analysis" {
		t.Errorf("path = %q", p.Path)
	}
	if p.Types == nil || p.Types.Scope().Lookup("Analyzer") == nil {
		t.Errorf("type information incomplete: no Analyzer in package scope")
	}
	if len(p.Files) == 0 || len(p.Info.Defs) == 0 {
		t.Errorf("files or defs missing: %d files, %d defs", len(p.Files), len(p.Info.Defs))
	}
}
