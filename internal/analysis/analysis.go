// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary, just large enough to host the
// ecvet analyzers (cmd/ecvet). The build environment vendors nothing and
// reaches no module proxy, so the real x/tools framework cannot be
// imported; the subset here — Analyzer, Pass, Diagnostic, a package loader
// built on `go list -export` plus the gc export-data importer, and an
// analysistest-style harness (internal/analysis/analysistest) — is what
// the project invariants need and nothing more.
//
// The analyzers themselves live in subpackages (lockguard, walfirst,
// leasefence, transientclass, ctxflow, nilness, shadow); each documents
// the invariant it enforces. Suppressions use
//
//	//ecvet:ignore <analyzer> <reason>
//
// on the offending line (or the line directly above). The reason is
// mandatory: an ignore without one is itself a diagnostic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one invariant check. Run inspects a single
// type-checked package via the Pass and reports findings with
// Pass.Reportf; returning an error aborts the whole ecvet run (reserved
// for internal failures, not findings).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass presents one package to one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, in a shape that marshals directly to the
// cmd/ecvet -json output.
type Diagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// RunAnalyzers applies every analyzer to every package, filters
// //ecvet:ignore suppressions, and returns the surviving diagnostics in
// (file, line, col, analyzer) order.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		var diags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
		out = append(out, FilterIgnores(pkg.Fset, pkg.Files, diags)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// NewPass builds a standalone Pass whose diagnostics accumulate into
// diags; the analysistest harness uses it to run one analyzer against a
// hand-loaded package.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, diags *[]Diagnostic) *Pass {
	return &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info, diags: diags}
}
