// Package analysistest is a golden-file harness for the ecvet analyzers,
// mirroring golang.org/x/tools/go/analysis/analysistest: a testdata
// package is parsed and type-checked, the analyzer runs over it, and its
// diagnostics are matched against `// want "regexp"` comments on the
// offending lines. Suppression comments (//ecvet:ignore) are applied
// before matching, so suppression behaviour is testable the same way.
//
// Testdata packages may import the standard library; imports are
// resolved through the same `go list -export` + gc-importer path the
// real driver uses.
package analysistest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"ilpec/internal/analysis"
)

// Run analyzes the single package in dir (e.g. "testdata/src/a") with a
// and reports any mismatch between its diagnostics and the `// want`
// expectations to t.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		t.Fatalf("parse %s: %v", dir, err)
	}
	imports := importPaths(files)
	exports, err := analysis.ExportData(imports)
	if err != nil {
		t.Fatalf("resolve imports %v: %v", imports, err)
	}
	pkgPath := "ecvet.test/" + filepath.Base(dir)
	tpkg, info, err := analysis.TypeCheck(fset, pkgPath, files, analysis.NewImporter(fset, exports))
	if err != nil {
		t.Fatalf("typecheck %s: %v", dir, err)
	}

	var diags []analysis.Diagnostic
	pass := analysis.NewPass(a, fset, files, tpkg, info, &diags)
	if err := a.Run(pass); err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, dir, err)
	}
	diags = analysis.FilterIgnores(fset, files, diags)

	match(t, fset, files, diags)
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func importPaths(files []*ast.File) []string {
	seen := make(map[string]bool)
	var out []string
	for _, f := range files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || seen[path] {
				continue
			}
			seen[path] = true
			out = append(out, path)
		}
	}
	sort.Strings(out)
	return out
}

// expectation is one `// want` comment: the regexps diagnostics on that
// line must match.
type expectation struct {
	file string
	line int
	res  []*regexp.Regexp
	raw  []string
}

var wantRe = regexp.MustCompile(`^//\s*want\s+(.*)$`)

func parseExpectations(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Slash)
				exp := &expectation{file: pos.Filename, line: pos.Line}
				rest := strings.TrimSpace(m[1])
				for rest != "" {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
					}
					pattern, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: malformed want pattern %q", pos.Filename, pos.Line, q)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pattern, err)
					}
					exp.res = append(exp.res, re)
					exp.raw = append(exp.raw, pattern)
					rest = strings.TrimSpace(rest[len(q):])
				}
				out = append(out, exp)
			}
		}
	}
	return out
}

func match(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	expects := parseExpectations(t, fset, files)
	byLine := make(map[string]*expectation)
	lineKey := func(file string, line int) string { return file + ":" + strconv.Itoa(line) }
	for _, e := range expects {
		byLine[lineKey(e.file, e.line)] = e
	}

	matched := make(map[*expectation]int)
	for _, d := range diags {
		e := byLine[lineKey(d.File, d.Line)]
		if e == nil {
			t.Errorf("%s:%d:%d: unexpected diagnostic: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
			continue
		}
		found := false
		for _, re := range e.res {
			if re.MatchString(d.Message) {
				found = true
				matched[e]++
				break
			}
		}
		if !found {
			t.Errorf("%s:%d:%d: diagnostic %q matches no want pattern %q", d.File, d.Line, d.Col, d.Message, e.raw)
		}
	}
	for _, e := range expects {
		if matched[e] < len(e.res) {
			t.Errorf("%s:%d: want %d diagnostic(s) matching %q, got %d", e.file, e.line, len(e.res), e.raw, matched[e])
		}
	}
}
