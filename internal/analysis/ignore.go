package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

const ignorePrefix = "//ecvet:ignore"

// FilterIgnores drops diagnostics suppressed by an
//
//	//ecvet:ignore <analyzer> <reason>
//
// comment on the diagnostic's line or the line directly above it. The
// reason is mandatory — a directive without one is replaced by a
// diagnostic of its own (analyzer "ecvet"), so the escape hatch cannot be
// used silently.
func FilterIgnores(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	type key struct {
		file     string
		line     int
		analyzer string
	}
	ignored := make(map[key]bool)
	var out []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := fset.Position(c.Slash)
				fields := strings.Fields(strings.TrimPrefix(c.Text, ignorePrefix))
				if len(fields) < 2 {
					out = append(out, Diagnostic{
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Analyzer: "ecvet",
						Message:  "malformed //ecvet:ignore: want \"//ecvet:ignore <analyzer> <reason>\" (reason is mandatory)",
					})
					continue
				}
				ignored[key{pos.Filename, pos.Line, fields[0]}] = true
				ignored[key{pos.Filename, pos.Line + 1, fields[0]}] = true
			}
		}
	}
	for _, d := range diags {
		if ignored[key{d.File, d.Line, d.Analyzer}] {
			continue
		}
		out = append(out, d)
	}
	return out
}
