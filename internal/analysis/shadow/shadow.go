// Package shadow is a conservative reimplementation of the vet "shadow"
// analyzer (the x/tools original cannot be vendored in this build
// environment). It flags an inner declaration of a variable that shadows
// an outer function-local variable of the identical type when the outer
// variable is still used after the inner scope ends — the combination
// where a stray := instead of = silently splits one variable into two.
//
// Package-level shadows and different-type shadows are ignored, matching
// the upstream analyzer's low-noise defaults. Going beyond upstream,
// three idiomatic shadow shapes are also exempt, because flagging them
// would drown the real findings:
//
//   - declarations in the init clause of an if/for/switch statement
//     (`if v, ok := m[k]; ok {...}`);
//   - function and function-literal parameters/results shadowing outer
//     variables (`go func(i int) {...}(i)` — the capture idiom);
//   - error-typed variables named err (`x, err := f()` re-declared per
//     block is how Go is written; each err is checked on the next line).
package shadow

import (
	"go/ast"
	"go/token"
	"go/types"

	"ilpec/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "shadow",
	Doc:  "check for shadowed variables that are still used in the outer scope afterwards",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	uses := make(map[types.Object][]token.Pos)
	for id, obj := range pass.TypesInfo.Uses {
		uses[obj] = append(uses[obj], id.Pos())
	}

	// Scopes outside any function body: the climb from an inner
	// declaration stops there, keeping the check function-local. Also
	// record which scopes belong to statements with init clauses, whose
	// declarations are idiomatic shadows.
	nonLocal := map[*types.Scope]bool{pass.Pkg.Scope(): true}
	initClause := make(map[*types.Scope]bool)
	for node, scope := range pass.TypesInfo.Scopes {
		if scope.Parent() == pass.Pkg.Scope() {
			nonLocal[scope] = true // file scopes
		}
		switch node.(type) {
		case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt:
			initClause[scope] = true
		case *ast.FuncType:
			initClause[scope] = true // parameters and results
		}
	}

	for id, obj := range pass.TypesInfo.Defs {
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() || id.Name == "_" {
			continue
		}
		if id.Name == "err" && analysis.ImplementsError(v.Type()) {
			continue // the per-block err := idiom
		}
		inner := v.Parent()
		if inner == nil || nonLocal[inner] || initClause[inner] {
			continue
		}
		for outer := inner.Parent(); outer != nil && !nonLocal[outer]; outer = outer.Parent() {
			shadowed, ok := outer.Lookup(id.Name).(*types.Var)
			if !ok || shadowed == v || shadowed.IsField() {
				continue
			}
			if shadowed.Pos() >= v.Pos() || !types.Identical(shadowed.Type(), v.Type()) {
				break
			}
			// Only a shadow that can bite: the outer variable is read or
			// written again after the inner scope has ended.
			liveAfter := false
			for _, use := range uses[shadowed] {
				if use > inner.End() {
					liveAfter = true
					break
				}
			}
			if liveAfter {
				pass.Reportf(id.Pos(), "declaration of %q shadows declaration at %s; the outer variable is used after this scope",
					id.Name, pass.Fset.Position(shadowed.Pos()))
			}
			break
		}
	}
	return nil
}
