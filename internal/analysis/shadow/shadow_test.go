package shadow_test

import (
	"testing"

	"ilpec/internal/analysis/analysistest"
	"ilpec/internal/analysis/shadow"
)

func TestShadow(t *testing.T) {
	analysistest.Run(t, shadow.Analyzer, "testdata/src/a")
}
