package a

import "errors"

func work() int      { return 1 }
func other() int     { return 2 }
func mayFail() error { return nil }

func shadowed(b bool) int {
	n := work()
	if b {
		n := other() // want `shadows declaration`
		_ = n
	}
	return n // the outer n is still live here
}

func differentType(b bool) int {
	n := work()
	if b {
		n := "not an int" // ok: different type, deliberate reuse
		_ = n
	}
	return n
}

func notLiveAfter(b bool) {
	n := work()
	_ = n
	if b {
		n := other() // ok: outer n never used again
		_ = n
	}
}

func declaredLater(b bool) int {
	if b {
		n := work() // ok: nothing shadowed, outer n comes later
		_ = n
	}
	n := other()
	return n
}

func initClauseShadow(b bool) int {
	n := work()
	if n := other(); b { // ok: init-clause shadowing is the idiom
		_ = n
	}
	return n
}

func funcLitParam(xs []int) int {
	i := work()
	f := func(i int) int { return i + 1 } // ok: parameter shadowing is the capture idiom
	for range xs {
		i = f(i)
	}
	return i
}

func errIdiom(b bool) error {
	err := mayFail()
	if b {
		err := mayFail() // ok: the per-block err := idiom is exempt
		if err != nil {
			return err
		}
	}
	return err
}

func errOtherName(b bool) error {
	failure := mayFail()
	if b {
		failure := errors.New("inner") // want `shadows declaration`
		_ = failure
	}
	return failure
}

func audited(b bool) int {
	n := work()
	if b {
		n := other() //ecvet:ignore shadow deliberate rebinding in this arm
		_ = n
	}
	return n
}
