package a

import "sync"

type Counter struct {
	mu sync.Mutex
	n  int // guarded by mu

	stats map[string]int // guarded by mu
}

func (c *Counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++ // ok: mu held
}

func (c *Counter) ReadBoth() (int, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n, c.stats["x"] // ok: mu held
}

func (c *Counter) Bad() int {
	return c.n // want `Counter\.n is guarded by mu`
}

func (c *Counter) BadStats() int {
	return c.stats["x"] // want `Counter\.stats is guarded by mu`
}

func (c *Counter) incLocked() {
	c.n++ // ok: Locked suffix, caller holds mu
}

func NewCounter() *Counter {
	c := &Counter{stats: map[string]int{}}
	c.n = 1 // ok: construction before publication
	return c
}

func (c *Counter) Audited() int {
	return c.n //ecvet:ignore lockguard racy-by-design metrics read
}

// ---- self-deadlock ---------------------------------------------------------

func (c *Counter) Nested() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.acquiring() // want `self-deadlock`
}

func (c *Counter) acquiring() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *Counter) Sequential() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.acquiring() // ok: mu released before the call
}

func (c *Counter) Branchy(b bool) {
	if b {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}
	c.acquiring() // ok: branch state does not leak past the if
}
