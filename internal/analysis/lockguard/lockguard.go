// Package lockguard enforces the project's mutex annotations: a struct
// field whose comment says "guarded by <mu>" may only be accessed in
// functions that visibly hold that lock, and a method that acquires a
// mutex must not call another method that acquires the same mutex on the
// same receiver (self-deadlock, sync.Mutex being non-reentrant).
//
// A guarded access is accepted when any of the following holds:
//
//   - the enclosing function's name ends in "Locked" — the project
//     convention for "caller holds the lock";
//   - the enclosing function contains a <root>.<mu>.Lock() or .RLock()
//     call on the same root expression as the access;
//   - the accessed value is a local built from a composite literal in the
//     same function (construction before publication needs no lock).
//
// The analyzer is annotation-driven: structs without "guarded by"
// comments are not checked.
package lockguard

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"ilpec/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockguard",
	Doc:  "check that 'guarded by mu' fields are accessed with the lock held and that lock-acquiring methods do not nest",
	Run:  run,
}

var guardedRe = regexp.MustCompile(`(?i)\bguarded by (\w+)`)

// guards maps struct type name -> guarded field name -> mutex field name.
type guards map[string]map[string]string

func run(pass *analysis.Pass) error {
	gs := collectGuards(pass.Files)
	if len(gs) == 0 {
		return nil
	}
	acquirers := collectAcquirers(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkGuardedAccess(pass, fn, gs)
			checkSelfDeadlock(pass, fn, acquirers)
		}
	}
	return nil
}

func collectGuards(files []*ast.File) guards {
	gs := make(guards)
	analysis.ForEachStructField(files, func(structName string, f *ast.Field, comment string) {
		m := guardedRe.FindStringSubmatch(comment)
		if m == nil {
			return
		}
		if gs[structName] == nil {
			gs[structName] = make(map[string]string)
		}
		for _, name := range f.Names {
			gs[structName][name.Name] = m[1]
		}
	})
	return gs
}

// guardedField resolves sel to (struct type name, field, mutex) when sel
// selects a guarded field of an annotated struct declared in this
// package.
func guardedField(pass *analysis.Pass, gs guards, sel *ast.SelectorExpr) (muName string, ok bool) {
	tv, found := pass.TypesInfo.Types[sel.X]
	if !found {
		return "", false
	}
	named, _ := analysis.BaseStruct(tv.Type)
	if named == nil || named.Obj().Pkg() != pass.Pkg {
		return "", false
	}
	fields := gs[named.Obj().Name()]
	if fields == nil {
		return "", false
	}
	mu, ok := fields[sel.Sel.Name]
	return mu, ok
}

func checkGuardedAccess(pass *analysis.Pass, fn *ast.FuncDecl, gs guards) {
	if strings.HasSuffix(fn.Name.Name, "Locked") {
		return
	}
	locked := lockedRoots(fn)
	ctors := analysis.ConstructorLocals(pass.TypesInfo, fn, func(n *types.Named) bool {
		return n.Obj().Pkg() == pass.Pkg && gs[n.Obj().Name()] != nil
	})
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		mu, ok := guardedField(pass, gs, sel)
		if !ok {
			return true
		}
		root, ok := analysis.ExprPath(sel.X)
		if !ok {
			return true // computed base: cannot name a lock root, leave to review
		}
		if locked[root+"."+mu] {
			return true
		}
		if id, isIdent := ast.Unparen(sel.X).(*ast.Ident); isIdent {
			if obj := pass.TypesInfo.Uses[id]; obj != nil && ctors[obj] {
				return true
			}
		}
		named, _ := analysis.BaseStruct(pass.TypesInfo.Types[sel.X].Type)
		pass.Reportf(sel.Sel.Pos(), "%s.%s is guarded by %s, but %s.%s is accessed without %s.%s held",
			named.Obj().Name(), sel.Sel.Name, mu, root, sel.Sel.Name, root, mu)
		return true
	})
}

// lockedRoots returns the set of "<root>.<mu>" strings for which the
// function contains a Lock or RLock call.
func lockedRoots(fn *ast.FuncDecl) map[string]bool {
	locked := make(map[string]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if path, kind := lockCall(call); kind == lockAcquire {
			locked[path] = true
		}
		return true
	})
	return locked
}

type lockKind int

const (
	lockNone lockKind = iota
	lockAcquire
	lockRelease
)

// lockCall classifies a call as <path>.Lock/RLock (acquire) or
// <path>.Unlock/RUnlock (release), returning the "<root>.<mu>" path.
func lockCall(call *ast.CallExpr) (path string, kind lockKind) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", lockNone
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = lockAcquire
	case "Unlock", "RUnlock":
		kind = lockRelease
	default:
		return "", lockNone
	}
	p, ok := analysis.ExprPath(sel.X)
	if !ok {
		return "", lockNone
	}
	return p, kind
}

// ---- self-deadlock ---------------------------------------------------------

// acquirer identifies a method that acquires "<recv>.<mu>" somewhere in
// its body (with the receiver name normalized away).
type acquirer struct {
	typeName string
	method   string
}

// collectAcquirers finds, for each method, the set of receiver-rooted
// mutex paths it acquires ("mu", "svc.mu", ...).
func collectAcquirers(pass *analysis.Pass) map[acquirer]map[string]bool {
	acq := make(map[acquirer]map[string]bool)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			recv, typeName, ok := analysis.ReceiverInfo(fn)
			if !ok {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if _, isLit := n.(*ast.FuncLit); isLit {
					return false // deferred/async bodies run elsewhere
				}
				call, isCall := n.(*ast.CallExpr)
				if !isCall {
					return true
				}
				if path, kind := lockCall(call); kind == lockAcquire && strings.HasPrefix(path, recv+".") {
					key := acquirer{typeName, fn.Name.Name}
					if acq[key] == nil {
						acq[key] = make(map[string]bool)
					}
					acq[key][strings.TrimPrefix(path, recv+".")] = true
				}
				return true
			})
		}
	}
	return acq
}

// checkSelfDeadlock walks fn's statements in source order with a
// held-lock counter per receiver-rooted mutex, flagging calls
// recv.M(...) where M also acquires a mutex currently held. Branch bodies
// are explored with copies of the state, so a lock balanced inside one
// arm does not leak into the next statement.
func checkSelfDeadlock(pass *analysis.Pass, fn *ast.FuncDecl, acq map[acquirer]map[string]bool) {
	recv, typeName, ok := analysis.ReceiverInfo(fn)
	if !ok {
		return
	}
	w := &deadlockWalker{pass: pass, recv: recv, typeName: typeName, acq: acq}
	w.stmts(fn.Body.List, map[string]int{})
}

type deadlockWalker struct {
	pass     *analysis.Pass
	recv     string
	typeName string
	acq      map[acquirer]map[string]bool
}

func (w *deadlockWalker) stmts(list []ast.Stmt, held map[string]int) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

func copyHeld(held map[string]int) map[string]int {
	c := make(map[string]int, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

func (w *deadlockWalker) stmt(s ast.Stmt, held map[string]int) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.stmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.exprs(s.Cond, held, false)
		w.stmt(s.Body, copyHeld(held))
		if s.Else != nil {
			w.stmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.exprs(s.Cond, held, false)
		}
		body := copyHeld(held)
		w.stmt(s.Body, body)
		if s.Post != nil {
			w.stmt(s.Post, body)
		}
	case *ast.RangeStmt:
		w.exprs(s.X, held, false)
		w.stmt(s.Body, copyHeld(held))
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		for _, clause := range clauseBodies(s) {
			w.stmts(clause, copyHeld(held))
		}
	case *ast.CaseClause:
		w.stmts(s.Body, held)
	case *ast.DeferStmt:
		// A deferred Unlock does not release the lock at this point in
		// the walk; a deferred acquiring call is still checked, since it
		// runs before earlier-registered deferred unlocks.
		w.call(s.Call, held, true)
	case *ast.GoStmt:
		// Runs on another goroutine: no self-deadlock with our stack.
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	default:
		w.exprsInStmt(s, held)
	}
}

func clauseBodies(s ast.Stmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	var list []ast.Stmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		list = s.Body.List
	case *ast.TypeSwitchStmt:
		list = s.Body.List
	case *ast.SelectStmt:
		list = s.Body.List
	}
	for _, c := range list {
		switch c := c.(type) {
		case *ast.CaseClause:
			out = append(out, c.Body)
		case *ast.CommClause:
			out = append(out, c.Body)
		}
	}
	return out
}

// exprsInStmt scans a simple statement's expressions for calls, in
// source order.
func (w *deadlockWalker) exprsInStmt(s ast.Stmt, held map[string]int) {
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			w.call(n, held, false)
			return false // call() recurses into arguments itself
		}
		return true
	})
}

func (w *deadlockWalker) exprs(e ast.Expr, held map[string]int, _ bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			w.call(n, held, false)
			return false
		}
		return true
	})
}

func (w *deadlockWalker) call(call *ast.CallExpr, held map[string]int, deferred bool) {
	// Arguments evaluate before the call itself.
	for _, arg := range call.Args {
		w.exprs(arg, held, false)
	}
	if path, kind := lockCall(call); kind != lockNone && strings.HasPrefix(path, w.recv+".") {
		mu := strings.TrimPrefix(path, w.recv+".")
		switch kind {
		case lockAcquire:
			held[mu]++
		case lockRelease:
			if !deferred && held[mu] > 0 {
				held[mu]--
			}
		}
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	base, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok || base.Name != w.recv {
		return
	}
	callee := acquirer{w.typeName, sel.Sel.Name}
	for mu := range w.acq[callee] {
		if held[mu] > 0 {
			w.pass.Reportf(call.Pos(), "%s.%s is called with %s.%s held, but it acquires %s.%s itself (self-deadlock)",
				w.recv, sel.Sel.Name, w.recv, mu, w.recv, mu)
			return
		}
	}
}
