package lockguard_test

import (
	"testing"

	"ilpec/internal/analysis/analysistest"
	"ilpec/internal/analysis/lockguard"
)

func TestLockguard(t *testing.T) {
	analysistest.Run(t, lockguard.Analyzer, "testdata/src/a")
}
