package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ExprPath renders a pure identifier/selector chain ("s", "sess.svc",
// "c.inner") for structural comparison of lock roots and guarded-field
// bases. ok is false for anything with calls, indexing, or other
// computation — those are never treated as the same root.
func ExprPath(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		base, ok := ExprPath(e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	case *ast.ParenExpr:
		return ExprPath(e.X)
	}
	return "", false
}

// BaseStruct unwraps pointers and returns the named struct type behind t,
// or nil when t is not a (pointer to a) named struct.
func BaseStruct(t types.Type) (*types.Named, *types.Struct) {
	if t == nil {
		return nil, nil
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	return named, st
}

// CommentHas reports whether any line of the comment group contains
// marker.
func CommentHas(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.Contains(c.Text, marker) {
			return true
		}
	}
	return false
}

// FieldComment joins a struct field's doc and trailing line comment.
func FieldComment(f *ast.Field) string {
	var parts []string
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg != nil {
			parts = append(parts, cg.Text())
		}
	}
	return strings.Join(parts, "\n")
}

// ForEachStructField visits every named struct field declared in the
// files, passing the struct's type name, the field, and its combined
// comment text.
func ForEachStructField(files []*ast.File, visit func(structName string, f *ast.Field, comment string)) {
	for _, file := range files {
		for _, decl := range file.Decls {
			gen, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gen.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, f := range st.Fields.List {
					visit(ts.Name.Name, f, FieldComment(f))
				}
			}
		}
	}
}

// ReceiverInfo returns the receiver identifier and base type name of a
// method declaration; ok is false for plain functions and anonymous
// receivers.
func ReceiverInfo(fn *ast.FuncDecl) (recv string, typeName string, ok bool) {
	if fn.Recv == nil || len(fn.Recv.List) != 1 || len(fn.Recv.List[0].Names) != 1 {
		return "", "", false
	}
	t := fn.Recv.List[0].Type
	if star, isStar := t.(*ast.StarExpr); isStar {
		t = star.X
	}
	if idx, isIdx := t.(*ast.IndexExpr); isIdx { // generic receiver
		t = idx.X
	}
	id, isIdent := t.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	return fn.Recv.List[0].Names[0].Name, id.Name, true
}

// IsNilExpr reports whether e is the predeclared nil (possibly
// parenthesized).
func IsNilExpr(info *types.Info, e ast.Expr) bool {
	if p, ok := e.(*ast.ParenExpr); ok {
		return IsNilExpr(info, p.X)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Uses[id]
	_, isNil := obj.(*types.Nil)
	return isNil
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// ImplementsError reports whether t satisfies the built-in error
// interface.
func ImplementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorIface)
}

// ConstructorLocals returns the local variables in fn that are
// initialized from a composite literal (or &literal) of a struct accepted
// by isTarget. Code building a fresh value owns it exclusively until it
// is published, so guarded-field and WAL rules do not apply yet.
func ConstructorLocals(info *types.Info, fn *ast.FuncDecl, isTarget func(*types.Named) bool) map[types.Object]bool {
	locals := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, lhs := range assign.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			rhs := assign.Rhs[i]
			if u, ok := rhs.(*ast.UnaryExpr); ok {
				rhs = u.X
			}
			lit, ok := rhs.(*ast.CompositeLit)
			if !ok {
				continue
			}
			named, _ := BaseStruct(info.Types[lit].Type)
			if named == nil || !isTarget(named) {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj != nil {
				locals[obj] = true
			}
		}
		return true
	})
	return locals
}

// CalleeObject resolves the object a call expression invokes: the
// function or method behind f(...) / x.M(...), nil when the callee is
// dynamic (a func value) or unresolved.
func CalleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// FuncDeclsByObject maps every declared function/method in the files to
// its declaration, keyed by types object, so callee annotations can be
// looked up from call sites.
func FuncDeclsByObject(info *types.Info, files []*ast.File) map[types.Object]*ast.FuncDecl {
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, file := range files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok {
				if obj := info.Defs[fn.Name]; obj != nil {
					decls[obj] = fn
				}
			}
		}
	}
	return decls
}
