package transientclass_test

import (
	"testing"

	"ilpec/internal/analysis/analysistest"
	"ilpec/internal/analysis/transientclass"
)

func TestTransientclass(t *testing.T) {
	analysistest.Run(t, transientclass.Analyzer, "testdata/src/a")
}
