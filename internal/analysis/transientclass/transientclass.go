// Package transientclass enforces the error-classification discipline:
// code that branches on a store (or any) error must go through
// errors.Is/errors.As or the store.IsTransient classifier, never through
// identity comparison or string matching. Wrapped errors defeat ==, and
// message matching breaks the moment a message is reworded — both were
// real failure classes the retry/quarantine machinery depends on
// avoiding.
//
// Flagged:
//
//   - err1 == err2 / err1 != err2 where both operands are error-typed
//     and neither is nil (nil checks are the idiom, not classification);
//   - switch on an error value with non-nil case values;
//   - string matching on err.Error(): strings.Contains/HasPrefix/
//     HasSuffix/EqualFold over it, or ==/!= against a string.
//
// Methods named Is or As are exempt: the errors.Is protocol requires the
// target identity comparison inside them.
package transientclass

import (
	"go/ast"
	"go/token"
	"go/types"

	"ilpec/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "transientclass",
	Doc:  "check that error branching uses errors.Is/store.IsTransient, not == or string matching",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if fn.Recv != nil && (fn.Name.Name == "Is" || fn.Name.Name == "As") {
				continue // errors.Is/As protocol implementations
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func isErrorExpr(pass *analysis.Pass, e ast.Expr) bool {
	if analysis.IsNilExpr(pass.TypesInfo, e) {
		return false
	}
	tv, ok := pass.TypesInfo.Types[e]
	return ok && analysis.ImplementsError(tv.Type)
}

// errorString reports whether e is a call to the Error method of an
// error value (the raw message).
func errorString(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
		return false
	}
	return isErrorExpr(pass, sel.X)
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return true
			}
			if errorString(pass, n.X) || errorString(pass, n.Y) {
				pass.Reportf(n.OpPos, "string comparison on err.Error(): classify with errors.Is or store.IsTransient")
				return true
			}
			if isErrorExpr(pass, n.X) && isErrorExpr(pass, n.Y) {
				pass.Reportf(n.OpPos, "error values compared with %s: wrapped errors defeat identity — use errors.Is (or store.IsTransient)", n.Op)
			}
		case *ast.SwitchStmt:
			if n.Tag == nil || !isErrorExpr(pass, n.Tag) {
				return true
			}
			for _, c := range n.Body.List {
				clause := c.(*ast.CaseClause)
				for _, v := range clause.List {
					if !analysis.IsNilExpr(pass.TypesInfo, v) {
						pass.Reportf(v.Pos(), "switch on error identity: wrapped errors defeat case matching — use errors.Is (or store.IsTransient)")
					}
				}
			}
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[pkg].(*types.PkgName)
			if !ok || pkgName.Imported().Path() != "strings" {
				return true
			}
			switch sel.Sel.Name {
			case "Contains", "HasPrefix", "HasSuffix", "EqualFold":
			default:
				return true
			}
			for _, arg := range n.Args {
				if errorString(pass, arg) {
					pass.Reportf(n.Pos(), "strings.%s on err.Error(): classify with errors.Is or store.IsTransient", sel.Sel.Name)
					break
				}
			}
		}
		return true
	})
}
