package a

import (
	"errors"
	"io"
	"strings"
)

var ErrGone = errors.New("gone")

func badEq(err error) bool {
	return err == io.EOF // want `wrapped errors defeat identity`
}

func badNeq(err error) bool {
	if err != ErrGone { // want `wrapped errors defeat identity`
		return false
	}
	return true
}

func goodNil(err error) bool {
	return err == nil // ok: nil check, not classification
}

func goodIs(err error) bool {
	return errors.Is(err, io.EOF) // ok
}

func badSwitch(err error) string {
	switch err {
	case nil: // ok: nil case
		return "ok"
	case io.EOF: // want `switch on error identity`
		return "eof"
	}
	return ""
}

func badContains(err error) bool {
	return strings.Contains(err.Error(), "gone") // want `strings.Contains on err.Error`
}

func badStringEq(err error) bool {
	return err.Error() == "gone" // want `string comparison on err.Error`
}

func goodLogging(err error) string {
	return "failed: " + err.Error() // ok: formatting, not branching
}

type myErr struct{}

func (myErr) Error() string { return "my" }

// Is implements the errors.Is protocol; identity comparison against the
// target is the point here.
func (myErr) Is(target error) bool {
	return target == ErrGone // ok: inside an Is method
}

func audited(err error) bool {
	return err == io.EOF //ecvet:ignore transientclass this reader never wraps io.EOF
}
