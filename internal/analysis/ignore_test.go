package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseSrc(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{file}
}

func TestFilterIgnores(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //ecvet:ignore demo checked by hand
	//ecvet:ignore demo the next line is audited
	_ = 2
	_ = 3
	_ = 4 //ecvet:ignore demo wrong analyzer should not suppress other
}
`
	fset, files := parseSrc(t, src)
	diags := []Diagnostic{
		{File: "p.go", Line: 4, Col: 2, Analyzer: "demo", Message: "finding on an ignored line"},
		{File: "p.go", Line: 6, Col: 2, Analyzer: "demo", Message: "finding below a standalone ignore"},
		{File: "p.go", Line: 7, Col: 2, Analyzer: "demo", Message: "unrelated finding"},
		{File: "p.go", Line: 8, Col: 2, Analyzer: "other", Message: "ignore names a different analyzer"},
	}
	out := FilterIgnores(fset, files, diags)
	want := []string{
		"p.go:7:2: demo: unrelated finding",
		"p.go:8:2: other: ignore names a different analyzer",
	}
	if len(out) != len(want) {
		t.Fatalf("got %d diagnostics, want %d: %v", len(out), len(want), out)
	}
	for i, d := range out {
		if d.String() != want[i] {
			t.Errorf("diag %d = %q, want %q", i, d.String(), want[i])
		}
	}
}

func TestFilterIgnoresMalformed(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //ecvet:ignore demo
}
`
	fset, files := parseSrc(t, src)
	diags := []Diagnostic{
		{File: "p.go", Line: 4, Col: 2, Analyzer: "demo", Message: "reasonless ignore must not suppress"},
	}
	out := FilterIgnores(fset, files, diags)
	var sawMalformed, sawOriginal bool
	for _, d := range out {
		if d.Analyzer == "ecvet" && strings.Contains(d.Message, "malformed") {
			sawMalformed = true
		}
		if d.Analyzer == "demo" {
			sawOriginal = true
		}
	}
	if !sawMalformed {
		t.Errorf("expected a malformed-ignore diagnostic, got %v", out)
	}
	if !sawOriginal {
		t.Errorf("reasonless ignore suppressed the original diagnostic: %v", out)
	}
}
