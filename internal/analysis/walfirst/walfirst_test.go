package walfirst_test

import (
	"testing"

	"ilpec/internal/analysis/analysistest"
	"ilpec/internal/analysis/walfirst"
)

func TestWalfirst(t *testing.T) {
	analysistest.Run(t, walfirst.Analyzer, "testdata/src/a")
}
