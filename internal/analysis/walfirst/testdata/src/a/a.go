package a

type sess struct {
	recs []string

	problem  string // wal:committed
	solution string // wal:committed
	pending  []int  // wal:committed queued-but-unsolved changes
}

// persistLocked journals one record before state changes.
//
//ecvet:walhelper
func (s *sess) persistLocked(rec string) error {
	s.recs = append(s.recs, rec)
	return nil
}

// commitLocked installs solved state; callers have already journaled.
//
//ecvet:walcommit
func (s *sess) commitLocked(p, sol string) {
	s.problem = p // ok: walcommit body is the install point
	s.solution = sol
}

func (s *sess) Good(p string) error {
	if err := s.persistLocked("queue"); err != nil {
		return err
	}
	s.pending = append(s.pending, 1) // ok: journaled above
	s.problem = p                    // ok: journaled above
	return nil
}

func (s *sess) GoodCommit(p string) error {
	if err := s.persistLocked("solve"); err != nil {
		return err
	}
	s.commitLocked(p, "sol") // ok: journaled above
	return nil
}

func (s *sess) Bad(p string) {
	s.problem = p // want `wal:committed state, but is assigned before any journaling helper`
}

func (s *sess) BadOrder(p string) error {
	s.pending = nil // want `wal:committed state, but is assigned before any journaling helper`
	return s.persistLocked("late")
}

func (s *sess) BadCommit(p string) {
	s.commitLocked(p, "x") // want `no journaling helper was called first`
}

func newSess(p string) *sess {
	s := &sess{}
	s.problem = p // ok: construction before publication
	return s
}

func rehydrate(p, sol string) *sess {
	s := &sess{problem: p, solution: sol} // ok: composite literal
	return s
}

func (s *sess) Drain() {
	s.pending = nil //ecvet:ignore walfirst drain is journaled by the record that followed
}
