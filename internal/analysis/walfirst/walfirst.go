// Package walfirst enforces the write-ahead discipline on committed
// session state: a field annotated "wal:committed" may only be assigned
// after the enclosing function has called a journaling helper (a function
// whose doc comment carries "ecvet:walhelper"), so every externally
// visible state change is journal-append-before-ack. A function annotated
// "ecvet:walcommit" is an install point — calls to it are checked like
// committed-field assignments, while its own body is exempt (the caller
// already journaled).
//
// Construction is exempt: locals built from composite literals (session
// rehydration, constructors) own their value exclusively and may fill
// committed fields freely before publication.
package walfirst

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"ilpec/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "walfirst",
	Doc:  "check that wal:committed state is only mutated after a journaling helper call (append-before-ack)",
	Run:  run,
}

const (
	committedMarker = "wal:committed"
	helperMarker    = "ecvet:walhelper"
	commitMarker    = "ecvet:walcommit"
)

func run(pass *analysis.Pass) error {
	// committed: struct type name -> committed field names.
	committed := make(map[string]map[string]bool)
	analysis.ForEachStructField(pass.Files, func(structName string, f *ast.Field, comment string) {
		if !strings.Contains(comment, committedMarker) {
			return
		}
		if committed[structName] == nil {
			committed[structName] = make(map[string]bool)
		}
		for _, name := range f.Names {
			committed[structName][name.Name] = true
		}
	})
	if len(committed) == 0 {
		return nil
	}

	helpers := make(map[types.Object]bool)
	commits := make(map[types.Object]bool)
	exempt := make(map[*ast.FuncDecl]bool)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.Defs[fn.Name]
			if analysis.CommentHas(fn.Doc, helperMarker) {
				helpers[obj] = true
				exempt[fn] = true
			}
			if analysis.CommentHas(fn.Doc, commitMarker) {
				commits[obj] = true
				exempt[fn] = true
			}
		}
	}

	isTarget := func(n *types.Named) bool {
		return n.Obj().Pkg() == pass.Pkg && committed[n.Obj().Name()] != nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || exempt[fn] {
				continue
			}
			checkFunc(pass, fn, committed, helpers, commits, isTarget)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, committed map[string]map[string]bool, helpers, commits map[types.Object]bool, isTarget func(*types.Named) bool) {
	// Positions of journaling-helper calls in this function.
	var helperPos []token.Pos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj := analysis.CalleeObject(pass.TypesInfo, call); obj != nil && helpers[obj] {
			helperPos = append(helperPos, call.Pos())
		}
		return true
	})
	journaledBefore := func(p token.Pos) bool {
		for _, hp := range helperPos {
			if hp < p {
				return true
			}
		}
		return false
	}

	ctors := analysis.ConstructorLocals(pass.TypesInfo, fn, isTarget)
	fromCtor := func(base ast.Expr) bool {
		id, ok := ast.Unparen(base).(*ast.Ident)
		if !ok {
			return false
		}
		obj := pass.TypesInfo.Uses[id]
		return obj != nil && ctors[obj]
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				named, _ := analysis.BaseStruct(pass.TypesInfo.Types[sel.X].Type)
				if named == nil || !isTarget(named) || !committed[named.Obj().Name()][sel.Sel.Name] {
					continue
				}
				if fromCtor(sel.X) || journaledBefore(sel.Pos()) {
					continue
				}
				pass.Reportf(sel.Pos(), "%s.%s is wal:committed state, but is assigned before any journaling helper call (append-before-ack)",
					named.Obj().Name(), sel.Sel.Name)
			}
		case *ast.CallExpr:
			obj := analysis.CalleeObject(pass.TypesInfo, n)
			if obj == nil || !commits[obj] {
				return true
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && fromCtor(sel.X) {
				return true
			}
			if !journaledBefore(n.Pos()) {
				pass.Reportf(n.Pos(), "%s installs wal:committed state, but no journaling helper was called first (append-before-ack)", obj.Name())
			}
		}
		return true
	})
}
