package nilness_test

import (
	"testing"

	"ilpec/internal/analysis/analysistest"
	"ilpec/internal/analysis/nilness"
)

func TestNilness(t *testing.T) {
	analysistest.Run(t, nilness.Analyzer, "testdata/src/a")
}
