package a

type T struct{ f int }

func (t *T) handleNil() int { return 0 }

type I interface{ M() }

func thenBranch(p *T) int {
	if p == nil {
		return p.f // want `p is nil on this path`
	}
	return p.f // ok: p proven non-nil
}

func elseBranch(p *T) int {
	if p != nil {
		return p.f // ok
	} else {
		return p.f // want `p is nil on this path`
	}
}

func starDeref(p *int) int {
	if p == nil {
		return *p // want `dereference of p`
	}
	return *p
}

func funcCall(f func() int) int {
	if f == nil {
		return f() // want `call of f`
	}
	return f()
}

func ifaceCall(i I) {
	if i == nil {
		i.M() // want `i is nil on this path`
	}
}

func reassigned(p *T) int {
	if p == nil {
		p = &T{}
		return p.f // ok: reassigned before the access
	}
	return p.f
}

func nilReceiverMethod(p *T) int {
	if p == nil {
		return p.handleNil() // ok: pointer-receiver method may handle nil
	}
	return p.f
}

func audited(p *T) int {
	if p == nil {
		return p.f //ecvet:ignore nilness caller guarantees non-nil, branch is defensive
	}
	return p.f
}
