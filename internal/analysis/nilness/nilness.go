// Package nilness is a pattern-based reimplementation of the core of the
// x/tools "nilness" analyzer (the original is SSA-based and cannot be
// vendored in this build environment). It flags dereferences of a
// variable on a path where a dominating nil check has just proven it
// nil:
//
//	if x == nil { ... x.f ... }        // then-branch deref
//	if x != nil { ... } else { x.f }   // else-branch deref
//
// The facts are abandoned as soon as the branch reassigns the variable
// or takes its address, and function literals are not entered (they run
// later, under different facts).
package nilness

import (
	"go/ast"
	"go/token"
	"go/types"

	"ilpec/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "nilness",
	Doc:  "check for dereferences of values a dominating branch has proven nil",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			obj, op := nilCheck(pass, ifs.Cond)
			if obj == nil {
				return true
			}
			switch op {
			case token.EQL: // x == nil → x is nil in the then-branch
				checkBlock(pass, ifs.Body, obj)
			case token.NEQ: // x != nil → x is nil in the else-branch
				if block, ok := ifs.Else.(*ast.BlockStmt); ok {
					checkBlock(pass, block, obj)
				}
			}
			return true
		})
	}
	return nil
}

// nilCheck matches `x == nil` / `x != nil` (either operand order) where
// x is a variable of a nilable type, returning its object and the
// operator.
func nilCheck(pass *analysis.Pass, cond ast.Expr) (types.Object, token.Token) {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return nil, token.ILLEGAL
	}
	var target ast.Expr
	switch {
	case analysis.IsNilExpr(pass.TypesInfo, bin.Y):
		target = bin.X
	case analysis.IsNilExpr(pass.TypesInfo, bin.X):
		target = bin.Y
	default:
		return nil, token.ILLEGAL
	}
	id, ok := ast.Unparen(target).(*ast.Ident)
	if !ok {
		return nil, token.ILLEGAL
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil || !nilable(obj.Type()) {
		return nil, token.ILLEGAL
	}
	return obj, bin.Op
}

func nilable(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Signature, *types.Map, *types.Chan:
		return true
	}
	return false
}

// checkBlock flags dereferences of obj inside block, up to the first
// statement that invalidates the nil fact (reassignment or
// address-taking anywhere in the block, conservatively by position).
func checkBlock(pass *analysis.Pass, block *ast.BlockStmt, obj types.Object) {
	invalidated := invalidationPos(pass, block, obj)
	ast.Inspect(block, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if invalidated.IsValid() && n.Pos() >= invalidated {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if !usesObj(pass, n.X, obj) {
				return true
			}
			// Field access through a nil pointer or method call on a nil
			// interface always panics; method calls on a nil pointer may
			// be legal (pointer receiver), so only flag field selections
			// for pointers.
			switch obj.Type().Underlying().(type) {
			case *types.Pointer:
				if sel := pass.TypesInfo.Selections[n]; sel != nil && sel.Kind() == types.FieldVal {
					pass.Reportf(n.Pos(), "field access %s.%s: %s is nil on this path", obj.Name(), n.Sel.Name, obj.Name())
				}
			case *types.Interface:
				pass.Reportf(n.Pos(), "use of %s.%s: %s is nil on this path", obj.Name(), n.Sel.Name, obj.Name())
			}
		case *ast.StarExpr:
			if usesObj(pass, n.X, obj) {
				pass.Reportf(n.Pos(), "dereference of %s: %s is nil on this path", obj.Name(), obj.Name())
			}
		case *ast.CallExpr:
			if usesObj(pass, n.Fun, obj) {
				pass.Reportf(n.Pos(), "call of %s: %s is nil on this path", obj.Name(), obj.Name())
			}
		}
		return true
	})
}

func usesObj(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == obj
}

// invalidationPos returns the position of the first reassignment of obj
// (or &obj) inside block, or NoPos.
func invalidationPos(pass *analysis.Pass, block *ast.BlockStmt, obj types.Object) token.Pos {
	pos := token.NoPos
	note := func(p token.Pos) {
		if !pos.IsValid() || p < pos {
			pos = p
		}
	}
	ast.Inspect(block, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if usesObj(pass, lhs, obj) {
					note(n.Pos())
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND && usesObj(pass, n.X, obj) {
				note(n.Pos())
			}
		}
		return true
	})
	return pos
}
