package leasefence_test

import (
	"testing"

	"ilpec/internal/analysis/analysistest"
	"ilpec/internal/analysis/leasefence"
)

func TestLeasefence(t *testing.T) {
	analysistest.Run(t, leasefence.Analyzer, "testdata/src/a")
}
