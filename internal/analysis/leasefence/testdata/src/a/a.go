package a

type Record struct{ Kind string }

// Store is the journal interface, mirroring ilpec/internal/store.Store.
type Store interface {
	Append(id string, rec Record) error
}

type node struct {
	st Store
}

// ensureLease re-proves lease ownership against the shared store.
//
//ecvet:fenced
func (n *node) ensureLease() error { return nil }

// appendLocked journals one record under the fence.
func (n *node) appendLocked(rec Record) error {
	if err := n.ensureLease(); err != nil {
		return err
	}
	return n.st.Append("s", rec) // ok: fenced re-prove call above
}

func (n *node) rogue(rec Record) error {
	return n.st.Append("s", rec) // want `store Append outside the lease fence`
}

func (n *node) rogueOrder(rec Record) error {
	err := n.st.Append("s", rec) // want `store Append outside the lease fence`
	if err != nil {
		return err
	}
	return n.ensureLease()
}

// heartbeat writes liveness records; it IS the lease protocol.
//
//ecvet:fenced
func (n *node) heartbeat() error {
	return n.st.Append("hb", Record{Kind: "heartbeat"}) // ok: fenced function
}

// wrapper forwards to an inner Store without adding an append site.
type wrapper struct{ inner Store }

func (w *wrapper) Append(id string, rec Record) error {
	return w.inner.Append(id, rec) // ok: transparent Store wrapper
}

func (n *node) audited(rec Record) error {
	return n.st.Append("s", rec) //ecvet:ignore leasefence single-node path with no lease protocol
}
