// Package leasefence enforces the cluster ownership rule from the
// multi-node tier: every journal append to the shared store must happen
// under a freshly re-proven lease. Concretely, a call to the Append
// method of a Store interface is flagged unless one of:
//
//   - the enclosing function's doc comment carries "ecvet:fenced" — it
//     is (or implements) the lease re-prove protocol itself;
//   - the enclosing function calls an "ecvet:fenced" function earlier in
//     its body (the service's appendLocked re-proves via
//     ensureLeaseLocked before its store write);
//   - the enclosing function is itself a method named Append — a
//     transparent Store wrapper (fault injection, middleware) that adds
//     no new append site.
//
// This makes "who may write the journal" a compile-time property instead
// of a chaos-suite discovery.
package leasefence

import (
	"go/ast"
	"go/token"
	"go/types"

	"ilpec/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "leasefence",
	Doc:  "check that store Append calls happen inside (or after a call to) an ecvet:fenced lease re-prove function",
	Run:  run,
}

const fencedMarker = "ecvet:fenced"

func run(pass *analysis.Pass) error {
	decls := analysis.FuncDeclsByObject(pass.TypesInfo, pass.Files)
	fenced := make(map[types.Object]bool)
	for obj, fn := range decls {
		if analysis.CommentHas(fn.Doc, fencedMarker) {
			fenced[obj] = true
		}
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if analysis.CommentHas(fn.Doc, fencedMarker) {
				continue
			}
			if fn.Recv != nil && fn.Name.Name == "Append" {
				continue // transparent Store wrapper
			}
			checkFunc(pass, fn, fenced)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, fenced map[types.Object]bool) {
	var fencedPos []token.Pos
	var appends []*ast.CallExpr
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj := analysis.CalleeObject(pass.TypesInfo, call); obj != nil && fenced[obj] {
			fencedPos = append(fencedPos, call.Pos())
		}
		if isStoreAppend(pass, call) {
			appends = append(appends, call)
		}
		return true
	})
	for _, call := range appends {
		ok := false
		for _, fp := range fencedPos {
			if fp < call.Pos() {
				ok = true
				break
			}
		}
		if !ok {
			pass.Reportf(call.Pos(), "store Append outside the lease fence: annotate the enclosing function ecvet:fenced or re-prove ownership (ensureLeaseLocked) before appending")
		}
	}
}

// isStoreAppend reports whether call invokes the Append method of an
// interface type named "Store" (the journal's write entry point). Calls
// on concrete implementations inside the store package itself are not
// fence-relevant; the service and cluster layers only ever hold the
// interface.
func isStoreAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Append" {
		return false
	}
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return false
	}
	recv := selection.Recv()
	if ptr, isPtr := recv.Underlying().(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	named, isNamed := recv.(*types.Named)
	if !isNamed || named.Obj().Name() != "Store" {
		return false
	}
	_, isIface := named.Underlying().(*types.Interface)
	return isIface
}
