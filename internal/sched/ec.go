package sched

import (
	"fmt"

	"ilpec/internal/ilp"
)

// FastReschedule is the fast-EC adaptation: given a changed problem and
// the previous schedule, it re-places only the disturbed cone — operations
// that are invalid where they stand (dependency or capacity violations, or
// newly added ops) plus, on escalation, their dependency neighborhoods —
// keeping every other operation frozen at its step.
func FastReschedule(p *Problem, prev Schedule, opts ilp.Options) (Schedule, int, error) {
	if err := p.Validate(); err != nil {
		return nil, 0, err
	}
	prev = prev.Clone()
	for len(prev) < p.NumOps {
		prev = append(prev, -1) // newly added operations join the region
	}
	region := map[int]bool{}
	for o := 0; o < p.NumOps; o++ {
		if prev[o] < 0 || prev[o] >= p.Steps {
			region[o] = true
		}
	}
	for _, d := range p.Deps {
		if !region[d[0]] && !region[d[1]] && prev[d[0]] >= prev[d[1]] {
			region[d[0]] = true
			region[d[1]] = true
		}
	}
	// Capacity violations join too.
	use := make(map[[2]int][]int)
	for o := 0; o < p.NumOps; o++ {
		if !region[o] {
			key := [2]int{p.Type[o], prev[o]}
			use[key] = append(use[key], o)
		}
	}
	for key, ops := range use {
		if len(ops) > p.Capacity[key[0]] {
			for _, o := range ops {
				region[o] = true
			}
		}
	}
	if len(region) == 0 {
		return prev[:p.NumOps], 0, nil
	}
	for {
		s, err := solveRegion(p, prev, region, opts)
		if err == nil {
			return s, len(region), nil
		}
		// Escalate through the dependency neighborhood.
		grew := false
		for _, d := range p.Deps {
			if region[d[0]] != region[d[1]] {
				if !region[d[0]] {
					region[d[0]] = true
				} else {
					region[d[1]] = true
				}
				grew = true
			}
		}
		if !grew {
			if len(region) < p.NumOps {
				for o := 0; o < p.NumOps; o++ {
					region[o] = true
				}
				continue
			}
			return nil, len(region), fmt.Errorf("sched: fast reschedule infeasible: %w", err)
		}
	}
}

func solveRegion(p *Problem, prev Schedule, region map[int]bool, opts ilp.Options) (Schedule, error) {
	e := NewEncoding(p)
	m := e.Model
	for o := 0; o < p.NumOps; o++ {
		if region[o] {
			continue
		}
		m.AddRow(fmt.Sprintf("freeze_%d", o),
			[]ilp.Coef{{Var: e.XCol(o, prev[o]), Val: 1}}, ilp.GE, 1)
	}
	opts.WarmStart = e.EncodeSchedule(prev)
	res := ilp.Solve(m, opts)
	switch res.Status {
	case ilp.Optimal, ilp.Feasible:
		s := e.Decode(res.Solution)
		if !s.Valid(p) {
			return nil, fmt.Errorf("sched: region reschedule invalid (internal error)")
		}
		return s, nil
	case ilp.Infeasible:
		return nil, fmt.Errorf("sched: frozen region reschedule infeasible")
	default:
		return nil, fmt.Errorf("sched: region reschedule hit limits (%s)", res.Status)
	}
}

// addPreserveTerms replaces the compaction objective of an existing
// encoding with pure preservation against prev (shared by
// PreserveReschedule and the domain adapter).
func addPreserveTerms(e *Encoding, prev Schedule) {
	m, p := e.Model, e.Problem
	for o := 0; o < p.NumOps; o++ {
		for t := 0; t < p.Steps; t++ {
			m.SetObj(e.XCol(o, t), 0)
		}
	}
	for o := 0; o < p.NumOps && o < len(prev); o++ {
		if t := prev[o]; t >= 0 && t < p.Steps {
			m.SetObj(e.XCol(o, t), -1)
		}
	}
}

// PreserveReschedule re-solves the whole instance maximizing the number of
// operations that keep their previous step (§7 adapted).
func PreserveReschedule(p *Problem, prev Schedule, opts ilp.Options) (Schedule, ilp.Result, error) {
	if err := p.Validate(); err != nil {
		return nil, ilp.Result{}, err
	}
	e := NewEncoding(p)
	addPreserveTerms(e, prev)
	opts.WarmStart = e.EncodeSchedule(prev)
	res := ilp.Solve(e.Model, opts)
	switch res.Status {
	case ilp.Optimal, ilp.Feasible:
		s := e.Decode(res.Solution)
		if !s.Valid(p) {
			return nil, res, fmt.Errorf("sched: preserving schedule invalid (internal error)")
		}
		return s, res, nil
	case ilp.Infeasible:
		return nil, res, fmt.Errorf("sched: no schedule within %d steps", p.Steps)
	default:
		return nil, res, fmt.Errorf("sched: preserving solve hit limits (%s)", res.Status)
	}
}

// SlackReport audits enabling-style flexibility of a schedule: an
// operation is flexible when it could move to at least one other step
// without violating dependencies or capacity (all other operations fixed).
type SlackReport struct {
	Total    int
	Flexible int
	// Rigid lists operations with no alternative step.
	Rigid []int
}

// VerifySlack counts per-operation move freedom under s.
func VerifySlack(p *Problem, s Schedule) SlackReport {
	r := SlackReport{Total: p.NumOps}
	use := make(map[[2]int]int)
	for o := 0; o < p.NumOps; o++ {
		use[[2]int{p.Type[o], s[o]}]++
	}
	for o := 0; o < p.NumOps; o++ {
		lo, hi := 0, p.Steps-1
		for _, d := range p.Deps {
			if d[1] == o && s[d[0]]+1 > lo {
				lo = s[d[0]] + 1
			}
			if d[0] == o && s[d[1]]-1 < hi {
				hi = s[d[1]] - 1
			}
		}
		movable := false
		for t := lo; t <= hi && !movable; t++ {
			if t == s[o] {
				continue
			}
			if use[[2]int{p.Type[o], t}] < p.Capacity[p.Type[o]] {
				movable = true
			}
		}
		if movable {
			r.Flexible++
		} else {
			r.Rigid = append(r.Rigid, o)
		}
	}
	return r
}

// SolveEnabled schedules with an enabling-style objective: in addition to
// compaction, each operation is rewarded (weight w) for having at least
// one spare slot — a feasible alternative step given the rest of the
// schedule. The construction mirrors the SAT support variables: s_{o,t}
// may be 1 only when x_{o,t} = 0, t is within a window that no dependency
// forbids outright, and the capacity row of (type(o), t) keeps one unit of
// headroom; flex_o ≤ Σ_t s_{o,t}.
func SolveEnabled(p *Problem, w float64, warm Schedule, opts ilp.Options) (Schedule, ilp.Result, error) {
	if err := p.Validate(); err != nil {
		return nil, ilp.Result{}, err
	}
	if w <= 0 {
		w = 1
	}
	e := NewEncoding(p)
	addEnableTerms(e, w)
	if warm != nil {
		opts.WarmStart = e.EncodeSchedule(warm)
	}
	res := ilp.Solve(e.Model, opts)
	switch res.Status {
	case ilp.Optimal, ilp.Feasible:
		s := e.Decode(res.Solution)
		if !s.Valid(p) {
			return nil, res, fmt.Errorf("sched: enabled schedule invalid (internal error)")
		}
		return s, res, nil
	case ilp.Infeasible:
		return nil, res, fmt.Errorf("sched: no schedule within %d steps", p.Steps)
	default:
		return nil, res, fmt.Errorf("sched: enabled solve hit limits (%s)", res.Status)
	}
}

// addEnableTerms extends an existing encoding with the spare-slot reward
// construction of SolveEnabled (shared with the domain adapter).
func addEnableTerms(e *Encoding, w float64) {
	m, p := e.Model, e.Problem
	for o := 0; o < p.NumOps; o++ {
		var spares []ilp.Coef
		for t := 0; t < p.Steps; t++ {
			s := m.AddVar(fmt.Sprintf("s%d_%d", o, t), 0)
			// Spare only where the operation is not already placed.
			m.AddRow("", []ilp.Coef{{Var: s, Val: 1}, {Var: e.XCol(o, t), Val: 1}}, ilp.LE, 1)
			// Capacity headroom: occupancy of (type,t) by OTHER ops + s ≤ cap.
			coefs := []ilp.Coef{{Var: s, Val: 1}}
			for o2 := 0; o2 < p.NumOps; o2++ {
				if o2 != o && p.Type[o2] == p.Type[o] {
					coefs = append(coefs, ilp.Coef{Var: e.XCol(o2, t), Val: 1})
				}
			}
			m.AddRow("", coefs, ilp.LE, float64(p.Capacity[p.Type[o]]))
			spares = append(spares, ilp.Coef{Var: s, Val: 1})
		}
		flex := m.AddVar(fmt.Sprintf("flex_%d", o), -w)
		terms := append(append([]ilp.Coef(nil), spares...), ilp.Coef{Var: flex, Val: -1})
		m.AddRow(fmt.Sprintf("flexdef_%d", o), terms, ilp.GE, 0)
	}
}
