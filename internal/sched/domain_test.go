package sched

import (
	"testing"

	"ilpec/internal/domain"
	"ilpec/internal/ilp"
)

// TestSchedDomainConformance runs the shared cross-domain suite against
// the scheduling adapter.
func TestSchedDomainConformance(t *testing.T) {
	domain.RunConformance(t, Domain())
}

// TestSchedDomainFastPlacesNewOp pins that adding an operation triggers a
// region re-place around the new op rather than a full reschedule.
func TestSchedDomainFastPlacesNewOp(t *testing.T) {
	d := Domain()
	p := NewProblem([]int{2, 2}, 5)
	for i := 0; i < 6; i++ {
		p.AddOp(i % 2)
	}
	p.AddDep(0, 2)
	p.AddDep(1, 3)
	p.AddDep(2, 4)
	prevAny, _, err := domain.Solve(d, p, ilp.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	changed, err := d.ApplyChanges(p, []any{Change{Kind: "add-op", Type: 0}})
	if err != nil {
		t.Fatal(err)
	}
	next, stats, err := domain.Fast(d, changed, prevAny, domain.FastOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Verify(changed, next); err != nil {
		t.Fatal(err)
	}
	if stats.AlreadyValid {
		t.Fatal("new op reported as already placed")
	}
	if !stats.FullResolve && stats.SubSize >= changed.(*Problem).NumOps {
		t.Fatalf("region covered all %d ops", stats.SubSize)
	}
	// Frozen operations keep their steps.
	prev, nextSched := prevAny.(Schedule), next.(Schedule)
	moved := 0
	for o := 0; o < len(prev); o++ {
		if nextSched[o] != prev[o] {
			moved++
		}
	}
	if !stats.FullResolve && moved > stats.SubSize {
		t.Fatalf("%d ops moved with region size %d", moved, stats.SubSize)
	}
}

// TestSchedEncodeDelta pins the delta encoder across every expressible
// change kind: dependency add/remove and capacity edits must replay onto
// a live instance as the exact model a re-encode would build, while
// add-op and duplicate dependencies fall back.
func TestSchedEncodeDelta(t *testing.T) {
	d := Domain().(schedDomain)
	p := NewProblem([]int{2, 1}, 4)
	for _, r := range []int{0, 0, 1, 0, 1} {
		p.AddOp(r)
	}
	p.AddDep(0, 2)
	p.AddDep(1, 3)

	check := func(name string, batch []any) {
		t.Helper()
		enc, err := d.Encode(p)
		if err != nil {
			t.Fatal(err)
		}
		delta, ok := d.EncodeDelta(enc, p, batch)
		if !ok {
			t.Fatalf("%s: batch not delta-expressible", name)
		}
		changed, err := d.ApplyChanges(p, batch)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := d.Encode(changed)
		if err != nil {
			t.Fatal(err)
		}
		inst := ilp.NewInstance(enc.ILP())
		delta.Apply(inst)
		if got, want := inst.Fingerprint(), ilp.ModelFingerprint(fresh.ILP()); got != want {
			t.Fatalf("%s: delta fingerprint %x, re-encode %x", name, got, want)
		}
		dres := inst.Resolve(ilp.Options{})
		fres := ilp.Solve(fresh.ILP(), ilp.Options{})
		if dres.Status != fres.Status || dres.Objective != fres.Objective {
			t.Fatalf("%s: delta solve (%v, %v) vs re-encode (%v, %v)",
				name, dres.Status, dres.Objective, fres.Status, fres.Objective)
		}
	}

	check("add-dep", []any{Change{Kind: "add-dep", From: 2, To: 4}})
	check("remove-dep", []any{Change{Kind: "remove-dep", From: 1, To: 3}})
	check("set-capacity", []any{Change{Kind: "set-capacity", Type: 0, Capacity: 1}})
	check("mixed", []any{
		Change{Kind: "add-dep", From: 3, To: 4},
		Change{Kind: "set-capacity", Type: 1, Capacity: 2},
		Change{Kind: "remove-dep", From: 0, To: 2},
	})
	// Add-then-remove of the same dep inside one batch must cancel.
	check("add-then-remove", []any{
		Change{Kind: "add-dep", From: 2, To: 4},
		Change{Kind: "remove-dep", From: 2, To: 4},
	})

	enc, err := d.Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	for name, batch := range map[string][]any{
		"add-op":        {Change{Kind: "add-op", Type: 0}},
		"duplicate-dep": {Change{Kind: "add-dep", From: 0, To: 2}},
		"absent-remove": {Change{Kind: "remove-dep", From: 4, To: 0}},
	} {
		if _, ok := d.EncodeDelta(enc, p, batch); ok {
			t.Fatalf("%s: expected rebuild fallback", name)
		}
	}
}

// TestSchedEncodeDeltaVacuousCapacity pins that a capacity change for a
// type no operation uses edits nothing (the encoding omits those rows).
func TestSchedEncodeDeltaVacuousCapacity(t *testing.T) {
	d := Domain().(schedDomain)
	p := NewProblem([]int{1, 1}, 3)
	p.AddOp(0)
	p.AddOp(0)
	enc, err := d.Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	delta, ok := d.EncodeDelta(enc, p, []any{Change{Kind: "set-capacity", Type: 1, Capacity: 3}})
	if !ok {
		t.Fatal("vacuous capacity change should be delta-expressible")
	}
	if !delta.Empty() {
		t.Fatalf("vacuous capacity change produced edits: %+v", delta)
	}
}
