package sched

import (
	"testing"

	"ilpec/internal/domain"
	"ilpec/internal/ilp"
)

// TestSchedDomainConformance runs the shared cross-domain suite against
// the scheduling adapter.
func TestSchedDomainConformance(t *testing.T) {
	domain.RunConformance(t, Domain())
}

// TestSchedDomainFastPlacesNewOp pins that adding an operation triggers a
// region re-place around the new op rather than a full reschedule.
func TestSchedDomainFastPlacesNewOp(t *testing.T) {
	d := Domain()
	p := NewProblem([]int{2, 2}, 5)
	for i := 0; i < 6; i++ {
		p.AddOp(i % 2)
	}
	p.AddDep(0, 2)
	p.AddDep(1, 3)
	p.AddDep(2, 4)
	prevAny, _, err := domain.Solve(d, p, ilp.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	changed, err := d.ApplyChanges(p, []any{Change{Kind: "add-op", Type: 0}})
	if err != nil {
		t.Fatal(err)
	}
	next, stats, err := domain.Fast(d, changed, prevAny, domain.FastOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Verify(changed, next); err != nil {
		t.Fatal(err)
	}
	if stats.AlreadyValid {
		t.Fatal("new op reported as already placed")
	}
	if !stats.FullResolve && stats.SubSize >= changed.(*Problem).NumOps {
		t.Fatalf("region covered all %d ops", stats.SubSize)
	}
	// Frozen operations keep their steps.
	prev, nextSched := prevAny.(Schedule), next.(Schedule)
	moved := 0
	for o := 0; o < len(prev); o++ {
		if nextSched[o] != prev[o] {
			moved++
		}
	}
	if !stats.FullResolve && moved > stats.SubSize {
		t.Fatalf("%d ops moved with region size %d", moved, stats.SubSize)
	}
}
