// Package sched applies the EC methodology to resource-constrained
// operation scheduling — the behavioral-synthesis task of the paper's
// predecessor work (Kirovski–Potkonjak [5], "engineering change:
// methodology and applications to behavioral and system synthesis") and
// the third domain backing the paper's §9 claim that the ILP-based EC
// techniques generalize beyond SAT.
//
// The model is classic time-indexed scheduling: a DAG of unit-latency
// operations, each assigned a resource type, must be scheduled into T
// control steps so that dependencies precede their users and no step uses
// more instances of a resource type than available. The ILP uses x_{o,t}
// decision variables with one-hot rows per operation, precedence rows per
// edge, and capacity rows per (type, step).
//
// EC arrives as operation/dependency additions and removals or capacity
// changes; the three components adapt exactly as for SAT:
//
//   - enabling EC: prefer schedules with slack (spare capacity in the
//     steps adjacent to each operation);
//   - fast EC: re-place only the operations in the disturbed cone;
//   - preserving EC: maximize the number of operations keeping their
//     control step.
package sched

import (
	"fmt"
	"sort"

	"ilpec/internal/ilp"
)

// Problem is a scheduling instance.
type Problem struct {
	// NumOps is the number of operations, identified 0..NumOps-1.
	NumOps int
	// Type[o] is the resource type of operation o (0-based).
	Type []int
	// Capacity[r] is the number of simultaneous operations of type r.
	Capacity []int
	// Deps lists (from, to) precedence pairs: from must be scheduled at a
	// strictly earlier step than to.
	Deps [][2]int
	// Steps is the schedule horizon T (operations occupy one step each).
	Steps int
}

// NewProblem creates an empty scheduling problem with the given resource
// capacities and horizon.
func NewProblem(capacity []int, steps int) *Problem {
	return &Problem{Capacity: append([]int(nil), capacity...), Steps: steps}
}

// AddOp appends an operation of resource type r and returns its id.
func (p *Problem) AddOp(r int) int {
	if r < 0 || r >= len(p.Capacity) {
		panic(fmt.Sprintf("sched: resource type %d out of range", r))
	}
	p.Type = append(p.Type, r)
	p.NumOps++
	return p.NumOps - 1
}

// AddDep records that operation from must complete before to starts.
func (p *Problem) AddDep(from, to int) {
	if from < 0 || from >= p.NumOps || to < 0 || to >= p.NumOps || from == to {
		panic(fmt.Sprintf("sched: bad dependency %d->%d", from, to))
	}
	p.Deps = append(p.Deps, [2]int{from, to})
}

// RemoveDep deletes a dependency; it reports whether the pair existed.
func (p *Problem) RemoveDep(from, to int) bool {
	for i, d := range p.Deps {
		if d[0] == from && d[1] == to {
			p.Deps = append(p.Deps[:i], p.Deps[i+1:]...)
			return true
		}
	}
	return false
}

// Clone returns a deep copy.
func (p *Problem) Clone() *Problem {
	return &Problem{
		NumOps:   p.NumOps,
		Type:     append([]int(nil), p.Type...),
		Capacity: append([]int(nil), p.Capacity...),
		Deps:     append([][2]int(nil), p.Deps...),
		Steps:    p.Steps,
	}
}

// Validate checks structural consistency.
func (p *Problem) Validate() error {
	if p.Steps < 1 {
		return fmt.Errorf("sched: horizon %d", p.Steps)
	}
	if len(p.Type) != p.NumOps {
		return fmt.Errorf("sched: type table length mismatch")
	}
	for o, r := range p.Type {
		if r < 0 || r >= len(p.Capacity) {
			return fmt.Errorf("sched: op %d has bad type %d", o, r)
		}
	}
	for _, d := range p.Deps {
		if d[0] < 0 || d[0] >= p.NumOps || d[1] < 0 || d[1] >= p.NumOps {
			return fmt.Errorf("sched: dependency %v out of range", d)
		}
	}
	return nil
}

// Schedule assigns each operation a control step in 0..Steps-1 (-1 =
// unscheduled).
type Schedule []int

// Valid reports whether s schedules every operation, respects every
// dependency strictly, and stays within capacities.
func (s Schedule) Valid(p *Problem) bool {
	if len(s) != p.NumOps {
		return false
	}
	for _, t := range s {
		if t < 0 || t >= p.Steps {
			return false
		}
	}
	for _, d := range p.Deps {
		if s[d[0]] >= s[d[1]] {
			return false
		}
	}
	use := make(map[[2]int]int)
	for o, t := range s {
		use[[2]int{p.Type[o], t}]++
	}
	for key, n := range use {
		if n > p.Capacity[key[0]] {
			return false
		}
	}
	return true
}

// Agreement returns the fraction of operations keeping their step.
func (s Schedule) Agreement(other Schedule) float64 {
	if len(s) == 0 {
		return 1
	}
	n := len(s)
	if len(other) < n {
		n = len(other)
	}
	same := 0
	for o := 0; o < n; o++ {
		if s[o] == other[o] {
			same++
		}
	}
	return float64(same) / float64(len(s))
}

// Clone returns an independent copy.
func (s Schedule) Clone() Schedule {
	out := make(Schedule, len(s))
	copy(out, s)
	return out
}

// Encoding is the time-indexed 0-1 ILP of a scheduling problem.
type Encoding struct {
	Model   *ilp.Model
	Problem *Problem
	// xCol[o][t] is the column of x_{o,t}.
	xCol [][]int
}

// XCol returns the column of operation o at step t.
func (e *Encoding) XCol(o, t int) int { return e.xCol[o][t] }

// NewEncoding builds the ILP: one-hot per operation, precedence rows, and
// capacity rows; the objective minimizes the weighted finish step
// (Σ t·x_{o,t}), which compacts schedules toward early steps.
func NewEncoding(p *Problem) *Encoding {
	m := ilp.NewModel(false)
	e := &Encoding{Model: m, Problem: p, xCol: make([][]int, p.NumOps)}
	for o := 0; o < p.NumOps; o++ {
		e.xCol[o] = make([]int, p.Steps)
		for t := 0; t < p.Steps; t++ {
			e.xCol[o][t] = m.AddVar(fmt.Sprintf("x%d_%d", o, t), float64(t))
		}
	}
	for o := 0; o < p.NumOps; o++ {
		coefs := make([]ilp.Coef, p.Steps)
		for t := 0; t < p.Steps; t++ {
			coefs[t] = ilp.Coef{Var: e.xCol[o][t], Val: 1}
		}
		m.AddRow(fmt.Sprintf("one_%d", o), coefs, ilp.EQ, 1)
	}
	// Precedence: Σ t·x_{from,t} + 1 ≤ Σ t·x_{to,t}.
	for _, d := range p.Deps {
		m.AddRow(depRowName(d[0], d[1]), e.depCoefs(d[0], d[1]), ilp.GE, 1)
	}
	// Capacity rows per (type, step).
	for r := range p.Capacity {
		for t := 0; t < p.Steps; t++ {
			var coefs []ilp.Coef
			for o := 0; o < p.NumOps; o++ {
				if p.Type[o] == r {
					coefs = append(coefs, ilp.Coef{Var: e.xCol[o][t], Val: 1})
				}
			}
			if len(coefs) > 0 {
				m.AddRow(capRowName(r, t), coefs, ilp.LE, float64(p.Capacity[r]))
			}
		}
	}
	return e
}

// depRowName keys precedence rows by their endpoints so EC deltas can
// address them without knowing insertion order.
func depRowName(from, to int) string { return fmt.Sprintf("dep_%d_%d", from, to) }

// capRowName keys the capacity row of resource type r at step t.
func capRowName(r, t int) string { return fmt.Sprintf("cap_%d_%d", r, t) }

// depCoefs builds the precedence row body Σ t·x_{to,t} − Σ t·x_{from,t}.
func (e *Encoding) depCoefs(from, to int) []ilp.Coef {
	var coefs []ilp.Coef
	for t := 0; t < e.Problem.Steps; t++ {
		coefs = append(coefs, ilp.Coef{Var: e.xCol[to][t], Val: float64(t)})
		coefs = append(coefs, ilp.Coef{Var: e.xCol[from][t], Val: -float64(t)})
	}
	return coefs
}

// Decode converts an ILP solution to a Schedule.
func (e *Encoding) Decode(sol ilp.Solution) Schedule {
	s := make(Schedule, e.Problem.NumOps)
	for o := range s {
		s[o] = -1
		for t := 0; t < e.Problem.Steps; t++ {
			if sol[e.xCol[o][t]] == 1 {
				s[o] = t
				break
			}
		}
	}
	return s
}

// EncodeSchedule converts a schedule into an ILP solution vector.
func (e *Encoding) EncodeSchedule(s Schedule) ilp.Solution {
	sol := make(ilp.Solution, e.Model.NumVars())
	for o, t := range s {
		if o < e.Problem.NumOps && t >= 0 && t < e.Problem.Steps {
			sol[e.xCol[o][t]] = 1
		}
	}
	return sol
}

// Solve schedules the problem exactly; warm (optional) guides branching.
func Solve(p *Problem, warm Schedule, opts ilp.Options) (Schedule, ilp.Result, error) {
	if err := p.Validate(); err != nil {
		return nil, ilp.Result{}, err
	}
	e := NewEncoding(p)
	if warm != nil {
		opts.WarmStart = e.EncodeSchedule(warm)
	}
	res := ilp.Solve(e.Model, opts)
	switch res.Status {
	case ilp.Optimal, ilp.Feasible:
		s := e.Decode(res.Solution)
		if !s.Valid(p) {
			return nil, res, fmt.Errorf("sched: decoded schedule invalid (internal error)")
		}
		return s, res, nil
	case ilp.Infeasible:
		return nil, res, fmt.Errorf("sched: no schedule within %d steps", p.Steps)
	default:
		return nil, res, fmt.Errorf("sched: solve hit limits (%s)", res.Status)
	}
}

// ListSchedule is the greedy baseline: operations in topological order are
// placed at the earliest step satisfying dependencies and capacity. It
// returns an error when the horizon is too short (or the DAG is cyclic).
func ListSchedule(p *Problem) (Schedule, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	order, err := topoOrder(p)
	if err != nil {
		return nil, err
	}
	s := make(Schedule, p.NumOps)
	for i := range s {
		s[i] = -1
	}
	use := make(map[[2]int]int)
	for _, o := range order {
		earliest := 0
		for _, d := range p.Deps {
			if d[1] == o && s[d[0]] >= earliest {
				earliest = s[d[0]] + 1
			}
		}
		placed := false
		for t := earliest; t < p.Steps; t++ {
			if use[[2]int{p.Type[o], t}] < p.Capacity[p.Type[o]] {
				s[o] = t
				use[[2]int{p.Type[o], t}]++
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("sched: horizon %d too short for op %d", p.Steps, o)
		}
	}
	return s, nil
}

func topoOrder(p *Problem) ([]int, error) {
	indeg := make([]int, p.NumOps)
	succ := make([][]int, p.NumOps)
	for _, d := range p.Deps {
		indeg[d[1]]++
		succ[d[0]] = append(succ[d[0]], d[1])
	}
	var queue []int
	for o := 0; o < p.NumOps; o++ {
		if indeg[o] == 0 {
			queue = append(queue, o)
		}
	}
	sort.Ints(queue)
	var order []int
	for len(queue) > 0 {
		o := queue[0]
		queue = queue[1:]
		order = append(order, o)
		for _, t := range succ[o] {
			indeg[t]--
			if indeg[t] == 0 {
				queue = append(queue, t)
			}
		}
	}
	if len(order) != p.NumOps {
		return nil, fmt.Errorf("sched: dependency cycle")
	}
	return order, nil
}
