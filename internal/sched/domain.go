package sched

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"ilpec/internal/domain"
	"ilpec/internal/ilp"
)

// This file adapts resource-constrained scheduling to the generic
// domain.Domain interface, replacing the bespoke FastReschedule/
// PreserveReschedule/SolveEnabled entry points as the serving-layer path.
// Problem values are *sched.Problem, solutions are Schedule, changes are
// sched.Change.

// Change is one scheduling specification change.
type Change struct {
	// Kind is "add-op", "add-dep", "remove-dep", or "set-capacity".
	Kind string `json:"kind"`
	// Type is the resource type of add-op and set-capacity.
	Type int `json:"type,omitempty"`
	// From/To identify a dependency edge.
	From int `json:"from,omitempty"`
	To   int `json:"to,omitempty"`
	// Capacity is the new instance count of set-capacity.
	Capacity int `json:"capacity,omitempty"`
}

// Domain returns the scheduling domain adapter.
func Domain() domain.Domain { return schedDomain{} }

func init() { domain.Register(Domain()) }

type schedDomain struct{}

func (schedDomain) Name() string { return "sched" }

func (schedDomain) problem(p any) (*Problem, error) {
	sp, ok := p.(*Problem)
	if !ok || sp == nil {
		return nil, fmt.Errorf("sched: problem is %T, want *sched.Problem", p)
	}
	return sp, nil
}

func (schedDomain) solution(s any) (Schedule, error) {
	sc, ok := s.(Schedule)
	if !ok || sc == nil {
		return nil, fmt.Errorf("sched: solution is %T, want sched.Schedule", s)
	}
	return sc, nil
}

func (d schedDomain) Validate(p any) error {
	sp, err := d.problem(p)
	if err != nil {
		return err
	}
	return sp.Validate()
}

func (d schedDomain) CloneProblem(p any) any {
	sp, err := d.problem(p)
	if err != nil {
		panic(err)
	}
	return sp.Clone()
}

func (d schedDomain) ProblemSize(p any) (int, int) {
	sp, err := d.problem(p)
	if err != nil {
		return 0, 0
	}
	return sp.NumOps, len(sp.Deps)
}

// schedProblemJSON is the scheduling wire form.
type schedProblemJSON struct {
	Capacity []int    `json:"capacity"`
	Steps    int      `json:"steps"`
	Types    []int    `json:"types"`
	Deps     [][2]int `json:"deps"`
}

func (d schedDomain) ParseProblem(spec json.RawMessage) (any, error) {
	var req schedProblemJSON
	dec := json.NewDecoder(strings.NewReader(string(spec)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("sched: bad problem: %w", err)
	}
	if len(req.Capacity) == 0 || req.Steps < 1 {
		return nil, fmt.Errorf("sched: need capacity and steps ≥ 1")
	}
	p := NewProblem(req.Capacity, req.Steps)
	for i, r := range req.Types {
		if r < 0 || r >= len(req.Capacity) {
			return nil, fmt.Errorf("sched: op %d has bad type %d", i, r)
		}
		p.AddOp(r)
	}
	for i, dep := range req.Deps {
		if dep[0] < 0 || dep[0] >= p.NumOps || dep[1] < 0 || dep[1] >= p.NumOps || dep[0] == dep[1] {
			return nil, fmt.Errorf("sched: bad dep %d (%d,%d)", i, dep[0], dep[1])
		}
		p.AddDep(dep[0], dep[1])
	}
	return p, nil
}

func (d schedDomain) RenderProblem(p any) any {
	sp, err := d.problem(p)
	if err != nil {
		return nil
	}
	return schedProblemJSON{
		Capacity: append([]int(nil), sp.Capacity...),
		Steps:    sp.Steps,
		Types:    append([]int(nil), sp.Type...),
		Deps:     append([][2]int(nil), sp.Deps...),
	}
}

func (d schedDomain) ParseChange(spec json.RawMessage) (any, error) {
	var c Change
	if err := json.Unmarshal(spec, &c); err != nil {
		return nil, fmt.Errorf("sched: bad change: %w", err)
	}
	switch strings.ToLower(c.Kind) {
	case "add-op", "add-dep", "remove-dep", "set-capacity":
		c.Kind = strings.ToLower(c.Kind)
		return c, nil
	default:
		return nil, fmt.Errorf("sched: unknown kind %q", c.Kind)
	}
}

func (d schedDomain) RenderChange(change any) any {
	c, ok := change.(Change)
	if !ok {
		return nil
	}
	return c
}

func (d schedDomain) ApplyChanges(p any, changes []any) (any, error) {
	sp, err := d.problem(p)
	if err != nil {
		return nil, err
	}
	out := sp.Clone()
	for i, raw := range changes {
		c, ok := raw.(Change)
		if !ok {
			return nil, fmt.Errorf("sched: change %d is %T, want sched.Change", i, raw)
		}
		switch c.Kind {
		case "add-op":
			if c.Type < 0 || c.Type >= len(out.Capacity) {
				return nil, fmt.Errorf("sched: change %d: bad type %d", i, c.Type)
			}
			out.AddOp(c.Type)
		case "add-dep":
			if c.From < 0 || c.From >= out.NumOps || c.To < 0 || c.To >= out.NumOps || c.From == c.To {
				return nil, fmt.Errorf("sched: change %d: bad dep (%d,%d)", i, c.From, c.To)
			}
			out.AddDep(c.From, c.To)
		case "remove-dep":
			if !out.RemoveDep(c.From, c.To) {
				return nil, fmt.Errorf("sched: change %d: dep (%d,%d) absent", i, c.From, c.To)
			}
		case "set-capacity":
			if c.Type < 0 || c.Type >= len(out.Capacity) || c.Capacity < 1 {
				return nil, fmt.Errorf("sched: change %d: bad capacity %d for type %d", i, c.Capacity, c.Type)
			}
			out.Capacity[c.Type] = c.Capacity
		default:
			return nil, fmt.Errorf("sched: change %d has unknown kind %q", i, c.Kind)
		}
	}
	return out, nil
}

func (schedDomain) Tightening(change any) bool {
	c, ok := change.(Change)
	if !ok {
		return false
	}
	// Removing a dependency never invalidates a schedule; everything else
	// can (set-capacity is conservatively tightening — the new capacity
	// may be lower).
	return c.Kind != "remove-dep"
}

func (d schedDomain) CloneSolution(s any) any {
	sc, err := d.solution(s)
	if err != nil {
		panic(err)
	}
	return sc.Clone()
}

func (d schedDomain) ExtendSolution(p, prev any) (any, error) {
	sp, err := d.problem(p)
	if err != nil {
		return nil, err
	}
	sc, err := d.solution(prev)
	if err != nil {
		return nil, err
	}
	if len(sc) != sp.NumOps {
		return nil, fmt.Errorf("sched: cannot extend schedule of %d ops to %d", len(sc), sp.NumOps)
	}
	return sc.Clone(), nil
}

func (d schedDomain) Verify(p, s any) error {
	sp, err := d.problem(p)
	if err != nil {
		return err
	}
	sc, err := d.solution(s)
	if err != nil {
		return err
	}
	if !sc.Valid(sp) {
		return fmt.Errorf("sched: invalid schedule")
	}
	return nil
}

func (d schedDomain) Render(p, s any) any {
	sc, err := d.solution(s)
	if err != nil {
		return nil
	}
	return []int(sc)
}

func (d schedDomain) ParseSolution(p any, spec json.RawMessage) (any, error) {
	sp, err := d.problem(p)
	if err != nil {
		return nil, err
	}
	var steps []int
	if err := json.Unmarshal(spec, &steps); err != nil {
		return nil, fmt.Errorf("sched: bad solution: %w", err)
	}
	if len(steps) != sp.NumOps {
		return nil, fmt.Errorf("sched: solution covers %d ops, want %d", len(steps), sp.NumOps)
	}
	return Schedule(append([]int(nil), steps...)), nil
}

func (d schedDomain) Agreement(prev, next any) float64 {
	ps, err1 := d.solution(prev)
	ns, err2 := d.solution(next)
	if err1 != nil || err2 != nil {
		return 0
	}
	return ps.Agreement(ns)
}

func (schedDomain) DontCares(p, s any) int { return 0 }

func (d schedDomain) Flex(p, s any, k int) (domain.FlexReport, error) {
	sp, err := d.problem(p)
	if err != nil {
		return domain.FlexReport{}, err
	}
	sc, err := d.solution(s)
	if err != nil {
		return domain.FlexReport{}, err
	}
	if !sc.Valid(sp) {
		return domain.FlexReport{}, fmt.Errorf("sched: flex audit needs a valid schedule")
	}
	rep := VerifySlack(sp, sc)
	return domain.FlexReport{Total: rep.Total, Flexible: rep.Flexible}, nil
}

// schedEncoding wraps the time-indexed scheduling ILP.
type schedEncoding struct {
	e *Encoding
}

func (se *schedEncoding) ILP() *ilp.Model { return se.e.Model }

func (se *schedEncoding) Decode(sol ilp.Solution) (any, error) {
	return se.e.Decode(sol), nil
}

func (se *schedEncoding) WarmStart(sol any) (ilp.Solution, bool) {
	sc, ok := sol.(Schedule)
	if !ok || sc == nil {
		return nil, false
	}
	return se.e.EncodeSchedule(sc), true
}

func (d schedDomain) Encode(p any) (domain.Encoding, error) {
	sp, err := d.problem(p)
	if err != nil {
		return nil, err
	}
	return &schedEncoding{e: NewEncoding(sp)}, nil
}

func (d schedDomain) PreserveTerms(enc domain.Encoding, p, prev any) error {
	se, ok := enc.(*schedEncoding)
	if !ok {
		return fmt.Errorf("sched: encoding is %T", enc)
	}
	sc, err := d.solution(prev)
	if err != nil {
		return err
	}
	addPreserveTerms(se.e, sc)
	return nil
}

func (d schedDomain) EnableTerms(enc domain.Encoding, p any, opts domain.EnableOptions) error {
	se, ok := enc.(*schedEncoding)
	if !ok {
		return fmt.Errorf("sched: encoding is %T", enc)
	}
	w := opts.Weight
	if w <= 0 {
		w = 1
	}
	addEnableTerms(se.e, w)
	return nil
}

// EncodeDelta translates a change batch into row edits against the
// previous scheduling encoding: dependency additions append one
// endpoint-named precedence row, dependency removals drop it, and
// capacity changes rewrite the RHS of every cap_{type}_{step} row (which
// exist only when some operation uses the type — a vacuous capacity
// change edits nothing). add-op grows the variable set and duplicate
// dependencies would collide by row name; both report ok=false so the
// caller falls back to a full re-encode.
func (d schedDomain) EncodeDelta(prev domain.Encoding, prevProblem any, changes []any) (*domain.Delta, bool) {
	se, ok := prev.(*schedEncoding)
	if !ok {
		return nil, false
	}
	sp, ok := prevProblem.(*Problem)
	if !ok || sp == nil {
		return nil, false
	}
	if sp.NumOps != se.e.Problem.NumOps || sp.Steps != se.e.Problem.Steps ||
		len(sp.Capacity) != len(se.e.Problem.Capacity) {
		return nil, false // problem drifted off the encoding's variable set
	}
	work := sp.Clone() // working copy: validates sequential batches
	out := &domain.Delta{}
	for _, raw := range changes {
		c, ok := raw.(Change)
		if !ok {
			return nil, false
		}
		switch c.Kind {
		case "add-dep":
			if c.From < 0 || c.From >= work.NumOps || c.To < 0 || c.To >= work.NumOps || c.From == c.To {
				return nil, false // invalid batch: let the rebuild path error
			}
			if hasDep(work, c.From, c.To) {
				return nil, false // duplicate dep: rows would collide by name
			}
			work.AddDep(c.From, c.To)
			out.AddRows = append(out.AddRows, ilp.Row{
				Name:  depRowName(c.From, c.To),
				Coefs: se.e.depCoefs(c.From, c.To),
				Sense: ilp.GE,
				RHS:   1,
			})
		case "remove-dep":
			if !work.RemoveDep(c.From, c.To) {
				return nil, false
			}
			if hasDep(work, c.From, c.To) {
				return nil, false // duplicated dep: removing by name drops both rows
			}
			out.DropRow(depRowName(c.From, c.To))
		case "set-capacity":
			if c.Type < 0 || c.Type >= len(work.Capacity) || c.Capacity < 1 {
				return nil, false
			}
			work.Capacity[c.Type] = c.Capacity
			for o := 0; o < work.NumOps; o++ {
				if work.Type[o] != c.Type {
					continue
				}
				for t := 0; t < work.Steps; t++ {
					out.SetRHS = append(out.SetRHS, domain.RHSEdit{
						Name: capRowName(c.Type, t), RHS: float64(c.Capacity),
					})
				}
				break
			}
		default:
			// add-op (and anything unknown) grows the variable set: not
			// expressible as a delta.
			return nil, false
		}
	}
	return out, true
}

// hasDep reports whether the dependency pair is present.
func hasDep(p *Problem, from, to int) bool {
	for _, dep := range p.Deps {
		if dep[0] == from && dep[1] == to {
			return true
		}
	}
	return false
}

// schedRegion re-places the disturbed cone with the rest frozen,
// absorbing dependency neighborhoods on escalation.
type schedRegion struct {
	p      *Problem
	prev   Schedule
	region map[int]bool
	full   bool
}

func (d schedDomain) AffectedRegion(p, prev any) (domain.Region, error) {
	sp, err := d.problem(p)
	if err != nil {
		return nil, err
	}
	sc, err := d.solution(prev)
	if err != nil {
		return nil, err
	}
	grown := sc.Clone()
	for len(grown) < sp.NumOps {
		grown = append(grown, -1) // newly added operations join the region
	}
	grown = grown[:sp.NumOps]
	region := map[int]bool{}
	for o := 0; o < sp.NumOps; o++ {
		if grown[o] < 0 || grown[o] >= sp.Steps {
			region[o] = true
		}
	}
	for _, dep := range sp.Deps {
		if !region[dep[0]] && !region[dep[1]] && grown[dep[0]] >= grown[dep[1]] {
			region[dep[0]] = true
			region[dep[1]] = true
		}
	}
	// Capacity violations join too.
	use := make(map[[2]int][]int)
	for o := 0; o < sp.NumOps; o++ {
		if !region[o] {
			key := [2]int{sp.Type[o], grown[o]}
			use[key] = append(use[key], o)
		}
	}
	for key, ops := range use {
		if len(ops) > sp.Capacity[key[0]] {
			for _, o := range ops {
				region[o] = true
			}
		}
	}
	if len(region) == 0 {
		return nil, nil
	}
	return &schedRegion{p: sp, prev: grown, region: region}, nil
}

func (r *schedRegion) Size() int {
	if r.full {
		return r.p.NumOps
	}
	return len(r.region)
}

func (r *schedRegion) Full() bool { return r.full || len(r.region) >= r.p.NumOps }

func (r *schedRegion) Encoding() (domain.Encoding, error) {
	e := NewEncoding(r.p)
	if !r.Full() {
		for o := 0; o < r.p.NumOps; o++ {
			if r.region[o] {
				continue
			}
			t := r.prev[o]
			if t < 0 || t >= r.p.Steps {
				return nil, fmt.Errorf("sched: frozen op %d has no valid step", o)
			}
			e.Model.AddRow(fmt.Sprintf("freeze_%d", o),
				[]ilp.Coef{{Var: e.XCol(o, t), Val: 1}}, ilp.GE, 1)
		}
	}
	return &schedEncoding{e: e}, nil
}

func (r *schedRegion) Merge(sub any) (any, error) {
	sc, ok := sub.(Schedule)
	if !ok {
		return nil, fmt.Errorf("sched: sub-solution is %T", sub)
	}
	return sc, nil // the region model decodes the full schedule
}

func (r *schedRegion) Escalate() bool {
	if r.Full() {
		return false
	}
	grew := false
	for _, dep := range r.p.Deps {
		if r.region[dep[0]] != r.region[dep[1]] {
			r.region[dep[0]] = true
			r.region[dep[1]] = true
			grew = true
		}
	}
	return grew
}

func (r *schedRegion) EscalateToFull() { r.full = true }

func (d schedDomain) FingerprintProblem(w io.Writer, p any) {
	sp, err := d.problem(p)
	if err != nil {
		domain.WriteString(w, "sched-bad-problem")
		return
	}
	domain.WriteInts(w, int64(sp.NumOps), int64(sp.Steps), int64(len(sp.Capacity)), int64(len(sp.Deps)))
	for _, c := range sp.Capacity {
		domain.WriteInts(w, int64(c))
	}
	for _, r := range sp.Type {
		domain.WriteInts(w, int64(r))
	}
	for _, dep := range sp.Deps {
		domain.WriteInts(w, int64(dep[0]), int64(dep[1]))
	}
}

func (d schedDomain) FingerprintSolution(w io.Writer, s any) {
	sc, err := d.solution(s)
	if err != nil {
		domain.WriteString(w, "sched-bad-solution")
		return
	}
	domain.WriteInts(w, int64(len(sc)))
	for _, t := range sc {
		domain.WriteInts(w, int64(t))
	}
}

// Conformance supplies the shared domain test fixture: a 5-op two-type
// pipeline whose tightening batch adds an op and a dependency.
func (schedDomain) Conformance() domain.Conformance {
	p := NewProblem([]int{2, 1}, 4)
	p.AddOp(0) // 0
	p.AddOp(0) // 1
	p.AddOp(1) // 2
	p.AddOp(0) // 3
	p.AddOp(1) // 4
	p.AddDep(0, 2)
	p.AddDep(1, 3)
	return domain.Conformance{
		Problem:     p,
		ProblemJSON: json.RawMessage(`{"capacity": [2,1], "steps": 4, "types": [0,0,1,0,1], "deps": [[0,2],[1,3]]}`),
		Tightening: []any{
			Change{Kind: "add-op", Type: 1},
			Change{Kind: "add-dep", From: 2, To: 4},
		},
		TighteningJSON: []json.RawMessage{
			json.RawMessage(`{"kind":"add-op","type":1}`),
			json.RawMessage(`{"kind":"add-dep","from":2,"to":4}`),
		},
		Relaxing: []any{Change{Kind: "remove-dep", From: 1, To: 3}},
		Enable:   domain.EnableOptions{Weight: 1},
		FlexK:    1,
	}
}
