package sched

import (
	"strings"
	"testing"

	"ilpec/internal/ilp"
)

// TestFastRescheduleNeighborhoodEscalation pins the dependency-neighborhood
// escalation path: the initial region (just the new operation) is
// infeasible against the frozen schedule, and FastReschedule must grow the
// region along dependency edges — twice — before the re-solve succeeds.
//
// Chain a→b→c scheduled {0,1,2} in 4 steps (capacity 1); the change
// prepends d with d→a. Region {d} fails (a is frozen at step 0), region
// {d,a} fails (b is frozen at step 1), and only the full chain {d,a,b,c}
// can shift to {0,1,2,3}.
func TestFastRescheduleNeighborhoodEscalation(t *testing.T) {
	p := NewProblem([]int{1}, 4)
	a := p.AddOp(0)
	b := p.AddOp(0)
	c := p.AddOp(0)
	p.AddDep(a, b)
	p.AddDep(b, c)
	prev := Schedule{0, 1, 2}
	if !prev.Valid(p) {
		t.Fatal("setup schedule invalid")
	}

	d := p.AddOp(0)
	p.AddDep(d, a)
	s, region, err := FastReschedule(p, prev, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Valid(p) {
		t.Fatalf("rescheduled invalid: %v", s)
	}
	if region != p.NumOps {
		t.Fatalf("region %d, want the full chain %d after neighborhood escalation", region, p.NumOps)
	}
	if s[d] >= s[a] || s[a] >= s[b] || s[b] >= s[c] {
		t.Fatalf("chain order broken: %v", s)
	}
}

// TestFastRescheduleEscalationStaysPartial pins that escalation stops as
// soon as the grown region becomes feasible, leaving the rest frozen: with
// a→b at {0,2} and a new d→a, one neighborhood growth ({d} → {d,a}) lets
// d,a slide to {0,1} while b never moves.
func TestFastRescheduleEscalationStaysPartial(t *testing.T) {
	p := NewProblem([]int{1}, 3)
	a := p.AddOp(0)
	b := p.AddOp(0)
	p.AddDep(a, b)
	prev := Schedule{0, 2}
	if !prev.Valid(p) {
		t.Fatal("setup schedule invalid")
	}
	d := p.AddOp(0)
	p.AddDep(d, a)
	s, region, err := FastReschedule(p, prev, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Valid(p) {
		t.Fatalf("rescheduled invalid: %v", s)
	}
	if region != 2 {
		t.Fatalf("region %d, want 2 ({d,a} after one dependency-neighborhood growth)", region)
	}
	if s[b] != prev[b] {
		t.Fatalf("op b moved from %d to %d despite being outside the region", prev[b], s[b])
	}
	if s[d] >= s[a] || s[a] >= s[b] {
		t.Fatalf("order broken: %v", s)
	}
}

// TestFastRescheduleInfeasibleReportsFullRegion covers the growth
// fixpoint's last resort: with no escalation left, the region jumps to the
// full operation set, and the error reports the exhausted region when even
// that cannot absorb the change.
func TestFastRescheduleInfeasibleReportsFullRegion(t *testing.T) {
	p := NewProblem([]int{1}, 2)
	p.AddOp(0)
	p.AddOp(0)
	prev := Schedule{0, 1}
	p.AddOp(0) // three unit ops, two steps, capacity 1: impossible
	_, region, err := FastReschedule(p, prev, ilp.Options{})
	if err == nil {
		t.Fatal("impossible reschedule succeeded")
	}
	if !strings.Contains(err.Error(), "infeasible") {
		t.Fatalf("error %q does not name infeasibility", err)
	}
	if region != p.NumOps {
		t.Fatalf("region %d, want %d (full escalation before giving up)", region, p.NumOps)
	}
}

// TestFastRescheduleCapacityViolationJoinsRegion pins the capacity-repair
// seeding: a capacity drop puts previously-frozen co-resident operations
// into the region even though their steps are individually in range.
func TestFastRescheduleCapacityViolationJoinsRegion(t *testing.T) {
	p := NewProblem([]int{2}, 3)
	p.AddOp(0)
	p.AddOp(0)
	prev := Schedule{0, 0, 1}
	p.AddOp(0)
	prev = prev[:2] // third op is new → joins the region as -1
	p.Capacity[0] = 1
	s, region, err := FastReschedule(p, prev, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Valid(p) {
		t.Fatalf("rescheduled invalid: %v", s)
	}
	if region < 3 {
		t.Fatalf("region %d too small: the capacity victims at step 0 must join", region)
	}
}

// TestFastRescheduleValidateError covers the input-validation guard.
func TestFastRescheduleValidateError(t *testing.T) {
	p := NewProblem([]int{1}, 0) // zero-step horizon is invalid
	p.AddOp(0)
	if _, _, err := FastReschedule(p, Schedule{0}, ilp.Options{}); err == nil {
		t.Fatal("invalid problem accepted")
	}
}
