package sched

import (
	"math/rand"
	"testing"

	"ilpec/internal/ilp"
)

// diamond builds the classic 4-op diamond DAG: 0 → {1,2} → 3, one adder
// (type 0, capacity 1) and one multiplier (type 1, capacity 1).
func diamond() *Problem {
	p := NewProblem([]int{1, 1}, 4)
	a := p.AddOp(0)
	b := p.AddOp(0)
	c := p.AddOp(1)
	d := p.AddOp(0)
	p.AddDep(a, b)
	p.AddDep(a, c)
	p.AddDep(b, d)
	p.AddDep(c, d)
	return p
}

func TestProblemBasics(t *testing.T) {
	p := diamond()
	if p.NumOps != 4 || len(p.Deps) != 4 {
		t.Fatalf("shape: %d ops %d deps", p.NumOps, len(p.Deps))
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !p.RemoveDep(0, 1) || p.RemoveDep(0, 1) {
		t.Fatal("RemoveDep wrong")
	}
	c := p.Clone()
	c.AddDep(0, 3)
	if len(p.Deps) != 3 {
		t.Fatal("Clone shares deps")
	}
}

func TestProblemPanics(t *testing.T) {
	p := NewProblem([]int{1}, 3)
	p.AddOp(0)
	for _, fn := range []func(){
		func() { p.AddOp(5) },
		func() { p.AddDep(0, 0) },
		func() { p.AddDep(0, 9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestScheduleValid(t *testing.T) {
	p := diamond()
	good := Schedule{0, 1, 1, 2}
	if !good.Valid(p) {
		t.Fatal("valid schedule rejected")
	}
	// b and d both adders in step 1 and... craft capacity violation.
	bad := Schedule{0, 1, 1, 1} // d at step 1 violates deps b->d
	if bad.Valid(p) {
		t.Fatal("dependency violation accepted")
	}
	capBad := Schedule{0, 0, 1, 2} // a and b both adders at step 0
	if capBad.Valid(p) {
		t.Fatal("capacity violation accepted")
	}
	short := Schedule{0, 1, 1}
	if short.Valid(p) {
		t.Fatal("short schedule accepted")
	}
}

func TestListSchedule(t *testing.T) {
	p := diamond()
	s, err := ListSchedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Valid(p) {
		t.Fatalf("greedy schedule invalid: %v", s)
	}
	// Horizon too short.
	tight := diamond()
	tight.Steps = 2
	if _, err := ListSchedule(tight); err == nil {
		t.Fatal("expected horizon error")
	}
	// Cyclic DAG.
	cyc := NewProblem([]int{1}, 3)
	a := cyc.AddOp(0)
	b := cyc.AddOp(0)
	cyc.AddDep(a, b)
	cyc.AddDep(b, a)
	if _, err := ListSchedule(cyc); err == nil {
		t.Fatal("expected cycle error")
	}
}

func TestSolveExact(t *testing.T) {
	p := diamond()
	s, res, err := Solve(p, nil, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Valid(p) {
		t.Fatalf("schedule invalid: %v", s)
	}
	if res.Status != ilp.Optimal {
		t.Fatalf("status %v", res.Status)
	}
	// The diamond's critical path is 3 steps: a at 0, d at 2.
	if s[0] != 0 || s[3] != 2 {
		t.Fatalf("not compacted: %v", s)
	}
	// Infeasible horizon.
	tight := diamond()
	tight.Steps = 2
	if _, _, err := Solve(tight, nil, ilp.Options{}); err == nil {
		t.Fatal("expected infeasibility")
	}
}

func TestSolveWarmStart(t *testing.T) {
	p := diamond()
	greedy, err := ListSchedule(p)
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := Solve(p, greedy, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Valid(p) {
		t.Fatal("warm-started schedule invalid")
	}
}

func TestFastRescheduleAbsorbsNewOp(t *testing.T) {
	p := diamond()
	prev, _, err := Solve(p, nil, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// EC: a new multiplier depending on op 0.
	changed := p.Clone()
	n := changed.AddOp(1)
	changed.AddDep(0, n)
	s, region, err := FastReschedule(changed, prev, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Valid(changed) {
		t.Fatalf("reschedule invalid: %v", s)
	}
	if region > 2 {
		t.Fatalf("region %d too large for a single added op", region)
	}
	// Frozen operations keep their steps.
	for o := 0; o < p.NumOps; o++ {
		if s[o] != prev[o] {
			t.Fatalf("op %d moved from %d to %d", o, prev[o], s[o])
		}
	}
}

func TestFastRescheduleNoChange(t *testing.T) {
	p := diamond()
	prev, _, err := Solve(p, nil, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, region, err := FastReschedule(p, prev, ilp.Options{})
	if err != nil || region != 0 {
		t.Fatalf("no-op reschedule: region=%d err=%v", region, err)
	}
	if s.Agreement(prev) != 1 {
		t.Fatal("schedule changed without cause")
	}
}

func TestFastRescheduleEscalates(t *testing.T) {
	// Capacity drop makes the frozen context infeasible: 2 adders at step
	// 0 with capacity halved — region must grow beyond the direct victims.
	p := NewProblem([]int{2}, 3)
	a := p.AddOp(0)
	b := p.AddOp(0)
	c := p.AddOp(0)
	p.AddDep(a, c)
	prev := Schedule{0, 0, 1}
	if !prev.Valid(p) {
		t.Fatal("setup invalid")
	}
	p.Capacity[0] = 1 // EC: lose one adder
	s, _, err := FastReschedule(p, prev, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Valid(p) {
		t.Fatalf("rescheduled invalid: %v", s)
	}
	_ = b
}

func TestPreserveReschedule(t *testing.T) {
	p := diamond()
	prev, _, err := Solve(p, nil, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// EC: new dependency b -> c forces c later.
	changed := p.Clone()
	changed.AddDep(1, 2)
	s, _, err := PreserveReschedule(changed, prev, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Valid(changed) {
		t.Fatalf("preserving schedule invalid: %v", s)
	}
	// At least half the operations keep their step.
	if s.Agreement(prev) < 0.5 {
		t.Fatalf("agreement %.2f too low", s.Agreement(prev))
	}
}

func TestVerifySlack(t *testing.T) {
	p := diamond()
	s := Schedule{0, 1, 1, 2}
	rep := VerifySlack(p, s)
	if rep.Total != 4 {
		t.Fatalf("total %d", rep.Total)
	}
	if rep.Flexible+len(rep.Rigid) != rep.Total {
		t.Fatal("accounting broken")
	}
}

func TestSolveEnabled(t *testing.T) {
	// Loose instance: 3 independent adders, capacity 2, horizon 4 — plenty
	// of spare slots to reward.
	p := NewProblem([]int{2}, 4)
	p.AddOp(0)
	p.AddOp(0)
	p.AddOp(0)
	s, _, err := SolveEnabled(p, 2, nil, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Valid(p) {
		t.Fatalf("enabled schedule invalid: %v", s)
	}
	rep := VerifySlack(p, s)
	if rep.Flexible != 3 {
		t.Fatalf("enabled schedule leaves rigid ops: %+v", rep)
	}
}

func TestScheduleAgreementAndClone(t *testing.T) {
	a := Schedule{0, 1, 2}
	b := Schedule{0, 1, 3}
	if g := a.Agreement(b); g < 0.66 || g > 0.67 {
		t.Fatalf("agreement %v", g)
	}
	if (Schedule{}).Agreement(Schedule{}) != 1 {
		t.Fatal("empty agreement")
	}
	c := a.Clone()
	c[0] = 9
	if a[0] != 0 {
		t.Fatal("Clone aliases")
	}
}

// Random DAG property: exact solve and greedy baseline both produce valid
// schedules; exact (compaction objective) finishes no later than greedy.
func TestRandomDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	for trial := 0; trial < 25; trial++ {
		nOps := 4 + rng.Intn(6)
		p := NewProblem([]int{1 + rng.Intn(2), 1 + rng.Intn(2)}, nOps+2)
		for o := 0; o < nOps; o++ {
			p.AddOp(rng.Intn(2))
		}
		for o := 1; o < nOps; o++ {
			if rng.Intn(2) == 0 {
				p.AddDep(rng.Intn(o), o)
			}
		}
		greedy, err := ListSchedule(p)
		if err != nil {
			continue // horizon too tight for this draw
		}
		exact, _, err := Solve(p, greedy, ilp.Options{})
		if err != nil {
			t.Fatalf("trial %d: exact failed where greedy succeeded: %v", trial, err)
		}
		if !exact.Valid(p) || !greedy.Valid(p) {
			t.Fatalf("trial %d: invalid schedule", trial)
		}
		gMax, eMax := 0, 0
		for o := 0; o < nOps; o++ {
			if greedy[o] > gMax {
				gMax = greedy[o]
			}
			if exact[o] > eMax {
				eMax = exact[o]
			}
		}
		if eMax > gMax {
			t.Fatalf("trial %d: exact finishes later (%d) than greedy (%d)", trial, eMax, gMax)
		}
	}
}
