package service

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ilpec/internal/domain"
	"ilpec/internal/store"
)

// This file is the instance-path differential suite: every solve a
// session serves through its persistent domain.Instance must agree with
// the same script served by a scratch (DisableInstance) service — same
// pass statuses, same batch sizes, same committed problems, and valid
// solutions on both arms. Solutions themselves may be distinct optima,
// so the arms are compared on problem fingerprints and verification
// rather than solution fingerprints.

// driveStep queues a batch (if any) and solves on both arms, asserting
// the passes agree.
func driveStep(t *testing.T, label string, d domain.Domain, inst, scratch *Session, batch []any) {
	t.Helper()
	if len(batch) > 0 {
		if _, err := inst.QueueChanges(batch...); err != nil {
			t.Fatalf("%s: instance queue: %v", label, err)
		}
		if _, err := scratch.QueueChanges(batch...); err != nil {
			t.Fatalf("%s: scratch queue: %v", label, err)
		}
	}
	ri, erri := inst.Solve()
	rs, errs := scratch.Solve()
	if (erri == nil) != (errs == nil) {
		t.Fatalf("%s: arms disagree on error: instance=%v scratch=%v", label, erri, errs)
	}
	if erri != nil {
		return
	}
	if ri.Status != rs.Status || ri.Batched != rs.Batched {
		t.Fatalf("%s: pass diverged: instance %q/%d, scratch %q/%d",
			label, ri.Status, ri.Batched, rs.Status, rs.Batched)
	}
	if probFP(d, inst.Problem()) != probFP(d, scratch.Problem()) {
		t.Fatalf("%s: committed problems diverged", label)
	}
	if err := d.Verify(inst.Problem(), ri.Solution); err != nil {
		t.Fatalf("%s: instance solution invalid: %v", label, err)
	}
	if err := d.Verify(scratch.Problem(), rs.Solution); err != nil {
		t.Fatalf("%s: scratch solution invalid: %v", label, err)
	}
}

// TestInstanceScratchDifferential drives the standard script — initial
// solve, tightening batch, relaxing batch — through an instance-enabled
// service and a DisableInstance control for every domain × strategy, and
// pins that the scratch arm never touches the instance counters while
// the instance arm builds at least one.
func TestInstanceScratchDifferential(t *testing.T) {
	for _, name := range allDomains {
		for _, strat := range []domain.Strategy{domain.FastEC, domain.PreservingEC, domain.Replan} {
			t.Run(name+"/"+strat.String(), func(t *testing.T) {
				instSvc := newTestService(t, Options{})
				scrSvc := newTestService(t, Options{DisableInstance: true})
				d, c := fixtureFor(t, instSvc, name)
				si, err := instSvc.CreateDomainSession(name, c.Problem, SessionConfig{Strategy: &strat})
				if err != nil {
					t.Fatal(err)
				}
				ss, err := scrSvc.CreateDomainSession(name, c.Problem, SessionConfig{Strategy: &strat})
				if err != nil {
					t.Fatal(err)
				}
				driveStep(t, "initial", d, si, ss, nil)
				driveStep(t, "tighten", d, si, ss, c.Tightening)
				driveStep(t, "relax", d, si, ss, c.Relaxing)

				im, sm := instSvc.Metrics(), scrSvc.Metrics()
				if im.InstanceRebuilds == 0 {
					t.Fatalf("instance arm never built an instance: %+v", im)
				}
				if sm.InstanceRebuilds != 0 || sm.InstanceReuses != 0 {
					t.Fatalf("scratch arm touched instance counters: %+v", sm)
				}
			})
		}
	}
}

// TestInstanceReuseAccounting pins the reuse/rebuild split on a replan
// coloring session: the initial solve builds the instance, and a
// delta-expressible tightening batch (add-edge) reuses it instead of
// re-encoding.
func TestInstanceReuseAccounting(t *testing.T) {
	svc := newTestService(t, Options{})
	replan := domain.Replan
	d, c := fixtureFor(t, svc, "coloring")
	sess, err := svc.CreateDomainSession("coloring", c.Problem, SessionConfig{Strategy: &replan})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Solve(); err != nil {
		t.Fatal(err)
	}
	if m := svc.Metrics(); m.InstanceRebuilds != 1 || m.InstanceReuses != 0 {
		t.Fatalf("after initial solve: rebuilds=%d reuses=%d, want 1/0",
			m.InstanceRebuilds, m.InstanceReuses)
	}
	if _, err := sess.QueueChanges(c.Tightening...); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Verify(sess.Problem(), res.Solution); err != nil {
		t.Fatalf("replan solution invalid: %v", err)
	}
	if m := svc.Metrics(); m.InstanceRebuilds != 1 || m.InstanceReuses != 1 {
		t.Fatalf("after delta replan: rebuilds=%d reuses=%d, want 1/1",
			m.InstanceRebuilds, m.InstanceReuses)
	}
}

// TestInstanceCrashRecoveryDifferential: an instance-enabled file-backed
// session is crash-killed mid-append and recovered (the rehydrated
// session starts with no live instance and must rebuild transparently);
// its post-recovery solve is differential-checked against a scratch
// DisableInstance control running the identical script.
func TestInstanceCrashRecoveryDifferential(t *testing.T) {
	for _, name := range allDomains {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			st, err := store.NewFile(dir)
			if err != nil {
				t.Fatal(err)
			}
			svc := New(Options{Store: st}) // no Close — a crash never flushes
			sess := runScript(t, svc, name)
			d, c := fixtureFor(t, svc, name)
			if _, err := sess.QueueChanges(c.Relaxing...); err != nil {
				t.Fatal(err)
			}
			id := sess.ID()

			journal := filepath.Join(dir, id, "journal.jsonl")
			f, err := os.OpenFile(journal, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteString(`0badc0de {"seq":999,"kind":"cha`); err != nil {
				t.Fatal(err)
			}
			f.Close()

			st2, err := store.NewFile(dir)
			if err != nil {
				t.Fatal(err)
			}
			svc2 := New(Options{Store: st2})
			defer svc2.Close()
			recovered, ok := svc2.Session(id)
			if !ok {
				t.Fatal("crashed session did not recover")
			}
			res, err := recovered.Solve()
			if err != nil {
				t.Fatalf("post-recovery solve: %v", err)
			}

			// The scratch control: same script, instance path disabled.
			control := New(Options{DisableInstance: true})
			defer control.Close()
			ctrlSess := runScript(t, control, name)
			if _, err := ctrlSess.QueueChanges(c.Relaxing...); err != nil {
				t.Fatal(err)
			}
			ctrlRes, err := ctrlSess.Solve()
			if err != nil {
				t.Fatal(err)
			}

			if res.Status != ctrlRes.Status || res.Batched != ctrlRes.Batched {
				t.Fatalf("post-recovery pass %q/%d diverged from scratch control %q/%d",
					res.Status, res.Batched, ctrlRes.Status, ctrlRes.Batched)
			}
			if probFP(d, recovered.Problem()) != probFP(d, ctrlSess.Problem()) {
				t.Fatal("recovered problem diverged from scratch control")
			}
			if err := d.Verify(recovered.Problem(), res.Solution); err != nil {
				t.Fatalf("recovered solution invalid: %v", err)
			}
		})
	}
}

// TestInstanceRebuildAfterRecovery pins that a crash-recovered replan
// session rebuilds its instance from the rehydrated snapshot on the
// next solver-forcing batch: rehydration leaves no live instance, and
// the path must come back transparently rather than staying disabled.
func TestInstanceRebuildAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := store.NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Options{Store: st}) // no Close — crash below
	replan := domain.Replan
	d, c := fixtureFor(t, svc, "coloring")
	sess, err := svc.CreateDomainSession("coloring", c.Problem, SessionConfig{Strategy: &replan})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Solve(); err != nil {
		t.Fatal(err)
	}
	id := sess.ID()

	st2, err := store.NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc2 := New(Options{Store: st2})
	defer svc2.Close()
	recovered, ok := svc2.Session(id)
	if !ok {
		t.Fatal("session did not recover")
	}
	if _, err := recovered.QueueChanges(c.Tightening...); err != nil {
		t.Fatal(err)
	}
	res, err := recovered.Solve()
	if err != nil {
		t.Fatalf("post-recovery replan: %v", err)
	}
	if err := d.Verify(recovered.Problem(), res.Solution); err != nil {
		t.Fatalf("post-recovery solution invalid: %v", err)
	}
	if m := svc2.Metrics(); m.InstanceRebuilds != 1 {
		t.Fatalf("recovered service rebuilds=%d, want 1 (rehydration must rebuild, not disable)",
			m.InstanceRebuilds)
	}
}

// TestInstanceChaosDifferential runs the chaos script — faulted
// file-backed store, retrying client — on an instance-enabled service
// and compares it against a scratch DisableInstance control. Store
// faults discard drained batches and invalidate the live instance; the
// served state must still match the scratch arm step for step.
func TestInstanceChaosDifferential(t *testing.T) {
	for _, seed := range []int64{3, 6} {
		for _, name := range allDomains {
			t.Run(fmt.Sprintf("seed%d/%s", seed, name), func(t *testing.T) {
				t.Parallel()
				dir := t.TempDir()
				file, err := store.NewFile(dir)
				if err != nil {
					t.Fatal(err)
				}
				plan := chaosPlan(seed)
				fs := store.NewFaulty(file, plan)
				svc := New(Options{
					Store:           fs,
					StoreRetry:      chaosRetry(),
					QuarantineAfter: 2,
					ReprobeInterval: -1,
					SnapshotEvery:   3,
				})
				defer svc.Close()
				d, c := fixtureFor(t, svc, name)
				sess, err := svc.CreateDomainSession(name, c.Problem, SessionConfig{})
				if err != nil {
					t.Fatalf("create: %v", err)
				}
				retrySolve(t, sess, nil)
				retryQueue(t, sess, c.Tightening)
				retrySolve(t, sess, c.Tightening)
				retryQueue(t, sess, c.Relaxing)
				res := retrySolve(t, sess, c.Relaxing)

				control := New(Options{DisableInstance: true})
				defer control.Close()
				ctrl := runScript(t, control, name)
				if _, err := ctrl.QueueChanges(c.Relaxing...); err != nil {
					t.Fatal(err)
				}
				ctrlRes, err := ctrl.Solve()
				if err != nil {
					t.Fatal(err)
				}

				if res.Status != ctrlRes.Status || res.Batched != ctrlRes.Batched {
					t.Fatalf("final pass %q/%d diverged from scratch control %q/%d (%d faults)",
						res.Status, res.Batched, ctrlRes.Status, ctrlRes.Batched, plan.Injected())
				}
				if probFP(d, sess.Problem()) != probFP(d, ctrl.Problem()) {
					t.Fatalf("problem diverged from scratch control (%d faults injected)", plan.Injected())
				}
				if err := d.Verify(sess.Problem(), res.Solution); err != nil {
					t.Fatalf("instance-arm solution invalid: %v", err)
				}
				if err := d.Verify(ctrl.Problem(), ctrlRes.Solution); err != nil {
					t.Fatalf("scratch-arm solution invalid: %v", err)
				}
			})
		}
	}
}
