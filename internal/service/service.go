// Package service turns the one-shot EC library calls into a long-lived
// serving layer: a Service manages concurrent EC sessions, each holding a
// live problem from ANY registered domain (CNF/set-cover, graph coloring,
// scheduling, netlist partitioning, or a custom adapter), the current
// solution, and the warm-start state the EC re-solves exploit. The whole
// session lifecycle — batching, caching, fast/preserving/replan passes —
// runs through the generic domain.Domain interface; adding a domain adds
// zero code here.
//
// Three mechanisms amortize work across the change stream, in the spirit
// of the paper's Figure-1 flow:
//
//   - batched change application: changes posted to a session queue up and
//     are coalesced into ONE fast-EC / preserving-EC pass per Solve call,
//     instead of one re-solve per change;
//   - an LRU solve cache keyed by a canonical hash of the subproblem
//     (task kind + domain + problem + previous solution + solver options),
//     with in-flight deduplication, so identical subproblems across
//     sessions are answered without touching the solver;
//   - a worker-pool executor that multiplexes all sessions' solves over a
//     bounded set of goroutines (each of which may itself run an
//     Options.Workers-parallel root search), plus a shared incumbent store
//     that warm-starts a solve of a problem another session has already
//     solved under different options.
//
// The package is exposed over HTTP/JSON by NewHandler (see cmd/ecserve)
// and re-exported from the root ilpec package.
package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ilpec/internal/cluster"
	"ilpec/internal/cnf"
	"ilpec/internal/core"
	"ilpec/internal/domain"
	"ilpec/internal/ilp"
	"ilpec/internal/obs"
	"ilpec/internal/store"

	// The built-in domains register themselves on import so every service
	// (and cmd/ecserve) can serve them by name.
	_ "ilpec/internal/coloring"
	_ "ilpec/internal/partition"
	_ "ilpec/internal/sched"
)

const (
	defaultCacheSize       = 256
	defaultMaxSessions     = 4096
	defaultSnapshotEvery   = 64
	defaultQuarantineAfter = 3
	defaultReprobeInterval = 5 * time.Second
	defaultMaxPending      = 4096
	defaultBacklogFactor   = 8
)

// Options configures a Service. The zero value is usable: fast-EC
// strategy, exact solver defaults, GOMAXPROCS executor workers, and a
// 256-entry solve cache.
type Options struct {
	// Solve is the default exact-solver configuration for every session
	// (sessions may override it at creation).
	Solve ilp.Options
	// Fast configures fast-EC re-solves. Solve inside it is ignored; the
	// session's solver options are used. Minimal applies to CNF sessions.
	Fast core.FastOptions
	// Preserve configures preserving-EC re-solves on CNF sessions
	// (Mode/Weight/Protected). Preserve.Solve is ignored; the session's
	// solver options are used. Non-CNF domains always maximize agreement.
	Preserve core.PreserveOptions
	// Strategy is the default re-solve strategy for change batches
	// (sessions may override it at creation). Default: fast EC.
	Strategy domain.Strategy
	// CacheSize bounds the LRU solve cache (entries; default 256).
	CacheSize int
	// Workers sizes the executor pool (default GOMAXPROCS). This bounds
	// concurrent branch-and-bound searches; Solve.Workers additionally
	// parallelizes within one search.
	Workers int
	// MaxSessions bounds live sessions (default 4096).
	MaxSessions int
	// Domains overrides the domain registry (default: the process-wide
	// registry with the built-in adapters).
	Domains *domain.Registry
	// Store persists sessions durably: a write-ahead journal of applied
	// changes plus periodic snapshots per session (see internal/store).
	// The service takes ownership (Close closes it), recovers every
	// persisted session at startup, and transparently rehydrates evicted
	// sessions on their next touch. nil disables persistence.
	Store store.Store
	// SnapshotEvery cuts a compaction snapshot after this many journal
	// records per session (default 64; needs Store).
	SnapshotEvery int
	// MaxLiveSessions bounds the sessions held in memory when a Store is
	// configured: beyond it the least-recently-used session is
	// snapshotted and evicted, to be rehydrated on next touch. 0 disables
	// eviction (MaxSessions still bounds the total).
	MaxLiveSessions int
	// SessionTTL snapshots-and-closes sessions idle longer than this:
	// with a Store they leave memory but stay durable and rehydratable;
	// without one they are closed outright. 0 disables the sweep.
	SessionTTL time.Duration
	// StoreRetry shapes the capped exponential backoff applied to
	// transient store faults on journal appends and snapshots (zero
	// fields take the defaults: 4 attempts, 5ms base, 250ms cap).
	StoreRetry RetryPolicy
	// QuarantineAfter degrades a session to memory-only service after
	// this many exhausted-retries store failures (default 3): requests
	// keep succeeding, the session reports Degraded, and the periodic
	// re-probe heals it back to durable when the store recovers.
	QuarantineAfter int
	// ReprobeInterval is the cadence at which quarantined sessions
	// re-probe the store (default 5s; < 0 disables the probe loop).
	ReprobeInterval time.Duration
	// MaxPending bounds each session's queued-but-unsolved changes
	// (default 4096; < 0 unbounded). Beyond it QueueChanges fails with
	// ErrQueueFull — HTTP 429 — until a solve drains the queue.
	MaxPending int
	// MaxBacklog bounds solve jobs waiting for an executor slot beyond
	// the Workers already running (default 8×Workers; < 0 unbounded).
	// Beyond it solves fail fast with ErrOverloaded — HTTP 503 +
	// Retry-After — instead of queueing unboundedly.
	MaxBacklog int
	// RequestTimeout bounds each HTTP solve request (0 = none): the
	// deadline propagates through the executor queue into the kernel's
	// abort check, and an expired request returns 503 + Retry-After.
	RequestTimeout time.Duration
	// DisableInstance turns off the persistent-instance solve path: every
	// session then encodes and solves from scratch on each pass, as
	// before the incremental delta API existed. Answers are identical
	// either way (the differential tests pin this); the switch exists for
	// A/B comparison and as an escape hatch.
	DisableInstance bool
	// Cluster, when set, runs this service as one node of a multi-node
	// fleet sharing Store: session lookups and journal appends are guarded
	// by per-session leases (see cluster.Leases and this package's
	// cluster.go), auto-generated session ids are salted with the node id,
	// and solve-cache misses peek the fleet-wide cache before running the
	// solver. Requires Store — and for a multi-PROCESS fleet the store
	// must be cross-process safe (store.NewSharedFile). The service does
	// not start or stop the node; cmd/ecserve owns its lifecycle.
	Cluster *cluster.Node
	// Obs receives the service's fine-grained instruments: per-route
	// request latency histograms, per-phase solve timings, and durable-
	// store operation latencies (see the README's Observability section).
	// nil gets a private registry, so /metrics always serves; share one
	// registry with cluster.Config.Obs to expose both on one endpoint.
	Obs *obs.Registry
	// RequestLog, when set, receives one structured line per HTTP request
	// (request id, route, status, duration). nil logs nothing.
	RequestLog *slog.Logger
	// SlowTraceThreshold is the minimum request duration retained in the
	// /v1/debug/traces ring (default 250ms).
	SlowTraceThreshold time.Duration
}

// SessionConfig carries per-session overrides at creation time.
type SessionConfig struct {
	// Strategy overrides the service default when non-nil.
	Strategy *domain.Strategy
	// Solve overrides the service solver options when non-nil.
	Solve *ilp.Options
}

// Metrics are the service-wide counters, updated atomically.
type Metrics struct {
	SessionsCreated atomic.Int64
	SessionsClosed  atomic.Int64
	// ChangesQueued counts individual changes posted to sessions.
	ChangesQueued atomic.Int64
	// Batches counts change batches resolved (each coalesces ≥1 changes
	// into a single pass; Batches < ChangesQueued measures coalescing).
	Batches atomic.Int64
	// DuplicateBatches counts change batches acknowledged without being
	// applied because their idempotency key matched an already-accepted
	// batch — a client replay after a lost response.
	DuplicateBatches atomic.Int64
	// Solves counts Session.Solve calls that produced a solution
	// (initial solves, batch re-solves, and relax fast-paths).
	Solves atomic.Int64
	// SolverRuns counts actual branch-and-bound executions — cache
	// misses. Solves − SolverRuns − RelaxFastPaths ≈ cache hits.
	SolverRuns atomic.Int64
	// CacheHits / CacheMisses count solve-cache lookups (a hit includes
	// joining another session's in-flight identical solve).
	CacheHits   atomic.Int64
	CacheMisses atomic.Int64
	// RelaxFastPaths counts batches absorbed without any solver work
	// (relaxing-only change sets, §6).
	RelaxFastPaths atomic.Int64
	// IncumbentHits counts solves warm-started from the shared incumbent
	// store (same problem solved before under different options).
	IncumbentHits atomic.Int64
	// TruncatedSolves counts solver runs stopped by a node/time limit or
	// a cancelled request. Their results are NOT cache-eligible: only
	// proven (optimal/infeasible) outcomes enter the solve cache, so a
	// truncated solve is re-attempted on the next request.
	TruncatedSolves atomic.Int64
	// PresolveFixed / PresolveRows / CutsAdded / CutsReused /
	// CutTightenings accumulate the kernel's presolve and cut-pool
	// counters across all solver runs (ilp.Options.Presolve / Cuts).
	PresolveFixed  atomic.Int64
	PresolveRows   atomic.Int64
	CutsAdded      atomic.Int64
	CutsReused     atomic.Int64
	CutTightenings atomic.Int64
	// InstanceReuses counts solves served from a session's live
	// persistent instance (the drained batch synced on as row deltas);
	// InstanceRebuilds counts instances (re)built from scratch — first
	// solves plus batches no delta could express. InstanceRowsDelta and
	// ReseparatedRows accumulate the kernel's per-solve row-edit and
	// re-separation counters across instance solves.
	InstanceReuses    atomic.Int64
	InstanceRebuilds  atomic.Int64
	InstanceRowsDelta atomic.Int64
	ReseparatedRows   atomic.Int64
	// LegacyCreates counts sessions created through the deprecated
	// CNF-only dimacs/clauses shape (the response carries a Deprecation
	// header; see the README's migration note).
	LegacyCreates atomic.Int64
	// JournalAppends / SnapshotsWritten count durable-store writes;
	// Recoveries counts sessions found in the store at startup;
	// Rehydrations counts evicted/recovered sessions rebuilt from the
	// store on touch; Evictions counts LRU evictions under
	// MaxLiveSessions; TTLExpirations counts idle sessions the TTL sweep
	// snapshotted-and-closed.
	JournalAppends   atomic.Int64
	SnapshotsWritten atomic.Int64
	Recoveries       atomic.Int64
	Rehydrations     atomic.Int64
	Evictions        atomic.Int64
	TTLExpirations   atomic.Int64
	// JournalRetries counts backed-off re-attempts of transient store
	// faults; SnapshotFailures counts snapshot/compaction writes that
	// ultimately failed (they feed the quarantine heuristic instead of
	// being discarded). Quarantines counts sessions entering memory-only
	// degraded service; QuarantineProbes/QuarantineHeals count store
	// re-probes and successful returns to durable service.
	JournalRetries   atomic.Int64
	SnapshotFailures atomic.Int64
	Quarantines      atomic.Int64
	QuarantineProbes atomic.Int64
	QuarantineHeals  atomic.Int64
	// QueueRejections counts change batches refused at MaxPending (429);
	// BacklogRejections counts solves shed at MaxBacklog (503).
	QueueRejections   atomic.Int64
	BacklogRejections atomic.Int64
	// ClusterLeaseAcquired / ClusterLeaseRenewals count session-ownership
	// lease operations; ClusterNotOwner counts lookups refused because
	// another node holds the lease; ClusterFenced counts sessions fenced
	// after a definitive ownership loss (the split-brain guard firing).
	ClusterLeaseAcquired atomic.Int64
	ClusterLeaseRenewals atomic.Int64
	ClusterNotOwner      atomic.Int64
	ClusterFenced        atomic.Int64
	// ClusterPeekHits / ClusterPeekMisses count fleet-cache lookups on
	// local-cache misses; ClusterPeekStores counts proven results
	// published for peers.
	ClusterPeekHits   atomic.Int64
	ClusterPeekMisses atomic.Int64
	ClusterPeekStores atomic.Int64
}

// MetricsSnapshot is a plain-value copy of Metrics for reporting.
type MetricsSnapshot struct {
	SessionsLive     int   `json:"sessions_live"`
	SessionsCreated  int64 `json:"sessions_created"`
	SessionsClosed   int64 `json:"sessions_closed"`
	ChangesQueued    int64 `json:"changes_queued"`
	Batches          int64 `json:"batches"`
	DuplicateBatches int64 `json:"duplicate_batches"`
	Solves           int64 `json:"solves"`
	SolverRuns       int64 `json:"solver_runs"`
	CacheHits        int64 `json:"cache_hits"`
	CacheMisses      int64 `json:"cache_misses"`
	CacheEntries     int   `json:"cache_entries"`
	RelaxFastPaths   int64 `json:"relax_fast_paths"`
	IncumbentHits    int64 `json:"incumbent_hits"`
	TruncatedSolves  int64 `json:"truncated_solves"`
	PresolveFixed    int64 `json:"presolve_fixed"`
	PresolveRows     int64 `json:"presolve_rows"`
	CutsAdded        int64 `json:"cuts_added"`
	CutsReused       int64 `json:"cuts_reused"`
	CutTightenings   int64 `json:"cut_tightenings"`
	// InstanceReuses / InstanceRebuilds / InstanceRowsDelta /
	// ReseparatedRows report the persistent-instance path (see Metrics).
	InstanceReuses    int64 `json:"instance_reuses"`
	InstanceRebuilds  int64 `json:"instance_rebuilds"`
	InstanceRowsDelta int64 `json:"instance_rows_delta"`
	ReseparatedRows   int64 `json:"reseparated_rows"`
	// LegacyCreates counts deprecated dimacs/clauses session creates.
	LegacyCreates int64 `json:"legacy_creates"`
	// SessionsPersisted counts sessions that live only in the store
	// (evicted, expired, or not yet rehydrated after recovery).
	SessionsPersisted int   `json:"sessions_persisted"`
	JournalAppends    int64 `json:"journal_appends"`
	SnapshotsWritten  int64 `json:"snapshots_written"`
	Recoveries        int64 `json:"recoveries"`
	Rehydrations      int64 `json:"rehydrations"`
	Evictions         int64 `json:"evictions"`
	TTLExpirations    int64 `json:"ttl_expirations"`
	// SessionsDegraded is the live sessions currently quarantined
	// (memory-only); the cumulative counters below track the resilience
	// machinery.
	SessionsDegraded  int   `json:"sessions_degraded"`
	JournalRetries    int64 `json:"journal_retries"`
	SnapshotFailures  int64 `json:"snapshot_failures"`
	Quarantines       int64 `json:"quarantines"`
	QuarantineProbes  int64 `json:"quarantine_probes"`
	QuarantineHeals   int64 `json:"quarantine_heals"`
	QueueRejections   int64 `json:"queue_rejections"`
	BacklogRejections int64 `json:"backlog_rejections"`
	// Cluster-mode counters (all zero when Options.Cluster is unset); see
	// Metrics for their meaning.
	ClusterLeaseAcquired int64 `json:"cluster_lease_acquired"`
	ClusterLeaseRenewals int64 `json:"cluster_lease_renewals"`
	ClusterNotOwner      int64 `json:"cluster_not_owner"`
	ClusterFenced        int64 `json:"cluster_fenced"`
	ClusterPeekHits      int64 `json:"cluster_peek_hits"`
	ClusterPeekMisses    int64 `json:"cluster_peek_misses"`
	ClusterPeekStores    int64 `json:"cluster_peek_stores"`
}

// Service manages long-lived EC sessions sharing a solve cache, an
// incumbent store, and a worker-pool executor.
type Service struct {
	opts  Options
	cache *solveCache
	exec  *pool
	// cnf is the CNF adapter configured with the service's EC policies;
	// it shadows the registry entry of the same name so Options.Fast and
	// Options.Preserve keep their meaning.
	cnf domain.Domain

	mu       sync.Mutex
	closed   bool                // guarded by mu
	sessions map[string]*Session // guarded by mu
	// persisted holds the ids that live only in the store (recovered at
	// startup, evicted, or TTL-expired); a touch rehydrates them back
	// into sessions. The two maps are disjoint. Guarded by mu.
	persisted map[string]bool
	// evicting holds ids mid-detachment: removed from sessions but whose
	// final snapshot is still being cut. Lookups wait on the channel, so
	// a rehydration can never race a detaching instance's last journal
	// appends (which would fork the session). Guarded by mu.
	evicting map[string]chan struct{}
	// creating reserves explicit ids between the duplicate check and the
	// session's registration, so two concurrent creates of one id cannot
	// both succeed. Guarded by mu, as is nextID.
	creating map[string]bool
	nextID   int64 // guarded by mu

	// sweepStop/sweepDone bracket the TTL sweeper goroutine;
	// probeStop/probeDone bracket the quarantine re-probe loop.
	sweepStop chan struct{}
	sweepDone chan struct{}
	probeStop chan struct{}
	probeDone chan struct{}

	imu        sync.Mutex
	incumbents map[string]incumbent // guarded by imu

	// draining flips /readyz to 503 ahead of graceful shutdown (see
	// StartDraining in cluster.go).
	draining atomic.Bool

	metrics Metrics
	// sobs carries the fine-grained instruments (histograms, traces,
	// request logging); see obs.go. Never nil after New.
	sobs *serviceObs
}

// incumbent pairs a stored solution with the domain that can clone it.
type incumbent struct {
	d   domain.Domain
	sol any
}

// New creates a Service. Close it when done to stop the executor workers
// (and, when a Store is configured, to flush final snapshots and close
// the store). With a Store, every session persisted by a previous run is
// recovered: immediately listed, and rehydrated on first touch.
func New(opts Options) *Service {
	if opts.Workers < 1 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.CacheSize <= 0 {
		opts.CacheSize = defaultCacheSize
	}
	if opts.MaxSessions <= 0 {
		opts.MaxSessions = defaultMaxSessions
	}
	if opts.SnapshotEvery <= 0 {
		opts.SnapshotEvery = defaultSnapshotEvery
	}
	opts.StoreRetry = opts.StoreRetry.withDefaults()
	if opts.QuarantineAfter <= 0 {
		opts.QuarantineAfter = defaultQuarantineAfter
	}
	if opts.ReprobeInterval == 0 {
		opts.ReprobeInterval = defaultReprobeInterval
	}
	if opts.MaxPending == 0 {
		opts.MaxPending = defaultMaxPending
	}
	if opts.MaxBacklog == 0 {
		opts.MaxBacklog = defaultBacklogFactor * opts.Workers
	}
	if opts.Obs == nil {
		// A private registry rather than a nil sink: /metrics then serves
		// real data on every node even when the operator wired nothing up.
		opts.Obs = obs.NewRegistry()
	}
	sobs := newServiceObs(opts)
	if opts.Store != nil {
		opts.Store = store.NewInstrumented(opts.Store, sobs.storeRecorder(store.BackendName(opts.Store)))
	}
	s := &Service{
		opts:  opts,
		sobs:  sobs,
		cache: newSolveCache(opts.CacheSize),
		exec:  newPool(opts.Workers, opts.MaxBacklog),
		cnf: core.CNFWith(core.CNFOptions{
			Fast:     core.FastOptions{Minimal: opts.Fast.Minimal, MaxEscalations: opts.Fast.MaxEscalations},
			Preserve: opts.Preserve,
		}),
		sessions:   make(map[string]*Session),
		persisted:  make(map[string]bool),
		evicting:   make(map[string]chan struct{}),
		creating:   make(map[string]bool),
		incumbents: make(map[string]incumbent),
	}
	if s.hasStore() {
		s.recoverSessions()
		if opts.ReprobeInterval > 0 {
			s.probeStop = make(chan struct{})
			s.probeDone = make(chan struct{})
			go s.probeLoop()
		}
	}
	if opts.SessionTTL > 0 {
		s.sweepStop = make(chan struct{})
		s.sweepDone = make(chan struct{})
		go s.sweepLoop()
	}
	return s
}

// Domains lists the domain names this service can serve, sorted.
func (s *Service) Domains() []string {
	if s.opts.Domains != nil {
		return s.opts.Domains.Names()
	}
	return domain.Names()
}

// DomainByName resolves a domain adapter for this service. The CNF
// adapter carries the service's configured EC policies.
func (s *Service) DomainByName(name string) (domain.Domain, bool) {
	if name == s.cnf.Name() {
		return s.cnf, true
	}
	if s.opts.Domains != nil {
		return s.opts.Domains.Get(name)
	}
	return domain.Get(name)
}

// CreateSession registers a new CNF session for formula f (deep-copied;
// the caller keeps ownership of f). cfg carries optional per-session
// overrides. It is shorthand for CreateDomainSession("cnf", f, cfg).
func (s *Service) CreateSession(f *cnf.Formula, cfg SessionConfig) (*Session, error) {
	if f == nil {
		return nil, fmt.Errorf("service: nil formula")
	}
	return s.CreateDomainSession("cnf", f, cfg)
}

// CreateDomainSession registers a new session for a problem of the named
// domain (deep-copied; the caller keeps ownership). cfg carries optional
// per-session overrides.
func (s *Service) CreateDomainSession(domainName string, problem any, cfg SessionConfig) (*Session, error) {
	return s.createSession("", domainName, problem, cfg)
}

// CreateDomainSessionWithID is CreateDomainSession with a caller-chosen
// session id — cmd/ecrouter mints ids up front so a create can be
// consistent-hashed onto its ring owner before the session exists. The
// id must satisfy store.ValidateID, must not use the reserved _cluster_
// prefix, and must be free (ErrSessionExists otherwise; in cluster mode
// the check runs under the freshly acquired session lease, so racing
// creates of one id across nodes serialize through the store's CAS).
func (s *Service) CreateDomainSessionWithID(id, domainName string, problem any, cfg SessionConfig) (*Session, error) {
	if id == "" {
		return nil, fmt.Errorf("service: empty session id")
	}
	if err := store.ValidateID(id); err != nil {
		return nil, fmt.Errorf("service: session id: %w", err)
	}
	if cluster.IsMetaID(id) {
		return nil, fmt.Errorf("service: session id %q uses a reserved prefix", id)
	}
	return s.createSession(id, domainName, problem, cfg)
}

func (s *Service) createSession(id, domainName string, problem any, cfg SessionConfig) (*Session, error) {
	d, ok := s.DomainByName(domainName)
	if !ok {
		return nil, fmt.Errorf("service: unknown domain %q (have %v)", domainName, s.Domains())
	}
	if problem == nil {
		return nil, fmt.Errorf("service: nil problem")
	}
	if err := d.Validate(problem); err != nil {
		return nil, fmt.Errorf("service: invalid problem: %w", err)
	}
	strategy := s.opts.Strategy
	if cfg.Strategy != nil {
		strategy = *cfg.Strategy
	}
	solve := s.opts.Solve
	if cfg.Solve != nil {
		solve = *cfg.Solve
	}
	explicit := id != ""
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("service: closed")
	}
	if len(s.sessions)+len(s.persisted)+len(s.evicting) >= s.opts.MaxSessions {
		s.mu.Unlock()
		return nil, fmt.Errorf("service: session limit (%d) reached", s.opts.MaxSessions)
	}
	if explicit {
		_, live := s.sessions[id]
		_, ev := s.evicting[id]
		if live || ev || s.persisted[id] || s.creating[id] {
			s.mu.Unlock()
			return nil, fmt.Errorf("%w: %q", ErrSessionExists, id)
		}
		s.creating[id] = true
		defer func() {
			s.mu.Lock()
			delete(s.creating, id)
			s.mu.Unlock()
		}()
	} else {
		s.nextID++
		if s.clustered() {
			// Node-salted auto ids: every node starts counting at 1, so bare
			// "s<n>" ids would collide in the shared store.
			id = fmt.Sprintf("%s-s%d", s.opts.Cluster.ID(), s.nextID)
		} else {
			id = fmt.Sprintf("s%d", s.nextID)
		}
	}
	s.mu.Unlock()

	var lease cluster.Lease
	if s.clustered() {
		node := s.opts.Cluster
		// AcquireForCreate, not Acquire: a create deliberately reuses an id,
		// so a deletion tombstone on it is reclaimed rather than refused.
		ls, reclaimed, err := node.Leases().AcquireForCreate(id, node.ID(), node.LeaseTTL(), node.Now())
		switch {
		case err == nil:
			lease = ls
			s.metrics.ClusterLeaseAcquired.Add(1)
			if reclaimed && s.hasStore() {
				// The id carried a tombstone: scrub any orphaned session data
				// a failed delete left behind, under the fresh lease so no
				// other node can race the cleanup, and before the existence
				// check below so the orphan cannot masquerade as a live
				// duplicate.
				if derr := s.opts.Store.Delete(id); derr != nil && !errors.Is(derr, store.ErrNotFound) {
					node.Leases().Release(lease) //nolint:errcheck // best effort
					return nil, derr
				}
			}
		case errors.Is(err, cluster.ErrLeaseHeld):
			s.metrics.ClusterNotOwner.Add(1)
			return nil, notOwnerErr(id, leaseHolderOf(err))
		case store.IsTransient(err):
			// Store outage: proceed lease-less — the session is born
			// quarantined below and the first healthy touch acquires the
			// lease (nobody else can acquire it during the outage either).
		default:
			return nil, err
		}
		if explicit && lease.Holder != "" {
			// Under our lease, check for a session a peer already created.
			if _, _, err := s.opts.Store.Load(id); err == nil {
				node.Leases().Release(lease) //nolint:errcheck // best effort
				return nil, fmt.Errorf("%w: %q", ErrSessionExists, id)
			} else if !errors.Is(err, store.ErrNotFound) && !store.IsTransient(err) {
				node.Leases().Release(lease) //nolint:errcheck // best effort
				return nil, err
			}
		}
	} else if explicit && s.hasStore() {
		if _, _, err := s.opts.Store.Load(id); err == nil {
			return nil, fmt.Errorf("%w: %q", ErrSessionExists, id)
		}
	}

	sess := &Session{
		id:       id,
		svc:      s,
		dom:      d,
		problem:  d.CloneProblem(problem),
		strategy: strategy,
		solve:    solve,
		// The session's cut pool lives alongside its incumbent solution:
		// re-solves after a change batch reuse the cuts of unchanged rows
		// (the pool keys by row content, so the domain's change
		// fingerprint implicitly invalidates exactly the touched rows).
		cuts: ilp.NewCutPool(),
	}
	sess.lease = lease
	s.touch(sess)
	// Durable birth: the initial snapshot must land before the session is
	// acknowledged, so a crash right after creation still recovers it.
	// The id is already reserved, so the store write (fsync + renames on
	// the file backend) happens outside the service lock. A TRANSIENT
	// birth failure does not refuse the session: it is born quarantined
	// (memory-only, visibly degraded) and the re-probe writes the missing
	// snapshot when the store recovers — a dead disk degrades the service
	// instead of taking it down.
	if s.hasStore() {
		if err := sess.persistSnapshotLocked(); err != nil {
			if !store.IsTransient(err) {
				return nil, fmt.Errorf("service: persist session: %w", err)
			}
			// persistSnapshotLocked may already have quarantined the session
			// (QuarantineAfter reached); otherwise one unwritable birth
			// snapshot is evidence enough — quarantine immediately.
			if !sess.degraded.Load() {
				sess.persistFails = s.opts.QuarantineAfter
				sess.degraded.Store(true)
				s.metrics.Quarantines.Add(1)
			}
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		if s.hasStore() {
			s.opts.Store.Delete(id) //nolint:errcheck // undo the orphaned birth snapshot
		}
		sess.mu.Lock()
		sess.releaseLeaseLocked()
		sess.mu.Unlock()
		return nil, fmt.Errorf("service: closed")
	}
	s.sessions[id] = sess
	s.metrics.SessionsCreated.Add(1)
	s.mu.Unlock()
	s.enforceLiveLimit()
	return sess, nil
}

// Session looks a session up by id. A live session is returned directly;
// a persisted-but-evicted (or freshly recovered) session is transparently
// rehydrated from the store — snapshot loaded, journal tail replayed, the
// persisted solution installed as warm-start material — and re-registered
// as live. In cluster mode ownership is additionally enforced; use
// LookupSession when the reason for a miss matters.
func (s *Service) Session(id string) (*Session, bool) {
	sess, err := s.LookupSession(id)
	return sess, err == nil
}

// ErrUnknownSession reports a lookup of an id the service has never seen
// (or whose session was deleted).
var ErrUnknownSession = errors.New("service: unknown session")

// LookupSession is Session with a typed error: ErrUnknownSession for a
// genuinely missing session, ErrNotOwner when another cluster node holds
// the session's lease (retryable — the router re-routes), or a transient
// store error. In cluster mode the lookup proves ownership: the cached
// lease is validated (and renewed near expiry), and a session found only
// in the shared store is rehydrated strictly AFTER its lease is won.
func (s *Service) LookupSession(id string) (*Session, error) {
	if cluster.IsMetaID(id) {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	s.mu.Lock()
	if sess, ok := s.sessions[id]; ok {
		if !sess.fenced.Load() {
			s.touch(sess)
			s.mu.Unlock()
			if s.clustered() {
				sess.mu.Lock()
				err := sess.ensureLeaseLocked()
				sess.mu.Unlock()
				if err != nil {
					if errors.Is(err, ErrNotOwner) {
						s.metrics.ClusterNotOwner.Add(1)
						s.dropFenced(id, sess)
					}
					return nil, err
				}
			}
			return sess, nil
		}
		// Fenced: the durable state belongs to the new owner. Drop our
		// stale copy and fall through to the ownership path below.
		delete(s.sessions, id)
		if s.hasStore() {
			s.persisted[id] = true
		}
	}
	if ch, ok := s.evicting[id]; ok {
		// Mid-eviction: wait for the final snapshot to land, then retry —
		// rehydrating now would miss the detaching instance's last
		// journal appends.
		s.mu.Unlock()
		<-ch
		return s.LookupSession(id)
	}
	known := s.persisted[id]
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	if !known && !(s.clustered() && s.hasStore()) {
		// Single-node: the startup recovery scan is authoritative. In
		// cluster mode a peer may have created the session after our scan,
		// so fall through and let the shared store decide.
		return nil, fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}

	if s.clustered() && !known && s.hasStore() {
		// The id is unknown locally, so prove it exists in the shared store
		// BEFORE touching the lease layer: acquiring first would durably
		// mint a _cluster_lease_ meta session per probed id, an unbounded
		// write amplification for garbage lookups. Transient store trouble
		// falls through — the acquire surfaces it with transience intact.
		if _, _, err := s.opts.Store.Load(id); errors.Is(err, store.ErrNotFound) {
			return nil, fmt.Errorf("%w: %q", ErrUnknownSession, id)
		}
	}

	var lease cluster.Lease
	if s.clustered() {
		ls, err := s.acquireForRehydrate(id)
		if err != nil {
			if errors.Is(err, cluster.ErrSessionDeleted) {
				// Deleted cluster-wide. Unregister locally; leave the store
				// and tombstone alone (an explicit re-create owns them now).
				s.mu.Lock()
				delete(s.persisted, id)
				s.mu.Unlock()
				return nil, fmt.Errorf("%w: %q", ErrUnknownSession, id)
			}
			return nil, err
		}
		lease = ls
	}
	releaseLease := func() {
		if s.clustered() && lease.Holder != "" {
			s.opts.Cluster.Leases().Release(lease) //nolint:errcheck // best effort
		}
	}
	sess, err := s.rehydrate(id)
	if err != nil {
		if store.IsTransient(err) {
			releaseLease()
			return nil, err
		}
		if s.clustered() && lease.Holder != "" && errors.Is(err, store.ErrNotFound) {
			// No durable state after all (the existence probe raced a
			// delete): drop the freshly minted lease meta instead of
			// leaking it forever.
			s.opts.Cluster.Leases().Drop(id) //nolint:errcheck // best effort
		} else {
			releaseLease()
		}
		return nil, fmt.Errorf("%w: %q (%v)", ErrUnknownSession, id, err)
	}
	sess.lease = lease // pre-publication; no lock needed
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		releaseLease()
		return nil, fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	if live, ok := s.sessions[id]; ok {
		// A concurrent touch won the rehydration race; both rebuilt the
		// same durable state (and in cluster mode both hold OUR node's
		// lease — Acquire is idempotent for the holder), so ours is
		// simply dropped.
		s.touch(live)
		s.mu.Unlock()
		return live, nil
	}
	if known && !s.persisted[id] {
		s.mu.Unlock() // deleted while we were loading
		releaseLease()
		return nil, fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	delete(s.persisted, id)
	s.sessions[id] = sess
	s.touch(sess)
	s.metrics.Rehydrations.Add(1)
	s.mu.Unlock()
	s.enforceLiveLimit()
	return sess, nil
}

// dropFenced removes a fenced session from the live map (its id stays
// reachable through the persisted map so a later lease win rehydrates
// the successor's state).
func (s *Service) dropFenced(id string, sess *Session) {
	s.mu.Lock()
	if cur, ok := s.sessions[id]; ok && cur == sess {
		delete(s.sessions, id)
		if s.hasStore() {
			s.persisted[id] = true
		}
	}
	s.mu.Unlock()
}

// Sessions returns the ids of all sessions — live and persisted — sorted.
func (s *Service) Sessions() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.sessions)+len(s.persisted)+len(s.evicting))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	for id := range s.persisted {
		ids = append(ids, id)
	}
	for id := range s.evicting {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

const (
	defaultSessionPage = 1000
	maxSessionPage     = 10000
)

// SessionPage returns one page of session ids in sorted order, starting
// strictly after the `after` cursor ("" starts at the beginning). limit
// ≤ 0 takes the default page size (1000); it is capped at 10000. When
// the page was truncated, next is the cursor of the following page (its
// last returned id); next == "" means this was the final page.
func (s *Service) SessionPage(after string, limit int) (ids []string, next string) {
	if limit <= 0 {
		limit = defaultSessionPage
	}
	if limit > maxSessionPage {
		limit = maxSessionPage
	}
	all := s.Sessions()
	if after != "" {
		i := sort.SearchStrings(all, after)
		if i < len(all) && all[i] == after {
			i++
		}
		all = all[i:]
	}
	if len(all) > limit {
		all = all[:limit]
		next = all[limit-1]
	}
	return all, next
}

// LiveSessions returns the ids currently held in memory, sorted.
func (s *Service) LiveSessions() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// CloseSession removes a session from memory AND from the store; it
// reports whether the id existed.
func (s *Service) CloseSession(id string) bool {
	s.mu.Lock()
	if ch, ok := s.evicting[id]; ok {
		s.mu.Unlock()
		<-ch // let the in-flight eviction settle, then close for real
		return s.CloseSession(id)
	}
	sess, live := s.sessions[id]
	stored := s.persisted[id]
	delete(s.sessions, id)
	delete(s.persisted, id)
	s.mu.Unlock()
	if !live && !stored {
		return false
	}
	if live {
		sess.mu.Lock()
		sess.closed = true
		sess.mu.Unlock()
	}
	if s.clustered() {
		// Tombstone the lease BEFORE deleting the data: once the data is
		// gone, a stale former owner re-acquiring the lapsed lease would
		// otherwise resurrect the session from its in-memory copy (its next
		// snapshot recreates the store state). With the tombstone in place
		// that acquire fails ErrSessionDeleted instead. Best effort — if
		// another node holds a live lease the delete proceeds as before and
		// CAS fencing bounds the damage.
		node := s.opts.Cluster
		node.Leases().MarkDeleted(id, node.ID(), node.Now()) //nolint:errcheck // best effort
	}
	if s.hasStore() {
		s.opts.Store.Delete(id) //nolint:errcheck // best effort; List re-reads the disk
	}
	s.metrics.SessionsClosed.Add(1)
	return true
}

// Metrics returns a snapshot of the service counters.
func (s *Service) Metrics() MetricsSnapshot {
	s.mu.Lock()
	live := len(s.sessions)
	stored := len(s.persisted)
	s.mu.Unlock()
	degraded := len(s.DegradedSessions())
	m := &s.metrics
	return MetricsSnapshot{
		SessionsLive:     live,
		SessionsCreated:  m.SessionsCreated.Load(),
		SessionsClosed:   m.SessionsClosed.Load(),
		ChangesQueued:    m.ChangesQueued.Load(),
		Batches:          m.Batches.Load(),
		DuplicateBatches: m.DuplicateBatches.Load(),
		Solves:           m.Solves.Load(),
		SolverRuns:       m.SolverRuns.Load(),
		CacheHits:        m.CacheHits.Load(),
		CacheMisses:      m.CacheMisses.Load(),
		CacheEntries:     s.cache.len(),
		RelaxFastPaths:   m.RelaxFastPaths.Load(),
		IncumbentHits:    m.IncumbentHits.Load(),
		TruncatedSolves:  m.TruncatedSolves.Load(),
		PresolveFixed:    m.PresolveFixed.Load(),
		PresolveRows:     m.PresolveRows.Load(),
		CutsAdded:        m.CutsAdded.Load(),
		CutsReused:       m.CutsReused.Load(),
		CutTightenings:   m.CutTightenings.Load(),

		InstanceReuses:    m.InstanceReuses.Load(),
		InstanceRebuilds:  m.InstanceRebuilds.Load(),
		InstanceRowsDelta: m.InstanceRowsDelta.Load(),
		ReseparatedRows:   m.ReseparatedRows.Load(),
		LegacyCreates:     m.LegacyCreates.Load(),

		SessionsPersisted: stored,
		JournalAppends:    m.JournalAppends.Load(),
		SnapshotsWritten:  m.SnapshotsWritten.Load(),
		Recoveries:        m.Recoveries.Load(),
		Rehydrations:      m.Rehydrations.Load(),
		Evictions:         m.Evictions.Load(),
		TTLExpirations:    m.TTLExpirations.Load(),

		SessionsDegraded:  degraded,
		JournalRetries:    m.JournalRetries.Load(),
		SnapshotFailures:  m.SnapshotFailures.Load(),
		Quarantines:       m.Quarantines.Load(),
		QuarantineProbes:  m.QuarantineProbes.Load(),
		QuarantineHeals:   m.QuarantineHeals.Load(),
		QueueRejections:   m.QueueRejections.Load(),
		BacklogRejections: m.BacklogRejections.Load(),

		ClusterLeaseAcquired: m.ClusterLeaseAcquired.Load(),
		ClusterLeaseRenewals: m.ClusterLeaseRenewals.Load(),
		ClusterNotOwner:      m.ClusterNotOwner.Load(),
		ClusterFenced:        m.ClusterFenced.Load(),
		ClusterPeekHits:      m.ClusterPeekHits.Load(),
		ClusterPeekMisses:    m.ClusterPeekMisses.Load(),
		ClusterPeekStores:    m.ClusterPeekStores.Load(),
	}
}

// Close drops all sessions and stops the executor. In-flight solves
// finish; subsequent Solve calls fail. With a Store, every live session
// is flushed with a final compaction snapshot (all journal fsyncs have
// already happened at append time) and the store is closed — the graceful
// drain contract cmd/ecserve relies on.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	live := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		live = append(live, sess)
	}
	s.sessions = make(map[string]*Session)
	s.mu.Unlock()
	if s.sweepStop != nil {
		close(s.sweepStop)
		<-s.sweepDone
	}
	if s.probeStop != nil {
		close(s.probeStop)
		<-s.probeDone
	}
	for _, sess := range live {
		s.retire(sess)
	}
	if s.hasStore() {
		s.opts.Store.Close() //nolint:errcheck // shutdown path
	}
	s.metrics.SessionsClosed.Add(int64(len(live)))
	s.exec.close()
}

// cachedSolve routes one solve through the cache and, on a miss, the
// executor pool. clone deep-copies cached values before they escape.
// compute reports cache eligibility alongside its value: only proven
// (optimal/infeasible) results may be stored (see solveCache.do). ctx
// aborts both the wait for a worker slot and — through the solver
// options — the search itself.
func (s *Service) cachedSolve(ctx context.Context, key string, clone func(any) any, compute func() (any, bool, error)) (any, bool, error) {
	// Phase accounting: the owner's closure runs synchronously in this
	// goroutine (cache.do) and pool.run blocks until the worker finishes,
	// so the closure-local `missed` and the phase records are race-free.
	entry := time.Now()
	missed := false
	val, hit, err := s.cache.do(ctx, key, clone, func() (any, bool, error) {
		missed = true
		s.sobs.phase(ctx, "cache_lookup", time.Since(entry))
		var v any
		var ok bool
		var cerr error
		enq := time.Now()
		if perr := s.exec.run(ctx, func() {
			s.sobs.phase(ctx, "queue_wait", time.Since(enq))
			v, ok, cerr = compute()
		}); perr != nil {
			if errors.Is(perr, ErrOverloaded) {
				s.metrics.BacklogRejections.Add(1)
			}
			return nil, false, perr
		}
		return v, ok, cerr
	})
	if !missed {
		// A hit or an in-flight join: the whole wait was cache time.
		s.sobs.phase(ctx, "cache_lookup", time.Since(entry))
	}
	if hit {
		s.metrics.CacheHits.Add(1)
	} else {
		s.metrics.CacheMisses.Add(1)
		if err == nil {
			s.metrics.SolverRuns.Add(1)
		}
	}
	return val, hit, err
}

// noteSolverResult folds one kernel result into the service counters
// and lays its phase timings onto the request trace. A Feasible/Unknown
// status means a node/time limit or a cancelled request truncated the
// search.
func (s *Service) noteSolverResult(ctx context.Context, res ilp.Result) {
	s.sobs.solverPhases(ctx, res.PresolveTime, res.CutSepTime, res.SearchTime)
	if res.Status == ilp.Feasible || res.Status == ilp.Unknown {
		s.metrics.TruncatedSolves.Add(1)
	}
	s.metrics.PresolveFixed.Add(res.PresolveFixed)
	s.metrics.PresolveRows.Add(res.PresolveRows)
	s.metrics.CutsAdded.Add(res.CutsAdded)
	s.metrics.CutsReused.Add(res.CutsReused)
	s.metrics.CutTightenings.Add(res.CutTightenings)
	s.metrics.InstanceRowsDelta.Add(res.RowsDelta)
	s.metrics.ReseparatedRows.Add(res.ReseparatedRows)
}

// incumbent returns the stored solution for a problem key, if any.
func (s *Service) incumbent(key string) any {
	s.imu.Lock()
	defer s.imu.Unlock()
	if inc, ok := s.incumbents[key]; ok {
		return inc.d.CloneSolution(inc.sol)
	}
	return nil
}

// storeIncumbent records a solution for a problem key, shared across
// sessions as warm-start material. The store is bounded by the cache size.
func (s *Service) storeIncumbent(key string, d domain.Domain, sol any) {
	s.imu.Lock()
	defer s.imu.Unlock()
	if len(s.incumbents) >= s.opts.CacheSize {
		// Evict an arbitrary entry: the store is a best-effort accelerator.
		for k := range s.incumbents {
			delete(s.incumbents, k)
			break
		}
	}
	s.incumbents[key] = incumbent{d: d, sol: d.CloneSolution(sol)}
}
