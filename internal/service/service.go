// Package service turns the one-shot EC library calls into a long-lived
// serving layer: a Service manages concurrent EC sessions, each holding a
// live formula, the current solution, and the warm-start state the EC
// re-solves exploit (the SAT↔set-cover encoding is rebuilt per solver
// run and skipped entirely for cache-served answers).
//
// Three mechanisms amortize work across the change stream, in the spirit
// of the paper's Figure-1 flow:
//
//   - batched change application: changes posted to a session queue up and
//     are coalesced into ONE fast-EC / preserving-EC pass per Solve call,
//     instead of one re-solve per change;
//   - an LRU solve cache keyed by a canonical hash of the subproblem
//     (task kind + formula + previous solution + solver options), with
//     in-flight deduplication, so identical subproblems across sessions
//     are answered without touching the solver;
//   - a worker-pool executor that multiplexes all sessions' solves over a
//     bounded set of goroutines (each of which may itself run an
//     Options.Workers-parallel root search), plus a shared incumbent store
//     that warm-starts a solve of a formula another session has already
//     solved under different options.
//
// The package is exposed over HTTP/JSON by NewHandler (see cmd/ecserve)
// and re-exported from the root ilpec package.
package service

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"ilpec/internal/cnf"
	"ilpec/internal/core"
	"ilpec/internal/ilp"
)

const (
	defaultCacheSize   = 256
	defaultMaxSessions = 4096
)

// Options configures a Service. The zero value is usable: fast-EC
// strategy, exact solver defaults, GOMAXPROCS executor workers, and a
// 256-entry solve cache.
type Options struct {
	// Solve is the default exact-solver configuration for every session
	// (sessions may override it at creation).
	Solve ilp.Options
	// Fast configures fast-EC re-solves.
	Fast core.FastOptions
	// Preserve configures preserving-EC re-solves. Preserve.Solve is
	// ignored; the session's solver options are used.
	Preserve core.PreserveOptions
	// Strategy is the default re-solve strategy for change batches
	// (sessions may override it at creation). Default: fast EC.
	Strategy core.Strategy
	// CacheSize bounds the LRU solve cache (entries; default 256).
	CacheSize int
	// Workers sizes the executor pool (default GOMAXPROCS). This bounds
	// concurrent branch-and-bound searches; Solve.Workers additionally
	// parallelizes within one search.
	Workers int
	// MaxSessions bounds live sessions (default 4096).
	MaxSessions int
}

// SessionConfig carries per-session overrides at creation time.
type SessionConfig struct {
	// Strategy overrides the service default when non-nil.
	Strategy *core.Strategy
	// Solve overrides the service solver options when non-nil.
	Solve *ilp.Options
}

// Metrics are the service-wide counters, updated atomically.
type Metrics struct {
	SessionsCreated atomic.Int64
	SessionsClosed  atomic.Int64
	// ChangesQueued counts individual changes posted to sessions.
	ChangesQueued atomic.Int64
	// Batches counts change batches resolved (each coalesces ≥1 changes
	// into a single pass; Batches < ChangesQueued measures coalescing).
	Batches atomic.Int64
	// Solves counts Session.Solve calls that produced a solution
	// (initial solves, batch re-solves, and relax fast-paths).
	Solves atomic.Int64
	// SolverRuns counts actual branch-and-bound executions — cache
	// misses. Solves − SolverRuns − RelaxFastPaths ≈ cache hits.
	SolverRuns atomic.Int64
	// CacheHits / CacheMisses count solve-cache lookups (a hit includes
	// joining another session's in-flight identical solve).
	CacheHits   atomic.Int64
	CacheMisses atomic.Int64
	// RelaxFastPaths counts batches absorbed without any solver work
	// (relaxing-only change sets, §6).
	RelaxFastPaths atomic.Int64
	// IncumbentHits counts solves warm-started from the shared incumbent
	// store (same formula solved before under different options).
	IncumbentHits atomic.Int64
}

// MetricsSnapshot is a plain-value copy of Metrics for reporting.
type MetricsSnapshot struct {
	SessionsLive    int   `json:"sessions_live"`
	SessionsCreated int64 `json:"sessions_created"`
	SessionsClosed  int64 `json:"sessions_closed"`
	ChangesQueued   int64 `json:"changes_queued"`
	Batches         int64 `json:"batches"`
	Solves          int64 `json:"solves"`
	SolverRuns      int64 `json:"solver_runs"`
	CacheHits       int64 `json:"cache_hits"`
	CacheMisses     int64 `json:"cache_misses"`
	CacheEntries    int   `json:"cache_entries"`
	RelaxFastPaths  int64 `json:"relax_fast_paths"`
	IncumbentHits   int64 `json:"incumbent_hits"`
}

// Service manages long-lived EC sessions sharing a solve cache, an
// incumbent store, and a worker-pool executor.
type Service struct {
	opts  Options
	cache *solveCache
	exec  *pool

	mu       sync.Mutex
	closed   bool
	sessions map[string]*Session
	nextID   int64

	imu        sync.Mutex
	incumbents map[string]cnf.Assignment

	metrics Metrics
}

// New creates a Service. Close it when done to stop the executor workers.
func New(opts Options) *Service {
	if opts.Workers < 1 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.CacheSize <= 0 {
		opts.CacheSize = defaultCacheSize
	}
	if opts.MaxSessions <= 0 {
		opts.MaxSessions = defaultMaxSessions
	}
	return &Service{
		opts:       opts,
		cache:      newSolveCache(opts.CacheSize),
		exec:       newPool(opts.Workers),
		sessions:   make(map[string]*Session),
		incumbents: make(map[string]cnf.Assignment),
	}
}

// CreateSession registers a new session for formula f (deep-copied; the
// caller keeps ownership of f). cfg carries optional per-session
// overrides.
func (s *Service) CreateSession(f *cnf.Formula, cfg SessionConfig) (*Session, error) {
	if f == nil {
		return nil, fmt.Errorf("service: nil formula")
	}
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("service: invalid formula: %w", err)
	}
	strategy := s.opts.Strategy
	if cfg.Strategy != nil {
		strategy = *cfg.Strategy
	}
	solve := s.opts.Solve
	if cfg.Solve != nil {
		solve = *cfg.Solve
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("service: closed")
	}
	if len(s.sessions) >= s.opts.MaxSessions {
		return nil, fmt.Errorf("service: session limit (%d) reached", s.opts.MaxSessions)
	}
	s.nextID++
	sess := &Session{
		id:       fmt.Sprintf("s%d", s.nextID),
		svc:      s,
		formula:  f.Clone(),
		strategy: strategy,
		solve:    solve,
	}
	s.sessions[sess.id] = sess
	s.metrics.SessionsCreated.Add(1)
	return sess, nil
}

// Session looks a live session up by id.
func (s *Service) Session(id string) (*Session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	return sess, ok
}

// Sessions returns the ids of all live sessions.
func (s *Service) Sessions() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	return ids
}

// CloseSession removes a session; it reports whether the id was live.
func (s *Service) CloseSession(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sessions[id]; !ok {
		return false
	}
	delete(s.sessions, id)
	s.metrics.SessionsClosed.Add(1)
	return true
}

// Metrics returns a snapshot of the service counters.
func (s *Service) Metrics() MetricsSnapshot {
	s.mu.Lock()
	live := len(s.sessions)
	s.mu.Unlock()
	m := &s.metrics
	return MetricsSnapshot{
		SessionsLive:    live,
		SessionsCreated: m.SessionsCreated.Load(),
		SessionsClosed:  m.SessionsClosed.Load(),
		ChangesQueued:   m.ChangesQueued.Load(),
		Batches:         m.Batches.Load(),
		Solves:          m.Solves.Load(),
		SolverRuns:      m.SolverRuns.Load(),
		CacheHits:       m.CacheHits.Load(),
		CacheMisses:     m.CacheMisses.Load(),
		CacheEntries:    s.cache.len(),
		RelaxFastPaths:  m.RelaxFastPaths.Load(),
		IncumbentHits:   m.IncumbentHits.Load(),
	}
}

// Close drops all sessions and stops the executor. In-flight solves
// finish; subsequent Solve calls fail.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	n := len(s.sessions)
	s.sessions = make(map[string]*Session)
	s.mu.Unlock()
	s.metrics.SessionsClosed.Add(int64(n))
	s.exec.close()
}

// cachedSolve routes one solve through the cache and, on a miss, the
// executor pool.
func (s *Service) cachedSolve(key string, compute func() (cnf.Assignment, error)) (cnf.Assignment, bool, error) {
	val, hit, err := s.cache.do(key, func() (cnf.Assignment, error) {
		var a cnf.Assignment
		var cerr error
		if perr := s.exec.run(func() { a, cerr = compute() }); perr != nil {
			return nil, perr
		}
		return a, cerr
	})
	if hit {
		s.metrics.CacheHits.Add(1)
	} else {
		s.metrics.CacheMisses.Add(1)
		if err == nil {
			s.metrics.SolverRuns.Add(1)
		}
	}
	return val, hit, err
}

// incumbent returns the stored solution for a formula key, if any.
func (s *Service) incumbent(key string) cnf.Assignment {
	s.imu.Lock()
	defer s.imu.Unlock()
	if a, ok := s.incumbents[key]; ok {
		return a.Clone()
	}
	return nil
}

// storeIncumbent records a solution for a formula key, shared across
// sessions as warm-start material. The store is bounded by the cache size.
func (s *Service) storeIncumbent(key string, a cnf.Assignment) {
	s.imu.Lock()
	defer s.imu.Unlock()
	if len(s.incumbents) >= s.opts.CacheSize {
		// Evict an arbitrary entry: the store is a best-effort accelerator.
		for k := range s.incumbents {
			delete(s.incumbents, k)
			break
		}
	}
	s.incumbents[key] = a.Clone()
}
