package service

import (
	"encoding/json"
	"net/http"
	"testing"
)

// errorBody is the structured error shape of the handler.
type errorBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

func decodeError(t *testing.T, raw string) errorBody {
	t.Helper()
	var eb errorBody
	if err := json.Unmarshal([]byte(raw), &eb); err != nil {
		t.Fatalf("error body %q not structured: %v", raw, err)
	}
	if eb.Error.Code == "" || eb.Error.Message == "" {
		t.Fatalf("error body %q missing code/message", raw)
	}
	return eb
}

// TestHTTPDomainsEndpoint lists the registered domains.
func TestHTTPDomainsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	var out struct {
		Domains []string `json:"domains"`
	}
	if code, raw := doJSON(t, "GET", ts.URL+"/v1/domains", nil, &out); code != http.StatusOK {
		t.Fatalf("domains: %d %s", code, raw)
	}
	want := map[string]bool{"cnf": true, "coloring": true, "sched": true, "partition": true}
	for _, name := range out.Domains {
		delete(want, name)
	}
	if len(want) != 0 {
		t.Fatalf("missing domains %v in %v", want, out.Domains)
	}
}

// TestHTTPStructuredErrors pins the 400 + {"error":{code,message}} shape
// for unknown domain and strategy names (and friends).
func TestHTTPStructuredErrors(t *testing.T) {
	_, ts := newTestServer(t)
	for name, tc := range map[string]struct {
		body     any
		wantCode string
	}{
		"unknown domain": {
			body:     map[string]any{"domain": "quantum", "problem": map[string]any{}},
			wantCode: "unknown_domain",
		},
		"unknown strategy": {
			body:     map[string]any{"clauses": [][]int{{1}}, "strategy": "psychic"},
			wantCode: "unknown_strategy",
		},
		"bad problem": {
			body:     map[string]any{"domain": "coloring", "problem": map[string]any{"vertices": -1, "k": 0}},
			wantCode: "bad_problem",
		},
		"missing problem": {
			body:     map[string]any{"domain": "partition"},
			wantCode: "bad_problem",
		},
		"both problem shapes": {
			body:     map[string]any{"domain": "cnf", "problem": map[string]any{"clauses": [][]int{{1}}}, "clauses": [][]int{{1}}},
			wantCode: "bad_problem",
		},
	} {
		t.Run(name, func(t *testing.T) {
			code, raw := doJSON(t, "POST", ts.URL+"/v1/sessions", tc.body, nil)
			if code != http.StatusBadRequest {
				t.Fatalf("got %d (%s), want 400", code, raw)
			}
			if eb := decodeError(t, raw); eb.Error.Code != tc.wantCode {
				t.Fatalf("error code %q, want %q (%s)", eb.Error.Code, tc.wantCode, raw)
			}
		})
	}
}

// TestHTTPPartitionWalkthrough drives the new partitioning domain end to
// end over the wire: create by domain name, solve, queue netlist changes,
// fast-EC re-solve, flex audit.
func TestHTTPPartitionWalkthrough(t *testing.T) {
	_, ts := newTestServer(t)

	var info SessionInfo
	code, raw := doJSON(t, "POST", ts.URL+"/v1/sessions", map[string]any{
		"domain": "partition",
		"problem": map[string]any{
			"vertices": 6,
			"blocks":   2,
			"edges":    [][]int{{1, 2}, {2, 3}, {4, 5}, {5, 6}, {3, 4}},
		},
	}, &info)
	if code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, raw)
	}
	if info.Domain != "partition" || info.Vars != 6 || info.Clauses != 5 {
		t.Fatalf("create info %+v", info)
	}
	base := ts.URL + "/v1/sessions/" + info.ID

	var solve struct {
		Status   string `json:"status"`
		Domain   string `json:"domain"`
		Batched  int    `json:"batched"`
		Solution []int  `json:"solution"`
		Literals []int  `json:"literals"`
	}
	if code, raw = doJSON(t, "POST", base+"/solve", nil, &solve); code != http.StatusOK {
		t.Fatalf("solve: %d %s", code, raw)
	}
	if solve.Status != "initial" || solve.Domain != "partition" || len(solve.Solution) != 6 {
		t.Fatalf("initial solve %+v", solve)
	}
	if len(solve.Literals) != 0 {
		t.Fatalf("non-CNF solve rendered literals %v", solve.Literals)
	}

	var queued struct {
		Pending int `json:"pending"`
	}
	code, raw = doJSON(t, "POST", base+"/changes", map[string]any{
		"changes": []map[string]any{
			{"kind": "add-vertex"},
			{"kind": "set-bounds", "max": 4},
			{"kind": "add-edge", "u": 7, "v": 1, "weight": 2},
		},
	}, &queued)
	if code != http.StatusAccepted || queued.Pending != 3 {
		t.Fatalf("changes: %d %s", code, raw)
	}
	if code, raw = doJSON(t, "POST", base+"/solve", nil, &solve); code != http.StatusOK {
		t.Fatalf("batch solve: %d %s", code, raw)
	}
	if solve.Status != "fast" || solve.Batched != 3 || len(solve.Solution) != 7 {
		t.Fatalf("batch solve %+v", solve)
	}

	var flex struct {
		Domain   string  `json:"domain"`
		Total    int     `json:"total"`
		Flexible int     `json:"flexible"`
		Fraction float64 `json:"fraction"`
	}
	if code, raw = doJSON(t, "GET", base+"/flex?k=1", nil, &flex); code != http.StatusOK {
		t.Fatalf("flex: %d %s", code, raw)
	}
	if flex.Domain != "partition" || flex.Total != 7 {
		t.Fatalf("flex %+v", flex)
	}

	// A bad change kind for this domain is a structured 400.
	code, raw = doJSON(t, "POST", base+"/changes", map[string]any{
		"changes": []map[string]any{{"kind": "add-clause", "lits": []int{1}}},
	}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("cnf change on partition session: %d %s", code, raw)
	}
	if eb := decodeError(t, raw); eb.Error.Code != "bad_change" {
		t.Fatalf("error code %q", eb.Error.Code)
	}
}

// TestHTTPColoringAndSchedCreate exercises the remaining built-in domains
// over the create/solve path.
func TestHTTPColoringAndSchedCreate(t *testing.T) {
	_, ts := newTestServer(t)
	for _, tc := range []struct {
		domain  string
		problem map[string]any
		units   int
	}{
		{"coloring", map[string]any{"vertices": 4, "k": 3, "edges": [][]int{{1, 2}, {2, 3}, {3, 4}}}, 4},
		{"sched", map[string]any{"capacity": []int{1, 1}, "steps": 4, "types": []int{0, 1, 0}, "deps": [][]int{{0, 1}}}, 3},
	} {
		t.Run(tc.domain, func(t *testing.T) {
			var info SessionInfo
			code, raw := doJSON(t, "POST", ts.URL+"/v1/sessions", map[string]any{
				"domain": tc.domain, "problem": tc.problem,
			}, &info)
			if code != http.StatusCreated || info.Domain != tc.domain || info.Vars != tc.units {
				t.Fatalf("create: %d %s (info %+v)", code, raw, info)
			}
			var solve struct {
				Status   string `json:"status"`
				Solution []int  `json:"solution"`
			}
			code, raw = doJSON(t, "POST", ts.URL+"/v1/sessions/"+info.ID+"/solve", nil, &solve)
			if code != http.StatusOK || solve.Status != "initial" || len(solve.Solution) != tc.units {
				t.Fatalf("solve: %d %s (%+v)", code, raw, solve)
			}
		})
	}
}
