package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"ilpec/internal/cnf"
	"ilpec/internal/domain"
	"ilpec/internal/ilp"
)

func newTestServer(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	svc := New(Options{Workers: 4})
	ts := httptest.NewServer(NewHandler(svc))
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

func doJSON(t *testing.T, method, url string, body any, out any) (int, string) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("bad response %q: %v", raw, err)
		}
	}
	return resp.StatusCode, string(raw)
}

func TestHTTPSessionWalkthrough(t *testing.T) {
	_, ts := newTestServer(t)

	var info SessionInfo
	code, raw := doJSON(t, "POST", ts.URL+"/v1/sessions", map[string]any{
		"clauses":  [][]int{{1, 2}, {-1, 3}, {2, 4}},
		"strategy": "preserving",
	}, &info)
	if code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, raw)
	}
	if info.ID == "" || info.Vars != 4 || info.Clauses != 3 {
		t.Fatalf("create info %+v", info)
	}
	base := ts.URL + "/v1/sessions/" + info.ID

	var solve struct {
		Status    string `json:"status"`
		Batched   int    `json:"batched"`
		Cached    bool   `json:"cached"`
		DontCares int    `json:"dont_cares"`
		Literals  []int  `json:"literals"`
	}
	if code, raw = doJSON(t, "POST", base+"/solve", nil, &solve); code != http.StatusOK {
		t.Fatalf("solve: %d %s", code, raw)
	}
	if solve.Status != "initial" || len(solve.Literals) == 0 {
		t.Fatalf("initial solve %+v", solve)
	}

	var queued struct {
		Pending int `json:"pending"`
	}
	code, raw = doJSON(t, "POST", base+"/changes", map[string]any{
		"changes": []map[string]any{
			{"kind": "add-clause", "lits": []int{-2, 3}},
			{"kind": "add-variable"},
			{"kind": "add-clause", "lits": []int{-3, 5}},
		},
	}, &queued)
	if code != http.StatusAccepted || queued.Pending != 3 {
		t.Fatalf("changes: %d %s", code, raw)
	}

	if code, raw = doJSON(t, "POST", base+"/solve", nil, &solve); code != http.StatusOK {
		t.Fatalf("batch solve: %d %s", code, raw)
	}
	if solve.Status != "preserving" || solve.Batched != 3 {
		t.Fatalf("batch solve %+v", solve)
	}

	var flex struct {
		Flexible int `json:"flexible"`
		Total    int `json:"total"`
	}
	if code, raw = doJSON(t, "GET", base+"/flex?k=2", nil, &flex); code != http.StatusOK {
		t.Fatalf("flex: %d %s", code, raw)
	}
	if flex.Total != 5 {
		t.Fatalf("flex total %d, want 5 clauses", flex.Total)
	}

	var metrics MetricsSnapshot
	if code, raw = doJSON(t, "GET", ts.URL+"/v1/metrics", nil, &metrics); code != http.StatusOK {
		t.Fatalf("metrics: %d %s", code, raw)
	}
	if metrics.Solves != 2 || metrics.Batches != 1 {
		t.Fatalf("metrics %+v", metrics)
	}

	if code, raw = doJSON(t, "DELETE", base, nil, nil); code != http.StatusOK {
		t.Fatalf("delete: %d %s", code, raw)
	}
	if code, _ = doJSON(t, "GET", base, nil, nil); code != http.StatusNotFound {
		t.Fatalf("deleted session still answers: %d", code)
	}
}

func TestHTTPCreateDIMACS(t *testing.T) {
	_, ts := newTestServer(t)
	var info SessionInfo
	code, raw := doJSON(t, "POST", ts.URL+"/v1/sessions", map[string]any{
		"dimacs": "p cnf 3 2\n1 -2 0\n2 3 0\n",
	}, &info)
	if code != http.StatusCreated || info.Vars != 3 || info.Clauses != 2 {
		t.Fatalf("dimacs create: %d %s", code, raw)
	}
}

func TestHTTPErrors(t *testing.T) {
	_, ts := newTestServer(t)
	for name, tc := range map[string]struct {
		method, path string
		body         any
		want         int
	}{
		"missing formula": {"POST", "/v1/sessions", map[string]any{}, http.StatusBadRequest},
		"both formats":    {"POST", "/v1/sessions", map[string]any{"dimacs": "p cnf 1 1\n1 0\n", "clauses": [][]int{{1}}}, http.StatusBadRequest},
		"bad strategy":    {"POST", "/v1/sessions", map[string]any{"clauses": [][]int{{1}}, "strategy": "psychic"}, http.StatusBadRequest},
		"zero literal":    {"POST", "/v1/sessions", map[string]any{"clauses": [][]int{{1, 0}}}, http.StatusBadRequest},
		"unknown field":   {"POST", "/v1/sessions", map[string]any{"claws": [][]int{{1}}}, http.StatusBadRequest},
		"unknown session": {"GET", "/v1/sessions/nope", nil, http.StatusNotFound},
		"solve unknown":   {"POST", "/v1/sessions/nope/solve", nil, http.StatusNotFound},
	} {
		t.Run(name, func(t *testing.T) {
			code, raw := doJSON(t, tc.method, ts.URL+tc.path, tc.body, nil)
			if code != tc.want {
				t.Fatalf("%s %s: got %d (%s), want %d", tc.method, tc.path, code, raw, tc.want)
			}
		})
	}

	// Bad change kinds and empty batches on a real session.
	var info SessionInfo
	if code, raw := doJSON(t, "POST", ts.URL+"/v1/sessions", map[string]any{"clauses": [][]int{{1, 2}}}, &info); code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, raw)
	}
	base := ts.URL + "/v1/sessions/" + info.ID
	if code, _ := doJSON(t, "POST", base+"/changes", map[string]any{"changes": []map[string]any{}}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty batch accepted: %d", code)
	}
	if code, _ := doJSON(t, "POST", base+"/changes", map[string]any{"changes": []map[string]any{{"kind": "telepathy"}}}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad kind accepted: %d", code)
	}
	if code, _ := doJSON(t, "GET", base+"/flex?k=0", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("bad k accepted: %d", code)
	}
	// Flex before solve conflicts.
	if code, _ := doJSON(t, "GET", base+"/flex", nil, nil); code != http.StatusConflict {
		t.Fatalf("flex before solve: %d", code)
	}
	// An unsatisfiable batch reports conflict and keeps the session.
	doJSON(t, "POST", base+"/solve", nil, nil)
	doJSON(t, "POST", base+"/changes", map[string]any{"changes": []map[string]any{
		{"kind": "add-clause", "lits": []int{1}},
		{"kind": "add-clause", "lits": []int{-1}},
	}}, nil)
	if code, _ := doJSON(t, "POST", base+"/solve", nil, nil); code != http.StatusConflict {
		t.Fatalf("unsat batch: %d, want 409", code)
	}
	if code, _ := doJSON(t, "GET", base, nil, nil); code != http.StatusOK {
		t.Fatalf("session gone after failed batch: %d", code)
	}
}

// TestHTTPConcurrentSessions drives the acceptance scenario over the wire:
// 8 parallel HTTP clients create sessions on the same formula, post a
// 3-change batch, and solve. The service must answer some solves from the
// cache and coalesce every batch into a single pass.
func TestHTTPConcurrentSessions(t *testing.T) {
	svc, ts := newTestServer(t)
	const clients = 8

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var info SessionInfo
			code, raw := doJSON(t, "POST", ts.URL+"/v1/sessions", map[string]any{
				"clauses": [][]int{{1, 2}, {-1, 3}, {2, 4}, {-3, -4, 5}, {5, 6}},
			}, &info)
			if code != http.StatusCreated {
				errs <- fmt.Errorf("create: %d %s", code, raw)
				return
			}
			base := ts.URL + "/v1/sessions/" + info.ID
			if code, raw := doJSON(t, "POST", base+"/solve", nil, nil); code != http.StatusOK {
				errs <- fmt.Errorf("initial solve: %d %s", code, raw)
				return
			}
			code, raw = doJSON(t, "POST", base+"/changes", map[string]any{
				"changes": []map[string]any{
					{"kind": "add-clause", "lits": []int{-2, 3}},
					{"kind": "add-clause", "lits": []int{1, 4}},
					{"kind": "add-clause", "lits": []int{-5, 2}},
				},
			}, nil)
			if code != http.StatusAccepted {
				errs <- fmt.Errorf("changes: %d %s", code, raw)
				return
			}
			var solve struct {
				Batched  int   `json:"batched"`
				Literals []int `json:"literals"`
			}
			if code, raw := doJSON(t, "POST", base+"/solve", nil, &solve); code != http.StatusOK {
				errs <- fmt.Errorf("batch solve: %d %s", code, raw)
				return
			}
			if solve.Batched != 3 {
				errs <- fmt.Errorf("batched %d, want 3", solve.Batched)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	m := svc.Metrics()
	if m.CacheHits == 0 {
		t.Fatalf("no cache hits over HTTP: %+v", m)
	}
	if m.Batches >= m.ChangesQueued {
		t.Fatalf("batched solves %d not < posted changes %d", m.Batches, m.ChangesQueued)
	}
}

// TestHTTPOverridesClamped pins that client-supplied solver overrides
// cannot escape the operator's limits: the session is created, but with
// workers bounded by the machine and the time limit by the service cap.
func TestHTTPOverridesClamped(t *testing.T) {
	svc := New(Options{Solve: ilp.Options{TimeLimit: time.Second}})
	ts := httptest.NewServer(NewHandler(svc))
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	var info SessionInfo
	code, raw := doJSON(t, "POST", ts.URL+"/v1/sessions", map[string]any{
		"clauses":       [][]int{{1, 2}},
		"workers":       1 << 20,
		"time_limit_ms": 1 << 40,
	}, &info)
	if code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, raw)
	}
	sess, ok := svc.Session(info.ID)
	if !ok {
		t.Fatal("session missing")
	}
	if sess.solve.Workers > runtime.GOMAXPROCS(0) {
		t.Fatalf("workers %d escaped the machine clamp", sess.solve.Workers)
	}
	if sess.solve.TimeLimit > time.Second {
		t.Fatalf("time limit %v escaped the service cap", sess.solve.TimeLimit)
	}
	// A request below the caps is honored as-is.
	code, raw = doJSON(t, "POST", ts.URL+"/v1/sessions", map[string]any{
		"clauses":       [][]int{{1, 2}},
		"workers":       1,
		"time_limit_ms": 50,
	}, &info)
	if code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, raw)
	}
	sess, _ = svc.Session(info.ID)
	if sess.solve.TimeLimit != 50*time.Millisecond || sess.solve.Workers != 1 {
		t.Fatalf("in-range overrides mangled: %+v", sess.solve)
	}
}

func TestAssignmentLits(t *testing.T) {
	d, ok := domain.Get("cnf")
	if !ok {
		t.Fatal("cnf domain missing")
	}
	a := cnf.NewAssignment(4)
	a.Set(1, cnf.True)
	a.Set(3, cnf.False)
	got, ok := d.Render(cnf.New(4), a).([]int)
	if !ok {
		t.Fatalf("render type %T", d.Render(cnf.New(4), a))
	}
	want := []int{1, -3}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("lits %v, want %v", got, want)
	}
}

// The HTTP wire contract of change-batch idempotency: a replay carrying
// the same Idempotency-Key is acknowledged 202 with "duplicate": true
// and pending unchanged, and an oversized key is rejected up front.
func TestHTTPChangesIdempotencyKey(t *testing.T) {
	_, ts := newTestServer(t)

	var info SessionInfo
	if code, raw := doJSON(t, "POST", ts.URL+"/v1/sessions", map[string]any{
		"clauses": [][]int{{1, 2}, {-1, 3}},
	}, &info); code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, raw)
	}
	base := ts.URL + "/v1/sessions/" + info.ID

	post := func(key string) (int, string) {
		t.Helper()
		body, _ := json.Marshal(map[string]any{
			"changes": []map[string]any{{"kind": "add-clause", "lits": []int{-2, 3}}},
		})
		req, err := http.NewRequest("POST", base+"/changes", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if key != "" {
			req.Header.Set("Idempotency-Key", key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(raw)
	}

	var ack struct {
		Pending   int  `json:"pending"`
		Duplicate bool `json:"duplicate"`
	}
	code, raw := post("key-1")
	if json.Unmarshal([]byte(raw), &ack); code != http.StatusAccepted || ack.Duplicate || ack.Pending != 1 {
		t.Fatalf("first keyed batch: %d %s", code, raw)
	}
	ack.Duplicate = false
	code, raw = post("key-1")
	if json.Unmarshal([]byte(raw), &ack); code != http.StatusAccepted || !ack.Duplicate || ack.Pending != 1 {
		t.Fatalf("replayed batch: %d %s, want 202 duplicate with pending still 1", code, raw)
	}
	// Unkeyed batches never dedup.
	ack.Duplicate = false
	code, raw = post("")
	if json.Unmarshal([]byte(raw), &ack); code != http.StatusAccepted || ack.Duplicate || ack.Pending != 2 {
		t.Fatalf("unkeyed batch: %d %s", code, raw)
	}
	if code, raw := post(strings.Repeat("k", maxIdempotencyKey+1)); code != http.StatusBadRequest || !strings.Contains(raw, "bad_idempotency_key") {
		t.Fatalf("oversized key: %d %s, want 400 bad_idempotency_key", code, raw)
	}
}
