package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ilpec/internal/cnf"
	"ilpec/internal/domain"
	"ilpec/internal/gen"
	"ilpec/internal/ilp"
)

// hardFormula is an instance whose exact solve takes well over a single
// branch-and-bound node, so tiny MaxNodes budgets truncate it.
func hardFormula(t *testing.T) *cnf.Formula {
	t.Helper()
	spec, ok := gen.ByName("jnh1")
	if !ok {
		t.Fatal("jnh1 spec missing")
	}
	f, _ := gen.Scaled(spec, 0.30).Generate()
	return f
}

// TestTruncatedSolveNotCached is the regression test for the solve-cache
// bug: a MaxNodes-truncated (possibly suboptimal) result must NOT be
// stored, so the identical next request re-attempts the solve instead of
// replaying the truncated answer forever.
func TestTruncatedSolveNotCached(t *testing.T) {
	svc := newTestService(t, Options{})
	f := hardFormula(t)

	// A full solve first: it seeds the shared incumbent store so the
	// truncated sessions below find a warm start, reach Feasible (rather
	// than Unknown), and exercise exactly the buggy replay path.
	full, err := svc.CreateSession(f, SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := full.Solve(); err != nil {
		t.Fatal(err)
	}
	base := svc.Metrics()

	limited := ilp.Options{MaxNodes: 1}
	s1, err := svc.CreateSession(f, SessionConfig{Solve: &limited})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Solve(); err != nil {
		t.Fatalf("truncated solve should still serve its incumbent: %v", err)
	}
	m1 := svc.Metrics()
	if m1.TruncatedSolves == base.TruncatedSolves {
		t.Fatalf("solve was not truncated (truncated=%d); the fixture is too easy for MaxNodes=1", m1.TruncatedSolves)
	}
	if m1.SolverRuns != base.SolverRuns+1 {
		t.Fatalf("solver runs %d, want %d", m1.SolverRuns, base.SolverRuns+1)
	}

	// The identical request must MISS the cache and re-run the solver.
	s2, err := svc.CreateSession(f, SessionConfig{Solve: &limited})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := s2.Solve()
	if err != nil {
		t.Fatal(err)
	}
	m2 := svc.Metrics()
	if res2.Cached {
		t.Fatal("limit-truncated result was replayed from the cache")
	}
	if m2.SolverRuns != m1.SolverRuns+1 {
		t.Fatalf("truncated solve was not re-attempted: runs %d, want %d", m2.SolverRuns, m1.SolverRuns+1)
	}

	// Control: proven-optimal results ARE cached (the full session's key).
	ctrl, err := svc.CreateSession(f, SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	resCtrl, err := ctrl.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !resCtrl.Cached {
		t.Fatal("proven-optimal solve was not served from the cache")
	}
}

// TestSolveContextCancelled: a cancelled request context aborts the solve
// inside the kernel and leaves the session reusable.
func TestSolveContextCancelled(t *testing.T) {
	svc := newTestService(t, Options{})
	sess, err := svc.CreateSession(hardFormula(t), SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := sess.SolveContext(ctx); err == nil {
		t.Fatal("cancelled solve reported success")
	}
	if el := time.Since(start); el > 10*time.Second {
		t.Fatalf("cancelled solve ran %v", el)
	}
	// The session survives: a later, uncancelled solve succeeds.
	if _, err := sess.Solve(); err != nil {
		t.Fatalf("session poisoned by cancelled solve: %v", err)
	}
}

// TestHTTPSolveCancelled: the handler threads r.Context() into the solve
// and reports the cancellation.
func TestHTTPSolveCancelled(t *testing.T) {
	svc := newTestService(t, Options{})
	sess, err := svc.CreateSession(hardFormula(t), SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	h := NewHandler(svc)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("POST", "/v1/sessions/"+sess.ID()+"/solve", strings.NewReader("")).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestTimeout {
		t.Fatalf("status %d, want %d (body %s)", rec.Code, http.StatusRequestTimeout, rec.Body)
	}
	var body struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body.Error.Code != "cancelled" {
		t.Fatalf("body %s, want error code cancelled", rec.Body)
	}
}

// TestPoolRunCancelledWhileQueued: a caller whose context dies while
// waiting for a worker slot leaves the queue instead of holding it.
func TestPoolRunCancelledWhileQueued(t *testing.T) {
	p := newPool(1, -1)
	defer p.close()
	block := make(chan struct{})
	started := make(chan struct{})
	go p.run(context.Background(), func() { close(started); <-block }) //nolint:errcheck
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.run(ctx, func() { t.Error("cancelled job ran") }); err == nil {
		t.Fatal("queued run with cancelled context returned nil")
	}
	close(block)
}

// TestServiceGlobalNodeBudget: raising Workers must not multiply the
// MaxNodes budget a session is given.
func TestServiceGlobalNodeBudget(t *testing.T) {
	f := hardFormula(t)
	nodesWith := func(workers int) int64 {
		m := ilpModelFor(t, f)
		res := ilp.Solve(m, ilp.Options{MaxNodes: 200, Workers: workers})
		return res.Nodes
	}
	n1, n4 := nodesWith(1), nodesWith(4)
	if n4 > 4*n1 && n4 > 300 {
		t.Fatalf("workers multiplied the node budget: serial %d nodes, parallel %d", n1, n4)
	}
}

// ilpModelFor builds the session's base encoding directly (what the
// service's replan path would solve).
func ilpModelFor(t *testing.T, f *cnf.Formula) *ilp.Model {
	t.Helper()
	d, ok := domain.Get("cnf")
	if !ok {
		t.Fatal("cnf domain missing")
	}
	enc, err := d.Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	return enc.ILP()
}

// TestCacheJoinerRetriesOwnerCancelled: when the request that owns an
// in-flight solve is cancelled, a joiner with a live context retries the
// solve itself instead of inheriting the owner's context error.
func TestCacheJoinerRetriesOwnerCancelled(t *testing.T) {
	c := newSolveCache(8)
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		c.do(context.Background(), "k", cloneAssignment, func() (any, bool, error) { //nolint:errcheck
			close(started)
			<-release
			return nil, false, context.Canceled // the owner's client went away
		})
	}()
	<-started
	type out struct {
		val any
		err error
	}
	res := make(chan out, 1)
	go func() {
		val, _, err := c.do(context.Background(), "k", cloneAssignment, func() (any, bool, error) {
			return cnf.NewAssignment(1), true, nil
		})
		res <- out{val, err}
	}()
	time.Sleep(20 * time.Millisecond) // let the joiner block on the in-flight entry
	close(release)
	got := <-res
	if got.err != nil {
		t.Fatalf("joiner inherited the owner's cancellation: %v", got.err)
	}
	if got.val == nil {
		t.Fatal("joiner retry returned no value")
	}
}
