package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"ilpec/internal/cluster"
	"ilpec/internal/domain"
	"ilpec/internal/store"
)

// This file is the service side of the multi-node tier (internal/cluster,
// cmd/ecrouter): lease-based session ownership, stale-owner fencing, and
// the fleet-wide solve-cache peek.
//
// Ownership protocol. In cluster mode (Options.Cluster set) a node must
// hold the session's lease before serving it:
//
//   - every lookup checks the cached lease; when it is near expiry the
//     lease is renewed (or re-acquired) through the shared store, and a
//     lookup of a session whose lease another node holds fails with
//     ErrNotOwner (HTTP 503 "not_owner" + Retry-After — the router
//     re-routes and the client retries);
//   - every journal append re-validates the lease first and renews it
//     when less than half the TTL remains ("renew on commit"), so an
//     actively written session's lease never lapses;
//   - rehydration acquires the lease BEFORE loading state, so two nodes
//     cannot both materialize the same session.
//
// Fencing. Clocks only make ownership fast, not safe; safety comes from
// the store's CAS append. If a stale owner appends after the new owner
// has, the append fails with store.ErrSeqConflict, the session is FENCED:
// marked closed and fenced, refused with ErrNotOwner, and dropped from
// the live map on the next lookup (its durable state now belongs to the
// new owner). A fenced session never writes another journal record or
// snapshot, so a split brain cannot double-commit — the differential
// chaos suite pins this.
//
// A transient store failure during a lease operation does NOT fence: the
// node keeps serving on its cached lease (during a total store outage no
// competitor can acquire the lease either, and the CAS backstop catches
// any real conflict). This keeps the PR-6 quarantine semantics intact in
// cluster mode.

// ErrNotOwner reports an operation on a session whose lease another node
// holds. The HTTP layer maps it to a retryable 503 so the client retries
// through the router, which routes to the current owner.
var ErrNotOwner = errors.New("service: session owned by another node")

// ErrSessionExists reports a create with an explicit id that is already
// in use.
var ErrSessionExists = errors.New("service: session id already exists")

// clustered reports whether this service runs as a cluster node.
func (s *Service) clustered() bool { return s.opts.Cluster != nil }

// ClusterNode returns the cluster node this service serves as (nil when
// not clustered).
func (s *Service) ClusterNode() *cluster.Node { return s.opts.Cluster }

// notOwnerErr builds the per-session ErrNotOwner.
func notOwnerErr(id, holder string) error {
	if holder == "" {
		return fmt.Errorf("%w: session %q", ErrNotOwner, id)
	}
	return fmt.Errorf("%w: session %q (holder %q)", ErrNotOwner, id, holder)
}

// leaseHolderOf extracts the competing holder from a cluster.HeldError.
func leaseHolderOf(err error) string {
	var held *cluster.HeldError
	if errors.As(err, &held) {
		return held.Holder
	}
	return ""
}

// ensureLeaseLocked proves this node may serve the session, renewing or
// re-acquiring the lease as needed. On a definitive loss the session is
// fenced and ErrNotOwner returned; on transient store trouble the node
// proceeds on its cached claim (see the file comment). Caller holds
// s.mu.
//
//ecvet:fenced
func (s *Session) ensureLeaseLocked() error {
	svc := s.svc
	if !svc.clustered() {
		return nil
	}
	if s.fenced.Load() {
		return notOwnerErr(s.id, "")
	}
	node := svc.opts.Cluster
	now := node.Now()
	ttl := node.LeaseTTL()
	remaining := s.lease.Expiry.Sub(now)
	if s.lease.Holder == node.ID() && remaining > ttl/2 {
		return nil
	}
	var (
		ls  cluster.Lease
		err error
	)
	if s.lease.Holder == node.ID() && remaining > 0 {
		// Renew on commit: still ours, but past the half-TTL mark.
		ls, err = node.Leases().Renew(s.lease, ttl, now)
		if err == nil {
			svc.metrics.ClusterLeaseRenewals.Add(1)
		}
	} else {
		ls, err = node.Leases().Acquire(s.id, node.ID(), ttl, now)
		if err == nil {
			svc.metrics.ClusterLeaseAcquired.Add(1)
		}
	}
	switch {
	case err == nil:
		s.lease = ls
		return nil
	case errors.Is(err, cluster.ErrLeaseHeld):
		s.fenceLocked()
		return notOwnerErr(s.id, leaseHolderOf(err))
	case errors.Is(err, cluster.ErrSessionDeleted):
		// The session was deleted cluster-wide while our lease lapsed. Our
		// in-memory copy is a ghost: fence it so nothing here is ever
		// persisted again (which would resurrect the deleted session).
		s.fenceLocked()
		return notOwnerErr(s.id, "")
	case store.IsTransient(err) && s.lease.Holder == node.ID() && remaining > 0:
		// Store hiccup mid-renewal with an unexpired claim: keep serving.
		// The CAS backstop fences us if ownership truly moved.
		return nil
	default:
		return err
	}
}

// fenceLocked marks the session as no longer ours: closed to all further
// operations and flagged so the next lookup drops it from the live map
// (the durable state belongs to the new owner; nothing here may be
// persisted again). Caller holds s.mu.
func (s *Session) fenceLocked() {
	if s.fenced.Swap(true) {
		return
	}
	s.closed = true
	s.inst = nil
	s.svc.metrics.ClusterFenced.Add(1)
}

// acquireForRehydrate claims the lease before a session is materialized
// from the store. Returns the lease to install on the rebuilt session.
func (s *Service) acquireForRehydrate(id string) (cluster.Lease, error) {
	node := s.opts.Cluster
	ls, err := node.Leases().Acquire(id, node.ID(), node.LeaseTTL(), node.Now())
	if err != nil {
		if errors.Is(err, cluster.ErrLeaseHeld) {
			s.metrics.ClusterNotOwner.Add(1)
			return cluster.Lease{}, notOwnerErr(id, leaseHolderOf(err))
		}
		return cluster.Lease{}, err
	}
	s.metrics.ClusterLeaseAcquired.Add(1)
	return ls, nil
}

// releaseLeaseLocked hands the session's lease back (drain, eviction,
// close) so a successor need not wait out the TTL. Best effort; a fenced
// session has nothing to release. Caller holds s.mu.
func (s *Session) releaseLeaseLocked() {
	svc := s.svc
	if !svc.clustered() || s.fenced.Load() {
		return
	}
	node := svc.opts.Cluster
	if s.lease.Holder != node.ID() {
		return
	}
	node.Leases().Release(s.lease) //nolint:errcheck // best effort; TTL expiry covers failure
	s.lease = cluster.Lease{}
}

// ---- fleet solve cache -----------------------------------------------------

// clusterPeek consults the fleet-wide solve cache for a task key. The
// returned solution is parsed and verified against the live problem, so
// a corrupt or colliding entry degrades to a miss, never a wrong answer.
func (s *Service) clusterPeek(d domain.Domain, problem any, key string) (any, bool) {
	if !s.clustered() {
		return nil, false
	}
	domName, raw, ok := s.opts.Cluster.Cache().Peek(key)
	if !ok || domName != d.Name() {
		s.metrics.ClusterPeekMisses.Add(1)
		return nil, false
	}
	sol, err := d.ParseSolution(problem, raw)
	if err != nil || d.Verify(problem, sol) != nil {
		s.metrics.ClusterPeekMisses.Add(1)
		return nil, false
	}
	s.metrics.ClusterPeekHits.Add(1)
	return sol, true
}

// clusterPublish shares a PROVEN solve result fleet-wide (mirrors the
// local cache's eligibility rule). Best effort.
func (s *Service) clusterPublish(d domain.Domain, problem any, key string, sol any) {
	if !s.clustered() {
		return
	}
	raw, err := json.Marshal(d.Render(problem, sol))
	if err != nil {
		return
	}
	if s.opts.Cluster.Cache().Put(key, d.Name(), raw) == nil {
		s.metrics.ClusterPeekStores.Add(1)
	}
}

// cachedSolveFleet is cachedSolve with the fleet cache layered under the
// in-process LRU: local hit → fleet peek → compute (and publish when the
// fresh result is proven). Caller holds s.mu.
func (s *Session) cachedSolveFleet(ctx context.Context, key string, problem any, compute func() (any, bool, error)) (any, bool, error) {
	if !s.svc.clustered() {
		return s.svc.cachedSolve(ctx, key, s.dom.CloneSolution, compute)
	}
	peeked := false
	wrapped := func() (any, bool, error) {
		if sol, ok := s.svc.clusterPeek(s.dom, problem, key); ok {
			peeked = true
			return sol, true, nil
		}
		v, ok, err := compute()
		if err == nil && ok {
			s.svc.clusterPublish(s.dom, problem, key, v)
		}
		return v, ok, err
	}
	val, hit, err := s.svc.cachedSolve(ctx, key, s.dom.CloneSolution, wrapped)
	if peeked && err == nil && !hit {
		// The "miss" was served by a peer's published result, not a local
		// branch-and-bound run; keep SolverRuns honest.
		s.svc.metrics.SolverRuns.Add(-1)
		hit = true
	}
	return val, hit, err
}

// ---- readiness -------------------------------------------------------------

// StartDraining flips the service into drain mode: /readyz answers 503
// so routers stop sending new work, while in-flight and follow-up
// requests on existing connections still succeed until Close. cmd/ecserve
// calls it at the start of graceful shutdown.
func (s *Service) StartDraining() { s.draining.Store(true) }

// Draining reports whether StartDraining was called.
func (s *Service) Draining() bool { return s.draining.Load() }

// Ready implements the readiness half of the health split: liveness
// (/healthz) says the process answers, readiness says it should receive
// NEW work. Not ready while draining, closed, partitioned from the
// cluster (heartbeat failing), or while any session sits in store
// quarantine — a router should prefer nodes whose durability is intact.
// The reason names the first failing gate for operators.
func (s *Service) Ready() (bool, string) {
	if s.draining.Load() {
		return false, "draining"
	}
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return false, "closed"
	}
	if s.clustered() && !s.opts.Cluster.Ready() {
		return false, "cluster_heartbeat_lost"
	}
	if len(s.DegradedSessions()) > 0 {
		return false, "store_quarantine"
	}
	return true, ""
}
