package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"ilpec/internal/obs"
)

// These tests pin the chain Metrics → MetricsSnapshot → Prometheus
// exposition: a counter added to one layer but forgotten in another
// fails here, not in a dashboard three weeks later.

// Every atomic counter in Metrics must have a same-named field in
// MetricsSnapshot (the JSON/Prometheus reporting copy). SessionsLive,
// CacheEntries and SessionsPersisted are snapshot-only (computed, not
// accumulated), which is fine — the constraint is one-directional.
func TestMetricsSnapshotCoversEveryMetricsField(t *testing.T) {
	snapFields := map[string]bool{}
	st := reflect.TypeOf(MetricsSnapshot{})
	for i := 0; i < st.NumField(); i++ {
		snapFields[st.Field(i).Name] = true
	}
	mt := reflect.TypeOf(Metrics{})
	for i := 0; i < mt.NumField(); i++ {
		name := mt.Field(i).Name
		if !snapFields[name] {
			t.Errorf("Metrics.%s has no MetricsSnapshot counterpart — add it to MetricsSnapshot (and Service.Metrics) so it reaches /v1/metrics and /metrics", name)
		}
	}
}

// Every MetricsSnapshot field must surface as an ec_service_<json_tag>
// series in the Prometheus exposition, with gauge typing for the
// point-in-time fields, and the rendered block must be valid exposition
// text.
func TestSnapshotPromCoversEverySnapshotField(t *testing.T) {
	var buf strings.Builder
	writeSnapshotProm(&buf, MetricsSnapshot{})
	text := buf.String()
	if err := obs.ValidatePrometheus(text); err != nil {
		t.Fatalf("writeSnapshotProm output invalid: %v\n%s", err, text)
	}

	st := reflect.TypeOf(MetricsSnapshot{})
	for i := 0; i < st.NumField(); i++ {
		tag, _, _ := strings.Cut(st.Field(i).Tag.Get("json"), ",")
		if tag == "" || tag == "-" {
			t.Errorf("MetricsSnapshot.%s has no json tag — it is invisible to /v1/metrics and /metrics", st.Field(i).Name)
			continue
		}
		kind := "counter"
		if promGauges[tag] {
			kind = "gauge"
		}
		want := fmt.Sprintf("# TYPE ec_service_%s %s\nec_service_%s 0\n", tag, kind, tag)
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q series for MetricsSnapshot.%s", "ec_service_"+tag, st.Field(i).Name)
		}
	}

	// promGauges must not drift from the snapshot's actual field set.
	tags := map[string]bool{}
	for i := 0; i < st.NumField(); i++ {
		tag, _, _ := strings.Cut(st.Field(i).Tag.Get("json"), ",")
		tags[tag] = true
	}
	for g := range promGauges {
		if !tags[g] {
			t.Errorf("promGauges lists %q but MetricsSnapshot has no such json tag", g)
		}
	}
}

// End-to-end through the handler: after real traffic, GET /metrics is
// valid Prometheus text carrying the service counters, the per-route
// HTTP histograms, and the per-phase solve histograms.
func TestPromEndpointEndToEnd(t *testing.T) {
	_, ts := newTestServer(t)

	var info SessionInfo
	if code, raw := doJSON(t, "POST", ts.URL+"/v1/sessions", map[string]any{
		"clauses": [][]int{{1, 2}, {-1, 3}},
	}, &info); code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, raw)
	}
	if code, raw := doJSON(t, "POST", ts.URL+"/v1/sessions/"+info.ID+"/solve", nil, nil); code != http.StatusOK {
		t.Fatalf("solve: %d %s", code, raw)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain exposition", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	if err := obs.ValidatePrometheus(text); err != nil {
		t.Fatalf("/metrics invalid: %v\n%s", err, text)
	}
	for _, want := range []string{
		"ec_service_solves 1",
		"ec_service_sessions_created 1",
		`ec_http_request_seconds_bucket{route="session_solve",le="+Inf"}`,
		`ec_http_requests_total{route="session_create",status="2xx"}`,
		`ec_solve_phase_seconds_count{phase="search"} 1`,
		`ec_solve_phase_seconds_count{phase="queue_wait"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q\n%s", want, text)
		}
	}

	// The JSON form carries the same snapshot plus the raw series.
	var jm struct {
		Service MetricsSnapshot  `json:"service"`
		Series  []map[string]any `json:"series"`
	}
	if code, raw := doJSON(t, "GET", ts.URL+"/metrics?format=json", nil, &jm); code != http.StatusOK {
		t.Fatalf("/metrics?format=json: %d %s", code, raw)
	}
	if jm.Service.Solves != 1 || len(jm.Series) == 0 {
		t.Fatalf("json form: solves=%d series=%d, want 1 and >0", jm.Service.Solves, len(jm.Series))
	}
}

// ?trace=1 must return the request's span tree: the http root wrapping
// the solve span, whose children are the instrumented phases. The
// X-Request-ID response header and the trace's request_id attr must
// agree, and /v1/debug/traces must decode.
func TestTraceInjectionEndToEnd(t *testing.T) {
	svc, ts := newTestServer(t)
	// Force every request into the slow ring so /v1/debug/traces has
	// content without an artificial stall.
	svc.sobs.traces = obs.NewTraceRing(8, 0)

	var info SessionInfo
	if code, raw := doJSON(t, "POST", ts.URL+"/v1/sessions", map[string]any{
		"clauses": [][]int{{1, 2}, {-1, 3}},
	}, &info); code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, raw)
	}

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/sessions/"+info.ID+"/solve?trace=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	reqID := resp.Header.Get("X-Request-ID")
	if reqID == "" {
		t.Fatal("response missing X-Request-ID")
	}
	var body struct {
		Status string       `json:"status"`
		Trace  *obs.SpanOut `json:"trace"`
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatalf("bad traced response %q: %v", raw, err)
	}
	if body.Status == "" {
		t.Fatal("trace injection ate the solve response")
	}
	if body.Trace == nil {
		t.Fatal("?trace=1 response carries no trace")
	}
	if body.Trace.Name != "http session_solve" {
		t.Fatalf("trace root = %q, want \"http session_solve\"", body.Trace.Name)
	}
	if got := body.Trace.Attrs["request_id"]; got != reqID {
		t.Fatalf("trace request_id = %q, header = %q", got, reqID)
	}
	var solve *obs.SpanOut
	for _, c := range body.Trace.Children {
		if c.Name == "solve" {
			solve = c
		}
	}
	if solve == nil {
		t.Fatalf("trace has no solve child: %+v", body.Trace.Children)
	}
	phases := map[string]bool{}
	for _, c := range solve.Children {
		phases[c.Name] = true
	}
	for _, want := range []string{"queue_wait", "cache_lookup", "search"} {
		if !phases[want] {
			t.Errorf("solve span missing %q phase; got %v", want, phases)
		}
	}

	var ring struct {
		Traces []obs.TraceEntry `json:"traces"`
	}
	if code, raw := doJSON(t, "GET", ts.URL+"/v1/debug/traces", nil, &ring); code != http.StatusOK {
		t.Fatalf("/v1/debug/traces: %d %s", code, raw)
	}
	if len(ring.Traces) == 0 {
		t.Fatal("trace ring empty after traffic with a zero threshold")
	}
}
