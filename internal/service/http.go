package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"ilpec/internal/core"
	"ilpec/internal/domain"
	"ilpec/internal/store"
)

// maxBodyBytes bounds request bodies (DIMACS payloads included).
const maxBodyBytes = 8 << 20

// maxIdempotencyKey bounds the Idempotency-Key header so the per-session
// dedup window cannot be bloated by pathological keys.
const maxIdempotencyKey = 200

// NewHandler exposes a Service over HTTP/JSON:
//
//	POST   /v1/sessions              create a session (any registered domain)
//	GET    /v1/sessions              list session ids (?limit=&after= pages)
//	GET    /v1/sessions/{id}         session info (rehydrates if evicted)
//	DELETE /v1/sessions/{id}         close a session (memory and store)
//	POST   /v1/sessions/{id}/changes queue a change batch (domain wire form)
//	POST   /v1/sessions/{id}/solve   drain the batch in one EC pass
//	GET    /v1/sessions/{id}/flex?k= flexibility report (§5 audit)
//	GET    /v1/domains               registered domain names
//	GET    /v1/metrics               service counters
//	GET    /metrics                  Prometheus text exposition (?format=json)
//	GET    /v1/debug/traces          recent slow-request span trees
//	GET    /healthz                  liveness probe (the process answers)
//	GET    /readyz                   readiness probe (503 while draining,
//	                                 store-quarantined, or cluster-partitioned)
//
// Sessions default to the CNF domain (the legacy dimacs/clauses create
// shape); pass "domain" plus a domain-specific "problem" object to serve
// coloring, scheduling, partitioning, or a custom adapter. Errors carry a
// structured body: {"error": {"code": "...", "message": "..."}}.
//
// Every response carries an X-Request-ID header (the inbound one is
// propagated, or a fresh id is minted); ?trace=1 or an X-EC-Trace: 1
// header additionally returns the request's span tree in a top-level
// "trace" field. See the README's "EC session service" and
// "Observability" sections for walkthroughs.
func NewHandler(svc *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		handleCreate(svc, w, r)
	})
	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		handleSessionList(svc, w, r)
	})
	mux.HandleFunc("GET /v1/sessions/{id}", withSession(svc, func(sess *Session, w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, sess.Info())
	}))
	mux.HandleFunc("DELETE /v1/sessions/{id}", withSession(svc, func(sess *Session, w http.ResponseWriter, r *http.Request) {
		svc.CloseSession(sess.ID())
		writeJSON(w, http.StatusOK, map[string]any{"closed": sess.ID()})
	}))
	mux.HandleFunc("POST /v1/sessions/{id}/changes", withSession(svc, handleChanges))
	mux.HandleFunc("POST /v1/sessions/{id}/solve", withSession(svc, handleSolve))
	mux.HandleFunc("GET /v1/sessions/{id}/flex", withSession(svc, handleFlex))
	mux.HandleFunc("GET /v1/domains", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"domains": svc.Domains()})
	})
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Metrics())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		handleProm(svc, w, r)
	})
	mux.HandleFunc("GET /v1/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		handleDebugTraces(svc, w, r)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness (/healthz) says the process answers; readiness says it
		// should receive NEW work. Routers health-check this endpoint, so a
		// draining, quarantined, or cluster-partitioned node drops out of
		// rotation without being restarted.
		ok, reason := svc.Ready()
		if !ok {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reason": reason})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"ready": true})
	})
	return instrumentHandler(svc, mux)
}

// handleSessionList serves GET /v1/sessions with optional keyset paging:
// ?limit= bounds the page (default 1000, max 10000) and ?after= resumes
// after the given id; "next" in the response (present only on a
// truncated page) is the ?after= cursor of the following page. "live"
// and "degraded" are point-in-time service-wide summaries, not paged.
func handleSessionList(svc *Service, w http.ResponseWriter, r *http.Request) {
	limit := 0
	if raw := r.URL.Query().Get("limit"); raw != "" {
		parsed, err := strconv.Atoi(raw)
		if err != nil || parsed < 1 {
			writeError(w, http.StatusBadRequest, "bad_limit", fmt.Errorf("bad limit %q", raw))
			return
		}
		limit = parsed
	}
	page, next := svc.SessionPage(r.URL.Query().Get("after"), limit)
	out := map[string]any{
		"sessions": page,
		"live":     svc.LiveSessions(),
		"degraded": svc.DegradedSessions(),
	}
	if next != "" {
		out["next"] = next
	}
	writeJSON(w, http.StatusOK, out)
}

// ---- requests ------------------------------------------------------------

// createRequest describes a new session. Either set Domain plus the
// domain's Problem wire form, or use the legacy CNF shape (a DIMACS
// string or a clause list).
type createRequest struct {
	// ID optionally names the session instead of letting the service mint
	// an id. cmd/ecrouter injects it so a create can be consistent-hashed
	// onto its ring owner; direct clients may use it for idempotent
	// creates (a taken id answers 409 session_exists).
	ID string `json:"id,omitempty"`
	// Domain selects the problem domain (default "cnf").
	Domain string `json:"domain,omitempty"`
	// Problem is the domain-specific problem description.
	Problem json.RawMessage `json:"problem,omitempty"`
	// DIMACS/Vars/Clauses are the legacy CNF problem shape.
	DIMACS  string  `json:"dimacs,omitempty"`
	Vars    int     `json:"vars,omitempty"`
	Clauses [][]int `json:"clauses,omitempty"`
	// Strategy overrides the service default: "fast", "preserving", or
	// "replan".
	Strategy string `json:"strategy,omitempty"`
	// TimeLimitMS overrides the solver time limit for this session
	// (capped at the service default when one is configured).
	TimeLimitMS int64 `json:"time_limit_ms,omitempty"`
	// Workers overrides the in-solver parallel root searchers (capped at
	// the service's configured solver workers and the machine).
	Workers int `json:"workers,omitempty"`
}

type changesRequest struct {
	// Changes carry the wire form of the session domain's changes.
	Changes []json.RawMessage `json:"changes"`
}

// solveResponse is SolveResult plus the solution in wire form. Literals
// repeats the CNF rendering (committed variables as DIMACS literals) for
// backward compatibility.
type solveResponse struct {
	*SolveResult
	Domain   string `json:"domain"`
	Solution any    `json:"solution"`
	Literals []int  `json:"literals,omitempty"`
}

// ---- handlers ------------------------------------------------------------

func handleCreate(svc *Service, w http.ResponseWriter, r *http.Request) {
	var req createRequest
	if !readJSON(w, r, &req) {
		return
	}
	domainName := req.Domain
	if domainName == "" {
		domainName = "cnf"
	}
	d, ok := svc.DomainByName(domainName)
	if !ok {
		writeError(w, http.StatusBadRequest, "unknown_domain",
			fmt.Errorf("unknown domain %q (have %v)", domainName, svc.Domains()))
		return
	}
	var problem any
	var err error
	var legacy bool
	switch {
	case len(req.Problem) > 0:
		if req.DIMACS != "" || len(req.Clauses) > 0 {
			writeError(w, http.StatusBadRequest, "bad_problem",
				fmt.Errorf("give problem or the legacy dimacs/clauses fields, not both"))
			return
		}
		problem, err = d.ParseProblem(req.Problem)
	case domainName == "cnf":
		// Legacy CNF-only create shape (top-level dimacs/vars/clauses):
		// accepted for one more release, answered with a Deprecation
		// header and counted in the legacy_creates metric. Migrate to the
		// generic {"domain": "cnf", "problem": {...}} shape — see the
		// README's "Migrating off the legacy CNF create shape" note.
		problem, err = core.FormulaFromWire(req.DIMACS, req.Vars, req.Clauses)
		legacy = err == nil
	default:
		err = fmt.Errorf("domain %q needs a problem object", domainName)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_problem", err)
		return
	}
	var cfg SessionConfig
	if req.Strategy != "" {
		strat, err := ParseStrategy(req.Strategy)
		if err != nil {
			writeError(w, http.StatusBadRequest, "unknown_strategy", err)
			return
		}
		cfg.Strategy = &strat
	}
	if req.TimeLimitMS > 0 || req.Workers > 0 {
		// Client overrides are clamped so one request cannot escape the
		// operator's resource limits: the time limit never exceeds the
		// service default (when one is set) and workers never exceed the
		// configured solver parallelism or the machine.
		solve := svc.opts.Solve
		if req.TimeLimitMS > 0 {
			limit := time.Duration(req.TimeLimitMS) * time.Millisecond
			if solve.TimeLimit > 0 && limit > solve.TimeLimit {
				limit = solve.TimeLimit
			}
			solve.TimeLimit = limit
		}
		if req.Workers > 0 {
			solve.Workers = min(req.Workers, max(svc.opts.Solve.Workers, 1), runtime.GOMAXPROCS(0))
		}
		cfg.Solve = &solve
	}
	var sess *Session
	if req.ID != "" {
		sess, err = svc.CreateDomainSessionWithID(req.ID, domainName, problem, cfg)
	} else {
		sess, err = svc.CreateDomainSession(domainName, problem, cfg)
	}
	if err != nil {
		switch {
		case errors.Is(err, ErrSessionExists):
			writeError(w, http.StatusConflict, "session_exists", err)
		case errors.Is(err, ErrNotOwner):
			writeRetryableError(w, http.StatusServiceUnavailable, "not_owner", err)
		case store.IsTransient(err):
			writeRetryableError(w, http.StatusServiceUnavailable, "create_failed", err)
		default:
			writeError(w, http.StatusServiceUnavailable, "create_failed", err)
		}
		return
	}
	if legacy {
		svc.metrics.LegacyCreates.Add(1)
		// RFC 8594-style deprecation signal: the request succeeded, but
		// the shape it used is going away next release (see the README's
		// migration note for the replacement).
		w.Header().Set("Deprecation", "true")
	}
	writeJSON(w, http.StatusCreated, sess.Info())
}

func handleChanges(sess *Session, w http.ResponseWriter, r *http.Request) {
	var req changesRequest
	if !readJSON(w, r, &req) {
		return
	}
	if len(req.Changes) == 0 {
		writeError(w, http.StatusBadRequest, "empty_batch", fmt.Errorf("empty change batch"))
		return
	}
	d := sess.dom
	changes := make([]any, 0, len(req.Changes))
	for i, raw := range req.Changes {
		c, err := d.ParseChange(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_change", fmt.Errorf("change %d: %w", i, err))
			return
		}
		changes = append(changes, c)
	}
	// Idempotency-Key makes the batch replay-safe: a retry carrying the
	// same key (the ecclient sends one on every POST) is acknowledged
	// without being applied again, even when the first attempt's response
	// was lost — or when the retry lands on a failover successor, which
	// rebuilds the dedup window from the shared journal.
	key := r.Header.Get("Idempotency-Key")
	if len(key) > maxIdempotencyKey {
		writeError(w, http.StatusBadRequest, "bad_idempotency_key",
			fmt.Errorf("Idempotency-Key longer than %d bytes", maxIdempotencyKey))
		return
	}
	// The 202 is only sent after the batch is durably journaled (on a
	// store-backed service): an acknowledged change survives a crash.
	pending, duplicate, err := sess.QueueChangesKeyed(key, changes...)
	if err != nil {
		// Retryable conditions get retryable statuses: a full queue is the
		// client's backpressure signal (429), a transient store fault will
		// pass (503). Only real corruption — a change with no wire form, an
		// unencodable batch — stays a 500.
		switch {
		case errors.Is(err, ErrQueueFull):
			writeRetryableError(w, http.StatusTooManyRequests, "queue_full", err)
		case errors.Is(err, ErrNotOwner):
			// The session's lease moved to another node mid-request; the
			// router re-routes the client's retry to the new owner.
			writeRetryableError(w, http.StatusServiceUnavailable, "not_owner", err)
		case store.IsTransient(err):
			writeRetryableError(w, http.StatusServiceUnavailable, "store_unavailable", err)
		default:
			writeError(w, http.StatusInternalServerError, "queue_failed", err)
		}
		return
	}
	resp := map[string]any{"id": sess.ID(), "pending": pending}
	if duplicate {
		resp["duplicate"] = true
	}
	writeJSON(w, http.StatusAccepted, resp)
}

func handleSolve(sess *Session, w http.ResponseWriter, r *http.Request) {
	// The request context rides all the way into the kernel's abort
	// check: a disconnected client's solve stops instead of running to
	// completion while holding an executor slot — and the service's
	// RequestTimeout (when set) bounds how long any one request may hold
	// that slot.
	ctx := r.Context()
	if limit := sess.svc.opts.RequestTimeout; limit > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, limit)
		defer cancel()
	}
	res, err := sess.SolveContext(ctx)
	if err != nil {
		switch {
		case r.Context().Err() != nil:
			// The client is gone; the status code is for logs only.
			writeError(w, http.StatusRequestTimeout, "cancelled", err)
		case errors.Is(err, ErrOverloaded):
			writeRetryableError(w, http.StatusServiceUnavailable, "overloaded", err)
		case errors.Is(err, ErrNotOwner):
			writeRetryableError(w, http.StatusServiceUnavailable, "not_owner", err)
		case ctx.Err() != nil:
			// Our RequestTimeout fired, not the client: the service shed the
			// request to protect the pool. Retryable.
			writeRetryableError(w, http.StatusServiceUnavailable, "deadline_exceeded", err)
		case store.IsTransient(err):
			writeRetryableError(w, http.StatusServiceUnavailable, "store_unavailable", err)
		default:
			writeError(w, http.StatusConflict, "solve_failed", err)
		}
		return
	}
	d := sess.dom
	resp := solveResponse{
		SolveResult: res,
		Domain:      sess.Domain(),
		Solution:    d.Render(sess.problemRef(), res.Solution),
	}
	if res.Assignment != nil {
		if lits, ok := resp.Solution.([]int); ok {
			resp.Literals = lits
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func handleFlex(sess *Session, w http.ResponseWriter, r *http.Request) {
	k := 2
	if raw := r.URL.Query().Get("k"); raw != "" {
		parsed, err := strconv.Atoi(raw)
		if err != nil || parsed < 1 {
			writeError(w, http.StatusBadRequest, "bad_k", fmt.Errorf("bad k %q", raw))
			return
		}
		k = parsed
	}
	rep, err := sess.FlexReport(k)
	if err != nil {
		writeError(w, http.StatusConflict, "flex_failed", err)
		return
	}
	out := map[string]any{
		"id":       sess.ID(),
		"domain":   sess.Domain(),
		"k":        k,
		"total":    rep.Total,
		"flexible": rep.Flexible,
		"fraction": rep.Fraction(),
	}
	for name, v := range rep.Detail {
		out[name] = v
	}
	writeJSON(w, http.StatusOK, out)
}

// problemRef returns the live problem value for rendering (read-only).
func (s *Session) problemRef() any {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.problem
}

// ---- helpers -------------------------------------------------------------

func withSession(svc *Service, h func(*Session, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		sess, err := svc.LookupSession(id)
		if err != nil {
			switch {
			case errors.Is(err, ErrNotOwner):
				// Another node holds the session's lease: retryable, and the
				// router's retry lands on the owner.
				writeRetryableError(w, http.StatusServiceUnavailable, "not_owner", err)
			case store.IsTransient(err):
				writeRetryableError(w, http.StatusServiceUnavailable, "store_unavailable", err)
			default:
				writeError(w, http.StatusNotFound, "unknown_session", fmt.Errorf("unknown session %q", id))
			}
			return
		}
		h(sess, w, r)
	}
}

// ParseStrategy maps a strategy name (case-insensitive) to a Strategy;
// cmd/ecserve shares it for the -strategy flag.
func ParseStrategy(s string) (domain.Strategy, error) {
	return domain.ParseStrategy(s)
}

func readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away; nothing to do
}

// writeError emits the structured error body. code is a stable
// machine-readable slug; the message is human-readable.
func writeError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, map[string]any{
		"error": map[string]any{"code": code, "message": err.Error()},
	})
}

// retryAfterSeconds is the Retry-After hint on 429/503 responses. One
// second comfortably covers a full store retry cycle (default backoff
// sums to well under a second) and a solve draining from the pool.
const retryAfterSeconds = 1

// writeRetryableError is writeError plus the Retry-After header: the
// condition is expected to pass, so a well-behaved client should back off
// and retry rather than give up.
func writeRetryableError(w http.ResponseWriter, status int, code string, err error) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	writeError(w, status, code, err)
}
