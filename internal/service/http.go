package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"ilpec/internal/cnf"
	"ilpec/internal/core"
)

// maxBodyBytes bounds request bodies (DIMACS payloads included).
const maxBodyBytes = 8 << 20

// NewHandler exposes a Service over HTTP/JSON:
//
//	POST   /v1/sessions              create a session (DIMACS or clause list)
//	GET    /v1/sessions              list live session ids
//	GET    /v1/sessions/{id}         session info
//	DELETE /v1/sessions/{id}         close a session
//	POST   /v1/sessions/{id}/changes queue a change batch
//	POST   /v1/sessions/{id}/solve   drain the batch in one EC pass
//	GET    /v1/sessions/{id}/flex?k= flexibility report (§5 audit)
//	GET    /v1/metrics               service counters
//	GET    /healthz                  liveness probe
//
// See the README's "EC session service" section for a curl walkthrough.
func NewHandler(svc *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		handleCreate(svc, w, r)
	})
	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"sessions": svc.Sessions()})
	})
	mux.HandleFunc("GET /v1/sessions/{id}", withSession(svc, func(sess *Session, w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, sess.Info())
	}))
	mux.HandleFunc("DELETE /v1/sessions/{id}", withSession(svc, func(sess *Session, w http.ResponseWriter, r *http.Request) {
		svc.CloseSession(sess.ID())
		writeJSON(w, http.StatusOK, map[string]any{"closed": sess.ID()})
	}))
	mux.HandleFunc("POST /v1/sessions/{id}/changes", withSession(svc, handleChanges))
	mux.HandleFunc("POST /v1/sessions/{id}/solve", withSession(svc, handleSolve))
	mux.HandleFunc("GET /v1/sessions/{id}/flex", withSession(svc, handleFlex))
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Metrics())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	return mux
}

// ---- requests ------------------------------------------------------------

// createRequest describes a new session. The formula arrives either as a
// DIMACS CNF string or as a clause list (plus an optional variable count
// for trailing unused variables).
type createRequest struct {
	DIMACS  string  `json:"dimacs,omitempty"`
	Vars    int     `json:"vars,omitempty"`
	Clauses [][]int `json:"clauses,omitempty"`
	// Strategy overrides the service default: "fast", "preserving", or
	// "replan".
	Strategy string `json:"strategy,omitempty"`
	// TimeLimitMS overrides the solver time limit for this session
	// (capped at the service default when one is configured).
	TimeLimitMS int64 `json:"time_limit_ms,omitempty"`
	// Workers overrides the in-solver parallel root searchers (capped at
	// the service's configured solver workers and the machine).
	Workers int `json:"workers,omitempty"`
}

// changeJSON is the wire form of a core.Change.
type changeJSON struct {
	// Kind is "add-clause", "remove-clause", "add-variable", or
	// "remove-variable".
	Kind  string `json:"kind"`
	Lits  []int  `json:"lits,omitempty"`
	Index int    `json:"index,omitempty"`
	Var   int    `json:"var,omitempty"`
}

type changesRequest struct {
	Changes []changeJSON `json:"changes"`
}

// solveResponse is SolveResult plus the assignment in wire form: the
// committed variables as DIMACS literals (don't-cares omitted).
type solveResponse struct {
	*SolveResult
	Literals []int `json:"literals"`
}

// ---- handlers ------------------------------------------------------------

func handleCreate(svc *Service, w http.ResponseWriter, r *http.Request) {
	var req createRequest
	if !readJSON(w, r, &req) {
		return
	}
	f, err := formulaFromRequest(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var cfg SessionConfig
	if req.Strategy != "" {
		strat, err := ParseStrategy(req.Strategy)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		cfg.Strategy = &strat
	}
	if req.TimeLimitMS > 0 || req.Workers > 0 {
		// Client overrides are clamped so one request cannot escape the
		// operator's resource limits: the time limit never exceeds the
		// service default (when one is set) and workers never exceed the
		// configured solver parallelism or the machine.
		solve := svc.opts.Solve
		if req.TimeLimitMS > 0 {
			limit := time.Duration(req.TimeLimitMS) * time.Millisecond
			if solve.TimeLimit > 0 && limit > solve.TimeLimit {
				limit = solve.TimeLimit
			}
			solve.TimeLimit = limit
		}
		if req.Workers > 0 {
			solve.Workers = min(req.Workers, max(svc.opts.Solve.Workers, 1), runtime.GOMAXPROCS(0))
		}
		cfg.Solve = &solve
	}
	sess, err := svc.CreateSession(f, cfg)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusCreated, sess.Info())
}

func handleChanges(sess *Session, w http.ResponseWriter, r *http.Request) {
	var req changesRequest
	if !readJSON(w, r, &req) {
		return
	}
	if len(req.Changes) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty change batch"))
		return
	}
	changes := make([]core.Change, 0, len(req.Changes))
	for i, cj := range req.Changes {
		c, err := changeFromJSON(cj)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("change %d: %w", i, err))
			return
		}
		changes = append(changes, c)
	}
	pending := sess.Queue(changes...)
	writeJSON(w, http.StatusAccepted, map[string]any{"id": sess.ID(), "pending": pending})
}

func handleSolve(sess *Session, w http.ResponseWriter, r *http.Request) {
	res, err := sess.Solve()
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, solveResponse{
		SolveResult: res,
		Literals:    assignmentLits(res.Assignment),
	})
}

func handleFlex(sess *Session, w http.ResponseWriter, r *http.Request) {
	k := 2
	if raw := r.URL.Query().Get("k"); raw != "" {
		parsed, err := strconv.Atoi(raw)
		if err != nil || parsed < 1 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad k %q", raw))
			return
		}
		k = parsed
	}
	rep, err := sess.FlexReport(k)
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":          sess.ID(),
		"k":           k,
		"total":       rep.Total,
		"k_satisfied": rep.KSatisfied,
		"supported":   rep.Supported,
		"flexible":    rep.Flexible(),
		"fraction":    rep.FlexibleFraction(),
	})
}

// ---- helpers -------------------------------------------------------------

func withSession(svc *Service, h func(*Session, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		sess, ok := svc.Session(id)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown session %q", id))
			return
		}
		h(sess, w, r)
	}
}

func formulaFromRequest(req createRequest) (*cnf.Formula, error) {
	if req.DIMACS != "" {
		if len(req.Clauses) > 0 {
			return nil, fmt.Errorf("give dimacs or clauses, not both")
		}
		f, err := cnf.ParseDIMACS(strings.NewReader(req.DIMACS))
		if err != nil {
			return nil, fmt.Errorf("bad dimacs: %w", err)
		}
		return f, nil
	}
	if len(req.Clauses) == 0 {
		return nil, fmt.Errorf("missing formula: give dimacs or clauses")
	}
	f := cnf.New(req.Vars)
	for i, raw := range req.Clauses {
		if len(raw) == 0 {
			return nil, fmt.Errorf("clause %d is empty", i)
		}
		cl := make(cnf.Clause, len(raw))
		for j, l := range raw {
			if l == 0 {
				return nil, fmt.Errorf("clause %d has a zero literal", i)
			}
			cl[j] = cnf.Lit(l)
		}
		f.AddClause(cl)
	}
	return f, nil
}

// ParseStrategy maps a strategy name (case-insensitive) to core.Strategy;
// cmd/ecserve shares it for the -strategy flag.
func ParseStrategy(s string) (core.Strategy, error) {
	switch strings.ToLower(s) {
	case "fast":
		return core.FastEC, nil
	case "preserving", "preserve":
		return core.PreservingEC, nil
	case "replan":
		return core.Replan, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q (want fast, preserving, or replan)", s)
	}
}

func changeFromJSON(cj changeJSON) (core.Change, error) {
	switch strings.ToLower(cj.Kind) {
	case "add-clause":
		if len(cj.Lits) == 0 {
			return core.Change{}, fmt.Errorf("add-clause needs lits")
		}
		for _, l := range cj.Lits {
			if l == 0 {
				return core.Change{}, fmt.Errorf("add-clause has a zero literal")
			}
		}
		return core.NewClause(cj.Lits...), nil
	case "remove-clause":
		return core.DropClause(cj.Index), nil
	case "add-variable":
		return core.GrowVariable(), nil
	case "remove-variable":
		return core.EliminateVariable(cj.Var), nil
	default:
		return core.Change{}, fmt.Errorf("unknown kind %q", cj.Kind)
	}
}

// assignmentLits renders the committed variables as DIMACS literals.
func assignmentLits(a cnf.Assignment) []int {
	lits := make([]int, 0, a.AssignedCount())
	for v := 1; v <= a.NumVars(); v++ {
		switch a.Get(v) {
		case cnf.True:
			lits = append(lits, v)
		case cnf.False:
			lits = append(lits, -v)
		}
	}
	return lits
}

func readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away; nothing to do
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]any{"error": err.Error()})
}
