package service

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// pool is the worker-pool executor: a fixed set of goroutines that run
// solve jobs on behalf of sessions. It bounds the number of concurrent
// branch-and-bound searches regardless of how many sessions (or HTTP
// requests) are in flight; each solve may itself use ilp.Options.Workers
// goroutines internally, so the effective parallelism budget is
// pool workers × solver workers.
type pool struct {
	jobs chan poolJob
	quit chan struct{}
	wg   sync.WaitGroup
	once sync.Once

	// cap bounds admission: at most `cap` jobs may be running-or-queued at
	// once (workers + backlog); further run calls fail fast with
	// ErrOverloaded instead of queueing unboundedly. cap <= 0 disables the
	// bound. inflight counts admitted jobs.
	cap      int64
	inflight atomic.Int64
}

type poolJob struct {
	run  func()
	done chan struct{}
}

// newPool starts a pool of `workers` goroutines admitting at most
// workers+backlog concurrent run calls (backlog < 0 = unbounded).
func newPool(workers, backlog int) *pool {
	if workers < 1 {
		workers = 1
	}
	p := &pool{
		jobs: make(chan poolJob),
		quit: make(chan struct{}),
	}
	if backlog >= 0 {
		p.cap = int64(workers + backlog)
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *pool) worker() {
	defer p.wg.Done()
	for {
		select {
		case job := <-p.jobs:
			job.run()
			close(job.done)
		case <-p.quit:
			return
		}
	}
}

// run submits f and blocks until a worker has executed it. It fails when
// the pool has been closed, when the backlog bound is exceeded
// (ErrOverloaded — shed load instead of building an unbounded queue), or
// when ctx is cancelled BEFORE a worker picks the job up — a
// disconnected client stops holding a place in the queue. Once running,
// f is expected to observe ctx itself (the solver kernel checks
// Options.Context), so cancellation also frees the worker slot promptly.
func (p *pool) run(ctx context.Context, f func()) error {
	if p.cap > 0 {
		if p.inflight.Add(1) > p.cap {
			p.inflight.Add(-1)
			return ErrOverloaded
		}
		defer p.inflight.Add(-1)
	}
	job := poolJob{run: f, done: make(chan struct{})}
	select {
	case p.jobs <- job:
		<-job.done
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-p.quit:
		return fmt.Errorf("service: executor closed")
	}
}

// close stops the workers after their current jobs finish. Pending run
// calls that have not been picked up fail.
func (p *pool) close() {
	p.once.Do(func() { close(p.quit) })
	p.wg.Wait()
}
