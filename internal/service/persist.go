package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"ilpec/internal/cluster"
	"ilpec/internal/domain"
	"ilpec/internal/ilp"
	"ilpec/internal/store"
)

// This file wires the durable session store (internal/store) through the
// session lifecycle. The invariant it maintains: the store is ALWAYS a
// faithful replica of every session, because each state transition is
// journaled before the in-memory commit —
//
//   - session creation writes the initial snapshot (problem, strategy,
//     seq 0);
//   - QueueChanges appends a "changes" record with the wire-encoded batch;
//   - a successful solve appends a "solve" record with the committed
//     solution (all pending changes fold into the problem at that point);
//   - a failed solve appends a "discard" record (the batch is dropped, the
//     session keeps its previous state), so replay tracks the in-memory
//     outcome either way.
//
// Snapshots are therefore pure compaction: after SnapshotEvery journal
// records the full state is rewritten and the journal truncated. Eviction
// and TTL expiry only cut a final snapshot and drop the session from
// memory; rehydration loads the snapshot, replays the journal tail
// through the domain codecs, and re-registers the session with its
// solution as warm-start material.

// hasStore reports whether this service persists sessions.
func (s *Service) hasStore() bool { return s.opts.Store != nil }

// touch marks a session as recently used (LRU / TTL bookkeeping).
func (s *Service) touch(sess *Session) {
	sess.lastUsed.Store(time.Now().UnixNano())
}

// ---- wire encoding --------------------------------------------------------

// renderChanges wire-encodes a change batch through the domain codec.
func renderChanges(d domain.Domain, changes []any) ([]json.RawMessage, error) {
	if len(changes) == 0 {
		return nil, nil
	}
	out := make([]json.RawMessage, len(changes))
	for i, c := range changes {
		wire := d.RenderChange(c)
		if wire == nil {
			return nil, fmt.Errorf("service: change %d (%T) has no wire form in domain %q", i, c, d.Name())
		}
		raw, err := json.Marshal(wire)
		if err != nil {
			return nil, fmt.Errorf("service: encode change %d: %w", i, err)
		}
		out[i] = raw
	}
	return out, nil
}

// parseChanges decodes a journaled change batch.
func parseChanges(d domain.Domain, raws []json.RawMessage) ([]any, error) {
	if len(raws) == 0 {
		return nil, nil
	}
	out := make([]any, len(raws))
	for i, raw := range raws {
		c, err := d.ParseChange(raw)
		if err != nil {
			return nil, fmt.Errorf("service: journaled change %d: %w", i, err)
		}
		out[i] = c
	}
	return out, nil
}

// snapshotLocked captures the session's full state in wire form. Caller
// holds s.mu (or exclusively owns the session).
func (s *Session) snapshotLocked() (store.Snapshot, error) {
	wire := s.dom.RenderProblem(s.problem)
	if wire == nil {
		return store.Snapshot{}, fmt.Errorf("service: problem of domain %q has no wire form", s.dom.Name())
	}
	problem, err := json.Marshal(wire)
	if err != nil {
		return store.Snapshot{}, fmt.Errorf("service: encode problem: %w", err)
	}
	snap := store.Snapshot{
		SessionID:     s.id,
		Domain:        s.dom.Name(),
		Strategy:      s.strategy.String(),
		Problem:       problem,
		Seq:           s.seq,
		ChangesQueued: s.stats.changesQueued,
		Batches:       s.stats.batches,
		Solves:        s.stats.solves,
	}
	if s.solution != nil {
		raw, err := json.Marshal(s.dom.Render(s.problem, s.solution))
		if err != nil {
			return store.Snapshot{}, fmt.Errorf("service: encode solution: %w", err)
		}
		snap.Solution = raw
	}
	if snap.Pending, err = renderChanges(s.dom, s.pending); err != nil {
		return store.Snapshot{}, err
	}
	if len(s.recentBatches) > 0 {
		snap.RecentBatches = append([]string(nil), s.recentBatches...)
	}
	return snap, nil
}

// persistSnapshotLocked writes a compaction snapshot, retrying transient
// faults under the service's backoff policy. Failures are never silent:
// they count in SnapshotFailures and feed the session's quarantine
// heuristic. Caller holds s.mu.
func (s *Session) persistSnapshotLocked() error {
	if !s.svc.hasStore() {
		return nil
	}
	if s.fenced.Load() {
		// A fenced session's durable state belongs to the new owner;
		// writing a snapshot from this stale copy would clobber it
		// (WriteSnapshot is last-write-wins, not CAS-guarded).
		return nil
	}
	snap, err := s.snapshotLocked()
	if err != nil {
		return err
	}
	if err := s.svc.retryStore(func() error { return s.svc.opts.Store.WriteSnapshot(snap) }); err != nil {
		s.svc.metrics.SnapshotFailures.Add(1)
		if store.IsTransient(err) {
			s.noteStoreFailureLocked()
		}
		return err
	}
	s.tailLen = 0
	s.forceCompact = false
	s.svc.metrics.SnapshotsWritten.Add(1)
	return nil
}

// appendLocked journals one record. It must NOT snapshot: it runs
// before the in-memory commit of the operation it describes, so a
// snapshot here would capture mid-transition state while compacting the
// record away. Compaction happens via maybeCompactLocked once memory
// has caught up. Caller holds s.mu.
//
// Failure handling: transient store faults are retried with backoff; if
// retries exhaust, the failure feeds the quarantine heuristic. Once the
// session is quarantined (here or before), the append is ABSORBED — the
// sequence number still advances, marking how far the in-memory state
// has moved past the stale journal, so the heal snapshot supersedes
// every stale record — and the request succeeds memory-only. Below the
// quarantine threshold the (transient) error is returned, mapping to a
// retryable 503. Caller holds s.mu. ctx only feeds the trace/metrics
// layer (the journal_append phase); it does not cancel the append.
func (s *Session) appendLocked(ctx context.Context, rec store.Record) error {
	if !s.svc.hasStore() {
		return nil
	}
	if s.fenced.Load() {
		return notOwnerErr(s.id, "")
	}
	// Cluster mode: prove ownership before writing (and renew the lease
	// when it nears expiry — "renew on commit"). A definitive loss fences
	// the session BEFORE anything lands in the journal, so the client's
	// retry at the new owner is not a double commit.
	if err := s.ensureLeaseLocked(); err != nil {
		return err
	}
	if s.degraded.Load() {
		s.seq++
		return nil
	}
	rec.Seq = s.seq + 1
	appendStart := time.Now()
	err := s.svc.retryStore(func() error { return s.svc.opts.Store.Append(s.id, rec) })
	s.svc.sobs.phase(ctx, "journal_append", time.Since(appendStart))
	if err != nil && rec.Seq == s.ackLostSeq && errors.Is(err, store.ErrSeqConflict) {
		// A previously failed append for this very seq actually landed — its
		// acknowledgement was lost (failed fsync, or an injected fault after
		// the write). The slot is durably occupied, and only this session
		// writes it, so accept the append; forceCompact schedules a prompt
		// snapshot so the durable record is superseded even if its payload
		// predates this retry. In cluster mode the "only this session
		// writes it" premise holds because appends happen under a valid
		// lease: a peer can only write this journal after stealing the
		// lease, which the check above turns into a fence first.
		s.forceCompact = true
		err = nil
	}
	if err != nil && errors.Is(err, store.ErrSeqConflict) && s.svc.clustered() {
		// CAS fence: the journal advanced under us, so another node owns
		// this session now (it rehydrated and appended after winning the
		// lease — the clock-based check above can lag reality). Nothing of
		// this operation landed; refuse it and retire this stale copy.
		s.fenceLocked()
		return notOwnerErr(s.id, "")
	}
	if err != nil {
		if store.IsTransient(err) {
			// The attempt may or may not have landed (retryStore cannot always
			// tell); remember the seq so a later retry can resolve an
			// ErrSeqConflict for it as "already durable".
			s.ackLostSeq = rec.Seq
			if s.noteStoreFailureLocked() {
				s.seq++ // quarantined: absorb and serve memory-only
				return nil
			}
		}
		return fmt.Errorf("service: journal append: %w", err)
	}
	s.ackLostSeq = 0
	s.persistFails = 0
	s.seq = rec.Seq
	s.tailLen++
	s.svc.metrics.JournalAppends.Add(1)
	return nil
}

// maybeCompactLocked cuts the compaction snapshot once the journal tail
// reaches SnapshotEvery. Callers invoke it only AFTER the in-memory
// state reflects every journaled record, so the snapshot supersedes the
// records it drops. The request is never failed here — the journal
// already holds the state, so a failed compaction only defers truncation
// — but the failure is counted (SnapshotFailures) and feeds the
// quarantine heuristic inside persistSnapshotLocked. Caller holds
// s.mu.
func (s *Session) maybeCompactLocked() {
	if !s.svc.hasStore() || s.degraded.Load() {
		return
	}
	if !s.forceCompact && s.tailLen < s.svc.opts.SnapshotEvery {
		return
	}
	s.persistSnapshotLocked() //nolint:errcheck // deferred, not dropped: counted + quarantine-fed above
}

// persistQueueLocked journals a queued change batch (before it enters the
// in-memory pending queue). key is the batch's idempotency key ("" when
// the client sent none); journaling it lets a rehydration — here or on a
// failover successor — rebuild the dedup window from the tail.
//
//ecvet:walhelper
func (s *Session) persistQueueLocked(ctx context.Context, key string, changes []any) error {
	if !s.svc.hasStore() {
		return nil
	}
	wire, err := renderChanges(s.dom, changes)
	if err != nil {
		return err
	}
	return s.appendLocked(ctx, store.Record{Kind: store.KindChanges, Changes: wire, BatchID: key})
}

// persistSolveLocked journals a committed solve (problem = previous
// problem ⊕ all pending changes, solution = sol) before the in-memory
// commit.
//
//ecvet:walhelper
func (s *Session) persistSolveLocked(ctx context.Context, problem, sol any, batched int) error {
	if !s.svc.hasStore() {
		return nil
	}
	raw, err := json.Marshal(s.dom.Render(problem, sol))
	if err != nil {
		return fmt.Errorf("service: encode solution: %w", err)
	}
	return s.appendLocked(ctx, store.Record{Kind: store.KindSolve, Solution: raw, Batched: batched})
}

// persistDiscardLocked journals a dropped batch (best effort — the same
// store trouble that fails a solve append will usually fail this too, and
// replay treats a trailing unresolved batch as pending, which a later
// solve or discard record supersedes).
//
//ecvet:walhelper
func (s *Session) persistDiscardLocked(ctx context.Context) {
	if !s.svc.hasStore() {
		return
	}
	// Memory already reflects the discard (the batch was drained at solve
	// entry and not restored), so compaction is safe right away.
	if s.appendLocked(ctx, store.Record{Kind: store.KindDiscard}) == nil {
		s.maybeCompactLocked()
	}
}

// ---- recovery and rehydration --------------------------------------------

// recover scans the store at startup: every persisted session becomes
// immediately visible (Sessions, GET /v1/sessions) and touchable; the
// heavy rehydration work happens lazily on first touch. The id counter
// advances past recovered ids so new sessions never collide.
func (s *Service) recoverSessions() {
	ids, err := s.opts.Store.List()
	if err != nil {
		return // an unreadable store serves as empty; writes will surface the fault
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	recovered := 0
	for _, id := range ids {
		if cluster.IsMetaID(id) {
			continue // heartbeat/lease/fleet-cache bookkeeping, not a session
		}
		s.persisted[id] = true
		recovered++
		if n, ok := s.ownNumericID(id); ok && n > s.nextID {
			s.nextID = n
		}
	}
	s.metrics.Recoveries.Add(int64(recovered))
}

// numericID extracts k from the service's "s<k>" id scheme.
func numericID(id string) (int64, bool) {
	if !strings.HasPrefix(id, "s") {
		return 0, false
	}
	n, err := strconv.ParseInt(id[1:], 10, 64)
	return n, err == nil
}

// ownNumericID extracts k from this service's auto-id scheme — "s<k>"
// standalone, "<node>-s<k>" in cluster mode (a restarted node must
// advance past its own prior ids; peers' counters are not ours to bump).
func (s *Service) ownNumericID(id string) (int64, bool) {
	if s.clustered() {
		rest, ok := strings.CutPrefix(id, s.opts.Cluster.ID()+"-")
		if !ok {
			return 0, false
		}
		return numericID(rest)
	}
	return numericID(id)
}

// rehydrate reconstructs a session from its snapshot and journal tail.
// It does NOT register the session; Session(id) does that under the
// service lock.
func (s *Service) rehydrate(id string) (*Session, error) {
	snap, tail, err := s.opts.Store.Load(id)
	if err != nil {
		return nil, err
	}
	d, ok := s.DomainByName(snap.Domain)
	if !ok {
		return nil, fmt.Errorf("service: session %s has unknown domain %q", id, snap.Domain)
	}
	strategy, err := domain.ParseStrategy(snap.Strategy)
	if err != nil {
		return nil, fmt.Errorf("service: session %s: %w", id, err)
	}
	problem, err := d.ParseProblem(snap.Problem)
	if err != nil {
		return nil, fmt.Errorf("service: session %s problem: %w", id, err)
	}
	var solution any
	if len(snap.Solution) > 0 {
		if solution, err = d.ParseSolution(problem, snap.Solution); err != nil {
			return nil, fmt.Errorf("service: session %s solution: %w", id, err)
		}
	}
	pending, err := parseChanges(d, snap.Pending)
	if err != nil {
		return nil, fmt.Errorf("service: session %s: %w", id, err)
	}

	// Replay the journal tail: changes queue up, a solve folds the queue
	// into the problem and installs the journaled solution, a discard
	// drops the queue. Batch idempotency keys accumulate from the snapshot
	// and the tail, so a client retry that lands after a failover still
	// dedupes against the batch the previous owner committed.
	seq := snap.Seq
	recentBatches := append([]string(nil), snap.RecentBatches...)
	for _, rec := range tail {
		seq = rec.Seq
		switch rec.Kind {
		case store.KindChanges:
			batch, err := parseChanges(d, rec.Changes)
			if err != nil {
				return nil, fmt.Errorf("service: session %s seq %d: %w", id, rec.Seq, err)
			}
			pending = append(pending, batch...)
			recentBatches = appendBatchKey(recentBatches, rec.BatchID)
		case store.KindSolve:
			if len(pending) > 0 {
				if problem, err = d.ApplyChanges(problem, pending); err != nil {
					return nil, fmt.Errorf("service: session %s seq %d replay: %w", id, rec.Seq, err)
				}
			}
			if solution, err = d.ParseSolution(problem, rec.Solution); err != nil {
				return nil, fmt.Errorf("service: session %s seq %d solution: %w", id, rec.Seq, err)
			}
			pending = nil
		case store.KindDiscard:
			pending = nil
		default:
			return nil, fmt.Errorf("service: session %s seq %d has unknown record kind %q", id, rec.Seq, rec.Kind)
		}
	}

	sess := &Session{
		id:            id,
		svc:           s,
		dom:           d,
		problem:       problem,
		solution:      solution,
		pending:       pending,
		strategy:      strategy,
		solve:         s.opts.Solve,
		cuts:          ilp.NewCutPool(),
		seq:           seq,
		tailLen:       len(tail),
		recentBatches: recentBatches,
		stats: sessionStats{
			changesQueued: snap.ChangesQueued,
			batches:       snap.Batches,
			solves:        snap.Solves,
		},
	}
	// The persisted solution warm-starts this session's next re-solve AND
	// any other session solving the same problem.
	if solution != nil {
		s.storeIncumbent(sess.problemKey(problem), d, solution)
	}
	return sess, nil
}

// ---- eviction and expiry --------------------------------------------------

// enforceLiveLimit evicts least-recently-used sessions until the live
// count is within MaxLiveSessions. Only meaningful with a store: the
// journal already replicates each victim, so eviction cuts a final
// compaction snapshot and frees the memory; the next touch rehydrates.
func (s *Service) enforceLiveLimit() {
	if !s.hasStore() || s.opts.MaxLiveSessions <= 0 {
		return
	}
	for {
		s.mu.Lock()
		if s.closed || len(s.sessions) <= s.opts.MaxLiveSessions {
			s.mu.Unlock()
			return
		}
		victim := s.lruLocked()
		if victim == nil {
			s.mu.Unlock()
			return
		}
		s.beginDetachLocked(victim)
		s.mu.Unlock()
		s.finishDetach(victim, true)
		s.metrics.Evictions.Add(1)
	}
}

// beginDetachLocked removes a session from the live map and registers it
// as mid-eviction, so concurrent lookups wait instead of rehydrating a
// state the detaching instance is still appending to. Caller holds s.mu.
func (s *Service) beginDetachLocked(sess *Session) {
	delete(s.sessions, sess.id)
	s.evicting[sess.id] = make(chan struct{})
}

// finishDetach drains the victim's in-flight operations (retire blocks
// on its lock), cuts the final snapshot, and only THEN publishes the id
// as persisted and releases waiting lookups — the order that makes a
// rehydration see every journal record the detached instance wrote.
func (s *Service) finishDetach(sess *Session, keepPersisted bool) {
	s.retire(sess)
	s.mu.Lock()
	if keepPersisted && !s.closed {
		s.persisted[sess.id] = true
	}
	ch := s.evicting[sess.id]
	delete(s.evicting, sess.id)
	s.mu.Unlock()
	if ch != nil {
		close(ch)
	}
}

// lruLocked returns the live session with the oldest last-use stamp.
// Quarantined sessions are never victims: their memory is the only
// up-to-date copy, so evicting one would silently lose accepted changes.
// Caller holds s.mu.
func (s *Service) lruLocked() *Session {
	var victim *Session
	var oldest int64
	for _, sess := range s.sessions {
		if sess.degraded.Load() {
			continue
		}
		if t := sess.lastUsed.Load(); victim == nil || t < oldest {
			victim, oldest = sess, t
		}
	}
	return victim
}

// retire detaches a session from memory: a final compaction snapshot and
// the closed mark that sends stale pointers back to Service.Session for
// the rehydrated instance. The snapshot does not gate retirement — for a
// healthy session the journal is authoritative, and for a quarantined one
// at shutdown this is the last-chance flush — but failures are counted
// (SnapshotFailures inside persistSnapshotLocked), never silent.
func (s *Service) retire(sess *Session) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.fenced.Load() {
		// The new owner's copy is authoritative; persisting (or healing)
		// from here would clobber it.
		sess.closed = true
		return
	}
	if s.clustered() {
		// Re-prove ownership before the final write: a slow drain can
		// outlive the lease TTL, and a peer that took the session over in
		// the meantime must not have its state clobbered by our snapshot
		// (WriteSnapshot is last-write-wins, not CAS). On any doubt —
		// stolen, or transient store trouble past an expired lease — skip
		// the snapshot; the journal already holds every committed record.
		if err := sess.ensureLeaseLocked(); err != nil {
			sess.closed = true
			return
		}
	}
	if sess.degraded.Load() {
		// Last-chance heal: if the store has recovered, one full snapshot at
		// the session's logical seq makes the replica exact again.
		sess.healLocked()
	} else {
		sess.persistSnapshotLocked() //nolint:errcheck // counted above; journal holds the state
	}
	// Hand the lease back so a successor node need not wait out the TTL.
	sess.releaseLeaseLocked()
	sess.closed = true
}

// sweepLoop runs the TTL sweep until Close.
func (s *Service) sweepLoop() {
	defer close(s.sweepDone)
	interval := s.opts.SessionTTL / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > time.Minute {
		interval = time.Minute
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.sweepStop:
			return
		case <-ticker.C:
			s.sweepExpired(time.Now())
		}
	}
}

// sweepExpired snapshots-and-closes sessions idle past SessionTTL. With a
// store the session leaves memory but stays durable (listed, rehydratable
// on touch); without one it is closed outright — either way the memory is
// reclaimed rather than leaked.
func (s *Service) sweepExpired(now time.Time) {
	ttl := s.opts.SessionTTL
	if ttl <= 0 {
		return
	}
	cutoff := now.Add(-ttl).UnixNano()
	s.mu.Lock()
	var victims []*Session
	for _, sess := range s.sessions {
		// Quarantined sessions are immune from expiry: their durable copy is
		// stale, so detaching them would lose state. The probe loop heals
		// them first; until then they stay resident.
		if sess.degraded.Load() {
			continue
		}
		if sess.lastUsed.Load() <= cutoff {
			victims = append(victims, sess)
		}
	}
	for _, sess := range victims {
		s.beginDetachLocked(sess)
	}
	s.mu.Unlock()
	for _, sess := range victims {
		s.finishDetach(sess, s.hasStore())
		if s.hasStore() {
			s.metrics.TTLExpirations.Add(1)
		} else {
			s.metrics.SessionsClosed.Add(1)
		}
	}
}
