package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ilpec/internal/fault"
	"ilpec/internal/store"
)

// This file is the chaos suite: deterministic seed-driven fault plans
// (internal/fault) are wired into the store under a live service, the
// service is driven through the standard session script by a retrying
// client, and the outcome is differential-checked against an
// uninterrupted control run. The contract under test (the issue's
// acceptance bar): a faulted run either converges to the control's exact
// state after recovery, or is VISIBLY quarantined — it never silently
// diverges.

// chaosRetry is the retry policy the chaos services run under: tight so a
// full client-visible failure needs only two injected faults in a row.
func chaosRetry() RetryPolicy {
	return RetryPolicy{Attempts: 2, Base: time.Millisecond, Max: 2 * time.Millisecond}
}

// chaosClientRetries bounds the test client's own retry loop. Transient
// 503-class failures surface after QuarantineAfter at most twice per op
// (then the quarantine absorbs everything), so this never exhausts.
const chaosClientRetries = 10

// retryQueue queues changes like a well-behaved client: retry while the
// failure is transient (the HTTP layer would have said 503 + Retry-After).
func retryQueue(t *testing.T, sess *Session, changes []any) {
	t.Helper()
	var err error
	for i := 0; i < chaosClientRetries; i++ {
		if _, err = sess.QueueChanges(changes...); err == nil {
			return
		}
		if !store.IsTransient(err) {
			t.Fatalf("queue failed non-transiently: %v", err)
		}
	}
	t.Fatalf("queue never succeeded after %d retries: %v", chaosClientRetries, err)
}

// retrySolve solves with client retries. A solve that fails on a store
// fault discards the drained batch (documented session semantics), so the
// client restores it before retrying.
func retrySolve(t *testing.T, sess *Session, requeue []any) *SolveResult {
	t.Helper()
	var err error
	for i := 0; i < chaosClientRetries; i++ {
		var res *SolveResult
		if res, err = sess.Solve(); err == nil {
			return res
		}
		if !store.IsTransient(err) {
			t.Fatalf("solve failed non-transiently: %v", err)
		}
		if len(requeue) > 0 {
			retryQueue(t, sess, requeue)
		}
	}
	t.Fatalf("solve never succeeded after %d retries: %v", chaosClientRetries, err)
	return nil
}

// chaosPlan builds the per-seed fault schedule. Probabilities vary with
// the seed so the 8 seeds explore different fault densities; every rule
// is probabilistic, so the nth-operation trigger stream is fully
// determined by the seed. Torn-write faults are exercised by the
// crash-style tests (TestCrashRecoveryDifferential, the store suite) —
// a live server that keeps appending after a torn write is not a
// scenario the journal's torn-TAIL repair claims to cover.
func chaosPlan(seed int64) *fault.Plan {
	p := 0.15 + 0.05*float64(seed%4)
	return fault.NewPlan(seed,
		fault.Rule{Op: "append", Kind: fault.KindFsync, P: 0.10},
		fault.Rule{Op: "append", Kind: fault.KindENOSPC, P: 0.10},
		fault.Rule{Op: "append", Kind: fault.KindError, P: p},
		fault.Rule{Op: "snapshot", Kind: fault.KindENOSPC, P: 0.25},
		fault.Rule{Op: "snapshot", Kind: fault.KindError, P: p},
	)
}

// TestChaosDifferential is the tentpole acceptance drill: 8 fault-plan
// seeds × all 4 domains. Each faulted, file-backed run is compared live
// against an uninterrupted in-memory control, then crash-recovered from
// the (repaired, fault-free) store and compared again.
func TestChaosDifferential(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	for _, seed := range seeds {
		for _, name := range allDomains {
			t.Run(fmt.Sprintf("seed%d/%s", seed, name), func(t *testing.T) {
				t.Parallel()
				dir := t.TempDir()
				file, err := store.NewFile(dir)
				if err != nil {
					t.Fatal(err)
				}
				plan := chaosPlan(seed)
				fs := store.NewFaulty(file, plan)
				// No Close on svc: the recovery phase below models a crash.
				svc := New(Options{
					Store:           fs,
					StoreRetry:      chaosRetry(),
					QuarantineAfter: 2,
					ReprobeInterval: -1, // heal explicitly, keeping the run deterministic
					SnapshotEvery:   3,
				})
				_, c := fixtureFor(t, svc, name)
				sess, err := svc.CreateDomainSession(name, c.Problem, SessionConfig{})
				if err != nil {
					t.Fatalf("create: %v", err)
				}
				id := sess.ID()
				retrySolve(t, sess, nil)
				retryQueue(t, sess, c.Tightening)
				retrySolve(t, sess, c.Tightening)
				retryQueue(t, sess, c.Relaxing) // left pending across the crash

				// The uninterrupted control: identical script, no store.
				control := New(Options{})
				defer control.Close()
				ctrl := runScript(t, control, name)
				if _, err := ctrl.QueueChanges(c.Relaxing...); err != nil {
					t.Fatal(err)
				}

				// Live differential: whatever the store did, the in-memory
				// session must match the control exactly.
				d := sess.dom
				if probFP(d, sess.Problem()) != probFP(d, ctrl.Problem()) {
					t.Fatalf("live problem diverged from control (%d faults injected)", plan.Injected())
				}
				if solFP(d, sess.SolutionValue()) != solFP(d, ctrl.SolutionValue()) {
					t.Fatalf("live solution diverged from control (%d faults injected)", plan.Injected())
				}
				if sess.Pending() != ctrl.Pending() {
					t.Fatalf("live pending %d, control %d", sess.Pending(), ctrl.Pending())
				}

				// Degradation must be visible, and must heal once the store
				// recovers.
				if sess.Degraded() {
					if got := svc.DegradedSessions(); len(got) != 1 || got[0] != id {
						t.Fatalf("degraded sessions %v, want [%s]", got, id)
					}
					if !sess.Info().Degraded {
						t.Fatal("session info does not show degraded")
					}
					if m := svc.Metrics(); m.Quarantines == 0 || m.SessionsDegraded != 1 {
						t.Fatalf("quarantine not in metrics: %+v", m)
					}
					plan.Disarm()
					svc.probeQuarantined()
					if sess.Degraded() {
						t.Fatal("session did not heal after the store recovered")
					}
					if m := svc.Metrics(); m.QuarantineHeals == 0 {
						t.Fatalf("heal not in metrics: %+v", m)
					}
				}

				// Crash (svc abandoned, no flush) + recovery over a fresh,
				// fault-free store: the recovered session must match the
				// control, converging regardless of the faults injected.
				st2, err := store.NewFile(dir)
				if err != nil {
					t.Fatal(err)
				}
				svc2 := New(Options{Store: st2})
				defer svc2.Close()
				recovered, ok := svc2.Session(id)
				if !ok {
					t.Fatalf("session lost across crash (%d faults injected, degraded=%v)",
						plan.Injected(), sess.Degraded())
				}
				if probFP(d, recovered.Problem()) != probFP(d, ctrl.Problem()) {
					t.Fatal("recovered problem diverged from control")
				}
				if solFP(d, recovered.SolutionValue()) != solFP(d, ctrl.SolutionValue()) {
					t.Fatal("recovered solution diverged from control")
				}
				if recovered.Pending() != ctrl.Pending() {
					t.Fatalf("recovered pending %d, control %d", recovered.Pending(), ctrl.Pending())
				}
				res, err := recovered.Solve()
				if err != nil {
					t.Fatalf("post-recovery solve: %v", err)
				}
				ctrlRes, err := ctrl.Solve()
				if err != nil {
					t.Fatal(err)
				}
				if res.Status != ctrlRes.Status || res.Batched != ctrlRes.Batched ||
					solFP(d, res.Solution) != solFP(d, ctrlRes.Solution) {
					t.Fatalf("post-recovery pass %q/%d diverged from control %q/%d",
						res.Status, res.Batched, ctrlRes.Status, ctrlRes.Batched)
				}
			})
		}
	}
}

// TestChaosTotalOutageServesDegraded: a store failing 100% of operations
// must not take the service down — the session is born quarantined,
// keeps serving memory-only with metrics advancing, and heals through
// the probe loop once the store recovers.
func TestChaosTotalOutageServesDegraded(t *testing.T) {
	plan := fault.NewPlan(7, fault.Rule{Op: "*", Kind: fault.KindError, Every: 1})
	fs := store.NewFaulty(store.NewMemory(), plan)
	svc := New(Options{
		Store:           fs,
		StoreRetry:      chaosRetry(),
		QuarantineAfter: 1,
		ReprobeInterval: 2 * time.Millisecond,
	})
	defer svc.Close()
	_, c := fixtureFor(t, svc, "cnf")
	sess, err := svc.CreateDomainSession("cnf", c.Problem, SessionConfig{})
	if err != nil {
		t.Fatalf("create against a dead store must quarantine, not fail: %v", err)
	}
	if !sess.Degraded() {
		t.Fatal("session not born quarantined")
	}
	// The whole script serves memory-only without a single client-visible
	// error or retry.
	if _, err := sess.Solve(); err != nil {
		t.Fatalf("degraded solve: %v", err)
	}
	if _, err := sess.QueueChanges(c.Tightening...); err != nil {
		t.Fatalf("degraded queue: %v", err)
	}
	if _, err := sess.Solve(); err != nil {
		t.Fatalf("degraded batch solve: %v", err)
	}
	m := svc.Metrics()
	if m.Quarantines == 0 || m.SessionsDegraded != 1 {
		t.Fatalf("quarantine invisible: %+v", m)
	}
	if m.SnapshotFailures == 0 || m.JournalRetries == 0 {
		t.Fatalf("failure metrics not advancing: %+v", m)
	}
	if m.Solves < 2 {
		t.Fatalf("service stopped serving: %d solves", m.Solves)
	}
	// A degraded session is immune from LRU eviction and TTL expiry — its
	// memory is the only copy.
	svc.mu.Lock()
	victim := svc.lruLocked()
	svc.mu.Unlock()
	if victim != nil {
		t.Fatal("degraded session offered as LRU victim")
	}
	svc.sweepExpired(time.Now().Add(24 * time.Hour))
	if _, ok := svc.Session(sess.ID()); !ok {
		t.Fatal("TTL sweep detached a degraded session")
	}

	// Store recovery: the probe loop notices and heals without any client
	// traffic.
	fp := solFP(sess.dom, sess.SolutionValue())
	plan.Disarm()
	deadline := time.Now().Add(5 * time.Second)
	for sess.Degraded() {
		if time.Now().After(deadline) {
			t.Fatal("probe loop never healed the session")
		}
		time.Sleep(2 * time.Millisecond)
	}
	m = svc.Metrics()
	if m.QuarantineProbes == 0 || m.QuarantineHeals == 0 {
		t.Fatalf("heal invisible: %+v", m)
	}
	// The heal snapshot is the full state: a restart over the recovered
	// store finds the session intact.
	id := sess.ID()
	svc.Close()
	svc2 := New(Options{Store: fs.Underlying()})
	defer svc2.Close()
	back, ok := svc2.Session(id)
	if !ok {
		t.Fatal("healed session not durable")
	}
	if solFP(back.dom, back.SolutionValue()) != fp {
		t.Fatal("healed session diverged")
	}
}

// TestAckLostAppendResolvedOnRetry (regression for the fsync-ack-loss
// hazard): an append whose write lands but whose acknowledgement is lost
// — and whose in-policy retry is also faulted — must be recognized as
// durable by the CLIENT's retry instead of surfacing a permanent
// ErrSeqConflict, and must not duplicate the batch on recovery.
func TestAckLostAppendResolvedOnRetry(t *testing.T) {
	dir := t.TempDir()
	file, err := store.NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Append op 1: failed fsync (durable, ack lost). Append op 2 (the
	// in-policy retry): plain error. Everything after: clean.
	plan := fault.NewPlan(0,
		fault.Rule{Op: "append", Kind: fault.KindFsync, Nth: 1},
		fault.Rule{Op: "append", Kind: fault.KindError, Nth: 2},
	)
	svc := New(Options{
		Store:           store.NewFaulty(file, plan),
		StoreRetry:      chaosRetry(), // Attempts: 2, so the op exhausts
		QuarantineAfter: 3,
		ReprobeInterval: -1,
	})
	_, c := fixtureFor(t, svc, "cnf")
	sess, err := svc.CreateDomainSession("cnf", c.Problem, SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = sess.QueueChanges(c.Tightening...)
	if err == nil {
		t.Fatal("exhausted append reported success")
	}
	if !store.IsTransient(err) {
		t.Fatalf("exhausted append error not transient: %v", err)
	}
	if sess.Pending() != 0 {
		t.Fatal("failed queue left changes pending")
	}
	// The client retry: the store-side seq conflict is resolved as
	// "already durable" and the batch queues.
	if _, err := sess.QueueChanges(c.Tightening...); err != nil {
		t.Fatalf("client retry after ack loss: %v", err)
	}
	if got := sess.Pending(); got != len(c.Tightening) {
		t.Fatalf("pending %d, want %d", got, len(c.Tightening))
	}
	// Crash + recovery: exactly one copy of the batch survives.
	st2, err := store.NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc2 := New(Options{Store: st2})
	defer svc2.Close()
	back, ok := svc2.Session(sess.ID())
	if !ok {
		t.Fatal("session lost")
	}
	if got := back.Pending(); got != len(c.Tightening) {
		t.Fatalf("recovered pending %d, want %d (batch duplicated or lost)", got, len(c.Tightening))
	}
	if _, err := back.Solve(); err != nil {
		t.Fatalf("post-recovery solve: %v", err)
	}
}

// ---- admission control -----------------------------------------------------

// TestAdmissionQueueBound: MaxPending rejects further changes with
// ErrQueueFull (HTTP 429 + Retry-After) and counts the rejection.
func TestAdmissionQueueBound(t *testing.T) {
	svc := newTestService(t, Options{})
	_, c := fixtureFor(t, svc, "cnf")
	svc.opts.MaxPending = len(c.Tightening)
	sess, err := svc.CreateDomainSession("cnf", c.Problem, SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.QueueChanges(c.Tightening...); err != nil {
		t.Fatalf("first batch within the bound: %v", err)
	}
	_, err = sess.QueueChanges(c.Tightening...)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-bound queue error %v, want ErrQueueFull", err)
	}
	if got := sess.Pending(); got != len(c.Tightening) {
		t.Fatalf("rejected batch mutated the queue: pending %d", got)
	}
	if m := svc.Metrics(); m.QueueRejections != 1 {
		t.Fatalf("queue_rejections %d, want 1", m.QueueRejections)
	}
}

// TestHTTPAdmission: the HTTP layer maps the admission errors to
// retryable statuses with Retry-After, not blanket 500s.
func TestHTTPAdmission(t *testing.T) {
	svc, ts := newTestServer(t)
	svc.opts.MaxPending = 1

	var created SessionInfo
	if code, body := doJSON(t, "POST", ts.URL+"/v1/sessions", map[string]any{
		"dimacs": "p cnf 2 2\n1 2 0\n-1 2 0\n",
	}, &created); code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, body)
	}
	queue := func() (*http.Response, error) {
		return http.Post(ts.URL+"/v1/sessions/"+created.ID+"/changes", "application/json",
			strings.NewReader(`{"changes": [{"kind": "add-clause", "lits": [1, 2]}]}`))
	}
	resp, err := queue()
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first queue: %d", resp.StatusCode)
	}
	resp, err = queue()
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-bound queue status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

// TestAdmissionBacklogBound: with the executor saturated past
// workers+MaxBacklog, solves shed with ErrOverloaded (HTTP 503 +
// Retry-After) instead of queueing unboundedly.
func TestAdmissionBacklogBound(t *testing.T) {
	// A zero MaxBacklog means "default" (Go zero value), so the tightest
	// expressible bound is 1: one running solve + one queued = cap 2.
	svc := New(Options{Workers: 1, MaxBacklog: 1})
	ts := newServerFor(t, svc)
	sess, err := svc.CreateSession(hardFormula(t), SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}

	// Saturate the admission cap: one job occupies the worker, a second
	// occupies the backlog slot.
	block := make(chan struct{})
	started := make(chan struct{})
	go svc.exec.run(context.Background(), func() { close(started); <-block }) //nolint:errcheck
	<-started
	go svc.exec.run(context.Background(), func() {}) //nolint:errcheck // parks in the backlog
	for deadline := time.Now().Add(5 * time.Second); svc.exec.inflight.Load() < 2; {
		if time.Now().After(deadline) {
			t.Fatal("backlog occupant never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	defer close(block)

	// Direct executor admission.
	if err := svc.exec.run(context.Background(), func() {}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated run error %v, want ErrOverloaded", err)
	}

	// HTTP: 503 + Retry-After + the stable "overloaded" code.
	resp, err := http.Post(ts.URL+"/v1/sessions/"+sess.ID()+"/solve", "application/json", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overloaded solve status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if m := svc.Metrics(); m.BacklogRejections == 0 {
		t.Fatalf("backlog rejection not counted: %+v", m)
	}
}

// TestRequestTimeoutShedsSolve: Options.RequestTimeout bounds how long a
// request may hold a worker; the deadline propagates into the kernel
// abort check and surfaces as a retryable 503, not a client-cancel 408.
func TestRequestTimeoutShedsSolve(t *testing.T) {
	// A nanosecond deadline is expired before the solve starts, so the
	// outcome does not depend on how fast this machine solves the fixture.
	svc := New(Options{RequestTimeout: time.Nanosecond})
	ts := newServerFor(t, svc)
	sess, err := svc.CreateSession(hardFormula(t), SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/sessions/"+sess.ID()+"/solve", "application/json", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("deadline-shed solve status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("deadline 503 without Retry-After")
	}
}

// newServerFor wraps an existing service in a test HTTP server.
func newServerFor(t *testing.T, svc *Service) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(NewHandler(svc))
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return ts
}
