package service

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ilpec/internal/cluster"
	"ilpec/internal/cnf"
	"ilpec/internal/core"
	"ilpec/internal/domain"
	"ilpec/internal/ilp"
	"ilpec/internal/obs"
)

// Session is one long-lived engineering-change session: a live problem of
// some registered domain, the current solution, and a queue of pending
// changes (ILP encodings are built per solver run, inside the compute
// closures, so cache-served answers never pay for one). Changes
// accumulate via Queue/QueueChanges and are coalesced into a single EC
// pass by the next Solve call — N posted changes cost one re-solve, not
// N. All methods are safe for concurrent use; a session's solves are
// serialized by its own lock while different sessions proceed in parallel
// on the service's executor pool.
type Session struct {
	id  string
	svc *Service
	dom domain.Domain

	// mu is the per-session lock: it serializes this session's queue and
	// solve operations while independent sessions run in parallel.
	mu       sync.Mutex
	problem  any             // guarded by mu; wal:committed
	solution any             // guarded by mu; wal:committed
	pending  []any           // guarded by mu; wal:committed
	strategy domain.Strategy // guarded by mu
	solve    ilp.Options     // guarded by mu
	// cuts is the session's retained cut pool (used when the session's
	// solver options enable Cuts): separated cutting planes keyed by
	// source-row content, so an EC re-solve only pays separation for the
	// rows the change batch touched. Solves are serialized under mu, so
	// the pool is never shared between concurrent searches. Guarded by mu.
	cuts *ilp.CutPool
	// inst is the session's persistent solver instance (nil until the
	// first instance-path solve, after an invalidation, and on a session
	// rebuilt from the store): a live kernel whose column index, LP
	// basis, presolve reduction, and retained cuts survive across EC
	// re-solves. Drained change batches sync onto it as row deltas when
	// the domain implements DeltaEncoder; batches that cannot be
	// expressed as deltas (or any solve error) invalidate it, and the
	// next instance-path solve rebuilds it from the committed problem.
	// Options.DisableInstance turns the path off service-wide.
	// Guarded by mu.
	inst  *domain.Instance
	stats sessionStats // guarded by mu

	// closed marks a session that was evicted, TTL-expired, or deleted:
	// stale pointers error instead of mutating a detached copy (the live
	// state is in the store; Service.Session rehydrates it). Guarded by mu.
	closed bool
	// seq is the last write-ahead journal sequence number; tailLen counts
	// journal records since the last snapshot (SnapshotEvery compaction).
	// Both guarded by mu.
	seq     uint64
	tailLen int
	// persistFails counts consecutive exhausted-retries store failures; at
	// Options.QuarantineAfter the session degrades to memory-only serving
	// (degraded), keeping seq advancing logically so the heal snapshot
	// supersedes the stale journal. degraded is atomic so read-side paths
	// (Info, metrics, the probe loop's scan) need not take mu.
	persistFails int // guarded by mu
	degraded     atomic.Bool
	// ackLostSeq is the journal seq of the most recent append that failed
	// with its durability UNKNOWN (e.g. a failed fsync: the write may have
	// landed while the acknowledgement was lost). A later append for that
	// seq that hits ErrSeqConflict is thereby recognized as "the earlier
	// attempt did land" and accepted; forceCompact then schedules a prompt
	// snapshot so the journal record is superseded either way. Both
	// guarded by mu.
	ackLostSeq   uint64
	forceCompact bool
	// recentBatches holds the idempotency keys of the most recently
	// accepted change batches (oldest first, bounded at maxRecentBatches).
	// A QueueChangesKeyed call whose key is present is a client replay —
	// the batch is already journaled — and is acknowledged without being
	// applied again. The keys are persisted (Record.BatchID on the journal
	// record, Snapshot.RecentBatches on compaction) so dedup survives
	// rehydration on this node or a failover successor. Guarded by mu.
	recentBatches []string
	// lastUsed is the unix-nano last-touch stamp driving LRU eviction and
	// the TTL sweep.
	lastUsed atomic.Int64
	// lease is this node's ownership claim on the session (cluster mode;
	// zero otherwise). Guarded by mu except during construction.
	lease cluster.Lease
	// fenced marks a session whose lease was definitively lost to another
	// node: its durable state belongs to the new owner, so every further
	// operation is refused with ErrNotOwner and nothing may be persisted
	// from this copy again. Atomic so lookups can test it without mu.
	fenced atomic.Bool
}

type sessionStats struct {
	changesQueued int64
	batches       int64
	solves        int64
	cacheHits     int64
}

// SolveResult reports one Session.Solve outcome.
type SolveResult struct {
	// Assignment is the current solution for CNF sessions (a clone; safe
	// to keep; nil on other domains — use Solution).
	Assignment cnf.Assignment `json:"-"`
	// Solution is the current domain solution (a clone; safe to keep).
	Solution any `json:"-"`
	// Status names the pass taken: "initial", "noop", "relaxed", "fast",
	// "preserving", or "replan".
	Status string `json:"status"`
	// Batched is the number of queued changes coalesced into this pass.
	Batched int `json:"batched"`
	// Cached is true when the answer came from the solve cache (including
	// joining an identical in-flight solve) instead of running the solver.
	Cached bool `json:"cached"`
	// Preserved is the preserved fraction vs. the pre-batch solution
	// (batch passes only).
	Preserved float64 `json:"preserved"`
	// DontCares counts uncommitted decisions in the solution (CNF only).
	DontCares int `json:"dont_cares"`
	// SubVars/SubClauses are the fast-EC sub-instance sizes — re-decided
	// units and sub-model rows (fast passes that ran the solver; zero on
	// cache hits and other strategies).
	SubVars    int `json:"sub_vars,omitempty"`
	SubClauses int `json:"sub_clauses,omitempty"`
	// Runtime is the wall-clock duration of this call.
	Runtime time.Duration `json:"runtime_ns"`
}

// SessionInfo is a point-in-time summary of a session.
type SessionInfo struct {
	ID string `json:"id"`
	// Domain names the session's problem domain.
	Domain string `json:"domain"`
	// Vars and Clauses are the domain's decision-unit and constraint
	// counts (variables/clauses, vertices/edges, ops/deps, ...).
	Vars     int    `json:"vars"`
	Clauses  int    `json:"clauses"`
	Pending  int    `json:"pending"`
	Solved   bool   `json:"solved"`
	Strategy string `json:"strategy"`
	// Degraded marks a quarantined session: persistence kept failing, so it
	// is served memory-only until a store re-probe heals it. Its durable
	// state is stale — a crash now would lose the changes accepted since
	// quarantine began.
	Degraded      bool  `json:"degraded,omitempty"`
	DontCares     int   `json:"dont_cares"`
	ChangesQueued int64 `json:"changes_queued"`
	Batches       int64 `json:"batches"`
	Solves        int64 `json:"solves"`
	CacheHits     int64 `json:"cache_hits"`
}

// ID returns the session id.
func (s *Session) ID() string { return s.id }

// Domain returns the session's domain name.
func (s *Session) Domain() string { return s.dom.Name() }

// Queue appends CNF changes to the pending batch without solving; it
// returns the pending count. It is shorthand for QueueChanges on a CNF
// session.
func (s *Session) Queue(changes ...core.Change) (int, error) {
	anyChanges := make([]any, len(changes))
	for i, c := range changes {
		anyChanges[i] = c
	}
	return s.QueueChanges(anyChanges...)
}

// QueueChanges appends domain changes to the pending batch without
// solving; it returns the pending count. The batch is validated and
// applied atomically by the next Solve. On a durable service the batch is
// journaled (wire-encoded and fsync'd) BEFORE it is acknowledged, so an
// accepted change survives a crash; the error reports a detached session
// or a failed journal append, and in either case nothing was queued.
func (s *Session) QueueChanges(changes ...any) (int, error) {
	pending, _, err := s.QueueChangesKeyed("", changes...)
	return pending, err
}

// maxRecentBatches bounds the idempotency keys a session remembers (in
// memory and in its snapshot). A retrying client replays a batch within
// a handful of attempts, so the window only needs to outlast one retry
// storm — 128 batches is orders of magnitude past that.
const maxRecentBatches = 128

// QueueChangesKeyed is QueueChanges with a client-supplied idempotency
// key. A non-empty key that matches an already-accepted batch means the
// call is a retry of a request whose response was lost (the router never
// replays non-idempotent requests, but the CLIENT retries through 502s):
// the batch is acknowledged as duplicate=true without being queued
// again, keeping replays exactly-once. An empty key disables dedup.
func (s *Session) QueueChangesKeyed(key string, changes ...any) (pending int, duplicate bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, false, fmt.Errorf("service: session %s is closed (re-fetch it by id)", s.id)
	}
	if key != "" && s.seenBatchLocked(key) {
		s.svc.metrics.DuplicateBatches.Add(1)
		s.svc.touch(s)
		return len(s.pending), true, nil
	}
	if max := s.svc.opts.MaxPending; max > 0 && len(s.pending)+len(changes) > max {
		s.svc.metrics.QueueRejections.Add(1)
		return len(s.pending), false, fmt.Errorf("%w (%d pending, limit %d)", ErrQueueFull, len(s.pending), max)
	}
	if err := s.persistQueueLocked(context.Background(), key, changes); err != nil {
		return len(s.pending), false, err
	}
	s.pending = append(s.pending, changes...)
	s.recentBatches = appendBatchKey(s.recentBatches, key)
	s.stats.changesQueued += int64(len(changes))
	s.svc.metrics.ChangesQueued.Add(int64(len(changes)))
	s.svc.touch(s)
	s.maybeCompactLocked()
	return len(s.pending), false, nil
}

// seenBatchLocked reports whether key identifies an already-accepted
// batch. Linear scan: the window is small (maxRecentBatches). Caller
// holds s.mu.
func (s *Session) seenBatchLocked(key string) bool {
	for _, k := range s.recentBatches {
		if k == key {
			return true
		}
	}
	return false
}

// appendBatchKey records one accepted batch key, keeping the window
// bounded (empty keys are not recorded).
func appendBatchKey(keys []string, key string) []string {
	if key == "" {
		return keys
	}
	keys = append(keys, key)
	if len(keys) > maxRecentBatches {
		keys = keys[len(keys)-maxRecentBatches:]
	}
	return keys
}

// Pending returns the number of queued, not yet applied changes.
func (s *Session) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// Solution returns a clone of the current CNF solution (nil before the
// first Solve and on non-CNF sessions — use SolutionValue).
func (s *Session) Solution() cnf.Assignment {
	if a, ok := s.SolutionValue().(cnf.Assignment); ok {
		return a
	}
	return nil
}

// SolutionValue returns a clone of the current domain solution (nil
// before the first Solve).
func (s *Session) SolutionValue() any {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.solution == nil {
		return nil
	}
	return s.dom.CloneSolution(s.solution)
}

// Formula returns a clone of the current formula (nil on non-CNF
// sessions — use Problem).
func (s *Session) Formula() *cnf.Formula {
	if f, ok := s.Problem().(*cnf.Formula); ok {
		return f
	}
	return nil
}

// Problem returns a clone of the current domain problem.
func (s *Session) Problem() any {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dom.CloneProblem(s.problem)
}

// Info summarizes the session.
func (s *Session) Info() SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	units, constraints := s.dom.ProblemSize(s.problem)
	info := SessionInfo{
		ID:            s.id,
		Domain:        s.dom.Name(),
		Vars:          units,
		Clauses:       constraints,
		Pending:       len(s.pending),
		Solved:        s.solution != nil,
		Strategy:      s.strategy.String(),
		Degraded:      s.degraded.Load(),
		ChangesQueued: s.stats.changesQueued,
		Batches:       s.stats.batches,
		Solves:        s.stats.solves,
		CacheHits:     s.stats.cacheHits,
	}
	if s.solution != nil {
		info.DontCares = s.dom.DontCares(s.problem, s.solution)
	}
	return info
}

// FlexReport audits the current solution's flexibility at level k (§5).
func (s *Session) FlexReport(k int) (domain.FlexReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.solution == nil {
		return domain.FlexReport{}, fmt.Errorf("service: session %s has no solution yet", s.id)
	}
	return s.dom.Flex(s.problem, s.solution, k)
}

// Solve drains the pending batch and brings the session to a solved
// state: the initial solve when the session has no solution yet, a single
// coalesced EC pass (per the session strategy) when tightening changes
// are pending, a solver-free extension when the batch is relaxing-only,
// and a no-op when nothing is pending.
//
// On error the pending batch is discarded and the session keeps its
// previous problem and solution, so a client can correct course and
// continue; an invalid change or an infeasible batch never poisons the
// session.
func (s *Session) Solve() (*SolveResult, error) {
	return s.SolveContext(context.Background())
}

// SolveContext is Solve bound to a context: when ctx is cancelled the
// solve aborts inside the kernel (freeing its executor slot) and the
// session keeps its previous problem and solution. The HTTP handler
// passes the request context, so a disconnected client stops paying for
// its solve.
func (s *Session) SolveContext(ctx context.Context) (*SolveResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, sp := obs.StartSpan(ctx, "solve")
	sp.SetAttr("session", s.id)
	defer sp.End()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("service: session %s is closed (re-fetch it by id)", s.id)
	}
	s.svc.touch(s)
	start := time.Now()
	batch := s.pending
	//ecvet:ignore walfirst the drain is journaled by the solve/discard record that every path below appends; a crash in between replays the queued records as pending again
	s.pending = nil

	res, err := func() (*SolveResult, error) {
		if s.solution == nil {
			return s.solveInitialLocked(ctx, batch, start)
		}
		if len(batch) == 0 {
			return s.resultLocked(&SolveResult{Status: "noop"}, start), nil
		}
		return s.solveBatchLocked(ctx, batch, start)
	}()
	if err != nil {
		// The persistent instance may have advanced past the discarded
		// batch (or be half-built); drop it so the next solve rebuilds it
		// from the committed problem.
		s.inst = nil
		if len(batch) > 0 {
			// The batch was discarded; journal that so replay agrees with
			// the in-memory outcome (the queued "changes" records would
			// otherwise resurrect it as pending on rehydration).
			s.persistDiscardLocked(ctx)
		}
	}
	return res, err
}

// instanceEnabled reports whether this session serves replan-shaped
// solves through a persistent instance (Options.DisableInstance turns
// the path off service-wide — the scratch arm of the differential
// tests).
func (s *Session) instanceEnabled() bool { return !s.svc.opts.DisableInstance }

// ensureInstanceLocked returns a live instance encoding problem: the session's
// retained one when the drained batch syncs onto it as a row delta, a
// rebuilt one otherwise. Caller holds s.mu (possibly via the executor
// closure SolveContext is blocked on).
func (s *Session) ensureInstanceLocked(problem any, batch []any) (*domain.Instance, error) {
	if s.inst != nil && s.inst.Sync(s.problem, problem, batch) {
		s.svc.metrics.InstanceReuses.Add(1)
		return s.inst, nil
	}
	inst, err := domain.NewInstance(s.dom, problem)
	if err != nil {
		s.inst = nil
		return nil, err
	}
	s.inst = inst
	s.svc.metrics.InstanceRebuilds.Add(1)
	return inst, nil
}

// replanSolveLocked runs a full solve of problem — through the session's
// persistent instance when enabled, falling back to a scratch solve when
// the instance cannot be built.
func (s *Session) replanSolveLocked(ctx context.Context, problem any, batch []any, warm any) (any, ilp.Result, error) {
	if s.instanceEnabled() {
		if inst, err := s.ensureInstanceLocked(problem, batch); err == nil {
			return inst.Resolve(s.solverOptsLocked(ctx), warm)
		}
	}
	return domain.Solve(s.dom, problem, s.solverOptsLocked(ctx), warm)
}

// syncInstanceLocked keeps the retained instance tracking a commit the
// instance path did not serve (fast/preserving/relaxed passes and
// cache-served solves): a delta-expressible batch replays onto the live
// model without solving; anything else invalidates the instance so the
// next instance-path solve rebuilds it. A no-op when the instance
// already encodes changed (the compute closure synced it). Caller holds
// s.mu.
func (s *Session) syncInstanceLocked(changed any, batch []any) {
	if s.inst == nil {
		return
	}
	if !s.inst.Sync(s.problem, changed, batch) {
		s.inst = nil
	}
}

// wrapCtxErr folds a solve failure that coincides with the request's
// cancellation into the context error: the kernel reports an abort as a
// generic limits error, but cache joiners must be able to tell "the
// owner's client went away" (retry with their own context) from a real
// solver failure (share it).
func wrapCtxErr(ctx context.Context, err error) error {
	if err != nil && ctx.Err() != nil {
		return fmt.Errorf("%w (%v)", ctx.Err(), err)
	}
	return err
}

// solverOptsLocked binds the session's solver options to one call: the request
// context for aborts and the session's retained cut pool.
func (s *Session) solverOptsLocked(ctx context.Context) ilp.Options {
	opts := s.solve
	opts.Context = ctx
	if opts.Cuts {
		opts.CutPool = s.cuts
	}
	return opts
}

// resultLocked finalizes a SolveResult from the committed session state.
// Caller holds s.mu.
func (s *Session) resultLocked(res *SolveResult, start time.Time) *SolveResult {
	res.Solution = s.dom.CloneSolution(s.solution)
	if a, ok := res.Solution.(cnf.Assignment); ok {
		res.Assignment = a
	}
	res.DontCares = s.dom.DontCares(s.problem, s.solution)
	res.Runtime = time.Since(start)
	return res
}

// solveInitialLocked runs the first solve, folding any pending batch into the
// starting problem. Caller holds s.mu.
func (s *Session) solveInitialLocked(ctx context.Context, batch []any, start time.Time) (*SolveResult, error) {
	p := s.problem
	if len(batch) > 0 {
		applied, err := s.dom.ApplyChanges(s.problem, batch)
		if err != nil {
			return nil, fmt.Errorf("service: batch discarded: %w", err)
		}
		p = applied
	}
	if err := s.dom.Validate(p); err != nil {
		return nil, fmt.Errorf("service: batch discarded: %w", err)
	}
	key := s.taskKeyLocked("plain", p, nil)
	pkey := s.problemKey(p)
	// The encoding is built inside the compute closure so a cache hit —
	// the common case across identical sessions — pays nothing. The
	// closure reports cache eligibility: only a PROVEN result (optimal,
	// or infeasible-as-error which is never cached) may be replayed for
	// this key; a limit-truncated Feasible answer is served once and
	// re-attempted on the next request.
	sol, hit, err := s.cachedSolveFleet(ctx, key, p, func() (any, bool, error) {
		warm := s.svc.incumbent(pkey)
		if warm != nil {
			s.svc.metrics.IncumbentHits.Add(1)
		}
		a, res, err := s.replanSolveLocked(ctx, p, batch, warm)
		s.svc.noteSolverResult(ctx, res)
		return a, err == nil && res.Status == ilp.Optimal, wrapCtxErr(ctx, err)
	})
	if err != nil {
		return nil, err
	}
	if err := s.persistSolveLocked(ctx, p, sol, len(batch)); err != nil {
		return nil, err
	}
	s.syncInstanceLocked(p, batch)
	s.commitLocked(p, sol, pkey, len(batch), hit)
	return s.resultLocked(&SolveResult{
		Status:  "initial",
		Batched: len(batch),
		Cached:  hit,
	}, start), nil
}

// solveBatchLocked resolves a non-empty tightening-or-relaxing batch against
// the current solution in one pass. Caller holds s.mu.
func (s *Session) solveBatchLocked(ctx context.Context, batch []any, start time.Time) (*SolveResult, error) {
	changed, err := s.dom.ApplyChanges(s.problem, batch)
	if err != nil {
		return nil, fmt.Errorf("service: batch discarded: %w", err)
	}
	prev := s.solution

	if !domain.AnyTightening(s.dom, batch) {
		// Relaxing-only batch: the solution stays valid (§6); just extend it.
		next, err := s.dom.ExtendSolution(changed, prev)
		if err != nil {
			return nil, fmt.Errorf("service: batch discarded: %w", err)
		}
		if err := s.persistSolveLocked(ctx, changed, next, len(batch)); err != nil {
			return nil, err
		}
		s.syncInstanceLocked(changed, batch)
		s.commitLocked(changed, next, s.problemKey(changed), len(batch), false)
		s.svc.metrics.RelaxFastPaths.Add(1)
		return s.resultLocked(&SolveResult{
			Status:    "relaxed",
			Batched:   len(batch),
			Preserved: 1,
		}, start), nil
	}
	if err := s.dom.Validate(changed); err != nil {
		return nil, fmt.Errorf("service: batch discarded: %w", err)
	}

	var subVars, subRows int
	var key string
	var compute func() (any, bool, error)
	switch s.strategy {
	case domain.FastEC:
		fopts := domain.FastOptions{Solve: s.solverOptsLocked(ctx), MaxEscalations: s.svc.opts.Fast.MaxEscalations}
		key = s.taskKeyLocked("fast", changed, prev)
		compute = func() (any, bool, error) {
			next, stats, ferr := domain.Fast(s.dom, changed, prev, fopts)
			if ferr != nil {
				return nil, false, wrapCtxErr(ctx, ferr)
			}
			if !stats.AlreadyValid {
				s.svc.noteSolverResult(ctx, stats.ILP)
			}
			subVars, subRows = stats.SubSize, stats.SubRows
			// A fast pass is cache-eligible when no solver ran (the
			// previous solution provably survived) or the final
			// sub-solve proved optimality.
			return next, stats.AlreadyValid || stats.ILP.Status == ilp.Optimal, nil
		}
	case domain.PreservingEC:
		key = s.taskKeyLocked("preserve", changed, prev)
		compute = func() (any, bool, error) {
			next, res, perr := domain.Preserve(s.dom, changed, prev, s.solverOptsLocked(ctx))
			s.svc.noteSolverResult(ctx, res)
			return next, perr == nil && res.Status == ilp.Optimal, wrapCtxErr(ctx, perr)
		}
	case domain.Replan:
		key = s.taskKeyLocked("plain", changed, nil)
		compute = func() (any, bool, error) {
			next, res, rerr := s.replanSolveLocked(ctx, changed, batch, prev)
			s.svc.noteSolverResult(ctx, res)
			return next, rerr == nil && res.Status == ilp.Optimal, wrapCtxErr(ctx, rerr)
		}
	default:
		return nil, fmt.Errorf("service: unknown strategy %d", s.strategy)
	}

	next, hit, err := s.cachedSolveFleet(ctx, key, changed, compute)
	if err != nil {
		return nil, err
	}
	if err := s.persistSolveLocked(ctx, changed, next, len(batch)); err != nil {
		return nil, err
	}
	s.syncInstanceLocked(changed, batch)
	s.commitLocked(changed, next, s.problemKey(changed), len(batch), hit)
	return s.resultLocked(&SolveResult{
		Status:     s.strategy.String(),
		Batched:    len(batch),
		Cached:     hit,
		Preserved:  s.dom.Agreement(prev, next),
		SubVars:    subVars,
		SubClauses: subRows,
	}, start), nil
}

// commitLocked installs the new problem/solution pair, updates stats, and
// shares the solution through the incumbent store. Caller holds s.mu and
// must have journaled the state first (persistSolveLocked).
//
//ecvet:walcommit
func (s *Session) commitLocked(p, sol any, pkey string, batched int, hit bool) {
	s.problem = p
	s.solution = sol
	s.stats.solves++
	s.svc.metrics.Solves.Add(1)
	if batched > 0 {
		s.stats.batches++
		s.svc.metrics.Batches.Add(1)
	}
	if hit {
		s.stats.cacheHits++
	}
	s.svc.storeIncumbent(pkey, s.dom, sol)
	// The in-memory state now matches the journal head; compact if due.
	s.maybeCompactLocked()
}

// ---- cache keys ----------------------------------------------------------

// taskKeyLocked keys one solve task: the kind, the domain, the problem, the
// previous solution for EC re-solves, and the solver-relevant options.
// WarmStart never shapes a key: it only guides branching, and the
// incumbent-store warm start is injected after the lookup misses.
// Service-wide EC policies (Options.Fast/Preserve) are constant per
// service and cache, so they are safely omitted.
func (s *Session) taskKeyLocked(kind string, problem, prev any) string {
	k := newKeyHasher(kind)
	k.str(s.dom.Name())
	s.dom.FingerprintProblem(k.h, problem)
	if prev != nil {
		k.str("prev")
		s.dom.FingerprintSolution(k.h, prev)
	}
	solve := s.solve
	solve.WarmStart = nil
	return k.options(solve).sum()
}

// problemKey is the options-independent hash of a problem, used by the
// shared incumbent store.
func (s *Session) problemKey(problem any) string {
	k := newKeyHasher("problem")
	k.str(s.dom.Name())
	s.dom.FingerprintProblem(k.h, problem)
	return k.sum()
}
