package service

import (
	"fmt"
	"math"
	"sync"
	"time"

	"ilpec/internal/cnf"
	"ilpec/internal/core"
	"ilpec/internal/encode"
	"ilpec/internal/ilp"
)

// Session is one long-lived engineering-change session: a live formula,
// the current solution, and a queue of pending changes (the set-cover
// encoding is built per solver run, inside the compute closures, so
// cache-served answers never pay for one). Changes accumulate via Queue
// and are coalesced into a single
// EC pass by the next Solve call — N posted changes cost one re-solve,
// not N. All methods are safe for concurrent use; a session's solves are
// serialized by its own lock while different sessions proceed in parallel
// on the service's executor pool.
type Session struct {
	id  string
	svc *Service

	// mu is the per-session lock: it serializes this session's queue and
	// solve operations while independent sessions run in parallel.
	mu       sync.Mutex
	formula  *cnf.Formula
	solution cnf.Assignment
	pending  []core.Change
	strategy core.Strategy
	solve    ilp.Options
	stats    sessionStats
}

type sessionStats struct {
	changesQueued int64
	batches       int64
	solves        int64
	cacheHits     int64
}

// SolveResult reports one Session.Solve outcome.
type SolveResult struct {
	// Assignment is the current solution (a clone; safe to keep).
	Assignment cnf.Assignment `json:"-"`
	// Status names the pass taken: "initial", "noop", "relaxed", "fast",
	// "preserving", or "replan".
	Status string `json:"status"`
	// Batched is the number of queued changes coalesced into this pass.
	Batched int `json:"batched"`
	// Cached is true when the answer came from the solve cache (including
	// joining an identical in-flight solve) instead of running the solver.
	Cached bool `json:"cached"`
	// Preserved is the preserved fraction vs. the pre-batch solution
	// (batch passes only).
	Preserved float64 `json:"preserved"`
	// DontCares counts don't-care variables in the solution.
	DontCares int `json:"dont_cares"`
	// SubVars/SubClauses are the fast-EC sub-instance sizes (fast passes
	// that ran the solver; zero on cache hits and other strategies).
	SubVars    int `json:"sub_vars,omitempty"`
	SubClauses int `json:"sub_clauses,omitempty"`
	// Runtime is the wall-clock duration of this call.
	Runtime time.Duration `json:"runtime_ns"`
}

// SessionInfo is a point-in-time summary of a session.
type SessionInfo struct {
	ID            string `json:"id"`
	Vars          int    `json:"vars"`
	Clauses       int    `json:"clauses"`
	Pending       int    `json:"pending"`
	Solved        bool   `json:"solved"`
	Strategy      string `json:"strategy"`
	DontCares     int    `json:"dont_cares"`
	ChangesQueued int64  `json:"changes_queued"`
	Batches       int64  `json:"batches"`
	Solves        int64  `json:"solves"`
	CacheHits     int64  `json:"cache_hits"`
}

// ID returns the session id.
func (s *Session) ID() string { return s.id }

// Queue appends changes to the pending batch without solving; it returns
// the pending count. The batch is validated and applied atomically by the
// next Solve.
func (s *Session) Queue(changes ...core.Change) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending = append(s.pending, changes...)
	s.stats.changesQueued += int64(len(changes))
	s.svc.metrics.ChangesQueued.Add(int64(len(changes)))
	return len(s.pending)
}

// Pending returns the number of queued, not yet applied changes.
func (s *Session) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// Solution returns a clone of the current solution (nil before the first
// Solve).
func (s *Session) Solution() cnf.Assignment {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.solution == nil {
		return nil
	}
	return s.solution.Clone()
}

// Formula returns a clone of the current formula.
func (s *Session) Formula() *cnf.Formula {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.formula.Clone()
}

// Info summarizes the session.
func (s *Session) Info() SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	info := SessionInfo{
		ID:            s.id,
		Vars:          s.formula.NumVars,
		Clauses:       s.formula.NumClauses(),
		Pending:       len(s.pending),
		Solved:        s.solution != nil,
		Strategy:      s.strategy.String(),
		ChangesQueued: s.stats.changesQueued,
		Batches:       s.stats.batches,
		Solves:        s.stats.solves,
		CacheHits:     s.stats.cacheHits,
	}
	if s.solution != nil {
		info.DontCares = s.solution.DontCareCount()
	}
	return info
}

// FlexReport audits the current solution's flexibility at level k (§5).
func (s *Session) FlexReport(k int) (core.FlexReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.solution == nil {
		return core.FlexReport{}, fmt.Errorf("service: session %s has no solution yet", s.id)
	}
	return core.VerifyFlexibility(s.formula, s.solution, k), nil
}

// Solve drains the pending batch and brings the session to a solved
// state: the initial set-cover solve when the session has no solution
// yet, a single coalesced EC pass (per the session strategy) when
// tightening changes are pending, a solver-free extension when the batch
// is relaxing-only, and a no-op when nothing is pending.
//
// On error the pending batch is discarded and the session keeps its
// previous formula and solution, so a client can correct course and
// continue; an invalid change (bad index/variable) or an unsatisfiable
// batch never poisons the session.
func (s *Session) Solve() (*SolveResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	start := time.Now()
	batch := s.pending
	s.pending = nil

	if s.solution == nil {
		return s.solveInitial(batch, start)
	}
	if len(batch) == 0 {
		return &SolveResult{
			Assignment: s.solution.Clone(),
			Status:     "noop",
			DontCares:  s.solution.DontCareCount(),
			Runtime:    time.Since(start),
		}, nil
	}
	return s.solveBatch(batch, start)
}

// solveInitial runs the first solve, folding any pending batch into the
// starting formula. Caller holds s.mu.
func (s *Session) solveInitial(batch []core.Change, start time.Time) (*SolveResult, error) {
	f := s.formula
	if len(batch) > 0 {
		applied, err := core.Apply(s.formula, batch)
		if err != nil {
			return nil, fmt.Errorf("service: batch discarded: %w", err)
		}
		f = applied
	}
	if f.HasEmptyClause() {
		return nil, fmt.Errorf("service: batch discarded: formula has an empty clause (unsatisfiable)")
	}
	key := plainKey(f, s.solve)
	fkey := formulaKey(f)
	// The encoding is built inside the compute closure so a cache hit —
	// the common case across identical sessions — pays nothing.
	a, hit, err := s.svc.cachedSolve(key, func() (cnf.Assignment, error) {
		e := encode.New(f)
		opts := s.solve
		if warm := s.svc.incumbent(fkey); warm != nil {
			opts.WarmStart = e.EncodeAssignment(warm.Grow(f.NumVars))
			s.svc.metrics.IncumbentHits.Add(1)
		}
		return solveEncoding(e, opts)
	})
	if err != nil {
		return nil, err
	}
	s.commit(f, a, fkey, len(batch), hit)
	return &SolveResult{
		Assignment: a.Clone(),
		Status:     "initial",
		Batched:    len(batch),
		Cached:     hit,
		DontCares:  a.DontCareCount(),
		Runtime:    time.Since(start),
	}, nil
}

// solveBatch resolves a non-empty tightening-or-relaxing batch against
// the current solution in one pass. Caller holds s.mu.
func (s *Session) solveBatch(batch []core.Change, start time.Time) (*SolveResult, error) {
	fPrime, err := core.Apply(s.formula, batch)
	if err != nil {
		return nil, fmt.Errorf("service: batch discarded: %w", err)
	}
	prev := s.solution

	if !core.AnyTightening(batch) {
		// Relaxing-only batch: the solution stays valid (§6); just grow it.
		next := prev.Clone().Grow(fPrime.NumVars)
		s.commit(fPrime, next, formulaKey(fPrime), len(batch), false)
		s.svc.metrics.RelaxFastPaths.Add(1)
		return &SolveResult{
			Assignment: next.Clone(),
			Status:     "relaxed",
			Batched:    len(batch),
			Preserved:  1,
			DontCares:  next.DontCareCount(),
			Runtime:    time.Since(start),
		}, nil
	}
	if fPrime.HasEmptyClause() {
		return nil, fmt.Errorf("service: batch discarded: changed formula has an empty clause (unsatisfiable)")
	}

	var subVars, subClauses int
	var key string
	var compute func() (cnf.Assignment, error)
	switch s.strategy {
	case core.FastEC:
		fopts := s.svc.opts.Fast
		fopts.Solve = s.solve
		key = fastKey(fPrime, prev, fopts)
		compute = func() (cnf.Assignment, error) {
			res, ferr := core.FastResolve(fPrime, prev, fopts)
			if ferr != nil {
				return nil, ferr
			}
			subVars, subClauses = res.SubVars, res.SubClauses
			return res.Assignment, nil
		}
	case core.PreservingEC:
		popts := s.svc.opts.Preserve
		popts.Solve = s.solve
		key = preserveKey(fPrime, prev, popts)
		compute = func() (cnf.Assignment, error) {
			res, perr := core.PreserveResolve(fPrime, prev, popts)
			if perr != nil {
				return nil, perr
			}
			return res.Assignment, nil
		}
	case core.Replan:
		key = plainKey(fPrime, s.solve)
		compute = func() (cnf.Assignment, error) {
			opts := s.solve
			e := encode.New(fPrime)
			opts.WarmStart = e.EncodeAssignment(prev.Clone().Grow(fPrime.NumVars))
			return solveEncoding(e, opts)
		}
	default:
		return nil, fmt.Errorf("service: unknown strategy %d", s.strategy)
	}

	next, hit, err := s.svc.cachedSolve(key, compute)
	if err != nil {
		return nil, err
	}
	s.commit(fPrime, next, formulaKey(fPrime), len(batch), hit)
	return &SolveResult{
		Assignment: next.Clone(),
		Status:     s.strategy.String(),
		Batched:    len(batch),
		Cached:     hit,
		Preserved:  next.PreservedFraction(prev),
		DontCares:  next.DontCareCount(),
		SubVars:    subVars,
		SubClauses: subClauses,
		Runtime:    time.Since(start),
	}, nil
}

// commit installs the new formula/solution pair, updates stats, and
// shares the solution through the incumbent store. Caller holds s.mu.
func (s *Session) commit(f *cnf.Formula, a cnf.Assignment, fkey string, batched int, hit bool) {
	s.formula = f
	s.solution = a
	s.stats.solves++
	s.svc.metrics.Solves.Add(1)
	if batched > 0 {
		s.stats.batches++
		s.svc.metrics.Batches.Add(1)
	}
	if hit {
		s.stats.cacheHits++
	}
	s.svc.storeIncumbent(fkey, a)
}

// solveEncoding runs the base set-cover solve on a prepared encoding.
func solveEncoding(e *encode.Encoding, opts ilp.Options) (cnf.Assignment, error) {
	res := ilp.Solve(e.Model, opts)
	switch res.Status {
	case ilp.Optimal, ilp.Feasible:
		a := e.Decode(res.Solution)
		if !a.Satisfies(e.Formula) {
			return nil, fmt.Errorf("service: decoded solution does not satisfy the formula (internal error)")
		}
		return a, nil
	case ilp.Infeasible:
		return nil, fmt.Errorf("service: formula is unsatisfiable")
	default:
		return nil, fmt.Errorf("service: solve hit limits (%s)", res.Status)
	}
}

// ---- cache keys ----------------------------------------------------------

// plainKey keys a base set-cover solve. WarmStart never shapes the key:
// it guides the search, and the incumbent-store warm start is injected
// after the lookup misses.
func plainKey(f *cnf.Formula, opts ilp.Options) string {
	opts.WarmStart = nil
	return newKeyHasher("plain").formula(f).options(opts).sum()
}

// fastKey keys a fast-EC re-solve: the answer depends on the changed
// formula, the previous solution, and the fast options.
func fastKey(f *cnf.Formula, prev cnf.Assignment, opts core.FastOptions) string {
	solve := opts.Solve
	solve.WarmStart = nil
	k := newKeyHasher("fast").formula(f).assignment(prev).options(solve)
	k.int64(int64(opts.MaxEscalations), boolToInt(opts.Minimal))
	return k.sum()
}

// preserveKey keys a preserving-EC re-solve.
func preserveKey(f *cnf.Formula, prev cnf.Assignment, opts core.PreserveOptions) string {
	solve := opts.Solve
	solve.WarmStart = nil
	k := newKeyHasher("preserve").formula(f).assignment(prev).options(solve)
	k.int64(int64(opts.Mode), int64(math.Float64bits(opts.Weight)))
	k.int64(int64(len(opts.Protected)))
	for _, v := range opts.Protected {
		k.int64(int64(v))
	}
	return k.sum()
}

func boolToInt(v bool) int64 {
	if v {
		return 1
	}
	return 0
}
