package service

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"ilpec/internal/cluster"
	"ilpec/internal/store"
)

// fleetClock is a shared fake clock: every node of a test fleet reads
// the same (advanceable) time, so lease expiry is deterministic.
type fleetClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFleetClock() *fleetClock {
	return &fleetClock{now: time.UnixMilli(1_700_000_000_000)}
}

func (c *fleetClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fleetClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// newFleet builds n services sharing one store, each its own cluster
// node ("n1".."n9") on the shared clock. Nodes are not started — lease
// and fleet-cache logic needs no heartbeat loop.
func newFleet(t *testing.T, st store.Store, clk *fleetClock, ttl time.Duration, n int) []*Service {
	t.Helper()
	svcs := make([]*Service, n)
	for i := range svcs {
		node, err := cluster.NewNode(cluster.Config{
			ID:       "n" + string(rune('1'+i)),
			Store:    st,
			LeaseTTL: ttl,
			Clock:    clk.Now,
		})
		if err != nil {
			t.Fatal(err)
		}
		svcs[i] = New(Options{Store: st, Cluster: node})
	}
	return svcs
}

func TestClusterLeaseOwnershipAndSteal(t *testing.T) {
	st := store.NewMemory()
	clk := newFleetClock()
	svcs := newFleet(t, st, clk, 5*time.Second, 2)
	a, b := svcs[0], svcs[1]
	defer b.Close()

	_, c := fixtureFor(t, a, "cnf")
	sessA, err := a.CreateDomainSessionWithID("job-1", "cnf", c.Problem, SessionConfig{})
	if err != nil {
		t.Fatalf("create on A: %v", err)
	}
	if _, err := sessA.Solve(); err != nil {
		t.Fatalf("solve on A: %v", err)
	}

	// While A's lease is live, B must refuse the session.
	if _, err := b.LookupSession("job-1"); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("lookup on B while A holds the lease: %v, want ErrNotOwner", err)
	}
	if got := b.Metrics().ClusterNotOwner; got == 0 {
		t.Fatal("B's refused lookup not counted in cluster_not_owner")
	}

	// A stops renewing (crash model); past the TTL, B takes over with the
	// full durable state.
	clk.Advance(6 * time.Second)
	sessB, err := b.LookupSession("job-1")
	if err != nil {
		t.Fatalf("steal on B after expiry: %v", err)
	}
	if fp := solFP(sessB.dom, sessB.SolutionValue()); fp != solFP(sessA.dom, sessA.SolutionValue()) {
		t.Fatal("B's rehydrated solution diverges from A's committed one")
	}

	// A's stale copy must fence on its next write: the clock guard sees
	// B's unexpired lease and refuses before anything lands.
	if _, err := sessA.QueueChanges(c.Tightening...); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("stale queue on A: %v, want ErrNotOwner", err)
	}
	if got := a.Metrics().ClusterFenced; got != 1 {
		t.Fatalf("cluster_fenced on A = %d, want 1", got)
	}
	if _, err := a.LookupSession("job-1"); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("lookup on A after fence: %v, want ErrNotOwner (B holds the lease)", err)
	}
	a.Close()
}

// The CAS fence: even when the stale owner's clock claims its lease is
// valid, an append behind the new owner's writes must conflict, fence,
// and commit NOTHING — across all four domains, with the journal staying
// gapless and replayable to the same state as an uninterrupted control.
func TestClusterFencedAppendNoDoubleCommit(t *testing.T) {
	for _, name := range allDomains {
		t.Run(name, func(t *testing.T) {
			st := store.NewMemory()
			clk := newFleetClock()
			svcs := newFleet(t, st, clk, 5*time.Second, 2)
			a, b := svcs[0], svcs[1]

			_, c := fixtureFor(t, a, name)
			sessA, err := a.CreateDomainSessionWithID("job-1", name, c.Problem, SessionConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sessA.Solve(); err != nil {
				t.Fatal(err)
			}

			clk.Advance(6 * time.Second)
			sessB, err := b.LookupSession("job-1")
			if err != nil {
				t.Fatalf("steal on B: %v", err)
			}
			if _, err := sessB.QueueChanges(c.Tightening...); err != nil {
				t.Fatal(err)
			}
			if _, err := sessB.Solve(); err != nil {
				t.Fatal(err)
			}

			// Sabotage A's clock guard so only the store's CAS stands between
			// its stale copy and a double commit.
			sessA.mu.Lock()
			sessA.lease.Expiry = clk.Now().Add(time.Hour)
			sessA.mu.Unlock()
			if _, err := sessA.QueueChanges(c.Tightening...); !errors.Is(err, ErrNotOwner) {
				t.Fatalf("stale append on A: %v, want ErrNotOwner via CAS fence", err)
			}
			if got := a.Metrics().ClusterFenced; got != 1 {
				t.Fatalf("cluster_fenced on A = %d, want 1", got)
			}

			// The journal must show exactly one history: gapless seqs, one
			// changes record, two solves, nothing from A's fenced attempt.
			snap, tail, err := st.Load("job-1")
			if err != nil {
				t.Fatal(err)
			}
			seq := snap.Seq
			kinds := map[string]int{}
			for _, rec := range tail {
				if rec.Seq != seq+1 {
					t.Fatalf("journal gap: record seq %d after %d", rec.Seq, seq)
				}
				seq = rec.Seq
				kinds[rec.Kind]++
			}
			if kinds[store.KindChanges] != 1 || kinds[store.KindSolve] != 2 || kinds[store.KindDiscard] != 0 {
				t.Fatalf("journal kinds = %v, want exactly 1 changes + 2 solves", kinds)
			}

			// Differential: B's state equals an uninterrupted single-node
			// control run of the same script.
			ctl := New(Options{})
			defer ctl.Close()
			ctlSess := runScript(t, ctl, name)
			if fp := solFP(sessB.dom, sessB.SolutionValue()); fp != solFP(ctlSess.dom, ctlSess.SolutionValue()) {
				t.Fatal("post-failover solution diverges from uninterrupted control")
			}
			if fp := probFP(sessB.dom, sessB.Problem()); fp != probFP(ctlSess.dom, ctlSess.Problem()) {
				t.Fatal("post-failover problem diverges from uninterrupted control")
			}
			a.Close()
			b.Close()
		})
	}
}

// A proven solve on one node must be served to a peer's identical task
// through the fleet cache, without the peer running the solver.
func TestClusterFleetCachePeek(t *testing.T) {
	st := store.NewMemory()
	clk := newFleetClock()
	svcs := newFleet(t, st, clk, time.Minute, 2)
	a, b := svcs[0], svcs[1]
	defer a.Close()
	defer b.Close()

	_, c := fixtureFor(t, a, "cnf")
	sessA, err := a.CreateDomainSession("cnf", c.Problem, SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sessA.Solve(); err != nil {
		t.Fatal(err)
	}
	if got := a.Metrics().ClusterPeekStores; got == 0 {
		t.Fatal("A's proven solve was not published to the fleet cache")
	}

	sessB, err := b.CreateDomainSession("cnf", c.Problem, SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sessB.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Fatal("B's identical solve not served as cached via fleet peek")
	}
	m := b.Metrics()
	if m.ClusterPeekHits != 1 {
		t.Fatalf("cluster_peek_hits on B = %d, want 1", m.ClusterPeekHits)
	}
	if m.SolverRuns != 0 {
		t.Fatalf("solver_runs on B = %d, want 0 (answer came from the fleet)", m.SolverRuns)
	}
	if fp := solFP(sessB.dom, sessB.SolutionValue()); fp != solFP(sessA.dom, sessA.SolutionValue()) {
		t.Fatal("peeked solution differs from the publisher's")
	}
}

// Auto ids must be node-salted in cluster mode (no cross-node collisions)
// and restart-stable (a restarted node resumes past its own ids).
func TestClusterAutoIDsSaltedAndRestartSafe(t *testing.T) {
	st := store.NewMemory()
	clk := newFleetClock()
	svcs := newFleet(t, st, clk, time.Minute, 2)
	a, b := svcs[0], svcs[1]

	_, c := fixtureFor(t, a, "cnf")
	sa, err := a.CreateDomainSession("cnf", c.Problem, SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.CreateDomainSession("cnf", c.Problem, SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if sa.ID() != "n1-s1" || sb.ID() != "n2-s1" {
		t.Fatalf("auto ids = %q, %q; want n1-s1, n2-s1", sa.ID(), sb.ID())
	}
	a.Close()

	// Restart n1 over the same store: its counter must advance past n1-s1.
	a2 := newFleet(t, st, clk, time.Minute, 1)[0]
	defer a2.Close()
	defer b.Close()
	s2, err := a2.CreateDomainSession("cnf", c.Problem, SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if s2.ID() != "n1-s2" {
		t.Fatalf("auto id after restart = %q, want n1-s2", s2.ID())
	}
}

func TestCreateWithIDValidation(t *testing.T) {
	svc := New(Options{Store: store.NewMemory()})
	defer svc.Close()
	_, c := fixtureFor(t, svc, "cnf")
	if _, err := svc.CreateDomainSessionWithID("job-1", "cnf", c.Problem, SessionConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.CreateDomainSessionWithID("job-1", "cnf", c.Problem, SessionConfig{}); !errors.Is(err, ErrSessionExists) {
		t.Fatalf("duplicate id: %v, want ErrSessionExists", err)
	}
	for _, bad := range []string{"", "a/b", "_cluster_lease_x", ".."} {
		if _, err := svc.CreateDomainSessionWithID(bad, "cnf", c.Problem, SessionConfig{}); err == nil {
			t.Fatalf("id %q accepted", bad)
		}
	}
}

func TestSessionPage(t *testing.T) {
	svc := New(Options{})
	defer svc.Close()
	_, c := fixtureFor(t, svc, "cnf")
	for i := 0; i < 5; i++ {
		if _, err := svc.CreateDomainSession("cnf", c.Problem, SessionConfig{}); err != nil {
			t.Fatal(err)
		}
	}
	page, next := svc.SessionPage("", 2)
	if !reflect.DeepEqual(page, []string{"s1", "s2"}) || next != "s2" {
		t.Fatalf("page 1 = %v next %q", page, next)
	}
	page, next = svc.SessionPage(next, 2)
	if !reflect.DeepEqual(page, []string{"s3", "s4"}) || next != "s4" {
		t.Fatalf("page 2 = %v next %q", page, next)
	}
	page, next = svc.SessionPage(next, 2)
	if !reflect.DeepEqual(page, []string{"s5"}) || next != "" {
		t.Fatalf("page 3 = %v next %q", page, next)
	}
	if page, next = svc.SessionPage("", 0); len(page) != 5 || next != "" {
		t.Fatalf("default page = %v next %q, want all 5", page, next)
	}
}

func TestReadyzSplitFromHealthz(t *testing.T) {
	st := store.NewMemory()
	node, err := cluster.NewNode(cluster.Config{ID: "n1", Store: st, Clock: newFleetClock().Now})
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Start(); err != nil {
		t.Fatal(err)
	}
	defer node.Stop()
	svc := New(Options{Store: st, Cluster: node})
	defer svc.Close()
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("healthz = %d", got)
	}
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("readyz = %d, want 200 while healthy", got)
	}
	svc.StartDraining()
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("healthz while draining = %d, want 200 (still live)", got)
	}
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "" {
		// readyz is a probe, not a client endpoint; no retry hint expected.
		t.Log("unexpected Retry-After on readyz (informational)")
	}
}
