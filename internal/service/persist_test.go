package service

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"ilpec/internal/domain"
	"ilpec/internal/store"
)

// allDomains are the built-in adapters with conformance fixtures; every
// persistence test runs its script across all of them, so the journal/
// snapshot codecs are exercised per domain.
var allDomains = []string{"cnf", "coloring", "sched", "partition"}

func fixtureFor(t *testing.T, svc *Service, name string) (domain.Domain, domain.Conformance) {
	t.Helper()
	d, ok := svc.DomainByName(name)
	if !ok {
		t.Fatalf("unknown domain %q", name)
	}
	fx, ok := d.(domain.Fixtured)
	if !ok {
		t.Fatalf("domain %q has no fixture", name)
	}
	return d, fx.Conformance()
}

func solFP(d domain.Domain, sol any) string {
	var buf bytes.Buffer
	d.FingerprintSolution(&buf, sol)
	return buf.String()
}

func probFP(d domain.Domain, p any) string {
	var buf bytes.Buffer
	d.FingerprintProblem(&buf, p)
	return buf.String()
}

// runScript drives one session through the shared test script — initial
// solve, tightening batch, solve — and returns the session.
func runScript(t *testing.T, svc *Service, name string) *Session {
	t.Helper()
	_, c := fixtureFor(t, svc, name)
	sess, err := svc.CreateDomainSession(name, c.Problem, SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Solve(); err != nil {
		t.Fatalf("initial solve: %v", err)
	}
	if _, err := sess.QueueChanges(c.Tightening...); err != nil {
		t.Fatalf("queue: %v", err)
	}
	if _, err := sess.Solve(); err != nil {
		t.Fatalf("batch solve: %v", err)
	}
	return sess
}

// TestRestartRecoversSessions is the heart of the subsystem: sessions
// created, changed, and solved against a store survive a full service
// restart with their exact problem, solution, and stats.
func TestRestartRecoversSessions(t *testing.T) {
	st := store.NewMemory()
	svc := New(Options{Store: st})
	ids := map[string]string{} // domain -> session id
	solFPs := map[string]string{}
	probFPs := map[string]string{}
	for _, name := range allDomains {
		sess := runScript(t, svc, name)
		d := sess.dom
		ids[name] = sess.ID()
		solFPs[name] = solFP(d, sess.SolutionValue())
		probFPs[name] = probFP(d, sess.Problem())
	}
	if m := svc.Metrics(); m.JournalAppends == 0 || m.SnapshotsWritten == 0 {
		t.Fatalf("no store traffic recorded: %+v", m)
	}
	svc.Close()

	// "Restart": a fresh service over the surviving store.
	svc2 := New(Options{Store: st})
	defer svc2.Close()
	if got := svc2.Metrics().Recoveries; got != int64(len(allDomains)) {
		t.Fatalf("recoveries %d, want %d", got, len(allDomains))
	}
	var want []string
	for _, id := range ids {
		want = append(want, id)
	}
	got := svc2.Sessions()
	if len(got) != len(want) {
		t.Fatalf("sessions after restart %v, want %d ids", got, len(want))
	}
	for _, name := range allDomains {
		sess, ok := svc2.Session(ids[name])
		if !ok {
			t.Fatalf("session %s (%s) not rehydrated", ids[name], name)
		}
		d := sess.dom
		if fp := solFP(d, sess.SolutionValue()); fp != solFPs[name] {
			t.Fatalf("%s: solution diverged after restart", name)
		}
		if fp := probFP(d, sess.Problem()); fp != probFPs[name] {
			t.Fatalf("%s: problem diverged after restart", name)
		}
		// A post-restart solve with nothing pending is a noop on the same
		// solution — the acceptance check of the subsystem.
		res, err := sess.Solve()
		if err != nil {
			t.Fatalf("%s: post-restart solve: %v", name, err)
		}
		if res.Status != "noop" || solFP(d, res.Solution) != solFPs[name] {
			t.Fatalf("%s: post-restart solve %q diverged", name, res.Status)
		}
		// And the session keeps working: a relax-only batch extends it.
		_, c := fixtureFor(t, svc2, name)
		if _, err := sess.QueueChanges(c.Relaxing...); err != nil {
			t.Fatal(err)
		}
		if res, err = sess.Solve(); err != nil || res.Status != "relaxed" {
			t.Fatalf("%s: relax after restart: %+v, %v", name, res, err)
		}
	}
	if m := svc2.Metrics(); m.Rehydrations != int64(len(allDomains)) {
		t.Fatalf("rehydrations %d, want %d", m.Rehydrations, len(allDomains))
	}
}

// TestRestartRecoversPendingChanges: queued-but-unsolved changes are
// journaled, so they survive a restart and resolve on the next solve.
func TestRestartRecoversPendingChanges(t *testing.T) {
	st := store.NewMemory()
	svc := New(Options{Store: st})
	_, c := fixtureFor(t, svc, "cnf")
	sess, err := svc.CreateDomainSession("cnf", c.Problem, SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Solve(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.QueueChanges(c.Tightening...); err != nil {
		t.Fatal(err)
	}
	id := sess.ID()
	svc.Close()

	svc2 := New(Options{Store: st})
	defer svc2.Close()
	sess2, ok := svc2.Session(id)
	if !ok {
		t.Fatal("session lost")
	}
	if got := sess2.Pending(); got != len(c.Tightening) {
		t.Fatalf("pending after restart %d, want %d", got, len(c.Tightening))
	}
	res, err := sess2.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Batched != len(c.Tightening) || res.Status != "fast" {
		t.Fatalf("post-restart batch solve %+v", res)
	}
}

// TestSnapshotCompaction: after SnapshotEvery journal records the session
// is re-snapshotted and the journal tail truncated, and the compacted
// state still restarts cleanly.
func TestSnapshotCompaction(t *testing.T) {
	st := store.NewMemory()
	svc := New(Options{Store: st, SnapshotEvery: 4})
	_, c := fixtureFor(t, svc, "coloring")
	sess, err := svc.CreateDomainSession("coloring", c.Problem, SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Solve(); err != nil {
		t.Fatal(err)
	}
	// Ten relax batches: 20 journal records, so at least 4 compactions.
	for i := 0; i < 10; i++ {
		if _, err := sess.QueueChanges(c.Relaxing[0]); err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Solve(); err != nil {
			t.Fatal(err)
		}
	}
	m := svc.Metrics()
	if m.SnapshotsWritten < 5 { // 1 at birth + ≥4 compactions
		t.Fatalf("snapshots_written %d, want ≥ 5", m.SnapshotsWritten)
	}
	snap, tail, err := st.Load(sess.ID())
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) >= 4 {
		t.Fatalf("journal tail %d records, compaction never ran", len(tail))
	}
	if snap.Seq == 0 {
		t.Fatal("snapshot never advanced past birth")
	}
	fpBefore := solFP(sess.dom, sess.SolutionValue())
	id := sess.ID()
	svc.Close()
	svc2 := New(Options{Store: st})
	defer svc2.Close()
	sess2, ok := svc2.Session(id)
	if !ok {
		t.Fatal("compacted session lost")
	}
	if solFP(sess2.dom, sess2.SolutionValue()) != fpBefore {
		t.Fatal("compacted session diverged after restart")
	}
}

// TestEvictionAndRehydration: beyond MaxLiveSessions the LRU session is
// snapshotted out of memory and transparently rebuilt on its next touch.
func TestEvictionAndRehydration(t *testing.T) {
	st := store.NewMemory()
	svc := New(Options{Store: st, MaxLiveSessions: 1})
	defer svc.Close()
	s1 := runScript(t, svc, "cnf")
	id1 := s1.ID()
	fp1 := solFP(s1.dom, s1.SolutionValue())

	s2 := runScript(t, svc, "coloring") // evicts s1
	if m := svc.Metrics(); m.Evictions == 0 {
		t.Fatalf("no eviction recorded: %+v", m)
	}
	if live := svc.LiveSessions(); !reflect.DeepEqual(live, []string{s2.ID()}) {
		t.Fatalf("live %v, want only %s", live, s2.ID())
	}
	if all := svc.Sessions(); len(all) != 2 {
		t.Fatalf("sessions %v, want both ids", all)
	}

	// The evicted pointer is detached; the id rehydrates.
	if _, err := s1.Solve(); err == nil {
		t.Fatal("evicted session pointer still solvable")
	}
	if _, err := s1.QueueChanges(); err == nil {
		t.Fatal("evicted session pointer still queueable")
	}
	back, ok := svc.Session(id1)
	if !ok {
		t.Fatal("evicted session did not rehydrate")
	}
	if back == s1 {
		t.Fatal("rehydration returned the detached instance")
	}
	if solFP(back.dom, back.SolutionValue()) != fp1 {
		t.Fatal("rehydrated solution diverged")
	}
	if m := svc.Metrics(); m.Rehydrations != 1 {
		t.Fatalf("rehydrations %d, want 1", m.Rehydrations)
	}
	// Rehydrating s1 pushed the live count back over the limit: s2 is out.
	if live := svc.LiveSessions(); !reflect.DeepEqual(live, []string{id1}) {
		t.Fatalf("live %v, want only %s", live, id1)
	}
}

// TestSessionTTLSweep: idle sessions are snapshotted-and-closed. With a
// store they stay durable and rehydratable; memory is reclaimed either
// way.
func TestSessionTTLSweep(t *testing.T) {
	st := store.NewMemory()
	svc := New(Options{Store: st, SessionTTL: 30 * time.Millisecond})
	defer svc.Close()
	sess := runScript(t, svc, "cnf")
	id := sess.ID()
	fp := solFP(sess.dom, sess.SolutionValue())

	deadline := time.Now().Add(5 * time.Second)
	for svc.Metrics().TTLExpirations == 0 {
		if time.Now().After(deadline) {
			t.Fatal("TTL sweep never fired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if live := svc.LiveSessions(); len(live) != 0 {
		t.Fatalf("expired session still live: %v", live)
	}
	if all := svc.Sessions(); !reflect.DeepEqual(all, []string{id}) {
		t.Fatalf("expired session not listed: %v", all)
	}
	back, ok := svc.Session(id)
	if !ok {
		t.Fatal("expired session did not rehydrate")
	}
	if solFP(back.dom, back.SolutionValue()) != fp {
		t.Fatal("expired session diverged")
	}
}

// TestSessionTTLWithoutStore: with no store the sweep closes idle
// sessions outright instead of leaking them.
func TestSessionTTLWithoutStore(t *testing.T) {
	svc := New(Options{SessionTTL: 20 * time.Millisecond})
	defer svc.Close()
	sess := runScript(t, svc, "cnf")
	id := sess.ID()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := svc.Session(id); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("idle session never closed")
		}
		// NOTE: Session(id) touches the session, so back off beyond the
		// TTL between polls.
		time.Sleep(25 * time.Millisecond)
	}
	if n := len(svc.Sessions()); n != 0 {
		t.Fatalf("%d sessions still listed", n)
	}
}

// TestCrashRecoveryDifferential is the satellite crash drill: for every
// domain, a file-backed session is killed mid-append (a torn journal
// tail), recovered by a fresh service, and differential-checked against
// an uninterrupted in-memory session running the identical script.
func TestCrashRecoveryDifferential(t *testing.T) {
	for _, name := range allDomains {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			st, err := store.NewFile(dir)
			if err != nil {
				t.Fatal(err)
			}
			// The crashing service: create, solve, tighten, solve, then
			// queue a relax batch... and die mid-append. No Close — a
			// crash never flushes.
			svc := New(Options{Store: st})
			sess := runScript(t, svc, name)
			_, c := fixtureFor(t, svc, name)
			if _, err := sess.QueueChanges(c.Relaxing...); err != nil {
				t.Fatal(err)
			}
			id := sess.ID()

			// Simulate the torn write: half a record, no newline, straight
			// into the journal file.
			journal := filepath.Join(dir, id, "journal.jsonl")
			f, err := os.OpenFile(journal, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteString(`0badc0de {"seq":999,"kind":"cha`); err != nil {
				t.Fatal(err)
			}
			f.Close()

			// Recovery: a fresh store + service over the same directory.
			st2, err := store.NewFile(dir)
			if err != nil {
				t.Fatal(err)
			}
			svc2 := New(Options{Store: st2})
			defer svc2.Close()
			recovered, ok := svc2.Session(id)
			if !ok {
				t.Fatal("crashed session did not recover")
			}
			if got := recovered.Pending(); got != len(c.Relaxing) {
				t.Fatalf("recovered pending %d, want %d", got, len(c.Relaxing))
			}
			res, err := recovered.Solve()
			if err != nil {
				t.Fatalf("post-recovery solve: %v", err)
			}

			// The uninterrupted control: same script, no store, no crash.
			control := New(Options{})
			defer control.Close()
			ctrlSess := runScript(t, control, name)
			if _, err := ctrlSess.QueueChanges(c.Relaxing...); err != nil {
				t.Fatal(err)
			}
			ctrlRes, err := ctrlSess.Solve()
			if err != nil {
				t.Fatal(err)
			}

			d := recovered.dom
			if probFP(d, recovered.Problem()) != probFP(d, ctrlSess.Problem()) {
				t.Fatal("recovered problem diverged from uninterrupted session")
			}
			if solFP(d, res.Solution) != solFP(d, ctrlRes.Solution) {
				t.Fatal("recovered solution diverged from uninterrupted session")
			}
			if res.Status != ctrlRes.Status || res.Batched != ctrlRes.Batched {
				t.Fatalf("recovered pass %q/%d, control %q/%d",
					res.Status, res.Batched, ctrlRes.Status, ctrlRes.Batched)
			}
		})
	}
}

// TestCloseSessionDeletesFromStore: DELETE removes both the memory and
// the durable state.
func TestCloseSessionDeletesFromStore(t *testing.T) {
	st := store.NewMemory()
	svc := New(Options{Store: st})
	defer svc.Close()
	sess := runScript(t, svc, "cnf")
	id := sess.ID()
	if !svc.CloseSession(id) {
		t.Fatal("close failed")
	}
	if _, ok := svc.Session(id); ok {
		t.Fatal("closed session still reachable")
	}
	if ids, _ := st.List(); len(ids) != 0 {
		t.Fatalf("store still holds %v", ids)
	}
	// Closing a persisted-only (evicted) session works too.
	sess2 := runScript(t, svc, "coloring")
	svc.retire(sess2)
	svc.mu.Lock()
	delete(svc.sessions, sess2.ID())
	svc.persisted[sess2.ID()] = true
	svc.mu.Unlock()
	if !svc.CloseSession(sess2.ID()) {
		t.Fatal("close of evicted session failed")
	}
	if ids, _ := st.List(); len(ids) != 0 {
		t.Fatalf("store still holds %v", ids)
	}
}

// TestCompactionAtThresholdSurvivesCrash (regression): a compaction
// snapshot triggered by the very record being appended must capture the
// POST-commit state. With SnapshotEvery=2 the queue append below lands
// exactly on the threshold; a crash right after it (no Close) must not
// lose the acknowledged batch.
func TestCompactionAtThresholdSurvivesCrash(t *testing.T) {
	st := store.NewMemory()
	svc := New(Options{Store: st, SnapshotEvery: 2})
	_, c := fixtureFor(t, svc, "cnf")
	sess, err := svc.CreateDomainSession("cnf", c.Problem, SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Solve(); err != nil { // journal seq 1
		t.Fatal(err)
	}
	if _, err := sess.QueueChanges(c.Tightening...); err != nil { // seq 2: compaction fires
		t.Fatal(err)
	}
	snap, tail, err := st.Load(sess.ID())
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 0 {
		t.Fatalf("journal not compacted at threshold: %d records", len(tail))
	}
	if len(snap.Pending) != len(c.Tightening) || len(snap.Solution) == 0 {
		t.Fatalf("compaction snapshot lost state: pending %d, solution %q",
			len(snap.Pending), snap.Solution)
	}

	// Crash (no Close): the compacted store alone must carry the session.
	svc2 := New(Options{Store: st})
	defer svc2.Close()
	back, ok := svc2.Session(sess.ID())
	if !ok {
		t.Fatal("session lost")
	}
	if got := back.Pending(); got != len(c.Tightening) {
		t.Fatalf("acknowledged batch lost across compaction+crash: pending %d, want %d",
			got, len(c.Tightening))
	}
	res, err := back.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Batched != len(c.Tightening) {
		t.Fatalf("recovered solve batched %d, want %d", res.Batched, len(c.Tightening))
	}
}
