package service

import (
	"encoding/json"
	"testing"

	"ilpec/internal/domain"
)

// FuzzDomainParseChange feeds arbitrary JSON to every registered domain's
// change decoder — the exact bytes an HTTP client can POST to
// /v1/sessions/{id}/changes and that the store journals verbatim. The
// decoder must never panic, and an accepted change must survive the
// journal round-trip (RenderChange → json.Marshal → ParseChange), since
// crash recovery replays changes from their rendered form.
func FuzzDomainParseChange(f *testing.F) {
	for _, name := range domain.Names() {
		d, ok := domain.Get(name)
		if !ok {
			f.Fatalf("registered domain %q missing from registry", name)
		}
		fx, ok := d.(domain.Fixtured)
		if !ok {
			continue
		}
		for _, raw := range fx.Conformance().TighteningJSON {
			f.Add(name, []byte(raw))
		}
	}
	f.Add("cnf", []byte(`{"kind": "bogus"}`))
	f.Add("coloring", []byte(`null`))
	f.Add("sched", []byte(`{}`))
	f.Add("partition", []byte(`[1, 2, 3]`))
	f.Fuzz(func(t *testing.T, name string, spec []byte) {
		d, ok := domain.Get(name)
		if !ok {
			return // unregistered domain name — nothing to test
		}
		change, err := d.ParseChange(spec)
		if err != nil {
			return
		}
		wire := d.RenderChange(change)
		if wire == nil {
			t.Fatalf("accepted change has no wire form (spec %q)", spec)
		}
		raw, err := json.Marshal(wire)
		if err != nil {
			t.Fatalf("encode accepted change: %v", err)
		}
		if _, err := d.ParseChange(raw); err != nil {
			t.Fatalf("journal round-trip rejected: %v (spec %q, rendered %s)", err, spec, raw)
		}
	})
}
