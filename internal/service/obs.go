package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"reflect"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"ilpec/internal/obs"
)

// This file is the service's observability seam: the HTTP middleware
// that mints request ids, assembles per-request trace trees, and records
// per-route latency; the solve-phase instrumentation hooks; and the
// Prometheus/JSON exposition served at /metrics (the legacy /v1/metrics
// snapshot is untouched).

const (
	defaultSlowTrace     = 250 * time.Millisecond
	defaultTraceRingSize = 64
)

// Solve-phase names, pre-registered so every phase series appears in the
// exposition from the first scrape (a zero histogram is still a series).
var solvePhases = []string{
	"queue_wait", "cache_lookup", "presolve", "cut_separation", "search", "journal_append",
}

// serviceObs bundles the service's instruments. All methods are
// nil-receiver-safe so instrumentation sites need no guards.
type serviceObs struct {
	reg    *obs.Registry
	traces *obs.TraceRing
	log    *slog.Logger

	phases map[string]*obs.Histogram

	// Request-id minting: a per-process epoch plus a counter keeps ids
	// unique without a dependency on crypto/rand in the hot path.
	reqEpoch int64
	reqSeq   atomic.Int64
}

func newServiceObs(opts Options) *serviceObs {
	so := &serviceObs{
		reg:      opts.Obs,
		log:      opts.RequestLog,
		reqEpoch: time.Now().UnixNano(),
		phases:   make(map[string]*obs.Histogram, len(solvePhases)),
	}
	slow := opts.SlowTraceThreshold
	if slow <= 0 {
		slow = defaultSlowTrace
	}
	so.traces = obs.NewTraceRing(defaultTraceRingSize, slow)
	for _, p := range solvePhases {
		so.phases[p] = so.reg.Histogram("ec_solve_phase_seconds",
			"Wall-clock per solve phase (seconds).", obs.Label{Key: "phase", Value: p})
	}
	return so
}

// phase records one completed solve phase: the histogram observation
// plus, when ctx carries a trace, a post-hoc child span ending now.
func (so *serviceObs) phase(ctx context.Context, name string, d time.Duration) {
	so.phaseAt(ctx, name, time.Now().Add(-d), d)
}

func (so *serviceObs) phaseAt(ctx context.Context, name string, start time.Time, d time.Duration) {
	if so == nil {
		return
	}
	so.phases[name].Observe(d)
	if sp := obs.SpanFromContext(ctx); sp != nil {
		sp.Child(name, start, d)
	}
}

// solverPhases lays the kernel's post-hoc phase durations onto the
// request timeline: the phases ran back to back ending roughly now, so
// their starts are reconstructed by walking backwards from the end.
func (so *serviceObs) solverPhases(ctx context.Context, presolve, cuts, search time.Duration) {
	if so == nil {
		return
	}
	now := time.Now()
	searchStart := now.Add(-search)
	cutStart := searchStart.Add(-cuts)
	preStart := cutStart.Add(-presolve)
	if presolve > 0 {
		so.phaseAt(ctx, "presolve", preStart, presolve)
	}
	if cuts > 0 {
		so.phaseAt(ctx, "cut_separation", cutStart, cuts)
	}
	so.phaseAt(ctx, "search", searchStart, search)
}

// storeRecorder builds the callback store.NewInstrumented feeds with
// per-operation latencies. backend labels the concrete store.
func (so *serviceObs) storeRecorder(backend string) func(op string, d time.Duration, err error) {
	if so == nil || so.reg == nil {
		return nil
	}
	return func(op string, d time.Duration, err error) {
		so.reg.Histogram("ec_store_op_seconds", "Durable-store operation latency (seconds).",
			obs.Label{Key: "backend", Value: backend}, obs.Label{Key: "op", Value: op}).Observe(d)
		if err != nil {
			so.reg.Counter("ec_store_op_errors_total", "Durable-store operations that returned an error.",
				obs.Label{Key: "backend", Value: backend}, obs.Label{Key: "op", Value: op}).Inc()
		}
	}
}

func (so *serviceObs) mintRequestID() string {
	return fmt.Sprintf("req-%x-%x", so.reqEpoch, so.reqSeq.Add(1))
}

// ---- HTTP middleware -------------------------------------------------------

// routeName classifies a request for metric labels. http.Request.Pattern
// is set on the mux's internal copy, unreadable after ServeHTTP returns,
// so the classification is by hand — which also keeps label cardinality
// bounded for arbitrary (404) paths.
func routeName(method, path string) string {
	switch {
	case path == "/v1/sessions":
		if method == http.MethodGet {
			return "sessions_list"
		}
		return "session_create"
	case strings.HasPrefix(path, "/v1/sessions/"):
		switch {
		case strings.HasSuffix(path, "/changes"):
			return "session_changes"
		case strings.HasSuffix(path, "/solve"):
			return "session_solve"
		case strings.HasSuffix(path, "/flex"):
			return "session_flex"
		case method == http.MethodDelete:
			return "session_delete"
		default:
			return "session_get"
		}
	case path == "/v1/domains":
		return "domains"
	case path == "/v1/metrics":
		return "metrics"
	case path == "/metrics":
		return "prom_metrics"
	case path == "/v1/debug/traces":
		return "debug_traces"
	case path == "/healthz":
		return "healthz"
	case path == "/readyz":
		return "readyz"
	default:
		return "other"
	}
}

func statusClass(status int) string {
	switch {
	case status < 300:
		return "2xx"
	case status < 400:
		return "3xx"
	case status < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// wantsTrace reports whether the client asked for the request's span
// tree in the response (?trace=1 or X-EC-Trace: 1).
func wantsTrace(r *http.Request) bool {
	return r.URL.Query().Get("trace") == "1" || r.Header.Get("X-EC-Trace") == "1"
}

// obsResponseWriter captures the status code and, for traced requests,
// buffers the body so the rendered span tree can be spliced into the
// JSON response after the handler returns.
type obsResponseWriter struct {
	http.ResponseWriter
	status      int
	wroteHeader bool
	buffer      *bytes.Buffer // non-nil = hold the response back for trace injection
}

func (w *obsResponseWriter) WriteHeader(code int) {
	if w.wroteHeader {
		return
	}
	w.wroteHeader = true
	w.status = code
	if w.buffer == nil {
		w.ResponseWriter.WriteHeader(code)
	}
}

func (w *obsResponseWriter) Write(b []byte) (int, error) {
	if !w.wroteHeader {
		w.WriteHeader(http.StatusOK)
	}
	if w.buffer != nil {
		return w.buffer.Write(b)
	}
	return w.ResponseWriter.Write(b)
}

func (w *obsResponseWriter) statusOr200() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// flushTraced releases a buffered response, splicing the trace into a
// top-level JSON object body (any other shape passes through unchanged).
func (w *obsResponseWriter) flushTraced(trace *obs.SpanOut) {
	body := w.buffer.Bytes()
	var m map[string]any
	if json.Unmarshal(body, &m) == nil && m != nil {
		m["trace"] = trace
		if out, err := json.MarshalIndent(m, "", "  "); err == nil {
			body = out
		}
	}
	w.ResponseWriter.WriteHeader(w.statusOr200())
	w.ResponseWriter.Write(body) //nolint:errcheck // client went away; nothing to do
}

// instrumentHandler is the outermost HTTP layer: request ids, the
// per-request trace root, per-route latency/status metrics, the slow
// trace ring, structured request logs, and on-demand trace injection.
func instrumentHandler(svc *Service, next http.Handler) http.Handler {
	so := svc.sobs
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route := routeName(r.Method, r.URL.Path)
		reqID := r.Header.Get("X-Request-ID")
		if reqID == "" {
			reqID = so.mintRequestID()
		}
		w.Header().Set("X-Request-ID", reqID)

		// Every request is traced internally (spans are a few small
		// allocations), so the slow ring can catch requests nobody thought
		// to trace; the tree is only returned when asked for.
		ctx := obs.WithRequestID(r.Context(), reqID)
		ctx, root := obs.NewTrace(ctx, "http "+route)
		root.SetAttr("method", r.Method)
		root.SetAttr("path", r.URL.Path)
		root.SetAttr("request_id", reqID)
		rw := &obsResponseWriter{ResponseWriter: w}
		if wantsTrace(r) {
			rw.buffer = &bytes.Buffer{}
		}

		next.ServeHTTP(rw, r.WithContext(ctx))

		root.End()
		status := rw.statusOr200()
		root.SetAttr("status", strconv.Itoa(status))
		d := root.Duration()
		rendered := root.Render()
		so.traces.Offer(rendered, d)
		if rw.buffer != nil {
			rw.flushTraced(rendered)
		}
		so.reg.Histogram("ec_http_request_seconds", "HTTP request latency by route (seconds).",
			obs.Label{Key: "route", Value: route}).Observe(d)
		so.reg.Counter("ec_http_requests_total", "HTTP requests by route and status class.",
			obs.Label{Key: "route", Value: route}, obs.Label{Key: "status", Value: statusClass(status)}).Inc()
		if so.log != nil {
			so.log.LogAttrs(ctx, slog.LevelInfo, "request",
				slog.String("request_id", reqID),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("route", route),
				slog.Int("status", status),
				slog.Duration("duration", d),
			)
		}
	})
}

// ---- exposition ------------------------------------------------------------

// promGauges are the MetricsSnapshot fields that report point-in-time
// state rather than cumulative counts.
var promGauges = map[string]bool{
	"sessions_live":      true,
	"cache_entries":      true,
	"sessions_persisted": true,
	"sessions_degraded":  true,
}

// writeSnapshotProm renders every MetricsSnapshot field as an
// ec_service_<json_tag> series. Reflection keeps the exposition in
// lockstep with the snapshot: a counter added to Metrics and
// MetricsSnapshot appears here with no further wiring (the golden test
// in obs_golden_test.go pins this chain).
func writeSnapshotProm(w io.Writer, snap MetricsSnapshot) {
	v := reflect.ValueOf(snap)
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		tag, _, _ := strings.Cut(t.Field(i).Tag.Get("json"), ",")
		if tag == "" || tag == "-" {
			continue
		}
		kind := "counter"
		if promGauges[tag] {
			kind = "gauge"
		}
		name := "ec_service_" + tag
		fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", name, kind, name, v.Field(i).Int())
	}
}

// handleProm serves GET /metrics: Prometheus text by default (the
// /v1/metrics counters as ec_service_* series plus every registry
// instrument), or the JSON form with ?format=json.
func handleProm(svc *Service, w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, map[string]any{
			"service": svc.Metrics(),
			"series":  svc.sobs.reg.Snapshot(),
		})
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	writeSnapshotProm(w, svc.Metrics())
	svc.sobs.reg.WritePrometheus(w)
}

// handleDebugTraces serves GET /v1/debug/traces: the retained slow
// traces, oldest first.
func handleDebugTraces(svc *Service, w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"traces": svc.sobs.traces.Snapshot()})
}
