package service

import (
	"errors"
	"strings"
	"testing"
	"time"

	"ilpec/internal/store"
)

// countKind tallies the journal records of one kind for a session.
func countKind(t *testing.T, st store.Store, id, kind string) int {
	t.Helper()
	_, tail, err := st.Load(id)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, rec := range tail {
		if rec.Kind == kind {
			n++
		}
	}
	return n
}

// An Idempotency-Keyed batch must be applied exactly once: a same-key
// replay on the same node is acknowledged as a duplicate without a
// second journal record, and — the failure mode behind lost-response
// client retries — so is a replay against a failover successor that
// rebuilt the dedup window from the journal.
func TestClusterBatchDedupAcrossFailover(t *testing.T) {
	st := store.NewMemory()
	clk := newFleetClock()
	svcs := newFleet(t, st, clk, 5*time.Second, 2)
	a, b := svcs[0], svcs[1]
	defer a.Close()
	defer b.Close()

	_, c := fixtureFor(t, a, "cnf")
	sessA, err := a.CreateDomainSessionWithID("job-1", "cnf", c.Problem, SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	pending, dup, err := sessA.QueueChangesKeyed("batch-1", c.Tightening...)
	if err != nil || dup {
		t.Fatalf("first keyed queue: pending=%d dup=%v err=%v", pending, dup, err)
	}

	// Same key, same node: the retry of a lost 202.
	pending2, dup, err := sessA.QueueChangesKeyed("batch-1", c.Tightening...)
	if err != nil || !dup || pending2 != pending {
		t.Fatalf("same-node replay: pending=%d dup=%v err=%v, want duplicate with pending unchanged (%d)", pending2, dup, err, pending)
	}
	if got := countKind(t, st, "job-1", store.KindChanges); got != 1 {
		t.Fatalf("journal has %d changes records after same-node replay, want 1", got)
	}
	if got := a.Metrics().DuplicateBatches; got != 1 {
		t.Fatalf("duplicate_batches on A = %d, want 1", got)
	}

	// A dies; B takes over past the TTL and must rebuild the dedup window
	// from the journal's BatchID column.
	clk.Advance(6 * time.Second)
	sessB, err := b.LookupSession("job-1")
	if err != nil {
		t.Fatalf("steal on B: %v", err)
	}
	pendingB, dup, err := sessB.QueueChangesKeyed("batch-1", c.Tightening...)
	if err != nil || !dup || pendingB != pending {
		t.Fatalf("cross-node replay: pending=%d dup=%v err=%v, want duplicate with pending %d", pendingB, dup, err, pending)
	}
	if got := countKind(t, st, "job-1", store.KindChanges); got != 1 {
		t.Fatalf("journal has %d changes records after failover replay, want exactly 1 (double apply!)", got)
	}

	// A genuinely new key still queues.
	if _, dup, err := sessB.QueueChangesKeyed("batch-2", c.Tightening...); err != nil || dup {
		t.Fatalf("fresh key on B: dup=%v err=%v", dup, err)
	}
	if got := countKind(t, st, "job-1", store.KindChanges); got != 2 {
		t.Fatalf("journal has %d changes records after fresh batch, want 2", got)
	}
}

// The dedup window must also survive compaction: once the journal is
// folded into a snapshot, the keys ride Snapshot.RecentBatches.
func TestClusterBatchDedupSurvivesSnapshot(t *testing.T) {
	st := store.NewMemory()
	clk := newFleetClock()
	svcs := newFleet(t, st, clk, 5*time.Second, 2)
	a, b := svcs[0], svcs[1]
	defer a.Close()
	defer b.Close()

	_, c := fixtureFor(t, a, "cnf")
	sessA, err := a.CreateDomainSessionWithID("job-1", "cnf", c.Problem, SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sessA.QueueChangesKeyed("batch-1", c.Tightening...); err != nil {
		t.Fatal(err)
	}
	// Force the journal into the snapshot.
	sessA.mu.Lock()
	err = sessA.persistSnapshotLocked()
	sessA.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}

	clk.Advance(6 * time.Second)
	sessB, err := b.LookupSession("job-1")
	if err != nil {
		t.Fatal(err)
	}
	if _, dup, err := sessB.QueueChangesKeyed("batch-1", c.Tightening...); err != nil || !dup {
		t.Fatalf("replay after compaction: dup=%v err=%v, want duplicate", dup, err)
	}
}

// Deleting a session must stick cluster-wide: a stale former owner whose
// lease lapsed mid-delete may neither write its in-memory copy back nor
// re-acquire the lease — the deletion tombstone fences it. An explicit
// re-create of the id, by contrast, reclaims the tombstone.
func TestClusterDeleteTombstoneNoResurrection(t *testing.T) {
	st := store.NewMemory()
	clk := newFleetClock()
	svcs := newFleet(t, st, clk, 5*time.Second, 2)
	a, b := svcs[0], svcs[1]
	defer a.Close()
	defer b.Close()

	_, c := fixtureFor(t, a, "cnf")
	sessA, err := a.CreateDomainSessionWithID("job-1", "cnf", c.Problem, SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sessA.Solve(); err != nil {
		t.Fatal(err)
	}

	// B steals the lapsed session and deletes it for good.
	clk.Advance(6 * time.Second)
	if _, err := b.LookupSession("job-1"); err != nil {
		t.Fatalf("steal on B: %v", err)
	}
	if !b.CloseSession("job-1") {
		t.Fatal("close on B reported not found")
	}
	if _, _, err := st.Load("job-1"); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("store still has job-1 after delete: %v", err)
	}

	// A's stale in-memory copy tries to write: its lease renewal must see
	// the tombstone and fence WITHOUT persisting anything.
	if _, err := sessA.QueueChanges(c.Tightening...); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("stale write on A after delete: %v, want ErrNotOwner", err)
	}
	if _, _, err := st.Load("job-1"); !errors.Is(err, store.ErrNotFound) {
		t.Fatal("stale owner resurrected the deleted session in the store")
	}

	// A's lookups converge on unknown (first drops the fenced ghost).
	a.LookupSession("job-1") //nolint:errcheck
	if _, err := a.LookupSession("job-1"); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("lookup on A after delete: %v, want ErrUnknownSession", err)
	}

	// Deliberate reuse of the id is allowed: create reclaims the tombstone.
	sess2, err := b.CreateDomainSessionWithID("job-1", "cnf", c.Problem, SessionConfig{})
	if err != nil {
		t.Fatalf("re-create of deleted id: %v", err)
	}
	if _, err := sess2.Solve(); err != nil {
		t.Fatal(err)
	}
}

// Probing lookups for ids that never existed must not mint durable
// _cluster_lease_ metadata: before the fix every bogus id leaked one
// meta session into the shared store forever.
func TestClusterLookupUnknownIDMintsNoLeaseMeta(t *testing.T) {
	st := store.NewMemory()
	clk := newFleetClock()
	svc := newFleet(t, st, clk, 5*time.Second, 1)[0]
	defer svc.Close()

	for _, id := range []string{"ghost-1", "ghost-2", "ghost-3"} {
		if _, err := svc.LookupSession(id); !errors.Is(err, ErrUnknownSession) {
			t.Fatalf("lookup %q: %v, want ErrUnknownSession", id, err)
		}
	}
	ids, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if strings.HasPrefix(id, "_cluster_lease_ghost") {
			t.Fatalf("probing lookup minted durable lease meta %q", id)
		}
	}
}
