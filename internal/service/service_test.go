package service

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"ilpec/internal/cnf"
	"ilpec/internal/core"
	"ilpec/internal/ilp"
)

// testFormula is a small satisfiable instance with room for don't-cares.
func testFormula() *cnf.Formula {
	return cnf.FromClauses(
		[]int{1, 2},
		[]int{-1, 3},
		[]int{2, 4},
		[]int{-3, -4, 5},
		[]int{5, 6},
	)
}

func newTestService(t *testing.T, opts Options) *Service {
	t.Helper()
	svc := New(opts)
	t.Cleanup(svc.Close)
	return svc
}

func TestSessionLifecycle(t *testing.T) {
	svc := newTestService(t, Options{})
	sess, err := svc.CreateSession(testFormula(), SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Solution() != nil {
		t.Fatal("unsolved session has a solution")
	}
	res, err := sess.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != "initial" {
		t.Fatalf("status %q, want initial", res.Status)
	}
	if !res.Assignment.Satisfies(sess.Formula()) {
		t.Fatal("initial solution does not satisfy the formula")
	}
	info := sess.Info()
	if !info.Solved || info.Solves != 1 {
		t.Fatalf("info %+v after initial solve", info)
	}
	if got, want := len(svc.Sessions()), 1; got != want {
		t.Fatalf("%d live sessions, want %d", got, want)
	}
	if !svc.CloseSession(sess.ID()) {
		t.Fatal("close failed")
	}
	if svc.CloseSession(sess.ID()) {
		t.Fatal("double close succeeded")
	}
}

func TestBatchCoalescing(t *testing.T) {
	for _, strat := range []core.Strategy{core.FastEC, core.PreservingEC, core.Replan} {
		t.Run(strat.String(), func(t *testing.T) {
			svc := newTestService(t, Options{Strategy: strat})
			sess, err := svc.CreateSession(testFormula(), SessionConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sess.Solve(); err != nil {
				t.Fatal(err)
			}
			// Three tightening changes, queued, resolved in ONE pass.
			if n, err := sess.Queue(core.NewClause(-2, 3), core.NewClause(1, 4), core.NewClause(-5, 2)); err != nil || n != 3 {
				t.Fatalf("pending %d, want 3", n)
			}
			res, err := sess.Solve()
			if err != nil {
				t.Fatal(err)
			}
			if res.Batched != 3 {
				t.Fatalf("batched %d changes, want 3", res.Batched)
			}
			if res.Status != strat.String() {
				t.Fatalf("status %q, want %q", res.Status, strat)
			}
			if !res.Assignment.Satisfies(sess.Formula()) {
				t.Fatal("batch solution does not satisfy the changed formula")
			}
			info := sess.Info()
			if info.Batches != 1 || info.ChangesQueued != 3 {
				t.Fatalf("info %+v: want 1 batch for 3 changes", info)
			}
		})
	}
}

func TestRelaxingBatchSkipsSolver(t *testing.T) {
	svc := newTestService(t, Options{})
	sess, err := svc.CreateSession(testFormula(), SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Solve(); err != nil {
		t.Fatal(err)
	}
	runsBefore := svc.Metrics().SolverRuns
	sess.Queue(core.GrowVariable(), core.DropClause(0))
	res, err := sess.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != "relaxed" || res.Preserved != 1 {
		t.Fatalf("relax pass got status=%q preserved=%v", res.Status, res.Preserved)
	}
	m := svc.Metrics()
	if m.SolverRuns != runsBefore {
		t.Fatalf("relaxing batch ran the solver (%d -> %d runs)", runsBefore, m.SolverRuns)
	}
	if m.RelaxFastPaths != 1 {
		t.Fatalf("relax fast paths %d, want 1", m.RelaxFastPaths)
	}
	if !res.Assignment.Satisfies(sess.Formula()) {
		t.Fatal("relaxed solution invalid")
	}
}

func TestNoopSolve(t *testing.T) {
	svc := newTestService(t, Options{})
	sess, _ := svc.CreateSession(testFormula(), SessionConfig{})
	if _, err := sess.Solve(); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != "noop" || res.Batched != 0 {
		t.Fatalf("noop solve got %+v", res)
	}
}

func TestSolveCacheAcrossSessions(t *testing.T) {
	svc := newTestService(t, Options{})
	a, err := svc.CreateSession(testFormula(), SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	resA, err := a.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if resA.Cached {
		t.Fatal("first solve was cached")
	}
	b, err := svc.CreateSession(testFormula(), SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	resB, err := b.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !resB.Cached {
		t.Fatal("identical second-session solve missed the cache")
	}
	if got := resB.Assignment.String(); got != resA.Assignment.String() {
		t.Fatalf("cached solve differs: %s vs %s", got, resA.Assignment)
	}
	m := svc.Metrics()
	if m.CacheHits < 1 || m.SolverRuns != 1 {
		t.Fatalf("metrics %+v: want ≥1 hit and exactly 1 solver run", m)
	}
}

func TestDifferentOptionsMissCache(t *testing.T) {
	svc := newTestService(t, Options{})
	a, _ := svc.CreateSession(testFormula(), SessionConfig{})
	if _, err := a.Solve(); err != nil {
		t.Fatal(err)
	}
	lp := ilp.Options{Bounding: ilp.LPBound}
	b, _ := svc.CreateSession(testFormula(), SessionConfig{Solve: &lp})
	res, err := b.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Fatal("solve with different options hit the cache")
	}
	// The incumbent store still shares the earlier solution as warm start.
	if svc.Metrics().IncumbentHits < 1 {
		t.Fatal("incumbent store unused across options variants")
	}
}

func TestErrorKeepsSessionUsable(t *testing.T) {
	svc := newTestService(t, Options{})
	sess, _ := svc.CreateSession(testFormula(), SessionConfig{})
	if _, err := sess.Solve(); err != nil {
		t.Fatal(err)
	}
	before := sess.Info()

	// Invalid change: out-of-range clause index.
	sess.Queue(core.DropClause(99))
	if _, err := sess.Solve(); err == nil {
		t.Fatal("invalid batch succeeded")
	}
	// Unsatisfiable batch: force 1 and ¬1.
	sess.Queue(core.NewClause(1), core.NewClause(-1))
	if _, err := sess.Solve(); err == nil {
		t.Fatal("unsatisfiable batch succeeded")
	}
	after := sess.Info()
	if after.Vars != before.Vars || after.Clauses != before.Clauses {
		t.Fatalf("failed batches mutated the session: %+v -> %+v", before, after)
	}
	if after.Pending != 0 {
		t.Fatalf("failed batch left %d pending changes", after.Pending)
	}
	// The session still works.
	sess.Queue(core.NewClause(-2, 5))
	if _, err := sess.Solve(); err != nil {
		t.Fatalf("session unusable after failed batches: %v", err)
	}
}

func TestSessionLimit(t *testing.T) {
	svc := newTestService(t, Options{MaxSessions: 2})
	for i := 0; i < 2; i++ {
		if _, err := svc.CreateSession(testFormula(), SessionConfig{}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := svc.CreateSession(testFormula(), SessionConfig{}); err == nil {
		t.Fatal("session limit not enforced")
	}
}

func TestClosedService(t *testing.T) {
	svc := New(Options{})
	sess, _ := svc.CreateSession(testFormula(), SessionConfig{})
	svc.Close()
	if _, err := svc.CreateSession(testFormula(), SessionConfig{}); err == nil {
		t.Fatal("create succeeded on closed service")
	}
	if _, err := sess.Solve(); err == nil {
		t.Fatal("solve succeeded on closed service")
	}
	svc.Close() // idempotent
}

// TestConcurrentSessions is the acceptance scenario: ≥8 parallel sessions
// driven through create → batch changes → solve. Identical subproblems
// must be answered from the cache (hits > 0) and batching must keep the
// number of change-resolution passes below the number of posted changes.
func TestConcurrentSessions(t *testing.T) {
	const sessions = 8
	const changesPerSession = 3
	svc := newTestService(t, Options{Workers: 4})

	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess, err := svc.CreateSession(testFormula(), SessionConfig{})
			if err != nil {
				errs <- err
				return
			}
			if _, err := sess.Solve(); err != nil {
				errs <- fmt.Errorf("%s initial: %w", sess.ID(), err)
				return
			}
			sess.Queue(core.NewClause(-2, 3))
			sess.Queue(core.NewClause(1, 4), core.NewClause(-5, 2))
			res, err := sess.Solve()
			if err != nil {
				errs <- fmt.Errorf("%s batch: %w", sess.ID(), err)
				return
			}
			if res.Batched != changesPerSession {
				errs <- fmt.Errorf("%s batched %d, want %d", sess.ID(), res.Batched, changesPerSession)
				return
			}
			if !res.Assignment.Satisfies(sess.Formula()) {
				errs <- fmt.Errorf("%s solution invalid", sess.ID())
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	m := svc.Metrics()
	if m.CacheHits == 0 {
		t.Fatalf("no cache hits across %d identical sessions: %+v", sessions, m)
	}
	if total := int64(sessions * changesPerSession); m.Batches >= total || m.ChangesQueued != total {
		t.Fatalf("batched solves %d not < total posted changes %d (%+v)", m.Batches, total, m)
	}
	if m.SessionsCreated != sessions {
		t.Fatalf("sessions created %d, want %d", m.SessionsCreated, sessions)
	}
	// All 16 solves (8 initial + 8 batch) target two distinct subproblems:
	// the solver must have run far fewer times than the solve count.
	if m.SolverRuns >= m.Solves {
		t.Fatalf("solver ran %d times for %d solves; cache ineffective", m.SolverRuns, m.Solves)
	}
}

// cloneAssignment is the domain clone function used by the cache tests.
func cloneAssignment(v any) any { return v.(cnf.Assignment).Clone() }

func TestCacheLRUEviction(t *testing.T) {
	c := newSolveCache(2)
	mk := func(v int) func() (any, bool, error) {
		return func() (any, bool, error) {
			a := cnf.NewAssignment(1)
			if v%2 == 0 {
				a.Set(1, cnf.True)
			} else {
				a.Set(1, cnf.False)
			}
			return a, true, nil
		}
	}
	for i := 0; i < 3; i++ {
		if _, hit, _ := c.do(context.Background(), fmt.Sprintf("k%d", i), cloneAssignment, mk(i)); hit {
			t.Fatalf("key k%d hit on first insert", i)
		}
	}
	if c.len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.len())
	}
	// k0 is the eviction victim; k2 must still be resident.
	if _, hit, _ := c.do(context.Background(), "k2", cloneAssignment, mk(2)); !hit {
		t.Fatal("most recent key evicted")
	}
	if _, hit, _ := c.do(context.Background(), "k0", cloneAssignment, mk(0)); hit {
		t.Fatal("oldest key survived a full eviction cycle")
	}
}

func TestCacheInflightDedup(t *testing.T) {
	c := newSolveCache(8)
	var runs int
	started := make(chan struct{})
	release := make(chan struct{})
	compute := func() (any, bool, error) {
		runs++
		close(started)
		<-release
		return cnf.NewAssignment(1), true, nil
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.do(context.Background(), "k", cloneAssignment, compute)
	}()
	<-started
	// Second caller joins the in-flight solve instead of recomputing.
	hitCh := make(chan bool, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, hit, _ := c.do(context.Background(), "k", cloneAssignment, func() (any, bool, error) {
			t.Error("second compute ran despite in-flight solve")
			return cnf.NewAssignment(1), true, nil
		})
		hitCh <- hit
	}()
	time.Sleep(10 * time.Millisecond) // let the second caller block
	close(release)
	wg.Wait()
	if runs != 1 {
		t.Fatalf("compute ran %d times, want 1", runs)
	}
	if !<-hitCh {
		t.Fatal("joining an in-flight solve did not count as a hit")
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := newSolveCache(8)
	calls := 0
	fail := func() (any, bool, error) {
		calls++
		return nil, true, fmt.Errorf("boom %d", calls)
	}
	if _, _, err := c.do(context.Background(), "k", cloneAssignment, fail); err == nil {
		t.Fatal("error swallowed")
	}
	if _, hit, err := c.do(context.Background(), "k", cloneAssignment, fail); err == nil || hit {
		t.Fatalf("failed solve was cached (hit=%v err=%v)", hit, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2", calls)
	}
}

func TestKeyHasherDistinguishes(t *testing.T) {
	svc := newTestService(t, Options{})
	sess, err := svc.CreateSession(testFormula(), SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	f := testFormula()
	g := testFormula()
	g.AddClause(cnf.Clause{1})
	if sess.taskKeyLocked("plain", f, nil) == sess.taskKeyLocked("plain", g, nil) {
		t.Fatal("different formulas share a key")
	}
	lp := ilp.Options{Bounding: ilp.LPBound}
	lpSess, err := svc.CreateSession(testFormula(), SessionConfig{Solve: &lp})
	if err != nil {
		t.Fatal(err)
	}
	if sess.taskKeyLocked("plain", f, nil) == lpSess.taskKeyLocked("plain", f, nil) {
		t.Fatal("different options share a key")
	}
	warm := ilp.Options{WarmStart: ilp.Solution{1}}
	warmSess, err := svc.CreateSession(testFormula(), SessionConfig{Solve: &warm})
	if err != nil {
		t.Fatal(err)
	}
	if sess.taskKeyLocked("plain", f, nil) != warmSess.taskKeyLocked("plain", f, nil) {
		t.Fatal("warm start leaked into the plain key")
	}
	p := cnf.NewAssignment(f.NumVars)
	p.Set(1, cnf.True)
	q := p.Clone()
	q.Set(1, cnf.False)
	if sess.taskKeyLocked("fast", f, p) == sess.taskKeyLocked("fast", f, q) {
		t.Fatal("fast keys ignore the previous solution")
	}
	if sess.taskKeyLocked("plain", f, nil) == sess.taskKeyLocked("fast", f, p) {
		t.Fatal("task kinds share a key")
	}
	// Another domain with an identical byte layout must not collide: the
	// domain name is part of every key.
	colSess, err := svc.CreateDomainSession("coloring", colTestProblem(), SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if sess.taskKeyLocked("plain", f, nil) == colSess.taskKeyLocked("plain", colTestProblem(), nil) {
		t.Fatal("domains share a key")
	}
}

func TestFlexReportAndInfo(t *testing.T) {
	svc := newTestService(t, Options{})
	sess, _ := svc.CreateSession(testFormula(), SessionConfig{})
	if _, err := sess.FlexReport(2); err == nil {
		t.Fatal("flex report before solve succeeded")
	}
	if _, err := sess.Solve(); err != nil {
		t.Fatal(err)
	}
	rep, err := sess.FlexReport(2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != testFormula().NumClauses() {
		t.Fatalf("flex total %d, want %d", rep.Total, testFormula().NumClauses())
	}
}
