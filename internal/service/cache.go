package service

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"hash"
	"sync"

	"ilpec/internal/ilp"
)

// ownerCancelled reports whether an in-flight solve failed because ITS
// requester's context died (as opposed to a real solver failure that
// every joiner should share).
func ownerCancelled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// solveCache is an LRU cache of solved subproblems with in-flight
// deduplication: concurrent requests for the same key run the solver once
// and share the result. Keys are canonical hashes of the subproblem (task
// kind + domain + problem + previous solution + solver options), so
// identical subproblems across sessions are answered without touching
// the solver. Values are opaque domain solutions; the caller supplies the
// clone function of the owning domain.
type solveCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List                // front = most recently used; guarded by mu
	entries  map[string]*list.Element  // guarded by mu
	inflight map[string]*inflightSolve // guarded by mu
}

type cacheEntry struct {
	key string
	val any
	// clone deep-copies val before it escapes the cache.
	clone func(any) any
}

type inflightSolve struct {
	done chan struct{}
	val  any
	// ok reports cache eligibility: only results whose solver status
	// proves optimality or infeasibility may be stored, so a node- or
	// time-limit-truncated (possibly suboptimal) answer is never replayed
	// for its key — the next request re-attempts the solve.
	ok  bool
	err error
}

func newSolveCache(capacity int) *solveCache {
	if capacity <= 0 {
		capacity = defaultCacheSize
	}
	return &solveCache{
		capacity: capacity,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*inflightSolve),
	}
}

// do returns the cached solution for key, or runs compute (once per key,
// no matter how many goroutines ask concurrently) and caches its result.
// hit is true when a value was served without solver work: from the LRU,
// or from another caller's successful in-flight solve (joining a FAILED
// in-flight solve shares the error but is not a hit). Returned solutions
// are clones; callers may mutate them freely.
//
// compute additionally reports whether its result is cache-eligible:
// only proven (optimal/infeasible) results are stored, so limit-truncated
// answers are re-attempted on the next request instead of being replayed
// forever. Errors are likewise not cached. A concurrent identical request
// may still JOIN an in-flight truncated solve — that is the same answer
// both would have computed side by side, not a replay.
//
// ctx bounds the caller's wait: a cancelled joiner leaves early with
// ctx's error while the in-flight solve continues for its owner.
func (c *solveCache) do(ctx context.Context, key string, clone func(any) any, compute func() (any, bool, error)) (val any, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		entry := el.Value.(*cacheEntry)
		val = entry.clone(entry.val)
		c.mu.Unlock()
		return val, true, nil
	}
	if fl, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		select {
		case <-fl.done:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
		if fl.err != nil {
			// The owner's request being cancelled is not OUR failure: a
			// joiner with a live context retries the solve itself (the
			// owner has removed the in-flight entry by the time done is
			// closed, or will momentarily — the retry either takes over
			// or joins a fresh owner).
			if ownerCancelled(fl.err) && ctx.Err() == nil {
				return c.do(ctx, key, clone, compute)
			}
			// Sharing an in-flight failure is not a hit: nothing was
			// served from cache.
			return nil, false, fl.err
		}
		return clone(fl.val), true, nil
	}
	fl := &inflightSolve{done: make(chan struct{})}
	c.inflight[key] = fl
	c.mu.Unlock()

	fl.val, fl.ok, fl.err = compute()

	// Settle the cache state BEFORE waking joiners: by the time done is
	// closed the in-flight entry is gone and any cache insert has
	// landed, so a joiner that retries after an owner-cancelled failure
	// either hits the LRU or becomes a fresh owner — never this stale
	// entry again.
	c.mu.Lock()
	delete(c.inflight, key)
	if fl.err == nil && fl.ok {
		c.insertLocked(key, clone(fl.val), clone)
	}
	c.mu.Unlock()
	close(fl.done)
	if fl.err != nil {
		return nil, false, fl.err
	}
	return fl.val, false, nil
}

func (c *solveCache) insertLocked(key string, val any, clone func(any) any) {
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		entry := el.Value.(*cacheEntry)
		entry.val = val
		entry.clone = clone
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, val: val, clone: clone})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// len returns the number of completed entries held.
func (c *solveCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// ---- canonical subproblem hashing ----------------------------------------

// keyHasher accumulates a canonical binary digest of a subproblem. The
// digest covers everything that determines the solver's answer: the task
// kind, the domain name, the problem fingerprint, the previous solution
// for EC re-solves, and the solver-relevant options.
type keyHasher struct {
	h       hash.Hash
	scratch []byte
}

func newKeyHasher(kind string) *keyHasher {
	k := &keyHasher{h: sha256.New(), scratch: make([]byte, 0, 64)}
	k.str(kind)
	return k
}

func (k *keyHasher) int64(vs ...int64) *keyHasher {
	k.scratch = k.scratch[:0]
	for _, v := range vs {
		k.scratch = binary.AppendVarint(k.scratch, v)
	}
	k.h.Write(k.scratch)
	return k
}

func (k *keyHasher) str(s string) *keyHasher {
	k.int64(int64(len(s)))
	k.h.Write([]byte(s))
	return k
}

// options hashes the solver options via ilp.Options.Fingerprint.
func (k *keyHasher) options(o ilp.Options) *keyHasher {
	o.Fingerprint(k.h)
	return k
}

func (k *keyHasher) sum() string {
	return hex.EncodeToString(k.h.Sum(nil))
}
