package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"sync"

	"ilpec/internal/ilp"
)

// solveCache is an LRU cache of solved subproblems with in-flight
// deduplication: concurrent requests for the same key run the solver once
// and share the result. Keys are canonical hashes of the subproblem (task
// kind + domain + problem + previous solution + solver options), so
// identical subproblems across sessions are answered without touching
// the solver. Values are opaque domain solutions; the caller supplies the
// clone function of the owning domain.
type solveCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	entries  map[string]*list.Element
	inflight map[string]*inflightSolve
}

type cacheEntry struct {
	key string
	val any
	// clone deep-copies val before it escapes the cache.
	clone func(any) any
}

type inflightSolve struct {
	done chan struct{}
	val  any
	err  error
}

func newSolveCache(capacity int) *solveCache {
	if capacity <= 0 {
		capacity = defaultCacheSize
	}
	return &solveCache{
		capacity: capacity,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*inflightSolve),
	}
}

// do returns the cached solution for key, or runs compute (once per key,
// no matter how many goroutines ask concurrently) and caches its result.
// hit is true when a value was served without solver work: from the LRU,
// or from another caller's successful in-flight solve (joining a FAILED
// in-flight solve shares the error but is not a hit). Returned solutions
// are clones; callers may mutate them freely. Errors are not cached — a
// failed key is recomputed on the next request.
func (c *solveCache) do(key string, clone func(any) any, compute func() (any, error)) (val any, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		entry := el.Value.(*cacheEntry)
		val = entry.clone(entry.val)
		c.mu.Unlock()
		return val, true, nil
	}
	if fl, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			// Sharing an in-flight failure is not a hit: nothing was
			// served from cache.
			return nil, false, fl.err
		}
		return clone(fl.val), true, nil
	}
	fl := &inflightSolve{done: make(chan struct{})}
	c.inflight[key] = fl
	c.mu.Unlock()

	fl.val, fl.err = compute()
	close(fl.done)

	c.mu.Lock()
	delete(c.inflight, key)
	if fl.err == nil {
		c.insertLocked(key, clone(fl.val), clone)
	}
	c.mu.Unlock()
	if fl.err != nil {
		return nil, false, fl.err
	}
	return fl.val, false, nil
}

func (c *solveCache) insertLocked(key string, val any, clone func(any) any) {
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		entry := el.Value.(*cacheEntry)
		entry.val = val
		entry.clone = clone
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, val: val, clone: clone})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// len returns the number of completed entries held.
func (c *solveCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// ---- canonical subproblem hashing ----------------------------------------

// keyHasher accumulates a canonical binary digest of a subproblem. The
// digest covers everything that determines the solver's answer: the task
// kind, the domain name, the problem fingerprint, the previous solution
// for EC re-solves, and the solver-relevant options.
type keyHasher struct {
	h       hash.Hash
	scratch []byte
}

func newKeyHasher(kind string) *keyHasher {
	k := &keyHasher{h: sha256.New(), scratch: make([]byte, 0, 64)}
	k.str(kind)
	return k
}

func (k *keyHasher) int64(vs ...int64) *keyHasher {
	k.scratch = k.scratch[:0]
	for _, v := range vs {
		k.scratch = binary.AppendVarint(k.scratch, v)
	}
	k.h.Write(k.scratch)
	return k
}

func (k *keyHasher) str(s string) *keyHasher {
	k.int64(int64(len(s)))
	k.h.Write([]byte(s))
	return k
}

// options hashes the solver options via ilp.Options.Fingerprint.
func (k *keyHasher) options(o ilp.Options) *keyHasher {
	o.Fingerprint(k.h)
	return k
}

func (k *keyHasher) sum() string {
	return hex.EncodeToString(k.h.Sum(nil))
}
