package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"sync"

	"ilpec/internal/cnf"
	"ilpec/internal/ilp"
)

// solveCache is an LRU cache of solved subproblems with in-flight
// deduplication: concurrent requests for the same key run the solver once
// and share the result. Keys are canonical hashes of the subproblem (task
// kind + formula + previous solution + solver options), so identical
// subproblems across sessions are answered without touching the solver.
type solveCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	entries  map[string]*list.Element
	inflight map[string]*inflightSolve
}

type cacheEntry struct {
	key string
	val cnf.Assignment
}

type inflightSolve struct {
	done chan struct{}
	val  cnf.Assignment
	err  error
}

func newSolveCache(capacity int) *solveCache {
	if capacity <= 0 {
		capacity = defaultCacheSize
	}
	return &solveCache{
		capacity: capacity,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*inflightSolve),
	}
}

// do returns the cached assignment for key, or runs compute (once per key,
// no matter how many goroutines ask concurrently) and caches its result.
// hit is true when a value was served without solver work: from the LRU,
// or from another caller's successful in-flight solve (joining a FAILED
// in-flight solve shares the error but is not a hit). Returned
// assignments are clones; callers may mutate them freely. Errors are not
// cached — a failed key is recomputed on the next request.
func (c *solveCache) do(key string, compute func() (cnf.Assignment, error)) (val cnf.Assignment, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		val = el.Value.(*cacheEntry).val.Clone()
		c.mu.Unlock()
		return val, true, nil
	}
	if fl, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			// Sharing an in-flight failure is not a hit: nothing was
			// served from cache.
			return nil, false, fl.err
		}
		return fl.val.Clone(), true, nil
	}
	fl := &inflightSolve{done: make(chan struct{})}
	c.inflight[key] = fl
	c.mu.Unlock()

	fl.val, fl.err = compute()
	close(fl.done)

	c.mu.Lock()
	delete(c.inflight, key)
	if fl.err == nil {
		c.insertLocked(key, fl.val.Clone())
	}
	c.mu.Unlock()
	if fl.err != nil {
		return nil, false, fl.err
	}
	return fl.val, false, nil
}

func (c *solveCache) insertLocked(key string, val cnf.Assignment) {
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).val = val
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// len returns the number of completed entries held.
func (c *solveCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// ---- canonical subproblem hashing ----------------------------------------

// keyHasher accumulates a canonical binary digest of a subproblem. The
// digest covers everything that determines the solver's answer: the task
// kind, the formula (variable count and exact clause list), the previous
// solution for EC re-solves, and the solver-relevant options.
type keyHasher struct {
	h       hash.Hash
	scratch []byte
}

func newKeyHasher(kind string) *keyHasher {
	k := &keyHasher{h: sha256.New(), scratch: make([]byte, 0, 64)}
	k.str(kind)
	return k
}

func (k *keyHasher) int64(vs ...int64) *keyHasher {
	k.scratch = k.scratch[:0]
	for _, v := range vs {
		k.scratch = binary.AppendVarint(k.scratch, v)
	}
	k.h.Write(k.scratch)
	return k
}

func (k *keyHasher) str(s string) *keyHasher {
	k.int64(int64(len(s)))
	k.h.Write([]byte(s))
	return k
}

// formula hashes the exact clause structure (order-sensitive: clause
// indices are part of the EC change model, so two formulas with permuted
// clauses are distinct subproblems).
func (k *keyHasher) formula(f *cnf.Formula) *keyHasher {
	k.int64(int64(f.NumVars), int64(len(f.Clauses)))
	for _, cl := range f.Clauses {
		k.scratch = k.scratch[:0]
		k.scratch = binary.AppendVarint(k.scratch, int64(len(cl)))
		for _, l := range cl {
			k.scratch = binary.AppendVarint(k.scratch, int64(l))
		}
		k.h.Write(k.scratch)
	}
	return k
}

// assignment hashes a tri-state assignment (used for EC re-solve keys,
// whose answer depends on the previous solution).
func (k *keyHasher) assignment(a cnf.Assignment) *keyHasher {
	n := a.NumVars()
	k.int64(int64(n))
	k.scratch = k.scratch[:0]
	for v := 1; v <= n; v++ {
		k.scratch = append(k.scratch, byte(a.Get(v)))
		if len(k.scratch) >= 4096 {
			k.h.Write(k.scratch)
			k.scratch = k.scratch[:0]
		}
	}
	k.h.Write(k.scratch)
	return k
}

// options hashes the solver options via ilp.Options.Fingerprint.
func (k *keyHasher) options(o ilp.Options) *keyHasher {
	o.Fingerprint(k.h)
	return k
}

func (k *keyHasher) sum() string {
	return hex.EncodeToString(k.h.Sum(nil))
}

// formulaKey is the options-independent hash of a formula, used by the
// shared incumbent store.
func formulaKey(f *cnf.Formula) string {
	return newKeyHasher("formula").formula(f).sum()
}
