package service

import (
	"errors"
	"math/rand"
	"sort"
	"time"

	"ilpec/internal/store"
)

// This file is the failure-hardening layer between the session lifecycle
// and the durable store: capped exponential retry with jitter for
// transient store faults, and the per-session quarantine that degrades a
// session to memory-only service — with a periodic re-probe that heals
// it — when persistence keeps failing. The design goal (ROADMAP's
// "heavy traffic" north star): a flaky disk makes sessions DEGRADED and
// visible, never erroring on every request and never silently divergent
// while the service is alive.

// ErrOverloaded reports a solve rejected because the executor backlog is
// full (Options.MaxBacklog). Clients should back off and retry; the HTTP
// layer maps it to 503 + Retry-After.
var ErrOverloaded = errors.New("service: overloaded: solver backlog full")

// ErrQueueFull reports a change batch rejected because the session's
// pending queue is at Options.MaxPending. The HTTP layer maps it to 429 +
// Retry-After: the client must solve (drain) before queueing more.
var ErrQueueFull = errors.New("service: session change queue full")

// RetryPolicy shapes the capped exponential backoff applied to transient
// store faults (journal appends and snapshots).
type RetryPolicy struct {
	// Attempts is the total number of tries (default 4; 1 disables
	// retries).
	Attempts int
	// Base is the first backoff delay (default 5ms); each further attempt
	// doubles it up to Max (default 250ms). Actual sleeps are jittered
	// uniformly in [d/2, d) to decorrelate retry storms.
	Base time.Duration
	Max  time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 4
	}
	if p.Base <= 0 {
		p.Base = 5 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 250 * time.Millisecond
	}
	return p
}

// backoff returns the jittered sleep before retry attempt n (1-based).
func (p RetryPolicy) backoff(n int) time.Duration {
	d := p.Base << (n - 1)
	if d > p.Max || d <= 0 {
		d = p.Max
	}
	// Uniform jitter in [d/2, d): decorrelates sessions retrying against
	// the same sick disk. Randomness here never affects solver results,
	// so the global source is fine.
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// retryStore runs op under the service's retry policy, sleeping the
// jittered backoff between attempts while the error stays transient. Two
// special cases encode the write-ahead contract:
//
//   - a store.ErrSeqConflict on a RETRY (never on the first attempt)
//     means the previous attempt actually landed — a failed-fsync
//     acknowledgement was lost — so the record is durable and the retry
//     loop reports success. In cluster mode this "only we write this
//     journal" inference stays sound because appends run under a valid
//     session lease (appendLocked re-proves ownership first), so no peer
//     can interleave an append mid-retry-loop;
//   - non-transient errors (corruption, closed store, validation) return
//     immediately: backing off cannot help.
func (s *Service) retryStore(op func() error) error {
	pol := s.opts.StoreRetry
	var err error
	for attempt := 1; ; attempt++ {
		err = op()
		if err == nil {
			return nil
		}
		if attempt > 1 && errors.Is(err, store.ErrSeqConflict) {
			return nil // the failed attempt was durable after all
		}
		if !store.IsTransient(err) || attempt >= pol.Attempts {
			return err
		}
		s.metrics.JournalRetries.Add(1)
		time.Sleep(pol.backoff(attempt))
	}
}

// ---- quarantine ------------------------------------------------------------

// noteStoreFailureLocked folds one exhausted-retries transient store
// failure into the session's quarantine heuristic. It reports whether the
// session is (now) quarantined — in which case the caller absorbs the
// failure and serves memory-only instead of failing the request. Caller
// holds s.mu.
func (s *Session) noteStoreFailureLocked() bool {
	if s.degraded.Load() {
		return true
	}
	s.persistFails++
	if s.persistFails < s.svc.opts.QuarantineAfter {
		return false
	}
	s.degraded.Store(true)
	s.svc.metrics.Quarantines.Add(1)
	return true
}

// Degraded reports whether the session is quarantined: persistence kept
// failing, so it is being served memory-only. Its durable state is stale
// until a re-probe heals it (a crash in this window loses the changes
// accepted since quarantine began — the trade the quarantine makes to
// keep serving).
func (s *Session) Degraded() bool { return s.degraded.Load() }

// healLocked attempts to end a session's quarantine: one full snapshot at
// the session's logical sequence — which supersedes every stale journal
// record via compaction — restores the store to an exact replica. Caller
// holds s.mu.
func (s *Session) healLocked() bool {
	svc := s.svc
	if s.fenced.Load() {
		// A fenced session must never write: its durable state belongs to
		// the node that took the lease over.
		return false
	}
	svc.metrics.QuarantineProbes.Add(1)
	snap, err := s.snapshotLocked()
	if err == nil {
		err = svc.opts.Store.WriteSnapshot(snap)
	}
	if err != nil {
		svc.metrics.SnapshotFailures.Add(1)
		return false
	}
	s.degraded.Store(false)
	s.persistFails = 0
	s.tailLen = 0
	s.ackLostSeq = 0
	s.forceCompact = false
	svc.metrics.SnapshotsWritten.Add(1)
	svc.metrics.QuarantineHeals.Add(1)
	return true
}

// probeQuarantined sweeps the live sessions and re-probes the store for
// each quarantined one. Runs from the probe loop; at shutdown, retire
// performs the same last-chance heal per session.
func (s *Service) probeQuarantined() {
	s.mu.Lock()
	var degraded []*Session
	for _, sess := range s.sessions {
		if sess.degraded.Load() {
			degraded = append(degraded, sess)
		}
	}
	s.mu.Unlock()
	for _, sess := range degraded {
		sess.mu.Lock()
		if !sess.closed && sess.degraded.Load() {
			sess.healLocked()
		}
		sess.mu.Unlock()
	}
}

// probeLoop periodically re-probes the store for quarantined sessions
// until Close.
func (s *Service) probeLoop() {
	defer close(s.probeDone)
	ticker := time.NewTicker(s.opts.ReprobeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.probeStop:
			return
		case <-ticker.C:
			s.probeQuarantined()
		}
	}
}

// DegradedSessions returns the ids of live quarantined sessions, sorted.
func (s *Service) DegradedSessions() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var ids []string
	for id, sess := range s.sessions {
		if sess.degraded.Load() {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}
