package service

import (
	"testing"

	"ilpec/internal/coloring"
	"ilpec/internal/domain"
)

// colTestProblem is a tiny coloring instance shared by the key tests.
func colTestProblem() *coloring.Problem {
	g := coloring.NewGraph(4)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	return &coloring.Problem{G: g, K: 3}
}

// TestCrossDomainSessions drives the SAME create → changes → solve → flex
// script against every registered domain adapter, using each adapter's
// conformance fixture as the instance. This is the acceptance check that
// the session service is genuinely domain-generic: no per-domain code
// path exists to diverge.
func TestCrossDomainSessions(t *testing.T) {
	for _, name := range []string{"cnf", "coloring", "sched", "partition"} {
		t.Run(name, func(t *testing.T) {
			svc := newTestService(t, Options{})
			d, ok := svc.DomainByName(name)
			if !ok {
				t.Fatalf("domain %q not registered", name)
			}
			fx, ok := d.(domain.Fixtured)
			if !ok {
				t.Fatalf("domain %q has no conformance fixture", name)
			}
			c := fx.Conformance()

			sess, err := svc.CreateDomainSession(name, c.Problem, SessionConfig{})
			if err != nil {
				t.Fatalf("create: %v", err)
			}
			if sess.Domain() != name {
				t.Fatalf("session domain %q", sess.Domain())
			}

			// Initial solve.
			res, err := sess.Solve()
			if err != nil {
				t.Fatalf("initial solve: %v", err)
			}
			if res.Status != "initial" || res.Solution == nil {
				t.Fatalf("initial solve %+v", res)
			}
			if err := d.Verify(sess.Problem(), res.Solution); err != nil {
				t.Fatalf("initial solution invalid: %v", err)
			}

			// Queue the tightening batch (via the wire codec when the
			// fixture ships one) and resolve it in ONE pass.
			changes := c.Tightening
			if len(c.TighteningJSON) > 0 {
				changes = changes[:0]
				for i, raw := range c.TighteningJSON {
					ch, err := d.ParseChange(raw)
					if err != nil {
						t.Fatalf("parse change %d: %v", i, err)
					}
					changes = append(changes, ch)
				}
			}
			if n, err := sess.QueueChanges(changes...); err != nil || n != len(changes) {
				t.Fatalf("pending %d (%v), want %d", n, err, len(changes))
			}
			res, err = sess.Solve()
			if err != nil {
				t.Fatalf("batch solve: %v", err)
			}
			if res.Batched != len(changes) || res.Status != "fast" {
				t.Fatalf("batch solve %+v", res)
			}
			if res.Preserved < 0 || res.Preserved > 1 {
				t.Fatalf("preserved %v", res.Preserved)
			}
			if err := d.Verify(sess.Problem(), res.Solution); err != nil {
				t.Fatalf("batch solution invalid: %v", err)
			}

			// Flexibility audit.
			rep, err := sess.FlexReport(c.FlexK)
			if err != nil {
				t.Fatalf("flex: %v", err)
			}
			if rep.Total <= 0 {
				t.Fatalf("flex report %+v", rep)
			}

			// Relax-only batch skips the solver.
			runsBefore := svc.Metrics().SolverRuns
			sess.QueueChanges(c.Relaxing...)
			res, err = sess.Solve()
			if err != nil {
				t.Fatalf("relax solve: %v", err)
			}
			if res.Status != "relaxed" || res.Preserved != 1 {
				t.Fatalf("relax solve %+v", res)
			}
			if got := svc.Metrics().SolverRuns; got != runsBefore {
				t.Fatalf("relax batch ran the solver (%d -> %d)", runsBefore, got)
			}
			if err := d.Verify(sess.Problem(), res.Solution); err != nil {
				t.Fatalf("relaxed solution invalid: %v", err)
			}

			if !svc.CloseSession(sess.ID()) {
				t.Fatal("close failed")
			}
		})
	}
}

// TestCrossDomainStrategies runs the tightening batch under all three
// strategies for every domain.
func TestCrossDomainStrategies(t *testing.T) {
	for _, name := range []string{"cnf", "coloring", "sched", "partition"} {
		for _, strat := range []domain.Strategy{domain.FastEC, domain.PreservingEC, domain.Replan} {
			t.Run(name+"/"+strat.String(), func(t *testing.T) {
				svc := newTestService(t, Options{})
				d, _ := svc.DomainByName(name)
				c := d.(domain.Fixtured).Conformance()
				sess, err := svc.CreateDomainSession(name, c.Problem, SessionConfig{Strategy: &strat})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := sess.Solve(); err != nil {
					t.Fatal(err)
				}
				sess.QueueChanges(c.Tightening...)
				res, err := sess.Solve()
				if err != nil {
					t.Fatal(err)
				}
				if res.Status != strat.String() {
					t.Fatalf("status %q, want %q", res.Status, strat)
				}
				if err := d.Verify(sess.Problem(), res.Solution); err != nil {
					t.Fatalf("solution invalid: %v", err)
				}
			})
		}
	}
}

// TestCrossDomainCache pins that identical non-CNF subproblems across
// sessions are served from the cache, and that different domains never
// collide.
func TestCrossDomainCache(t *testing.T) {
	svc := newTestService(t, Options{})
	a, err := svc.CreateDomainSession("coloring", colTestProblem(), SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := a.Solve(); err != nil || res.Cached {
		t.Fatalf("first coloring solve: cached=%v err=%v", res != nil && res.Cached, err)
	}
	b, err := svc.CreateDomainSession("coloring", colTestProblem(), SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Fatal("identical coloring solve missed the cache")
	}
	if res.Assignment != nil {
		t.Fatal("non-CNF session produced a CNF assignment")
	}
	if m := svc.Metrics(); m.SolverRuns != 1 {
		t.Fatalf("solver ran %d times, want 1", m.SolverRuns)
	}
}

// TestUnknownDomain pins the create-time error for unregistered names.
func TestUnknownDomain(t *testing.T) {
	svc := newTestService(t, Options{})
	if _, err := svc.CreateDomainSession("quantum", struct{}{}, SessionConfig{}); err == nil {
		t.Fatal("unknown domain accepted")
	}
	if _, ok := svc.DomainByName("quantum"); ok {
		t.Fatal("unknown domain resolved")
	}
}
