package core

import (
	"strings"
	"testing"

	"ilpec/internal/cnf"
)

func TestChangeClassification(t *testing.T) {
	cases := []struct {
		c    Change
		want bool
	}{
		{NewClause(1, -2), true},
		{EliminateVariable(3), true},
		{DropClause(0), false},
		{GrowVariable(), false},
	}
	for _, c := range cases {
		if c.c.Tightening() != c.want {
			t.Errorf("%v Tightening = %v, want %v", c.c, c.c.Tightening(), c.want)
		}
	}
	if !AnyTightening([]Change{GrowVariable(), NewClause(1)}) {
		t.Fatal("AnyTightening missed the added clause")
	}
	if AnyTightening([]Change{GrowVariable(), DropClause(0)}) {
		t.Fatal("AnyTightening false positive")
	}
}

func TestChangeStrings(t *testing.T) {
	if s := NewClause(1, -2).String(); !strings.Contains(s, "add-clause") {
		t.Fatalf("String = %q", s)
	}
	if s := EliminateVariable(7).String(); !strings.Contains(s, "v7") {
		t.Fatalf("String = %q", s)
	}
	if s := DropClause(3).String(); !strings.Contains(s, "#3") {
		t.Fatalf("String = %q", s)
	}
	if s := GrowVariable().String(); s != "add-variable" {
		t.Fatalf("String = %q", s)
	}
	for _, k := range []ChangeKind{AddClause, RemoveClause, AddVariable, RemoveVariable} {
		if k.String() == "" {
			t.Fatal("empty kind string")
		}
	}
}

func TestApplySequence(t *testing.T) {
	f := cnf.FromClauses([]int{1, 2}, []int{-1, 3})
	out, err := Apply(f, []Change{
		NewClause(2, -3),
		DropClause(0), // removes (v1+v2)
		GrowVariable(),
		EliminateVariable(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.NumClauses() != 2 || f.NumVars != 3 {
		t.Fatal("Apply mutated its input")
	}
	if out.NumVars != 4 {
		t.Fatalf("NumVars = %d, want 4", out.NumVars)
	}
	if out.NumClauses() != 2 {
		t.Fatalf("NumClauses = %d, want 2", out.NumClauses())
	}
	// Clause 0 is now (-1,3) with v3 eliminated → (-1).
	if len(out.Clauses[0]) != 1 || out.Clauses[0][0] != cnf.Lit(-1) {
		t.Fatalf("clause 0 = %v", out.Clauses[0])
	}
	// Clause 1 is (2,-3) with v3 eliminated → (2).
	if len(out.Clauses[1]) != 1 || out.Clauses[1][0] != cnf.Lit(2) {
		t.Fatalf("clause 1 = %v", out.Clauses[1])
	}
}

func TestApplyErrors(t *testing.T) {
	f := cnf.FromClauses([]int{1})
	cases := [][]Change{
		{DropClause(5)},
		{DropClause(-1)},
		{EliminateVariable(0)},
		{EliminateVariable(9)},
		{{Kind: AddClause}},            // empty clause
		{{Kind: ChangeKind(99)}},       // unknown kind
		{DropClause(0), DropClause(0)}, // second drop out of range
	}
	for i, chs := range cases {
		if _, err := Apply(f, chs); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestApplyIndicesTrackState(t *testing.T) {
	f := cnf.FromClauses([]int{1}, []int{2}, []int{3})
	// Dropping index 0 twice removes the first two original clauses.
	out, err := Apply(f, []Change{DropClause(0), DropClause(0)})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumClauses() != 1 || out.Clauses[0][0] != cnf.Lit(3) {
		t.Fatalf("remaining = %v", out.Clauses)
	}
}
