package core

import (
	"fmt"
	"sort"

	"ilpec/internal/cnf"
	"ilpec/internal/encode"
	"ilpec/internal/ilp"
)

// SimplifyResult is the output of the Figure-2 closure: the set of clauses
// and variables that must be re-solved after a tightening change.
type SimplifyResult struct {
	// AlreadySatisfied is true when the original assignment still satisfies
	// the changed formula — no re-solving needed.
	AlreadySatisfied bool
	// Vars is the sorted variable set V of Figure 2.
	Vars []int
	// Marked is the sorted list of clause indices to re-solve.
	Marked []int
	// Reserved commits don't-care variables outside V whose chosen
	// polarity keeps otherwise-unsupported clauses satisfied — the §6
	// "recover as many DC variables from the initial solution as possible"
	// step. These commitments are part of the merged solution.
	Reserved map[int]cnf.Value
}

// Simplify implements the pseudo code of Figure 2: starting from the
// clauses of fPrime unsatisfied under p, it closes over the variables that
// may need new values, marking every clause whose only support under p
// comes from inside the growing variable set V.
//
// A clause outside the closure is safe when some literal outside V is true
// under p, or lies on a don't-care variable that can be committed
// (reserved) to satisfy it. Reservations are recomputed from scratch after
// every growth of V so they never reference variables inside V.
func Simplify(fPrime *cnf.Formula, p cnf.Assignment) SimplifyResult {
	p = p.Grow(fPrime.NumVars)
	unsat := p.UnsatisfiedClauses(fPrime)
	if len(unsat) == 0 {
		return SimplifyResult{AlreadySatisfied: true}
	}
	inV := make([]bool, fPrime.NumVars+1)
	marked := make([]bool, fPrime.NumClauses())
	for _, ci := range unsat {
		marked[ci] = true
		for _, l := range fPrime.Clauses[ci] {
			inV[l.Var()] = true
		}
	}
	return finishClosure(fPrime, p, inV, marked)
}

// SimplifyMinimal is the variant of Simplify whose variable set V stays
// fixed at the variables of the unsatisfied clauses: marked clauses do NOT
// contribute their other variables. Marked clauses are later restricted to
// V-literals, freezing everything else at p (including greedy don't-care
// reservations).
//
// This is not what Figure 2's pseudocode says ("add any new variables to
// V"), but it is the only reading consistent with the paper's own Table 2
// — e.g. jnh201's reported 21-variable/98.9-clause sub-instances cannot
// arise from the growing-V closure, since 99 width-5 clauses span far more
// than 21 variables. Correctness is preserved through FastResolve's
// escalation chain (minimal → full closure → neighborhood rings → full
// re-solve).
func SimplifyMinimal(fPrime *cnf.Formula, p cnf.Assignment) SimplifyResult {
	p = p.Grow(fPrime.NumVars)
	unsat := p.UnsatisfiedClauses(fPrime)
	if len(unsat) == 0 {
		return SimplifyResult{AlreadySatisfied: true}
	}
	inV := make([]bool, fPrime.NumVars+1)
	marked := make([]bool, fPrime.NumClauses())
	for _, ci := range unsat {
		marked[ci] = true
		for _, l := range fPrime.Clauses[ci] {
			inV[l.Var()] = true
		}
	}
	reserved := make(map[int]cnf.Value)
	for ci, cl := range fPrime.Clauses {
		if marked[ci] {
			continue
		}
		touchesV := false
		for _, l := range cl {
			if inV[l.Var()] {
				touchesV = true
				break
			}
		}
		if !touchesV {
			continue
		}
		if supported(cl, p, inV, reserved) {
			continue
		}
		marked[ci] = true // V intentionally not grown
	}
	res := SimplifyResult{Reserved: reserved}
	for ci, m := range marked {
		if m {
			res.Marked = append(res.Marked, ci)
		}
	}
	for v := 1; v < len(inV); v++ {
		if inV[v] {
			res.Vars = append(res.Vars, v)
		}
	}
	return res
}

// finishClosure runs the mark/reserve fixpoint from the seeded state:
// each pass recomputes the greedy don't-care reservations against the
// current V and marks every clause that has a V variable but no outside
// support. V only grows, so this terminates.
func finishClosure(fPrime *cnf.Formula, p cnf.Assignment, inV []bool, marked []bool) SimplifyResult {
	reserved := make(map[int]cnf.Value)
	for {
		for k := range reserved {
			delete(reserved, k)
		}
		changed := false
		for ci, cl := range fPrime.Clauses {
			if marked[ci] {
				continue
			}
			touchesV := false
			for _, l := range cl {
				if inV[l.Var()] {
					touchesV = true
					break
				}
			}
			if !touchesV && p.ClauseSatisfied(cl) {
				continue // untouched by the re-solve; stays satisfied
			}
			if supported(cl, p, inV, reserved) {
				continue
			}
			marked[ci] = true
			changed = true
			for _, l := range cl {
				inV[l.Var()] = true
			}
		}
		if !changed {
			break
		}
	}

	res := SimplifyResult{Reserved: reserved}
	for ci, m := range marked {
		if m {
			res.Marked = append(res.Marked, ci)
		}
	}
	for v := 1; v < len(inV); v++ {
		if inV[v] {
			res.Vars = append(res.Vars, v)
		}
	}
	sort.Ints(res.Vars)
	return res
}

// supported reports whether the clause has a literal outside V that is
// true under p or can be reserved on a don't-care variable (recording the
// reservation).
func supported(cl cnf.Clause, p cnf.Assignment, inV []bool, reserved map[int]cnf.Value) bool {
	// Pass 1: an already-true or already-reserved-compatible literal.
	for _, l := range cl {
		if inV[l.Var()] {
			continue
		}
		if p.LitTrue(l) {
			return true
		}
		if want, ok := reserved[l.Var()]; ok && litValue(l) == want {
			return true
		}
	}
	// Pass 2: reserve a fresh don't-care.
	for _, l := range cl {
		v := l.Var()
		if inV[v] || p.Get(v) != cnf.Unassigned {
			continue
		}
		if _, taken := reserved[v]; taken {
			continue // already reserved in the opposite polarity
		}
		reserved[v] = litValue(l)
		return true
	}
	return false
}

// litValue returns the assignment value that makes l true.
func litValue(l cnf.Lit) cnf.Value {
	if l.Pos() {
		return cnf.True
	}
	return cnf.False
}

// A clause marked by Simplify may still mention variables outside V (their
// literals are false or don't-care under p and will not change).
// SubFormula builds the compact sub-instance over V only: variables are
// renumbered 1..|V| and out-of-V literals are dropped.
//
// varOf maps compact index (1-based) back to the original variable.
func SubFormula(fPrime *cnf.Formula, p cnf.Assignment, simp SimplifyResult) (sub *cnf.Formula, varOf []int) {
	compact := make(map[int]int, len(simp.Vars))
	varOf = make([]int, len(simp.Vars)+1)
	for i, v := range simp.Vars {
		compact[v] = i + 1
		varOf[i+1] = v
	}
	sub = cnf.New(len(simp.Vars))
	for _, ci := range simp.Marked {
		var cl cnf.Clause
		for _, l := range fPrime.Clauses[ci] {
			cv, ok := compact[l.Var()]
			if !ok {
				continue // outside V: stays false/DC under p
			}
			nl := cnf.Lit(cv)
			if !l.Pos() {
				nl = -nl
			}
			cl = append(cl, nl)
		}
		sub.AddClause(cl)
	}
	return sub, varOf
}

// FastOptions configures FastResolve.
type FastOptions struct {
	// Solve configures the exact sub-instance solver. The warm start field
	// is overwritten internally (the original solution restricted to V
	// guides branching toward minimal change).
	Solve ilp.Options
	// MaxEscalations bounds the V-growing retries when the sub-instance is
	// unsatisfiable with the frozen out-of-V assignment (default 3; the
	// final fallback is a full re-solve).
	MaxEscalations int
	// Minimal starts from SimplifyMinimal instead of the Figure-2 closure
	// (see that function for why the paper's Table 2 implies this policy).
	// On infeasibility the full closure is tried before ring escalation.
	Minimal bool
}

// FastResult is the outcome of FastResolve.
type FastResult struct {
	// AlreadySatisfied is true when no re-solve was needed.
	AlreadySatisfied bool
	// Assignment is the merged solution satisfying the changed formula.
	Assignment cnf.Assignment
	// SubVars and SubClauses are the fast-EC instance sizes (Table 2's
	// "Ave. # Vars/Clauses" columns measure these).
	SubVars, SubClauses int
	// Escalations counts the V-growing retries used.
	Escalations int
	// FullResolve is true when escalation exhausted and the whole instance
	// was re-solved.
	FullResolve bool
	// ILP carries the statistics of the final (successful) solve.
	ILP ilp.Result
}

// FastResolve implements fast EC (§6): it extracts the minimal affected
// sub-instance via Simplify, solves only that, and merges the partial
// solution into p. When the frozen context makes the sub-instance
// unsatisfiable, the variable set is escalated (one occurrence ring at a
// time) and, as a last resort, the whole instance is re-solved.
func FastResolve(fPrime *cnf.Formula, p cnf.Assignment, opts FastOptions) (*FastResult, error) {
	if fPrime.HasEmptyClause() {
		return nil, fmt.Errorf("core: changed formula contains an empty clause (unsatisfiable)")
	}
	p = p.Grow(fPrime.NumVars)
	var simp SimplifyResult
	if opts.Minimal {
		simp = SimplifyMinimal(fPrime, p)
	} else {
		simp = Simplify(fPrime, p)
	}
	if simp.AlreadySatisfied {
		return &FastResult{AlreadySatisfied: true, Assignment: p.Clone()}, nil
	}
	maxEsc := opts.MaxEscalations
	if maxEsc <= 0 {
		maxEsc = 3
	}
	triedFullClosure := !opts.Minimal

	for esc := 0; ; esc++ {
		sub, varOf := SubFormula(fPrime, p, simp)
		e := encode.New(sub)
		solveOpts := opts.Solve
		solveOpts.WarmStart = warmFromOriginal(e, p, varOf)
		res := ilp.Solve(e.Model, solveOpts)
		switch res.Status {
		case ilp.Optimal, ilp.Feasible:
			merged := p.Clone()
			for v, val := range simp.Reserved {
				merged.Set(v, val) // §6 recovered don't-cares
			}
			subAsg := e.Decode(res.Solution)
			for cv := 1; cv < len(varOf); cv++ {
				merged.Set(varOf[cv], subAsg.Get(cv))
			}
			if !merged.Satisfies(fPrime) {
				return nil, fmt.Errorf("core: merged fast-EC solution does not satisfy the changed formula (internal error)")
			}
			return &FastResult{
				Assignment:  merged,
				SubVars:     sub.NumVars,
				SubClauses:  sub.NumClauses(),
				Escalations: esc,
				FullResolve: len(simp.Vars) == countActiveVars(fPrime),
				ILP:         res,
			}, nil
		case ilp.Infeasible:
			if !triedFullClosure {
				triedFullClosure = true
				simp = Simplify(fPrime, p)
				continue
			}
			if esc >= maxEsc {
				return fullResolve(fPrime, p, opts, esc)
			}
			grown := escalate(fPrime, p, simp)
			if len(grown.Vars) == len(simp.Vars) {
				return fullResolve(fPrime, p, opts, esc)
			}
			simp = grown
		default:
			return nil, fmt.Errorf("core: fast-EC sub-solve hit limits (%s)", res.Status)
		}
	}
}

// warmFromOriginal projects p onto the compact sub-encoding as a branching
// guide (it is typically infeasible for the sub-instance, which is fine —
// the solver only uses it for branch ordering).
func warmFromOriginal(e *encode.Encoding, p cnf.Assignment, varOf []int) ilp.Solution {
	a := cnf.NewAssignment(len(varOf) - 1)
	for cv := 1; cv < len(varOf); cv++ {
		a.Set(cv, p.Get(varOf[cv]))
	}
	return e.EncodeAssignment(a)
}

func countActiveVars(f *cnf.Formula) int {
	return len(f.Vars())
}

// escalate grows V by one occurrence ring — every clause touching V joins
// the marked set and contributes its variables — then re-runs the closure
// fixpoint so the reservations stay consistent with the larger V.
func escalate(fPrime *cnf.Formula, p cnf.Assignment, simp SimplifyResult) SimplifyResult {
	inV := make([]bool, fPrime.NumVars+1)
	for _, v := range simp.Vars {
		inV[v] = true
	}
	marked := make([]bool, fPrime.NumClauses())
	for _, ci := range simp.Marked {
		marked[ci] = true
	}
	for ci, cl := range fPrime.Clauses {
		if marked[ci] {
			continue
		}
		touches := false
		for _, l := range cl {
			if inV[l.Var()] {
				touches = true
				break
			}
		}
		if touches {
			marked[ci] = true
			for _, l := range cl {
				inV[l.Var()] = true
			}
		}
	}
	return finishClosure(fPrime, p.Grow(fPrime.NumVars), inV, marked)
}

// fullResolve re-solves the entire changed instance (the fast-EC fallback).
func fullResolve(fPrime *cnf.Formula, p cnf.Assignment, opts FastOptions, esc int) (*FastResult, error) {
	e := encode.New(fPrime)
	solveOpts := opts.Solve
	solveOpts.WarmStart = e.EncodeAssignment(p)
	res := ilp.Solve(e.Model, solveOpts)
	switch res.Status {
	case ilp.Optimal, ilp.Feasible:
		merged := e.Decode(res.Solution)
		return &FastResult{
			Assignment:  merged,
			SubVars:     fPrime.NumVars,
			SubClauses:  fPrime.NumClauses(),
			Escalations: esc,
			FullResolve: true,
			ILP:         res,
		}, nil
	case ilp.Infeasible:
		return nil, fmt.Errorf("core: changed formula is unsatisfiable")
	default:
		return nil, fmt.Errorf("core: full re-solve hit limits (%s)", res.Status)
	}
}
