package core

import (
	"math/rand"
	"testing"

	"ilpec/internal/cnf"
	"ilpec/internal/ilp"
)

func TestRecoverDontCares(t *testing.T) {
	// (v1 + v2): committing both is redundant; v1 can be recovered.
	f := cnf.FromClauses([]int{1, 2})
	a := cnf.AssignmentFromBools(true, true)
	out, n := RecoverDontCares(f, a)
	if n != 1 {
		t.Fatalf("recovered %d, want 1", n)
	}
	if !out.Satisfies(f) {
		t.Fatal("recovery broke satisfaction")
	}
	if out.AssignedCount() != 1 {
		t.Fatalf("committed %d, want 1", out.AssignedCount())
	}
	if a.DontCareCount() != 0 {
		t.Fatal("input mutated")
	}
}

func TestRecoverDontCaresKeepsNeeded(t *testing.T) {
	// (v1)(v1' + v2): both variables are load-bearing.
	f := cnf.FromClauses([]int{1}, []int{-1, 2})
	a := cnf.AssignmentFromBools(true, true)
	out, n := RecoverDontCares(f, a)
	if n != 0 || out.AssignedCount() != 2 {
		t.Fatalf("recovered %d (committed %d), want none", n, out.AssignedCount())
	}
}

func TestRecoverDontCaresUnusedVariable(t *testing.T) {
	// v3 occurs in no clause: its commitment is always recoverable.
	f := cnf.New(3)
	f.AddClause(cnf.Clause{1, 2})
	a := cnf.AssignmentFromBools(true, false, true)
	out, n := RecoverDontCares(f, a)
	if n < 1 || out.Get(3) != cnf.Unassigned {
		t.Fatalf("unused variable not recovered (n=%d)", n)
	}
}

func TestIncreaseFlexibilityGains2Sat(t *testing.T) {
	// (v1 + v2)(v1 + v3): a = {v1=1} is 1-satisfied everywhere; committing
	// v2 and v3 true raises both clauses to 2-satisfied.
	f := cnf.FromClauses([]int{1, 2}, []int{1, 3})
	a := cnf.NewAssignment(3)
	a.Set(1, cnf.True)
	res := IncreaseFlexibility(f, a)
	if !res.Assignment.Satisfies(f) {
		t.Fatal("improvement broke satisfaction")
	}
	if res.Gained2Sat < 2 {
		t.Fatalf("gained %d 2-satisfied clauses, want 2", res.Gained2Sat)
	}
	if res.Assignment.KSatisfiedCount(f, 2) != 2 {
		t.Fatal("clauses not 2-satisfied after improvement")
	}
}

func TestIncreaseFlexibilityNeverBreaks(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 40; trial++ {
		nVars := 4 + rng.Intn(8)
		f := cnf.New(nVars)
		plant := cnf.NewAssignment(nVars)
		for v := 1; v <= nVars; v++ {
			if rng.Intn(2) == 0 {
				plant.Set(v, cnf.True)
			} else {
				plant.Set(v, cnf.False)
			}
		}
		for i := 0; i < 3+rng.Intn(12); i++ {
			vs := rng.Perm(nVars)[:3]
			cl := make(cnf.Clause, 3)
			for j, vi := range vs {
				v := vi + 1
				l := cnf.Lit(v)
				if plant.Get(v) == cnf.False {
					l = -l
				}
				if j > 0 && rng.Intn(2) == 0 {
					l = -l
				}
				cl[j] = l
			}
			f.AddClause(cl)
		}
		res := IncreaseFlexibility(f, plant)
		if !res.Assignment.Satisfies(f) {
			t.Fatalf("trial %d: improvement broke satisfaction", trial)
		}
		before := plant.KSatisfiedCount(f, 2)
		after := res.Assignment.KSatisfiedCount(f, 2)
		if after < before {
			t.Fatalf("trial %d: 2-sat count regressed %d -> %d", trial, before, after)
		}
	}
}

func TestFlexibilityGainReporting(t *testing.T) {
	f := cnf.FromClauses([]int{1, 2}, []int{1, 3})
	a := cnf.NewAssignment(3)
	a.Set(1, cnf.True)
	pre, post, res := FlexibilityGain(f, a, 2)
	if post.KSatisfied < pre.KSatisfied {
		t.Fatal("post-improvement audit regressed")
	}
	if res.Gained2Sat != post.KSatisfied-pre.KSatisfied {
		t.Fatalf("gain accounting mismatch: %d vs %d", res.Gained2Sat, post.KSatisfied-pre.KSatisfied)
	}
}

// The §6 synergy claim: enabling makes fast-EC sub-instances smaller.
// After IncreaseFlexibility the closure should never be larger than before.
func TestFlexupShrinksClosure(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	shrunk, grew := 0, 0
	for trial := 0; trial < 20; trial++ {
		nVars := 12
		f := cnf.New(nVars)
		plant := cnf.NewAssignment(nVars)
		for v := 1; v <= nVars; v++ {
			if rng.Intn(2) == 0 {
				plant.Set(v, cnf.True)
			} else {
				plant.Set(v, cnf.False)
			}
		}
		for i := 0; i < 24; i++ {
			vs := rng.Perm(nVars)[:3]
			cl := make(cnf.Clause, 3)
			for j, vi := range vs {
				v := vi + 1
				l := cnf.Lit(v)
				if plant.Get(v) == cnf.False {
					l = -l
				}
				if j == 2 && rng.Intn(2) == 0 {
					l = -l
				}
				cl[j] = l
			}
			f.AddClause(cl)
		}
		base, _, err := PlainResolve(f, ilp.Options{})
		if err != nil {
			continue
		}
		improved := IncreaseFlexibility(f, base).Assignment
		// Add a clause violating both solutions.
		var lits []int
		for v := 1; v <= nVars && len(lits) < 3; v++ {
			bv, iv := base.Get(v), improved.Get(v)
			if bv != cnf.Unassigned && bv == iv {
				if bv == cnf.True {
					lits = append(lits, -v)
				} else {
					lits = append(lits, v)
				}
			}
		}
		if len(lits) < 2 {
			continue
		}
		fPrime, err := Apply(f, []Change{NewClause(lits...)})
		if err != nil {
			continue
		}
		sBase := Simplify(fPrime, base)
		sImp := Simplify(fPrime, improved)
		if sBase.AlreadySatisfied || sImp.AlreadySatisfied {
			continue
		}
		if len(sImp.Marked) <= len(sBase.Marked) {
			shrunk++
		} else {
			grew++
		}
	}
	if shrunk < grew {
		t.Fatalf("flexibility increase enlarged closures more often than it shrank them (%d vs %d)", shrunk, grew)
	}
}
