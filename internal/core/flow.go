package core

import (
	"fmt"

	"ilpec/internal/cnf"
	"ilpec/internal/domain"
	"ilpec/internal/encode"
	"ilpec/internal/heurilp"
	"ilpec/internal/ilp"
)

// SolverKind selects the engine used for the initial solve in the Figure-1
// flow: the exact branch-and-bound ILP solver or the heuristic
// iterative-improvement solver (the paper's choice for large instances).
type SolverKind int

const (
	// ExactILP uses internal/ilp (the CPLEX role).
	ExactILP SolverKind = iota
	// HeuristicILP uses internal/heurilp (the ref [6] role).
	HeuristicILP
)

// String renders the kind.
func (k SolverKind) String() string {
	if k == HeuristicILP {
		return "heuristic"
	}
	return "exact"
}

// Strategy selects how a change is resolved in the flow (shared with the
// generic domain engine).
type Strategy = domain.Strategy

// Flow strategies.
const (
	// FastEC uses the §6 sub-instance extraction.
	FastEC = domain.FastEC
	// PreservingEC uses the §7 preservation objective.
	PreservingEC = domain.PreservingEC
	// Replan solves the changed instance from scratch (non-EC baseline).
	Replan = domain.Replan
)

// Step records one flow action for reporting (shared with domain.Flow).
type Step = domain.Step

// FlowOptions configures a Flow.
type FlowOptions struct {
	// Enable, when non-nil, runs enabling EC on the original specification
	// (the "Enable EC" box of Figure 1); the initial solution is then the
	// EC solution rather than the non-EC solution.
	Enable *EnableOptions
	// InitialSolver picks the engine for the original instance.
	InitialSolver SolverKind
	// Exact configures the exact solver (both initial and EC re-solves).
	Exact ilp.Options
	// Heuristic configures the heuristic solver.
	Heuristic heurilp.Options
	// Preserve configures preserving-EC re-solves.
	Preserve PreserveOptions
	// Fast configures fast-EC re-solves.
	Fast FastOptions
	// FlexOnRelax runs the §6 flexibility increase (don't-care recovery +
	// 2-satisfiability reconstruction) after every relaxing change, so the
	// next tightening change finds a more absorbent solution.
	FlexOnRelax bool
}

// Flow drives the ILP-based EC flow of Figure 1 for SAT specifications.
// It is a typed front end over the generic domain.Flow running the CNF
// adapter: original specification → (enabling) solve → change →
// fast/preserving re-solve, with the current solution threaded through
// the steps. Other problem classes use domain.NewFlow with their adapter
// directly.
type Flow struct {
	inner *domain.Flow
}

// NewFlow creates a flow for the original specification f.
func NewFlow(f *cnf.Formula, opts FlowOptions) *Flow {
	ad := CNFWith(CNFOptions{
		Fast:        opts.Fast,
		Preserve:    opts.Preserve,
		FlexOnRelax: opts.FlexOnRelax,
	})
	dopts := domain.FlowOptions{
		Solve: opts.Exact,
		Fast: domain.FastOptions{
			Solve:          opts.Fast.Solve,
			MaxEscalations: opts.Fast.MaxEscalations,
		},
	}
	switch {
	case opts.Enable != nil:
		enable := *opts.Enable
		exact := opts.Exact
		dopts.InitialSolve = func(_ domain.Domain, p any) (any, string, error) {
			res, err := SolveEnable(p.(*cnf.Formula), enable, exact)
			if err != nil {
				return nil, "enable", fmt.Errorf("core: flow enable: %w", err)
			}
			return res.Assignment, "enable", nil
		}
	case opts.InitialSolver == HeuristicILP:
		heur := opts.Heuristic
		dopts.InitialSolve = func(_ domain.Domain, p any) (any, string, error) {
			spec := p.(*cnf.Formula)
			e := encode.New(spec)
			res := heurilp.Solve(e.Model, heur)
			if !res.Feasible {
				return nil, "solve", fmt.Errorf("core: flow heuristic solve found no solution")
			}
			a := e.Decode(res.Solution)
			if !a.Satisfies(spec) {
				return nil, "solve", fmt.Errorf("core: heuristic solution does not satisfy the formula (internal error)")
			}
			return a, "solve", nil
		}
	}
	return &Flow{inner: domain.NewFlow(ad, f, dopts)}
}

// Formula returns the current specification.
func (fl *Flow) Formula() *cnf.Formula { return fl.inner.Problem().(*cnf.Formula) }

// Solution returns the current solution (nil before Solve).
func (fl *Flow) Solution() cnf.Assignment {
	if s := fl.inner.Solution(); s != nil {
		return s.(cnf.Assignment)
	}
	return nil
}

// History returns the recorded steps.
func (fl *Flow) History() []Step { return fl.inner.History() }

// Solve produces the initial solution: the EC solution when enabling is
// configured, the non-EC solution otherwise.
func (fl *Flow) Solve() (cnf.Assignment, error) {
	a, err := fl.inner.Solve()
	if err != nil {
		return nil, err
	}
	return a.(cnf.Assignment), nil
}

// ApplyChange mutates the specification and re-solves with the chosen
// strategy, returning the updated solution. Relaxing-only change sets skip
// the re-solve entirely (§6: additions of variables / deletions of clauses
// never invalidate the solution).
func (fl *Flow) ApplyChange(changes []Change, strategy Strategy) (cnf.Assignment, error) {
	if fl.inner.Solution() == nil {
		return nil, fmt.Errorf("core: flow has no solution yet; call Solve first")
	}
	anyChanges := make([]any, len(changes))
	for i, c := range changes {
		anyChanges[i] = c
	}
	a, err := fl.inner.ApplyChanges(anyChanges, strategy)
	if err != nil {
		return nil, err
	}
	return a.(cnf.Assignment), nil
}
