package core

import (
	"fmt"
	"time"

	"ilpec/internal/cnf"
	"ilpec/internal/encode"
	"ilpec/internal/heurilp"
	"ilpec/internal/ilp"
)

// SolverKind selects the engine used for the initial solve in the Figure-1
// flow: the exact branch-and-bound ILP solver or the heuristic
// iterative-improvement solver (the paper's choice for large instances).
type SolverKind int

const (
	// ExactILP uses internal/ilp (the CPLEX role).
	ExactILP SolverKind = iota
	// HeuristicILP uses internal/heurilp (the ref [6] role).
	HeuristicILP
)

// String renders the kind.
func (k SolverKind) String() string {
	if k == HeuristicILP {
		return "heuristic"
	}
	return "exact"
}

// Strategy selects how a change is resolved in the flow.
type Strategy int

const (
	// FastEC uses the §6 sub-instance extraction.
	FastEC Strategy = iota
	// PreservingEC uses the §7 preservation objective.
	PreservingEC
	// Replan solves the changed instance from scratch (non-EC baseline).
	Replan
)

// String renders the strategy.
func (s Strategy) String() string {
	switch s {
	case FastEC:
		return "fast"
	case PreservingEC:
		return "preserving"
	default:
		return "replan"
	}
}

// FlowOptions configures a Flow.
type FlowOptions struct {
	// Enable, when non-nil, runs enabling EC on the original specification
	// (the "Enable EC" box of Figure 1); the initial solution is then the
	// EC solution rather than the non-EC solution.
	Enable *EnableOptions
	// InitialSolver picks the engine for the original instance.
	InitialSolver SolverKind
	// Exact configures the exact solver (both initial and EC re-solves).
	Exact ilp.Options
	// Heuristic configures the heuristic solver.
	Heuristic heurilp.Options
	// Preserve configures preserving-EC re-solves.
	Preserve PreserveOptions
	// Fast configures fast-EC re-solves.
	Fast FastOptions
	// FlexOnRelax runs the §6 flexibility increase (don't-care recovery +
	// 2-satisfiability reconstruction) after every relaxing change, so the
	// next tightening change finds a more absorbent solution.
	FlexOnRelax bool
}

// Step records one flow action for reporting.
type Step struct {
	// Action is "solve", "enable", or a Strategy name.
	Action string
	// Runtime is the wall-clock duration of the action.
	Runtime time.Duration
	// Vars and Clauses are the sizes of the instance the action solved.
	Vars, Clauses int
	// Preserved is the preserved fraction relative to the pre-change
	// solution (resolve steps only).
	Preserved float64
}

// Flow drives the generic ILP-based EC flow of Figure 1: original
// specification → (enabling) solve → change → fast/preserving re-solve,
// with the current solution threaded through the steps.
type Flow struct {
	opts     FlowOptions
	formula  *cnf.Formula
	solution cnf.Assignment
	history  []Step
}

// NewFlow creates a flow for the original specification f.
func NewFlow(f *cnf.Formula, opts FlowOptions) *Flow {
	return &Flow{opts: opts, formula: f.Clone()}
}

// Formula returns the current specification.
func (fl *Flow) Formula() *cnf.Formula { return fl.formula }

// Solution returns the current solution (nil before Solve).
func (fl *Flow) Solution() cnf.Assignment { return fl.solution }

// History returns the recorded steps.
func (fl *Flow) History() []Step { return fl.history }

// Solve produces the initial solution: the EC solution when enabling is
// configured, the non-EC solution otherwise.
func (fl *Flow) Solve() (cnf.Assignment, error) {
	start := time.Now()
	if fl.opts.Enable != nil {
		res, err := SolveEnable(fl.formula, *fl.opts.Enable, fl.opts.Exact)
		if err != nil {
			return nil, fmt.Errorf("core: flow enable: %w", err)
		}
		fl.solution = res.Assignment
		fl.history = append(fl.history, Step{
			Action: "enable", Runtime: time.Since(start),
			Vars: fl.formula.NumVars, Clauses: fl.formula.NumClauses(),
		})
		return fl.solution, nil
	}
	var a cnf.Assignment
	switch fl.opts.InitialSolver {
	case HeuristicILP:
		e := encode.New(fl.formula)
		res := heurilp.Solve(e.Model, fl.opts.Heuristic)
		if !res.Feasible {
			return nil, fmt.Errorf("core: flow heuristic solve found no solution")
		}
		a = e.Decode(res.Solution)
		if !a.Satisfies(fl.formula) {
			return nil, fmt.Errorf("core: heuristic solution does not satisfy the formula (internal error)")
		}
	default:
		var err error
		a, _, err = PlainResolve(fl.formula, fl.opts.Exact)
		if err != nil {
			return nil, fmt.Errorf("core: flow solve: %w", err)
		}
	}
	fl.solution = a
	fl.history = append(fl.history, Step{
		Action: "solve", Runtime: time.Since(start),
		Vars: fl.formula.NumVars, Clauses: fl.formula.NumClauses(),
	})
	return fl.solution, nil
}

// ApplyChange mutates the specification and re-solves with the chosen
// strategy, returning the updated solution. Relaxing-only change sets skip
// the re-solve entirely (§6: additions of variables / deletions of clauses
// never invalidate the solution).
func (fl *Flow) ApplyChange(changes []Change, strategy Strategy) (cnf.Assignment, error) {
	if fl.solution == nil {
		return nil, fmt.Errorf("core: flow has no solution yet; call Solve first")
	}
	fPrime, err := Apply(fl.formula, changes)
	if err != nil {
		return nil, err
	}
	prev := fl.solution
	start := time.Now()

	if !AnyTightening(changes) {
		// Relaxing changes: the previous solution remains valid; only the
		// variable universe may have grown. Optionally use the slack the
		// relaxation created to increase flexibility (§6).
		fl.formula = fPrime
		next := prev.Clone().Grow(fPrime.NumVars)
		preserved := 1.0
		if fl.opts.FlexOnRelax {
			res := IncreaseFlexibility(fPrime, next)
			next = res.Assignment
			preserved = next.PreservedFraction(prev)
		}
		fl.solution = next
		fl.history = append(fl.history, Step{
			Action: "relax", Runtime: time.Since(start),
			Vars: fPrime.NumVars, Clauses: fPrime.NumClauses(), Preserved: preserved,
		})
		return fl.solution, nil
	}

	var next cnf.Assignment
	var vars, clauses int
	switch strategy {
	case FastEC:
		res, ferr := FastResolve(fPrime, prev, fl.opts.Fast)
		if ferr != nil {
			return nil, ferr
		}
		next = res.Assignment
		vars, clauses = res.SubVars, res.SubClauses
	case PreservingEC:
		popts := fl.opts.Preserve
		popts.Solve = fl.opts.Exact
		res, perr := PreserveResolve(fPrime, prev, popts)
		if perr != nil {
			return nil, perr
		}
		next = res.Assignment
		vars, clauses = fPrime.NumVars, fPrime.NumClauses()
	case Replan:
		a, _, rerr := PlainResolve(fPrime, fl.opts.Exact)
		if rerr != nil {
			return nil, rerr
		}
		next = a
		vars, clauses = fPrime.NumVars, fPrime.NumClauses()
	default:
		return nil, fmt.Errorf("core: unknown strategy %d", strategy)
	}
	fl.formula = fPrime
	fl.solution = next
	fl.history = append(fl.history, Step{
		Action: strategy.String(), Runtime: time.Since(start),
		Vars: vars, Clauses: clauses,
		Preserved: next.PreservedFraction(prev),
	})
	return fl.solution, nil
}
