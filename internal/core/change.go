// Package core implements the paper's primary contribution: the generic
// ILP-based engineering-change methodology with its three components —
// enabling EC (§5), fast EC (§6), and preserving EC (§7) — together with
// the specification-change model and the generic EC flow of Figure 1.
//
// All formulations target the SAT instantiation the paper uses, built on
// the set-cover encoding of internal/encode and solved with internal/ilp
// (exact) or internal/heurilp (heuristic).
package core

import (
	"fmt"

	"ilpec/internal/cnf"
)

// ChangeKind enumerates the specification changes of §5–§7.
type ChangeKind int

const (
	// AddClause adds a clause — a tightening change.
	AddClause ChangeKind = iota
	// RemoveClause deletes a clause by index — a relaxing change.
	RemoveClause
	// AddVariable grows the variable universe — a relaxing change (the new
	// variable is a don't-care for any existing solution).
	AddVariable
	// RemoveVariable eliminates a variable in the §1 sense: all its
	// literals disappear from every clause — a tightening change.
	RemoveVariable
)

// String renders the kind.
func (k ChangeKind) String() string {
	switch k {
	case AddClause:
		return "add-clause"
	case RemoveClause:
		return "remove-clause"
	case AddVariable:
		return "add-variable"
	default:
		return "remove-variable"
	}
}

// Change is one specification change. Exactly the fields relevant to Kind
// are read: Clause for AddClause, Index for RemoveClause, Var for
// RemoveVariable.
type Change struct {
	Kind   ChangeKind
	Clause cnf.Clause
	Index  int
	Var    int
}

// Tightening reports whether the change can invalidate existing solutions
// (§6: "if we add clauses or delete variables, modifications must be made";
// the other two kinds are trivial).
func (c Change) Tightening() bool {
	return c.Kind == AddClause || c.Kind == RemoveVariable
}

// String renders the change.
func (c Change) String() string {
	switch c.Kind {
	case AddClause:
		return "add-clause " + c.Clause.String()
	case RemoveClause:
		return fmt.Sprintf("remove-clause #%d", c.Index)
	case AddVariable:
		return "add-variable"
	default:
		return fmt.Sprintf("remove-variable v%d", c.Var)
	}
}

// NewClause returns an AddClause change.
func NewClause(lits ...int) Change {
	cl := make(cnf.Clause, len(lits))
	for i, l := range lits {
		cl[i] = cnf.Lit(l)
	}
	return Change{Kind: AddClause, Clause: cl}
}

// DropClause returns a RemoveClause change for index i (interpreted against
// the formula state at the time the change is applied).
func DropClause(i int) Change { return Change{Kind: RemoveClause, Index: i} }

// GrowVariable returns an AddVariable change.
func GrowVariable() Change { return Change{Kind: AddVariable} }

// EliminateVariable returns a RemoveVariable change for variable v.
func EliminateVariable(v int) Change { return Change{Kind: RemoveVariable, Var: v} }

// AnyTightening reports whether any change in the list is tightening.
func AnyTightening(changes []Change) bool {
	for _, c := range changes {
		if c.Tightening() {
			return true
		}
	}
	return false
}

// Apply produces the changed formula. The input is not modified. Changes
// are applied in order; RemoveClause indices refer to the formula state at
// the moment the change is applied. An error is reported for out-of-range
// indices or variables.
func Apply(f *cnf.Formula, changes []Change) (*cnf.Formula, error) {
	out := f.Clone()
	for i, c := range changes {
		switch c.Kind {
		case AddClause:
			if len(c.Clause) == 0 {
				return nil, fmt.Errorf("core: change %d adds an empty clause", i)
			}
			out.AddClause(c.Clause)
		case RemoveClause:
			if c.Index < 0 || c.Index >= out.NumClauses() {
				return nil, fmt.Errorf("core: change %d removes clause %d of %d", i, c.Index, out.NumClauses())
			}
			out.RemoveClause(c.Index)
		case AddVariable:
			out.AddVariable()
		case RemoveVariable:
			if c.Var < 1 || c.Var > out.NumVars {
				return nil, fmt.Errorf("core: change %d removes variable %d of %d", i, c.Var, out.NumVars)
			}
			out.EliminateVariable(c.Var)
		default:
			return nil, fmt.Errorf("core: change %d has unknown kind %d", i, c.Kind)
		}
	}
	return out, nil
}
