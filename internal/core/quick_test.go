package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ilpec/internal/cnf"
	"ilpec/internal/ilp"
	"ilpec/internal/sat"
)

// randomPlanted builds a random 3-SAT instance with a planted solution.
func randomPlanted(r *rand.Rand, nVars, nClauses int) (*cnf.Formula, cnf.Assignment) {
	plant := cnf.NewAssignment(nVars)
	for v := 1; v <= nVars; v++ {
		if r.Intn(2) == 0 {
			plant.Set(v, cnf.True)
		} else {
			plant.Set(v, cnf.False)
		}
	}
	f := cnf.New(nVars)
	for i := 0; i < nClauses; i++ {
		vs := r.Perm(nVars)[:3]
		cl := make(cnf.Clause, 3)
		for j, vi := range vs {
			v := vi + 1
			l := cnf.Lit(v)
			if plant.Get(v) == cnf.False {
				l = -l
			}
			if j > 0 && r.Intn(2) == 0 {
				l = -l
			}
			cl[j] = l
		}
		f.AddClause(cl)
	}
	return f, plant
}

// Property: the minimal-V policy is as sound as the full closure — the
// merged FastResolve solution always satisfies the changed formula.
func TestFastMinimalSoundnessProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f, plant := randomPlanted(r, 5+r.Intn(6), 4+r.Intn(12))
		p, _, err := PlainResolve(f, ilp.Options{})
		if err != nil {
			return true
		}
		fPrime := f.Clone()
		for i := 0; i < 1+r.Intn(3); i++ {
			cl := make(cnf.Clause, 0, 2)
			vs := r.Perm(f.NumVars)[:2]
			for _, vi := range vs {
				l := cnf.Lit(vi + 1)
				if r.Intn(2) == 0 {
					l = -l
				}
				cl = append(cl, l)
			}
			g := fPrime.Clone()
			g.AddClause(cl)
			if sat.IsSatisfiable(g) {
				fPrime = g
			}
		}
		res, err := FastResolve(fPrime, p, FastOptions{Minimal: true})
		if err != nil {
			return false
		}
		_ = plant
		return res.Assignment.Satisfies(fPrime)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// Property: SimplifyMinimal's variable set is always a subset of the full
// closure's, and both mark every initially-unsatisfied clause.
func TestSimplifyPolicyRelationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f, plant := randomPlanted(r, 5+r.Intn(6), 4+r.Intn(10))
		// Random partial assignment derived from the plant with damage.
		p := plant.Clone()
		for v := 1; v <= f.NumVars; v++ {
			switch r.Intn(4) {
			case 0:
				p.Set(v, cnf.Unassigned)
			case 1:
				if p.Get(v) == cnf.True {
					p.Set(v, cnf.False)
				} else {
					p.Set(v, cnf.True)
				}
			}
		}
		full := Simplify(f, p)
		min := SimplifyMinimal(f, p)
		if full.AlreadySatisfied != min.AlreadySatisfied {
			return false
		}
		if full.AlreadySatisfied {
			return true
		}
		inFull := map[int]bool{}
		for _, v := range full.Vars {
			inFull[v] = true
		}
		for _, v := range min.Vars {
			if !inFull[v] {
				return false // minimal V must be ⊆ full V
			}
		}
		unsat := p.UnsatisfiedClauses(f)
		markedFull := map[int]bool{}
		for _, ci := range full.Marked {
			markedFull[ci] = true
		}
		markedMin := map[int]bool{}
		for _, ci := range min.Marked {
			markedMin[ci] = true
		}
		for _, ci := range unsat {
			if !markedFull[ci] || !markedMin[ci] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// Property: reservations in a Simplify result always commit don't-care
// variables outside V, and never conflict with p.
func TestReservationInvariantProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f, plant := randomPlanted(r, 6+r.Intn(6), 5+r.Intn(10))
		p := plant.Clone()
		// Punch don't-cares and a few flips into the plant.
		for v := 1; v <= f.NumVars; v++ {
			switch r.Intn(3) {
			case 0:
				p.Set(v, cnf.Unassigned)
			}
		}
		for _, simp := range []SimplifyResult{Simplify(f, p), SimplifyMinimal(f, p)} {
			if simp.AlreadySatisfied {
				continue
			}
			inV := map[int]bool{}
			for _, v := range simp.Vars {
				inV[v] = true
			}
			for v, val := range simp.Reserved {
				if inV[v] {
					return false // reservation inside V
				}
				if p.Get(v) != cnf.Unassigned {
					return false // reservation of a committed variable
				}
				if val == cnf.Unassigned {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// Property: PreserveResolve's reported fraction matches an independent
// recomputation.
func TestPreserveAccountingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f, plant := randomPlanted(r, 4+r.Intn(5), 4+r.Intn(8))
		res, err := PreserveResolve(f, plant, PreserveOptions{Mode: PreserveMaximize})
		if err != nil {
			return true // mutated formula may be unsatisfiable; fine
		}
		return res.Preserved == res.Assignment.PreservedFraction(plant)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}
