package core

import (
	"fmt"

	"ilpec/internal/cnf"
	"ilpec/internal/encode"
	"ilpec/internal/ilp"
)

// EnableMode selects how the flexibility requirement of §5 enters the ILP.
type EnableMode int

const (
	// EnableConstraints imposes constraint (7) as a hard row per clause
	// (the paper's "specified constraints", Table 1 column EC (SC)).
	EnableConstraints EnableMode = iota
	// EnableObjective adds a 0-1 flexibility indicator per clause and a
	// weighted objective component that maximizes the number of flexible
	// clauses (Table 1 column EC (OF)).
	EnableObjective
)

// String renders the mode.
func (m EnableMode) String() string {
	if m == EnableObjective {
		return "objective"
	}
	return "constraints"
}

// EnableOptions configures the enabling-EC formulation.
type EnableOptions struct {
	// Mode selects hard constraints vs objective component.
	Mode EnableMode
	// K is the satisfaction level every clause should reach (default 2 —
	// the value used throughout the paper's experiments). Clauses shorter
	// than K use their length as the target.
	K int
	// Weight is the objective reward per flexible clause in
	// EnableObjective mode (default 1).
	Weight float64
	// MaxComplementOccurrences skips support variables for literals whose
	// complement occurs in more than this many clauses (0 = no cap). This
	// soundly restricts flexibility options while keeping the model small
	// on literals with huge occurrence lists.
	MaxComplementOccurrences int
}

func (o EnableOptions) k() int {
	if o.K <= 0 {
		return 2
	}
	return o.K
}

func (o EnableOptions) weight() float64 {
	if o.Weight <= 0 {
		return 1
	}
	return o.Weight
}

// EnableModel is the enabling-EC ILP for a formula.
type EnableModel struct {
	// Encoding is the underlying set-cover encoding (the model inside has
	// been extended with support variables and flexibility rows).
	Encoding *encode.Encoding
	// Options echoes the build options (with defaults resolved).
	Options EnableOptions
	// SupportCol[j] maps, for clause j, each in-clause literal to its
	// support-variable column (S_jℓ of DESIGN.md §3); literals skipped by
	// the occurrence cap are absent.
	SupportCol []map[cnf.Lit]int
	// FlexCol[j] is the flexibility indicator column of clause j in
	// EnableObjective mode (-1 in constraint mode).
	FlexCol []int
}

// BuildEnable constructs the enabling-EC ILP of §5 for f.
//
// Per clause c_j and literal ℓ ∈ c_j a support variable S_jℓ is created
// with rows
//
//	S_jℓ + x_ℓ ≤ 1                                  (support only while ℓ is false)
//	S_jℓ ≤ Σ_{ℓ''∈c_k, ℓ''≠comp(ℓ)} x_ℓ''           for every clause c_k ∋ comp(ℓ), k ≠ j
//
// and the per-clause flexibility requirement
//
//	Σ_{ℓ∈c_j} x_ℓ + Σ_{ℓ∈c_j} S_jℓ ≥ min(K, |c_j|)   (constraint mode)
//	Σ_{ℓ∈c_j} x_ℓ + Σ_{ℓ∈c_j} S_jℓ ≥ min(K,|c_j|)·flex_j, max Σ flex_j (objective mode)
func BuildEnable(f *cnf.Formula, opts EnableOptions) *EnableModel {
	return buildEnableOn(encode.New(f), opts)
}

// buildEnableOn extends an existing set-cover encoding with the §5
// support variables and flexibility rows (shared by BuildEnable and the
// CNF domain adapter).
func buildEnableOn(e *encode.Encoding, opts EnableOptions) *EnableModel {
	opts.K = opts.k()
	opts.Weight = opts.weight()
	f := e.Formula
	m := e.Model
	em := &EnableModel{
		Encoding:   e,
		Options:    opts,
		SupportCol: make([]map[cnf.Lit]int, len(f.Clauses)),
		FlexCol:    make([]int, len(f.Clauses)),
	}

	pos, neg := f.LitOccurrences()
	occOf := func(l cnf.Lit) []int {
		if l.Pos() {
			return pos[l.Var()]
		}
		return neg[l.Var()]
	}

	for j, cl := range f.Clauses {
		em.FlexCol[j] = -1
		em.SupportCol[j] = make(map[cnf.Lit]int, len(cl))
		var flexTerms []ilp.Coef
		for _, l := range cl {
			flexTerms = append(flexTerms, ilp.Coef{Var: e.LitCol(l), Val: 1})
		}
		for _, l := range cl {
			comp := l.Neg()
			compOcc := occOf(comp)
			if opts.MaxComplementOccurrences > 0 && len(compOcc) > opts.MaxComplementOccurrences {
				continue
			}
			sCol := m.AddVar(fmt.Sprintf("s_%d_%s", j, l), 0)
			em.SupportCol[j][l] = sCol
			// Support counts only while ℓ itself is unselected.
			m.AddRow(fmt.Sprintf("sup_off_%d_%s", j, l),
				[]ilp.Coef{{Var: sCol, Val: 1}, {Var: e.LitCol(l), Val: 1}}, ilp.LE, 1)
			// Every clause relying on comp(ℓ) must have alternate cover.
			for _, k := range compOcc {
				if k == j {
					continue
				}
				coefs := []ilp.Coef{{Var: sCol, Val: -1}}
				seen := map[int]bool{}
				for _, l2 := range f.Clauses[k] {
					if l2 == comp {
						continue
					}
					col := e.LitCol(l2)
					if !seen[col] {
						seen[col] = true
						coefs = append(coefs, ilp.Coef{Var: col, Val: 1})
					}
				}
				m.AddRow(fmt.Sprintf("sup_alt_%d_%s_%d", j, l, k), coefs, ilp.GE, 0)
			}
			flexTerms = append(flexTerms, ilp.Coef{Var: sCol, Val: 1})
		}
		target := opts.K
		if len(cl) < target {
			target = len(cl)
		}
		switch opts.Mode {
		case EnableConstraints:
			m.AddRow(fmt.Sprintf("flex_%d", j), flexTerms, ilp.GE, float64(target))
		case EnableObjective:
			fCol := m.AddVar(fmt.Sprintf("flex_%d", j), -opts.Weight) // model minimizes
			em.FlexCol[j] = fCol
			terms := append(append([]ilp.Coef(nil), flexTerms...), ilp.Coef{Var: fCol, Val: -float64(target)})
			m.AddRow(fmt.Sprintf("flexdef_%d", j), terms, ilp.GE, 0)
		}
	}
	return em
}

// Decode extracts the truth assignment from a solution of the enabling
// model (support and flexibility columns are ignored).
func (em *EnableModel) Decode(sol ilp.Solution) cnf.Assignment {
	return em.Encoding.Decode(sol)
}

// FlexibleClauses counts clauses whose flexibility indicator is set
// (objective mode) or, in constraint mode, returns the number of clauses
// (all are flexible by construction when the model is feasible).
func (em *EnableModel) FlexibleClauses(sol ilp.Solution) int {
	if em.Options.Mode == EnableConstraints {
		return len(em.FlexCol)
	}
	n := 0
	for _, col := range em.FlexCol {
		if col >= 0 && sol[col] == 1 {
			n++
		}
	}
	return n
}

// EnableResult bundles the outcome of SolveEnable.
type EnableResult struct {
	Model      *EnableModel
	ILP        ilp.Result
	Assignment cnf.Assignment
	// Flexible is the number of clauses made flexible.
	Flexible int
}

// SolveEnable builds and exactly solves the enabling-EC model, returning
// the enabled solution. In constraint mode an infeasible model is reported
// as an error (the instance cannot reach flexibility level K everywhere —
// the paper's remedy is the objective mode).
func SolveEnable(f *cnf.Formula, opts EnableOptions, solveOpts ilp.Options) (*EnableResult, error) {
	em := BuildEnable(f, opts)
	res := ilp.Solve(em.Encoding.Model, solveOpts)
	switch res.Status {
	case ilp.Optimal, ilp.Feasible:
		a := em.Decode(res.Solution)
		if !a.Satisfies(f) {
			return nil, fmt.Errorf("core: enabling solution does not satisfy the formula (internal error)")
		}
		return &EnableResult{Model: em, ILP: res, Assignment: a, Flexible: em.FlexibleClauses(res.Solution)}, nil
	case ilp.Infeasible:
		return nil, fmt.Errorf("core: enabling EC infeasible at k=%d in %s mode", opts.k(), opts.Mode)
	default:
		return nil, fmt.Errorf("core: enabling EC solve hit limits (%s)", res.Status)
	}
}
