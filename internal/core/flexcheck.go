package core

import (
	"ilpec/internal/cnf"
)

// FlexReport summarizes the verified flexibility of a solution (§5): for
// every clause, whether it is k-satisfied outright or covered by a safe
// flip of a currently-false literal.
type FlexReport struct {
	// K is the target satisfaction level.
	K int
	// Total is the number of clauses.
	Total int
	// KSatisfied counts clauses with at least K true literals.
	KSatisfied int
	// Supported counts clauses below K that have at least one safe flip.
	Supported int
	// Unsupported lists the clause indices with neither property.
	Unsupported []int
}

// Flexible returns the number of clauses that are k-satisfied or supported.
func (r FlexReport) Flexible() int { return r.KSatisfied + r.Supported }

// FlexibleFraction returns Flexible()/Total (1 for an empty formula).
func (r FlexReport) FlexibleFraction() float64 {
	if r.Total == 0 {
		return 1
	}
	return float64(r.Flexible()) / float64(r.Total)
}

// SafeFlip reports whether committing the variable of literal l so that l
// becomes true is safe: no clause of f that is currently satisfied under a
// becomes unsatisfied ("without making any other clauses unsatisfied", §1).
// Committing a don't-care variable is always safe — no clause relies on it.
func SafeFlip(f *cnf.Formula, a cnf.Assignment, l cnf.Lit) bool {
	v := l.Var()
	switch a.Get(v) {
	case cnf.Unassigned:
		return true
	case cnf.True:
		if l.Pos() {
			return true // already true
		}
	case cnf.False:
		if !l.Pos() {
			return true
		}
	}
	// The flip falsifies the literal currently true on v; every clause
	// relying on it must have alternate support.
	was := cnf.Lit(v)
	if a.Get(v) == cnf.False {
		was = -was
	}
	for _, c := range f.Clauses {
		if !c.Has(was) {
			continue
		}
		other := false
		for _, l2 := range c {
			if l2 != was && a.LitTrue(l2) {
				other = true
				break
			}
		}
		if !other {
			return false
		}
	}
	return true
}

// ClauseSupported reports whether clause ci of f has a currently-false (or
// don't-care) literal whose flip is safe — the support notion behind
// constraint (7).
func ClauseSupported(f *cnf.Formula, a cnf.Assignment, ci int) bool {
	for _, l := range f.Clauses[ci] {
		if !a.LitTrue(l) && SafeFlip(f, a, l) {
			return true
		}
	}
	return false
}

// VerifyFlexibility audits an assignment against the §5 enabling goal:
// every clause k-satisfied or safely flip-supported. It is the simulation
// oracle the enabling-EC tests and experiments use.
func VerifyFlexibility(f *cnf.Formula, a cnf.Assignment, k int) FlexReport {
	if k <= 0 {
		k = 2
	}
	r := FlexReport{K: k, Total: len(f.Clauses)}
	for ci, cl := range f.Clauses {
		target := k
		if len(cl) < target {
			target = len(cl)
		}
		if a.SatLevel(cl) >= target {
			r.KSatisfied++
			continue
		}
		if ClauseSupported(f, a, ci) {
			r.Supported++
			continue
		}
		r.Unsupported = append(r.Unsupported, ci)
	}
	return r
}

// RepairResult is the outcome of SimulateElimination.
type RepairResult struct {
	// OK reports whether the (possibly repaired) assignment satisfies the
	// changed formula.
	OK bool
	// Flips is the number of single-variable repairs applied.
	Flips int
	// Assignment is the resulting assignment (the original when OK without
	// repair).
	Assignment cnf.Assignment
}

// SimulateElimination plays the §1 narrative: eliminate variable v from f
// and check whether assignment a still satisfies the result, repairing
// each newly unsatisfied clause with a single safe flip when possible.
// This is how enabling EC is validated: an enabled solution should survive
// any single elimination with only local restructuring.
func SimulateElimination(f *cnf.Formula, a cnf.Assignment, v int) RepairResult {
	g := f.Clone()
	g.EliminateVariable(v)
	cur := a.Clone().Grow(g.NumVars)
	cur.Set(v, cnf.Unassigned) // the variable no longer exists
	flips := 0
	for pass := 0; pass < g.NumClauses()+1; pass++ {
		unsat := cur.UnsatisfiedClauses(g)
		if len(unsat) == 0 {
			return RepairResult{OK: true, Flips: flips, Assignment: cur}
		}
		repaired := false
		for _, ci := range unsat {
			for _, l := range g.Clauses[ci] {
				if l.Var() == v || cur.LitTrue(l) {
					continue
				}
				if SafeFlip(g, cur, l) {
					if l.Pos() {
						cur.Set(l.Var(), cnf.True)
					} else {
						cur.Set(l.Var(), cnf.False)
					}
					flips++
					repaired = true
					break
				}
			}
			if repaired {
				break
			}
		}
		if !repaired {
			return RepairResult{OK: false, Flips: flips, Assignment: cur}
		}
	}
	return RepairResult{OK: cur.Satisfies(g), Flips: flips, Assignment: cur}
}

// EliminationSurvival sweeps every variable of f, simulating its
// elimination under a, and returns the fraction of variables whose
// elimination is absorbed (possibly with local repairs). This quantifies
// the §1 claim that solution E "always has the correct solution,
// regardless of which variable is being eliminated".
func EliminationSurvival(f *cnf.Formula, a cnf.Assignment) (survived, total int) {
	for v := 1; v <= f.NumVars; v++ {
		res := SimulateElimination(f, a, v)
		if res.OK {
			survived++
		}
		total++
	}
	return survived, total
}
