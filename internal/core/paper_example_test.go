package core

import (
	"testing"

	"ilpec/internal/cnf"
	"ilpec/internal/ilp"
)

// ---- §1 enabling example ----------------------------------------------
//
// F = (v1+v3'+v5')(v2+v3'+v5')(v2+v4+v5)(v3'+v4')
// S = {0,1,1,0,0} survives only some variable eliminations;
// E = {1,1,0,1,0} survives all of them (v3's elimination needs one local
// flip of v4). The test replays the narrative exactly.

func introF() *cnf.Formula {
	return cnf.FromClauses(
		[]int{1, -3, -5},
		[]int{2, -3, -5},
		[]int{2, 4, 5},
		[]int{-3, -4},
	)
}

func TestIntroExampleAssignmentsValid(t *testing.T) {
	f := introF()
	s := cnf.AssignmentFromBools(false, true, true, false, false)
	e := cnf.AssignmentFromBools(true, true, false, true, false)
	if !s.Satisfies(f) || !e.Satisfies(f) {
		t.Fatal("paper's S or E does not satisfy F — transcription error")
	}
}

func TestIntroExampleSurvival(t *testing.T) {
	f := introF()
	s := cnf.AssignmentFromBools(false, true, true, false, false)
	e := cnf.AssignmentFromBools(true, true, false, true, false)

	// S survives eliminating v1 or v3 without repair...
	for _, v := range []int{1, 3} {
		res := SimulateElimination(f, s, v)
		if !res.OK || res.Flips != 0 {
			t.Fatalf("S should survive eliminating v%d untouched (ok=%v flips=%d)", v, res.OK, res.Flips)
		}
	}
	// ...and the paper says v2, v4, v5 each break a clause under S.
	// (Local single-flip repair may still fix some of them; what the paper
	// contrasts is that E absorbs *every* elimination.)
	eSurvived, eTotal := EliminationSurvival(f, e)
	if eSurvived != eTotal {
		t.Fatalf("E survived only %d/%d eliminations", eSurvived, eTotal)
	}

	// Eliminating v3 under E requires exactly the local flip of v4 the
	// paper describes.
	res := SimulateElimination(f, e, 3)
	if !res.OK {
		t.Fatal("E should absorb eliminating v3")
	}
	if res.Flips != 1 || res.Assignment.Get(4) != cnf.False {
		t.Fatalf("expected the single v4:1→0 repair, got flips=%d v4=%v", res.Flips, res.Assignment.Get(4))
	}

	// Immediate survival (no repair): E handles v1, v2, v4, v5 directly.
	for _, v := range []int{1, 2, 4, 5} {
		res := SimulateElimination(f, e, v)
		if !res.OK || res.Flips != 0 {
			t.Fatalf("E should survive eliminating v%d untouched", v)
		}
	}
}

// TestIntroEnableFindsFlexibleSolution: solving F with enabling EC must
// produce a solution of E's quality — every clause 2-satisfied or
// flip-supported, all single eliminations absorbed.
func TestIntroEnableFindsFlexibleSolution(t *testing.T) {
	f := introF()
	res, err := SolveEnable(f, EnableOptions{Mode: EnableConstraints}, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := VerifyFlexibility(f, res.Assignment, 2)
	if len(rep.Unsupported) != 0 {
		t.Fatalf("enabled solution leaves unsupported clauses %v (assignment %v)",
			rep.Unsupported, res.Assignment)
	}
	survived, total := EliminationSurvival(f, res.Assignment)
	if survived != total {
		t.Fatalf("enabled solution survived %d/%d eliminations", survived, total)
	}
}

// ---- §1 fast-EC example (corrected; see DESIGN.md §3) -------------------

func fastF() *cnf.Formula {
	return cnf.FromClauses(
		[]int{1, 2, 3},      // f1
		[]int{1, -2, -3, 4}, // f2
		[]int{1, 3, 6},      // f3
		[]int{1, 4, 5},      // f4
		[]int{1, 3, 4},      // f5 (corrected polarity of v1)
		[]int{2, -3, 5},     // f6
		[]int{2, -6},        // f7
		[]int{-2, 5},        // f8
		[]int{3, -4, 5},     // f9
		[]int{-3, 5},        // f10
	)
}

func fastS() cnf.Assignment {
	return cnf.AssignmentFromBools(true, false, false, false, true, false)
}

func TestFastExampleClosure(t *testing.T) {
	f, s := fastF(), fastS()
	if !s.Satisfies(f) {
		t.Fatal("corrected S does not satisfy F")
	}
	// EC: add f11 = (v5'+v6) and f12 = (v1+v3'+v4).
	fPrime, err := Apply(f, []Change{NewClause(-5, 6), NewClause(1, -3, 4)})
	if err != nil {
		t.Fatal(err)
	}
	simp := Simplify(fPrime, s)
	if simp.AlreadySatisfied {
		t.Fatal("f11 must invalidate S")
	}
	// The paper's narrative: F'' has exactly the three clauses f11, f7, f8
	// over the variables {v2, v5, v6}.
	wantVars := []int{2, 5, 6}
	if len(simp.Vars) != 3 {
		t.Fatalf("V = %v, want %v", simp.Vars, wantVars)
	}
	for i, v := range wantVars {
		if simp.Vars[i] != v {
			t.Fatalf("V = %v, want %v", simp.Vars, wantVars)
		}
	}
	wantMarked := []int{6, 7, 10} // f7, f8, f11 (0-based)
	if len(simp.Marked) != 3 {
		t.Fatalf("marked = %v, want %v", simp.Marked, wantMarked)
	}
	for i, ci := range wantMarked {
		if simp.Marked[i] != ci {
			t.Fatalf("marked = %v, want %v", simp.Marked, wantMarked)
		}
	}
}

func TestFastExampleResolve(t *testing.T) {
	f, s := fastF(), fastS()
	fPrime, err := Apply(f, []Change{NewClause(-5, 6), NewClause(1, -3, 4)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := FastResolve(fPrime, s, FastOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.AlreadySatisfied {
		t.Fatal("re-solve was required")
	}
	if !res.Assignment.Satisfies(fPrime) {
		t.Fatal("merged solution does not satisfy F'")
	}
	if res.SubVars != 3 || res.SubClauses != 3 {
		t.Fatalf("sub-instance %d vars/%d clauses, want 3/3 ('from ten clauses to three')",
			res.SubVars, res.SubClauses)
	}
	// Variables outside V keep their original values.
	for _, v := range []int{1, 3, 4} {
		if res.Assignment.Get(v) != s.Get(v) {
			t.Fatalf("out-of-V variable v%d changed", v)
		}
	}
}

// ---- §1 preserving example ----------------------------------------------

func preserveF() *cnf.Formula {
	return cnf.FromClauses(
		[]int{1, 2, 4}, []int{1, 4, -5}, []int{-1, -3, 4},
		[]int{2, 3, 5}, []int{-2, 4, 5}, []int{3, -4, 5},
	)
}

func TestPreserveExample(t *testing.T) {
	f := preserveF()
	s := cnf.AssignmentFromBools(true, true, false, false, true)
	if !s.Satisfies(f) {
		t.Fatal("S does not satisfy the base formula")
	}
	fPrime, err := Apply(f, []Change{NewClause(-2, 3, 4), NewClause(1, -2, -5)})
	if err != nil {
		t.Fatal(err)
	}
	if s.Satisfies(fPrime) {
		t.Fatal("added clauses must invalidate S")
	}
	res, err := PreserveResolve(fPrime, s, PreserveOptions{Mode: PreserveMaximize})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Assignment.Satisfies(fPrime) {
		t.Fatal("preserving solution does not satisfy F'")
	}
	// The paper's S2 = {1,0,0,0,1} preserves 4 of 5; preserving EC must do
	// at least that well.
	if res.Preserved < 0.8-1e-9 {
		t.Fatalf("preserved %.2f, want ≥ 0.80 (paper's S2 level)", res.Preserved)
	}
}
