package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ilpec/internal/cnf"
	"ilpec/internal/encode"
	"ilpec/internal/ilp"
	"ilpec/internal/sat"
)

// solveFor returns some satisfying assignment via the set-cover ILP.
func solveFor(t *testing.T, f *cnf.Formula) cnf.Assignment {
	t.Helper()
	a, _, err := PlainResolve(f, ilp.Options{})
	if err != nil {
		t.Fatalf("solveFor: %v", err)
	}
	return a
}

func TestSimplifyAlreadySatisfied(t *testing.T) {
	f := cnf.FromClauses([]int{1, 2}, []int{-1, 3})
	a := solveFor(t, f)
	res := Simplify(f, a)
	if !res.AlreadySatisfied || len(res.Vars) != 0 || len(res.Marked) != 0 {
		t.Fatalf("Simplify on satisfied instance = %+v", res)
	}
}

func TestSimplifyMarksUnsatClause(t *testing.T) {
	f := cnf.FromClauses([]int{1, 2}, []int{3, 4})
	a := cnf.AssignmentFromBools(true, false, true, false)
	f.AddClause(cnf.Clause{-1, -3}) // unsatisfied under a
	res := Simplify(f, a)
	if res.AlreadySatisfied {
		t.Fatal("added clause should be unsatisfied")
	}
	// V starts as {1,3}; clause 0 is satisfied by v1 ∈ V only → marked,
	// pulling in v2; clause 1 satisfied by v3 ∈ V only → marked, pulls v4.
	if len(res.Vars) != 4 {
		t.Fatalf("V = %v", res.Vars)
	}
	if len(res.Marked) != 3 {
		t.Fatalf("marked = %v", res.Marked)
	}
}

func TestSimplifyStopsAtOutsideSupport(t *testing.T) {
	// Clause (v1 + v5) is satisfied by v5 ∉ V, so the closure stops.
	f := cnf.FromClauses([]int{1, 5}, []int{2, 3})
	a := cnf.AssignmentFromBools(true, true, false, false, true)
	f.AddClause(cnf.Clause{-1, 4}) // unsatisfied: v1=1, v4=0
	res := Simplify(f, a)
	// V = {1,4}; clause 0 has v5 support outside V → safe; clause 1
	// untouched (no V vars).
	if len(res.Marked) != 1 || res.Marked[0] != 2 {
		t.Fatalf("marked = %v, want just the new clause", res.Marked)
	}
	wantV := []int{1, 4}
	if len(res.Vars) != 2 || res.Vars[0] != wantV[0] || res.Vars[1] != wantV[1] {
		t.Fatalf("V = %v, want %v", res.Vars, wantV)
	}
}

func TestSubFormulaDropsOutsideLiterals(t *testing.T) {
	f := cnf.FromClauses([]int{1, 5}, []int{2, 3})
	a := cnf.AssignmentFromBools(true, true, false, false, true)
	f.AddClause(cnf.Clause{-1, 4, 3})
	simp := Simplify(f, a)
	sub, varOf := SubFormula(f, a, simp)
	if sub.NumVars != len(simp.Vars) {
		t.Fatalf("sub NumVars = %d", sub.NumVars)
	}
	for cv := 1; cv < len(varOf); cv++ {
		if varOf[cv] != simp.Vars[cv-1] {
			t.Fatalf("varOf mismatch at %d", cv)
		}
	}
	// v3 is outside V (clause 1 untouched, clause 2's v3 is false under a
	// but v3 ∉ V) — the sub-clause keeps only in-V literals.
	for _, cl := range sub.Clauses {
		for _, l := range cl {
			orig := varOf[l.Var()]
			found := false
			for _, v := range simp.Vars {
				if v == orig {
					found = true
				}
			}
			if !found {
				t.Fatalf("sub-clause literal on out-of-V variable %d", orig)
			}
		}
	}
}

func TestFastResolveNoChangeNeeded(t *testing.T) {
	f := cnf.FromClauses([]int{1, 2})
	a := cnf.AssignmentFromBools(true, false)
	res, err := FastResolve(f, a, FastOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AlreadySatisfied {
		t.Fatal("no re-solve should be needed")
	}
}

func TestFastResolveEmptyClause(t *testing.T) {
	f := cnf.New(2)
	f.AddClause(cnf.Clause{})
	if _, err := FastResolve(f, cnf.NewAssignment(2), FastOptions{}); err == nil {
		t.Fatal("expected error on empty clause")
	}
}

func TestFastResolveUnsatisfiableChange(t *testing.T) {
	f := cnf.FromClauses([]int{1}, []int{-1})
	a := cnf.AssignmentFromBools(true)
	if _, err := FastResolve(f, a, FastOptions{}); err == nil {
		t.Fatal("expected unsatisfiable error")
	}
}

// TestFastResolveEscalation: the frozen out-of-V context can make the
// sub-instance unsatisfiable; escalation must recover.
func TestFastResolveEscalation(t *testing.T) {
	// p = all true. Add (v1') → V={1}. Marked: clauses containing v1 with
	// no outside support... craft: (v1+v2) satisfied by v2 ∉ V (outside
	// support, safe). Sub-instance = {(v1')} over {v1} → v1=0. BUT also
	// clause (v1+v2') is satisfied only by v1 ∈ V → marked, pulls v2.
	// To force escalation we need the first-round sub-instance UNSAT:
	// clauses (v1') and (v1 + v2') where v2' is false and v2 ∉ V… v2'
	// false means not a support, so (v1+v2') gets marked in round one and
	// the closure already includes v2. Force instead with an EQ-style
	// pair: (v1') new, and (v1+v2), (v1+v2') both supported by… v2 true
	// satisfies (v1+v2) outside V; (v1+v2') has only v1 → marked, pulls
	// v2 anyway. Closure handles it in-round; escalation is rare by
	// design. Simply verify FastResolve succeeds and merges correctly.
	f := cnf.FromClauses([]int{1, 2}, []int{-2, 3}, []int{3, 4})
	a := cnf.AssignmentFromBools(true, true, true, true)
	fPrime, err := Apply(f, []Change{NewClause(-1, -3)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := FastResolve(fPrime, a, FastOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Assignment.Satisfies(fPrime) {
		t.Fatal("merged solution unsatisfying")
	}
	if res.Assignment.Get(1) != cnf.False && res.Assignment.Get(3) != cnf.False {
		t.Fatal("one of v1/v3 must flip to false")
	}
}

// Property: FastResolve's merged assignment always satisfies the changed
// formula, and variables outside the sub-instance keep their values —
// checked over random mutations of random satisfiable instances.
func TestFastResolveMergeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nVars := 4 + r.Intn(6)
		f := cnf.New(nVars)
		plant := cnf.NewAssignment(nVars)
		for v := 1; v <= nVars; v++ {
			if r.Intn(2) == 0 {
				plant.Set(v, cnf.True)
			} else {
				plant.Set(v, cnf.False)
			}
		}
		for i := 0; i < 2+r.Intn(10); i++ {
			cl := make(cnf.Clause, 0, 3)
			vs := r.Perm(nVars)[:3]
			for j, vi := range vs {
				v := vi + 1
				l := cnf.Lit(v)
				if plant.Get(v) == cnf.False {
					l = -l
				}
				if j > 0 && r.Intn(2) == 0 {
					l = -l
				}
				cl = append(cl, l)
			}
			f.AddClause(cl)
		}
		p := solveForProp(f)
		if p == nil {
			return true // skip unsolvable setups (should not happen)
		}
		// Mutate: add up to 3 random clauses, keep satisfiable.
		fPrime := f.Clone()
		for i := 0; i < 1+r.Intn(3); i++ {
			cl := make(cnf.Clause, 0, 2)
			vs := r.Perm(nVars)[:2]
			for _, vi := range vs {
				l := cnf.Lit(vi + 1)
				if r.Intn(2) == 0 {
					l = -l
				}
				cl = append(cl, l)
			}
			g := fPrime.Clone()
			g.AddClause(cl)
			if sat.IsSatisfiable(g) {
				fPrime = g
			}
		}
		res, err := FastResolve(fPrime, p, FastOptions{})
		if err != nil {
			return false
		}
		if !res.Assignment.Satisfies(fPrime) {
			return false
		}
		if res.AlreadySatisfied {
			return true
		}
		if res.FullResolve {
			return true // whole instance re-solved; nothing frozen
		}
		inSub := make(map[int]bool)
		simp := Simplify(fPrime, p.Grow(fPrime.NumVars))
		for _, v := range simp.Vars {
			inSub[v] = true
		}
		for v := 1; v <= fPrime.NumVars; v++ {
			if inSub[v] || res.Escalations != 0 {
				continue
			}
			// Committed out-of-V variables keep their values; don't-cares
			// may have been reserved (committed) by the §6 DC recovery.
			if p.Get(v) != cnf.Unassigned && res.Assignment.Get(v) != p.Get(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func solveForProp(f *cnf.Formula) cnf.Assignment {
	a, _, err := PlainResolve(f, ilp.Options{})
	if err != nil {
		return nil
	}
	return a
}

// TestFastInstanceMuchSmaller asserts the Table-2 shape: the fast-EC
// sub-instance is a small fraction of the original on a structured
// instance with localized changes.
func TestFastInstanceMuchSmaller(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	nVars, nClauses := 60, 150
	f := cnf.New(nVars)
	plant := cnf.NewAssignment(nVars)
	for v := 1; v <= nVars; v++ {
		if rng.Intn(2) == 0 {
			plant.Set(v, cnf.True)
		} else {
			plant.Set(v, cnf.False)
		}
	}
	for i := 0; i < nClauses; i++ {
		vs := rng.Perm(nVars)[:3]
		cl := make(cnf.Clause, 3)
		for j, vi := range vs {
			v := vi + 1
			l := cnf.Lit(v)
			if plant.Get(v) == cnf.False {
				l = -l
			}
			if j == 2 && rng.Intn(2) == 0 {
				l = -l
			}
			cl[j] = l
		}
		f.AddClause(cl)
	}
	p := solveFor(t, f)
	// Add one clause violating p on two variables.
	var lits []int
	for v := 1; v <= nVars && len(lits) < 2; v++ {
		switch p.Get(v) {
		case cnf.True:
			lits = append(lits, -v)
		case cnf.False:
			lits = append(lits, v)
		}
	}
	fPrime, err := Apply(f, []Change{NewClause(lits...)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := FastResolve(fPrime, p, FastOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.AlreadySatisfied {
		t.Fatal("change should invalidate p")
	}
	if res.SubVars >= nVars/2 {
		t.Fatalf("sub-instance %d vars of %d — not localized", res.SubVars, nVars)
	}
	if !res.Assignment.Satisfies(fPrime) {
		t.Fatal("merged solution unsatisfying")
	}
}

// TestFastWarmStartGuidesMinimalChange: the sub-solve warm start biases
// toward p, so preservation should be high even without preserving EC.
func TestFastWarmStartGuidesMinimalChange(t *testing.T) {
	f := fastF()
	p := fastS()
	fPrime, err := Apply(f, []Change{NewClause(-5, 6)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := FastResolve(fPrime, p, FastOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment.PreservedFraction(p) < 0.5 {
		t.Fatalf("fast EC preserved only %.2f", res.Assignment.PreservedFraction(p))
	}
}

// Cross-check: the sub-instance ILP encodes exactly the marked clauses.
func TestSubInstanceEncodingConsistency(t *testing.T) {
	f := fastF()
	p := fastS()
	fPrime, _ := Apply(f, []Change{NewClause(-5, 6), NewClause(1, -3, 4)})
	simp := Simplify(fPrime, p)
	sub, _ := SubFormula(fPrime, p, simp)
	e := encode.New(sub)
	if e.Model.NumVars() != 2*sub.NumVars {
		t.Fatal("encoding var count wrong")
	}
	if e.Model.NumRows() != sub.NumClauses()+sub.NumVars {
		t.Fatal("encoding row count wrong")
	}
}
