package core

import (
	"fmt"

	"ilpec/internal/cnf"
	"ilpec/internal/encode"
	"ilpec/internal/ilp"
)

// PreserveMode selects the §7 preservation flavor.
type PreserveMode int

const (
	// PreserveMaximize re-solves under an objective that maximizes the
	// number of variable assignments identical to the original solution —
	// the paper's Z_i = p_i·x_i + p_{n+i}·x_{n+i} objective.
	PreserveMaximize PreserveMode = iota
	// PreserveHard keeps a user-specified set of variables at their
	// original values as hard constraints, optimizing the base set-cover
	// objective over the rest.
	PreserveHard
	// PreserveWeighted combines the base objective (minimize committed
	// literals) with a weighted preservation reward.
	PreserveWeighted
)

// String renders the mode.
func (m PreserveMode) String() string {
	switch m {
	case PreserveHard:
		return "hard"
	case PreserveWeighted:
		return "weighted"
	default:
		return "maximize"
	}
}

// PreserveOptions configures preserving EC.
type PreserveOptions struct {
	// Mode selects the preservation flavor.
	Mode PreserveMode
	// Protected lists the variables whose original values are hard
	// constraints (PreserveHard mode).
	Protected []int
	// Weight is the reward per preserved variable in PreserveWeighted mode
	// (default 2, so preservation dominates the unit commitment cost).
	Weight float64
	// Solve configures the exact solver.
	Solve ilp.Options
}

// PreserveResult is the outcome of PreserveResolve.
type PreserveResult struct {
	// Assignment satisfies the changed formula.
	Assignment cnf.Assignment
	// Preserved is the fraction of the original committed assignments kept.
	Preserved float64
	// ILP carries solver statistics.
	ILP ilp.Result
}

// BuildPreserve constructs the §7 preserving-EC ILP for the changed
// formula fPrime against original solution p.
func BuildPreserve(fPrime *cnf.Formula, p cnf.Assignment, opts PreserveOptions) (*encode.Encoding, error) {
	e := encode.New(fPrime)
	if err := applyPreserveTerms(e, fPrime, p, opts); err != nil {
		return nil, err
	}
	return e, nil
}

// applyPreserveTerms rewrites an existing set-cover encoding into the §7
// preservation form (shared by BuildPreserve and the CNF domain adapter).
func applyPreserveTerms(e *encode.Encoding, fPrime *cnf.Formula, p cnf.Assignment, opts PreserveOptions) error {
	m := e.Model
	p = p.Grow(fPrime.NumVars)
	switch opts.Mode {
	case PreserveMaximize:
		// Pure preservation objective: reward selecting the literal column
		// matching p; other columns are free.
		for j := 0; j < m.NumVars(); j++ {
			m.SetObj(j, 0)
		}
		for v := 1; v <= fPrime.NumVars; v++ {
			switch p.Get(v) {
			case cnf.True:
				m.SetObj(e.PosCol(v), -1) // minimize -Σ matched = maximize matches
			case cnf.False:
				m.SetObj(e.NegCol(v), -1)
			}
		}
	case PreserveWeighted:
		w := opts.Weight
		if w <= 0 {
			w = 2
		}
		for v := 1; v <= fPrime.NumVars; v++ {
			switch p.Get(v) {
			case cnf.True:
				m.SetObj(e.PosCol(v), 1-w)
			case cnf.False:
				m.SetObj(e.NegCol(v), 1-w)
			}
		}
	case PreserveHard:
		for _, v := range opts.Protected {
			if v < 1 || v > fPrime.NumVars {
				return fmt.Errorf("core: protected variable %d out of range", v)
			}
			switch p.Get(v) {
			case cnf.True:
				m.AddRow(fmt.Sprintf("keep_%d", v), []ilp.Coef{{Var: e.PosCol(v), Val: 1}}, ilp.GE, 1)
			case cnf.False:
				m.AddRow(fmt.Sprintf("keep_%d", v), []ilp.Coef{{Var: e.NegCol(v), Val: 1}}, ilp.GE, 1)
			default:
				// Protecting a don't-care keeps it unselected in both
				// polarities, preserving downstream freedom.
				m.AddRow(fmt.Sprintf("keep_%d", v),
					[]ilp.Coef{{Var: e.PosCol(v), Val: 1}, {Var: e.NegCol(v), Val: 1}}, ilp.LE, 0)
			}
		}
	default:
		return fmt.Errorf("core: unknown preserve mode %d", opts.Mode)
	}
	return nil
}

// PreserveResolve re-solves the changed instance under the preservation
// regime of opts and reports the preserved fraction relative to p.
func PreserveResolve(fPrime *cnf.Formula, p cnf.Assignment, opts PreserveOptions) (*PreserveResult, error) {
	if fPrime.HasEmptyClause() {
		return nil, fmt.Errorf("core: changed formula contains an empty clause (unsatisfiable)")
	}
	e, err := BuildPreserve(fPrime, p, opts)
	if err != nil {
		return nil, err
	}
	solveOpts := opts.Solve
	if solveOpts.WarmStart == nil {
		solveOpts.WarmStart = e.EncodeAssignment(p.Grow(fPrime.NumVars))
	}
	res := ilp.Solve(e.Model, solveOpts)
	switch res.Status {
	case ilp.Optimal, ilp.Feasible:
		a := e.Decode(res.Solution)
		if !a.Satisfies(fPrime) {
			return nil, fmt.Errorf("core: preserving solution does not satisfy the changed formula (internal error)")
		}
		return &PreserveResult{
			Assignment: a,
			Preserved:  a.PreservedFraction(p),
			ILP:        res,
		}, nil
	case ilp.Infeasible:
		if opts.Mode == PreserveHard {
			return nil, fmt.Errorf("core: hard preservation of %d variables is infeasible", len(opts.Protected))
		}
		return nil, fmt.Errorf("core: changed formula is unsatisfiable")
	default:
		return nil, fmt.Errorf("core: preserving solve hit limits (%s)", res.Status)
	}
}

// PlainResolve re-solves the changed instance with the base set-cover
// objective and no preservation bias — the "complete recalculation with no
// EC goals" baseline of Table 3.
func PlainResolve(fPrime *cnf.Formula, opts ilp.Options) (cnf.Assignment, ilp.Result, error) {
	if fPrime.HasEmptyClause() {
		return nil, ilp.Result{}, fmt.Errorf("core: formula contains an empty clause (unsatisfiable)")
	}
	e := encode.New(fPrime)
	res := ilp.Solve(e.Model, opts)
	switch res.Status {
	case ilp.Optimal, ilp.Feasible:
		a := e.Decode(res.Solution)
		if !a.Satisfies(fPrime) {
			return nil, res, fmt.Errorf("core: decoded solution does not satisfy the formula (internal error)")
		}
		return a, res, nil
	case ilp.Infeasible:
		return nil, res, fmt.Errorf("core: formula is unsatisfiable")
	default:
		return nil, res, fmt.Errorf("core: solve hit limits (%s)", res.Status)
	}
}
