package core

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"ilpec/internal/cnf"
	"ilpec/internal/domain"
	"ilpec/internal/encode"
	"ilpec/internal/ilp"
)

// This file adapts the paper's primary SAT/set-cover instantiation to the
// generic domain.Domain interface. Problem values are *cnf.Formula,
// solutions are cnf.Assignment, and changes are core.Change; the EC triad
// is carried by the Simplify/escalation machinery of this package.

// CNFOptions tunes the CNF adapter beyond the generic engine knobs.
type CNFOptions struct {
	// Fast carries the fast-EC policy (Minimal, MaxEscalations); the Solve
	// field is ignored — the engine supplies solver options per call.
	Fast FastOptions
	// Preserve carries the preservation flavor (Mode, Weight, Protected);
	// the Solve field is ignored.
	Preserve PreserveOptions
	// Enable carries the enabling defaults merged under generic
	// EnableOptions (notably MaxComplementOccurrences).
	Enable EnableOptions
	// FlexOnRelax runs the §6 flexibility increase after relax-only
	// batches.
	FlexOnRelax bool
}

// CNF returns the SAT/set-cover domain adapter with default options.
func CNF() domain.Domain { return CNFWith(CNFOptions{}) }

// CNFWith returns a CNF adapter with explicit EC policies.
func CNFWith(opts CNFOptions) domain.Domain { return &cnfDomain{opts: opts} }

func init() { domain.Register(CNF()) }

type cnfDomain struct {
	opts CNFOptions
}

func (d *cnfDomain) Name() string { return "cnf" }

func (d *cnfDomain) problem(p any) (*cnf.Formula, error) {
	f, ok := p.(*cnf.Formula)
	if !ok || f == nil {
		return nil, fmt.Errorf("cnf: problem is %T, want *cnf.Formula", p)
	}
	return f, nil
}

func (d *cnfDomain) solution(s any) (cnf.Assignment, error) {
	a, ok := s.(cnf.Assignment)
	if !ok || a == nil {
		return nil, fmt.Errorf("cnf: solution is %T, want cnf.Assignment", s)
	}
	return a, nil
}

func (d *cnfDomain) Validate(p any) error {
	f, err := d.problem(p)
	if err != nil {
		return err
	}
	if err := f.Validate(); err != nil {
		return err
	}
	if f.HasEmptyClause() {
		return fmt.Errorf("cnf: formula has an empty clause (unsatisfiable)")
	}
	return nil
}

func (d *cnfDomain) CloneProblem(p any) any {
	f, err := d.problem(p)
	if err != nil {
		panic(err)
	}
	return f.Clone()
}

func (d *cnfDomain) ProblemSize(p any) (int, int) {
	f, err := d.problem(p)
	if err != nil {
		return 0, 0
	}
	return f.NumVars, f.NumClauses()
}

// cnfProblemJSON is the wire form of a CNF problem: a DIMACS string or a
// clause list (plus an optional variable count for trailing unused
// variables).
type cnfProblemJSON struct {
	DIMACS  string  `json:"dimacs,omitempty"`
	Vars    int     `json:"vars,omitempty"`
	Clauses [][]int `json:"clauses,omitempty"`
}

func (d *cnfDomain) ParseProblem(spec json.RawMessage) (any, error) {
	var req cnfProblemJSON
	dec := json.NewDecoder(strings.NewReader(string(spec)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("cnf: bad problem: %w", err)
	}
	return FormulaFromWire(req.DIMACS, req.Vars, req.Clauses)
}

// FormulaFromWire builds a formula from the HTTP wire fields (shared with
// the legacy create-session shape of internal/service).
func FormulaFromWire(dimacs string, vars int, clauses [][]int) (*cnf.Formula, error) {
	if dimacs != "" {
		if len(clauses) > 0 {
			return nil, fmt.Errorf("give dimacs or clauses, not both")
		}
		f, err := cnf.ParseDIMACS(strings.NewReader(dimacs))
		if err != nil {
			return nil, fmt.Errorf("bad dimacs: %w", err)
		}
		return f, nil
	}
	if len(clauses) == 0 {
		if vars > 0 {
			// A clause-free formula over an explicit universe is valid (all
			// clauses may have been removed by changes); the wire form must
			// round-trip it.
			return cnf.New(vars), nil
		}
		return nil, fmt.Errorf("missing formula: give dimacs or clauses")
	}
	f := cnf.New(vars)
	for i, raw := range clauses {
		if len(raw) == 0 {
			return nil, fmt.Errorf("clause %d is empty", i)
		}
		cl := make(cnf.Clause, len(raw))
		for j, l := range raw {
			if l == 0 {
				return nil, fmt.Errorf("clause %d has a zero literal", i)
			}
			cl[j] = cnf.Lit(l)
		}
		f.AddClause(cl)
	}
	return f, nil
}

func (d *cnfDomain) RenderProblem(p any) any {
	f, err := d.problem(p)
	if err != nil {
		return nil
	}
	if f.NumVars == 0 && len(f.Clauses) == 0 {
		// Both wire fields are omitempty, so the empty formula would render
		// as {} — which ParseProblem rejects as "missing formula". Explicit
		// DIMACS is the one wire form that can carry it.
		return cnfProblemJSON{DIMACS: "p cnf 0 0\n"}
	}
	clauses := make([][]int, len(f.Clauses))
	for i, cl := range f.Clauses {
		lits := make([]int, len(cl))
		for j, l := range cl {
			lits[j] = int(l)
		}
		clauses[i] = lits
	}
	return cnfProblemJSON{Vars: f.NumVars, Clauses: clauses}
}

// cnfChangeJSON is the wire form of a core.Change.
type cnfChangeJSON struct {
	// Kind is "add-clause", "remove-clause", "add-variable", or
	// "remove-variable".
	Kind  string `json:"kind"`
	Lits  []int  `json:"lits,omitempty"`
	Index int    `json:"index,omitempty"`
	Var   int    `json:"var,omitempty"`
}

func (d *cnfDomain) ParseChange(spec json.RawMessage) (any, error) {
	var cj cnfChangeJSON
	if err := json.Unmarshal(spec, &cj); err != nil {
		return nil, fmt.Errorf("cnf: bad change: %w", err)
	}
	switch strings.ToLower(cj.Kind) {
	case "add-clause":
		if len(cj.Lits) == 0 {
			return nil, fmt.Errorf("add-clause needs lits")
		}
		for _, l := range cj.Lits {
			if l == 0 {
				return nil, fmt.Errorf("add-clause has a zero literal")
			}
		}
		return NewClause(cj.Lits...), nil
	case "remove-clause":
		return DropClause(cj.Index), nil
	case "add-variable":
		return GrowVariable(), nil
	case "remove-variable":
		return EliminateVariable(cj.Var), nil
	default:
		return nil, fmt.Errorf("unknown kind %q", cj.Kind)
	}
}

func (d *cnfDomain) RenderChange(change any) any {
	c, ok := change.(Change)
	if !ok {
		return nil
	}
	cj := cnfChangeJSON{Kind: c.Kind.String()}
	switch c.Kind {
	case AddClause:
		cj.Lits = make([]int, len(c.Clause))
		for i, l := range c.Clause {
			cj.Lits[i] = int(l)
		}
	case RemoveClause:
		cj.Index = c.Index
	case RemoveVariable:
		cj.Var = c.Var
	}
	return cj
}

func (d *cnfDomain) ApplyChanges(p any, changes []any) (any, error) {
	f, err := d.problem(p)
	if err != nil {
		return nil, err
	}
	typed := make([]Change, len(changes))
	for i, c := range changes {
		ch, ok := c.(Change)
		if !ok {
			return nil, fmt.Errorf("cnf: change %d is %T, want core.Change", i, c)
		}
		typed[i] = ch
	}
	return Apply(f, typed)
}

func (d *cnfDomain) Tightening(change any) bool {
	c, ok := change.(Change)
	return ok && c.Tightening()
}

func (d *cnfDomain) CloneSolution(s any) any {
	a, err := d.solution(s)
	if err != nil {
		panic(err)
	}
	return a.Clone()
}

func (d *cnfDomain) ExtendSolution(p, prev any) (any, error) {
	f, err := d.problem(p)
	if err != nil {
		return nil, err
	}
	a, err := d.solution(prev)
	if err != nil {
		return nil, err
	}
	next := a.Clone().Grow(f.NumVars)
	if d.opts.FlexOnRelax {
		next = IncreaseFlexibility(f, next).Assignment
	}
	return next, nil
}

func (d *cnfDomain) Verify(p, s any) error {
	f, err := d.problem(p)
	if err != nil {
		return err
	}
	a, err := d.solution(s)
	if err != nil {
		return err
	}
	if !a.Satisfies(f) {
		return fmt.Errorf("cnf: assignment does not satisfy the formula")
	}
	return nil
}

func (d *cnfDomain) Render(p, s any) any {
	a, err := d.solution(s)
	if err != nil {
		return nil
	}
	lits := make([]int, 0, a.AssignedCount())
	for v := 1; v <= a.NumVars(); v++ {
		switch a.Get(v) {
		case cnf.True:
			lits = append(lits, v)
		case cnf.False:
			lits = append(lits, -v)
		}
	}
	return lits
}

func (d *cnfDomain) ParseSolution(p any, spec json.RawMessage) (any, error) {
	f, err := d.problem(p)
	if err != nil {
		return nil, err
	}
	var lits []int
	if err := json.Unmarshal(spec, &lits); err != nil {
		return nil, fmt.Errorf("cnf: bad solution: %w", err)
	}
	a := cnf.NewAssignment(f.NumVars)
	for _, l := range lits {
		v := l
		val := cnf.True
		if l < 0 {
			v, val = -l, cnf.False
		}
		if v < 1 || v > f.NumVars {
			return nil, fmt.Errorf("cnf: solution literal %d out of range [1,%d]", l, f.NumVars)
		}
		a.Set(v, val)
	}
	return a, nil
}

func (d *cnfDomain) Agreement(prev, next any) float64 {
	pa, err1 := d.solution(prev)
	na, err2 := d.solution(next)
	if err1 != nil || err2 != nil {
		return 0
	}
	return na.PreservedFraction(pa)
}

func (d *cnfDomain) DontCares(p, s any) int {
	a, err := d.solution(s)
	if err != nil {
		return 0
	}
	return a.DontCareCount()
}

func (d *cnfDomain) Flex(p, s any, k int) (domain.FlexReport, error) {
	f, err := d.problem(p)
	if err != nil {
		return domain.FlexReport{}, err
	}
	a, err := d.solution(s)
	if err != nil {
		return domain.FlexReport{}, err
	}
	if k <= 0 {
		k = 2
	}
	rep := VerifyFlexibility(f, a, k)
	return domain.FlexReport{
		Total:    rep.Total,
		Flexible: rep.Flexible(),
		Detail: map[string]int{
			"k_satisfied": rep.KSatisfied,
			"supported":   rep.Supported,
		},
	}, nil
}

// cnfEncoding wraps the §3 set-cover encoding.
type cnfEncoding struct {
	e *encode.Encoding
}

func (ce *cnfEncoding) ILP() *ilp.Model { return ce.e.Model }

func (ce *cnfEncoding) Decode(sol ilp.Solution) (any, error) {
	return ce.e.Decode(sol), nil
}

func (ce *cnfEncoding) WarmStart(sol any) (ilp.Solution, bool) {
	a, ok := sol.(cnf.Assignment)
	if !ok || a == nil {
		return nil, false
	}
	return ce.e.EncodeAssignment(a.Clone().Grow(ce.e.NumVars)), true
}

func (d *cnfDomain) Encode(p any) (domain.Encoding, error) {
	f, err := d.problem(p)
	if err != nil {
		return nil, err
	}
	return &cnfEncoding{e: encode.New(f)}, nil
}

func (d *cnfDomain) PreserveTerms(enc domain.Encoding, p, prev any) error {
	ce, ok := enc.(*cnfEncoding)
	if !ok {
		return fmt.Errorf("cnf: encoding is %T", enc)
	}
	f, err := d.problem(p)
	if err != nil {
		return err
	}
	a, err := d.solution(prev)
	if err != nil {
		return err
	}
	return applyPreserveTerms(ce.e, f, a.Clone(), d.opts.Preserve)
}

func (d *cnfDomain) EnableTerms(enc domain.Encoding, p any, opts domain.EnableOptions) error {
	ce, ok := enc.(*cnfEncoding)
	if !ok {
		return fmt.Errorf("cnf: encoding is %T", enc)
	}
	eopts := d.opts.Enable
	if opts.Hard {
		eopts.Mode = EnableConstraints
	} else {
		eopts.Mode = EnableObjective
	}
	if opts.K > 0 {
		eopts.K = opts.K
	}
	if opts.Weight > 0 {
		eopts.Weight = opts.Weight
	}
	buildEnableOn(ce.e, eopts)
	return nil
}

// cnfRegion is the fast-EC region: the Figure-2 closure with the
// escalation ladder of FastResolve (minimal closure → full closure →
// occurrence rings → full re-solve).
type cnfRegion struct {
	fPrime           *cnf.Formula
	p                cnf.Assignment
	simp             SimplifyResult
	triedFullClosure bool
	full             bool
	// varOf maps compact sub-variables back to originals for the most
	// recent Encoding call (nil in full mode).
	varOf []int
}

func (d *cnfDomain) AffectedRegion(p, prev any) (domain.Region, error) {
	f, err := d.problem(p)
	if err != nil {
		return nil, err
	}
	a, err := d.solution(prev)
	if err != nil {
		return nil, err
	}
	if f.HasEmptyClause() {
		return nil, fmt.Errorf("cnf: changed formula has an empty clause (unsatisfiable)")
	}
	grown := a.Clone().Grow(f.NumVars)
	var simp SimplifyResult
	if d.opts.Fast.Minimal {
		simp = SimplifyMinimal(f, grown)
	} else {
		simp = Simplify(f, grown)
	}
	if simp.AlreadySatisfied {
		return nil, nil
	}
	return &cnfRegion{
		fPrime:           f,
		p:                grown,
		simp:             simp,
		triedFullClosure: !d.opts.Fast.Minimal,
	}, nil
}

func (r *cnfRegion) Size() int {
	if r.full {
		return r.fPrime.NumVars
	}
	return len(r.simp.Vars)
}

func (r *cnfRegion) Full() bool { return r.full }

func (r *cnfRegion) Encoding() (domain.Encoding, error) {
	if r.full {
		r.varOf = nil
		return &cnfEncoding{e: encode.New(r.fPrime)}, nil
	}
	sub, varOf := SubFormula(r.fPrime, r.p, r.simp)
	r.varOf = varOf
	return &cnfSubEncoding{e: encode.New(sub), varOf: varOf}, nil
}

func (r *cnfRegion) Merge(sub any) (any, error) {
	subAsg, ok := sub.(cnf.Assignment)
	if !ok {
		return nil, fmt.Errorf("cnf: sub-solution is %T", sub)
	}
	if r.full {
		return subAsg, nil
	}
	merged := r.p.Clone()
	for v, val := range r.simp.Reserved {
		merged.Set(v, val) // §6 recovered don't-cares
	}
	for cv := 1; cv < len(r.varOf); cv++ {
		merged.Set(r.varOf[cv], subAsg.Get(cv))
	}
	return merged, nil
}

func (r *cnfRegion) Escalate() bool {
	if r.full {
		return false
	}
	if !r.triedFullClosure {
		r.triedFullClosure = true
		r.simp = Simplify(r.fPrime, r.p)
		return true
	}
	grown := escalate(r.fPrime, r.p, r.simp)
	if len(grown.Vars) == len(r.simp.Vars) {
		return false
	}
	r.simp = grown
	return true
}

func (r *cnfRegion) EscalateToFull() { r.full = true }

// cnfSubEncoding encodes the compact sub-formula over the region
// variables; warm starts project the full previous solution onto it.
type cnfSubEncoding struct {
	e     *encode.Encoding
	varOf []int
}

func (se *cnfSubEncoding) ILP() *ilp.Model { return se.e.Model }

func (se *cnfSubEncoding) Decode(sol ilp.Solution) (any, error) {
	return se.e.Decode(sol), nil
}

func (se *cnfSubEncoding) WarmStart(sol any) (ilp.Solution, bool) {
	p, ok := sol.(cnf.Assignment)
	if !ok || p == nil {
		return nil, false
	}
	return warmFromOriginal(se.e, p, se.varOf), true
}

func (d *cnfDomain) FingerprintProblem(w io.Writer, p any) {
	f, err := d.problem(p)
	if err != nil {
		domain.WriteString(w, "cnf-bad-problem")
		return
	}
	domain.WriteInts(w, int64(f.NumVars), int64(len(f.Clauses)))
	for _, cl := range f.Clauses {
		domain.WriteInts(w, int64(len(cl)))
		for _, l := range cl {
			domain.WriteInts(w, int64(l))
		}
	}
}

func (d *cnfDomain) FingerprintSolution(w io.Writer, s any) {
	a, err := d.solution(s)
	if err != nil {
		domain.WriteString(w, "cnf-bad-solution")
		return
	}
	n := a.NumVars()
	domain.WriteInts(w, int64(n))
	for v := 1; v <= n; v++ {
		domain.WriteInts(w, int64(a.Get(v)))
	}
}

// Conformance supplies the shared domain test fixture.
func (d *cnfDomain) Conformance() domain.Conformance {
	return domain.Conformance{
		Problem: cnf.FromClauses(
			[]int{1, 2}, []int{-1, 3}, []int{2, 4}, []int{-3, -4, 5}, []int{5, 6},
		),
		ProblemJSON: json.RawMessage(`{"clauses": [[1,2],[-1,3],[2,4],[-3,-4,5],[5,6]]}`),
		Tightening:  []any{NewClause(-2, 3), NewClause(1, 4)},
		TighteningJSON: []json.RawMessage{
			json.RawMessage(`{"kind":"add-clause","lits":[-2,3]}`),
			json.RawMessage(`{"kind":"add-clause","lits":[1,4]}`),
		},
		Relaxing: []any{GrowVariable(), DropClause(0)},
		Enable:   domain.EnableOptions{K: 2, Weight: 2},
		FlexK:    2,
	}
}
