package core

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzFormulaFromWire drives the HTTP create path's formula decoder with
// arbitrary DIMACS text and variable counts: it must never panic, and an
// accepted formula must survive the domain wire round-trip
// (RenderProblem → ParseProblem) with an identical fingerprint — the
// property the durable store's snapshot codec depends on.
func FuzzFormulaFromWire(f *testing.F) {
	f.Add("p cnf 2 2\n1 2 0\n-1 2 0\n", 0)
	f.Add("c comment\np cnf 3 1\n1 -2 3 0\n", 0)
	f.Add("p cnf 1 1\n1 0\n%\n0\n", 0)
	f.Add("p cnf 0 0\n", 0)
	f.Add("", 4)
	f.Add("", 0)
	f.Add("p cnf 2 1\n1 2\n", 0)     // clause without terminator
	f.Add("1 2 0\n", 0)              // clause before problem line
	f.Add("p cnf 2 2\np cnf 2 2", 0) // duplicate problem line
	f.Fuzz(func(t *testing.T, dimacs string, vars int) {
		formula, err := FormulaFromWire(dimacs, vars, nil)
		if err != nil {
			return
		}
		if formula == nil {
			t.Fatal("nil formula without error")
		}
		d := CNF()
		if err := d.Validate(formula); err != nil {
			// FormulaFromWire is a faithful decoder: it accepts shapes
			// (e.g. an empty clause in DIMACS text) that Validate — the
			// service's admission gate — rejects before anything is
			// persisted. The round-trip guarantee only covers formulas
			// that pass the gate.
			return
		}
		wire := d.RenderProblem(formula)
		if wire == nil {
			t.Fatal("accepted formula has no wire form")
		}
		raw, err := json.Marshal(wire)
		if err != nil {
			t.Fatalf("encode accepted formula: %v", err)
		}
		back, err := d.ParseProblem(raw)
		if err != nil {
			t.Fatalf("wire round-trip rejected: %v", err)
		}
		var a, b bytes.Buffer
		d.FingerprintProblem(&a, formula)
		d.FingerprintProblem(&b, back)
		if a.String() != b.String() {
			t.Fatal("formula fingerprint diverged across the wire round-trip")
		}
	})
}
