package core

import (
	"math/rand"
	"strings"
	"testing"

	"ilpec/internal/cnf"
	"ilpec/internal/ilp"
)

// plant2SAT generates a formula in which assignment `plant` satisfies every
// clause at level ≥ 2 — guaranteeing the constraint-mode enabling model is
// feasible (see DESIGN.md §4 on the benchmark substitution).
func plant2SAT(rng *rand.Rand, nVars, nClauses int) (*cnf.Formula, cnf.Assignment) {
	plant := cnf.NewAssignment(nVars)
	for v := 1; v <= nVars; v++ {
		if rng.Intn(2) == 0 {
			plant.Set(v, cnf.True)
		} else {
			plant.Set(v, cnf.False)
		}
	}
	f := cnf.New(nVars)
	for i := 0; i < nClauses; i++ {
		vs := rng.Perm(nVars)[:3]
		cl := make(cnf.Clause, 3)
		for j, vi := range vs {
			v := vi + 1
			l := cnf.Lit(v)
			if plant.Get(v) == cnf.False {
				l = -l
			}
			// Two literals agree with the plant; the third is random.
			if j == 2 && rng.Intn(2) == 0 {
				l = -l
			}
			cl[j] = l
		}
		f.AddClause(cl)
	}
	return f, plant
}

func TestEnableModeString(t *testing.T) {
	if EnableConstraints.String() != "constraints" || EnableObjective.String() != "objective" {
		t.Fatal("EnableMode.String mismatch")
	}
}

func TestBuildEnableShape(t *testing.T) {
	f := cnf.FromClauses([]int{1, 2}, []int{-1, 3})
	em := BuildEnable(f, EnableOptions{Mode: EnableConstraints})
	m := em.Encoding.Model
	// Base: 6 columns. Supports: one per (clause, literal) = 4.
	if m.NumVars() != 6+4 {
		t.Fatalf("vars = %d, want 10", m.NumVars())
	}
	if em.Options.K != 2 || em.Options.Weight != 1 {
		t.Fatalf("defaults not resolved: %+v", em.Options)
	}
	if len(em.SupportCol[0]) != 2 || len(em.SupportCol[1]) != 2 {
		t.Fatalf("support cols: %v", em.SupportCol)
	}
	if em.FlexCol[0] != -1 {
		t.Fatal("constraint mode should not create flex columns")
	}
	// Objective mode adds one flex var per clause.
	em2 := BuildEnable(f, EnableOptions{Mode: EnableObjective, Weight: 3})
	if em2.Encoding.Model.NumVars() != 6+4+2 {
		t.Fatalf("objective-mode vars = %d", em2.Encoding.Model.NumVars())
	}
	for j := range em2.FlexCol {
		if em2.FlexCol[j] < 0 {
			t.Fatalf("flex col missing for clause %d", j)
		}
		if em2.Encoding.Model.Obj(em2.FlexCol[j]) != -3 {
			t.Fatal("flex weight not applied to objective")
		}
	}
}

func TestEnableConstraintsVerified(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 12; trial++ {
		f, _ := plant2SAT(rng, 8, 14)
		res, err := SolveEnable(f, EnableOptions{Mode: EnableConstraints}, ilp.Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !res.Assignment.Satisfies(f) {
			t.Fatalf("trial %d: enabled assignment unsatisfying", trial)
		}
		rep := VerifyFlexibility(f, res.Assignment, 2)
		if len(rep.Unsupported) != 0 {
			t.Fatalf("trial %d: unsupported clauses %v", trial, rep.Unsupported)
		}
		if res.Flexible != f.NumClauses() {
			t.Fatalf("trial %d: Flexible = %d, want all %d", trial, res.Flexible, f.NumClauses())
		}
	}
}

func TestEnableObjectiveMaximizesFlexibility(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f, _ := plant2SAT(rng, 8, 12)
	res, err := SolveEnable(f, EnableOptions{Mode: EnableObjective, Weight: 10}, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// With a 2-satisfiable plant and a large weight, every clause should
	// come out flexible.
	if res.Flexible != f.NumClauses() {
		t.Fatalf("flexible = %d / %d", res.Flexible, f.NumClauses())
	}
	rep := VerifyFlexibility(f, res.Assignment, 2)
	if rep.Flexible() != f.NumClauses() {
		t.Fatalf("verification found %d flexible, model claimed %d", rep.Flexible(), res.Flexible)
	}
}

func TestEnableObjectiveFlexMatchesAudit(t *testing.T) {
	// The model's flex indicators must never overclaim against the
	// simulation audit.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 8; trial++ {
		f, _ := plant2SAT(rng, 7, 10)
		em := BuildEnable(f, EnableOptions{Mode: EnableObjective, Weight: 5})
		res := ilp.Solve(em.Encoding.Model, ilp.Options{})
		if res.Status != ilp.Optimal {
			t.Fatalf("trial %d: %v", trial, res.Status)
		}
		a := em.Decode(res.Solution)
		rep := VerifyFlexibility(f, a, 2)
		if em.FlexibleClauses(res.Solution) > rep.Flexible() {
			t.Fatalf("trial %d: model claims %d flexible, audit confirms only %d",
				trial, em.FlexibleClauses(res.Solution), rep.Flexible())
		}
	}
}

func TestEnableInfeasibleConstraintMode(t *testing.T) {
	// Force v1 true and false via units: (v1)(v1') is unsatisfiable, and
	// even satisfiable-but-rigid formulas can refuse k=2. Use the rigid
	// (v1)(v1'+v2)(v2'): satisfiable only by v1=1,v2=... v2 must be 0 and 1
	// — actually unsatisfiable; pick the rigid-satisfiable (v1)(v2)(v1'+v2'):
	// UNSAT too. Use (v1)(v1'+v2): the single solution chain v1=1,v2=1;
	// clause (v1) has one literal (target lowered to 1) but (v1'+v2) is
	// 1-satisfied and v1 cannot flip (clause (v1) would break) while v2 is
	// already true — still flexible? v2 true means 1-sat; support needs v1'
	// flip which breaks (v1). So constraint mode must be infeasible.
	f := cnf.FromClauses([]int{1}, []int{-1, 2})
	_, err := SolveEnable(f, EnableOptions{Mode: EnableConstraints}, ilp.Options{})
	if err == nil {
		t.Fatal("expected infeasibility for the rigid chain")
	}
	if !strings.Contains(err.Error(), "infeasible") {
		t.Fatalf("unexpected error: %v", err)
	}
	// Objective mode must still produce a valid solution.
	res, err := SolveEnable(f, EnableOptions{Mode: EnableObjective}, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Assignment.Satisfies(f) {
		t.Fatal("objective-mode solution unsatisfying")
	}
	if res.Flexible >= f.NumClauses() {
		t.Fatalf("objective mode overclaims flexibility: %d", res.Flexible)
	}
}

func TestEnableKParameter(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	// Plant a fully-true assignment and all-positive 4-literal clauses so
	// k=3 is achievable.
	f := cnf.New(8)
	for i := 0; i < 10; i++ {
		vs := rng.Perm(8)[:4]
		cl := make(cnf.Clause, 4)
		for j, v := range vs {
			cl[j] = cnf.Lit(v + 1)
		}
		f.AddClause(cl)
	}
	res, err := SolveEnable(f, EnableOptions{Mode: EnableConstraints, K: 3}, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := VerifyFlexibility(f, res.Assignment, 3)
	if len(rep.Unsupported) != 0 {
		t.Fatalf("k=3 enabling left unsupported clauses %v", rep.Unsupported)
	}
}

func TestEnableShortClauseTargets(t *testing.T) {
	// A unit clause can never be 2-satisfied; the target must drop to its
	// length, keeping the model feasible.
	f := cnf.FromClauses([]int{1}, []int{2, 3})
	res, err := SolveEnable(f, EnableOptions{Mode: EnableConstraints}, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment.Get(1) != cnf.True {
		t.Fatal("unit clause not honored")
	}
}

func TestEnableOccurrenceCap(t *testing.T) {
	f := cnf.FromClauses([]int{1, 2}, []int{-1, 3}, []int{-1, 4}, []int{-1, 5})
	capped := BuildEnable(f, EnableOptions{Mode: EnableObjective, MaxComplementOccurrences: 1})
	uncapped := BuildEnable(f, EnableOptions{Mode: EnableObjective})
	if capped.Encoding.Model.NumRows() >= uncapped.Encoding.Model.NumRows() {
		t.Fatal("occurrence cap did not shrink the model")
	}
	// Literal v1 in clause 0 has comp occurring 3 times > cap 1 → skipped.
	if _, ok := capped.SupportCol[0][cnf.Lit(1)]; ok {
		t.Fatal("support for high-occurrence literal not skipped")
	}
}

func TestEnableModelGrowth(t *testing.T) {
	// Table-1 context: the enabling model is strictly larger than the base
	// encoding — that is the "overhead" the paper measures.
	rng := rand.New(rand.NewSource(31))
	f, _ := plant2SAT(rng, 10, 20)
	base := BuildEnable(f, EnableOptions{Mode: EnableConstraints})
	if base.Encoding.Model.NumVars() <= 2*f.NumVars {
		t.Fatal("no support variables created")
	}
	if base.Encoding.Model.NumRows() <= f.NumClauses()+f.NumVars {
		t.Fatal("no support rows created")
	}
}
