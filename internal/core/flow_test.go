package core

import (
	"testing"

	"ilpec/internal/cnf"
	"ilpec/internal/heurilp"
)

func flowFormula() *cnf.Formula {
	return cnf.FromClauses(
		[]int{1, 2, 3}, []int{-1, 2}, []int{2, 4}, []int{3, -4, 5}, []int{-2, 5},
	)
}

func TestFlowSolveAndFast(t *testing.T) {
	fl := NewFlow(flowFormula(), FlowOptions{})
	a, err := fl.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !a.Satisfies(fl.Formula()) {
		t.Fatal("initial solution unsatisfying")
	}
	if len(fl.History()) != 1 || fl.History()[0].Action != "solve" {
		t.Fatalf("history = %+v", fl.History())
	}
	// Tightening change resolved with fast EC.
	b, err := fl.ApplyChange([]Change{NewClause(-2, -5)}, FastEC)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Satisfies(fl.Formula()) {
		t.Fatal("post-change solution unsatisfying")
	}
	if fl.History()[1].Action != "fast" {
		t.Fatalf("step action = %q", fl.History()[1].Action)
	}
}

func TestFlowRelaxSkipsResolve(t *testing.T) {
	fl := NewFlow(flowFormula(), FlowOptions{})
	if _, err := fl.Solve(); err != nil {
		t.Fatal(err)
	}
	before := fl.Solution().Clone()
	a, err := fl.ApplyChange([]Change{GrowVariable(), DropClause(0)}, FastEC)
	if err != nil {
		t.Fatal(err)
	}
	// Values of existing variables unchanged; step recorded as relax.
	for v := 1; v <= before.NumVars(); v++ {
		if a.Get(v) != before.Get(v) {
			t.Fatal("relaxing change altered the solution")
		}
	}
	if fl.History()[1].Action != "relax" || fl.History()[1].Preserved != 1 {
		t.Fatalf("relax step = %+v", fl.History()[1])
	}
	if fl.Formula().NumVars != 6 {
		t.Fatalf("NumVars = %d, want 6", fl.Formula().NumVars)
	}
}

func TestFlowPreservingStrategy(t *testing.T) {
	fl := NewFlow(flowFormula(), FlowOptions{})
	if _, err := fl.Solve(); err != nil {
		t.Fatal(err)
	}
	a, err := fl.ApplyChange([]Change{NewClause(-2, 4)}, PreservingEC)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Satisfies(fl.Formula()) {
		t.Fatal("preserving solution unsatisfying")
	}
	if fl.History()[1].Action != "preserving" {
		t.Fatalf("action = %q", fl.History()[1].Action)
	}
	if fl.History()[1].Preserved < 0 || fl.History()[1].Preserved > 1 {
		t.Fatalf("preserved fraction = %v", fl.History()[1].Preserved)
	}
}

func TestFlowReplanStrategy(t *testing.T) {
	fl := NewFlow(flowFormula(), FlowOptions{})
	if _, err := fl.Solve(); err != nil {
		t.Fatal(err)
	}
	a, err := fl.ApplyChange([]Change{NewClause(-2, 4)}, Replan)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Satisfies(fl.Formula()) {
		t.Fatal("replanned solution unsatisfying")
	}
}

func TestFlowWithEnabling(t *testing.T) {
	fl := NewFlow(flowFormula(), FlowOptions{
		Enable: &EnableOptions{Mode: EnableObjective, Weight: 5},
	})
	a, err := fl.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !a.Satisfies(fl.Formula()) {
		t.Fatal("enabled solution unsatisfying")
	}
	if fl.History()[0].Action != "enable" {
		t.Fatalf("action = %q", fl.History()[0].Action)
	}
}

func TestFlowWithHeuristicInitial(t *testing.T) {
	fl := NewFlow(flowFormula(), FlowOptions{
		InitialSolver: HeuristicILP,
		Heuristic:     heurilp.Options{Seed: 3},
	})
	a, err := fl.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !a.Satisfies(fl.Formula()) {
		t.Fatal("heuristic initial solution unsatisfying")
	}
}

func TestFlowErrors(t *testing.T) {
	fl := NewFlow(flowFormula(), FlowOptions{})
	if _, err := fl.ApplyChange([]Change{NewClause(1)}, FastEC); err == nil {
		t.Fatal("ApplyChange before Solve should fail")
	}
	if _, err := fl.Solve(); err != nil {
		t.Fatal(err)
	}
	if _, err := fl.ApplyChange([]Change{DropClause(99)}, FastEC); err == nil {
		t.Fatal("bad change should fail")
	}
	if _, err := fl.ApplyChange([]Change{NewClause(1)}, Strategy(42)); err == nil {
		t.Fatal("unknown strategy should fail")
	}
}

func TestStrategyAndSolverStrings(t *testing.T) {
	if FastEC.String() != "fast" || PreservingEC.String() != "preserving" || Replan.String() != "replan" {
		t.Fatal("Strategy.String mismatch")
	}
	if ExactILP.String() != "exact" || HeuristicILP.String() != "heuristic" {
		t.Fatal("SolverKind.String mismatch")
	}
}

func TestFlowSuccessiveChanges(t *testing.T) {
	// The paper criticizes ref [5] for not supporting successive requests;
	// the flow must thread solutions through a change sequence.
	fl := NewFlow(flowFormula(), FlowOptions{})
	if _, err := fl.Solve(); err != nil {
		t.Fatal(err)
	}
	changes := [][]Change{
		{NewClause(-2, -5)},
		{GrowVariable(), NewClause(6, 1)},
		{EliminateVariable(5)},
	}
	for i, chs := range changes {
		if _, err := fl.ApplyChange(chs, FastEC); err != nil {
			t.Fatalf("change %d: %v", i, err)
		}
		if !fl.Solution().Satisfies(fl.Formula()) {
			t.Fatalf("solution invalid after change %d", i)
		}
	}
	if len(fl.History()) != 4 {
		t.Fatalf("history length = %d", len(fl.History()))
	}
}
