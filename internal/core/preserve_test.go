package core

import (
	"math/rand"
	"testing"

	"ilpec/internal/cnf"
	"ilpec/internal/ilp"
	"ilpec/internal/sat"
)

func TestPreserveModeString(t *testing.T) {
	if PreserveMaximize.String() != "maximize" || PreserveHard.String() != "hard" ||
		PreserveWeighted.String() != "weighted" {
		t.Fatal("PreserveMode.String mismatch")
	}
}

// TestPreserveMaximizeIsOptimal: the preserved count of PreserveMaximize
// must equal the maximum agreement over all satisfying assignments,
// verified by exhaustive enumeration.
func TestPreserveMaximizeIsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 25; trial++ {
		nVars := 3 + rng.Intn(5)
		f := cnf.New(nVars)
		for i := 0; i < 2+rng.Intn(6); i++ {
			k := 2 + rng.Intn(2)
			cl := make(cnf.Clause, 0, k)
			vs := rng.Perm(nVars)[:k]
			for _, vi := range vs {
				l := cnf.Lit(vi + 1)
				if rng.Intn(2) == 0 {
					l = -l
				}
				cl = append(cl, l)
			}
			f.AddClause(cl)
		}
		if !sat.IsSatisfiable(f) {
			continue
		}
		// Original: a random total assignment (not necessarily satisfying
		// f — it plays the role of the pre-change solution).
		p := cnf.NewAssignment(nVars)
		for v := 1; v <= nVars; v++ {
			if rng.Intn(2) == 0 {
				p.Set(v, cnf.True)
			} else {
				p.Set(v, cnf.False)
			}
		}
		res, err := PreserveResolve(f, p, PreserveOptions{Mode: PreserveMaximize})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Oracle: maximum number of p-matching committed variables over
		// all satisfying total assignments. Partial assignments can only
		// match fewer (unassigned ≠ committed), so total enumeration is a
		// valid upper bound oracle.
		best := -1
		sat.ForEachSolution(f, func(a cnf.Assignment) bool {
			same, _ := a.Agreement(p)
			if same > best {
				best = same
			}
			return true
		})
		got := 0
		for v := 1; v <= nVars; v++ {
			if p.Get(v) != cnf.Unassigned && res.Assignment.Get(v) == p.Get(v) {
				got++
			}
		}
		if got < best {
			t.Fatalf("trial %d: preserved %d, oracle max %d", trial, got, best)
		}
	}
}

func TestPreserveHardConstraints(t *testing.T) {
	f := preserveF()
	p := cnf.AssignmentFromBools(true, true, false, false, true)
	fPrime, _ := Apply(f, []Change{NewClause(-2, 3, 4), NewClause(1, -2, -5)})
	// Protect v1 and v5 (S2 keeps both).
	res, err := PreserveResolve(fPrime, p, PreserveOptions{
		Mode: PreserveHard, Protected: []int{1, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment.Get(1) != cnf.True || res.Assignment.Get(5) != cnf.True {
		t.Fatalf("protected variables changed: %v", res.Assignment)
	}
	if !res.Assignment.Satisfies(fPrime) {
		t.Fatal("hard-preserve solution unsatisfying")
	}
}

func TestPreserveHardInfeasible(t *testing.T) {
	f := cnf.FromClauses([]int{1, 2})
	p := cnf.AssignmentFromBools(false, false)
	// Protecting both variables at false contradicts the clause.
	_, err := PreserveResolve(f, p, PreserveOptions{
		Mode: PreserveHard, Protected: []int{1, 2},
	})
	if err == nil {
		t.Fatal("expected infeasibility")
	}
}

func TestPreserveHardProtectsDontCare(t *testing.T) {
	f := cnf.FromClauses([]int{1, 2})
	p := cnf.NewAssignment(2)
	p.Set(1, cnf.True) // v2 is DC
	res, err := PreserveResolve(f, p, PreserveOptions{
		Mode: PreserveHard, Protected: []int{2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment.Get(2) != cnf.Unassigned {
		t.Fatal("protected don't-care was committed")
	}
}

func TestPreserveHardBadVariable(t *testing.T) {
	f := cnf.FromClauses([]int{1})
	p := cnf.AssignmentFromBools(true)
	if _, err := PreserveResolve(f, p, PreserveOptions{Mode: PreserveHard, Protected: []int{7}}); err == nil {
		t.Fatal("expected range error")
	}
}

func TestPreserveWeightedBeatsPlainBaseline(t *testing.T) {
	// Table-3 shape on a single instance: preserving EC keeps at least as
	// much of p as the plain re-solve.
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 10; trial++ {
		nVars := 8
		f := cnf.New(nVars)
		plant := cnf.NewAssignment(nVars)
		for v := 1; v <= nVars; v++ {
			if rng.Intn(2) == 0 {
				plant.Set(v, cnf.True)
			} else {
				plant.Set(v, cnf.False)
			}
		}
		for i := 0; i < 16; i++ {
			vs := rng.Perm(nVars)[:3]
			cl := make(cnf.Clause, 3)
			for j, vi := range vs {
				v := vi + 1
				l := cnf.Lit(v)
				if plant.Get(v) == cnf.False {
					l = -l
				}
				if j > 0 && rng.Intn(3) == 0 {
					l = -l
				}
				cl[j] = l
			}
			f.AddClause(cl)
		}
		p, _, err := PlainResolve(f, ilp.Options{})
		if err != nil {
			continue
		}
		pTotal := p.Complete(cnf.False)
		// Change: add two clauses contradicting p where possible.
		fPrime := f.Clone()
		added := 0
		for v := 1; v <= nVars && added < 2; v++ {
			if p.Get(v) == cnf.True {
				g := fPrime.Clone()
				g.AddClause(cnf.Clause{cnf.Lit(-v), cnf.Lit((v % nVars) + 1)})
				if sat.IsSatisfiable(g) {
					fPrime = g
					added++
				}
			}
		}
		pres, err := PreserveResolve(fPrime, pTotal, PreserveOptions{Mode: PreserveMaximize})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		plain, _, err := PlainResolve(fPrime, ilp.Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if pres.Preserved < plain.PreservedFraction(pTotal)-1e-9 {
			t.Fatalf("trial %d: preserving EC (%.2f) worse than plain (%.2f)",
				trial, pres.Preserved, plain.PreservedFraction(pTotal))
		}
	}
}

func TestPreserveWeightedMode(t *testing.T) {
	f := preserveF()
	p := cnf.AssignmentFromBools(true, true, false, false, true)
	fPrime, _ := Apply(f, []Change{NewClause(-2, 3, 4), NewClause(1, -2, -5)})
	res, err := PreserveResolve(fPrime, p, PreserveOptions{Mode: PreserveWeighted, Weight: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Assignment.Satisfies(fPrime) {
		t.Fatal("weighted solution unsatisfying")
	}
	if res.Preserved < 0.8-1e-9 {
		t.Fatalf("weighted preserved %.2f < 0.80", res.Preserved)
	}
}

func TestPreserveUnknownMode(t *testing.T) {
	f := cnf.FromClauses([]int{1})
	if _, err := BuildPreserve(f, cnf.AssignmentFromBools(true), PreserveOptions{Mode: PreserveMode(9)}); err == nil {
		t.Fatal("expected error for unknown mode")
	}
}

func TestPreserveEmptyClause(t *testing.T) {
	f := cnf.New(1)
	f.AddClause(cnf.Clause{})
	if _, err := PreserveResolve(f, cnf.NewAssignment(1), PreserveOptions{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestPlainResolveBasics(t *testing.T) {
	f := cnf.FromClauses([]int{1, 2}, []int{-1, 2})
	a, res, err := PlainResolve(f, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Satisfies(f) || res.Status != ilp.Optimal {
		t.Fatal("plain resolve wrong")
	}
	// Minimal commitment: v2 alone satisfies both clauses.
	if a.AssignedCount() != 1 || a.Get(2) != cnf.True {
		t.Fatalf("expected the v2-only cover, got %v", a)
	}
	unsat := cnf.FromClauses([]int{1}, []int{-1})
	if _, _, err := PlainResolve(unsat, ilp.Options{}); err == nil {
		t.Fatal("expected unsatisfiable error")
	}
}
