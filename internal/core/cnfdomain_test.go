package core

import (
	"testing"

	"ilpec/internal/cnf"
	"ilpec/internal/domain"
	"ilpec/internal/ilp"
)

// TestCNFDomainConformance runs the shared cross-domain suite against the
// CNF adapter.
func TestCNFDomainConformance(t *testing.T) {
	domain.RunConformance(t, CNF())
}

func TestCNFDomainRegistered(t *testing.T) {
	d, ok := domain.Get("cnf")
	if !ok {
		t.Fatal("cnf domain not registered")
	}
	if d.Name() != "cnf" {
		t.Fatalf("name %q", d.Name())
	}
}

// TestCNFDomainFastMatchesFastResolve pins the adapter's fast-EC region
// ladder to the behavior of the legacy FastResolve path: both must land on
// valid solutions, and the minimal-closure policy must flow through.
func TestCNFDomainFastMatchesFastResolve(t *testing.T) {
	f := cnf.FromClauses(
		[]int{1, 2}, []int{-1, 3}, []int{2, 4}, []int{-3, -4, 5}, []int{5, 6},
	)
	a, _, err := PlainResolve(f, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	changes := []Change{NewClause(-2, 3), NewClause(1, 4)}
	fPrime, err := Apply(f, changes)
	if err != nil {
		t.Fatal(err)
	}
	for _, minimal := range []bool{false, true} {
		d := CNFWith(CNFOptions{Fast: FastOptions{Minimal: minimal}})
		got, stats, err := domain.Fast(d, fPrime, a, domain.FastOptions{})
		if err != nil {
			t.Fatalf("minimal=%v: %v", minimal, err)
		}
		if err := d.Verify(fPrime, got); err != nil {
			t.Fatalf("minimal=%v: %v", minimal, err)
		}
		want, err := FastResolve(fPrime, a, FastOptions{Minimal: minimal})
		if err != nil {
			t.Fatalf("minimal=%v legacy: %v", minimal, err)
		}
		if !stats.AlreadyValid && !want.AlreadySatisfied && stats.SubSize != want.SubVars {
			t.Fatalf("minimal=%v: region size %d, legacy sub vars %d", minimal, stats.SubSize, want.SubVars)
		}
	}
}
