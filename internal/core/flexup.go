package core

import (
	"ilpec/internal/cnf"
)

// This file implements the §6 flexibility-increase step the paper applies
// after relaxing changes (clause deletions / variable additions):
//
//	"We can increase the EC flexibility of the problem in two ways. First,
//	 we try and recover as many DC variables from the initial solution as
//	 possible. The second way is to reconstruct the solution in such a way
//	 that more clauses are of 2-satisfiability or higher."
//
// Both operations work purely on the current solution — no ILP re-solve —
// so they are cheap enough to run after every relaxing change.

// FlexupResult reports what IncreaseFlexibility achieved.
type FlexupResult struct {
	// Assignment is the improved solution.
	Assignment cnf.Assignment
	// RecoveredDC is the number of variables newly returned to don't-care.
	RecoveredDC int
	// Gained2Sat is the increase in the number of ≥2-satisfied clauses.
	Gained2Sat int
	// Flips is the number of variable value changes applied (excluding
	// DC recoveries).
	Flips int
}

// RecoverDontCares un-commits every variable whose value no clause relies
// on: a committed variable v can return to don't-care when each clause
// currently supported by v's literal has another true literal. Variables
// are processed in increasing order; the result depends on that order (an
// earlier recovery can make a later one impossible), which keeps the
// operation deterministic.
func RecoverDontCares(f *cnf.Formula, a cnf.Assignment) (cnf.Assignment, int) {
	out := a.Clone().Grow(f.NumVars)
	pos, neg := f.LitOccurrences()
	recovered := 0
	for v := 1; v <= f.NumVars; v++ {
		val := out.Get(v)
		if val == cnf.Unassigned {
			continue
		}
		occ := pos[v]
		if val == cnf.False {
			occ = neg[v]
		}
		needed := false
		for _, ci := range occ {
			// Clause ci is satisfied by v's literal; does it have backup?
			backup := false
			for _, l := range f.Clauses[ci] {
				if l.Var() != v && out.LitTrue(l) {
					backup = true
					break
				}
			}
			if !backup {
				needed = true
				break
			}
		}
		if !needed {
			out.Set(v, cnf.Unassigned)
			recovered++
		}
	}
	return out, recovered
}

// IncreaseFlexibility improves the solution after relaxing changes:
// it recovers don't-cares, then greedily commits or flips single variables
// whenever that strictly increases the number of ≥2-satisfied clauses
// without unsatisfying anything. The loop runs to a fixpoint (bounded by
// the number of clauses, since the 2-satisfied count strictly increases).
func IncreaseFlexibility(f *cnf.Formula, a cnf.Assignment) FlexupResult {
	cur, recovered := RecoverDontCares(f, a)
	flips := 0
	base2 := cur.KSatisfiedCount(f, 2)
	start2 := base2

	improved := true
	for improved {
		improved = false
		for v := 1; v <= f.NumVars && !improved; v++ {
			orig := cur.Get(v)
			for _, cand := range [2]cnf.Value{cnf.True, cnf.False} {
				if cand == orig {
					continue
				}
				cur.Set(v, cand)
				if cur.Satisfies(f) {
					if n2 := cur.KSatisfiedCount(f, 2); n2 > base2 {
						base2 = n2
						flips++
						improved = true
						break
					}
				}
				cur.Set(v, orig)
			}
		}
	}
	return FlexupResult{
		Assignment:  cur,
		RecoveredDC: recovered,
		Gained2Sat:  base2 - start2,
		Flips:       flips,
	}
}

// FlexibilityGain compares the flexibility audit before and after
// IncreaseFlexibility — a convenience for reports.
func FlexibilityGain(f *cnf.Formula, before cnf.Assignment, k int) (pre, post FlexReport, res FlexupResult) {
	pre = VerifyFlexibility(f, before, k)
	res = IncreaseFlexibility(f, before)
	post = VerifyFlexibility(f, res.Assignment, k)
	return pre, post, res
}
