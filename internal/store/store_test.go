package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// backends enumerates the Store implementations under test; every
// behavioral test runs against both so the file backend is pinned to the
// in-memory reference semantics.
func backends(t *testing.T) map[string]Store {
	t.Helper()
	file, err := NewFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { file.Close() })
	return map[string]Store{"memory": NewMemory(), "file": file}
}

func raw(s string) json.RawMessage { return json.RawMessage(s) }

func snap(id string, seq uint64) Snapshot {
	return Snapshot{
		SessionID: id,
		Domain:    "cnf",
		Strategy:  "fast",
		Problem:   raw(`{"clauses":[[1,2]]}`),
		Seq:       seq,
	}
}

func TestStoreRoundtrip(t *testing.T) {
	for name, st := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if _, _, err := st.Load("s1"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("load before create: %v, want ErrNotFound", err)
			}
			if err := st.Append("s1", Record{Seq: 1, Kind: KindChanges}); err == nil {
				t.Fatal("append before snapshot accepted")
			}
			if err := st.WriteSnapshot(snap("s1", 0)); err != nil {
				t.Fatal(err)
			}
			recs := []Record{
				{Seq: 1, Kind: KindChanges, Changes: []json.RawMessage{raw(`{"kind":"add-clause","lits":[3]}`)}},
				{Seq: 2, Kind: KindSolve, Solution: raw(`[1,-2,3]`), Batched: 1},
				{Seq: 3, Kind: KindDiscard},
			}
			for _, r := range recs {
				if err := st.Append("s1", r); err != nil {
					t.Fatal(err)
				}
			}
			got, tail, err := st.Load("s1")
			if err != nil {
				t.Fatal(err)
			}
			if got.SessionID != "s1" || got.Domain != "cnf" || string(got.Problem) != `{"clauses":[[1,2]]}` {
				t.Fatalf("snapshot %+v", got)
			}
			if !reflect.DeepEqual(tail, recs) {
				t.Fatalf("tail %+v, want %+v", tail, recs)
			}

			// Out-of-order appends are rejected.
			if err := st.Append("s1", Record{Seq: 2, Kind: KindDiscard}); err == nil {
				t.Fatal("stale seq accepted")
			}

			// Compaction: a snapshot at seq 2 keeps only record 3.
			s2 := snap("s1", 2)
			s2.Solution = raw(`[1,-2,3]`)
			if err := st.WriteSnapshot(s2); err != nil {
				t.Fatal(err)
			}
			got, tail, err = st.Load("s1")
			if err != nil {
				t.Fatal(err)
			}
			if got.Seq != 2 || string(got.Solution) != `[1,-2,3]` {
				t.Fatalf("compacted snapshot %+v", got)
			}
			if len(tail) != 1 || tail[0].Seq != 3 || tail[0].Kind != KindDiscard {
				t.Fatalf("compacted tail %+v", tail)
			}

			// Appends continue after compaction.
			if err := st.Append("s1", Record{Seq: 4, Kind: KindChanges, Changes: []json.RawMessage{raw(`{}`)}}); err != nil {
				t.Fatal(err)
			}
			if _, tail, _ = st.Load("s1"); len(tail) != 2 || tail[1].Seq != 4 {
				t.Fatalf("tail after post-compaction append %+v", tail)
			}
		})
	}
}

func TestStoreListDelete(t *testing.T) {
	for name, st := range backends(t) {
		t.Run(name, func(t *testing.T) {
			for _, id := range []string{"s2", "s1", "s10"} {
				if err := st.WriteSnapshot(snap(id, 0)); err != nil {
					t.Fatal(err)
				}
			}
			ids, err := st.List()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ids, []string{"s1", "s10", "s2"}) {
				t.Fatalf("list %v", ids)
			}
			if err := st.Delete("s10"); err != nil {
				t.Fatal(err)
			}
			if err := st.Delete("s10"); err != nil {
				t.Fatalf("delete not idempotent: %v", err)
			}
			if _, _, err := st.Load("s10"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("load after delete: %v", err)
			}
			if ids, _ = st.List(); !reflect.DeepEqual(ids, []string{"s1", "s2"}) {
				t.Fatalf("list after delete %v", ids)
			}
		})
	}
}

func TestStoreRejectsBadIDs(t *testing.T) {
	for name, st := range backends(t) {
		t.Run(name, func(t *testing.T) {
			for _, id := range []string{"", ".", "..", "a/b", `a\b`, "x\x00y"} {
				if err := st.WriteSnapshot(snap(id, 0)); err == nil {
					t.Fatalf("id %q accepted", id)
				}
			}
		})
	}
}

func TestStoreReturnedValuesAreClones(t *testing.T) {
	for name, st := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if err := st.WriteSnapshot(snap("s1", 0)); err != nil {
				t.Fatal(err)
			}
			if err := st.Append("s1", Record{Seq: 1, Kind: KindSolve, Solution: raw(`[1]`)}); err != nil {
				t.Fatal(err)
			}
			got, tail, err := st.Load("s1")
			if err != nil {
				t.Fatal(err)
			}
			got.Problem[0] = 'X'
			tail[0].Solution[0] = 'X'
			again, tail2, err := st.Load("s1")
			if err != nil {
				t.Fatal(err)
			}
			if string(again.Problem) != `{"clauses":[[1,2]]}` || string(tail2[0].Solution) != `[1]` {
				t.Fatal("mutating returned values corrupted the store")
			}
		})
	}
}

func TestStoreConcurrentSessions(t *testing.T) {
	for name, st := range backends(t) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for i := 0; i < 8; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					id := fmt.Sprintf("s%d", i)
					if err := st.WriteSnapshot(snap(id, 0)); err != nil {
						t.Error(err)
						return
					}
					for seq := uint64(1); seq <= 20; seq++ {
						if err := st.Append(id, Record{Seq: seq, Kind: KindDiscard}); err != nil {
							t.Error(err)
							return
						}
					}
					if _, tail, err := st.Load(id); err != nil || len(tail) != 20 {
						t.Errorf("load %s: %d records, err %v", id, len(tail), err)
					}
				}(i)
			}
			wg.Wait()
			if ids, _ := st.List(); len(ids) != 8 {
				t.Fatalf("list %v", ids)
			}
		})
	}
}

// ---- file-backend crash scenarios ----------------------------------------

func newFileStore(t *testing.T, dir string) *File {
	t.Helper()
	st, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// seedJournal writes a snapshot and three records, then closes the store,
// returning the journal path and the clean journal bytes.
func seedJournal(t *testing.T, dir string) (journalPath string, clean []byte) {
	t.Helper()
	st := newFileStore(t, dir)
	if err := st.WriteSnapshot(snap("s1", 0)); err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		rec := Record{Seq: seq, Kind: KindChanges, Changes: []json.RawMessage{raw(fmt.Sprintf(`{"n":%d}`, seq))}}
		if err := st.Append("s1", rec); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	journalPath = filepath.Join(dir, "s1", journalName)
	clean, err := os.ReadFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	return journalPath, clean
}

func TestFileTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	path, clean := seedJournal(t, dir)
	// Simulate a crash mid-append: half of a fourth record, no newline.
	torn := append(append([]byte{}, clean...), []byte(`deadbeef {"seq":4,"kind":"cha`)...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	st := newFileStore(t, dir)
	_, tail, err := st.Load("s1")
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 3 || tail[2].Seq != 3 {
		t.Fatalf("recovered tail %+v, want 3 clean records", tail)
	}
	// The load repaired the file in place.
	repaired, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(repaired) != string(clean) {
		t.Fatalf("journal not repaired: %q", repaired)
	}
	// Appends pick up after the repair.
	if err := st.Append("s1", Record{Seq: 4, Kind: KindDiscard}); err != nil {
		t.Fatal(err)
	}
	if _, tail, _ = st.Load("s1"); len(tail) != 4 || tail[3].Seq != 4 {
		t.Fatalf("tail after repair+append %+v", tail)
	}
}

func TestFileCRCCorruptionEndsLog(t *testing.T) {
	dir := t.TempDir()
	path, clean := seedJournal(t, dir)
	// Flip one payload byte of the SECOND record: it and everything after
	// it are unreachable.
	lines := splitLines(clean)
	if len(lines) != 3 {
		t.Fatalf("seed journal has %d lines", len(lines))
	}
	second := []byte(lines[1])
	second[len(second)-3] ^= 0xff
	corrupt := []byte(lines[0] + "\n" + string(second) + "\n" + lines[2] + "\n")
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}

	st := newFileStore(t, dir)
	_, tail, err := st.Load("s1")
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 1 || tail[0].Seq != 1 {
		t.Fatalf("recovered tail %+v, want only record 1", tail)
	}
	repaired, _ := os.ReadFile(path)
	if string(repaired) != lines[0]+"\n" {
		t.Fatalf("journal not truncated at the corruption: %q", repaired)
	}
}

func TestFileGarbageJournalDropsToSnapshot(t *testing.T) {
	dir := t.TempDir()
	path, _ := seedJournal(t, dir)
	if err := os.WriteFile(path, []byte("not a journal at all\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	st := newFileStore(t, dir)
	got, tail, err := st.Load("s1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 0 || len(tail) != 0 {
		t.Fatalf("snapshot %+v tail %+v, want bare snapshot", got, tail)
	}
}

func TestFileMissingJournalIsEmptyTail(t *testing.T) {
	dir := t.TempDir()
	path, _ := seedJournal(t, dir)
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	st := newFileStore(t, dir)
	if _, tail, err := st.Load("s1"); err != nil || len(tail) != 0 {
		t.Fatalf("tail %+v err %v", tail, err)
	}
}

func TestFileSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	st := newFileStore(t, dir)
	if err := st.WriteSnapshot(snap("s1", 0)); err != nil {
		t.Fatal(err)
	}
	if err := st.Append("s1", Record{Seq: 1, Kind: KindSolve, Solution: raw(`[1,2]`)}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	if err := st.Append("s1", Record{Seq: 2, Kind: KindDiscard}); err == nil {
		t.Fatal("append after Close accepted")
	}

	st2 := newFileStore(t, dir)
	gotSnap, tail, err := st2.Load("s1")
	if err != nil {
		t.Fatal(err)
	}
	if gotSnap.SessionID != "s1" || len(tail) != 1 || string(tail[0].Solution) != `[1,2]` {
		t.Fatalf("reopened state: %+v / %+v", gotSnap, tail)
	}
}

func splitLines(b []byte) []string {
	var out []string
	for len(b) > 0 {
		i := 0
		for i < len(b) && b[i] != '\n' {
			i++
		}
		out = append(out, string(b[:i]))
		if i < len(b) {
			i++
		}
		b = b[i:]
	}
	return out
}
