package store

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"ilpec/internal/fault"
)

// Faulty wraps a Store and wires a fault.Plan into every operation: the
// injection point the chaos suite (and ecserve's -fault-plan flag) uses
// to drive the serving path through deterministic failure schedules.
// Operation names seen by the plan: "append", "snapshot", "load",
// "list", "delete".
//
// Fault semantics per kind (see internal/fault):
//
//   - error / enospc: the wrapped operation does not run; the injected
//     (transient) error is returned.
//   - latency: the operation runs normally after the injected delay.
//   - fsync: the wrapped operation RUNS — the write is durable — but the
//     acknowledgement is replaced by an error, modeling a crash between
//     write and ack. A retry of the same append sees ErrSeqConflict,
//     which the serving layer treats as "already durable".
//   - torn: on "append" over the file backend, half an unframed record
//     is written straight into the journal (a torn tail that recovery
//     must repair) and the error returned; elsewhere it degrades to an
//     error fault (no partial state is representable).
//
// Faulty is safe for concurrent use exactly when the wrapped store is.
type Faulty struct {
	inner Store
	plan  *fault.Plan
}

// NewFaulty wraps s with plan. A nil plan never injects.
func NewFaulty(s Store, plan *fault.Plan) *Faulty {
	return &Faulty{inner: s, plan: plan}
}

// Underlying returns the wrapped store (chaos tests recover through it,
// fault-free, to model a repaired disk).
func (f *Faulty) Underlying() Store { return f.inner }

// Plan returns the wired fault plan.
func (f *Faulty) Plan() *fault.Plan { return f.plan }

func (f *Faulty) Append(id string, rec Record) error {
	inj, ok := f.plan.Decide("append")
	if !ok {
		return f.inner.Append(id, rec)
	}
	switch inj.Kind {
	case fault.KindLatency:
		time.Sleep(inj.Latency)
		return f.inner.Append(id, rec)
	case fault.KindFsync:
		// The record lands durably; only the acknowledgement is lost.
		if err := f.inner.Append(id, rec); err != nil {
			return err
		}
		return inj.Err
	case fault.KindTorn:
		f.tearJournal(id, rec)
		return inj.Err
	default:
		return inj.Err
	}
}

// tearJournal simulates a crash mid-write on the file backend: the first
// half of a framed record, without its newline, is appended raw to the
// journal. Load's torn-tail repair must truncate it away. On non-file
// backends there is nothing partial to write; the fault degrades to a
// plain error.
func (f *Faulty) tearJournal(id string, rec Record) {
	fs, ok := f.inner.(*File)
	if !ok {
		return
	}
	line, err := frameRecord(rec)
	if err != nil {
		return
	}
	path := filepath.Join(fs.root, id, journalName)
	j, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return
	}
	defer j.Close()
	j.Write(line[:len(line)/2]) //nolint:errcheck // best-effort corruption
}

func (f *Faulty) WriteSnapshot(snap Snapshot) error {
	inj, ok := f.plan.Decide("snapshot")
	if !ok {
		return f.inner.WriteSnapshot(snap)
	}
	switch inj.Kind {
	case fault.KindLatency:
		time.Sleep(inj.Latency)
		return f.inner.WriteSnapshot(snap)
	case fault.KindFsync:
		if err := f.inner.WriteSnapshot(snap); err != nil {
			return err
		}
		return inj.Err
	default:
		// Torn snapshots are not representable: atomicWrite never leaves a
		// half-written snapshot behind, so torn degrades to error here.
		return inj.Err
	}
}

func (f *Faulty) Load(id string) (Snapshot, []Record, error) {
	inj, ok := f.plan.Decide("load")
	if !ok {
		return f.inner.Load(id)
	}
	if inj.Kind == fault.KindLatency {
		time.Sleep(inj.Latency)
		return f.inner.Load(id)
	}
	return Snapshot{}, nil, inj.Err
}

func (f *Faulty) List() ([]string, error) {
	inj, ok := f.plan.Decide("list")
	if !ok {
		return f.inner.List()
	}
	if inj.Kind == fault.KindLatency {
		time.Sleep(inj.Latency)
		return f.inner.List()
	}
	return nil, inj.Err
}

func (f *Faulty) Delete(id string) error {
	inj, ok := f.plan.Decide("delete")
	if !ok {
		return f.inner.Delete(id)
	}
	if inj.Kind == fault.KindLatency {
		time.Sleep(inj.Latency)
		return f.inner.Delete(id)
	}
	return inj.Err
}

// Close closes the wrapped store (never faulted: shutdown must not be
// injectable, or tests could leak file handles).
func (f *Faulty) Close() error { return f.inner.Close() }

// String identifies the wrapper in logs.
func (f *Faulty) String() string {
	return fmt.Sprintf("faulty(%T)", f.inner)
}
