package store

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"ilpec/internal/fault"
)

// birthSnapshot writes the minimal snapshot a session needs before its
// first append.
func birthSnapshot(t *testing.T, s Store, id string) {
	t.Helper()
	if err := s.WriteSnapshot(Snapshot{SessionID: id, Domain: "cnf", Strategy: "fast", Problem: []byte(`{}`)}); err != nil {
		t.Fatal(err)
	}
}

func TestFaultyErrorInjectionIsTransientAndLeavesNoState(t *testing.T) {
	for _, backend := range []struct {
		name string
		mk   func(t *testing.T) Store
	}{
		{"memory", func(t *testing.T) Store { return NewMemory() }},
		{"file", func(t *testing.T) Store {
			s, err := NewFile(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
	} {
		t.Run(backend.name, func(t *testing.T) {
			inner := backend.mk(t)
			fs := NewFaulty(inner, fault.NewPlan(0, fault.Rule{Op: "append", Kind: fault.KindError, Nth: 1}))
			birthSnapshot(t, fs, "s1")
			err := fs.Append("s1", Record{Seq: 1, Kind: KindDiscard})
			if err == nil {
				t.Fatal("injected append succeeded")
			}
			if !IsTransient(err) {
				t.Fatalf("injected error not transient: %v", err)
			}
			// Nothing landed: the same seq appends cleanly on retry.
			if err := fs.Append("s1", Record{Seq: 1, Kind: KindDiscard}); err != nil {
				t.Fatalf("retry after error fault: %v", err)
			}
			if _, tail, err := inner.Load("s1"); err != nil || len(tail) != 1 {
				t.Fatalf("tail %d (%v), want exactly the retried record", len(tail), err)
			}
		})
	}
}

// TestFaultyFailedFsync: the write lands but the ack is lost. The retry
// contract: a second append of the same seq reports ErrSeqConflict, which
// callers treat as "already durable".
func TestFaultyFailedFsync(t *testing.T) {
	inner, err := NewFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFaulty(inner, fault.NewPlan(0, fault.Rule{Op: "append", Kind: fault.KindFsync, Nth: 1}))
	birthSnapshot(t, fs, "s1")
	appendErr := fs.Append("s1", Record{Seq: 1, Kind: KindSolve, Solution: []byte(`[1]`)})
	if appendErr == nil {
		t.Fatal("fsync fault did not surface an error")
	}
	if !IsTransient(appendErr) {
		t.Fatalf("fsync fault not transient: %v", appendErr)
	}
	// The record is durable despite the error.
	if _, tail, err := inner.Load("s1"); err != nil || len(tail) != 1 || tail[0].Seq != 1 {
		t.Fatalf("record did not land: tail %v, err %v", tail, err)
	}
	// A faithful retry of the same record hits the sequence conflict.
	retryErr := fs.Append("s1", Record{Seq: 1, Kind: KindSolve, Solution: []byte(`[1]`)})
	if !errors.Is(retryErr, ErrSeqConflict) {
		t.Fatalf("retry error %v, want ErrSeqConflict", retryErr)
	}
	if IsTransient(retryErr) {
		t.Fatal("seq conflict must not be transient (retrying cannot help)")
	}
	// The session continues past the healed record.
	if err := fs.Append("s1", Record{Seq: 2, Kind: KindDiscard}); err != nil {
		t.Fatalf("append after healed fsync: %v", err)
	}
}

// TestFaultyENOSPC: disk-full surfaces syscall.ENOSPC through the fault
// error and writes nothing.
func TestFaultyENOSPC(t *testing.T) {
	inner, err := NewFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFaulty(inner, fault.NewPlan(0,
		fault.Rule{Op: "append", Kind: fault.KindENOSPC, Nth: 1},
		fault.Rule{Op: "snapshot", Kind: fault.KindENOSPC, Nth: 2},
	))
	birthSnapshot(t, fs, "s1")
	err = fs.Append("s1", Record{Seq: 1, Kind: KindDiscard})
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("append error %v, want ENOSPC", err)
	}
	if !IsTransient(err) {
		t.Fatal("ENOSPC should be transient (space can free up)")
	}
	if _, tail, err := inner.Load("s1"); err != nil || len(tail) != 0 {
		t.Fatalf("ENOSPC append left state: tail %v, err %v", tail, err)
	}
	// Snapshot path too (the second snapshot op fires the nth=2 rule).
	err = fs.WriteSnapshot(Snapshot{SessionID: "s1", Domain: "cnf", Strategy: "fast", Problem: []byte(`{}`), Seq: 1})
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("snapshot error %v, want ENOSPC", err)
	}
}

// TestFaultyTornWrite: a torn append leaves garbage on the file backend's
// journal; Load repairs it and the journal accepts the retried record.
func TestFaultyTornWrite(t *testing.T) {
	dir := t.TempDir()
	inner, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFaulty(inner, fault.NewPlan(0, fault.Rule{Op: "append", Kind: fault.KindTorn, Nth: 2}))
	birthSnapshot(t, fs, "s1")
	if err := fs.Append("s1", Record{Seq: 1, Kind: KindDiscard}); err != nil {
		t.Fatal(err)
	}
	tornErr := fs.Append("s1", Record{Seq: 2, Kind: KindSolve, Solution: []byte(`[1]`)})
	if tornErr == nil || !IsTransient(tornErr) {
		t.Fatalf("torn append error %v, want transient failure", tornErr)
	}
	// The journal now physically holds a torn tail.
	raw, err := os.ReadFile(filepath.Join(dir, "s1", journalName))
	if err != nil {
		t.Fatal(err)
	}
	if raw[len(raw)-1] == '\n' {
		t.Fatal("journal tail not torn")
	}
	// A fresh store (recovery) repairs the log: only seq 1 survives, and
	// the retried append lands.
	inner2, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, tail, err := inner2.Load("s1")
	if err != nil {
		t.Fatalf("recovery load: %v", err)
	}
	if len(tail) != 1 || tail[0].Seq != 1 {
		t.Fatalf("recovered tail %v, want only seq 1", tail)
	}
	if err := inner2.Append("s1", Record{Seq: 2, Kind: KindSolve, Solution: []byte(`[1]`)}); err != nil {
		t.Fatalf("append after torn repair: %v", err)
	}
}

// TestFaultyTornDegradesOnMemory: the memory backend cannot hold partial
// frames, so torn behaves like a clean error.
func TestFaultyTornDegradesOnMemory(t *testing.T) {
	inner := NewMemory()
	fs := NewFaulty(inner, fault.NewPlan(0, fault.Rule{Op: "append", Kind: fault.KindTorn, Nth: 1}))
	birthSnapshot(t, fs, "s1")
	if err := fs.Append("s1", Record{Seq: 1, Kind: KindDiscard}); err == nil || !IsTransient(err) {
		t.Fatalf("torn-on-memory error %v, want transient", err)
	}
	if _, tail, err := inner.Load("s1"); err != nil || len(tail) != 0 {
		t.Fatalf("torn-on-memory left state: %v, %v", tail, err)
	}
}

// TestFaultyLatencyStillSucceeds: latency faults delay but do not fail.
func TestFaultyLatencyStillSucceeds(t *testing.T) {
	inner := NewMemory()
	fs := NewFaulty(inner, fault.NewPlan(0, fault.Rule{Op: "*", Kind: fault.KindLatency, Every: 1, Latency: time.Millisecond}))
	birthSnapshot(t, fs, "s1")
	if err := fs.Append("s1", Record{Seq: 1, Kind: KindDiscard}); err != nil {
		t.Fatal(err)
	}
	if _, tail, err := fs.Load("s1"); err != nil || len(tail) != 1 {
		t.Fatalf("latency-faulted ops misbehaved: %v, %v", tail, err)
	}
	if got := fs.Plan().Injected(); got < 3 {
		t.Fatalf("latency injections %d, want ≥ 3", got)
	}
}

// TestFaultyPassThrough: a nil plan injects nothing and the wrapper is
// transparent, List/Delete included.
func TestFaultyPassThrough(t *testing.T) {
	inner := NewMemory()
	fs := NewFaulty(inner, nil)
	birthSnapshot(t, fs, "s1")
	if ids, err := fs.List(); err != nil || len(ids) != 1 {
		t.Fatalf("list %v, %v", ids, err)
	}
	if err := fs.Delete("s1"); err != nil {
		t.Fatal(err)
	}
	if ids, _ := inner.List(); len(ids) != 0 {
		t.Fatalf("delete did not pass through: %v", ids)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
}
