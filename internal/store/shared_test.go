package store

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// Two NewSharedFile handles on the same directory model two ecserve
// processes sharing a store. The exclusive-mode backend caches the
// durable high-water sequence per process, which silently breaks the CAS
// append contract across processes; shared mode must uphold it.

func openSharedPair(t *testing.T) (*File, *File, string) {
	t.Helper()
	dir := t.TempDir()
	a, err := NewSharedFile(dir)
	if err != nil {
		t.Fatalf("NewSharedFile a: %v", err)
	}
	b, err := NewSharedFile(dir)
	if err != nil {
		t.Fatalf("NewSharedFile b: %v", err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b, dir
}

func TestSharedFileCrossProcessSeqConflict(t *testing.T) {
	a, b, _ := openSharedPair(t)
	if err := a.WriteSnapshot(Snapshot{SessionID: "s1", Domain: "d", Problem: json.RawMessage(`{}`)}); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if err := a.Append("s1", Record{Seq: 1, Kind: KindChanges}); err != nil {
		t.Fatalf("append a: %v", err)
	}
	// Process B never saw A's append; a stale CAS append at seq 1 must
	// conflict, not land as a duplicate.
	err := b.Append("s1", Record{Seq: 1, Kind: KindChanges})
	if !errors.Is(err, ErrSeqConflict) {
		t.Fatalf("stale cross-process append: got %v, want ErrSeqConflict", err)
	}
	// And the successor sequence number goes through.
	if err := b.Append("s1", Record{Seq: 2, Kind: KindSolve}); err != nil {
		t.Fatalf("append b seq 2: %v", err)
	}
	_, tail, err := a.Load("s1")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(tail) != 2 || tail[0].Seq != 1 || tail[1].Seq != 2 {
		t.Fatalf("tail = %+v, want seqs 1,2", tail)
	}
}

func TestSharedFileCompactionByPeerDoesNotOrphanAppends(t *testing.T) {
	a, b, _ := openSharedPair(t)
	if err := a.WriteSnapshot(Snapshot{SessionID: "s1", Domain: "d", Problem: json.RawMessage(`{}`)}); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := a.Append("s1", Record{Seq: seq, Kind: KindChanges}); err != nil {
			t.Fatalf("append seq %d: %v", seq, err)
		}
	}
	// B compacts (snapshot at the head, journal reset via rename) — in
	// exclusive mode A's cached append handle would now point at an
	// unlinked file and its next append would vanish.
	if err := b.WriteSnapshot(Snapshot{SessionID: "s1", Domain: "d", Problem: json.RawMessage(`{}`), Seq: 3}); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if err := a.Append("s1", Record{Seq: 4, Kind: KindSolve}); err != nil {
		t.Fatalf("append after peer compaction: %v", err)
	}
	snap, tail, err := b.Load("s1")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if snap.Seq != 3 || len(tail) != 1 || tail[0].Seq != 4 {
		t.Fatalf("snap.Seq=%d tail=%+v, want snapshot 3 + tail seq 4", snap.Seq, tail)
	}
}

func TestSharedFileAppendRepairsPeerTornTail(t *testing.T) {
	a, b, dir := openSharedPair(t)
	if err := a.WriteSnapshot(Snapshot{SessionID: "s1", Domain: "d", Problem: json.RawMessage(`{}`)}); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if err := a.Append("s1", Record{Seq: 1, Kind: KindChanges}); err != nil {
		t.Fatalf("append: %v", err)
	}
	// A crashed sibling left half an unacknowledged record at the tail.
	j, err := os.OpenFile(filepath.Join(dir, "s1", journalName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	if _, err := j.WriteString("deadbeef {torn"); err != nil {
		t.Fatalf("tear journal: %v", err)
	}
	j.Close()
	// The next shared-mode append repairs the tail before writing, so the
	// new record is recoverable.
	if err := b.Append("s1", Record{Seq: 2, Kind: KindSolve}); err != nil {
		t.Fatalf("append over torn tail: %v", err)
	}
	_, tail, err := a.Load("s1")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(tail) != 2 || tail[1].Seq != 2 {
		t.Fatalf("tail = %+v, want clean seqs 1,2", tail)
	}
}

func TestSharedFileMetaRoundTrip(t *testing.T) {
	a, b, _ := openSharedPair(t)
	meta := json.RawMessage(`{"holder":"n1","expiry":123}`)
	if err := a.WriteSnapshot(Snapshot{SessionID: "_cluster_lease_s1", Meta: meta}); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if err := a.Append("_cluster_lease_s1", Record{Seq: 1, Kind: KindLease, Meta: meta}); err != nil {
		t.Fatalf("append: %v", err)
	}
	snap, tail, err := b.Load("_cluster_lease_s1")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if string(snap.Meta) != string(meta) {
		t.Fatalf("snapshot meta = %s, want %s", snap.Meta, meta)
	}
	if len(tail) != 1 || tail[0].Kind != KindLease || string(tail[0].Meta) != string(meta) {
		t.Fatalf("tail = %+v, want one lease record with meta", tail)
	}
}

// Shared-mode Delete serializes with writers through the same directory
// flock appends take: a delete cannot tear a peer's in-flight append,
// and deleting an already-gone session is a clean no-op, not an error.
func TestSharedFileDeleteLocksAndIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	a, err := NewSharedFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewSharedFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := a.WriteSnapshot(Snapshot{SessionID: "s1"}); err != nil {
		t.Fatal(err)
	}
	// Hold the session dir's lock as a writer would, and prove Delete on
	// the peer handle waits for it instead of racing the removal.
	unlock, err := lockDir(filepath.Join(dir, "s1"))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- b.Delete("s1") }()
	select {
	case err := <-done:
		t.Fatalf("Delete completed under a held writer lock: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	unlock()
	if err := <-done; err != nil {
		t.Fatalf("Delete after lock release: %v", err)
	}
	if _, _, err := a.Load("s1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Load after delete: %v, want ErrNotFound", err)
	}
	// Idempotent: the directory (and its .lock) are gone.
	if err := b.Delete("s1"); err != nil {
		t.Fatalf("repeat delete: %v", err)
	}
}
