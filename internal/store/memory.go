package store

import (
	"fmt"
	"sort"
	"sync"
)

// Memory is the in-memory Store backend: full fidelity (snapshots,
// journal tails, compaction) with no durability. It backs tests and
// ephemeral services, and doubles as the reference implementation the
// file backend is differential-tested against.
//
// Close is deliberately a no-op on the data: a Service closes the store
// it owns on shutdown, and restart tests re-open the same Memory value to
// simulate a surviving disk.
type Memory struct {
	mu       sync.Mutex
	sessions map[string]*memSession
}

type memSession struct {
	snap Snapshot
	tail []Record
}

// NewMemory returns an empty in-memory store.
func NewMemory() *Memory {
	return &Memory{sessions: make(map[string]*memSession)}
}

func (m *Memory) Append(id string, rec Record) error {
	if err := ValidateID(id); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	if !ok {
		return fmt.Errorf("store: append to session %q without a snapshot: %w", id, ErrNotFound)
	}
	if last := s.lastSeq(); rec.Seq <= last {
		return fmt.Errorf("store: session %q journal seq %d not after %d: %w", id, rec.Seq, last, ErrSeqConflict)
	}
	s.tail = append(s.tail, cloneRecord(rec))
	return nil
}

func (s *memSession) lastSeq() uint64 {
	if len(s.tail) > 0 {
		return s.tail[len(s.tail)-1].Seq
	}
	return s.snap.Seq
}

func (m *Memory) WriteSnapshot(snap Snapshot) error {
	if err := ValidateID(snap.SessionID); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[snap.SessionID]
	if !ok {
		s = &memSession{}
		m.sessions[snap.SessionID] = s
	}
	// Compact: keep only records the new snapshot has not folded in.
	var tail []Record
	for _, r := range s.tail {
		if r.Seq > snap.Seq {
			tail = append(tail, r)
		}
	}
	s.snap = cloneSnapshot(snap)
	s.tail = tail
	return nil
}

func (m *Memory) Load(id string) (Snapshot, []Record, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	if !ok {
		return Snapshot{}, nil, fmt.Errorf("store: %q: %w", id, ErrNotFound)
	}
	tail := make([]Record, len(s.tail))
	for i, r := range s.tail {
		tail[i] = cloneRecord(r)
	}
	return cloneSnapshot(s.snap), tail, nil
}

func (m *Memory) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]string, 0, len(m.sessions))
	for id := range m.sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, nil
}

func (m *Memory) Delete(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.sessions, id)
	return nil
}

func (m *Memory) Close() error { return nil }
