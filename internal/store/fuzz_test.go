package store

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func mustFrame(f *testing.F, rec Record) []byte {
	f.Helper()
	line, err := frameRecord(rec)
	if err != nil {
		f.Fatalf("frame seed record: %v", err)
	}
	return line
}

// FuzzJournalParseLine throws arbitrary bytes at the CRC-framed journal
// line decoder. It must never panic, and any line it accepts must
// round-trip through frameRecord with the fields that drive replay
// (Seq, Kind, Batched) intact.
func FuzzJournalParseLine(f *testing.F) {
	good := mustFrame(f, Record{Seq: 1, Kind: KindChanges, Changes: []json.RawMessage{json.RawMessage(`{"kind":"add-clause","lits":[1,2]}`)}})
	solve := mustFrame(f, Record{Seq: 2, Kind: KindSolve, Solution: json.RawMessage(`{"assignment":[1,-2]}`), Batched: 1})
	f.Add(good)
	f.Add(solve)
	f.Add(good[:len(good)/2])            // torn mid-payload
	f.Add(append([]byte{}, good[1:]...)) // missing first CRC digit
	f.Add([]byte("deadbeef {}\n"))       // well-formed frame, wrong CRC
	f.Add([]byte("00000000 \n"))         // empty payload
	f.Add([]byte(""))
	f.Add([]byte("\n"))
	f.Fuzz(func(t *testing.T, line []byte) {
		rec, ok := parseLine(line)
		if !ok {
			return
		}
		reframed, err := frameRecord(rec)
		if err != nil {
			t.Fatalf("re-frame accepted record: %v", err)
		}
		back, ok := parseLine(reframed)
		if !ok {
			t.Fatal("re-framed record rejected by parseLine")
		}
		if back.Seq != rec.Seq || back.Kind != rec.Kind || back.Batched != rec.Batched {
			t.Fatalf("record mutated across re-frame: %+v vs %+v", back, rec)
		}
	})
}

// FuzzJournalRecovery plants arbitrary bytes as a session's journal file
// and opens a fresh store over it — the crash-recovery path. Load must
// repair (truncate) whatever it finds rather than fail: recovery never
// errors on a garbage journal, the repaired log accepts the next append,
// and a subsequent reload observes that append.
func FuzzJournalRecovery(f *testing.F) {
	rec1 := mustFrame(f, Record{Seq: 1, Kind: KindChanges, Changes: []json.RawMessage{json.RawMessage(`{"kind":"add-clause","lits":[1,2]}`)}})
	rec2 := mustFrame(f, Record{Seq: 2, Kind: KindSolve, Solution: json.RawMessage(`{}`), Batched: 1})
	both := append(append([]byte{}, rec1...), rec2...)
	f.Add(both)
	f.Add(both[:len(both)-3]) // torn final append
	f.Add(rec2)               // tail ahead of the snapshot seq
	f.Add([]byte("deadbeef {}\njunk\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, journal []byte) {
		dir := t.TempDir()
		const id = "fz"
		seed, err := NewFile(dir)
		if err != nil {
			t.Fatalf("create store: %v", err)
		}
		if err := seed.WriteSnapshot(Snapshot{SessionID: id, Domain: "cnf", Strategy: "batch", Problem: json.RawMessage(`{"vars":2}`)}); err != nil {
			t.Fatalf("seed snapshot: %v", err)
		}
		if err := os.WriteFile(filepath.Join(dir, id, journalName), journal, 0o644); err != nil {
			t.Fatalf("plant journal: %v", err)
		}

		st, err := NewFile(dir) // fresh store = process restart
		if err != nil {
			t.Fatalf("reopen store: %v", err)
		}
		snap, tail, err := st.Load(id)
		if err != nil {
			t.Fatalf("recovery must repair, not fail: %v", err)
		}
		last := snap.Seq
		if len(tail) > 0 {
			last = tail[len(tail)-1].Seq
		}
		if last == math.MaxUint64 {
			return // next seq would overflow; nothing left to append
		}
		next := Record{Seq: last + 1, Kind: KindDiscard}
		if err := st.Append(id, next); err != nil {
			t.Fatalf("append after repair: %v", err)
		}
		_, tail2, err := st.Load(id)
		if err != nil {
			t.Fatalf("reload after append: %v", err)
		}
		if len(tail2) == 0 || tail2[len(tail2)-1].Seq != next.Seq {
			t.Fatalf("appended record lost: tail %+v", tail2)
		}
	})
}
