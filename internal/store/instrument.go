package store

import "time"

// Instrumented wraps a Store and reports each operation's wall-clock
// latency and error to a caller-supplied callback. The callback keeps
// this package free of a dependency on the metrics layer: internal/obs
// owns the histograms, internal/service wires them in via the callback
// when building its store stack.
//
// Every error passes through unchanged, so errors.Is classification
// (ErrSeqConflict, ErrNotFound, IsTransient) behaves exactly as on the
// wrapped store.
type Instrumented struct {
	inner Store
	rec   func(op string, d time.Duration, err error)
}

// NewInstrumented wraps s. A nil rec returns s unwrapped.
func NewInstrumented(s Store, rec func(op string, d time.Duration, err error)) Store {
	if rec == nil {
		return s
	}
	return &Instrumented{inner: s, rec: rec}
}

// Underlying returns the wrapped store.
func (in *Instrumented) Underlying() Store { return in.inner }

func (in *Instrumented) observe(op string, start time.Time, err error) {
	in.rec(op, time.Since(start), err)
}

func (in *Instrumented) Append(id string, rec Record) error {
	start := time.Now()
	err := in.inner.Append(id, rec)
	in.observe("append", start, err)
	return err
}

func (in *Instrumented) WriteSnapshot(snap Snapshot) error {
	start := time.Now()
	err := in.inner.WriteSnapshot(snap)
	in.observe("snapshot", start, err)
	return err
}

func (in *Instrumented) Load(id string) (Snapshot, []Record, error) {
	start := time.Now()
	snap, tail, err := in.inner.Load(id)
	in.observe("load", start, err)
	return snap, tail, err
}

func (in *Instrumented) List() ([]string, error) {
	start := time.Now()
	ids, err := in.inner.List()
	in.observe("list", start, err)
	return ids, err
}

func (in *Instrumented) Delete(id string) error {
	start := time.Now()
	err := in.inner.Delete(id)
	in.observe("delete", start, err)
	return err
}

func (in *Instrumented) Close() error { return in.inner.Close() }

// BackendName names a store's concrete backend for metric labels,
// unwrapping the fault-injection and instrumentation layers.
func BackendName(s Store) string {
	switch t := s.(type) {
	case *Memory:
		return "memory"
	case *File:
		if t.shared {
			return "shared_file"
		}
		return "file"
	case *Faulty:
		return BackendName(t.inner)
	case *Instrumented:
		return BackendName(t.inner)
	case nil:
		return "none"
	default:
		return "custom"
	}
}
