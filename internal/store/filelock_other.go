//go:build !unix

package store

// lockDir on platforms without flock support degrades to a no-op:
// shared-mode stores are serialized within the process only, and
// cross-process writers race (documented on NewSharedFile).
func lockDir(dir string) (func(), error) {
	_ = dir
	return func() {}, nil
}
