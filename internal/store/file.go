package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// File is the durable Store backend: one directory per session under the
// store root, holding
//
//	<root>/<id>/snapshot.json   the latest snapshot (atomically replaced)
//	<root>/<id>/journal.jsonl   the write-ahead journal tail
//
// Journal appends are a single CRC-framed line ("crc32hex payload\n")
// followed by fsync, so an acknowledged record survives a crash. On load
// the journal is scanned and repaired: the first torn (unterminated),
// CRC-corrupt, or out-of-sequence line ends the log — everything from
// that offset on is truncated away, exactly the write-ahead contract (a
// torn tail is an append that was never acknowledged).
//
// Snapshots are written to a temp file, fsync'd, and renamed into place;
// the journal is then compacted to the records the snapshot has not
// folded in (normally none).
type File struct {
	root string
	// shared marks a store opened with NewSharedFile: the directory is
	// concurrently mutated by OTHER processes, so the in-memory sequence
	// cache and append handle cannot be trusted between operations.
	shared bool

	mu       sync.Mutex
	closed   bool
	sessions map[string]*fileSession
}

// fileSession serializes access to one session's files and caches the
// open append handle between writes (exclusive mode only).
type fileSession struct {
	mu      sync.Mutex
	dir     string
	shared  bool
	journal *os.File
	// lastSeq is the highest durable sequence number (snapshot or journal),
	// lazily derived from disk on first use; appends must stay above it.
	// In shared mode it is re-derived from disk under the directory lock
	// on every mutation instead of being cached.
	lastSeq uint64
	seqInit bool
}

// NewFile opens (creating if needed) a file store rooted at dir. The
// store assumes it is the only writer of dir: sequence numbers and append
// handles are cached in memory between operations.
func NewFile(dir string) (*File, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create root: %w", err)
	}
	return &File{root: dir, sessions: make(map[string]*fileSession)}, nil
}

// NewSharedFile opens a file store rooted at dir for MULTI-PROCESS use:
// every ecserve node of a cluster points at the same directory (a local
// path or a shared mount). Correctness over the exclusive mode costs a
// little speed:
//
//   - each mutation takes an advisory flock on <root>/<id>/.lock and
//     re-derives the durable high-water sequence from disk, so the CAS
//     append contract (ErrSeqConflict for stale sequence numbers) holds
//     across processes — the property cluster lease fencing rests on;
//   - append handles are not cached, so another process compacting the
//     journal (rename) cannot orphan a cached file handle;
//   - a torn tail left by a crashed sibling process is repaired before
//     the next append, not just on Load.
//
// On platforms without flock support (non-unix builds) locking degrades
// to in-process serialization only.
func NewSharedFile(dir string) (*File, error) {
	f, err := NewFile(dir)
	if err != nil {
		return nil, err
	}
	f.shared = true
	return f, nil
}

// Shared reports whether the store runs in multi-process shared mode.
func (f *File) Shared() bool { return f.shared }

// Dir returns the store root directory.
func (f *File) Dir() string { return f.root }

func (f *File) session(id string, create bool) (*fileSession, error) {
	if err := ValidateID(id); err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, fmt.Errorf("store: closed")
	}
	if s, ok := f.sessions[id]; ok {
		return s, nil
	}
	dir := filepath.Join(f.root, id)
	if !create {
		if _, err := os.Stat(filepath.Join(dir, snapshotName)); err != nil {
			return nil, fmt.Errorf("store: %q: %w", id, ErrNotFound)
		}
	}
	s := &fileSession{dir: dir, shared: f.shared}
	f.sessions[id] = s
	return s, nil
}

const (
	snapshotName = "snapshot.json"
	journalName  = "journal.jsonl"
	lockName     = ".lock"
)

func (f *File) Append(id string, rec Record) error {
	s, err := f.session(id, false)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.shared {
		unlock, err := lockDir(s.dir)
		if err != nil {
			return markTransient(fmt.Errorf("store: lock session dir: %w", err))
		}
		defer unlock()
		// Another process may have appended, compacted, or torn the
		// journal since we last looked: rederive the high-water mark from
		// disk (repairing any torn tail) and drop the cached handle when
		// done so a sibling's compaction rename cannot orphan it.
		if err := s.refreshSeqLocked(); err != nil {
			return err
		}
		defer func() {
			if s.journal != nil {
				s.journal.Close()
				s.journal = nil
			}
		}()
	} else if !s.seqInit {
		if err := s.initSeqLocked(); err != nil {
			return err
		}
	}
	if rec.Seq <= s.lastSeq {
		return fmt.Errorf("store: %q journal seq %d not after %d: %w", id, rec.Seq, s.lastSeq, ErrSeqConflict)
	}
	if s.journal == nil {
		j, err := os.OpenFile(filepath.Join(s.dir, journalName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return markTransient(fmt.Errorf("store: open journal: %w", err))
		}
		s.journal = j
	}
	line, err := frameRecord(rec)
	if err != nil {
		return err
	}
	if _, err := s.journal.Write(line); err != nil {
		return markTransient(fmt.Errorf("store: journal append: %w", err))
	}
	if err := s.journal.Sync(); err != nil {
		return markTransient(fmt.Errorf("store: journal fsync: %w", err))
	}
	s.lastSeq = rec.Seq
	return nil
}

// initSeqLocked derives the durable high-water sequence from the
// snapshot and a clean-prefix scan of the journal.
func (s *fileSession) initSeqLocked() error {
	last := uint64(0)
	if raw, err := os.ReadFile(filepath.Join(s.dir, snapshotName)); err == nil {
		var snap Snapshot
		if err := json.Unmarshal(raw, &snap); err == nil {
			last = snap.Seq
		}
	}
	tail, _, err := s.readJournalLocked(last)
	if err != nil {
		return err
	}
	if len(tail) > 0 && tail[len(tail)-1].Seq > last {
		last = tail[len(tail)-1].Seq
	}
	s.lastSeq, s.seqInit = last, true
	return nil
}

// refreshSeqLocked is the shared-mode variant of initSeqLocked: it always
// rereads the snapshot and journal from disk (the caller holds the
// directory flock) and repairs a torn tail in place, so the subsequent
// append lands after the last acknowledged record of ANY process.
func (s *fileSession) refreshSeqLocked() error {
	last := uint64(0)
	if raw, err := os.ReadFile(filepath.Join(s.dir, snapshotName)); err == nil {
		var snap Snapshot
		if err := json.Unmarshal(raw, &snap); err == nil {
			last = snap.Seq
		}
	}
	tail, truncateAt, err := s.readJournalLocked(last)
	if err != nil {
		return err
	}
	if truncateAt >= 0 {
		if err := s.truncateJournalLocked(truncateAt); err != nil {
			return err
		}
	}
	if len(tail) > 0 && tail[len(tail)-1].Seq > last {
		last = tail[len(tail)-1].Seq
	}
	s.lastSeq, s.seqInit = last, true
	return nil
}

// frameRecord renders one journal line: 8 hex CRC32 digits, a space, the
// JSON payload, a newline.
func frameRecord(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("store: encode record: %w", err)
	}
	line := make([]byte, 0, len(payload)+10)
	line = fmt.Appendf(line, "%08x ", crc32.ChecksumIEEE(payload))
	line = append(line, payload...)
	return append(line, '\n'), nil
}

func (f *File) WriteSnapshot(snap Snapshot) error {
	s, err := f.session(snap.SessionID, true)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return markTransient(fmt.Errorf("store: create session dir: %w", err))
	}
	if s.shared {
		unlock, err := lockDir(s.dir)
		if err != nil {
			return markTransient(fmt.Errorf("store: lock session dir: %w", err))
		}
		defer unlock()
	}
	// Records the new snapshot has NOT folded in survive compaction (the
	// normal service flow snapshots at the current head, so this is empty).
	tail, _, err := s.readJournalLocked(snap.Seq)
	if err != nil {
		return err
	}
	// Compact marshal keeps the embedded wire-form RawMessages byte-stable
	// across write/load cycles.
	payload, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("store: encode snapshot: %w", err)
	}
	if err := atomicWrite(filepath.Join(s.dir, snapshotName), payload); err != nil {
		return err
	}
	if err := s.resetJournalLocked(tail); err != nil {
		return err
	}
	s.lastSeq, s.seqInit = snap.Seq, true
	if len(tail) > 0 && tail[len(tail)-1].Seq > s.lastSeq {
		s.lastSeq = tail[len(tail)-1].Seq
	}
	return nil
}

// resetJournalLocked rewrites the journal to exactly tail (usually empty)
// through a temp file + rename, and reopens the append handle.
func (s *fileSession) resetJournalLocked(tail []Record) error {
	if s.journal != nil {
		s.journal.Close()
		s.journal = nil
	}
	var buf bytes.Buffer
	for _, rec := range tail {
		line, err := frameRecord(rec)
		if err != nil {
			return err
		}
		buf.Write(line)
	}
	return atomicWrite(filepath.Join(s.dir, journalName), buf.Bytes())
}

// atomicWrite durably replaces path with data: temp file, fsync, rename,
// fsync the parent directory. Its failures are all I/O (transient): the
// target file is never left half-written, so a later retry may succeed.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return markTransient(fmt.Errorf("store: temp file: %w", err))
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return markTransient(fmt.Errorf("store: write %s: %w", path, err))
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return markTransient(fmt.Errorf("store: fsync %s: %w", path, err))
	}
	if err := tmp.Close(); err != nil {
		return markTransient(fmt.Errorf("store: close %s: %w", path, err))
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return markTransient(fmt.Errorf("store: rename into %s: %w", path, err))
	}
	return syncDir(dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil // best effort: some platforms cannot open directories
	}
	defer d.Close()
	d.Sync() //nolint:errcheck // fsync on directories is best effort
	return nil
}

func (f *File) Load(id string) (Snapshot, []Record, error) {
	s, err := f.session(id, false)
	if err != nil {
		return Snapshot{}, nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.shared {
		unlock, lockErr := lockDir(s.dir)
		if lockErr != nil {
			if errors.Is(lockErr, fs.ErrNotExist) {
				// The session directory itself is gone (deleted by a peer, or
				// never created): that is a miss, not an I/O fault.
				return Snapshot{}, nil, fmt.Errorf("store: %q: %w", id, ErrNotFound)
			}
			return Snapshot{}, nil, markTransient(fmt.Errorf("store: lock session dir: %w", lockErr))
		}
		defer unlock()
	}
	raw, err := os.ReadFile(filepath.Join(s.dir, snapshotName))
	if err != nil {
		if os.IsNotExist(err) {
			return Snapshot{}, nil, fmt.Errorf("store: %q: %w", id, ErrNotFound)
		}
		return Snapshot{}, nil, markTransient(fmt.Errorf("store: read snapshot: %w", err))
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return Snapshot{}, nil, fmt.Errorf("store: corrupt snapshot for %q: %w", id, err)
	}
	tail, truncateAt, err := s.readJournalLocked(snap.Seq)
	if err != nil {
		return Snapshot{}, nil, err
	}
	if truncateAt >= 0 {
		// Torn or corrupt tail: repair the log so the next append starts
		// from the last acknowledged record.
		if err := s.truncateJournalLocked(truncateAt); err != nil {
			return Snapshot{}, nil, err
		}
	}
	s.lastSeq, s.seqInit = snap.Seq, true
	if len(tail) > 0 && tail[len(tail)-1].Seq > s.lastSeq {
		s.lastSeq = tail[len(tail)-1].Seq
	}
	return snap, tail, nil
}

// readJournalLocked scans the journal and returns the valid records with
// Seq > afterSeq. truncateAt is the byte offset of the first invalid line
// (-1 when the whole file is clean); callers repair by truncating there.
func (s *fileSession) readJournalLocked(afterSeq uint64) (tail []Record, truncateAt int64, err error) {
	path := filepath.Join(s.dir, journalName)
	file, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, -1, nil
		}
		return nil, -1, fmt.Errorf("store: open journal: %w", err)
	}
	defer file.Close()
	var offset int64
	truncateAt = -1
	lastSeq := uint64(0)
	r := bufio.NewReader(file)
	for {
		line, err := r.ReadBytes('\n')
		if errors.Is(err, io.EOF) {
			if len(line) > 0 {
				truncateAt = offset // torn final append (no newline)
			}
			break
		}
		if err != nil {
			return nil, -1, fmt.Errorf("store: read journal: %w", err)
		}
		rec, ok := parseLine(line)
		if !ok || rec.Seq <= lastSeq {
			truncateAt = offset // CRC mismatch, bad frame, or stale seq
			break
		}
		lastSeq = rec.Seq
		if rec.Seq > afterSeq {
			tail = append(tail, rec)
		}
		offset += int64(len(line))
	}
	return tail, truncateAt, nil
}

// parseLine validates one CRC-framed journal line.
func parseLine(line []byte) (Record, bool) {
	line = bytes.TrimSuffix(line, []byte("\n"))
	if len(line) < 10 || line[8] != ' ' {
		return Record{}, false
	}
	var want uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &want); err != nil {
		return Record{}, false
	}
	payload := line[9:]
	if crc32.ChecksumIEEE(payload) != want {
		return Record{}, false
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return Record{}, false
	}
	return rec, true
}

func (s *fileSession) truncateJournalLocked(size int64) error {
	if s.journal != nil {
		s.journal.Close()
		s.journal = nil
	}
	if err := os.Truncate(filepath.Join(s.dir, journalName), size); err != nil {
		return fmt.Errorf("store: repair journal: %w", err)
	}
	return nil
}

func (f *File) List() ([]string, error) {
	entries, err := os.ReadDir(f.root)
	if err != nil {
		return nil, fmt.Errorf("store: list: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if _, err := os.Stat(filepath.Join(f.root, e.Name(), snapshotName)); err == nil {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}

func (f *File) Delete(id string) error {
	if err := ValidateID(id); err != nil {
		return err
	}
	f.mu.Lock()
	s := f.sessions[id]
	delete(f.sessions, id)
	f.mu.Unlock()
	if s != nil {
		s.mu.Lock()
		if s.journal != nil {
			s.journal.Close()
			s.journal = nil
		}
		s.mu.Unlock()
	}
	dir := filepath.Join(f.root, id)
	if f.shared {
		// Serialize against a concurrent writer on another node: an append
		// or snapshot mid-flight while we RemoveAll would leave a half
		// directory that a later rehydrate resurrects. Holding the same
		// flock writers take makes the removal atomic with respect to them.
		unlock, err := lockDir(dir)
		switch {
		case err == nil:
			defer unlock()
		case errors.Is(err, fs.ErrNotExist):
			// Directory already gone — deletion is idempotent.
			return nil
		default:
			return markTransient(fmt.Errorf("store: lock session dir for delete: %w", err))
		}
	}
	if err := os.RemoveAll(dir); err != nil {
		return fmt.Errorf("store: delete %q: %w", id, err)
	}
	return syncDir(f.root)
}

func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	for _, s := range f.sessions {
		s.mu.Lock()
		if s.journal != nil {
			s.journal.Close()
			s.journal = nil
		}
		s.mu.Unlock()
	}
	f.sessions = map[string]*fileSession{}
	return nil
}
