//go:build unix

package store

import (
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes an exclusive advisory flock on <dir>/.lock, serializing
// shared-mode mutations of one session directory across processes. The
// returned func releases the lock. flock (not fcntl) is deliberate: the
// lock is held for the duration of one open file handle, so it cannot be
// lost to the classic close-releases-fcntl-locks footgun when the store
// opens and closes other files in the same directory mid-critical-section.
func lockDir(dir string) (func(), error) {
	f, err := os.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN) //nolint:errcheck // released on close anyway
		f.Close()
	}, nil
}
