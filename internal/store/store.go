// Package store is the durable session store behind internal/service: a
// write-ahead change journal plus periodic snapshots, so an engineering-
// change session — the long-lived artifact the paper's whole flow exists
// to preserve — survives process restarts, crashes, and memory-pressure
// eviction.
//
// The model is a classic WAL pair per session:
//
//   - a Snapshot captures the full session state (problem, solution,
//     pending changes, all in the domain's JSON wire form) at a journal
//     sequence point;
//   - Records appended after the snapshot's sequence number carry the
//     incremental history: queued change batches, committed solves, and
//     batch discards.
//
// Replaying the journal tail over the snapshot reconstructs the exact
// session state (internal/service/persist.go does the replay through the
// domain codecs). Two backends implement the Store interface: Memory (for
// tests and ephemeral services) and File (one directory per session with
// fsync'd, CRC-checked journal appends and torn-tail truncation on
// recovery).
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
)

// Record kinds.
const (
	// KindChanges journals one queued change batch (wire-form changes).
	KindChanges = "changes"
	// KindSolve journals one committed solve: all pending changes were
	// folded into the problem and Solution became current.
	KindSolve = "solve"
	// KindDiscard journals a failed solve: the pending batch was dropped
	// and the session kept its previous problem and solution.
	KindDiscard = "discard"
	// KindLease journals a cluster lease transition (acquire, renew,
	// release) on a `_cluster_lease_*` pseudo-session. The CAS append
	// contract (Seq must be exactly one past the durable high-water mark)
	// is what makes lease acquisition atomic across nodes.
	KindLease = "lease"
	// KindHeartbeat journals one node liveness beat on a
	// `_cluster_node_*` pseudo-session; the payload carries the node's
	// serving address and the beat's expiry.
	KindHeartbeat = "heartbeat"
)

// Record is one write-ahead journal entry of a session.
type Record struct {
	// Seq is the session-scoped sequence number (strictly increasing,
	// starting at 1 after a fresh snapshot's Seq 0).
	Seq uint64 `json:"seq"`
	// Kind is KindChanges, KindSolve, or KindDiscard.
	Kind string `json:"kind"`
	// Changes carries the wire form of the queued batch (KindChanges).
	Changes []json.RawMessage `json:"changes,omitempty"`
	// Solution carries the wire form of the committed solution (KindSolve).
	Solution json.RawMessage `json:"solution,omitempty"`
	// Batched is the number of pending changes folded into the solve
	// (KindSolve; used as a replay cross-check).
	Batched int `json:"batched,omitempty"`
	// BatchID is the client-supplied idempotency key of a queued change
	// batch (KindChanges only, optional). The serving layer dedupes a
	// replayed batch against the journal by this key, so a client retry
	// after a lost response cannot apply the same batch twice.
	BatchID string `json:"batch_id,omitempty"`
	// Meta carries the payload of cluster records (KindLease,
	// KindHeartbeat): an opaque JSON document owned by internal/cluster.
	Meta json.RawMessage `json:"meta,omitempty"`
}

// Snapshot is the full persisted state of one session at a sequence
// point: journal records with Seq ≤ Snapshot.Seq are folded in, records
// after it form the replay tail.
type Snapshot struct {
	SessionID string `json:"session_id"`
	// Domain names the registered domain adapter that owns the wire forms.
	Domain string `json:"domain"`
	// Strategy is the session's re-solve strategy name.
	Strategy string `json:"strategy"`
	// Problem/Solution/Pending are the domain wire forms (Solution empty
	// before the first solve; Pending carries queued-but-unsolved changes).
	Problem  json.RawMessage   `json:"problem"`
	Solution json.RawMessage   `json:"solution,omitempty"`
	Pending  []json.RawMessage `json:"pending,omitempty"`
	// Seq is the last journal sequence number folded into this snapshot.
	Seq uint64 `json:"seq"`
	// ChangesQueued/Batches/Solves carry the session counters across
	// restarts.
	ChangesQueued int64 `json:"changes_queued,omitempty"`
	Batches       int64 `json:"batches,omitempty"`
	Solves        int64 `json:"solves,omitempty"`
	// RecentBatches carries the most recent change-batch idempotency keys
	// (oldest first), so batch dedup survives compaction, eviction, and
	// failover rehydration — a retry that lands on the successor node
	// still dedupes against the batch the dead owner committed.
	RecentBatches []string `json:"recent_batches,omitempty"`
	// Meta carries the compacted state of cluster pseudo-sessions
	// (lease holder, node heartbeat, fleet cache entries).
	Meta json.RawMessage `json:"meta,omitempty"`
}

// ErrNotFound reports a session id with no persisted state.
var ErrNotFound = errors.New("store: session not found")

// ErrSeqConflict reports a journal append whose sequence number is not
// past the store's durable high-water mark. On a FIRST attempt this is a
// caller bug; on a RETRY after a failed append it means the earlier
// attempt actually landed (a failed-fsync acknowledgement was lost), so
// the retrying caller treats it as success — the record is durable.
var ErrSeqConflict = errors.New("store: journal sequence conflict")

// transientErr marks a store error as retryable. It satisfies the
// Transient() marker shared with injected faults (internal/fault.Error).
type transientErr struct{ err error }

func (e *transientErr) Error() string   { return e.err.Error() }
func (e *transientErr) Unwrap() error   { return e.err }
func (e *transientErr) Transient() bool { return true }

// markTransient wraps an error as retryable (nil stays nil).
func markTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientErr{err: err}
}

// IsTransient classifies a store error: true means a retry (or a later
// re-probe) may succeed — I/O trouble, injected faults, disk-full — while
// false means retrying is pointless (corruption, validation errors, a
// closed store, sequence conflicts). The serving layer's retry/backoff
// and quarantine paths branch on it.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	if errors.As(err, &t) {
		return t.Transient()
	}
	return false
}

// Store persists sessions as snapshot + journal pairs. Implementations
// must be safe for concurrent use; appends of ONE session are expected to
// be serialized by the caller (the service holds the session lock).
type Store interface {
	// Append durably adds one journal record for session id. The session
	// must have a snapshot (WriteSnapshot creates it at session birth).
	Append(id string, rec Record) error
	// WriteSnapshot atomically replaces the session's snapshot and
	// compacts the journal: records with Seq ≤ snap.Seq are dropped.
	WriteSnapshot(snap Snapshot) error
	// Load returns the snapshot and the journal tail (records with
	// Seq > snapshot.Seq, in append order). It returns ErrNotFound for
	// unknown ids.
	Load(id string) (Snapshot, []Record, error)
	// List returns the ids of all persisted sessions, sorted.
	List() ([]string, error)
	// Delete removes all persisted state of a session (idempotent).
	Delete(id string) error
	// Close releases backend resources. A closed store rejects writes.
	Close() error
}

// ValidateID rejects session ids that cannot be safely used as storage
// keys (path elements in the file backend).
func ValidateID(id string) error {
	if id == "" || id == "." || id == ".." || strings.ContainsAny(id, "/\\\x00") {
		return fmt.Errorf("store: invalid session id %q", id)
	}
	return nil
}

// cloneRaw deep-copies a raw message so callers may mutate returned
// snapshots and records freely.
func cloneRaw(m json.RawMessage) json.RawMessage {
	if m == nil {
		return nil
	}
	return append(json.RawMessage(nil), m...)
}

func cloneRaws(ms []json.RawMessage) []json.RawMessage {
	if ms == nil {
		return nil
	}
	out := make([]json.RawMessage, len(ms))
	for i, m := range ms {
		out[i] = cloneRaw(m)
	}
	return out
}

func cloneRecord(r Record) Record {
	r.Changes = cloneRaws(r.Changes)
	r.Solution = cloneRaw(r.Solution)
	r.Meta = cloneRaw(r.Meta)
	return r
}

func cloneSnapshot(s Snapshot) Snapshot {
	s.Problem = cloneRaw(s.Problem)
	s.Solution = cloneRaw(s.Solution)
	s.Pending = cloneRaws(s.Pending)
	s.Meta = cloneRaw(s.Meta)
	if s.RecentBatches != nil {
		s.RecentBatches = append([]string(nil), s.RecentBatches...)
	}
	return s
}
