// Package gen generates the synthetic benchmark families that stand in for
// the DIMACS instances of the paper's §8 evaluation (the original files are
// not redistributable and unavailable offline; see DESIGN.md §4). Every
// generator plants a satisfying assignment — and, for clauses of length ≥ 2,
// a 2-satisfying one — so that the constraint-mode enabling experiments of
// Table 1 are feasible by construction, exactly as the original satisfiable
// benchmarks admitted them. All generators are deterministic per seed.
package gen

import (
	"fmt"
	"math/rand"

	"ilpec/internal/cnf"
)

// Family enumerates the instance families of the paper's tables.
type Family int

const (
	// FamilyPar mirrors the par* parity-learning instances: length-3
	// clauses chained along consecutive variable windows.
	FamilyPar Family = iota
	// FamilyII mirrors the ii* inductive-inference instances: block-
	// structured clauses of mixed width 2–5.
	FamilyII
	// FamilyJNH mirrors the jnh* random instances: wide clauses (length
	// 3–7) over a small variable pool.
	FamilyJNH
	// FamilyRandom3 mirrors f600: uniform 3-SAT at clause/variable ratio
	// 4.25.
	FamilyRandom3
	// FamilyColoring mirrors g250.*: CNF encodings of k-colorability of a
	// planted-colorable random graph.
	FamilyColoring
)

// String renders the family.
func (f Family) String() string {
	switch f {
	case FamilyPar:
		return "par"
	case FamilyII:
		return "ii"
	case FamilyJNH:
		return "jnh"
	case FamilyRandom3:
		return "rand3"
	default:
		return "gcol"
	}
}

// Spec identifies one benchmark instance: the paper's name, its family,
// and its exact dimensions.
type Spec struct {
	Name    string
	Family  Family
	Vars    int
	Clauses int
	// K is the color count for FamilyColoring (vars = vertices · K).
	K    int
	Seed int64
	// Large marks the rows the paper solves with the heuristic ILP solver.
	Large bool
}

// Small lists the upper block of Tables 1–3 (exactly solved in the paper).
func Small() []Spec {
	return []Spec{
		{Name: "par8-1-c", Family: FamilyPar, Vars: 64, Clauses: 254, Seed: 81},
		{Name: "ii8a1", Family: FamilyII, Vars: 66, Clauses: 186, Seed: 8101},
		{Name: "par8-3-c", Family: FamilyPar, Vars: 75, Clauses: 298, Seed: 83},
		{Name: "jnh201", Family: FamilyJNH, Vars: 100, Clauses: 800, Seed: 201},
		{Name: "jnh1", Family: FamilyJNH, Vars: 100, Clauses: 850, Seed: 1},
		{Name: "ii8a2", Family: FamilyII, Vars: 180, Clauses: 800, Seed: 8201},
		{Name: "ii8b2", Family: FamilyII, Vars: 576, Clauses: 4088, Seed: 8202},
		{Name: "f600", Family: FamilyRandom3, Vars: 600, Clauses: 2550, Seed: 600},
	}
}

// Large lists the lower block (heuristically solved in the paper).
func Large() []Spec {
	return []Spec{
		{Name: "par32-5-c", Family: FamilyPar, Vars: 1339, Clauses: 5350, Seed: 325, Large: true},
		{Name: "ii16a1", Family: FamilyII, Vars: 1650, Clauses: 19368, Seed: 1601, Large: true},
		{Name: "par32-5", Family: FamilyPar, Vars: 3176, Clauses: 10325, Seed: 3255, Large: true},
		{Name: "g250.15", Family: FamilyColoring, Vars: 3750, Clauses: 233965, K: 15, Seed: 25015, Large: true},
		{Name: "g250.29", Family: FamilyColoring, Vars: 7250, Clauses: 454622, K: 29, Seed: 25029, Large: true},
	}
}

// All returns Small followed by Large.
func All() []Spec { return append(Small(), Large()...) }

// ByName looks a spec up by its paper name.
func ByName(name string) (Spec, bool) {
	for _, s := range All() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Scaled returns a copy of the spec shrunk by the given factor (≥ 1 keeps
// the original). It preserves the family's clause/variable ratio and keeps
// the name with a "@scale" suffix. Used by the CI experiment profile.
func Scaled(s Spec, factor float64) Spec {
	if factor >= 1 || factor <= 0 {
		return s
	}
	out := s
	out.Name = fmt.Sprintf("%s@%.2f", s.Name, factor)
	// Below ~40 variables the density of the jnh/f families degenerates
	// (every variable touches most clauses and fast-EC locality vanishes),
	// so scaling clamps there.
	minV := 40
	out.Vars = int(float64(s.Vars) * factor)
	if out.Vars < minV {
		out.Vars = minV
	}
	out.Clauses = int(float64(s.Clauses) * float64(out.Vars) / float64(s.Vars))
	if out.Clauses < out.Vars {
		out.Clauses = out.Vars
	}
	if s.Family == FamilyColoring {
		// Keep a sensible palette for the shrunken vertex count.
		vertices := out.Vars / s.K
		if vertices < s.K+1 {
			out.K = vertices - 1
			if out.K < 2 {
				out.K = 2
			}
			out.Vars = vertices * out.K
		}
	}
	return out
}

// Generate builds the instance together with its planted assignment. The
// formula has exactly s.Vars variables and s.Clauses clauses (coloring
// instances approximate the clause count via the edge budget; the actual
// count is within one edge-block of the request).
func (s Spec) Generate() (*cnf.Formula, cnf.Assignment) {
	rng := rand.New(rand.NewSource(s.Seed))
	switch s.Family {
	case FamilyPar:
		return genPar(rng, s.Vars, s.Clauses)
	case FamilyII:
		return genII(rng, s.Vars, s.Clauses)
	case FamilyJNH:
		return genJNH(rng, s.Vars, s.Clauses)
	case FamilyRandom3:
		return genRandom3(rng, s.Vars, s.Clauses)
	case FamilyColoring:
		return genColoring(rng, s)
	default:
		panic("gen: unknown family")
	}
}

// randomPlant draws a uniform total assignment.
func randomPlant(rng *rand.Rand, n int) cnf.Assignment {
	a := cnf.NewAssignment(n)
	for v := 1; v <= n; v++ {
		if rng.Intn(2) == 0 {
			a.Set(v, cnf.True)
		} else {
			a.Set(v, cnf.False)
		}
	}
	return a
}

// plantLit returns the literal of v that is true under plant.
func plantLit(plant cnf.Assignment, v int) cnf.Lit {
	if plant.Get(v) == cnf.False {
		return cnf.Lit(-v)
	}
	return cnf.Lit(v)
}

// plantedClause builds a clause over the given variables with at least two
// literals agreeing with plant (all literals agree when the clause has
// fewer than two variables); remaining polarities are random.
func plantedClause(rng *rand.Rand, plant cnf.Assignment, vars []int) cnf.Clause {
	cl := make(cnf.Clause, len(vars))
	agree := 2
	if len(vars) < 2 {
		agree = len(vars)
	}
	order := rng.Perm(len(vars))
	for i, oi := range order {
		v := vars[oi]
		if i < agree {
			cl[oi] = plantLit(plant, v)
			continue
		}
		if rng.Intn(2) == 0 {
			cl[oi] = plantLit(plant, v)
		} else {
			cl[oi] = plantLit(plant, v).Neg()
		}
	}
	return cl
}

// distinctVars samples k distinct variables from 1..n.
func distinctVars(rng *rand.Rand, n, k int) []int {
	if k > n {
		k = n
	}
	seen := make(map[int]bool, k)
	out := make([]int, 0, k)
	for len(out) < k {
		v := 1 + rng.Intn(n)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// genPar chains length-3 clauses along consecutive variable windows,
// mimicking the chained structure of parity instances.
func genPar(rng *rand.Rand, nVars, nClauses int) (*cnf.Formula, cnf.Assignment) {
	plant := randomPlant(rng, nVars)
	f := cnf.New(nVars)
	for i := 0; i < nClauses; i++ {
		base := 1 + i%(max(1, nVars-2))
		vars := []int{base, base + 1, base + 2}
		if vars[2] > nVars {
			vars = distinctVars(rng, nVars, 3)
		}
		f.AddClause(plantedClause(rng, plant, vars))
	}
	return f, plant
}

// genII emits block-structured clauses of width 2–5: variables are split
// into blocks and clauses mostly connect a block to the next one.
func genII(rng *rand.Rand, nVars, nClauses int) (*cnf.Formula, cnf.Assignment) {
	plant := randomPlant(rng, nVars)
	f := cnf.New(nVars)
	blockSize := max(4, nVars/12)
	nBlocks := max(1, nVars/blockSize)
	for i := 0; i < nClauses; i++ {
		width := 2 + rng.Intn(4)
		b := rng.Intn(nBlocks)
		var pool []int
		lo := b*blockSize + 1
		hi := min(nVars, lo+2*blockSize-1)
		for v := lo; v <= hi; v++ {
			pool = append(pool, v)
		}
		if len(pool) < width {
			pool = nil
			for v := 1; v <= nVars; v++ {
				pool = append(pool, v)
			}
		}
		idx := rng.Perm(len(pool))[:width]
		vars := make([]int, width)
		for j, pi := range idx {
			vars[j] = pool[pi]
		}
		f.AddClause(plantedClause(rng, plant, vars))
	}
	return f, plant
}

// genJNH draws wide clauses (3–7 literals) uniformly over the pool.
func genJNH(rng *rand.Rand, nVars, nClauses int) (*cnf.Formula, cnf.Assignment) {
	plant := randomPlant(rng, nVars)
	f := cnf.New(nVars)
	for i := 0; i < nClauses; i++ {
		width := 3 + rng.Intn(5)
		f.AddClause(plantedClause(rng, plant, distinctVars(rng, nVars, width)))
	}
	return f, plant
}

// genRandom3 draws uniform 3-SAT clauses.
func genRandom3(rng *rand.Rand, nVars, nClauses int) (*cnf.Formula, cnf.Assignment) {
	plant := randomPlant(rng, nVars)
	f := cnf.New(nVars)
	for i := 0; i < nClauses; i++ {
		f.AddClause(plantedClause(rng, plant, distinctVars(rng, nVars, 3)))
	}
	return f, plant
}

// genColoring encodes k-colorability of a planted-colorable graph:
// variables x_{v,c} (numbered (v-1)·k + c), one at-least-one clause per
// vertex, and one conflict clause per edge per color. The edge count is
// derived from the requested clause budget.
func genColoring(rng *rand.Rand, s Spec) (*cnf.Formula, cnf.Assignment) {
	k := s.K
	if k < 2 {
		panic("gen: coloring spec needs K ≥ 2")
	}
	vertices := s.Vars / k
	edgeBudget := (s.Clauses - vertices) / k
	if edgeBudget < 0 {
		edgeBudget = 0
	}
	colors := make([]int, vertices+1)
	classSize := make([]int, k+1)
	for v := 1; v <= vertices; v++ {
		colors[v] = 1 + rng.Intn(k)
		classSize[colors[v]]++
	}
	// The budget cannot exceed the number of cross-class pairs.
	samePairs := 0
	for c := 1; c <= k; c++ {
		samePairs += classSize[c] * (classSize[c] - 1) / 2
	}
	maxCross := vertices*(vertices-1)/2 - samePairs
	if edgeBudget > maxCross {
		edgeBudget = maxCross
	}
	varOf := func(v, c int) int { return (v-1)*k + c }

	f := cnf.New(vertices * k)
	plant := cnf.NewAssignment(vertices * k)
	for v := 1; v <= vertices; v++ {
		cl := make(cnf.Clause, k)
		for c := 1; c <= k; c++ {
			cl[c-1] = cnf.Lit(varOf(v, c))
			if c == colors[v] {
				plant.Set(varOf(v, c), cnf.True)
			} else {
				plant.Set(varOf(v, c), cnf.False)
			}
		}
		f.AddClause(cl)
	}
	addEdge := func(u, v int) {
		for c := 1; c <= k; c++ {
			f.AddClause(cnf.Clause{cnf.Lit(-varOf(u, c)), cnf.Lit(-varOf(v, c))})
		}
	}
	if maxCross > 0 && float64(edgeBudget) > 0.5*float64(maxCross) {
		// Dense request: enumerate the cross-class pairs and take a random
		// prefix (rejection sampling would crawl near saturation).
		var pairs [][2]int
		for u := 1; u <= vertices; u++ {
			for v := u + 1; v <= vertices; v++ {
				if colors[u] != colors[v] {
					pairs = append(pairs, [2]int{u, v})
				}
			}
		}
		rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })
		for _, pr := range pairs[:edgeBudget] {
			addEdge(pr[0], pr[1])
		}
		return f, plant
	}
	seen := map[[2]int]bool{}
	for e := 0; e < edgeBudget; {
		u := 1 + rng.Intn(vertices)
		v := 1 + rng.Intn(vertices)
		if u == v || colors[u] == colors[v] {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		addEdge(u, v)
		e++
	}
	return f, plant
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
