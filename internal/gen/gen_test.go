package gen

import (
	"testing"

	"ilpec/internal/cnf"
	"ilpec/internal/core"
)

func TestRegistryShapes(t *testing.T) {
	// Every registry entry must carry the paper's exact dimensions.
	want := map[string][2]int{
		"par8-1-c": {64, 254}, "ii8a1": {66, 186}, "par8-3-c": {75, 298},
		"jnh201": {100, 800}, "jnh1": {100, 850}, "ii8a2": {180, 800},
		"ii8b2": {576, 4088}, "f600": {600, 2550},
		"par32-5-c": {1339, 5350}, "ii16a1": {1650, 19368},
		"par32-5": {3176, 10325}, "g250.15": {3750, 233965}, "g250.29": {7250, 454622},
	}
	if len(All()) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(All()), len(want))
	}
	for _, s := range All() {
		w, ok := want[s.Name]
		if !ok {
			t.Fatalf("unexpected spec %q", s.Name)
		}
		if s.Vars != w[0] || s.Clauses != w[1] {
			t.Fatalf("%s: %d/%d, want %d/%d", s.Name, s.Vars, s.Clauses, w[0], w[1])
		}
	}
	if _, ok := ByName("jnh1"); !ok {
		t.Fatal("ByName miss")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName false positive")
	}
}

func TestSmallFamiliesGenerateExactlyAndPlanted(t *testing.T) {
	for _, s := range Small() {
		f, plant := s.Generate()
		if f.NumVars != s.Vars {
			t.Fatalf("%s: vars %d want %d", s.Name, f.NumVars, s.Vars)
		}
		if f.NumClauses() != s.Clauses {
			t.Fatalf("%s: clauses %d want %d", s.Name, f.NumClauses(), s.Clauses)
		}
		if !plant.Satisfies(f) {
			t.Fatalf("%s: plant does not satisfy", s.Name)
		}
		// Plant must 2-satisfy every clause of length ≥ 2 (Table-1 SC
		// feasibility guarantee).
		for ci, cl := range f.Clauses {
			target := 2
			if len(cl) < 2 {
				target = len(cl)
			}
			if plant.SatLevel(cl) < target {
				t.Fatalf("%s: clause %d only %d-satisfied", s.Name, ci, plant.SatLevel(cl))
			}
		}
		if err := f.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s := Small()[0]
	f1, _ := s.Generate()
	f2, _ := s.Generate()
	if !f1.Equal(f2) {
		t.Fatal("generation not deterministic")
	}
}

func TestColoringFamilyGenerates(t *testing.T) {
	// A scaled-down coloring spec keeps the structure checkable.
	s := Spec{Name: "g-test", Family: FamilyColoring, Vars: 60, Clauses: 500, K: 4, Seed: 7}
	f, plant := s.Generate()
	if f.NumVars != 60 {
		t.Fatalf("vars = %d", f.NumVars)
	}
	if !plant.Satisfies(f) {
		t.Fatal("planted coloring does not satisfy the CNF")
	}
	// 15 vertices: first 15 clauses are at-least-one of width K.
	for ci := 0; ci < 15; ci++ {
		if len(f.Clauses[ci]) != 4 {
			t.Fatalf("ALO clause %d width %d", ci, len(f.Clauses[ci]))
		}
	}
	// Remaining clauses are binary conflicts.
	for ci := 15; ci < f.NumClauses(); ci++ {
		if len(f.Clauses[ci]) != 2 {
			t.Fatalf("conflict clause %d width %d", ci, len(f.Clauses[ci]))
		}
	}
}

func TestLargeFamiliesGenerate(t *testing.T) {
	if testing.Short() {
		t.Skip("large generation in -short mode")
	}
	for _, s := range Large() {
		f, plant := s.Generate()
		if f.NumVars != s.Vars {
			t.Fatalf("%s: vars %d want %d", s.Name, f.NumVars, s.Vars)
		}
		if s.Family != FamilyColoring && f.NumClauses() != s.Clauses {
			t.Fatalf("%s: clauses %d want %d", s.Name, f.NumClauses(), s.Clauses)
		}
		if s.Family == FamilyColoring {
			// Edge-block quantization: within K clauses of the request.
			diff := s.Clauses - f.NumClauses()
			if diff < 0 {
				diff = -diff
			}
			if diff > s.K {
				t.Fatalf("%s: clauses %d want %d±%d", s.Name, f.NumClauses(), s.Clauses, s.K)
			}
		}
		if !plant.Satisfies(f) {
			t.Fatalf("%s: plant does not satisfy", s.Name)
		}
	}
}

func TestScaled(t *testing.T) {
	s, _ := ByName("f600")
	sc := Scaled(s, 0.1)
	if sc.Vars != 60 && sc.Vars != 40 {
		t.Fatalf("scaled vars = %d", sc.Vars)
	}
	// Ratio preserved.
	gotRatio := float64(sc.Clauses) / float64(sc.Vars)
	wantRatio := float64(s.Clauses) / float64(s.Vars)
	if gotRatio < wantRatio-0.2 || gotRatio > wantRatio+0.2 {
		t.Fatalf("ratio %v, want ~%v", gotRatio, wantRatio)
	}
	f, plant := sc.Generate()
	if !plant.Satisfies(f) {
		t.Fatal("scaled instance not planted")
	}
	if same := Scaled(s, 1.5); same.Name != s.Name {
		t.Fatal("factor ≥ 1 must be identity")
	}
	// Tiny specs clamp to the minimum size.
	tiny := Scaled(s, 0.001)
	if tiny.Vars < 40 {
		t.Fatalf("clamp failed: %d", tiny.Vars)
	}
	// Coloring scaling adjusts the palette.
	g, _ := ByName("g250.15")
	gs := Scaled(g, 0.01)
	fc, pc := gs.Generate()
	if !pc.Satisfies(fc) {
		t.Fatal("scaled coloring not planted")
	}
}

func TestFamilyStrings(t *testing.T) {
	for _, f := range []Family{FamilyPar, FamilyII, FamilyJNH, FamilyRandom3, FamilyColoring} {
		if f.String() == "" {
			t.Fatal("empty family name")
		}
	}
}

func TestTable2Changes(t *testing.T) {
	s := Scaled(Small()[1], 0.5) // ii8a1 at half size
	f, plant := s.Generate()
	m := NewMutator(99)
	plan, err := m.Table2Changes(f, plant, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	elims, adds := 0, 0
	for _, c := range plan.Changes {
		switch c.Kind {
		case core.RemoveVariable:
			elims++
		case core.AddClause:
			adds++
		}
	}
	if elims != 3 || adds != 10 {
		t.Fatalf("changes: %d elims, %d adds", elims, adds)
	}
	fPrime, err := core.Apply(f, plan.Changes)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Witness.Satisfies(fPrime) {
		t.Fatal("witness does not satisfy the changed instance")
	}
	// At least one added clause must invalidate the original plant (else
	// fast EC has nothing to do).
	if plant.Satisfies(fPrime) {
		t.Fatal("mutation did not invalidate the original solution")
	}
}

func TestTable3Changes(t *testing.T) {
	s := Scaled(Small()[3], 0.3) // jnh201 scaled
	f, plant := s.Generate()
	m := NewMutator(7)
	plan, err := m.Table3Changes(f, plant, 5, 5, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	fPrime, err := core.Apply(f, plan.Changes)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Witness.Satisfies(fPrime) {
		t.Fatal("witness lost")
	}
	if fPrime.NumVars != f.NumVars+5 {
		t.Fatalf("NumVars = %d, want +5", fPrime.NumVars)
	}
	var grows, elims, drops, adds int
	for _, c := range plan.Changes {
		switch c.Kind {
		case core.AddVariable:
			grows++
		case core.RemoveVariable:
			elims++
		case core.RemoveClause:
			drops++
		case core.AddClause:
			adds++
		}
	}
	if grows != 5 || elims != 5 || drops != 5 || adds != 5 {
		t.Fatalf("changes: %d/%d/%d/%d", grows, elims, drops, adds)
	}
}

func TestMutatorDeterministic(t *testing.T) {
	s := Scaled(Small()[0], 0.5)
	f, plant := s.Generate()
	p1, err1 := NewMutator(5).Table2Changes(f, plant, 2, 4)
	p2, err2 := NewMutator(5).Table2Changes(f, plant, 2, 4)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if len(p1.Changes) != len(p2.Changes) {
		t.Fatal("mutator not deterministic")
	}
	for i := range p1.Changes {
		if p1.Changes[i].String() != p2.Changes[i].String() {
			t.Fatal("mutator not deterministic")
		}
	}
}

func TestWitnessForRepairsDontCares(t *testing.T) {
	f := cnf.FromClauses([]int{1, 2}, []int{-1, 3})
	p := cnf.NewAssignment(3)
	p.Set(2, cnf.True) // v1, v3 DC
	m := NewMutator(1)
	w := m.witnessFor(f, p, 2)
	if !w.Satisfies(f) {
		t.Fatal("witness does not satisfy")
	}
	if w.DontCareCount() != 0 {
		t.Fatal("witness must be total")
	}
}
