package gen

import (
	"fmt"
	"math/rand"

	"ilpec/internal/cnf"
	"ilpec/internal/core"
)

// Mutator produces the randomized specification changes the paper's
// experiments apply (Table 2: "we eliminated three variables and added ten
// clauses"; Table 3: "randomly added and deleted five variables and
// randomly added and deleted five clauses, making sure that we did not
// make the instance non-satisfiable").
//
// Satisfiability is guaranteed constructively: the mutator maintains an
// explicit witness assignment that survives every change (repairing it
// locally when a variable elimination breaks it), so no SAT solving is
// needed during screening.
type Mutator struct {
	rng *rand.Rand
}

// NewMutator creates a deterministic mutator.
func NewMutator(seed int64) *Mutator {
	return &Mutator{rng: rand.New(rand.NewSource(seed))}
}

// MutationPlan is a change list plus the witness that proves the changed
// instance stays satisfiable.
type MutationPlan struct {
	Changes []core.Change
	Witness cnf.Assignment
}

// witnessFor derives a changed-formula witness from p by flipping a few
// random committed variables (so added clauses need not be satisfied by p
// itself — otherwise the change would never invalidate p and the EC
// machinery would have nothing to do).
func (m *Mutator) witnessFor(f *cnf.Formula, p cnf.Assignment, flips int) cnf.Assignment {
	w := p.Clone().Grow(f.NumVars)
	// Complete don't-cares so the witness is total over active vars.
	for v := 1; v <= f.NumVars; v++ {
		if w.Get(v) == cnf.Unassigned {
			if m.rng.Intn(2) == 0 {
				w.Set(v, cnf.True)
			} else {
				w.Set(v, cnf.False)
			}
		}
	}
	if !w.Satisfies(f) {
		// Shouldn't happen for don't-care completions of a model of f; be
		// safe and fall back to p completed both ways.
		w = p.Clone().Grow(f.NumVars).Complete(cnf.True)
		if !w.Satisfies(f) {
			w = p.Clone().Grow(f.NumVars).Complete(cnf.False)
		}
	}
	for i := 0; i < flips; i++ {
		v := 1 + m.rng.Intn(f.NumVars)
		old := w.Get(v)
		if old == cnf.Unassigned {
			continue
		}
		flipped := cnf.True
		if old == cnf.True {
			flipped = cnf.False
		}
		w.Set(v, flipped)
		if !w.Satisfies(f) {
			w.Set(v, old) // revert flips that break the witness
		}
	}
	return w
}

// randomClauseTrueUnder builds a clause of the given width containing at
// least one literal true under w; when breakP is set it additionally makes
// every literal false under p (so the clause invalidates p) if it can find
// such a combination within a bounded number of attempts.
func (m *Mutator) randomClauseTrueUnder(f *cnf.Formula, w, p cnf.Assignment, width int, breakP bool) cnf.Clause {
	n := f.NumVars
	if width > n {
		width = n
	}
	// Anchors must come from variables the witness actually commits
	// (eliminated variables are don't-care in w).
	var committed []int
	for v := 1; v <= n; v++ {
		if w.Get(v) != cnf.Unassigned {
			committed = append(committed, v)
		}
	}
	if len(committed) == 0 {
		panic("gen: witness commits no variables")
	}
	for attempt := 0; attempt < 200; attempt++ {
		cl := make(cnf.Clause, 0, width)
		anchorVar := committed[m.rng.Intn(len(committed))]
		cl = append(cl, plantLit(w, anchorVar))
		for len(cl) < width {
			v := 1 + m.rng.Intn(n)
			if v == anchorVar || cl.HasVar(v) {
				continue
			}
			if m.rng.Intn(2) == 0 {
				cl = append(cl, cnf.Lit(v))
			} else {
				cl = append(cl, cnf.Lit(-v))
			}
		}
		ok := true
		if breakP {
			for _, l := range cl {
				if p.LitTrue(l) {
					ok = false
					break
				}
			}
		}
		if ok {
			return cl
		}
	}
	// Fall back to a clause that merely keeps the witness.
	idx := m.rng.Perm(len(committed))
	cl := make(cnf.Clause, 0, width)
	for _, ci := range idx {
		if len(cl) == width {
			break
		}
		cl = append(cl, plantLit(w, committed[ci]))
	}
	return cl
}

// safeEliminations picks up to count variables whose elimination keeps the
// witness valid (repairing w by local flips when needed), applying each
// elimination to the evolving formula. It returns the changes and the
// final witness.
func (m *Mutator) safeEliminations(f *cnf.Formula, w cnf.Assignment, count int) ([]core.Change, *cnf.Formula, cnf.Assignment) {
	cur := f.Clone()
	var changes []core.Change
	tried := map[int]bool{}
	for len(changes) < count && len(tried) < cur.NumVars {
		v := 1 + m.rng.Intn(cur.NumVars)
		if tried[v] {
			continue
		}
		tried[v] = true
		rep := core.SimulateElimination(cur, w, v)
		if !rep.OK {
			continue
		}
		cur.EliminateVariable(v)
		w = rep.Assignment
		changes = append(changes, core.EliminateVariable(v))
	}
	return changes, cur, w
}

// Table2Changes builds one Table-2 trial: eliminate elimVars variables and
// add addClauses clauses (width 3), keeping the instance satisfiable.
func (m *Mutator) Table2Changes(f *cnf.Formula, p cnf.Assignment, elimVars, addClauses int) (MutationPlan, error) {
	w := m.witnessFor(f, p, 1+f.NumVars/20)
	changes, cur, w := m.safeEliminations(f, w, elimVars)
	if len(changes) < elimVars {
		return MutationPlan{}, fmt.Errorf("gen: found only %d of %d safe eliminations", len(changes), elimVars)
	}
	for i := 0; i < addClauses; i++ {
		breakP := i == 0 // guarantee at least one clause invalidates p
		cl := m.randomClauseTrueUnder(cur, w, p, 3, breakP)
		cur.AddClause(cl)
		changes = append(changes, core.Change{Kind: core.AddClause, Clause: cl})
	}
	if !w.Satisfies(cur) {
		return MutationPlan{}, fmt.Errorf("gen: witness lost during mutation (internal error)")
	}
	return MutationPlan{Changes: changes, Witness: w}, nil
}

// Table3Changes builds one Table-3 trial: add addVars variables, eliminate
// delVars variables, add addCls clauses, and delete delCls clauses, keeping
// the instance satisfiable.
func (m *Mutator) Table3Changes(f *cnf.Formula, p cnf.Assignment, addVars, delVars, addCls, delCls int) (MutationPlan, error) {
	var changes []core.Change
	cur := f.Clone()
	for i := 0; i < addVars; i++ {
		changes = append(changes, core.GrowVariable())
		cur.AddVariable()
	}
	w := m.witnessFor(cur, p, 1+cur.NumVars/20)
	elims, cur, w := m.safeEliminations(cur, w, delVars)
	if len(elims) < delVars {
		return MutationPlan{}, fmt.Errorf("gen: found only %d of %d safe eliminations", len(elims), delVars)
	}
	changes = append(changes, elims...)
	for i := 0; i < delCls; i++ {
		if cur.NumClauses() == 0 {
			break
		}
		ci := m.rng.Intn(cur.NumClauses())
		cur.RemoveClause(ci)
		changes = append(changes, core.DropClause(ci))
	}
	for i := 0; i < addCls; i++ {
		breakP := i == 0
		cl := m.randomClauseTrueUnder(cur, w, p, 3, breakP)
		cur.AddClause(cl)
		changes = append(changes, core.Change{Kind: core.AddClause, Clause: cl})
	}
	if !w.Satisfies(cur) {
		return MutationPlan{}, fmt.Errorf("gen: witness lost during mutation (internal error)")
	}
	return MutationPlan{Changes: changes, Witness: w}, nil
}
