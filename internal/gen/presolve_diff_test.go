package gen_test

import (
	"math"
	"testing"

	"ilpec/internal/encode"
	"ilpec/internal/gen"
	"ilpec/internal/ilp"
)

// TestPresolveDifferentialGenInstances is the end-to-end presolve
// round-trip property on real encodings: across the synthetic benchmark
// families of internal/gen, the reduced (presolve + cuts) solve of the
// set-cover encoding must match the raw kernel's status and objective,
// and its mapped-back solution must decode to a satisfying assignment.
func TestPresolveDifferentialGenInstances(t *testing.T) {
	specs := gen.Small()
	if testing.Short() {
		specs = specs[:min(3, len(specs))]
	}
	for _, spec := range specs {
		spec := gen.Scaled(spec, 0.05)
		f, _ := spec.Generate()
		e := encode.New(f)
		opts := ilp.Options{MaxNodes: 200_000}
		raw := ilp.Solve(e.Model, opts)
		if raw.Status != ilp.Optimal {
			t.Logf("%s: raw solve %v within node budget; skipping", spec.Name, raw.Status)
			continue
		}
		reducedOpts := opts
		reducedOpts.Presolve = true
		reducedOpts.Cuts = true
		red := ilp.Solve(e.Model, reducedOpts)
		if red.Status != raw.Status {
			t.Fatalf("%s: reduced status %v, want %v", spec.Name, red.Status, raw.Status)
		}
		if math.Abs(red.Objective-raw.Objective) > 1e-6 {
			t.Fatalf("%s: reduced objective %v, want %v", spec.Name, red.Objective, raw.Objective)
		}
		if !e.Model.Feasible(red.Solution) {
			t.Fatalf("%s: postsolved solution infeasible in the original encoding", spec.Name)
		}
		if err := e.Verify(red.Solution); err != nil {
			t.Fatalf("%s: reduced solution does not decode to a satisfying assignment: %v", spec.Name, err)
		}
		a := e.Decode(red.Solution)
		if n := a.NumSatisfied(f); n != f.NumClauses() {
			t.Fatalf("%s: decoded assignment satisfies %d/%d clauses", spec.Name, n, f.NumClauses())
		}
	}
}
