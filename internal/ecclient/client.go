// Package ecclient is a small retrying HTTP/JSON client for the ecserve
// (and ecrouter) API. It encodes the client half of the server's
// admission and failover contract:
//
//   - 429 and 5xx responses carrying a Retry-After header are backed off
//     exactly as instructed (integer seconds or HTTP-date) and retried;
//   - transport errors and retryable statuses without a hint use a small
//     default backoff;
//   - everything else surfaces as an *APIError with the server's
//     structured {"error": {"code", "message"}} body decoded.
//
// Requests are replayable: the JSON body is buffered once and re-sent on
// every attempt, and every POST carries an Idempotency-Key header minted
// once per DoJSON call and held constant across attempts. The server
// dedupes change batches by that key, so a retry after a lost response
// (the request committed but the 202 never arrived) is acknowledged
// without being applied twice. Create replays are absorbed by the fixed
// session id and solve replays by the empty pending queue, so the whole
// API is safe to retry through 429/502/503.
package ecclient

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Client issues JSON requests against Base with bounded retries.
// The zero value is not usable; set at least Base.
type Client struct {
	// Base is the server URL prefix, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP is the transport (nil = http.DefaultClient).
	HTTP *http.Client
	// Retries is the total attempt budget (0 = default 8, 1 = no retries).
	Retries int
	// Backoff is the sleep before a retry when the server sent no
	// Retry-After hint (0 = default 50ms).
	Backoff time.Duration
	// MaxWait caps a single Retry-After-directed sleep so a hostile or
	// confused server cannot stall the client (0 = default 5s).
	MaxWait time.Duration
	// Sleep is the sleep hook (nil = time.Sleep); tests inject a recorder.
	Sleep func(time.Duration)
}

// APIError is a non-retryable (or retry-exhausted) server response.
type APIError struct {
	Status  int
	Code    string
	Message string
	// RequestID is the server's X-Request-ID for the failed attempt —
	// quote it when filing a report; it keys the server's request log
	// and /v1/debug/traces entries.
	RequestID string
}

func (e *APIError) Error() string {
	if e.RequestID != "" {
		return fmt.Sprintf("ecclient: server status %d: %s: %s (request %s)", e.Status, e.Code, e.Message, e.RequestID)
	}
	return fmt.Sprintf("ecclient: server status %d: %s: %s", e.Status, e.Code, e.Message)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) retries() int {
	if c.Retries > 0 {
		return c.Retries
	}
	return 8
}

func (c *Client) backoff() time.Duration {
	if c.Backoff > 0 {
		return c.Backoff
	}
	return 50 * time.Millisecond
}

func (c *Client) maxWait() time.Duration {
	if c.MaxWait > 0 {
		return c.MaxWait
	}
	return 5 * time.Second
}

func (c *Client) sleep(d time.Duration) {
	if c.Sleep != nil {
		c.Sleep(d)
		return
	}
	time.Sleep(d)
}

// retryableStatus reports whether a response status invites a retry:
// overload shedding (429), upstream unreachable at the router (502), and
// not-ready / not-owner / store-unavailable conditions (503).
func retryableStatus(status int) bool {
	return status == http.StatusTooManyRequests ||
		status == http.StatusBadGateway ||
		status == http.StatusServiceUnavailable
}

// DoJSON sends one JSON request (in may be nil) and decodes the JSON
// response into out (out may be nil). Retryable failures are re-sent
// honoring Retry-After until the attempt budget runs out.
func (c *Client) DoJSON(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("ecclient: encode request: %w", err)
		}
	}
	url := strings.TrimRight(c.Base, "/") + path
	// One key per logical request, shared by every attempt: the server
	// uses it to recognize a replayed batch whose first response was lost
	// in flight. Only POSTs mutate in a non-idempotent way, so only they
	// carry the header.
	idemKey := ""
	if method == http.MethodPost {
		idemKey = mintIdempotencyKey()
	}
	var lastErr error
	for attempt := 1; attempt <= c.retries(); attempt++ {
		if attempt > 1 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			default:
			}
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, url, rd)
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if idemKey != "" {
			req.Header.Set("Idempotency-Key", idemKey)
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			lastErr = err
			c.sleep(c.backoff())
			continue
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
		resp.Body.Close()
		if err != nil {
			lastErr = err
			c.sleep(c.backoff())
			continue
		}
		if resp.StatusCode < 300 {
			if out == nil || len(data) == 0 {
				return nil
			}
			if err := json.Unmarshal(data, out); err != nil {
				return fmt.Errorf("ecclient: decode response: %w", err)
			}
			return nil
		}
		apiErr := decodeAPIError(resp.StatusCode, data)
		apiErr.RequestID = resp.Header.Get("X-Request-ID")
		if !retryableStatus(resp.StatusCode) {
			return apiErr
		}
		lastErr = apiErr
		wait := c.backoff()
		if d, ok := ParseRetryAfter(resp.Header.Get("Retry-After"), time.Now()); ok {
			if d > c.maxWait() {
				d = c.maxWait()
			}
			wait = d
		}
		c.sleep(wait)
	}
	return fmt.Errorf("ecclient: %d attempts exhausted: %w", c.retries(), lastErr)
}

// mintIdempotencyKey returns a random key identifying one logical POST
// across its retry attempts. Random (not derived from the body) so two
// deliberate identical batches are not conflated.
func mintIdempotencyKey() string {
	var buf [16]byte
	if _, err := rand.Read(buf[:]); err != nil {
		panic(fmt.Sprintf("ecclient: crypto/rand failed: %v", err))
	}
	return hex.EncodeToString(buf[:])
}

// decodeAPIError extracts the server's structured error envelope, falling
// back to the raw body for non-conforming responses.
func decodeAPIError(status int, data []byte) *APIError {
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(data, &env); err == nil && env.Error.Code != "" {
		return &APIError{Status: status, Code: env.Error.Code, Message: env.Error.Message}
	}
	msg := strings.TrimSpace(string(data))
	if len(msg) > 200 {
		msg = msg[:200]
	}
	return &APIError{Status: status, Code: "http_error", Message: msg}
}

// ParseRetryAfter parses a Retry-After header value per RFC 9110: either
// a non-negative integer delay in seconds or an HTTP-date (whose delay is
// measured from now, clamped at zero for dates already past). ok is false
// for an absent or malformed value.
func ParseRetryAfter(v string, now time.Time) (d time.Duration, ok bool) {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	when, err := http.ParseTime(v)
	if err != nil {
		return 0, false
	}
	if d = when.Sub(now); d < 0 {
		d = 0
	}
	return d, true
}
