package ecclient

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Pins the Retry-After grammar: integer seconds and HTTP-date, with
// malformed and negative values rejected.
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"2", 2 * time.Second, true},
		{" 2 ", 2 * time.Second, true},
		{"0", 0, true},
		{"-1", 0, false},
		{"", 0, false},
		{"soon", 0, false},
		{"1.5", 0, false},
		{now.Add(3 * time.Second).Format(http.TimeFormat), 3 * time.Second, true},
		{now.Add(-10 * time.Second).Format(http.TimeFormat), 0, true}, // past date = retry now
	}
	for _, c := range cases {
		got, ok := ParseRetryAfter(c.in, now)
		if got != c.want || ok != c.ok {
			t.Errorf("ParseRetryAfter(%q) = (%v, %v), want (%v, %v)", c.in, got, ok, c.want, c.ok)
		}
	}
}

// A 503 with Retry-After: 2 must produce exactly one 2s sleep before the
// retry that succeeds.
func TestDoJSONHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":{"code":"not_owner","message":"moving"}}`))
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer srv.Close()

	var slept []time.Duration
	c := &Client{Base: srv.URL, Sleep: func(d time.Duration) { slept = append(slept, d) }}
	var out struct {
		OK bool `json:"ok"`
	}
	if err := c.DoJSON(context.Background(), http.MethodGet, "/x", nil, &out); err != nil {
		t.Fatal(err)
	}
	if !out.OK || calls.Load() != 2 {
		t.Fatalf("out=%+v calls=%d", out, calls.Load())
	}
	if len(slept) != 1 || slept[0] != 2*time.Second {
		t.Fatalf("sleeps = %v, want exactly [2s] from the Retry-After header", slept)
	}
}

// Non-retryable statuses surface immediately as *APIError with the
// decoded envelope; no sleeping, no extra attempts.
func TestDoJSONNonRetryable(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusConflict)
		w.Write([]byte(`{"error":{"code":"session_exists","message":"dup"}}`))
	}))
	defer srv.Close()

	c := &Client{Base: srv.URL, Sleep: func(time.Duration) { t.Fatal("slept on non-retryable error") }}
	err := c.DoJSON(context.Background(), http.MethodPost, "/x", map[string]any{"a": 1}, nil)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 409 || apiErr.Code != "session_exists" {
		t.Fatalf("err = %v, want 409 session_exists APIError", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1", calls.Load())
	}
}

// The server's X-Request-ID rides along on APIError (and its Error()
// string) so failures can be correlated with the server's request log
// and slow-trace ring.
func TestDoJSONSurfacesRequestID(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Request-ID", "req-abc123")
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte(`{"error":{"code":"unknown_session","message":"no such session"}}`))
	}))
	defer srv.Close()

	c := &Client{Base: srv.URL}
	err := c.DoJSON(context.Background(), http.MethodGet, "/x", nil, nil)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.RequestID != "req-abc123" {
		t.Fatalf("err = %v, want APIError carrying RequestID req-abc123", err)
	}
	if !strings.Contains(apiErr.Error(), "req-abc123") {
		t.Fatalf("Error() = %q, want it to quote the request id", apiErr.Error())
	}
}

// The attempt budget is honored and the last retryable error is wrapped.
func TestDoJSONExhaustsRetries(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":{"code":"overloaded","message":"busy"}}`))
	}))
	defer srv.Close()

	c := &Client{Base: srv.URL, Retries: 3, Sleep: func(time.Duration) {}}
	err := c.DoJSON(context.Background(), http.MethodGet, "/x", nil, nil)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != "overloaded" {
		t.Fatalf("err = %v, want wrapped overloaded APIError", err)
	}
}

// Every attempt of one POST must carry the SAME Idempotency-Key (that is
// what lets the server recognize a replay after a lost response), and a
// second DoJSON call must mint a fresh key. GETs carry none.
func TestDoJSONIdempotencyKeyStableAcrossRetries(t *testing.T) {
	var mu sync.Mutex
	var postKeys []string
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet {
			if k := r.Header.Get("Idempotency-Key"); k != "" {
				t.Errorf("GET carried Idempotency-Key %q, want none", k)
			}
			w.Write([]byte(`{}`))
			return
		}
		mu.Lock()
		postKeys = append(postKeys, r.Header.Get("Idempotency-Key"))
		mu.Unlock()
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusBadGateway)
			w.Write([]byte(`{"error":{"code":"upstream_unreachable","message":"boom"}}`))
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()

	c := &Client{Base: srv.URL, Sleep: func(time.Duration) {}}
	if err := c.DoJSON(context.Background(), http.MethodPost, "/x", map[string]int{"a": 1}, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.DoJSON(context.Background(), http.MethodGet, "/x", nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.DoJSON(context.Background(), http.MethodPost, "/x", map[string]int{"a": 2}, nil); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(postKeys) != 3 {
		t.Fatalf("saw %d POST attempts, want 3 (retry + fresh call): %v", len(postKeys), postKeys)
	}
	if postKeys[0] == "" || postKeys[0] != postKeys[1] {
		t.Fatalf("retry attempts carried keys %q vs %q, want one identical non-empty key", postKeys[0], postKeys[1])
	}
	if postKeys[2] == postKeys[0] {
		t.Fatalf("second logical POST reused key %q; each call must mint its own", postKeys[2])
	}
}
