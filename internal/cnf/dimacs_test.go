package cnf

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseDIMACSBasic(t *testing.T) {
	in := `c a comment
c another
p cnf 5 3
1 -3 -5 0
2 -3 -5 0
2 4 5 0
`
	f, err := ParseDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumVars != 5 || f.NumClauses() != 3 {
		t.Fatalf("parsed %d vars %d clauses", f.NumVars, f.NumClauses())
	}
	if !f.Clauses[0].Has(-5) || !f.Clauses[2].Has(4) {
		t.Fatal("clause content wrong")
	}
}

func TestParseDIMACSMultilineClause(t *testing.T) {
	in := "p cnf 4 1\n1 2\n3 -4 0\n"
	f, err := ParseDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumClauses() != 1 || len(f.Clauses[0]) != 4 {
		t.Fatalf("multiline clause parsed wrong: %v", f.Clauses)
	}
}

func TestParseDIMACSPercentTrailer(t *testing.T) {
	in := "p cnf 2 1\n1 2 0\n%\n0\n"
	f, err := ParseDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumClauses() != 1 {
		t.Fatalf("trailer handling wrong: %d clauses", f.NumClauses())
	}
}

func TestParseDIMACSMissingFinalZero(t *testing.T) {
	in := "p cnf 2 2\n1 2 0\n-1 -2"
	f, err := ParseDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumClauses() != 2 {
		t.Fatalf("expected tolerant parse of trailing clause, got %d clauses", f.NumClauses())
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"no header", "1 2 0\n"},
		{"bad header", "p cnf x 3\n"},
		{"bad sense", "p sat 2 1\n1 0\n"},
		{"duplicate header", "p cnf 2 1\np cnf 2 1\n1 0\n"},
		{"bad literal", "p cnf 2 1\n1 two 0\n"},
		{"clause count mismatch", "p cnf 2 5\n1 0\n"},
		{"var overflow", "p cnf 2 1\n7 0\n"},
		{"empty input", ""},
	}
	for _, c := range cases {
		if _, err := ParseDIMACS(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	f := FromClauses([]int{1, -3, -5}, []int{2, -3, -5}, []int{2, 4, 5}, []int{-3, -4})
	f.NumVars = 7 // header may exceed max mentioned var
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, f, "round trip", "test"); err != nil {
		t.Fatal(err)
	}
	g, err := ParseDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Equal(g) {
		t.Fatalf("round trip mismatch:\n%v\n%v", f, g)
	}
}

func TestDIMACSFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.cnf")
	f := FromClauses([]int{1, 2}, []int{-1, -2})
	if err := WriteDIMACSFile(path, f, "file round trip"); err != nil {
		t.Fatal(err)
	}
	g, err := ParseDIMACSFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Equal(g) {
		t.Fatal("file round trip mismatch")
	}
	if _, err := ParseDIMACSFile(filepath.Join(dir, "missing.cnf")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestParseDIMACSEmptyClause(t *testing.T) {
	in := "p cnf 2 2\n0\n1 2 0\n"
	f, err := ParseDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Clauses[0]) != 0 {
		t.Fatal("empty clause not preserved")
	}
	if !f.HasEmptyClause() {
		t.Fatal("HasEmptyClause = false")
	}
}
