package cnf

import (
	"fmt"
	"strings"
)

// Stats summarizes the structure of a formula; the experiment harness uses
// it to verify that generated benchmark families match the paper's
// instances in size and clause-width profile.
type Stats struct {
	NumVars      int
	NumClauses   int
	NumLiterals  int
	MinClauseLen int
	MaxClauseLen int
	MeanLen      float64
	LenHistogram map[int]int
	// ActiveVars counts variables that occur in at least one clause.
	ActiveVars int
}

// ComputeStats gathers structural statistics for f.
func ComputeStats(f *Formula) Stats {
	s := Stats{
		NumVars:      f.NumVars,
		NumClauses:   len(f.Clauses),
		LenHistogram: make(map[int]int),
	}
	if len(f.Clauses) == 0 {
		return s
	}
	s.MinClauseLen = len(f.Clauses[0])
	seen := make(map[int]bool)
	for _, c := range f.Clauses {
		n := len(c)
		s.NumLiterals += n
		s.LenHistogram[n]++
		if n < s.MinClauseLen {
			s.MinClauseLen = n
		}
		if n > s.MaxClauseLen {
			s.MaxClauseLen = n
		}
		for _, l := range c {
			seen[l.Var()] = true
		}
	}
	s.ActiveVars = len(seen)
	s.MeanLen = float64(s.NumLiterals) / float64(s.NumClauses)
	return s
}

// Ratio returns the clause/variable ratio (0 when there are no variables).
func (s Stats) Ratio() float64 {
	if s.NumVars == 0 {
		return 0
	}
	return float64(s.NumClauses) / float64(s.NumVars)
}

// String renders a one-line summary.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "vars=%d clauses=%d lits=%d len=[%d..%d] mean=%.2f ratio=%.2f",
		s.NumVars, s.NumClauses, s.NumLiterals, s.MinClauseLen, s.MaxClauseLen, s.MeanLen, s.Ratio())
	return b.String()
}
