package cnf

import "testing"

// paperFastF is the 10-clause fast-EC example formula from §1 of the paper,
// with the one correction documented in DESIGN.md §3: f5 = (v1+v3+v4)
// instead of the printed (v1'+v3+v4), which no stated assignment satisfies.
func paperFastF() *Formula {
	return FromClauses(
		[]int{1, 2, 3},      // f1
		[]int{1, -2, -3, 4}, // f2
		[]int{1, 3, 6},      // f3
		[]int{1, 4, 5},      // f4
		[]int{1, 3, 4},      // f5 (corrected polarity of v1)
		[]int{2, -3, 5},     // f6
		[]int{2, -6},        // f7
		[]int{-2, 5},        // f8
		[]int{3, -4, 5},     // f9
		[]int{-3, 5},        // f10
	)
}

// paperFastS is the corrected satisfying assignment for paperFastF: v2 = 0
// (the printed v2 = 1 contradicts the paper's own closure walkthrough,
// which requires f7 and f8 to have no support outside {v2, v5, v6}).
func paperFastS() Assignment {
	return AssignmentFromBools(true, false, false, false, true, false)
}

func TestPaperFastECExampleSetup(t *testing.T) {
	f, s := paperFastF(), paperFastS()
	if !s.Satisfies(f) {
		t.Fatal("corrected assignment S does not satisfy F — transcription error")
	}
	// Adding f11 = (v5' + v6) breaks S; f12 = (v1 + v3' + v4) stays satisfied.
	f11 := Clause{-5, 6}
	f12 := Clause{1, -3, 4}
	if s.ClauseSatisfied(f11) {
		t.Fatal("f11 should be unsatisfied under S")
	}
	if !s.ClauseSatisfied(f12) {
		t.Fatal("f12 should be satisfied under S")
	}
}

func TestValueString(t *testing.T) {
	if True.String() != "1" || False.String() != "0" || Unassigned.String() != "-" {
		t.Fatal("Value.String mismatch")
	}
}

func TestAssignmentGetSet(t *testing.T) {
	a := NewAssignment(3)
	if a.Get(2) != Unassigned {
		t.Fatal("fresh assignment not unassigned")
	}
	a.Set(2, True)
	if a.Get(2) != True {
		t.Fatal("Set/Get mismatch")
	}
	if a.Get(0) != Unassigned || a.Get(99) != Unassigned {
		t.Fatal("out-of-range Get should be Unassigned")
	}
	if a.NumVars() != 3 {
		t.Fatalf("NumVars = %d", a.NumVars())
	}
}

func TestLitTrueFalse(t *testing.T) {
	a := NewAssignment(2)
	a.Set(1, True)
	if !a.LitTrue(1) || a.LitFalse(1) || a.LitTrue(-1) || !a.LitFalse(-1) {
		t.Fatal("literal evaluation wrong for assigned var")
	}
	if a.LitTrue(2) || a.LitFalse(2) {
		t.Fatal("unassigned variable should make literals neither true nor false")
	}
}

func TestSatLevelAndKSatisfied(t *testing.T) {
	f := FromClauses([]int{1, 2, 3}, []int{-1, 2}, []int{-2, -3})
	a := AssignmentFromBools(true, true, false)
	if got := a.SatLevel(f.Clauses[0]); got != 2 {
		t.Fatalf("SatLevel = %d, want 2", got)
	}
	if got := a.KSatisfiedCount(f, 2); got != 1 {
		t.Fatalf("KSatisfiedCount(2) = %d, want 1", got)
	}
	if got := a.KSatisfiedCount(f, 1); got != 3 {
		t.Fatalf("KSatisfiedCount(1) = %d, want 3", got)
	}
}

func TestUnsatisfiedClauses(t *testing.T) {
	f := FromClauses([]int{1}, []int{-1}, []int{2, -1})
	a := AssignmentFromBools(true, false)
	got := a.UnsatisfiedClauses(f)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("UnsatisfiedClauses = %v, want [1 2]", got)
	}
	if a.NumSatisfied(f) != 1 {
		t.Fatalf("NumSatisfied = %d", a.NumSatisfied(f))
	}
}

func TestDontCareAndComplete(t *testing.T) {
	a := NewAssignment(4)
	a.Set(1, True)
	a.Set(3, False)
	if a.DontCareCount() != 2 || a.AssignedCount() != 2 {
		t.Fatalf("DC=%d assigned=%d", a.DontCareCount(), a.AssignedCount())
	}
	c := a.Complete(False)
	if c.DontCareCount() != 0 || c.Get(2) != False || c.Get(1) != True {
		t.Fatal("Complete wrong")
	}
	if a.Get(2) != Unassigned {
		t.Fatal("Complete mutated the receiver")
	}
}

func TestAgreementAndPreservedFraction(t *testing.T) {
	orig := AssignmentFromBools(true, true, false, false, true)
	now := AssignmentFromBools(true, false, false, false, true)
	same, both := now.Agreement(orig)
	if same != 4 || both != 5 {
		t.Fatalf("Agreement = (%d,%d), want (4,5)", same, both)
	}
	if got := now.PreservedFraction(orig); got != 0.8 {
		t.Fatalf("PreservedFraction = %v, want 0.8", got)
	}
	// DC variables in the original don't count.
	origDC := NewAssignment(3)
	origDC.Set(1, True)
	nowB := AssignmentFromBools(true, false, false)
	if got := nowB.PreservedFraction(origDC); got != 1.0 {
		t.Fatalf("PreservedFraction with DC original = %v, want 1", got)
	}
	empty := NewAssignment(2)
	if got := nowB.PreservedFraction(empty); got != 1.0 {
		t.Fatalf("PreservedFraction(all-DC) = %v, want 1", got)
	}
}

func TestGrow(t *testing.T) {
	a := AssignmentFromBools(true)
	b := a.Grow(3)
	if b.NumVars() != 3 || b.Get(1) != True || b.Get(3) != Unassigned {
		t.Fatalf("Grow wrong: %v", b)
	}
	if got := a.Grow(1).NumVars(); got != 1 {
		t.Fatalf("Grow(no-op) = %d vars", got)
	}
}

func TestPreservingExampleFromPaper(t *testing.T) {
	// §1 preserving-EC example: F with 6 clauses, S = {1,1,0,0,1};
	// adding (v2'+v3+v4)(v1+v2'+v5') makes S invalid; S2 preserves 4/5.
	f := FromClauses(
		[]int{1, 2, 4}, []int{1, 4, -5}, []int{-1, -3, 4},
		[]int{2, 3, 5}, []int{-2, 4, 5}, []int{3, -4, 5},
	)
	s := AssignmentFromBools(true, true, false, false, true)
	if !s.Satisfies(f) {
		t.Fatal("S does not satisfy the base preserving example")
	}
	f.AddClause(Clause{-2, 3, 4})
	f.AddClause(Clause{1, -2, -5})
	if s.Satisfies(f) {
		t.Fatal("S should be invalidated by the added clauses")
	}
	s1 := AssignmentFromBools(false, true, true, true, false)
	s2 := AssignmentFromBools(true, false, false, false, true)
	if !s1.Satisfies(f) || !s2.Satisfies(f) {
		t.Fatal("paper's S1/S2 do not satisfy the changed formula")
	}
	if got := s2.PreservedFraction(s); got != 0.8 {
		t.Fatalf("S2 preserves %v, want 0.8 (4 of 5)", got)
	}
	if got := s1.PreservedFraction(s); got != 0.2 {
		t.Fatalf("S1 preserves %v, want 0.2 (1 of 5)", got)
	}
}
