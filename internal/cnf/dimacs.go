package cnf

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ParseDIMACS reads a formula in DIMACS CNF format. It accepts the common
// dialect: 'c' comment lines, a single 'p cnf <vars> <clauses>' header, and
// whitespace-separated literals terminated by 0 (clauses may span lines).
// A '%' line (used by some benchmark sets as a trailer) ends the input.
// The declared clause count is checked against the actual count.
func ParseDIMACS(r io.Reader) (*Formula, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)

	var f *Formula
	declaredClauses := -1
	declaredVars := -1
	var cur Clause
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "c") {
			continue
		}
		if text == "%" {
			break
		}
		if strings.HasPrefix(text, "p") {
			if f != nil {
				return nil, fmt.Errorf("cnf: line %d: duplicate problem line", line)
			}
			fields := strings.Fields(text)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("cnf: line %d: malformed problem line %q", line, text)
			}
			nv, err := strconv.Atoi(fields[2])
			if err != nil || nv < 0 {
				return nil, fmt.Errorf("cnf: line %d: bad variable count %q", line, fields[2])
			}
			nc, err := strconv.Atoi(fields[3])
			if err != nil || nc < 0 {
				return nil, fmt.Errorf("cnf: line %d: bad clause count %q", line, fields[3])
			}
			f = New(nv)
			declaredClauses = nc
			declaredVars = nv
			continue
		}
		if f == nil {
			return nil, fmt.Errorf("cnf: line %d: clause data before problem line", line)
		}
		for _, tok := range strings.Fields(text) {
			n, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("cnf: line %d: bad literal %q", line, tok)
			}
			if n == 0 {
				f.AddClause(cur)
				cur = cur[:0]
				continue
			}
			if v := n; v < 0 {
				v = -v
			}
			cur = append(cur, Lit(n))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("cnf: read: %w", err)
	}
	if f == nil {
		return nil, fmt.Errorf("cnf: missing problem line")
	}
	if len(cur) > 0 {
		// Tolerate a final clause without its terminating 0.
		f.AddClause(cur)
	}
	if declaredClauses >= 0 && len(f.Clauses) != declaredClauses {
		return nil, fmt.Errorf("cnf: header declares %d clauses, found %d", declaredClauses, len(f.Clauses))
	}
	if mv := f.MaxVar(); mv > declaredVars {
		return nil, fmt.Errorf("cnf: header declares %d variables, literal mentions %d", declaredVars, mv)
	}
	return f, nil
}

// ParseDIMACSFile reads a DIMACS CNF file from disk.
func ParseDIMACSFile(path string) (*Formula, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	return ParseDIMACS(fh)
}

// WriteDIMACS writes the formula in DIMACS CNF format with an optional
// comment block (one comment per line, without the leading "c ").
func WriteDIMACS(w io.Writer, f *Formula, comments ...string) error {
	bw := bufio.NewWriter(w)
	for _, c := range comments {
		if _, err := fmt.Fprintf(bw, "c %s\n", c); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(bw, "p cnf %d %d\n", f.NumVars, len(f.Clauses)); err != nil {
		return err
	}
	for _, cl := range f.Clauses {
		for _, l := range cl {
			if _, err := fmt.Fprintf(bw, "%d ", int(l)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw, "0"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteDIMACSFile writes the formula to a file in DIMACS CNF format.
func WriteDIMACSFile(path string, f *Formula, comments ...string) error {
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteDIMACS(fh, f, comments...); err != nil {
		fh.Close()
		return err
	}
	return fh.Close()
}
