package cnf

import (
	"fmt"
	"strings"
)

// Value is the tri-state value of a variable in an assignment. The zero
// value is Unassigned, so a fresh Assignment is all don't-cares.
type Value int8

const (
	// Unassigned marks a don't-care (DC) variable: no clause relies on it.
	Unassigned Value = 0
	// True assigns the variable the value 1.
	True Value = 1
	// False assigns the variable the value 0.
	False Value = -1
)

// String renders the value as "1", "0", or "-".
func (v Value) String() string {
	switch v {
	case True:
		return "1"
	case False:
		return "0"
	default:
		return "-"
	}
}

// Assignment maps variables 1..n to tri-state values. Index 0 is unused.
// The don't-care state is first-class because the paper's set-cover
// objective (§3) minimizes the number of committed literals, i.e. maximizes
// don't-cares, and fast EC (§6) "recovers as many DC variables from the
// initial solution as possible".
type Assignment []Value

// NewAssignment returns an all-unassigned assignment over n variables.
func NewAssignment(n int) Assignment {
	return make(Assignment, n+1)
}

// AssignmentFromBools builds an assignment from 1-based boolean values
// (vals[0] corresponds to variable 1).
func AssignmentFromBools(vals ...bool) Assignment {
	a := NewAssignment(len(vals))
	for i, b := range vals {
		if b {
			a[i+1] = True
		} else {
			a[i+1] = False
		}
	}
	return a
}

// NumVars returns the number of variables the assignment covers.
func (a Assignment) NumVars() int { return len(a) - 1 }

// Get returns the value of variable v, or Unassigned if v is out of range.
func (a Assignment) Get(v int) Value {
	if v < 1 || v >= len(a) {
		return Unassigned
	}
	return a[v]
}

// Set assigns variable v. It panics if v is out of range.
func (a Assignment) Set(v int, val Value) {
	if v < 1 || v >= len(a) {
		panic(fmt.Sprintf("cnf: Set variable %d out of range [1,%d]", v, len(a)-1))
	}
	a[v] = val
}

// Clone returns an independent copy.
func (a Assignment) Clone() Assignment {
	out := make(Assignment, len(a))
	copy(out, a)
	return out
}

// Grow returns an assignment extended (with don't-cares) to cover n
// variables; if a already covers n it is returned unchanged.
func (a Assignment) Grow(n int) Assignment {
	if len(a) >= n+1 {
		return a
	}
	out := make(Assignment, n+1)
	copy(out, a)
	return out
}

// LitTrue reports whether literal l evaluates to true under a.
func (a Assignment) LitTrue(l Lit) bool {
	v := a.Get(l.Var())
	if l.Pos() {
		return v == True
	}
	return v == False
}

// LitFalse reports whether literal l evaluates to false under a (an
// unassigned variable makes the literal neither true nor false).
func (a Assignment) LitFalse(l Lit) bool {
	v := a.Get(l.Var())
	if l.Pos() {
		return v == False
	}
	return v == True
}

// ClauseSatisfied reports whether at least one literal of c is true under a.
func (a Assignment) ClauseSatisfied(c Clause) bool {
	for _, l := range c {
		if a.LitTrue(l) {
			return true
		}
	}
	return false
}

// SatLevel returns the number of true literals in c under a — the paper's
// "k-satisfied" level (§5).
func (a Assignment) SatLevel(c Clause) int {
	k := 0
	for _, l := range c {
		if a.LitTrue(l) {
			k++
		}
	}
	return k
}

// Satisfies reports whether a satisfies every clause of f.
func (a Assignment) Satisfies(f *Formula) bool {
	for _, c := range f.Clauses {
		if !a.ClauseSatisfied(c) {
			return false
		}
	}
	return true
}

// UnsatisfiedClauses returns the indices of the clauses of f not satisfied
// by a, in increasing order.
func (a Assignment) UnsatisfiedClauses(f *Formula) []int {
	var out []int
	for i, c := range f.Clauses {
		if !a.ClauseSatisfied(c) {
			out = append(out, i)
		}
	}
	return out
}

// NumSatisfied returns how many clauses of f are satisfied by a.
func (a Assignment) NumSatisfied(f *Formula) int {
	n := 0
	for _, c := range f.Clauses {
		if a.ClauseSatisfied(c) {
			n++
		}
	}
	return n
}

// KSatisfiedCount returns how many clauses of f have at least k true
// literals under a — the enabling-EC quality metric of §5.
func (a Assignment) KSatisfiedCount(f *Formula, k int) int {
	n := 0
	for _, c := range f.Clauses {
		if a.SatLevel(c) >= k {
			n++
		}
	}
	return n
}

// DontCareCount returns the number of unassigned variables in 1..n.
func (a Assignment) DontCareCount() int {
	n := 0
	for _, v := range a[1:] {
		if v == Unassigned {
			n++
		}
	}
	return n
}

// AssignedCount returns the number of variables with a committed value.
func (a Assignment) AssignedCount() int {
	return a.NumVars() - a.DontCareCount()
}

// Agreement returns the number of variables in 1..n on which a and b hold
// the same committed value, and the number of variables on which both are
// committed. Variables beyond either assignment's range count as
// unassigned. This is the "percentage of preserved variable assignments"
// measure of Table 3.
func (a Assignment) Agreement(b Assignment) (same, both int) {
	n := a.NumVars()
	if bn := b.NumVars(); bn > n {
		n = bn
	}
	for v := 1; v <= n; v++ {
		av, bv := a.Get(v), b.Get(v)
		if av == Unassigned || bv == Unassigned {
			continue
		}
		both++
		if av == bv {
			same++
		}
	}
	return same, both
}

// PreservedFraction returns the fraction of variables of the original
// assignment orig whose committed values are preserved in a. Variables that
// were don't-care in orig do not count against preservation. Returns 1 for
// an original with no committed variables.
func (a Assignment) PreservedFraction(orig Assignment) float64 {
	committed := 0
	kept := 0
	for v := 1; v <= orig.NumVars(); v++ {
		ov := orig.Get(v)
		if ov == Unassigned {
			continue
		}
		committed++
		if a.Get(v) == ov {
			kept++
		}
	}
	if committed == 0 {
		return 1
	}
	return float64(kept) / float64(committed)
}

// Complete returns a copy of the assignment with every don't-care variable
// committed to def. It is used when a downstream consumer requires a total
// assignment.
func (a Assignment) Complete(def Value) Assignment {
	if def == Unassigned {
		panic("cnf: Complete requires a committed default value")
	}
	out := a.Clone()
	for v := 1; v < len(out); v++ {
		if out[v] == Unassigned {
			out[v] = def
		}
	}
	return out
}

// String renders the assignment as e.g. "{v1=1, v2=0, v3=-}".
func (a Assignment) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for v := 1; v < len(a); v++ {
		if v > 1 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "v%d=%s", v, a[v])
	}
	b.WriteByte('}')
	return b.String()
}
