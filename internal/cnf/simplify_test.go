package cnf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUnitPropagateChain(t *testing.T) {
	// (v1)(v1' + v2)(v2' + v3) forces v1=v2=v3=1.
	f := FromClauses([]int{1}, []int{-1, 2}, []int{-2, 3})
	a, ok := UnitPropagate(f, NewAssignment(3))
	if !ok {
		t.Fatal("propagation reported conflict on satisfiable chain")
	}
	for v := 1; v <= 3; v++ {
		if a.Get(v) != True {
			t.Fatalf("v%d = %v, want True", v, a.Get(v))
		}
	}
}

func TestUnitPropagateConflict(t *testing.T) {
	f := FromClauses([]int{1}, []int{-1})
	_, ok := UnitPropagate(f, NewAssignment(1))
	if ok {
		t.Fatal("conflict not detected")
	}
}

func TestUnitPropagateRespectsSeed(t *testing.T) {
	f := FromClauses([]int{1, 2}, []int{-2, 3})
	seed := NewAssignment(3)
	seed.Set(2, True)
	a, ok := UnitPropagate(f, seed)
	if !ok || a.Get(3) != True {
		t.Fatalf("propagation from seed wrong: ok=%v v3=%v", ok, a.Get(3))
	}
	if a.Get(1) != Unassigned {
		t.Fatal("v1 should stay unassigned (clause already satisfied)")
	}
	if seed.Get(3) != Unassigned {
		t.Fatal("UnitPropagate mutated its input assignment")
	}
}

func TestPureLiterals(t *testing.T) {
	f := FromClauses([]int{1, 2}, []int{1, -2}, []int{-3, 2})
	pure := PureLiterals(f)
	want := map[Lit]bool{Lit(1): true, Lit(-3): true}
	if len(pure) != 2 {
		t.Fatalf("PureLiterals = %v", pure)
	}
	for _, l := range pure {
		if !want[l] {
			t.Fatalf("unexpected pure literal %v", l)
		}
	}
}

func TestRemoveTautologies(t *testing.T) {
	f := FromClauses([]int{1, -1, 2}, []int{1, 2}, []int{3, -3})
	n := RemoveTautologies(f)
	if n != 2 || f.NumClauses() != 1 {
		t.Fatalf("removed %d, left %d clauses", n, f.NumClauses())
	}
}

func TestRemoveDuplicateLiterals(t *testing.T) {
	f := FromClauses([]int{1, 1, 2}, []int{2, 2, 2})
	n := RemoveDuplicateLiterals(f)
	if n != 3 {
		t.Fatalf("dropped %d literals, want 3", n)
	}
	if len(f.Clauses[0]) != 2 || len(f.Clauses[1]) != 1 {
		t.Fatalf("clauses after dedup: %v", f.Clauses)
	}
}

func TestReduce(t *testing.T) {
	f := FromClauses([]int{1, 2}, []int{-1, 3}, []int{-1, -2})
	a := NewAssignment(3)
	a.Set(1, True)
	r := Reduce(f, a)
	// clause 0 satisfied; clause 1 loses -1 → (3); clause 2 loses -1 → (-2).
	if r.NumClauses() != 2 {
		t.Fatalf("Reduce left %d clauses", r.NumClauses())
	}
	if len(r.Clauses[0]) != 1 || r.Clauses[0][0] != Lit(3) {
		t.Fatalf("reduced clause 0 = %v", r.Clauses[0])
	}
	if len(r.Clauses[1]) != 1 || r.Clauses[1][0] != Lit(-2) {
		t.Fatalf("reduced clause 1 = %v", r.Clauses[1])
	}
}

// randomFormula builds a random k-SAT-ish formula for property tests.
func randomFormula(rng *rand.Rand, nVars, nClauses, maxLen int) *Formula {
	f := New(nVars)
	for i := 0; i < nClauses; i++ {
		k := 1 + rng.Intn(maxLen)
		cl := make(Clause, 0, k)
		for j := 0; j < k; j++ {
			v := 1 + rng.Intn(nVars)
			l := Lit(v)
			if rng.Intn(2) == 0 {
				l = -l
			}
			cl = append(cl, l)
		}
		f.AddClause(cl)
	}
	return f
}

func randomAssignment(rng *rand.Rand, n int) Assignment {
	a := NewAssignment(n)
	for v := 1; v <= n; v++ {
		switch rng.Intn(3) {
		case 0:
			a.Set(v, True)
		case 1:
			a.Set(v, False)
		}
	}
	return a
}

// Property: UnitPropagate never unassigns variables and preserves assigned
// values, and on success the residual has no unit or empty unsatisfied
// clauses.
func TestUnitPropagateProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := randomFormula(r, 8, 12, 3)
		a := randomAssignment(r, 8)
		out, ok := UnitPropagate(f, a)
		for v := 1; v <= 8; v++ {
			if a.Get(v) != Unassigned && out.Get(v) != a.Get(v) {
				return false
			}
		}
		if !ok {
			return true
		}
		for _, c := range f.Clauses {
			if out.ClauseSatisfied(c) {
				continue
			}
			un := 0
			for _, l := range c {
				if !out.LitFalse(l) {
					un++
				}
			}
			if un <= 1 {
				return false // fixpoint not reached
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Reduce residual solutions compose with the partial assignment.
func TestReduceCompositionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := randomFormula(r, 6, 10, 3)
		partial := randomAssignment(r, 6)
		res := Reduce(f, partial)
		// Any completion of the residual that satisfies it, merged over the
		// partial assignment, must satisfy the original formula.
		full := partial.Clone()
		for v := 1; v <= 6; v++ {
			if full.Get(v) == Unassigned {
				if r.Intn(2) == 0 {
					full.Set(v, True)
				} else {
					full.Set(v, False)
				}
			}
		}
		if !full.Satisfies(res) {
			return true // completion does not solve residual; nothing to check
		}
		return full.Satisfies(f)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rng}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestStats(t *testing.T) {
	f := FromClauses([]int{1, 2, 3}, []int{-1, 2}, []int{-2, -3})
	s := ComputeStats(f)
	if s.NumVars != 3 || s.NumClauses != 3 || s.NumLiterals != 7 {
		t.Fatalf("Stats = %+v", s)
	}
	if s.MinClauseLen != 2 || s.MaxClauseLen != 3 || s.ActiveVars != 3 {
		t.Fatalf("Stats = %+v", s)
	}
	if s.LenHistogram[2] != 2 || s.LenHistogram[3] != 1 {
		t.Fatalf("histogram = %v", s.LenHistogram)
	}
	if s.Ratio() != 1.0 {
		t.Fatalf("Ratio = %v", s.Ratio())
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
	empty := ComputeStats(New(0))
	if empty.NumClauses != 0 || empty.Ratio() != 0 {
		t.Fatalf("empty stats = %+v", empty)
	}
}
