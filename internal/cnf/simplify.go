package cnf

// UnitPropagate applies unit-clause propagation to f under the partial
// assignment a, committing forced values into a copy of a. It returns the
// extended assignment and false if propagation derives a conflict (an
// unsatisfied clause with no unassigned literal).
//
// The formula is not modified. Propagation is run to fixpoint.
func UnitPropagate(f *Formula, a Assignment) (Assignment, bool) {
	out := a.Grow(f.NumVars).Clone()
	for {
		changed := false
		for _, c := range f.Clauses {
			sat := false
			var unassigned []Lit
			for _, l := range c {
				if out.LitTrue(l) {
					sat = true
					break
				}
				if !out.LitFalse(l) {
					unassigned = append(unassigned, l)
				}
			}
			if sat {
				continue
			}
			switch len(unassigned) {
			case 0:
				return out, false
			case 1:
				l := unassigned[0]
				if l.Pos() {
					out.Set(l.Var(), True)
				} else {
					out.Set(l.Var(), False)
				}
				changed = true
			}
		}
		if !changed {
			return out, true
		}
	}
}

// PureLiterals returns the literals whose complements never occur in f
// (restricted to variables that occur at all). Assigning a pure literal
// true never unsatisfies a clause.
func PureLiterals(f *Formula) []Lit {
	pos, neg := f.LitOccurrences()
	var out []Lit
	for v := 1; v <= f.NumVars; v++ {
		switch {
		case len(pos[v]) > 0 && len(neg[v]) == 0:
			out = append(out, Lit(v))
		case len(neg[v]) > 0 && len(pos[v]) == 0:
			out = append(out, Lit(-v))
		}
	}
	return out
}

// RemoveTautologies deletes tautological clauses (containing a variable in
// both polarities) and returns the number removed.
func RemoveTautologies(f *Formula) int {
	removed := 0
	w := 0
	for _, c := range f.Clauses {
		taut := false
		for i := 0; i < len(c) && !taut; i++ {
			for j := i + 1; j < len(c); j++ {
				if c[i] == c[j].Neg() {
					taut = true
					break
				}
			}
		}
		if taut {
			removed++
			continue
		}
		f.Clauses[w] = c
		w++
	}
	f.Clauses = f.Clauses[:w]
	return removed
}

// RemoveDuplicateLiterals removes repeated literals within each clause and
// returns the number of literals dropped.
func RemoveDuplicateLiterals(f *Formula) int {
	dropped := 0
	for i, c := range f.Clauses {
		seen := make(map[Lit]bool, len(c))
		w := 0
		for _, l := range c {
			if seen[l] {
				dropped++
				continue
			}
			seen[l] = true
			c[w] = l
			w++
		}
		f.Clauses[i] = c[:w]
	}
	return dropped
}

// Reduce returns the residual formula of f under partial assignment a:
// satisfied clauses are dropped, false literals are removed from the
// remaining clauses. The result shares no storage with f. Variables keep
// their original indices (NumVars is unchanged) so solutions of the
// residual compose with a directly.
func Reduce(f *Formula, a Assignment) *Formula {
	out := New(f.NumVars)
	for _, c := range f.Clauses {
		if a.ClauseSatisfied(c) {
			continue
		}
		red := make(Clause, 0, len(c))
		for _, l := range c {
			if !a.LitFalse(l) {
				red = append(red, l)
			}
		}
		out.Clauses = append(out.Clauses, red)
	}
	return out
}
