// Package cnf provides the Boolean-formula substrate for the EC engine:
// literals, clauses, formulas in conjunctive normal form, tri-state
// assignments, DIMACS I/O, and the structural operations (variable
// elimination, clause addition/removal) that the engineering-change model
// of the paper is built on.
//
// Variables are numbered 1..n as in the DIMACS convention. A literal is a
// non-zero integer: +v for the positive literal of variable v, -v for the
// negative literal.
package cnf

import (
	"fmt"
	"sort"
	"strings"
)

// Lit is a DIMACS-style literal: +v or -v for variable v >= 1.
// The zero value is not a valid literal.
type Lit int

// Var returns the variable of the literal (always positive).
func (l Lit) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Pos reports whether the literal is the positive polarity of its variable.
func (l Lit) Pos() bool { return l > 0 }

// Neg returns the complementary literal.
func (l Lit) Neg() Lit { return -l }

// String renders the literal in DIMACS form ("3" or "-3").
func (l Lit) String() string { return fmt.Sprintf("%d", int(l)) }

// Clause is a disjunction of literals. Clauses are value-like: operations
// on formulas copy clauses rather than aliasing them unless documented.
type Clause []Lit

// Has reports whether the clause contains the exact literal l.
func (c Clause) Has(l Lit) bool {
	for _, x := range c {
		if x == l {
			return true
		}
	}
	return false
}

// HasVar reports whether the clause mentions variable v in either polarity.
func (c Clause) HasVar(v int) bool {
	for _, x := range c {
		if x.Var() == v {
			return true
		}
	}
	return false
}

// Clone returns an independent copy of the clause.
func (c Clause) Clone() Clause {
	out := make(Clause, len(c))
	copy(out, c)
	return out
}

// Normalize sorts the literals by variable (positive before negative within
// a variable) and removes duplicate literals. It reports whether the clause
// is a tautology (contains both polarities of some variable). Tautological
// clauses are left unmodified apart from sorting.
func (c *Clause) Normalize() (tautology bool) {
	cl := *c
	sort.Slice(cl, func(i, j int) bool {
		vi, vj := cl[i].Var(), cl[j].Var()
		if vi != vj {
			return vi < vj
		}
		return cl[i] > cl[j] // positive literal first
	})
	w := 0
	for i := 0; i < len(cl); i++ {
		if i > 0 && cl[i] == cl[i-1] {
			continue
		}
		if i > 0 && cl[i].Var() == cl[i-1].Var() && cl[i] != cl[i-1] {
			tautology = true
		}
		cl[w] = cl[i]
		w++
	}
	*c = cl[:w]
	return tautology
}

// String renders the clause as "(v1 + v3' + v5)" in the paper's notation.
func (c Clause) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, l := range c {
		if i > 0 {
			b.WriteString(" + ")
		}
		fmt.Fprintf(&b, "v%d", l.Var())
		if !l.Pos() {
			b.WriteByte('\'')
		}
	}
	b.WriteByte(')')
	return b.String()
}

// Formula is a CNF formula: a conjunction of clauses over variables
// 1..NumVars. NumVars may exceed the largest variable actually mentioned
// (DIMACS headers allow this, and the EC variable-addition operation
// relies on it).
type Formula struct {
	NumVars int
	Clauses []Clause
}

// New returns an empty formula over n variables.
func New(n int) *Formula {
	if n < 0 {
		n = 0
	}
	return &Formula{NumVars: n}
}

// FromClauses builds a formula from literal slices, growing NumVars to the
// largest mentioned variable.
func FromClauses(clauses ...[]int) *Formula {
	f := New(0)
	for _, raw := range clauses {
		cl := make(Clause, len(raw))
		for i, l := range raw {
			cl[i] = Lit(l)
		}
		f.AddClause(cl)
	}
	return f
}

// AddClause appends a copy of cl to the formula, growing NumVars as needed.
// It returns the index of the added clause.
func (f *Formula) AddClause(cl Clause) int {
	cp := cl.Clone()
	for _, l := range cp {
		if l == 0 {
			panic("cnf: zero literal in clause")
		}
		if v := l.Var(); v > f.NumVars {
			f.NumVars = v
		}
	}
	f.Clauses = append(f.Clauses, cp)
	return len(f.Clauses) - 1
}

// NumClauses returns the number of clauses.
func (f *Formula) NumClauses() int { return len(f.Clauses) }

// Clone returns a deep copy of the formula.
func (f *Formula) Clone() *Formula {
	out := New(f.NumVars)
	out.Clauses = make([]Clause, len(f.Clauses))
	for i, c := range f.Clauses {
		out.Clauses[i] = c.Clone()
	}
	return out
}

// RemoveClause deletes the clause at index i, preserving the order of the
// remaining clauses.
func (f *Formula) RemoveClause(i int) {
	if i < 0 || i >= len(f.Clauses) {
		panic(fmt.Sprintf("cnf: RemoveClause index %d out of range [0,%d)", i, len(f.Clauses)))
	}
	f.Clauses = append(f.Clauses[:i], f.Clauses[i+1:]...)
}

// AddVariable grows the variable universe by one and returns the new
// variable's index. Per §6 of the paper, adding a variable is a relaxing
// change: any prior satisfying assignment extends with a don't-care value.
func (f *Formula) AddVariable() int {
	f.NumVars++
	return f.NumVars
}

// EliminateVariable removes variable v from the formula in the paper's §1
// sense: every literal of v is deleted from every clause. Clauses that
// become empty are kept as empty clauses (an empty clause is unsatisfiable,
// and callers detect this through Assignment.Satisfies or HasEmptyClause).
// The variable index itself remains in the universe so that clause/variable
// indices of unrelated parts of the instance are stable across the change —
// this mirrors how an engineering change alters a specification without
// renumbering the rest of the design.
func (f *Formula) EliminateVariable(v int) {
	if v < 1 || v > f.NumVars {
		panic(fmt.Sprintf("cnf: EliminateVariable %d out of range [1,%d]", v, f.NumVars))
	}
	for i, c := range f.Clauses {
		w := 0
		for _, l := range c {
			if l.Var() != v {
				c[w] = l
				w++
			}
		}
		f.Clauses[i] = c[:w]
	}
}

// HasEmptyClause reports whether any clause is empty (trivially
// unsatisfiable).
func (f *Formula) HasEmptyClause() bool {
	for _, c := range f.Clauses {
		if len(c) == 0 {
			return true
		}
	}
	return false
}

// MaxVar returns the largest variable index actually mentioned in a clause
// (0 for a formula with no literals).
func (f *Formula) MaxVar() int {
	max := 0
	for _, c := range f.Clauses {
		for _, l := range c {
			if v := l.Var(); v > max {
				max = v
			}
		}
	}
	return max
}

// Vars returns the sorted set of variables that occur in at least one
// clause.
func (f *Formula) Vars() []int {
	seen := make(map[int]bool)
	for _, c := range f.Clauses {
		for _, l := range c {
			seen[l.Var()] = true
		}
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Occurrences returns, for each variable 1..NumVars, the clause indices in
// which the variable occurs (either polarity). Index 0 of the returned
// slice is unused so that occ[v] addresses variable v directly.
func (f *Formula) Occurrences() [][]int {
	occ := make([][]int, f.NumVars+1)
	for i, c := range f.Clauses {
		for _, l := range c {
			v := l.Var()
			n := len(occ[v])
			if n == 0 || occ[v][n-1] != i {
				occ[v] = append(occ[v], i)
			}
		}
	}
	return occ
}

// LitOccurrences returns, for each literal, the clause indices containing
// exactly that literal. The first return value indexes positive literals
// (pos[v]), the second negative literals (neg[v]); index 0 is unused.
func (f *Formula) LitOccurrences() (pos, neg [][]int) {
	pos = make([][]int, f.NumVars+1)
	neg = make([][]int, f.NumVars+1)
	for i, c := range f.Clauses {
		for _, l := range c {
			if l.Pos() {
				pos[l.Var()] = append(pos[l.Var()], i)
			} else {
				neg[l.Var()] = append(neg[l.Var()], i)
			}
		}
	}
	return pos, neg
}

// Validate checks structural invariants: no zero literals and no literal
// referencing a variable beyond NumVars.
func (f *Formula) Validate() error {
	for i, c := range f.Clauses {
		for _, l := range c {
			if l == 0 {
				return fmt.Errorf("cnf: clause %d contains zero literal", i)
			}
			if v := l.Var(); v > f.NumVars {
				return fmt.Errorf("cnf: clause %d mentions variable %d > NumVars %d", i, v, f.NumVars)
			}
		}
	}
	return nil
}

// String renders the formula in the paper's product-of-sums notation.
func (f *Formula) String() string {
	var b strings.Builder
	for _, c := range f.Clauses {
		b.WriteString(c.String())
	}
	return b.String()
}

// Equal reports whether two formulas have identical clause lists (same
// order, same literal order) and the same variable universe. It is intended
// for tests.
func (f *Formula) Equal(g *Formula) bool {
	if f.NumVars != g.NumVars || len(f.Clauses) != len(g.Clauses) {
		return false
	}
	for i := range f.Clauses {
		if len(f.Clauses[i]) != len(g.Clauses[i]) {
			return false
		}
		for j := range f.Clauses[i] {
			if f.Clauses[i][j] != g.Clauses[i][j] {
				return false
			}
		}
	}
	return true
}
