package cnf

import (
	"testing"
)

func TestLitBasics(t *testing.T) {
	cases := []struct {
		l    Lit
		v    int
		pos  bool
		comp Lit
	}{
		{Lit(3), 3, true, Lit(-3)},
		{Lit(-7), 7, false, Lit(7)},
		{Lit(1), 1, true, Lit(-1)},
	}
	for _, c := range cases {
		if c.l.Var() != c.v {
			t.Errorf("Lit(%d).Var() = %d, want %d", c.l, c.l.Var(), c.v)
		}
		if c.l.Pos() != c.pos {
			t.Errorf("Lit(%d).Pos() = %v, want %v", c.l, c.l.Pos(), c.pos)
		}
		if c.l.Neg() != c.comp {
			t.Errorf("Lit(%d).Neg() = %d, want %d", c.l, c.l.Neg(), c.comp)
		}
	}
}

func TestClauseHasAndClone(t *testing.T) {
	c := Clause{1, -3, 5}
	if !c.Has(-3) || c.Has(3) || !c.HasVar(3) || c.HasVar(2) {
		t.Fatalf("Has/HasVar wrong on %v", c)
	}
	cp := c.Clone()
	cp[0] = 9
	if c[0] != 1 {
		t.Fatal("Clone aliases the original clause")
	}
}

func TestClauseNormalize(t *testing.T) {
	c := Clause{5, -3, 5, 1}
	taut := c.Normalize()
	if taut {
		t.Fatal("non-tautology reported as tautology")
	}
	want := Clause{1, -3, 5}
	if len(c) != len(want) {
		t.Fatalf("Normalize = %v, want %v", c, want)
	}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("Normalize = %v, want %v", c, want)
		}
	}

	c2 := Clause{2, -2, 1}
	if !c2.Normalize() {
		t.Fatal("tautology not detected")
	}
}

func TestFormulaAddRemoveClause(t *testing.T) {
	f := New(3)
	i := f.AddClause(Clause{1, -2})
	if i != 0 || f.NumClauses() != 1 {
		t.Fatalf("AddClause index=%d clauses=%d", i, f.NumClauses())
	}
	f.AddClause(Clause{3})
	f.AddClause(Clause{-1, 2, 3})
	f.RemoveClause(1)
	if f.NumClauses() != 2 {
		t.Fatalf("RemoveClause left %d clauses", f.NumClauses())
	}
	if !f.Clauses[1].Has(-1) {
		t.Fatal("RemoveClause did not preserve order")
	}
}

func TestFormulaGrowsNumVars(t *testing.T) {
	f := New(0)
	f.AddClause(Clause{4, -9})
	if f.NumVars != 9 {
		t.Fatalf("NumVars = %d, want 9", f.NumVars)
	}
}

func TestAddClauseCopies(t *testing.T) {
	f := New(2)
	cl := Clause{1, 2}
	f.AddClause(cl)
	cl[0] = -1
	if f.Clauses[0][0] != 1 {
		t.Fatal("AddClause aliases caller storage")
	}
}

func TestEliminateVariable(t *testing.T) {
	// Intro example of the paper (§1): F = (v1+v3'+v5')(v2+v3'+v5')(v2+v4+v5)(v3'+v4').
	f := FromClauses(
		[]int{1, -3, -5},
		[]int{2, -3, -5},
		[]int{2, 4, 5},
		[]int{-3, -4},
	)
	f.EliminateVariable(3)
	if f.Clauses[0].HasVar(3) || f.Clauses[3].HasVar(3) {
		t.Fatal("variable 3 still present after elimination")
	}
	if len(f.Clauses[3]) != 1 || f.Clauses[3][0] != Lit(-4) {
		t.Fatalf("clause 4 after elimination = %v, want (v4')", f.Clauses[3])
	}
	// Solution E = {1,1,0,1,0}: after eliminating v3, clause f4 = (v4') is
	// unsatisfied (v4=1), and flipping v4 to 0 repairs it — the paper's
	// enabling-EC narrative.
	e := AssignmentFromBools(true, true, false, true, false)
	if e.ClauseSatisfied(f.Clauses[3]) {
		t.Fatal("expected clause 4 unsatisfied under E after eliminating v3")
	}
	e.Set(4, False)
	if !e.Satisfies(f) {
		t.Fatal("flipping v4 should repair the formula, per the paper's example")
	}
}

func TestEliminateVariableCanEmptyClause(t *testing.T) {
	f := FromClauses([]int{2}, []int{1, 2})
	f.EliminateVariable(2)
	if !f.HasEmptyClause() {
		t.Fatal("expected an empty clause after eliminating the only literal")
	}
}

func TestAddVariable(t *testing.T) {
	f := New(3)
	v := f.AddVariable()
	if v != 4 || f.NumVars != 4 {
		t.Fatalf("AddVariable = %d (NumVars %d), want 4", v, f.NumVars)
	}
}

func TestOccurrences(t *testing.T) {
	f := FromClauses([]int{1, -2}, []int{2, 3}, []int{-1, -2, 3})
	occ := f.Occurrences()
	if len(occ[1]) != 2 || occ[1][0] != 0 || occ[1][1] != 2 {
		t.Fatalf("occ[1] = %v", occ[1])
	}
	if len(occ[2]) != 3 {
		t.Fatalf("occ[2] = %v", occ[2])
	}
	pos, neg := f.LitOccurrences()
	if len(pos[2]) != 1 || pos[2][0] != 1 {
		t.Fatalf("pos[2] = %v", pos[2])
	}
	if len(neg[2]) != 2 {
		t.Fatalf("neg[2] = %v", neg[2])
	}
}

func TestVarsAndMaxVar(t *testing.T) {
	f := New(10)
	f.AddClause(Clause{2, -5})
	vars := f.Vars()
	if len(vars) != 2 || vars[0] != 2 || vars[1] != 5 {
		t.Fatalf("Vars = %v", vars)
	}
	if f.MaxVar() != 5 {
		t.Fatalf("MaxVar = %d", f.MaxVar())
	}
}

func TestValidate(t *testing.T) {
	f := New(2)
	f.Clauses = append(f.Clauses, Clause{1, 3}) // bypass AddClause growth
	if err := f.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range variable")
	}
	f2 := New(2)
	f2.Clauses = append(f2.Clauses, Clause{0})
	if err := f2.Validate(); err == nil {
		t.Fatal("Validate accepted zero literal")
	}
	f3 := FromClauses([]int{1, -2})
	if err := f3.Validate(); err != nil {
		t.Fatalf("Validate rejected valid formula: %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	f := FromClauses([]int{1, 2}, []int{-1, 3})
	g := f.Clone()
	g.Clauses[0][0] = -9
	g.AddClause(Clause{2})
	if f.Clauses[0][0] != 1 || f.NumClauses() != 2 {
		t.Fatal("Clone shares storage with original")
	}
	if !f.Equal(f.Clone()) {
		t.Fatal("Equal(Clone) = false")
	}
	if f.Equal(g) {
		t.Fatal("Equal = true for distinct formulas")
	}
}

func TestFormulaString(t *testing.T) {
	f := FromClauses([]int{1, -3, -5})
	if got, want := f.String(), "(v1 + v3' + v5')"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}
