// Package domain defines the pluggable problem-domain interface behind
// the generic engineering-change engine. The paper's Figure-1 flow —
// initial solve → change → enabling / fast / preserving EC — is domain
// agnostic: every problem class that can be encoded as a 0-1 ILP and
// re-solved incrementally plugs in through one Domain value instead of
// re-implementing the EC triad.
//
// A Domain carries opaque problem, solution, and change values (typed
// internally by the adapter; the engine never inspects them) and exposes
// the hooks the engine needs:
//
//   - Encode builds the base ILP of a problem, Decode/WarmStart translate
//     between domain solutions and ILP vectors;
//   - ApplyChanges/Tightening implement the specification-change model;
//   - AffectedRegion extracts the fast-EC sub-instance (§6) with its
//     escalation ladder and merge rule;
//   - PreserveTerms rewrites an encoding's objective into the §7
//     agreement-maximizing form;
//   - EnableTerms augments an encoding with §5 flexibility rewards;
//   - ParseProblem/ParseChange/Render and their inverses RenderProblem/
//     RenderChange/ParseSolution are the JSON wire codecs the session
//     service uses to carry any domain over HTTP and to persist sessions
//     durably (internal/store journals changes and snapshots problems and
//     solutions in exactly these wire forms).
//
// The engine functions (Solve, Enable, Fast, Preserve), the generic
// Figure-1 Flow, and the conformance suite live in this package too, so a
// new domain only writes an adapter and inherits the whole serving stack.
// Built-in adapters: CNF/set-cover (internal/core), graph coloring
// (internal/coloring), scheduling (internal/sched), and min-cut netlist
// partitioning (internal/partition).
package domain

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"ilpec/internal/ilp"
)

// Encoding binds an ILP model to the domain logic that produced it.
type Encoding interface {
	// ILP returns the underlying model. The engine may mutate it through
	// PreserveTerms/EnableTerms before solving.
	ILP() *ilp.Model
	// Decode converts an ILP solution into a domain solution value.
	Decode(sol ilp.Solution) (any, error)
	// WarmStart projects a domain solution onto the model as a branching
	// guide. ok is false when the solution cannot be projected (the engine
	// then solves cold).
	WarmStart(sol any) (ws ilp.Solution, ok bool)
}

// RHSEdit is one right-hand-side edit of a Delta, addressing a named row.
type RHSEdit struct {
	Name string
	RHS  float64
}

// ObjEdit is one objective-coefficient edit of a Delta.
type ObjEdit struct {
	Var  int
	Coef float64
}

// Delta is a set of row/objective edits that turn the ILP encoding of a
// problem into the encoding of its changed version — the incremental
// alternative to a full re-encode. The edits address rows by the names
// the adapter's Encode gave them, so adapters that emit deltas must name
// every row a change can touch stably (content-derived names, not
// positional ones).
type Delta struct {
	AddRows    []ilp.Row
	RemoveRows []string
	SetRHS     []RHSEdit
	SetObj     []ObjEdit
}

// DropRow records removal of the named row. When the same batch already
// added a row of that name, the pending add is cancelled instead —
// Apply replays removals before adds, so an add-then-remove pair must
// not survive into the edit lists.
func (d *Delta) DropRow(name string) {
	for i := range d.AddRows {
		if d.AddRows[i].Name == name {
			d.AddRows = append(d.AddRows[:i], d.AddRows[i+1:]...)
			return
		}
	}
	d.RemoveRows = append(d.RemoveRows, name)
}

// Empty reports whether the delta carries no edits.
func (d *Delta) Empty() bool {
	return d == nil || (len(d.AddRows) == 0 && len(d.RemoveRows) == 0 &&
		len(d.SetRHS) == 0 && len(d.SetObj) == 0)
}

// Apply replays the delta onto a live solver instance.
func (d *Delta) Apply(inst *ilp.Instance) {
	if d == nil {
		return
	}
	if len(d.RemoveRows) > 0 {
		inst.RemoveRows(d.RemoveRows)
	}
	if len(d.AddRows) > 0 {
		inst.AddRows(d.AddRows)
	}
	for _, e := range d.SetRHS {
		inst.SetRHS(e.Name, e.RHS)
	}
	for _, e := range d.SetObj {
		inst.SetObj(e.Var, e.Coef)
	}
}

// DeltaEncoder is the optional Domain extension behind persistent solver
// instances: adapters that implement it can translate a change batch into
// row/objective edits against the previous encoding instead of
// re-encoding the whole problem. EncodeDelta returns ok=false when the
// batch contains a change the adapter cannot express as a delta (e.g.
// one that grows the variable set); the caller then falls back to a full
// re-encode and rebuilds its instance.
//
// prev supplies the variable mapping; prevProblem is the problem prev's
// model CURRENTLY encodes — after earlier deltas it differs from the
// problem prev was originally built from, so the caller (see Instance)
// tracks it across syncs and passes it here. The returned delta, applied
// to prev's model, must produce a model equivalent to freshly encoding
// the changed problem (same ilp.ModelFingerprint).
type DeltaEncoder interface {
	EncodeDelta(prev Encoding, prevProblem any, changes []any) (*Delta, bool)
}

// Region is a fast-EC sub-instance (§6): the subset of decisions that may
// need new values after a tightening change, with the escalation ladder
// used when the frozen context makes the subset infeasible.
type Region interface {
	// Size is the number of decision units being re-decided.
	Size() int
	// Full reports whether the region covers the whole instance.
	Full() bool
	// Encoding builds the sub-instance encoding for the current region
	// (rebuilt after every escalation).
	Encoding() (Encoding, error)
	// Merge folds the decoded sub-solution into the full solution.
	Merge(sub any) (any, error)
	// Escalate grows the region one step; it reports whether it grew.
	Escalate() bool
	// EscalateToFull jumps to the full instance (the last-resort fallback).
	EscalateToFull()
}

// FlexReport is the domain-generic §5 flexibility audit.
type FlexReport struct {
	// Total is the number of audited units (clauses, vertices, ops, ...).
	Total int `json:"total"`
	// Flexible counts units that can absorb a local change.
	Flexible int `json:"flexible"`
	// Detail carries domain-specific extras (e.g. CNF k-satisfied counts).
	Detail map[string]int `json:"detail,omitempty"`
}

// Fraction is Flexible/Total (1 for empty reports).
func (r FlexReport) Fraction() float64 {
	if r.Total == 0 {
		return 1
	}
	return float64(r.Flexible) / float64(r.Total)
}

// EnableOptions configures enabling EC generically. Domains map the
// fields onto their own formulation and may honor further knobs through
// adapter construction options.
type EnableOptions struct {
	// Hard requires flexibility everywhere (constraint mode); otherwise
	// flexibility is a weighted objective reward.
	Hard bool
	// K is the flexibility level (domain-interpreted; CNF: clause
	// satisfaction level, default 2).
	K int
	// Weight is the objective reward per flexible unit (default 1).
	Weight float64
}

// FastOptions configures the generic fast-EC engine.
type FastOptions struct {
	// Solve configures the exact sub-instance solver (WarmStart is
	// overwritten by the engine).
	Solve ilp.Options
	// MaxEscalations bounds region growth before the full-instance
	// fallback (default 3).
	MaxEscalations int
}

// FastStats reports what the fast-EC engine did.
type FastStats struct {
	// AlreadyValid is true when the previous solution survived the change
	// and no solver ran.
	AlreadyValid bool
	// SubSize is the number of re-decided units of the final region.
	SubSize int
	// SubRows is the row count of the final sub-model (0 when no solver
	// ran).
	SubRows int
	// Escalations counts region growths used.
	Escalations int
	// FullResolve is true when the full-instance fallback ran.
	FullResolve bool
	// ILP carries the final solve statistics.
	ILP ilp.Result
}

// Domain is one pluggable problem class. Problem, solution, and change
// values are opaque to the engine; every method panics or errors when
// handed a value of the wrong dynamic type (adapters document theirs).
//
// All methods must be safe for concurrent use on distinct values; the
// engine never mutates a problem or solution it passed in.
type Domain interface {
	// Name is the registry key ("cnf", "coloring", "sched", "partition").
	Name() string

	// Validate checks a problem for structural consistency (including
	// trivially unsatisfiable shapes a solver run would waste time on).
	Validate(problem any) error
	// CloneProblem deep-copies a problem.
	CloneProblem(problem any) any
	// ProblemSize reports the decision-unit and constraint counts
	// (variables/clauses, vertices/edges, ops/deps, ...).
	ProblemSize(problem any) (units, constraints int)
	// ParseProblem decodes the JSON wire form of a problem.
	ParseProblem(spec json.RawMessage) (any, error)
	// RenderProblem returns the JSON-marshalable wire form of a problem —
	// the inverse of ParseProblem. Round-tripping must reconstruct an
	// equivalent problem (same FingerprintProblem digest); the session
	// store snapshots problems in this form.
	RenderProblem(problem any) any

	// ParseChange decodes the JSON wire form of one change.
	ParseChange(spec json.RawMessage) (any, error)
	// RenderChange returns the JSON-marshalable wire form of one change —
	// the inverse of ParseChange. The session store journals queued
	// changes in this form, so replaying a rendered-then-parsed change
	// must produce the same problem as applying the original.
	RenderChange(change any) any
	// ApplyChanges returns the changed problem; the input is not modified.
	ApplyChanges(problem any, changes []any) (any, error)
	// Tightening reports whether a change can invalidate existing
	// solutions (§6; relaxing changes skip the solver entirely).
	Tightening(change any) bool

	// CloneSolution deep-copies a solution.
	CloneSolution(sol any) any
	// ExtendSolution adapts a previous solution to a relax-only changed
	// problem (growing the universe, filling trivially free decisions).
	ExtendSolution(problem, prev any) (any, error)
	// Verify checks that a solution is valid for a problem.
	Verify(problem, sol any) error
	// Render returns the JSON-marshalable wire form of a solution.
	Render(problem, sol any) any
	// ParseSolution decodes the wire form produced by Render back into a
	// domain solution for problem — the inverse of Render. The session
	// store rehydrates persisted solutions through it.
	ParseSolution(problem any, spec json.RawMessage) (any, error)
	// Agreement is the fraction of prev's decisions kept by next (§7).
	Agreement(prev, next any) float64
	// DontCares counts uncommitted decisions (CNF don't-cares; domains
	// without the notion return 0).
	DontCares(problem, sol any) int
	// Flex audits the §5 flexibility of a solution at level k.
	Flex(problem, sol any, k int) (FlexReport, error)

	// Encode builds the base ILP encoding of a problem.
	Encode(problem any) (Encoding, error)
	// PreserveTerms rewrites enc's objective to maximize agreement with
	// prev (§7).
	PreserveTerms(enc Encoding, problem, prev any) error
	// EnableTerms augments enc with the §5 flexibility formulation.
	EnableTerms(enc Encoding, problem any, opts EnableOptions) error
	// AffectedRegion extracts the fast-EC region of a changed problem
	// against the previous solution. A nil Region means prev is still
	// valid as-is.
	AffectedRegion(problem, prev any) (Region, error)

	// FingerprintProblem writes a canonical byte encoding of the problem
	// (used for solve-cache keys; must capture everything that determines
	// the solver's answer).
	FingerprintProblem(w io.Writer, problem any)
	// FingerprintSolution writes a canonical byte encoding of a solution.
	FingerprintSolution(w io.Writer, sol any)
}

// ---- strategies ----------------------------------------------------------

// Strategy selects how a tightening change batch is re-solved.
type Strategy int

const (
	// FastEC re-solves only the affected region (§6).
	FastEC Strategy = iota
	// PreservingEC re-solves under the agreement-maximizing objective (§7).
	PreservingEC
	// Replan solves the changed instance from scratch (non-EC baseline).
	Replan
)

// String renders the strategy.
func (s Strategy) String() string {
	switch s {
	case FastEC:
		return "fast"
	case PreservingEC:
		return "preserving"
	default:
		return "replan"
	}
}

// ParseStrategy maps a strategy name (case-insensitive) to a Strategy.
func ParseStrategy(s string) (Strategy, error) {
	switch strings.ToLower(s) {
	case "fast":
		return FastEC, nil
	case "preserving", "preserve":
		return PreservingEC, nil
	case "replan":
		return Replan, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q (want fast, preserving, or replan)", s)
	}
}

// ---- registry ------------------------------------------------------------

// Registry maps domain names to adapters.
type Registry struct {
	mu sync.RWMutex
	m  map[string]Domain
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: make(map[string]Domain)}
}

// Register installs d under d.Name(), replacing any previous adapter of
// the same name. It panics on an empty name (adapter bug).
func (r *Registry) Register(d Domain) {
	if d == nil || d.Name() == "" {
		panic("domain: Register with nil or unnamed domain")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m[d.Name()] = d
}

// Get looks an adapter up by name.
func (r *Registry) Get(name string) (Domain, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.m[name]
	return d, ok
}

// Names returns the sorted registered names.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.m))
	for n := range r.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// defaultRegistry holds the process-wide adapters. Built-in domains
// self-register from their package init functions.
var defaultRegistry = NewRegistry()

// Register installs d in the default registry.
func Register(d Domain) { defaultRegistry.Register(d) }

// Get looks d up in the default registry.
func Get(name string) (Domain, bool) { return defaultRegistry.Get(name) }

// Names lists the default registry, sorted.
func Names() []string { return defaultRegistry.Names() }
