package domain

import (
	"fmt"

	"ilpec/internal/ilp"
)

// This file is the generic EC engine: the four solve entry points every
// domain inherits. Each drives the domain's Encoding/Region hooks through
// the exact 0-1 ILP solver and hands back a verified domain solution.

// Solve runs the base solve of a problem (initial solve or replan). warm,
// when non-nil, guides branching toward an existing solution.
func Solve(d Domain, problem any, opts ilp.Options, warm any) (any, ilp.Result, error) {
	enc, err := d.Encode(problem)
	if err != nil {
		return nil, ilp.Result{}, fmt.Errorf("domain %s: encode: %w", d.Name(), err)
	}
	return solveEncoding(d, problem, enc, opts, warm)
}

// Enable runs the §5 enabling-EC solve: the base encoding augmented with
// the domain's flexibility formulation.
func Enable(d Domain, problem any, eopts EnableOptions, opts ilp.Options, warm any) (any, ilp.Result, error) {
	enc, err := d.Encode(problem)
	if err != nil {
		return nil, ilp.Result{}, fmt.Errorf("domain %s: encode: %w", d.Name(), err)
	}
	if err := d.EnableTerms(enc, problem, eopts); err != nil {
		return nil, ilp.Result{}, fmt.Errorf("domain %s: enable terms: %w", d.Name(), err)
	}
	return solveEncoding(d, problem, enc, opts, warm)
}

// Preserve runs the §7 preserving-EC solve: the base encoding under the
// agreement-maximizing objective against prev.
func Preserve(d Domain, problem, prev any, opts ilp.Options) (any, ilp.Result, error) {
	enc, err := d.Encode(problem)
	if err != nil {
		return nil, ilp.Result{}, fmt.Errorf("domain %s: encode: %w", d.Name(), err)
	}
	if err := d.PreserveTerms(enc, problem, prev); err != nil {
		return nil, ilp.Result{}, fmt.Errorf("domain %s: preserve terms: %w", d.Name(), err)
	}
	return solveEncoding(d, problem, enc, opts, prev)
}

// Fast runs the §6 fast-EC engine: extract the affected region, solve only
// that with everything else frozen, escalate on infeasibility, and fall
// back to the full instance as a last resort.
func Fast(d Domain, problem, prev any, opts FastOptions) (any, FastStats, error) {
	region, err := d.AffectedRegion(problem, prev)
	if err != nil {
		return nil, FastStats{}, fmt.Errorf("domain %s: affected region: %w", d.Name(), err)
	}
	if region == nil {
		// The previous solution survived the change. Extend it onto the
		// changed universe so the committed solution always spans the
		// problem (newly added units become explicit free decisions — the
		// same normal form a session rehydrated from the store produces);
		// fall back to the untouched solution for domains that cannot
		// extend here.
		if next, err := d.ExtendSolution(problem, prev); err == nil {
			return next, FastStats{AlreadyValid: true}, nil
		}
		return d.CloneSolution(prev), FastStats{AlreadyValid: true}, nil
	}
	maxEsc := opts.MaxEscalations
	if maxEsc <= 0 {
		maxEsc = 3
	}
	var stats FastStats
	for {
		enc, err := region.Encoding()
		if err != nil {
			return nil, stats, fmt.Errorf("domain %s: region encoding: %w", d.Name(), err)
		}
		solveOpts := opts.Solve
		if ws, ok := enc.WarmStart(prev); ok {
			solveOpts.WarmStart = ws
		} else {
			solveOpts.WarmStart = nil
		}
		res := ilp.Solve(enc.ILP(), solveOpts)
		switch res.Status {
		case ilp.Optimal, ilp.Feasible:
			sub, err := enc.Decode(res.Solution)
			if err != nil {
				return nil, stats, fmt.Errorf("domain %s: decode: %w", d.Name(), err)
			}
			merged, err := region.Merge(sub)
			if err != nil {
				return nil, stats, fmt.Errorf("domain %s: merge: %w", d.Name(), err)
			}
			if err := d.Verify(problem, merged); err != nil {
				return nil, stats, fmt.Errorf("domain %s: fast-EC solution invalid (internal error): %w", d.Name(), err)
			}
			stats.SubSize = region.Size()
			stats.SubRows = enc.ILP().NumRows()
			stats.FullResolve = region.Full()
			stats.ILP = res
			return merged, stats, nil
		case ilp.Infeasible:
			if region.Full() {
				return nil, stats, fmt.Errorf("domain %s: changed problem is infeasible", d.Name())
			}
			if stats.Escalations >= maxEsc || !region.Escalate() {
				region.EscalateToFull()
			}
			stats.Escalations++
		default:
			return nil, stats, fmt.Errorf("domain %s: fast-EC sub-solve hit limits (%s)", d.Name(), res.Status)
		}
	}
}

// solveEncoding runs one exact solve on a prepared encoding and returns
// the verified domain solution.
func solveEncoding(d Domain, problem any, enc Encoding, opts ilp.Options, warm any) (any, ilp.Result, error) {
	if warm != nil {
		if ws, ok := enc.WarmStart(warm); ok {
			opts.WarmStart = ws
		}
	}
	res := ilp.Solve(enc.ILP(), opts)
	switch res.Status {
	case ilp.Optimal, ilp.Feasible:
		sol, err := enc.Decode(res.Solution)
		if err != nil {
			return nil, res, fmt.Errorf("domain %s: decode: %w", d.Name(), err)
		}
		if err := d.Verify(problem, sol); err != nil {
			return nil, res, fmt.Errorf("domain %s: decoded solution invalid (internal error): %w", d.Name(), err)
		}
		return sol, res, nil
	case ilp.Infeasible:
		return nil, res, fmt.Errorf("domain %s: problem is infeasible", d.Name())
	default:
		return nil, res, fmt.Errorf("domain %s: solve hit limits (%s)", d.Name(), res.Status)
	}
}

// AnyTightening reports whether any change in the batch is tightening
// under d.
func AnyTightening(d Domain, changes []any) bool {
	for _, c := range changes {
		if d.Tightening(c) {
			return true
		}
	}
	return false
}
