package domain

import (
	"bytes"
	"encoding/json"
	"testing"

	"ilpec/internal/ilp"
)

// Conformance is the fixture a Domain supplies for RunConformance: one
// small, quickly solvable instance together with change batches that
// exercise the whole EC triad.
type Conformance struct {
	// Problem is a small feasible instance.
	Problem any
	// ProblemJSON is the wire form of an equivalent problem (exercises
	// ParseProblem; optional when the domain has no wire form).
	ProblemJSON json.RawMessage
	// Tightening is a change batch with at least one tightening change
	// that keeps the changed problem feasible.
	Tightening []any
	// TighteningJSON is the wire form of Tightening (exercises
	// ParseChange; optional).
	TighteningJSON []json.RawMessage
	// Relaxing is a non-empty batch of relax-only changes.
	Relaxing []any
	// Enable configures the enabling-EC conformance solve.
	Enable EnableOptions
	// FlexK is the flexibility level passed to Flex.
	FlexK int
	// Solve bounds the conformance solves (defaults: no limits).
	Solve ilp.Options
}

// Fixtured is implemented by adapters that ship a conformance fixture.
type Fixtured interface {
	Conformance() Conformance
}

// RunConformance drives a Domain through the full generic EC contract:
// initial solve, enabling EC, relax-only extension, fast EC, preserving
// EC, replan, flexibility audit, wire codecs, and fingerprints. Every
// adapter runs it; a new domain passes this suite and inherits the
// session service unchanged.
//
// d must implement Fixtured.
func RunConformance(t *testing.T, d Domain) {
	t.Helper()
	fx, ok := d.(Fixtured)
	if !ok {
		t.Fatalf("domain %T does not provide a Conformance fixture", d)
	}
	c := fx.Conformance()
	if d.Name() == "" {
		t.Fatal("empty domain name")
	}
	if c.Problem == nil {
		t.Fatal("fixture has no problem")
	}
	if err := d.Validate(c.Problem); err != nil {
		t.Fatalf("fixture problem invalid: %v", err)
	}
	if d.CloneProblem(c.Problem) == nil {
		t.Fatal("CloneProblem returned nil")
	}
	units, _ := d.ProblemSize(c.Problem)
	if units <= 0 {
		t.Fatalf("ProblemSize units = %d, want > 0", units)
	}

	// Initial solve.
	sol, _, err := Solve(d, c.Problem, c.Solve, nil)
	if err != nil {
		t.Fatalf("initial solve: %v", err)
	}
	if err := d.Verify(c.Problem, sol); err != nil {
		t.Fatalf("initial solution invalid: %v", err)
	}
	if got := d.Agreement(sol, sol); got != 1 {
		t.Fatalf("self-agreement = %v, want 1", got)
	}
	if d.DontCares(c.Problem, sol) < 0 {
		t.Fatal("negative don't-care count")
	}
	if d.Render(c.Problem, sol) == nil {
		t.Fatal("Render returned nil")
	}
	if _, err := json.Marshal(d.Render(c.Problem, sol)); err != nil {
		t.Fatalf("rendered solution not JSON-marshalable: %v", err)
	}
	clone := d.CloneSolution(sol)
	if err := d.Verify(c.Problem, clone); err != nil {
		t.Fatalf("cloned solution invalid: %v", err)
	}

	// Enabling EC.
	enabled, _, err := Enable(d, c.Problem, c.Enable, c.Solve, sol)
	if err != nil {
		t.Fatalf("enabling EC: %v", err)
	}
	if err := d.Verify(c.Problem, enabled); err != nil {
		t.Fatalf("enabled solution invalid: %v", err)
	}

	// Flexibility audit.
	rep, err := d.Flex(c.Problem, enabled, c.FlexK)
	if err != nil {
		t.Fatalf("flex audit: %v", err)
	}
	if rep.Total < 0 || rep.Flexible < 0 || rep.Flexible > rep.Total {
		t.Fatalf("flex report out of range: %+v", rep)
	}
	if fr := rep.Fraction(); fr < 0 || fr > 1 {
		t.Fatalf("flex fraction %v", fr)
	}

	// Relax-only batch: the extended previous solution must stay valid.
	if len(c.Relaxing) == 0 {
		t.Fatal("fixture has no relaxing changes")
	}
	if AnyTightening(d, c.Relaxing) {
		t.Fatal("relaxing fixture contains a tightening change")
	}
	relaxed, err := d.ApplyChanges(c.Problem, c.Relaxing)
	if err != nil {
		t.Fatalf("apply relaxing: %v", err)
	}
	extended, err := d.ExtendSolution(relaxed, sol)
	if err != nil {
		t.Fatalf("extend after relax: %v", err)
	}
	if err := d.Verify(relaxed, extended); err != nil {
		t.Fatalf("extended solution invalid: %v", err)
	}

	// Tightening batch through all three re-solve strategies.
	if len(c.Tightening) == 0 {
		t.Fatal("fixture has no tightening changes")
	}
	if !AnyTightening(d, c.Tightening) {
		t.Fatal("tightening fixture has no tightening change")
	}
	changed, err := d.ApplyChanges(c.Problem, c.Tightening)
	if err != nil {
		t.Fatalf("apply tightening: %v", err)
	}
	if err := d.Validate(changed); err != nil {
		t.Fatalf("changed problem invalid: %v", err)
	}

	fastSol, stats, err := Fast(d, changed, sol, FastOptions{Solve: c.Solve})
	if err != nil {
		t.Fatalf("fast EC: %v", err)
	}
	if err := d.Verify(changed, fastSol); err != nil {
		t.Fatalf("fast-EC solution invalid: %v", err)
	}
	if !stats.AlreadyValid && stats.SubSize <= 0 {
		t.Fatalf("fast EC ran the solver with sub-size %d", stats.SubSize)
	}

	presSol, _, err := Preserve(d, changed, sol, c.Solve)
	if err != nil {
		t.Fatalf("preserving EC: %v", err)
	}
	if err := d.Verify(changed, presSol); err != nil {
		t.Fatalf("preserving solution invalid: %v", err)
	}
	if ag := d.Agreement(sol, presSol); ag < 0 || ag > 1 {
		t.Fatalf("agreement %v out of [0,1]", ag)
	}

	replanned, _, err := Solve(d, changed, c.Solve, sol)
	if err != nil {
		t.Fatalf("replan: %v", err)
	}
	if err := d.Verify(changed, replanned); err != nil {
		t.Fatalf("replanned solution invalid: %v", err)
	}

	// Wire codecs.
	if len(c.ProblemJSON) > 0 {
		p, err := d.ParseProblem(c.ProblemJSON)
		if err != nil {
			t.Fatalf("ParseProblem: %v", err)
		}
		if err := d.Validate(p); err != nil {
			t.Fatalf("parsed problem invalid: %v", err)
		}
	}
	if len(c.TighteningJSON) > 0 {
		parsed := make([]any, 0, len(c.TighteningJSON))
		for i, raw := range c.TighteningJSON {
			ch, err := d.ParseChange(raw)
			if err != nil {
				t.Fatalf("ParseChange %d: %v", i, err)
			}
			parsed = append(parsed, ch)
		}
		if _, err := d.ApplyChanges(c.Problem, parsed); err != nil {
			t.Fatalf("apply parsed changes: %v", err)
		}
	}
	if _, err := d.ParseChange(json.RawMessage(`{"kind":"no-such-change-kind"}`)); err == nil {
		t.Fatal("ParseChange accepted an unknown kind")
	}

	// Wire-codec inverses: RenderProblem / RenderChange / ParseSolution
	// must round-trip through their Parse counterparts with fingerprint
	// fidelity — the durable session store journals changes and snapshots
	// problems and solutions in exactly these forms, so a lossy codec
	// corrupts recovered sessions.
	rendered := d.RenderProblem(c.Problem)
	if rendered == nil {
		t.Fatal("RenderProblem returned nil")
	}
	rawProblem, err := json.Marshal(rendered)
	if err != nil {
		t.Fatalf("rendered problem not JSON-marshalable: %v", err)
	}
	reparsed, err := d.ParseProblem(rawProblem)
	if err != nil {
		t.Fatalf("ParseProblem(RenderProblem): %v", err)
	}
	if fp(d, reparsed) != fp(d, c.Problem) {
		t.Fatalf("problem wire roundtrip lost information: %s", rawProblem)
	}
	for name, batch := range map[string][]any{"tightening": c.Tightening, "relaxing": c.Relaxing} {
		replayed := make([]any, len(batch))
		for i, ch := range batch {
			rc := d.RenderChange(ch)
			if rc == nil {
				t.Fatalf("RenderChange(%s %d) returned nil", name, i)
			}
			raw, err := json.Marshal(rc)
			if err != nil {
				t.Fatalf("rendered %s change %d not JSON-marshalable: %v", name, i, err)
			}
			if replayed[i], err = d.ParseChange(raw); err != nil {
				t.Fatalf("ParseChange(RenderChange) %s %d: %v", name, i, err)
			}
		}
		direct, err := d.ApplyChanges(c.Problem, batch)
		if err != nil {
			t.Fatalf("apply %s batch: %v", name, err)
		}
		viaWire, err := d.ApplyChanges(c.Problem, replayed)
		if err != nil {
			t.Fatalf("apply replayed %s batch: %v", name, err)
		}
		if fp(d, direct) != fp(d, viaWire) {
			t.Fatalf("%s change wire roundtrip diverged", name)
		}
	}
	rawSol, err := json.Marshal(d.Render(c.Problem, sol))
	if err != nil {
		t.Fatalf("rendered solution not JSON-marshalable: %v", err)
	}
	solBack, err := d.ParseSolution(c.Problem, rawSol)
	if err != nil {
		t.Fatalf("ParseSolution(Render): %v", err)
	}
	if err := d.Verify(c.Problem, solBack); err != nil {
		t.Fatalf("roundtripped solution invalid: %v", err)
	}
	if fps(d, solBack) != fps(d, sol) {
		t.Fatalf("solution wire roundtrip lost information: %s", rawSol)
	}
	if _, err := d.ParseSolution(c.Problem, json.RawMessage(`"not-a-solution"`)); err == nil {
		t.Fatal("ParseSolution accepted garbage")
	}

	// Fingerprints: deterministic, and sensitive to the change batch and
	// the solution.
	if fp(d, c.Problem) != fp(d, c.Problem) {
		t.Fatal("problem fingerprint not deterministic")
	}
	if fp(d, c.Problem) == fp(d, changed) {
		t.Fatal("tightening change did not alter the problem fingerprint")
	}
	if fps(d, sol) != fps(d, sol) {
		t.Fatal("solution fingerprint not deterministic")
	}

	// Presolve + cuts differential: the reduced solve must reproduce the
	// raw kernel's status and objective on both the fixture problem and
	// the changed problem (ISSUE: reduced-vs-raw across every domain).
	for _, problem := range []any{c.Problem, changed} {
		enc, err := d.Encode(problem)
		if err != nil {
			t.Fatalf("encode for presolve differential: %v", err)
		}
		raw := ilp.Solve(enc.ILP(), c.Solve)
		reducedOpts := c.Solve
		reducedOpts.Presolve = true
		reducedOpts.Cuts = true
		reducedOpts.CutPool = ilp.NewCutPool()
		red := ilp.Solve(enc.ILP(), reducedOpts)
		if red.Status != raw.Status {
			t.Fatalf("presolve differential: status %v, want %v", red.Status, raw.Status)
		}
		if raw.Status == ilp.Optimal {
			if diff := red.Objective - raw.Objective; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("presolve differential: objective %v, want %v", red.Objective, raw.Objective)
			}
			if sol, err := enc.Decode(red.Solution); err != nil {
				t.Fatalf("presolve differential: decode reduced solution: %v", err)
			} else if err := d.Verify(problem, sol); err != nil {
				t.Fatalf("presolve differential: reduced solution invalid: %v", err)
			}
		}
	}

	// Delta-encoder leg: when the adapter implements DeltaEncoder, each
	// fixture batch applied as a delta onto a live instance of the
	// previous encoding must reproduce a full re-encode of the changed
	// problem — identical model fingerprint, identical status and
	// objective, and a solution the changed problem accepts. ok=false is
	// a clean skip: that batch is not delta-expressible for this adapter
	// (e.g. it grows the variable set), and the serving layer falls back
	// to a rebuild.
	if de, ok := d.(DeltaEncoder); ok {
		for name, batch := range map[string][]any{"tightening": c.Tightening, "relaxing": c.Relaxing} {
			prevEnc, err := d.Encode(c.Problem)
			if err != nil {
				t.Fatalf("encode for %s delta leg: %v", name, err)
			}
			delta, ok := de.EncodeDelta(prevEnc, c.Problem, batch)
			if !ok {
				t.Logf("%s batch not delta-expressible for %s; rebuild fallback", name, d.Name())
				continue
			}
			changedP, err := d.ApplyChanges(c.Problem, batch)
			if err != nil {
				t.Fatalf("apply %s batch for delta leg: %v", name, err)
			}
			freshEnc, err := d.Encode(changedP)
			if err != nil {
				t.Fatalf("re-encode for %s delta leg: %v", name, err)
			}
			inst := ilp.NewInstance(prevEnc.ILP())
			delta.Apply(inst)
			if got, want := inst.Fingerprint(), ilp.ModelFingerprint(freshEnc.ILP()); got != want {
				t.Fatalf("%s delta model fingerprint %x, re-encode %x", name, got, want)
			}
			dres := inst.Resolve(c.Solve)
			fres := ilp.Solve(freshEnc.ILP(), c.Solve)
			if dres.Status != fres.Status {
				t.Fatalf("%s delta status %v, re-encode %v", name, dres.Status, fres.Status)
			}
			if fres.Status == ilp.Optimal {
				if diff := dres.Objective - fres.Objective; diff > 1e-6 || diff < -1e-6 {
					t.Fatalf("%s delta objective %v, re-encode %v", name, dres.Objective, fres.Objective)
				}
				sol, err := prevEnc.Decode(dres.Solution)
				if err != nil {
					t.Fatalf("%s delta leg: decode: %v", name, err)
				}
				if err := d.Verify(changedP, sol); err != nil {
					t.Fatalf("%s delta leg: solution invalid: %v", name, err)
				}
			}
		}
	}

	// The generic flow threads the same instance end to end.
	for _, strat := range []Strategy{FastEC, PreservingEC, Replan} {
		fl := NewFlow(d, c.Problem, FlowOptions{Solve: c.Solve, Fast: FastOptions{Solve: c.Solve}})
		if _, err := fl.Solve(); err != nil {
			t.Fatalf("flow solve (%s): %v", strat, err)
		}
		if _, err := fl.ApplyChanges(c.Tightening, strat); err != nil {
			t.Fatalf("flow %s: %v", strat, err)
		}
		if err := d.Verify(fl.Problem(), fl.Solution()); err != nil {
			t.Fatalf("flow %s solution invalid: %v", strat, err)
		}
	}
}

func fp(d Domain, problem any) string {
	var buf bytes.Buffer
	d.FingerprintProblem(&buf, problem)
	return buf.String()
}

func fps(d Domain, sol any) string {
	var buf bytes.Buffer
	d.FingerprintSolution(&buf, sol)
	return buf.String()
}
