package domain

import (
	"bytes"
	"fmt"

	"ilpec/internal/ilp"
)

// Instance is a persistent solver bound to one evolving problem: the
// encoding that built the model (kept for variable mapping and decode),
// a live ilp.Instance retaining kernel, LP-basis, presolve, and cut-pool
// state across re-solves, and the problem the model currently encodes.
// It is the engine-level object behind the session service's incremental
// replan path: change batches Sync onto it as row deltas (when the
// domain implements DeltaEncoder) and Resolve reuses everything the
// previous solve built.
//
// An Instance is not safe for concurrent use; the session serializes
// access under its own lock.
type Instance struct {
	d    Domain
	enc  Encoding
	inst *ilp.Instance
	// problem is the problem the instance's model currently encodes (a
	// private clone); fp is its fingerprint, used by Sync to detect a
	// caller whose session state drifted away from the instance.
	problem any
	fp      string
}

// NewInstance encodes the problem and wraps it in a live solver
// instance.
func NewInstance(d Domain, problem any) (*Instance, error) {
	enc, err := d.Encode(problem)
	if err != nil {
		return nil, fmt.Errorf("domain %s: encode: %w", d.Name(), err)
	}
	clone := d.CloneProblem(problem)
	return &Instance{
		d:       d,
		enc:     enc,
		inst:    ilp.NewInstance(enc.ILP()),
		problem: clone,
		fp:      problemFP(d, clone),
	}, nil
}

// Problem returns the problem the instance currently encodes (the live
// value; treat as read-only).
func (si *Instance) Problem() any { return si.problem }

// ILP exposes the underlying solver instance (counters, fingerprint).
func (si *Instance) ILP() *ilp.Instance { return si.inst }

// Matches reports whether the instance already encodes the given
// problem.
func (si *Instance) Matches(problem any) bool {
	return problemFP(si.d, problem) == si.fp
}

// Sync brings the instance from base to changed by replaying the change
// batch as row deltas. It reports false — leaving the instance
// untouched, caller rebuilds — when the domain has no DeltaEncoder, the
// batch is not delta-expressible, or the instance does not actually
// encode base (the caller's state drifted, e.g. a cache-served commit
// skipped a sync). When the instance already encodes changed, Sync is a
// no-op reporting true, so callers may sync unconditionally after a
// solve without double-applying the batch.
func (si *Instance) Sync(base, changed any, batch []any) bool {
	if si.Matches(changed) {
		return true
	}
	de, ok := si.d.(DeltaEncoder)
	if !ok {
		return false
	}
	if problemFP(si.d, base) != si.fp {
		return false
	}
	delta, ok := de.EncodeDelta(si.enc, si.problem, batch)
	if !ok {
		return false
	}
	delta.Apply(si.inst)
	si.problem = si.d.CloneProblem(changed)
	si.fp = problemFP(si.d, changed)
	return true
}

// Resolve runs the replan solve on the live instance and returns the
// verified domain solution — the instance-path equivalent of Solve.
// warm, when non-nil, guides branching toward an existing solution.
func (si *Instance) Resolve(opts ilp.Options, warm any) (any, ilp.Result, error) {
	if warm != nil {
		if ws, ok := si.enc.WarmStart(warm); ok {
			opts.WarmStart = ws
		}
	}
	res := si.inst.Resolve(opts)
	switch res.Status {
	case ilp.Optimal, ilp.Feasible:
		sol, err := si.enc.Decode(res.Solution)
		if err != nil {
			return nil, res, fmt.Errorf("domain %s: decode: %w", si.d.Name(), err)
		}
		if err := si.d.Verify(si.problem, sol); err != nil {
			return nil, res, fmt.Errorf("domain %s: decoded solution invalid (internal error): %w", si.d.Name(), err)
		}
		return sol, res, nil
	case ilp.Infeasible:
		return nil, res, fmt.Errorf("domain %s: problem is infeasible", si.d.Name())
	default:
		return nil, res, fmt.Errorf("domain %s: solve hit limits (%s)", si.d.Name(), res.Status)
	}
}

// problemFP renders a domain problem fingerprint as a comparable string.
func problemFP(d Domain, problem any) string {
	var buf bytes.Buffer
	d.FingerprintProblem(&buf, problem)
	return buf.String()
}
