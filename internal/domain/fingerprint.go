package domain

import (
	"encoding/binary"
	"io"
	"math"
)

// Fingerprint helpers shared by the adapters: a canonical, unambiguous
// byte encoding (length-prefixed varints) so structurally different
// problems never collide by concatenation.

// WriteInts writes each value as a varint.
func WriteInts(w io.Writer, vs ...int64) {
	var buf [binary.MaxVarintLen64]byte
	for _, v := range vs {
		n := binary.PutVarint(buf[:], v)
		w.Write(buf[:n]) //nolint:errcheck // hash writers never fail
	}
}

// WriteFloats writes each value as its IEEE-754 bit pattern.
func WriteFloats(w io.Writer, vs ...float64) {
	for _, v := range vs {
		WriteInts(w, int64(math.Float64bits(v)))
	}
}

// WriteString writes a length-prefixed string.
func WriteString(w io.Writer, s string) {
	WriteInts(w, int64(len(s)))
	io.WriteString(w, s) //nolint:errcheck // hash writers never fail
}
