package domain

import (
	"fmt"
	"time"

	"ilpec/internal/ilp"
)

// FlowOptions configures a generic Figure-1 Flow.
type FlowOptions struct {
	// Solve configures the exact solver for initial, preserving, and
	// replan passes.
	Solve ilp.Options
	// Fast configures fast-EC passes (including the sub-solver options).
	Fast FastOptions
	// Enable, when non-nil, runs enabling EC as the initial solve (the
	// "Enable EC" box of Figure 1).
	Enable *EnableOptions
	// InitialSolve, when non-nil, overrides the initial solve entirely
	// (heuristic engines, domain-specific enabling modes). It returns the
	// solution and the Step action label.
	InitialSolve func(d Domain, problem any) (any, string, error)
	// OnRelax, when non-nil, post-processes the extended solution after a
	// relax-only batch (e.g. the §6 flexibility increase).
	OnRelax func(d Domain, problem, sol any) (any, error)
}

// Step records one flow action for reporting.
type Step struct {
	// Action is "solve", "enable", "relax", or a Strategy name.
	Action string
	// Runtime is the wall-clock duration of the action.
	Runtime time.Duration
	// Vars and Clauses are the decision-unit and constraint counts of the
	// instance the action solved (the fast-EC sub-instance for fast steps).
	Vars, Clauses int
	// Preserved is the agreement with the pre-change solution (re-solve
	// steps only).
	Preserved float64
}

// Flow drives the generic ILP-based EC flow of Figure 1 for any Domain:
// original specification → (enabling) solve → change → fast / preserving
// re-solve, with the current solution threaded through the steps.
type Flow struct {
	d        Domain
	opts     FlowOptions
	problem  any
	solution any
	history  []Step
}

// NewFlow creates a flow for the original problem (deep-copied).
func NewFlow(d Domain, problem any, opts FlowOptions) *Flow {
	return &Flow{d: d, opts: opts, problem: d.CloneProblem(problem)}
}

// Domain returns the flow's domain adapter.
func (fl *Flow) Domain() Domain { return fl.d }

// Problem returns the current problem (do not mutate).
func (fl *Flow) Problem() any { return fl.problem }

// Solution returns the current solution (nil before Solve; do not mutate).
func (fl *Flow) Solution() any { return fl.solution }

// History returns the recorded steps.
func (fl *Flow) History() []Step { return fl.history }

// Solve produces the initial solution: the enabling-EC solution when
// configured, the plain solution otherwise.
func (fl *Flow) Solve() (any, error) {
	start := time.Now()
	var (
		sol    any
		action = "solve"
		err    error
	)
	switch {
	case fl.opts.InitialSolve != nil:
		sol, action, err = fl.opts.InitialSolve(fl.d, fl.problem)
	case fl.opts.Enable != nil:
		action = "enable"
		sol, _, err = Enable(fl.d, fl.problem, *fl.opts.Enable, fl.opts.Solve, nil)
	default:
		sol, _, err = Solve(fl.d, fl.problem, fl.opts.Solve, nil)
	}
	if err != nil {
		return nil, fmt.Errorf("flow %s: %w", action, err)
	}
	fl.solution = sol
	units, constraints := fl.d.ProblemSize(fl.problem)
	fl.history = append(fl.history, Step{
		Action: action, Runtime: time.Since(start), Vars: units, Clauses: constraints,
	})
	return fl.solution, nil
}

// ApplyChanges mutates the problem and re-solves with the chosen strategy,
// returning the updated solution. Relax-only batches skip the solver (§6).
func (fl *Flow) ApplyChanges(changes []any, strategy Strategy) (any, error) {
	if fl.solution == nil {
		return nil, fmt.Errorf("flow: no solution yet; call Solve first")
	}
	changed, err := fl.d.ApplyChanges(fl.problem, changes)
	if err != nil {
		return nil, err
	}
	prev := fl.solution
	start := time.Now()

	if !AnyTightening(fl.d, changes) {
		next, err := fl.d.ExtendSolution(changed, prev)
		if err != nil {
			return nil, fmt.Errorf("flow relax: %w", err)
		}
		if fl.opts.OnRelax != nil {
			if next, err = fl.opts.OnRelax(fl.d, changed, next); err != nil {
				return nil, fmt.Errorf("flow relax: %w", err)
			}
		}
		fl.problem = changed
		fl.solution = next
		units, constraints := fl.d.ProblemSize(changed)
		fl.history = append(fl.history, Step{
			Action: "relax", Runtime: time.Since(start),
			Vars: units, Clauses: constraints,
			Preserved: fl.d.Agreement(prev, next),
		})
		return fl.solution, nil
	}
	if err := fl.d.Validate(changed); err != nil {
		return nil, err
	}

	var next any
	units, constraints := fl.d.ProblemSize(changed)
	switch strategy {
	case FastEC:
		var stats FastStats
		next, stats, err = Fast(fl.d, changed, prev, fl.opts.Fast)
		if err == nil && !stats.AlreadyValid {
			units, constraints = stats.SubSize, stats.SubRows
		}
	case PreservingEC:
		next, _, err = Preserve(fl.d, changed, prev, fl.opts.Solve)
	case Replan:
		next, _, err = Solve(fl.d, changed, fl.opts.Solve, prev)
	default:
		return nil, fmt.Errorf("flow: unknown strategy %d", strategy)
	}
	if err != nil {
		return nil, err
	}
	fl.problem = changed
	fl.solution = next
	fl.history = append(fl.history, Step{
		Action: strategy.String(), Runtime: time.Since(start),
		Vars: units, Clauses: constraints,
		Preserved: fl.d.Agreement(prev, next),
	})
	return fl.solution, nil
}
