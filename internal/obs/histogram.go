package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// The histogram layout is fixed so that snapshots taken on different
// nodes (or at different times) merge by plain element-wise addition:
// bucket i covers durations in (bound[i-1], bound[i]] with
// bound[i] = 1µs << i. 28 finite buckets span 1µs .. ~134s, which
// brackets everything from a cache hit to a pathological solve; the
// final slot is the +Inf overflow bucket.
const histBuckets = 28

var histBounds = func() [histBuckets]time.Duration {
	var b [histBuckets]time.Duration
	for i := range b {
		b[i] = time.Microsecond << i
	}
	return b
}()

// Histogram is a fixed-bucket log2 latency histogram. All fields are
// atomics: Observe is wait-free and safe for concurrent use, and
// Snapshot never blocks recorders. Snapshot is not atomic across
// buckets — under concurrent recording the copy may be mid-update by a
// handful of observations, which is fine for monitoring.
type Histogram struct {
	counts [histBuckets + 1]atomic.Int64 // last slot is +Inf overflow
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
}

// bucketIndex maps a duration to its bucket: the smallest i with
// d <= 1µs<<i, or the overflow slot.
func bucketIndex(d time.Duration) int {
	if d <= time.Microsecond {
		return 0
	}
	// bits.Len of the µs count, i.e. ceil(log2(d/1µs)) via the
	// round-up on non-powers of two.
	us := uint64(d-1) / uint64(time.Microsecond)
	i := bits.Len64(us)
	if i > histBuckets {
		return histBuckets
	}
	return i
}

// Observe records one duration. Nil-safe and clamps negatives to zero.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.counts[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Since is shorthand for Observe(time.Since(start)).
func (h *Histogram) Since(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start))
}

// HistogramSnapshot is a point-in-time copy of a histogram. Counts has
// one entry per bucket, overflow last. Snapshots with the same bucket
// layout merge by addition (Merge), which is what makes fleet-wide
// aggregation a fold over per-node scrapes.
type HistogramSnapshot struct {
	Counts   []int64 `json:"counts"`
	Count    int64   `json:"count"`
	SumNanos int64   `json:"sum_ns"`
}

// Snapshot copies the current bucket counts.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Counts: make([]int64, histBuckets+1)}
	if h == nil {
		return s
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Count = h.count.Load()
	s.SumNanos = h.sum.Load()
	return s
}

// Merge adds other into s element-wise. Snapshots from any Histogram
// share the fixed bucket layout, so no realignment is needed.
func (s *HistogramSnapshot) Merge(other HistogramSnapshot) {
	if len(s.Counts) < histBuckets+1 {
		grown := make([]int64, histBuckets+1)
		copy(grown, s.Counts)
		s.Counts = grown
	}
	for i, n := range other.Counts {
		if i < len(s.Counts) {
			s.Counts[i] += n
		}
	}
	s.Count += other.Count
	s.SumNanos += other.SumNanos
}

// Quantile estimates the q-quantile (0 <= q <= 1) by locating the
// target rank's bucket and interpolating linearly inside it. With log2
// buckets the estimate is within 2x of the true value by construction —
// plenty for p50/p90/p99 monitoring. Returns 0 for an empty snapshot.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || len(s.Counts) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := int64(0)
	for i, n := range s.Counts {
		if n == 0 {
			continue
		}
		if float64(cum)+float64(n) >= rank {
			lo := time.Duration(0)
			if i > 0 && i-1 < len(histBounds) {
				lo = histBounds[i-1]
			}
			hi := lo * 2
			if i == 0 {
				hi = histBounds[0]
			}
			if i >= len(histBounds) {
				// Overflow bucket has no upper bound; report its floor.
				return histBounds[len(histBounds)-1]
			}
			frac := (rank - float64(cum)) / float64(n)
			return lo + time.Duration(frac*float64(hi-lo))
		}
		cum += n
	}
	return histBounds[len(histBounds)-1]
}
