package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{time.Nanosecond, 0},
		{time.Microsecond, 0},                   // boundary: d <= 1µs is bucket 0
		{time.Microsecond + time.Nanosecond, 1}, // just past the boundary
		{2 * time.Microsecond, 1},               // upper edge of bucket 1
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 2},
		{time.Millisecond, 10},                    // 1024µs > 512µs, <= 1024µs
		{time.Second, 20},                         // 1e6µs is between 2^19 and 2^20 µs
		{time.Microsecond << 27, histBuckets - 1}, // top finite bucket
		{time.Microsecond<<27 + 1, histBuckets},   // overflow
		{time.Hour, histBuckets},
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	// Every finite bucket's upper bound must land in its own bucket and
	// one nanosecond past it in the next.
	for i, bound := range histBounds {
		if got := bucketIndex(bound); got != i {
			t.Errorf("bound %v landed in bucket %d, want %d", bound, got, i)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := &Histogram{}
	// 100 observations at ~1ms, 10 at ~100ms: p50 must sit in the 1ms
	// bucket, p99 in the 100ms one.
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.50); p50 > 2*time.Millisecond || p50 < 100*time.Microsecond {
		t.Errorf("p50 = %v, want ~1ms", p50)
	}
	if p99 := s.Quantile(0.99); p99 < 50*time.Millisecond || p99 > 200*time.Millisecond {
		t.Errorf("p99 = %v, want ~100ms", p99)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Errorf("empty snapshot quantile = %v, want 0", q)
	}
}

func TestHistogramSnapshotMerge(t *testing.T) {
	a, b := &Histogram{}, &Histogram{}
	for i := 0; i < 5; i++ {
		a.Observe(time.Millisecond)
	}
	for i := 0; i < 7; i++ {
		b.Observe(time.Second)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 12 {
		t.Fatalf("merged count = %d, want 12", sa.Count)
	}
	wantSum := int64(5*time.Millisecond + 7*time.Second)
	if sa.SumNanos != wantSum {
		t.Fatalf("merged sum = %d, want %d", sa.SumNanos, wantSum)
	}
	total := int64(0)
	for _, n := range sa.Counts {
		total += n
	}
	if total != 12 {
		t.Fatalf("merged bucket total = %d, want 12", total)
	}
	// Merging into a zero-value snapshot must grow the bucket slice.
	var zero HistogramSnapshot
	zero.Merge(sb)
	if zero.Count != 7 || len(zero.Counts) != histBuckets+1 {
		t.Fatalf("merge into zero snapshot: count=%d len=%d", zero.Count, len(zero.Counts))
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("obs_test_ops_total", "ops")
			h := r.Histogram("obs_test_latency_seconds", "latency")
			g := r.Gauge("obs_test_depth", "depth")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(time.Duration(i) * time.Microsecond)
				g.Set(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("obs_test_ops_total", "ops").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("obs_test_latency_seconds", "latency").Snapshot().Count; got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	if err := ValidatePrometheus(b.String()); err != nil {
		t.Fatalf("exposition after concurrent recording invalid: %v", err)
	}
}

func TestSpanTreeAssembly(t *testing.T) {
	ctx, root := NewTrace(context.Background(), "request")
	ctx2, solve := StartSpan(ctx, "solve")
	solve.SetAttr("session", "s1")
	_, inner := StartSpan(ctx2, "search")
	inner.End()
	solve.Child("presolve", time.Now().Add(-time.Millisecond), time.Millisecond)
	solve.End()
	solve.Graft(&SpanOut{Name: "upstream"})
	root.End()

	out := root.Render()
	if out.Name != "request" || len(out.Children) != 1 {
		t.Fatalf("root = %+v", out)
	}
	s := out.Children[0]
	if s.Name != "solve" || s.Attrs["session"] != "s1" {
		t.Fatalf("solve span = %+v", s)
	}
	names := make([]string, len(s.Children))
	for i, c := range s.Children {
		names[i] = c.Name
	}
	// Live children first (in creation order), grafted subtrees last.
	want := []string{"search", "presolve", "upstream"}
	for i := range want {
		if i >= len(names) || names[i] != want[i] {
			t.Fatalf("solve children = %v, want %v", names, want)
		}
	}
	// Untraced context: StartSpan must be a no-op returning nil.
	if _, sp := StartSpan(context.Background(), "x"); sp != nil {
		t.Fatal("StartSpan on untraced context returned a span")
	}
	// Nil span methods must not panic.
	var nilSpan *Span
	nilSpan.End()
	nilSpan.SetAttr("a", "b")
	nilSpan.Child("c", time.Now(), 0)
	if nilSpan.Render() != nil {
		t.Fatal("nil span rendered non-nil")
	}
}

func TestTraceRingEviction(t *testing.T) {
	tr := NewTraceRing(3, 10*time.Millisecond)
	tr.Offer(&SpanOut{Name: "fast"}, time.Millisecond) // below threshold: dropped
	for i, name := range []string{"a", "b", "c", "d", "e"} {
		tr.Offer(&SpanOut{Name: name}, time.Duration(20+i)*time.Millisecond)
	}
	got := tr.Snapshot()
	if len(got) != 3 {
		t.Fatalf("ring holds %d entries, want 3", len(got))
	}
	for i, want := range []string{"c", "d", "e"} {
		if got[i].Trace.Name != want {
			t.Fatalf("ring[%d] = %q, want %q (oldest evicted first)", i, got[i].Trace.Name, want)
		}
	}
}

func TestWritePrometheusAndValidate(t *testing.T) {
	r := NewRegistry()
	r.Counter("ec_test_requests_total", "requests", Label{"route", "solve"}).Add(3)
	r.Counter("ec_test_requests_total", "requests", Label{"route", "create"}).Add(1)
	r.Gauge("ec_test_sessions", "live sessions").Set(2)
	r.GaugeFunc("ec_test_uptime_seconds", "uptime", func() int64 { return 42 })
	r.Histogram("ec_test_latency_seconds", "latency", Label{"route", "solve"}).Observe(1500 * time.Microsecond)

	var b strings.Builder
	r.WritePrometheus(&b)
	text := b.String()
	if err := ValidatePrometheus(text); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, text)
	}
	for _, want := range []string{
		`ec_test_requests_total{route="solve"} 3`,
		`ec_test_requests_total{route="create"} 1`,
		"ec_test_sessions 2",
		"ec_test_uptime_seconds 42",
		`ec_test_latency_seconds_bucket{route="solve",le="+Inf"} 1`,
		`ec_test_latency_seconds_count{route="solve"} 1`,
		"# TYPE ec_test_latency_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// One family header even with two series.
	if n := strings.Count(text, "# TYPE ec_test_requests_total"); n != 1 {
		t.Errorf("family header appears %d times, want 1", n)
	}

	// JSON snapshot covers every series.
	snap := r.Snapshot()
	if len(snap) != 5 {
		t.Fatalf("snapshot has %d series, want 5", len(snap))
	}
}

func TestValidatePrometheusRejectsMalformed(t *testing.T) {
	bad := []string{
		"no_type_header 1",
		"# TYPE x counter\nx{unclosed=\"v 1",
		"# TYPE x counter\nx notanumber",
		"# TYPE x frobnicator\nx 1",
		"# TYPE 9bad counter",
		"# TYPE x counter\nx{__name__=\"y\"} 1",
	}
	for _, text := range bad {
		if err := ValidatePrometheus(text); err == nil {
			t.Errorf("ValidatePrometheus accepted malformed input %q", text)
		}
	}
	good := "# HELP a help text\n# TYPE a counter\na 1\na{l=\"v\"} 2 1700000000\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 0.5\nh_count 1\n"
	if err := ValidatePrometheus(good); err != nil {
		t.Errorf("ValidatePrometheus rejected valid input: %v", err)
	}
}

func TestRequestIDContext(t *testing.T) {
	ctx := WithRequestID(context.Background(), "req-1")
	if got := RequestIDFromContext(ctx); got != "req-1" {
		t.Fatalf("request id = %q", got)
	}
	if got := RequestIDFromContext(context.Background()); got != "" {
		t.Fatalf("empty context request id = %q", got)
	}
}
