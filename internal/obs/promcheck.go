package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// ValidatePrometheus checks a Prometheus text-exposition payload for
// structural validity: every line is a well-formed comment or sample,
// metric and label names are legal, label values are properly quoted,
// sample values parse as numbers, and every sample's family was
// declared with a # TYPE line first. It is the gate the chaos e2e runs
// against each node's /metrics after a kill-node run, so it errs on the
// strict side rather than accepting whatever a scraper might tolerate.
func ValidatePrometheus(text string) error {
	typed := map[string]string{} // family -> kind
	lineNo := 0
	for _, line := range strings.Split(text, "\n") {
		lineNo++
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := validateComment(line, typed); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		if err := validateSample(line, typed); err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	return nil
}

func validateComment(line string, typed map[string]string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return fmt.Errorf("bare comment %q", line)
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed HELP line %q", line)
		}
	case "TYPE":
		if len(fields) != 4 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
		typed[fields[2]] = fields[3]
	default:
		return fmt.Errorf("unknown comment directive %q", fields[1])
	}
	return nil
}

func validateSample(line string, typed map[string]string) error {
	name := line
	rest := ""
	if i := strings.IndexAny(line, "{ "); i >= 0 {
		name, rest = line[:i], line[i:]
	}
	if !validMetricName(name) {
		return fmt.Errorf("invalid metric name %q", name)
	}
	family := name
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name && typed[base] == "histogram" {
			family = base
			break
		}
	}
	if _, ok := typed[family]; !ok {
		return fmt.Errorf("sample %q has no preceding # TYPE", name)
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return fmt.Errorf("unclosed label set in %q", line)
		}
		if err := validateLabels(rest[1:end]); err != nil {
			return fmt.Errorf("%w in %q", err, line)
		}
		rest = rest[end+1:]
	}
	value := strings.TrimSpace(rest)
	// A trailing timestamp is legal; value is the first field.
	if i := strings.IndexByte(value, ' '); i >= 0 {
		ts := value[i+1:]
		value = value[:i]
		if _, err := strconv.ParseInt(strings.TrimSpace(ts), 10, 64); err != nil {
			return fmt.Errorf("bad timestamp in %q", line)
		}
	}
	switch value {
	case "+Inf", "-Inf", "NaN":
		return nil
	}
	if _, err := strconv.ParseFloat(value, 64); err != nil {
		return fmt.Errorf("bad sample value %q in %q", value, line)
	}
	return nil
}

func validateLabels(s string) error {
	if s == "" {
		return nil
	}
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 || !validLabelName(s[:eq]) {
			return fmt.Errorf("invalid label name")
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return fmt.Errorf("unquoted label value")
		}
		// Scan the quoted value honoring backslash escapes.
		i := 1
		for {
			if i >= len(s) {
				return fmt.Errorf("unterminated label value")
			}
			if s[i] == '\\' {
				i += 2
				continue
			}
			if s[i] == '"' {
				break
			}
			i++
		}
		s = s[i+1:]
		if len(s) > 0 {
			if s[0] != ',' {
				return fmt.Errorf("missing comma between labels")
			}
			s = s[1:]
		}
	}
	return nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || s == "__name__" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
