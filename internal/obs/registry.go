// Package obs is the stdlib-only observability layer for the serving
// tier: a metrics registry of counters, gauges, and log2 latency
// histograms with Prometheus-text and JSON exposition, plus lightweight
// request-scoped trace spans (trace.go) carried through context.Context.
//
// The registry is deliberately small. Instruments are registered lazily
// by (name, labels) and are safe for concurrent use; histogram buckets
// are fixed powers-of-two of a microsecond so snapshots from different
// processes merge without bucket realignment. Exposition order is
// registration order, grouped into Prometheus families by name, which
// keeps scrapes diffable across runs.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one exposition label pair. Labels on an instrument are part
// of its registry identity: Counter("x", help, Label{"a","1"}) and
// Counter("x", help, Label{"a","2"}) are two series of one family.
type Label struct {
	Key   string
	Value string
}

// Counter is a monotonically increasing int64.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n < 0 is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 (queue depths, staleness, config knobs).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// instrument is one registered series: exactly one of the value fields
// is active, per kind.
type instrument struct {
	name   string
	help   string
	kind   string // "counter" | "gauge" | "histogram"
	labels []Label

	counter *Counter
	gauge   *Gauge
	gfunc   func() int64 // gauge computed at scrape time
	hist    *Histogram
}

// Registry holds every registered instrument and renders them. The zero
// value is not usable; call NewRegistry. A nil *Registry is a valid
// no-op sink: instrument getters return nil, and nil instruments drop
// observations, so callers never need nil checks at record sites.
type Registry struct {
	mu   sync.Mutex
	by   map[string]*instrument // guarded by mu; key = name + rendered labels
	list []*instrument          // guarded by mu; registration order
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{by: make(map[string]*instrument)}
}

func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0)
		b.WriteString(l.Key)
		b.WriteByte(0)
		b.WriteString(l.Value)
	}
	return b.String()
}

// get returns the instrument for (name, labels), creating it with mk on
// first use. Re-registering with a different kind panics: that is a
// programming error, not a runtime condition.
func (r *Registry) get(name, help, kind string, labels []Label, mk func(*instrument)) *instrument {
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok := r.by[key]; ok {
		if in.kind != kind {
			panic(fmt.Sprintf("obs: %s re-registered as %s (was %s)", name, kind, in.kind))
		}
		return in
	}
	in := &instrument{name: name, help: help, kind: kind, labels: append([]Label(nil), labels...)}
	mk(in)
	r.by[key] = in
	r.list = append(r.list, in)
	return in
}

// Counter returns the counter series for (name, labels), registering it
// on first use. Nil-safe: a nil registry returns nil, which drops Adds.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.get(name, help, "counter", labels, func(in *instrument) {
		in.counter = &Counter{}
	}).counter
}

// Gauge returns the gauge series for (name, labels).
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.get(name, help, "gauge", labels, func(in *instrument) {
		in.gauge = &Gauge{}
	}).gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time (heartbeat staleness, cache sizes). Later registrations of the
// same series replace fn.
func (r *Registry) GaugeFunc(name, help string, fn func() int64, labels ...Label) {
	if r == nil {
		return
	}
	in := r.get(name, help, "gauge", labels, func(in *instrument) {})
	r.mu.Lock()
	in.gfunc = fn
	r.mu.Unlock()
}

// Histogram returns the latency histogram series for (name, labels).
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.get(name, help, "histogram", labels, func(in *instrument) {
		in.hist = &Histogram{}
	}).hist
}

// snapshotLocked copies the instrument list under the lock so rendering
// can run lock-free against the atomics.
func (r *Registry) snapshot() []*instrument {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*instrument(nil), r.list...)
}

func promLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		v := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(l.Value)
		parts[i] = fmt.Sprintf(`%s=%q`, l.Key, v)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheus renders every registered series in Prometheus text
// exposition format, grouped into families (one # HELP/# TYPE header per
// metric name) in first-registration order.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	list := r.snapshot()
	done := map[string]bool{}
	for _, in := range list {
		if done[in.name] {
			continue
		}
		done[in.name] = true
		if in.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", in.name, strings.ReplaceAll(in.help, "\n", " "))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", in.name, in.kind)
		for _, series := range list {
			if series.name != in.name {
				continue
			}
			series.writeProm(w)
		}
	}
}

func (in *instrument) writeProm(w io.Writer) {
	switch in.kind {
	case "counter":
		fmt.Fprintf(w, "%s%s %d\n", in.name, promLabels(in.labels), in.counter.Value())
	case "gauge":
		v := in.gauge.Value()
		if in.gfunc != nil {
			v = in.gfunc()
		}
		fmt.Fprintf(w, "%s%s %d\n", in.name, promLabels(in.labels), v)
	case "histogram":
		snap := in.hist.Snapshot()
		cum := int64(0)
		for i, n := range snap.Counts {
			cum += n
			le := "+Inf"
			if i < len(histBounds) {
				le = formatSeconds(histBounds[i])
			}
			fmt.Fprintf(w, "%s_bucket%s %d\n", in.name, promLabels(in.labels, Label{"le", le}), cum)
		}
		fmt.Fprintf(w, "%s_sum%s %s\n", in.name, promLabels(in.labels), formatSeconds(time.Duration(snap.SumNanos)))
		fmt.Fprintf(w, "%s_count%s %d\n", in.name, promLabels(in.labels), snap.Count)
	}
}

// formatSeconds renders a duration as decimal seconds without float
// noise (1.5ms -> "0.0015").
func formatSeconds(d time.Duration) string {
	s := d.Seconds()
	if s == math.Trunc(s) && math.Abs(s) < 1e15 {
		return fmt.Sprintf("%d", int64(s))
	}
	return strings.TrimRight(fmt.Sprintf("%.9f", s), "0")
}

// SeriesSnapshot is the JSON form of one series, used by the /metrics
// JSON exposition.
type SeriesSnapshot struct {
	Name   string             `json:"name"`
	Kind   string             `json:"kind"`
	Labels map[string]string  `json:"labels,omitempty"`
	Value  *int64             `json:"value,omitempty"`
	Hist   *HistogramSnapshot `json:"histogram,omitempty"`
}

// Snapshot returns the JSON-ready view of every series, sorted by name
// then label for stable output.
func (r *Registry) Snapshot() []SeriesSnapshot {
	if r == nil {
		return nil
	}
	list := r.snapshot()
	out := make([]SeriesSnapshot, 0, len(list))
	for _, in := range list {
		s := SeriesSnapshot{Name: in.name, Kind: in.kind}
		if len(in.labels) > 0 {
			s.Labels = make(map[string]string, len(in.labels))
			for _, l := range in.labels {
				s.Labels[l.Key] = l.Value
			}
		}
		switch in.kind {
		case "counter":
			v := in.counter.Value()
			s.Value = &v
		case "gauge":
			v := in.gauge.Value()
			if in.gfunc != nil {
				v = in.gfunc()
			}
			s.Value = &v
		case "histogram":
			h := in.hist.Snapshot()
			s.Hist = &h
		}
		out = append(out, s)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
