package obs

import (
	"context"
	"sync"
	"time"
)

// Span is one timed region of a request. Spans form a tree rooted at
// the HTTP layer; child spans are created through StartSpan with the
// parent's context, or attached post-hoc with Child (for phases whose
// timings were measured elsewhere, like the solver's internal phases).
//
// All methods are nil-safe: code instruments unconditionally and an
// untraced request (nil span in context) costs one pointer check.
type Span struct {
	mu       sync.Mutex
	name     string
	start    time.Time
	duration time.Duration // guarded by mu; zero until End
	attrs    []Label       // guarded by mu
	children []*Span       // guarded by mu
	grafted  []*SpanOut    // guarded by mu; pre-rendered subtrees (e.g. an upstream's trace)
}

type spanCtxKey struct{}

// NewTrace creates a root span and returns a context carrying it.
// The HTTP layer calls this for traced requests; everything below picks
// the span up via StartSpan.
func NewTrace(ctx context.Context, name string) (context.Context, *Span) {
	sp := &Span{name: name, start: time.Now()}
	return context.WithValue(ctx, spanCtxKey{}, sp), sp
}

// ContextWithSpan returns a context carrying sp (used when handing a
// span across an API boundary that rebuilds contexts).
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFromContext returns the current span, or nil when the request is
// not being traced.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

// StartSpan opens a child span under the context's current span and
// returns a context carrying the child. When the request is untraced it
// returns (ctx, nil) without allocating; the nil child's End/SetAttr
// are no-ops.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := &Span{name: name, start: time.Now()}
	parent.mu.Lock()
	parent.children = append(parent.children, child)
	parent.mu.Unlock()
	return context.WithValue(ctx, spanCtxKey{}, child), child
}

// End closes the span, fixing its duration. Safe to call once; later
// calls are ignored so defer sp.End() composes with early explicit ends.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	if sp.duration == 0 {
		sp.duration = time.Since(sp.start)
	}
	sp.mu.Unlock()
}

// SetAttr attaches a key/value annotation to the span.
func (sp *Span) SetAttr(key, value string) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	sp.attrs = append(sp.attrs, Label{Key: key, Value: value})
	sp.mu.Unlock()
}

// Child attaches a pre-measured child span (start + duration known)
// and returns it. This is how post-hoc phase timings — the solver
// reports presolve/cuts/search durations after the fact — enter the
// tree without plumbing span starts through the engine.
func (sp *Span) Child(name string, start time.Time, d time.Duration) *Span {
	if sp == nil {
		return nil
	}
	child := &Span{name: name, start: start, duration: d}
	sp.mu.Lock()
	sp.children = append(sp.children, child)
	sp.mu.Unlock()
	return child
}

// Graft attaches an already-rendered subtree as a child. The router
// uses this to splice an upstream's returned trace under the proxy
// attempt span, producing one router→handler→solve tree.
func (sp *Span) Graft(sub *SpanOut) {
	if sp == nil || sub == nil {
		return
	}
	sp.mu.Lock()
	sp.grafted = append(sp.grafted, sub)
	sp.mu.Unlock()
}

// SpanOut is the JSON wire form of a span tree. Start is wall-clock
// (unix microseconds) so trees rendered on different processes — the
// router's and the upstream node's — line up on one timeline.
type SpanOut struct {
	Name       string            `json:"name"`
	StartUnixU int64             `json:"start_us"`
	DurationMS float64           `json:"duration_ms"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Children   []*SpanOut        `json:"children,omitempty"`
}

// Render produces the JSON form of the tree rooted at sp. Open spans
// render with their duration-so-far.
func (sp *Span) Render() *SpanOut {
	if sp == nil {
		return nil
	}
	sp.mu.Lock()
	d := sp.duration
	if d == 0 {
		d = time.Since(sp.start)
	}
	out := &SpanOut{
		Name:       sp.name,
		StartUnixU: sp.start.UnixMicro(),
		DurationMS: float64(d) / float64(time.Millisecond),
	}
	if len(sp.attrs) > 0 {
		out.Attrs = make(map[string]string, len(sp.attrs))
		for _, a := range sp.attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	children := append([]*Span(nil), sp.children...)
	grafted := append([]*SpanOut(nil), sp.grafted...)
	sp.mu.Unlock()
	for _, c := range children {
		out.Children = append(out.Children, c.Render())
	}
	out.Children = append(out.Children, grafted...)
	return out
}

// Duration returns the span's duration (so-far if still open).
func (sp *Span) Duration() time.Duration {
	if sp == nil {
		return 0
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.duration == 0 {
		return time.Since(sp.start)
	}
	return sp.duration
}

// TraceEntry is one retained slow trace.
type TraceEntry struct {
	Duration time.Duration `json:"duration_ns"`
	Trace    *SpanOut      `json:"trace"`
}

// TraceRing retains the most recent traces that crossed a slowness
// threshold, bounded in count: a crash-cart view of "what was slow
// lately" without external infrastructure.
type TraceRing struct {
	mu        sync.Mutex
	max       int
	threshold time.Duration
	entries   []TraceEntry // guarded by mu; oldest first
}

// NewTraceRing returns a ring keeping at most max traces whose duration
// is >= threshold. max <= 0 defaults to 32.
func NewTraceRing(max int, threshold time.Duration) *TraceRing {
	if max <= 0 {
		max = 32
	}
	return &TraceRing{max: max, threshold: threshold}
}

// Offer retains the trace if it is slow enough, evicting the oldest
// entry when full. Nil-safe.
func (tr *TraceRing) Offer(t *SpanOut, d time.Duration) {
	if tr == nil || t == nil || d < tr.threshold {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.entries) >= tr.max {
		tr.entries = append(tr.entries[:0], tr.entries[len(tr.entries)-tr.max+1:]...)
	}
	tr.entries = append(tr.entries, TraceEntry{Duration: d, Trace: t})
}

// Snapshot returns the retained traces, most recent last.
func (tr *TraceRing) Snapshot() []TraceEntry {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return append([]TraceEntry(nil), tr.entries...)
}

type requestIDKey struct{}

// WithRequestID stores the request id in the context for handlers and
// loggers downstream.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFromContext returns the request id, or "".
func RequestIDFromContext(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}
