package lp

// rebuildEvery bounds numerical drift on a long-lived tableau: after this
// many warm solves the tableau is refactorized from the problem data.
const rebuildEvery = 64

// Solver re-solves one Problem whose variable bounds or right-hand sides
// change between calls — the branch-and-bound node pattern and the
// ilp.Instance delta pattern. Neither mutation touches the constraint
// matrix, so the simplex tableau and basis from the previous solve stay
// valid and each call warm-starts from them instead of the all-slack
// basis (RHS edits are absorbed as slack-bound shifts; see
// simplex.refreshBounds). Mutate with Problem.SetBounds / Problem.SetRHS
// between calls. Structural edits (added variables or rows) are detected
// by dimension and fall back to a cold reinstall on the grown problem.
type Solver struct {
	p       *Problem
	s       *simplex
	age     int // warm solves since the last refactorization
	armed   bool
	maxIter int

	// WarmHits counts solves that reused the previous basis.
	WarmHits int64
}

// NewSolver returns a reusable warm-starting solver over p.
func NewSolver(p *Problem) *Solver {
	return &Solver{p: p}
}

// SetIterLimit caps simplex iterations per solve (0 = default).
func (w *Solver) SetIterLimit(n int) { w.maxIter = n }

// Solve optimizes the problem under its current bounds, warm-starting from
// the previous basis when one exists.
func (w *Solver) Solve() Result {
	warm := false
	switch {
	case w.s == nil || w.s.m != len(w.p.rows) || w.s.n != len(w.p.obj):
		w.s = newSimplex(w.p)
		w.s.install(w.p)
		w.age = 0
	case !w.armed || w.age >= rebuildEvery:
		w.s.install(w.p)
		w.age = 0
	default:
		w.s.refreshBounds(w.p)
		w.age++
		warm = true
	}
	res := w.s.run(w.p, w.maxIter)
	if warm {
		if res.Status == Optimal {
			w.WarmHits++
		} else {
			// A drifted tableau can stall the warm path — or, worse, report
			// a spurious Infeasible that a branch-and-bound caller would
			// turn into a wrong prune. Refactorize and confirm cold before
			// reporting anything but Optimal; such a solve is not a warm hit.
			w.s.install(w.p)
			w.age = 0
			res = w.s.run(w.p, w.maxIter)
		}
	}
	w.armed = res.Status == Optimal || res.Status == Infeasible
	return res
}
