package lp

import (
	"math/rand"
	"testing"
)

func TestFreeVariable(t *testing.T) {
	// min x s.t. x ≥ -3 with x free → -3 (free var must leave its pinned 0).
	p := NewProblem(false)
	x := p.AddVariable(1, -Inf, Inf)
	p.AddRow([]Coef{{x, 1}}, GE, -3)
	res := p.Solve()
	if res.Status != Optimal || !approx(res.Objective, -3) {
		t.Fatalf("status=%v obj=%v", res.Status, res.Objective)
	}
}

func TestNegativeLowerBounds(t *testing.T) {
	// max x + y, x ∈ [-2, 1], y ∈ [-1, 2], x + y ≤ 1 → (1, 0) or (−...): best 1... x=1,y=0 → 1? y=2,x=-1 → 1. Objective 1.
	p := NewProblem(true)
	x := p.AddVariable(1, -2, 1)
	y := p.AddVariable(1, -1, 2)
	p.AddRow([]Coef{{x, 1}, {y, 1}}, LE, 1)
	res := p.Solve()
	if res.Status != Optimal || !approx(res.Objective, 1) {
		t.Fatalf("status=%v obj=%v", res.Status, res.Objective)
	}
}

func TestFixedVariableBounds(t *testing.T) {
	// Variables fixed by equal bounds participate correctly.
	p := NewProblem(false)
	x := p.AddVariable(1, 1, 1) // fixed at 1
	y := p.AddVariable(1, 0, 5)
	p.AddRow([]Coef{{x, 1}, {y, 1}}, GE, 3)
	res := p.Solve()
	if res.Status != Optimal || !approx(res.Objective, 3) || !approx(res.X[x], 1) || !approx(res.X[y], 2) {
		t.Fatalf("res=%+v", res)
	}
}

func TestEmptyProblem(t *testing.T) {
	p := NewProblem(true)
	res := p.Solve()
	if res.Status != Optimal || res.Objective != 0 {
		t.Fatalf("empty problem: %+v", res)
	}
}

func TestRowWithDuplicateVariable(t *testing.T) {
	// AddRow merges duplicate coefficients additively.
	p := NewProblem(false)
	x := p.AddVariable(1, 0, 10)
	p.AddRow([]Coef{{x, 1}, {x, 1}}, GE, 4) // effectively 2x ≥ 4
	res := p.Solve()
	if res.Status != Optimal || !approx(res.X[x], 2) {
		t.Fatalf("res=%+v", res)
	}
}

func TestNumAccessors(t *testing.T) {
	p := NewProblem(false)
	p.AddVariable(0, 0, 1)
	p.AddRow([]Coef{{0, 1}}, LE, 1)
	if p.NumVariables() != 1 || p.NumRows() != 1 {
		t.Fatal("accessors wrong")
	}
}

// Property: LP relaxation of 0-1 knapsacks is at least the integral
// optimum (relaxation bound direction).
func TestKnapsackRelaxationBound(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(6)
		values := make([]float64, n)
		weights := make([]float64, n)
		cap := 0.0
		for j := 0; j < n; j++ {
			values[j] = float64(1 + rng.Intn(9))
			weights[j] = float64(1 + rng.Intn(5))
			cap += weights[j]
		}
		cap /= 2
		// LP relaxation.
		p := NewProblem(true)
		coefs := make([]Coef, n)
		for j := 0; j < n; j++ {
			p.AddVariable(values[j], 0, 1)
			coefs[j] = Coef{j, weights[j]}
		}
		p.AddRow(coefs, LE, cap)
		lpRes := p.Solve()
		if lpRes.Status != Optimal {
			t.Fatalf("trial %d: %v", trial, lpRes.Status)
		}
		// Integral optimum by enumeration.
		best := 0.0
		for mask := 0; mask < 1<<n; mask++ {
			w, v := 0.0, 0.0
			for j := 0; j < n; j++ {
				if mask&(1<<j) != 0 {
					w += weights[j]
					v += values[j]
				}
			}
			if w <= cap && v > best {
				best = v
			}
		}
		if lpRes.Objective < best-1e-6 {
			t.Fatalf("trial %d: LP %v below ILP %v", trial, lpRes.Objective, best)
		}
	}
}
