package lp

import (
	"math"
	"math/rand"
	"testing"
)

// TestWarmSolverMatchesCold drives one problem through random 0-1 bound
// fixings — the branch-and-bound node pattern — and checks every warm
// re-solve against a from-scratch solve of the same bounds.
func TestWarmSolverMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	warmHits := int64(0)
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(6)
		mRows := 2 + rng.Intn(5)
		p := NewProblem(false)
		for j := 0; j < n; j++ {
			p.AddVariable(float64(rng.Intn(11)-5), 0, 1)
		}
		for i := 0; i < mRows; i++ {
			var coefs []Coef
			for j := 0; j < n; j++ {
				if rng.Intn(2) == 0 {
					coefs = append(coefs, Coef{j, float64(rng.Intn(7) - 3)})
				}
			}
			if len(coefs) == 0 {
				coefs = append(coefs, Coef{0, 1})
			}
			p.AddRow(coefs, Sense(rng.Intn(3)), float64(rng.Intn(5)-1))
		}
		ws := NewSolver(p)
		for step := 0; step < 40; step++ {
			for j := 0; j < n; j++ {
				switch rng.Intn(3) {
				case 0:
					p.SetBounds(j, 0, 0)
				case 1:
					p.SetBounds(j, 1, 1)
				default:
					p.SetBounds(j, 0, 1)
				}
			}
			warm := ws.Solve()
			cold := p.Solve()
			if warm.Status != cold.Status {
				t.Fatalf("trial %d step %d: warm %v cold %v", trial, step, warm.Status, cold.Status)
			}
			if warm.Status == Optimal && math.Abs(warm.Objective-cold.Objective) > 1e-6 {
				t.Fatalf("trial %d step %d: warm obj %v cold %v", trial, step, warm.Objective, cold.Objective)
			}
		}
		warmHits += ws.WarmHits
	}
	// WarmHits counts only warm solves confirmed Optimal (infeasible or
	// stalled warm attempts are re-verified cold), so assert across the
	// whole sweep rather than per trial.
	if warmHits == 0 {
		t.Fatal("warm path never taken")
	}
}

// TestSetBoundsValidates covers the panic contracts.
func TestSetBoundsValidates(t *testing.T) {
	p := NewProblem(false)
	p.AddVariable(1, 0, 1)
	for _, bad := range []func(){
		func() { p.SetBounds(-1, 0, 1) },
		func() { p.SetBounds(1, 0, 1) },
		func() { p.SetBounds(0, 2, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			bad()
		}()
	}
}
