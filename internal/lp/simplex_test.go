package lp

import (
	"math"
	"math/rand"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSenseString(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Fatal("Sense.String mismatch")
	}
	if Optimal.String() != "OPTIMAL" || Infeasible.String() != "INFEASIBLE" ||
		Unbounded.String() != "UNBOUNDED" || IterLimit.String() != "ITERLIMIT" {
		t.Fatal("Status.String mismatch")
	}
}

// Classic 2-variable LP with a known optimum:
//
//	max 3x + 5y  s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18, x,y ≥ 0
//	optimum (2, 6) with value 36.
func TestTextbookMaximization(t *testing.T) {
	p := NewProblem(true)
	x := p.AddVariable(3, 0, Inf)
	y := p.AddVariable(5, 0, Inf)
	p.AddRow([]Coef{{x, 1}}, LE, 4)
	p.AddRow([]Coef{{y, 2}}, LE, 12)
	p.AddRow([]Coef{{x, 3}, {y, 2}}, LE, 18)
	res := p.Solve()
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if !approx(res.Objective, 36) || !approx(res.X[x], 2) || !approx(res.X[y], 6) {
		t.Fatalf("got obj=%v x=%v", res.Objective, res.X)
	}
}

func TestMinimizationWithGE(t *testing.T) {
	// min x + 2y s.t. x + y ≥ 3, x ≥ 1, y ≥ 0 → (3, 0) value 3.
	p := NewProblem(false)
	x := p.AddVariable(1, 1, Inf)
	y := p.AddVariable(2, 0, Inf)
	p.AddRow([]Coef{{x, 1}, {y, 1}}, GE, 3)
	res := p.Solve()
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if !approx(res.Objective, 3) || !approx(res.X[x], 3) || !approx(res.X[y], 0) {
		t.Fatalf("got obj=%v x=%v", res.Objective, res.X)
	}
}

func TestEqualityRow(t *testing.T) {
	// min x + y s.t. x + y = 2, 0 ≤ x,y ≤ 2 → objective 2.
	p := NewProblem(false)
	x := p.AddVariable(1, 0, 2)
	y := p.AddVariable(1, 0, 2)
	p.AddRow([]Coef{{x, 1}, {y, 1}}, EQ, 2)
	res := p.Solve()
	if res.Status != Optimal || !approx(res.Objective, 2) {
		t.Fatalf("status=%v obj=%v", res.Status, res.Objective)
	}
	if !approx(res.X[x]+res.X[y], 2) {
		t.Fatalf("equality violated: %v", res.X)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(false)
	x := p.AddVariable(1, 0, 1)
	p.AddRow([]Coef{{x, 1}}, GE, 2) // x ≥ 2 with x ≤ 1
	if res := p.Solve(); res.Status != Infeasible {
		t.Fatalf("status = %v, want INFEASIBLE", res.Status)
	}
	// Contradictory equalities.
	q := NewProblem(false)
	y := q.AddVariable(0, 0, Inf)
	q.AddRow([]Coef{{y, 1}}, EQ, 1)
	q.AddRow([]Coef{{y, 1}}, EQ, 2)
	if res := q.Solve(); res.Status != Infeasible {
		t.Fatalf("status = %v, want INFEASIBLE", res.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(true)
	x := p.AddVariable(1, 0, Inf)
	p.AddRow([]Coef{{x, -1}}, LE, 0) // -x ≤ 0 never blocks growth
	if res := p.Solve(); res.Status != Unbounded {
		t.Fatalf("status = %v, want UNBOUNDED", res.Status)
	}
}

func TestBoundedVariablesOnly(t *testing.T) {
	// No rows at all: optimum sits at variable bounds.
	p := NewProblem(true)
	x := p.AddVariable(2, 0, 5)
	y := p.AddVariable(-3, -1, 4)
	res := p.Solve()
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if !approx(res.X[x], 5) || !approx(res.X[y], -1) || !approx(res.Objective, 13) {
		t.Fatalf("got %v obj=%v", res.X, res.Objective)
	}
}

func TestUpperBoundFlip(t *testing.T) {
	// max x + y s.t. x + y ≤ 1.5, x,y ∈ [0,1] → 1.5 via fractional point.
	p := NewProblem(true)
	x := p.AddVariable(1, 0, 1)
	y := p.AddVariable(1, 0, 1)
	p.AddRow([]Coef{{x, 1}, {y, 1}}, LE, 1.5)
	res := p.Solve()
	if res.Status != Optimal || !approx(res.Objective, 1.5) {
		t.Fatalf("status=%v obj=%v x=%v", res.Status, res.Objective, res.X)
	}
}

// The LP relaxation of the paper's §3 three-clause SAT example:
// minimize Σ x_i subject to cover rows and consistency rows. The integral
// optimum selects 2 literals (e.g. v2=1 and one of v1/v3 consistent);
// the LP value must be a lower bound ≤ 2.
func TestSATRelaxationExample(t *testing.T) {
	p := NewProblem(false)
	xs := make([]int, 6)
	for i := range xs {
		xs[i] = p.AddVariable(1, 0, 1)
	}
	// F = (v1' + v2)(v2 + v3)(v1 + v3'); x1..x3 positive, x4..x6 negative.
	p.AddRow([]Coef{{xs[3], 1}, {xs[1], 1}}, GE, 1)
	p.AddRow([]Coef{{xs[1], 1}, {xs[2], 1}}, GE, 1)
	p.AddRow([]Coef{{xs[0], 1}, {xs[5], 1}}, GE, 1)
	for v := 0; v < 3; v++ {
		p.AddRow([]Coef{{xs[v], 1}, {xs[v+3], 1}}, LE, 1)
	}
	res := p.Solve()
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if res.Objective > 2+1e-6 || res.Objective < 1-1e-6 {
		t.Fatalf("relaxation value %v outside [1,2]", res.Objective)
	}
	// Feasibility of the returned point.
	for i, x := range res.X {
		if x < -1e-9 || x > 1+1e-9 {
			t.Fatalf("x[%d]=%v out of bounds", i, x)
		}
	}
}

func TestDegenerateDoesNotCycle(t *testing.T) {
	// Beale's classic cycling example (standard pivoting cycles without
	// anti-cycling safeguards).
	p := NewProblem(false)
	x1 := p.AddVariable(-0.75, 0, Inf)
	x2 := p.AddVariable(150, 0, Inf)
	x3 := p.AddVariable(-0.02, 0, Inf)
	x4 := p.AddVariable(6, 0, Inf)
	p.AddRow([]Coef{{x1, 0.25}, {x2, -60}, {x3, -0.04}, {x4, 9}}, LE, 0)
	p.AddRow([]Coef{{x1, 0.5}, {x2, -90}, {x3, -0.02}, {x4, 3}}, LE, 0)
	p.AddRow([]Coef{{x3, 1}}, LE, 1)
	res := p.Solve()
	if res.Status != Optimal {
		t.Fatalf("status = %v (cycling?)", res.Status)
	}
	if !approx(res.Objective, -0.05) {
		t.Fatalf("objective = %v, want -0.05", res.Objective)
	}
}

func TestIterLimit(t *testing.T) {
	p := NewProblem(false)
	x := p.AddVariable(1, 0, 10)
	y := p.AddVariable(1, 0, 10)
	p.AddRow([]Coef{{x, 1}, {y, 1}}, GE, 5)
	res := p.SolveWithLimit(1)
	if res.Status == Optimal && !approx(res.Objective, 5) {
		t.Fatalf("limit-1 solve claims wrong optimum %v", res.Objective)
	}
	// With the default budget the instance is easy.
	if res2 := p.Solve(); res2.Status != Optimal || !approx(res2.Objective, 5) {
		t.Fatalf("full solve failed: %v %v", res2.Status, res2.Objective)
	}
}

func TestNegativeRHSFeasibility(t *testing.T) {
	// min x s.t. -x ≤ -2 (i.e. x ≥ 2), x ∈ [0,5] → 2. Exercises phase 1.
	p := NewProblem(false)
	x := p.AddVariable(1, 0, 5)
	p.AddRow([]Coef{{x, -1}}, LE, -2)
	res := p.Solve()
	if res.Status != Optimal || !approx(res.Objective, 2) {
		t.Fatalf("status=%v obj=%v", res.Status, res.Objective)
	}
}

func TestAddRowValidation(t *testing.T) {
	p := NewProblem(false)
	p.AddVariable(1, 0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unknown variable")
		}
	}()
	p.AddRow([]Coef{{3, 1}}, LE, 1)
}

func TestVariableBoundValidation(t *testing.T) {
	p := NewProblem(false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on inverted bounds")
		}
	}()
	p.AddVariable(0, 2, 1)
}

// Random feasibility property: plant a point, generate rows it satisfies,
// check the solver finds a feasible optimum at least as good.
func TestRandomPlantedLPs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(6)
		m := 1 + rng.Intn(8)
		p := NewProblem(false)
		plant := make([]float64, n)
		for j := 0; j < n; j++ {
			plant[j] = rng.Float64()
			p.AddVariable(rng.NormFloat64(), 0, 1)
		}
		rows := make([][]Coef, m)
		for i := 0; i < m; i++ {
			var coefs []Coef
			dot := 0.0
			for j := 0; j < n; j++ {
				if rng.Intn(2) == 0 {
					v := rng.NormFloat64()
					coefs = append(coefs, Coef{j, v})
					dot += v * plant[j]
				}
			}
			if len(coefs) == 0 {
				coefs = append(coefs, Coef{0, 1})
				dot = plant[0]
			}
			// Make the planted point feasible with margin.
			p.AddRow(coefs, LE, dot+0.1+rng.Float64())
			rows[i] = coefs
		}
		res := p.Solve()
		if res.Status != Optimal {
			t.Fatalf("trial %d: status=%v on planted-feasible LP", trial, res.Status)
		}
		// Feasibility of the result.
		for i, coefs := range rows {
			dot := 0.0
			for _, c := range coefs {
				dot += c.Val * res.X[c.Var]
			}
			if dot > p.rhs[i]+1e-6 {
				t.Fatalf("trial %d: row %d violated by %v", trial, i, dot-p.rhs[i])
			}
		}
		for j, x := range res.X {
			if x < -1e-6 || x > 1+1e-6 {
				t.Fatalf("trial %d: x[%d]=%v out of [0,1]", trial, j, x)
			}
		}
		// Optimality sanity: the planted point cannot beat the optimum.
		plantObj := 0.0
		for j := 0; j < n; j++ {
			plantObj += p.obj[j] * plant[j]
		}
		if res.Objective > plantObj+1e-6 {
			t.Fatalf("trial %d: claimed optimum %v worse than planted %v", trial, res.Objective, plantObj)
		}
	}
}

// Random LPs with equalities and GE rows built around a planted point.
func TestRandomMixedSenseLPs(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 80; trial++ {
		n := 2 + rng.Intn(5)
		p := NewProblem(trial%2 == 0)
		plant := make([]float64, n)
		for j := 0; j < n; j++ {
			plant[j] = rng.Float64()
			p.AddVariable(rng.NormFloat64(), 0, 1)
		}
		m := 1 + rng.Intn(6)
		for i := 0; i < m; i++ {
			var coefs []Coef
			dot := 0.0
			for j := 0; j < n; j++ {
				v := rng.NormFloat64()
				coefs = append(coefs, Coef{j, v})
				dot += v * plant[j]
			}
			switch rng.Intn(3) {
			case 0:
				p.AddRow(coefs, LE, dot+rng.Float64())
			case 1:
				p.AddRow(coefs, GE, dot-rng.Float64())
			default:
				p.AddRow(coefs, EQ, dot)
			}
		}
		res := p.Solve()
		if res.Status != Optimal {
			t.Fatalf("trial %d: status=%v on planted-feasible mixed LP", trial, res.Status)
		}
		for i := range p.rows {
			dot := 0.0
			for _, c := range p.rows[i] {
				dot += c.Val * res.X[c.Var]
			}
			switch p.senses[i] {
			case LE:
				if dot > p.rhs[i]+1e-5 {
					t.Fatalf("trial %d: LE row %d violated (%v > %v)", trial, i, dot, p.rhs[i])
				}
			case GE:
				if dot < p.rhs[i]-1e-5 {
					t.Fatalf("trial %d: GE row %d violated (%v < %v)", trial, i, dot, p.rhs[i])
				}
			case EQ:
				if math.Abs(dot-p.rhs[i]) > 1e-5 {
					t.Fatalf("trial %d: EQ row %d violated (%v != %v)", trial, i, dot, p.rhs[i])
				}
			}
		}
	}
}
