package lp

import "math"

const (
	eps      = 1e-9
	pivotEps = 1e-10
)

// variable status in the simplex dictionary.
type vstat int8

const (
	atLower vstat = iota
	atUpper
	basic
)

// simplex holds the dense working state: structural variables first, then
// one slack per row (so column n+i is row i's slack), tableau kept in
// B⁻¹A form by explicit pivoting.
type simplex struct {
	m, n  int // rows, structural variables
	ncols int // n + m

	T       [][]float64 // m × ncols
	rhs     []float64   // B⁻¹ b
	baseRHS []float64   // p.rhs as of the last install (warm RHS edits)
	lower   []float64
	upper   []float64
	obj     []float64 // phase-2 costs (minimization form)

	basis  []int // basis[i] = column basic in row i
	status []vstat
	xval   []float64 // current value of every column

	iters    int
	maxIters int
}

// Solve runs two-phase bounded simplex on the problem.
func (p *Problem) Solve() Result {
	return p.SolveWithLimit(0)
}

// SolveWithLimit runs Solve with an iteration cap (0 = default of
// 200·(m+n) iterations).
func (p *Problem) SolveWithLimit(maxIters int) Result {
	s := newSimplex(p)
	s.install(p)
	return s.run(p, maxIters)
}

// newSimplex allocates working state sized for p. install must be called
// before run.
func newSimplex(p *Problem) *simplex {
	m, n := len(p.rows), len(p.obj)
	s := &simplex{
		m: m, n: n, ncols: n + m,
		T:       make([][]float64, m),
		rhs:     make([]float64, m),
		baseRHS: make([]float64, m),
		lower:   make([]float64, n+m),
		upper:   make([]float64, n+m),
		obj:     make([]float64, n+m),
		basis:   make([]int, m),
		status:  make([]vstat, n+m),
		xval:    make([]float64, n+m),
	}
	for i := 0; i < m; i++ {
		s.T[i] = make([]float64, s.ncols)
	}
	return s
}

// install (re)builds the tableau, bounds, and the all-slack starting basis
// from p, discarding any prior state.
func (s *simplex) install(p *Problem) {
	n := s.n
	copy(s.lower, p.lower)
	copy(s.upper, p.upper)
	for j := 0; j < n; j++ {
		c := p.obj[j]
		if p.maximize {
			c = -c
		}
		s.obj[j] = c
	}
	for i := 0; i < s.m; i++ {
		row := s.T[i]
		for j := range row {
			row[j] = 0
		}
		for _, cf := range p.rows[i] {
			row[cf.Var] += cf.Val
		}
		sl := n + i
		row[sl] = 1
		s.rhs[i] = p.rhs[i]
		s.baseRHS[i] = p.rhs[i]
		switch p.senses[i] {
		case LE:
			s.lower[sl], s.upper[sl] = 0, Inf
		case GE:
			s.lower[sl], s.upper[sl] = -Inf, 0
		case EQ:
			s.lower[sl], s.upper[sl] = 0, 0
		}
		s.basis[i] = sl
		s.status[sl] = basic
	}
	// Nonbasic structurals start at a finite bound (lower preferred).
	for j := 0; j < n; j++ {
		switch {
		case !math.IsInf(s.lower[j], -1):
			s.status[j] = atLower
			s.xval[j] = s.lower[j]
		case !math.IsInf(s.upper[j], 1):
			s.status[j] = atUpper
			s.xval[j] = s.upper[j]
		default:
			s.status[j] = atLower // free variable pinned at 0
			s.xval[j] = 0
		}
	}
	s.computeBasics()
}

// refreshBounds adopts p's current variable bounds and right-hand sides
// while keeping the tableau and basis from the previous solve — the
// warm-start entry point. An RHS edit never touches the tableau: row i was
// installed as a_i·x + s_i = baseRHS[i], so changing b_i to p.rhs[i] is
// equivalent to shifting slack s_i's bounds by off = baseRHS[i] − p.rhs[i]
// (LE: s_i ∈ [off, ∞), GE: s_i ∈ (−∞, off], EQ: s_i = off). Nonbasic
// variables are snapped onto a finite bound consistent with their status;
// phase 1 then repairs whatever basic infeasibility the perturbation
// introduced — a dual-simplex-style reoptimization that for small edits
// takes far fewer pivots than restarting from the all-slack basis.
func (s *simplex) refreshBounds(p *Problem) {
	copy(s.lower[:s.n], p.lower)
	copy(s.upper[:s.n], p.upper)
	for i := 0; i < s.m; i++ {
		sl := s.n + i
		off := s.baseRHS[i] - p.rhs[i]
		switch p.senses[i] {
		case LE:
			s.lower[sl], s.upper[sl] = off, Inf
		case GE:
			s.lower[sl], s.upper[sl] = -Inf, off
		case EQ:
			s.lower[sl], s.upper[sl] = off, off
		}
	}
	for j := 0; j < s.ncols; j++ {
		if s.status[j] == basic {
			continue
		}
		switch {
		case s.status[j] == atUpper && !math.IsInf(s.upper[j], 1):
			s.xval[j] = s.upper[j]
		case !math.IsInf(s.lower[j], -1):
			s.status[j] = atLower
			s.xval[j] = s.lower[j]
		case !math.IsInf(s.upper[j], 1):
			s.status[j] = atUpper
			s.xval[j] = s.upper[j]
		default:
			s.status[j] = atLower
			s.xval[j] = 0
		}
	}
	s.computeBasics()
}

// run executes both phases from the current basis and extracts the result.
func (s *simplex) run(p *Problem, maxIters int) Result {
	if maxIters <= 0 {
		maxIters = 200 * (s.m + s.n + 10)
	}
	s.maxIters = maxIters
	s.iters = 0

	// Phase 1: drive bound violations of basic variables to zero.
	if st := s.phase1(); st != Optimal {
		return Result{Status: st, Iterations: s.iters}
	}
	// Phase 2: optimize the true objective.
	st := s.phase2()
	res := Result{Status: st, Iterations: s.iters}
	if st == Optimal || st == IterLimit {
		res.X = make([]float64, s.n)
		copy(res.X, s.xval[:s.n])
		var z float64
		for j := 0; j < s.n; j++ {
			z += p.obj[j] * s.xval[j]
		}
		res.Objective = z
	}
	return res
}

// computeBasics refreshes the values of the basic variables from the
// tableau and the nonbasic bound values.
func (s *simplex) computeBasics() {
	for i := 0; i < s.m; i++ {
		v := s.rhs[i]
		for j := 0; j < s.ncols; j++ {
			if s.status[j] != basic && s.T[i][j] != 0 && s.xval[j] != 0 {
				v -= s.T[i][j] * s.xval[j]
			}
		}
		s.xval[s.basis[i]] = v
	}
}

// violation returns the signed bound violation of basic row i:
// negative when below lower, positive when above upper, 0 when feasible.
func (s *simplex) violation(i int) float64 {
	b := s.basis[i]
	x := s.xval[b]
	if x < s.lower[b]-eps {
		return x - s.lower[b]
	}
	if x > s.upper[b]+eps {
		return x - s.upper[b]
	}
	return 0
}

func (s *simplex) totalInfeasibility() float64 {
	t := 0.0
	for i := 0; i < s.m; i++ {
		t += math.Abs(s.violation(i))
	}
	return t
}

// phase1 reduces primal infeasibility to zero. Returns Optimal when a
// feasible basis is reached, Infeasible when stuck at positive
// infeasibility, IterLimit on budget exhaustion.
func (s *simplex) phase1() Status {
	for {
		if s.totalInfeasibility() <= eps {
			// Snap basics into their bounds to clear numeric dust.
			for i := 0; i < s.m; i++ {
				b := s.basis[i]
				if s.xval[b] < s.lower[b] {
					s.xval[b] = s.lower[b]
				}
				if s.xval[b] > s.upper[b] {
					s.xval[b] = s.upper[b]
				}
			}
			return Optimal
		}
		if s.iters >= s.maxIters {
			return IterLimit
		}
		// Phase-1 reduced cost of nonbasic j: d_j = Σ_i sign_i · T[i][j],
		// where sign_i = -1 if basic i below lower, +1 if above upper.
		// Moving x_j by t changes violation by d_j·(-t)… see ratio test.
		improvingFound := false
		useBland := s.iters > s.maxIters/2
		bestJ, bestScore, bestDir := -1, 0.0, 0.0
		for j := 0; j < s.ncols; j++ {
			if s.status[j] == basic {
				continue
			}
			d := 0.0
			for i := 0; i < s.m; i++ {
				v := s.violation(i)
				if v < 0 {
					d -= s.T[i][j]
				} else if v > 0 {
					d += s.T[i][j]
				}
			}
			// Direction chosen so total violation strictly decreases
			// (dV/dt = -d for an increase of x_j). Free variables (both
			// bounds infinite) may move in either direction.
			var dir float64
			free := math.IsInf(s.lower[j], -1) && math.IsInf(s.upper[j], 1)
			switch {
			case free && d > eps:
				dir = 1
			case free && d < -eps:
				dir = -1
			case s.status[j] == atLower && d > eps:
				dir = 1
			case s.status[j] == atUpper && d < -eps:
				dir = -1
			}
			if dir == 0 {
				continue
			}
			improvingFound = true
			score := math.Abs(d)
			if useBland {
				bestJ, bestDir = j, dir
				break
			}
			if score > bestScore {
				bestJ, bestScore, bestDir = j, score, dir
			}
		}
		if !improvingFound {
			return Infeasible
		}
		if !s.step(bestJ, bestDir, true) {
			// No blocking event in phase 1 means violations vanish along an
			// unbounded ray; numerically treat as infeasible stall.
			return Infeasible
		}
		s.iters++
	}
}

// phase2 optimizes the true (minimization) objective from a feasible basis.
func (s *simplex) phase2() Status {
	for {
		if s.iters >= s.maxIters {
			return IterLimit
		}
		// Reduced costs: z_j = c_j - Σ_i c_B(i) T[i][j].
		useBland := s.iters > s.maxIters/2
		bestJ, bestScore, bestDir := -1, 0.0, 0.0
		for j := 0; j < s.ncols; j++ {
			if s.status[j] == basic {
				continue
			}
			z := s.obj[j]
			for i := 0; i < s.m; i++ {
				if cb := s.obj[s.basis[i]]; cb != 0 {
					z -= cb * s.T[i][j]
				}
			}
			var dir float64
			free := math.IsInf(s.lower[j], -1) && math.IsInf(s.upper[j], 1)
			switch {
			case free && z < -eps:
				dir = 1
			case free && z > eps:
				dir = -1
			case s.status[j] == atLower && z < -eps:
				dir = 1
			case s.status[j] == atUpper && z > eps:
				dir = -1
			}
			if dir == 0 {
				continue
			}
			score := math.Abs(z)
			if useBland {
				bestJ, bestDir = j, dir
				break
			}
			if score > bestScore {
				bestJ, bestScore, bestDir = j, score, dir
			}
		}
		if bestJ < 0 {
			return Optimal
		}
		if !s.step(bestJ, bestDir, false) {
			return Unbounded
		}
		s.iters++
	}
}

// step moves nonbasic column q in direction dir (+1 increase, -1 decrease)
// until a blocking event, performing a pivot or a bound flip. In phase 1
// basics that are currently infeasible block when they *reach* their
// violated bound. Returns false when no finite blocking event exists.
func (s *simplex) step(q int, dir float64, phase1 bool) bool {
	// Maximum step from q's own bounds.
	tMax := Inf
	span := s.upper[q] - s.lower[q]
	if !math.IsInf(span, 1) {
		tMax = span
	}
	leave, tBest := -1, tMax
	leaveToUpper := false
	for i := 0; i < s.m; i++ {
		a := s.T[i][q] * dir // xB_i changes at rate -a per unit step
		if math.Abs(a) < pivotEps {
			continue
		}
		b := s.basis[i]
		x := s.xval[b]
		var t float64
		var toUpper bool
		if a > 0 {
			// Basic decreases. A below-lower basic moving further down
			// never blocks (its worsening is priced into the entering
			// choice); an above-upper basic blocks when it reaches upper;
			// a feasible basic blocks at lower.
			target := s.lower[b]
			toUpper = false
			if phase1 && x < s.lower[b]-eps {
				continue
			}
			if phase1 && x > s.upper[b]+eps {
				target = s.upper[b]
				toUpper = true
			}
			if math.IsInf(target, -1) {
				continue
			}
			t = (x - target) / a
		} else {
			// Basic increases: symmetric cases.
			target := s.upper[b]
			toUpper = true
			if phase1 && x > s.upper[b]+eps {
				continue
			}
			if phase1 && x < s.lower[b]-eps {
				target = s.lower[b]
				toUpper = false
			}
			if math.IsInf(target, 1) {
				continue
			}
			t = (x - target) / a // a < 0, target ≥ x → t ≥ 0
		}
		if t < -eps {
			t = 0
		}
		if t < tBest-eps || (t < tBest+eps && (leave < 0 || s.basis[i] < s.basis[leave])) {
			leave, tBest, leaveToUpper = i, math.Max(t, 0), toUpper
		}
	}

	if math.IsInf(tBest, 1) {
		return false
	}

	// Apply the move to the nonbasic variable and all basics.
	s.xval[q] += dir * tBest
	for i := 0; i < s.m; i++ {
		if a := s.T[i][q] * dir; a != 0 {
			s.xval[s.basis[i]] -= a * tBest
		}
	}

	if leave == -1 {
		// Bound flip: q runs to its opposite bound, basis unchanged.
		if dir > 0 {
			s.status[q] = atUpper
			s.xval[q] = s.upper[q]
		} else {
			s.status[q] = atLower
			s.xval[q] = s.lower[q]
		}
		return true
	}

	// Pivot: q enters, basis[leave] leaves at the bound it hit.
	lv := s.basis[leave]
	piv := s.T[leave][q]
	if math.Abs(piv) < pivotEps {
		// Numerically degenerate pivot; treat as bound flip to avoid
		// dividing by ~0. (Rare; Bland's rule prevents cycling.)
		if dir > 0 {
			s.status[q] = atUpper
			s.xval[q] = s.upper[q]
		} else {
			s.status[q] = atLower
			s.xval[q] = s.lower[q]
		}
		return true
	}
	inv := 1.0 / piv
	for j := 0; j < s.ncols; j++ {
		s.T[leave][j] *= inv
	}
	s.rhs[leave] *= inv
	for i := 0; i < s.m; i++ {
		if i == leave {
			continue
		}
		if f := s.T[i][q]; f != 0 {
			for j := 0; j < s.ncols; j++ {
				if s.T[leave][j] != 0 {
					s.T[i][j] -= f * s.T[leave][j]
				}
			}
			s.rhs[i] -= f * s.rhs[leave]
		}
	}
	s.basis[leave] = q
	s.status[q] = basic
	if leaveToUpper {
		s.status[lv] = atUpper
		s.xval[lv] = s.upper[lv]
	} else {
		s.status[lv] = atLower
		s.xval[lv] = s.lower[lv]
	}
	return true
}
