// Package lp implements a dense bounded-variable primal simplex solver for
// linear programs
//
//	min / max  c·x
//	s.t.       a_i·x  {≤,=,≥}  b_i        i = 1..m
//	           l_j ≤ x_j ≤ u_j            j = 1..n
//
// It is the LP substrate that the exact 0-1 ILP solver (internal/ilp) uses
// for relaxation bounding — the role CPLEX's LP engine plays in the paper.
// The implementation is a textbook two-phase method: phase 1 drives the sum
// of bound violations of the basic variables to zero, phase 2 optimizes the
// true objective; both use Dantzig pricing with a Bland fallback for
// anti-cycling.
package lp

import (
	"fmt"
	"math"
)

// Sense is a row comparison sense.
type Sense int8

const (
	// LE is a_i·x ≤ b_i.
	LE Sense = iota
	// GE is a_i·x ≥ b_i.
	GE
	// EQ is a_i·x = b_i.
	EQ
)

// String renders the sense.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	default:
		return "="
	}
}

// Inf is positive infinity for unbounded variable bounds.
var Inf = math.Inf(1)

// Problem is an LP in natural (row) form. Build it with NewProblem,
// AddVariable and AddRow, then call Solve.
type Problem struct {
	maximize bool
	obj      []float64
	lower    []float64
	upper    []float64
	rows     [][]Coef
	senses   []Sense
	rhs      []float64
}

// Coef is a sparse coefficient: variable index (0-based) and value.
type Coef struct {
	Var int
	Val float64
}

// NewProblem creates an empty problem. If maximize is true the objective is
// maximized, otherwise minimized.
func NewProblem(maximize bool) *Problem {
	return &Problem{maximize: maximize}
}

// AddVariable appends a variable with objective coefficient c and bounds
// [lo, hi], returning its index. Use -lp.Inf / lp.Inf for free directions.
func (p *Problem) AddVariable(c, lo, hi float64) int {
	if lo > hi {
		panic(fmt.Sprintf("lp: variable bounds inverted [%g,%g]", lo, hi))
	}
	p.obj = append(p.obj, c)
	p.lower = append(p.lower, lo)
	p.upper = append(p.upper, hi)
	return len(p.obj) - 1
}

// SetBounds replaces variable j's bounds — the mutation a reusable Solver
// applies between branch-and-bound node solves.
func (p *Problem) SetBounds(j int, lo, hi float64) {
	if j < 0 || j >= len(p.obj) {
		panic(fmt.Sprintf("lp: variable %d out of range [0,%d)", j, len(p.obj)))
	}
	if lo > hi {
		panic(fmt.Sprintf("lp: variable bounds inverted [%g,%g]", lo, hi))
	}
	p.lower[j], p.upper[j] = lo, hi
}

// SetRHS replaces row i's right-hand side — the mutation a long-lived
// ilp.Instance applies when an engineering change edits a bound. A
// reusable Solver treats the edit like a bound perturbation: the retained
// basis stays valid and the next solve reoptimizes warm (see
// simplex.refreshBounds).
func (p *Problem) SetRHS(i int, rhs float64) {
	if i < 0 || i >= len(p.rows) {
		panic(fmt.Sprintf("lp: row %d out of range [0,%d)", i, len(p.rows)))
	}
	p.rhs[i] = rhs
}

// NumVariables returns the number of variables added so far.
func (p *Problem) NumVariables() int { return len(p.obj) }

// NumRows returns the number of constraint rows added so far.
func (p *Problem) NumRows() int { return len(p.rows) }

// AddRow appends the constraint Σ coefs · x  sense  rhs and returns its
// index. Coefficients referencing unknown variables panic.
func (p *Problem) AddRow(coefs []Coef, sense Sense, rhs float64) int {
	for _, c := range coefs {
		if c.Var < 0 || c.Var >= len(p.obj) {
			panic(fmt.Sprintf("lp: row references unknown variable %d", c.Var))
		}
	}
	cp := make([]Coef, len(coefs))
	copy(cp, coefs)
	p.rows = append(p.rows, cp)
	p.senses = append(p.senses, sense)
	p.rhs = append(p.rhs, rhs)
	return len(p.rows) - 1
}

// Status is the outcome of an LP solve.
type Status int

const (
	// Optimal: an optimal solution was found.
	Optimal Status = iota
	// Infeasible: the constraints admit no point.
	Infeasible
	// Unbounded: the objective is unbounded over the feasible region.
	Unbounded
	// IterLimit: the iteration limit was exceeded.
	IterLimit
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "OPTIMAL"
	case Infeasible:
		return "INFEASIBLE"
	case Unbounded:
		return "UNBOUNDED"
	default:
		return "ITERLIMIT"
	}
}

// Result is the outcome of Solve.
type Result struct {
	Status     Status
	Objective  float64
	X          []float64 // variable values (len = NumVariables)
	Iterations int
}
