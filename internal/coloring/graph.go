// Package coloring applies the EC methodology to graph k-coloring, the
// second domain the paper points to ("comprehensive experimentation on the
// graph coloring problem", §8; the Kirovski–Potkonjak predecessor [5] was
// restricted to coloring and scheduling). It provides a graph substrate
// with DIMACS .col I/O, a coloring→ILP encoding, greedy baselines, and the
// enabling/fast/preserving EC adaptations.
package coloring

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Graph is a simple undirected graph over vertices 1..N (DIMACS .col
// convention). Self-loops and duplicate edges are rejected at AddEdge.
type Graph struct {
	N   int
	adj []map[int]bool // adj[v]: neighbor set; index 0 unused
}

// NewGraph returns an empty graph with n vertices.
func NewGraph(n int) *Graph {
	g := &Graph{N: n, adj: make([]map[int]bool, n+1)}
	for v := 1; v <= n; v++ {
		g.adj[v] = make(map[int]bool)
	}
	return g
}

// AddVertex grows the graph by one vertex and returns its index.
func (g *Graph) AddVertex() int {
	g.N++
	g.adj = append(g.adj, make(map[int]bool))
	return g.N
}

// HasEdge reports whether edge {u,v} is present.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 1 || u > g.N || v < 1 || v > g.N {
		return false
	}
	return g.adj[u][v]
}

// AddEdge inserts edge {u,v}. It reports whether the edge was new.
// Self-loops panic (they make coloring infeasible by definition).
func (g *Graph) AddEdge(u, v int) bool {
	if u == v {
		panic("coloring: self-loop")
	}
	if u < 1 || u > g.N || v < 1 || v > g.N {
		panic(fmt.Sprintf("coloring: edge (%d,%d) out of range [1,%d]", u, v, g.N))
	}
	if g.adj[u][v] {
		return false
	}
	g.adj[u][v] = true
	g.adj[v][u] = true
	return true
}

// RemoveEdge deletes edge {u,v}; it reports whether the edge existed.
func (g *Graph) RemoveEdge(u, v int) bool {
	if !g.HasEdge(u, v) {
		return false
	}
	delete(g.adj[u], v)
	delete(g.adj[v], u)
	return true
}

// RemoveVertex isolates vertex v (removes all its edges). The vertex index
// remains valid, mirroring cnf.EliminateVariable's index-stability.
func (g *Graph) RemoveVertex(v int) {
	if v < 1 || v > g.N {
		panic(fmt.Sprintf("coloring: vertex %d out of range", v))
	}
	for u := range g.adj[v] {
		delete(g.adj[u], v)
	}
	g.adj[v] = make(map[int]bool)
}

// Neighbors returns the sorted neighbor list of v.
func (g *Graph) Neighbors(v int) []int {
	out := make([]int, 0, len(g.adj[v]))
	for u := range g.adj[v] {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int {
	total := 0
	for v := 1; v <= g.N; v++ {
		total += len(g.adj[v])
	}
	return total / 2
}

// Edges returns all edges as ordered pairs (u < v), sorted.
func (g *Graph) Edges() [][2]int {
	var out [][2]int
	for v := 1; v <= g.N; v++ {
		for u := range g.adj[v] {
			if v < u {
				out = append(out, [2]int{v, u})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	out := NewGraph(g.N)
	for v := 1; v <= g.N; v++ {
		for u := range g.adj[v] {
			out.adj[v][u] = true
		}
	}
	return out
}

// MaxDegree returns the maximum vertex degree.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 1; v <= g.N; v++ {
		if d := len(g.adj[v]); d > max {
			max = d
		}
	}
	return max
}

// RandomGraph generates G(n, p) with a deterministic seed.
func RandomGraph(n int, p float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph(n)
	for u := 1; u <= n; u++ {
		for v := u + 1; v <= n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// PlantedColorable generates a random graph that is k-colorable by
// construction: vertices are partitioned into k classes and only
// cross-class edges are added (with probability p). It returns the graph
// and the planted coloring (1-based colors).
func PlantedColorable(n, k int, p float64, seed int64) (*Graph, []int) {
	if k < 1 {
		panic("coloring: k must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	colors := make([]int, n+1)
	for v := 1; v <= n; v++ {
		colors[v] = 1 + rng.Intn(k)
	}
	g := NewGraph(n)
	for u := 1; u <= n; u++ {
		for v := u + 1; v <= n; v++ {
			if colors[u] != colors[v] && rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g, colors
}

// ParseCol reads a DIMACS .col graph ("c" comments, "p edge N M", "e u v").
func ParseCol(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var g *Graph
	declared := -1
	edges := 0
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "c") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "p":
			if g != nil {
				return nil, fmt.Errorf("coloring: line %d: duplicate problem line", line)
			}
			if len(fields) != 4 || (fields[1] != "edge" && fields[1] != "edges") {
				return nil, fmt.Errorf("coloring: line %d: malformed problem line", line)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("coloring: line %d: bad vertex count", line)
			}
			m, err := strconv.Atoi(fields[3])
			if err != nil || m < 0 {
				return nil, fmt.Errorf("coloring: line %d: bad edge count", line)
			}
			g = NewGraph(n)
			declared = m
		case "e":
			if g == nil {
				return nil, fmt.Errorf("coloring: line %d: edge before problem line", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("coloring: line %d: malformed edge", line)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || u < 1 || v < 1 || u > g.N || v > g.N || u == v {
				return nil, fmt.Errorf("coloring: line %d: bad edge %q", line, text)
			}
			if g.AddEdge(u, v) {
				edges++
			}
		default:
			return nil, fmt.Errorf("coloring: line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("coloring: missing problem line")
	}
	if declared >= 0 && edges != declared {
		// Benchmarks sometimes list both directions; tolerate exact double.
		if edges*2 != declared {
			return nil, fmt.Errorf("coloring: declared %d edges, found %d", declared, edges)
		}
	}
	return g, nil
}

// WriteCol writes the graph in DIMACS .col format.
func WriteCol(w io.Writer, g *Graph, comments ...string) error {
	bw := bufio.NewWriter(w)
	for _, c := range comments {
		if _, err := fmt.Fprintf(bw, "c %s\n", c); err != nil {
			return err
		}
	}
	edges := g.Edges()
	if _, err := fmt.Fprintf(bw, "p edge %d %d\n", g.N, len(edges)); err != nil {
		return err
	}
	for _, e := range edges {
		if _, err := fmt.Fprintf(bw, "e %d %d\n", e[0], e[1]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Coloring is a color per vertex (1-based colors; 0 = uncolored). Index 0
// is unused.
type Coloring []int

// Valid reports whether no edge is monochromatic and every vertex has a
// color in 1..k (k ≤ 0 skips the palette check).
func (c Coloring) Valid(g *Graph, k int) bool {
	for v := 1; v <= g.N; v++ {
		if v >= len(c) || c[v] < 1 || (k > 0 && c[v] > k) {
			return false
		}
	}
	for _, e := range g.Edges() {
		if c[e[0]] == c[e[1]] {
			return false
		}
	}
	return true
}

// NumColors returns the number of distinct colors used.
func (c Coloring) NumColors() int {
	seen := map[int]bool{}
	for _, col := range c[1:] {
		if col > 0 {
			seen[col] = true
		}
	}
	return len(seen)
}

// Agreement returns the fraction of vertices on which c and other agree
// (1 for empty graphs) — the coloring analogue of assignment preservation.
func (c Coloring) Agreement(other Coloring) float64 {
	n := len(c) - 1
	if len(other)-1 < n {
		n = len(other) - 1
	}
	if n <= 0 {
		return 1
	}
	same := 0
	for v := 1; v <= n; v++ {
		if c[v] == other[v] {
			same++
		}
	}
	return float64(same) / float64(n)
}

// Clone returns an independent copy.
func (c Coloring) Clone() Coloring {
	out := make(Coloring, len(c))
	copy(out, c)
	return out
}
