package coloring

import (
	"testing"

	"ilpec/internal/domain"
	"ilpec/internal/ilp"
)

// TestColoringDomainConformance runs the shared cross-domain suite
// against the coloring adapter.
func TestColoringDomainConformance(t *testing.T) {
	domain.RunConformance(t, Domain())
}

// TestColoringDomainFastRecolorsLocally pins that a conflicting edge
// addition is absorbed by recoloring a sub-region, not the whole graph.
func TestColoringDomainFastRecolorsLocally(t *testing.T) {
	d := Domain()
	g := RandomGraph(10, 0.25, 7)
	k := Greedy(g).NumColors() + 1
	p := &Problem{G: g, K: k}
	col, _, err := domain.Solve(d, p, ilp.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Force a conflict between two same-colored, non-adjacent vertices.
	base := col.(Coloring)
	var u, v int
	for a := 1; a <= g.N && u == 0; a++ {
		for b := a + 1; b <= g.N; b++ {
			if base[a] == base[b] && !g.HasEdge(a, b) {
				u, v = a, b
				break
			}
		}
	}
	if u == 0 {
		t.Skip("no same-colored non-adjacent pair")
	}
	changed, err := d.ApplyChanges(p, []any{Change{Kind: "add-edge", U: u, V: v}})
	if err != nil {
		t.Fatal(err)
	}
	next, stats, err := domain.Fast(d, changed, base, domain.FastOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Verify(changed, next); err != nil {
		t.Fatal(err)
	}
	if stats.AlreadyValid {
		t.Fatal("conflicting edge reported as already valid")
	}
	if !stats.FullResolve && stats.SubSize >= g.N {
		t.Fatalf("region covered the whole graph (%d vertices)", stats.SubSize)
	}
}

// TestColoringEncodeDelta pins the delta encoder: edge batches replayed
// onto a live instance must build the exact model a re-encode would,
// including in-batch add-then-remove cancellation, while vertex
// additions fall back to a rebuild.
func TestColoringEncodeDelta(t *testing.T) {
	d := Domain().(colorDomain)
	g := NewGraph(5)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	p := &Problem{G: g, K: 3}

	check := func(name string, batch []any) {
		t.Helper()
		enc, err := d.Encode(p)
		if err != nil {
			t.Fatal(err)
		}
		delta, ok := d.EncodeDelta(enc, p, batch)
		if !ok {
			t.Fatalf("%s: batch not delta-expressible", name)
		}
		changed, err := d.ApplyChanges(p, batch)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := d.Encode(changed)
		if err != nil {
			t.Fatal(err)
		}
		inst := ilp.NewInstance(enc.ILP())
		delta.Apply(inst)
		if got, want := inst.Fingerprint(), ilp.ModelFingerprint(fresh.ILP()); got != want {
			t.Fatalf("%s: delta fingerprint %x, re-encode %x", name, got, want)
		}
		dres := inst.Resolve(ilp.Options{})
		fres := ilp.Solve(fresh.ILP(), ilp.Options{})
		if dres.Status != fres.Status || dres.Objective != fres.Objective {
			t.Fatalf("%s: delta solve (%v, %v) vs re-encode (%v, %v)",
				name, dres.Status, dres.Objective, fres.Status, fres.Objective)
		}
	}

	check("add-edge", []any{Change{Kind: "add-edge", U: 1, V: 3}})
	check("remove-edge", []any{Change{Kind: "remove-edge", U: 4, V: 5}})
	check("remove-vertex", []any{Change{Kind: "remove-vertex", V: 3}})
	check("mixed", []any{
		Change{Kind: "add-edge", U: 2, V: 5},
		Change{Kind: "remove-edge", U: 1, V: 2},
	})
	check("add-then-remove", []any{
		Change{Kind: "add-edge", U: 1, V: 4},
		Change{Kind: "remove-edge", U: 1, V: 4},
	})
	check("add-then-remove-vertex", []any{
		Change{Kind: "add-edge", U: 1, V: 4},
		Change{Kind: "remove-vertex", V: 4},
	})

	enc, err := d.Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	for name, batch := range map[string][]any{
		"add-vertex":    {Change{Kind: "add-vertex"}},
		"absent-remove": {Change{Kind: "remove-edge", U: 1, V: 5}},
		"bad-edge":      {Change{Kind: "add-edge", U: 0, V: 9}},
	} {
		if _, ok := d.EncodeDelta(enc, p, batch); ok {
			t.Fatalf("%s: expected rebuild fallback", name)
		}
	}
}
