package coloring

import (
	"testing"

	"ilpec/internal/domain"
	"ilpec/internal/ilp"
)

// TestColoringDomainConformance runs the shared cross-domain suite
// against the coloring adapter.
func TestColoringDomainConformance(t *testing.T) {
	domain.RunConformance(t, Domain())
}

// TestColoringDomainFastRecolorsLocally pins that a conflicting edge
// addition is absorbed by recoloring a sub-region, not the whole graph.
func TestColoringDomainFastRecolorsLocally(t *testing.T) {
	d := Domain()
	g := RandomGraph(10, 0.25, 7)
	k := Greedy(g).NumColors() + 1
	p := &Problem{G: g, K: k}
	col, _, err := domain.Solve(d, p, ilp.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Force a conflict between two same-colored, non-adjacent vertices.
	base := col.(Coloring)
	var u, v int
	for a := 1; a <= g.N && u == 0; a++ {
		for b := a + 1; b <= g.N; b++ {
			if base[a] == base[b] && !g.HasEdge(a, b) {
				u, v = a, b
				break
			}
		}
	}
	if u == 0 {
		t.Skip("no same-colored non-adjacent pair")
	}
	changed, err := d.ApplyChanges(p, []any{Change{Kind: "add-edge", U: u, V: v}})
	if err != nil {
		t.Fatal(err)
	}
	next, stats, err := domain.Fast(d, changed, base, domain.FastOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Verify(changed, next); err != nil {
		t.Fatal(err)
	}
	if stats.AlreadyValid {
		t.Fatal("conflicting edge reported as already valid")
	}
	if !stats.FullResolve && stats.SubSize >= g.N {
		t.Fatalf("region covered the whole graph (%d vertices)", stats.SubSize)
	}
}
