package coloring

import (
	"fmt"

	"ilpec/internal/ilp"
)

// Encoding is the k-coloring 0-1 ILP: x_{v,c} = 1 iff vertex v gets color
// c, with one-color-per-vertex equality rows and per-edge conflict rows.
// The objective minimizes the number of colors actually used (via y_c
// indicator variables), so EC re-solves do not drift to wasteful palettes.
type Encoding struct {
	Model *ilp.Model
	Graph *Graph
	K     int
	// xCol[v][c] (1-based v, 0-based c) is the column of x_{v,c}.
	xCol [][]int
	// yCol[c] is the used-color indicator column.
	yCol []int
}

// XCol returns the column index of x_{v,c} for vertex v and color c
// (1-based color).
func (e *Encoding) XCol(v, c int) int { return e.xCol[v][c-1] }

// YCol returns the column of the color-used indicator for color c.
func (e *Encoding) YCol(c int) int { return e.yCol[c-1] }

// NewEncoding builds the k-coloring ILP for g.
func NewEncoding(g *Graph, k int) *Encoding {
	if k < 1 {
		panic("coloring: k must be positive")
	}
	m := ilp.NewModel(false) // minimize colors used
	e := &Encoding{Model: m, Graph: g, K: k,
		xCol: make([][]int, g.N+1), yCol: make([]int, k)}
	for c := 0; c < k; c++ {
		e.yCol[c] = m.AddVar(fmt.Sprintf("y%d", c+1), 1)
	}
	for v := 1; v <= g.N; v++ {
		e.xCol[v] = make([]int, k)
		for c := 0; c < k; c++ {
			e.xCol[v][c] = m.AddVar(fmt.Sprintf("x%d_%d", v, c+1), 0)
		}
	}
	// Exactly one color per vertex.
	for v := 1; v <= g.N; v++ {
		coefs := make([]ilp.Coef, k)
		for c := 0; c < k; c++ {
			coefs[c] = ilp.Coef{Var: e.xCol[v][c], Val: 1}
		}
		m.AddRow(fmt.Sprintf("one_%d", v), coefs, ilp.EQ, 1)
	}
	// Conflicting endpoints differ.
	for _, ed := range g.Edges() {
		for c := 0; c < k; c++ {
			m.AddRow(fmt.Sprintf("e%d_%d_c%d", ed[0], ed[1], c+1),
				[]ilp.Coef{{Var: e.xCol[ed[0]][c], Val: 1}, {Var: e.xCol[ed[1]][c], Val: 1}},
				ilp.LE, 1)
		}
	}
	// Link x to the used-color indicators and break color symmetry.
	for v := 1; v <= g.N; v++ {
		for c := 0; c < k; c++ {
			m.AddRow("", []ilp.Coef{{Var: e.yCol[c], Val: 1}, {Var: e.xCol[v][c], Val: -1}}, ilp.GE, 0)
		}
	}
	for c := 1; c < k; c++ {
		m.AddRow(fmt.Sprintf("sym%d", c),
			[]ilp.Coef{{Var: e.yCol[c-1], Val: 1}, {Var: e.yCol[c], Val: -1}}, ilp.GE, 0)
	}
	return e
}

// Decode converts an ILP solution into a Coloring.
func (e *Encoding) Decode(sol ilp.Solution) Coloring {
	col := make(Coloring, e.Graph.N+1)
	for v := 1; v <= e.Graph.N; v++ {
		for c := 1; c <= e.K; c++ {
			if sol[e.XCol(v, c)] == 1 {
				col[v] = c
				break
			}
		}
	}
	return col
}

// EncodeColoring converts a coloring into an ILP solution vector (colors
// above K or missing are left unassigned — such vectors are infeasible and
// serve only as branching guides).
func (e *Encoding) EncodeColoring(col Coloring) ilp.Solution {
	sol := make(ilp.Solution, e.Model.NumVars())
	used := make([]bool, e.K)
	for v := 1; v <= e.Graph.N && v < len(col); v++ {
		if c := col[v]; c >= 1 && c <= e.K {
			sol[e.XCol(v, c)] = 1
			used[c-1] = true
		}
	}
	for c := 0; c < e.K; c++ {
		if used[c] {
			sol[e.yCol[c]] = 1
		}
	}
	return sol
}

// SolveExact colors g with at most k colors using the exact ILP solver.
// warm, when non-nil, guides branching (and is adopted when feasible).
func SolveExact(g *Graph, k int, warm Coloring, opts ilp.Options) (Coloring, ilp.Result, error) {
	e := NewEncoding(g, k)
	if warm != nil {
		opts.WarmStart = e.EncodeColoring(warm)
	}
	res := ilp.Solve(e.Model, opts)
	switch res.Status {
	case ilp.Optimal, ilp.Feasible:
		col := e.Decode(res.Solution)
		if !col.Valid(g, k) {
			return nil, res, fmt.Errorf("coloring: decoded coloring invalid (internal error)")
		}
		return col, res, nil
	case ilp.Infeasible:
		return nil, res, fmt.Errorf("coloring: graph is not %d-colorable", k)
	default:
		return nil, res, fmt.Errorf("coloring: solve hit limits (%s)", res.Status)
	}
}

// Greedy colors g with the DSATUR heuristic and returns the coloring (an
// upper bound on the chromatic number). It never fails.
func Greedy(g *Graph) Coloring {
	col := make(Coloring, g.N+1)
	satDeg := make([]map[int]bool, g.N+1)
	for v := 1; v <= g.N; v++ {
		satDeg[v] = make(map[int]bool)
	}
	for colored := 0; colored < g.N; colored++ {
		// Pick the uncolored vertex with max saturation, tie on degree.
		best, bestSat, bestDeg := -1, -1, -1
		for v := 1; v <= g.N; v++ {
			if col[v] != 0 {
				continue
			}
			s, d := len(satDeg[v]), g.Degree(v)
			if s > bestSat || (s == bestSat && d > bestDeg) {
				best, bestSat, bestDeg = v, s, d
			}
		}
		c := 1
		for satDeg[best][c] {
			c++
		}
		col[best] = c
		for _, u := range g.Neighbors(best) {
			satDeg[u][c] = true
		}
	}
	return col
}
