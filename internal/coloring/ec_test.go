package coloring

import (
	"testing"

	"ilpec/internal/ilp"
)

func TestEncodingShape(t *testing.T) {
	g := triangle()
	e := NewEncoding(g, 3)
	m := e.Model
	// 3 y vars + 9 x vars.
	if m.NumVars() != 12 {
		t.Fatalf("vars = %d", m.NumVars())
	}
	// 3 one-rows + 3 edges × 3 colors + 9 link rows + 2 symmetry rows.
	if m.NumRows() != 3+9+9+2 {
		t.Fatalf("rows = %d", m.NumRows())
	}
}

func TestSolveExactTriangle(t *testing.T) {
	g := triangle()
	col, res, err := SolveExact(g, 3, nil, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !col.Valid(g, 3) || col.NumColors() != 3 {
		t.Fatalf("coloring %v", col)
	}
	if res.Status != ilp.Optimal || res.Objective != 3 {
		t.Fatalf("objective = %v", res.Objective)
	}
	// A triangle is not 2-colorable.
	if _, _, err := SolveExact(g, 2, nil, ilp.Options{}); err == nil {
		t.Fatal("2-coloring a triangle should fail")
	}
}

func TestSolveExactMinimizesColors(t *testing.T) {
	// A path 1-2-3 is 2-colorable even with k=3 available.
	g := NewGraph(3)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	col, res, err := SolveExact(g, 3, nil, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective != 2 || col.NumColors() != 2 {
		t.Fatalf("used %v colors (obj %v), want 2", col.NumColors(), res.Objective)
	}
}

func TestGreedyDSATUR(t *testing.T) {
	g, _ := PlantedColorable(25, 4, 0.5, 3)
	col := Greedy(g)
	if !col.Valid(g, 0) {
		t.Fatal("greedy coloring invalid")
	}
	if col.NumColors() > g.MaxDegree()+1 {
		t.Fatal("greedy exceeded Δ+1 colors")
	}
	// On an empty graph greedy uses one color.
	e := NewGraph(5)
	if Greedy(e).NumColors() != 1 {
		t.Fatal("empty graph should use 1 color")
	}
}

func TestWarmStartAdopted(t *testing.T) {
	g, planted := PlantedColorable(12, 3, 0.5, 5)
	col, res, err := SolveExact(g, 3, Coloring(planted), ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !col.Valid(g, 3) {
		t.Fatal("invalid")
	}
	_ = res
}

func TestSpareColors(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(1, 2)
	col := Coloring{0, 1, 2, 1}
	spares := SpareColors(g, col, 1, 3)
	if len(spares) != 1 || spares[0] != 3 {
		t.Fatalf("spares = %v", spares)
	}
	// Vertex 3 is isolated: colors 2 and 3 are spare.
	spares3 := SpareColors(g, col, 3, 3)
	if len(spares3) != 2 {
		t.Fatalf("spares3 = %v", spares3)
	}
}

func TestVerifyFlexibility(t *testing.T) {
	g := triangle()
	col := Coloring{0, 1, 2, 3}
	rep := VerifyFlexibility(g, col, 3)
	if rep.WithSpare != 0 || len(rep.Inflexible) != 3 {
		t.Fatalf("triangle with k=3 should have no spares: %+v", rep)
	}
	rep4 := VerifyFlexibility(g, col, 4)
	if rep4.WithSpare != 3 {
		t.Fatalf("k=4 should give every vertex a spare: %+v", rep4)
	}
}

func TestSolveEnableHard(t *testing.T) {
	g, _ := PlantedColorable(10, 3, 0.35, 9)
	col, _, err := SolveEnable(g, 4, true, 1, nil, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !col.Valid(g, 4) {
		t.Fatal("enabled coloring invalid")
	}
	rep := VerifyFlexibility(g, col, 4)
	if len(rep.Inflexible) != 0 {
		t.Fatalf("hard enabling left inflexible vertices %v", rep.Inflexible)
	}
}

func TestSolveEnableHardInfeasible(t *testing.T) {
	// Triangle with k=3: every valid coloring uses all three colors and
	// leaves no spare anywhere.
	if _, _, err := SolveEnable(triangle(), 3, true, 1, nil, ilp.Options{}); err == nil {
		t.Fatal("expected infeasible enabling")
	}
}

func TestSolveEnableSoft(t *testing.T) {
	g := triangle()
	col, _, err := SolveEnable(g, 3, false, 2, nil, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !col.Valid(g, 3) {
		t.Fatal("soft-enabled coloring invalid")
	}
}

func TestFastRecolorAbsorbsEdge(t *testing.T) {
	g, planted := PlantedColorable(15, 4, 0.4, 17)
	prev := Coloring(planted)
	// Add an edge between two same-colored vertices if possible.
	var u, v int
	for a := 1; a <= g.N && u == 0; a++ {
		for b := a + 1; b <= g.N; b++ {
			if prev[a] == prev[b] && !g.HasEdge(a, b) {
				u, v = a, b
				break
			}
		}
	}
	if u == 0 {
		t.Skip("no monochromatic non-edge available")
	}
	g.AddEdge(u, v)
	res, err := FastRecolor(g, prev, 4, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.AlreadyValid {
		t.Fatal("edge addition must conflict")
	}
	if !res.Coloring.Valid(g, 4) {
		t.Fatal("recoloring invalid")
	}
	if res.SubVertices > g.N/2 && res.Escalations == 0 {
		t.Fatalf("recolor region suspiciously large: %d", res.SubVertices)
	}
	// Outside the initial conflict set colors should mostly survive.
	if res.Coloring.Agreement(prev) < 0.5 {
		t.Fatalf("agreement %.2f too low", res.Coloring.Agreement(prev))
	}
}

func TestFastRecolorNoConflict(t *testing.T) {
	g, planted := PlantedColorable(8, 3, 0.4, 21)
	res, err := FastRecolor(g, Coloring(planted), 3, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AlreadyValid {
		t.Fatal("valid coloring should be kept")
	}
}

func TestFastRecolorEscalates(t *testing.T) {
	// A 4-cycle colored 1,2,1,2 with k=2; adding the chord (1,3) makes it
	// non-2-colorable locally: recoloring vertex 1 or 3 alone fails, and
	// escalation must eventually prove infeasibility (odd cycle with k=2).
	g := NewGraph(4)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(1, 4)
	prev := Coloring{0, 1, 2, 1, 2}
	if !prev.Valid(g, 2) {
		t.Fatal("setup wrong")
	}
	g.AddEdge(1, 3) // odd triangle 1-2-3
	_, err := FastRecolor(g, prev, 2, ilp.Options{})
	if err == nil {
		t.Fatal("expected infeasibility for k=2 with a triangle")
	}
	// With k=3 the same change is absorbed.
	res, err := FastRecolor(g, prev, 3, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Coloring.Valid(g, 3) {
		t.Fatal("k=3 recoloring invalid")
	}
}

func TestPreserveRecolor(t *testing.T) {
	g, planted := PlantedColorable(12, 3, 0.4, 25)
	prev := Coloring(planted)
	// Add a conflicting edge.
	var u, v int
	for a := 1; a <= g.N && u == 0; a++ {
		for b := a + 1; b <= g.N; b++ {
			if prev[a] == prev[b] && !g.HasEdge(a, b) {
				u, v = a, b
				break
			}
		}
	}
	if u == 0 {
		t.Skip("no monochromatic non-edge")
	}
	g.AddEdge(u, v)
	col, _, err := PreserveRecolor(g, prev, 3, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !col.Valid(g, 3) {
		t.Fatal("preserving coloring invalid")
	}
	// At most the two conflicted endpoints minus... at least all but one
	// vertex could keep colors; require ≥ N-2 agreement.
	minAgree := float64(g.N-2) / float64(g.N)
	if col.Agreement(prev) < minAgree-1e-9 {
		t.Fatalf("agreement %.2f below %v", col.Agreement(prev), minAgree)
	}
}

func TestEncodeColoringRoundTrip(t *testing.T) {
	g := triangle()
	e := NewEncoding(g, 3)
	col := Coloring{0, 1, 2, 3}
	sol := e.EncodeColoring(col)
	back := e.Decode(sol)
	for v := 1; v <= 3; v++ {
		if back[v] != col[v] {
			t.Fatalf("round trip broke vertex %d", v)
		}
	}
	if !e.Model.Feasible(sol) {
		t.Fatal("valid coloring encodes to infeasible solution")
	}
}
