package coloring

import (
	"bytes"
	"strings"
	"testing"
)

func triangle() *Graph {
	g := NewGraph(3)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(1, 3)
	return g
}

func TestGraphBasics(t *testing.T) {
	g := NewGraph(4)
	if !g.AddEdge(1, 2) || g.AddEdge(1, 2) || g.AddEdge(2, 1) {
		t.Fatal("duplicate edge handling wrong")
	}
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) || g.HasEdge(1, 3) {
		t.Fatal("HasEdge wrong")
	}
	if g.NumEdges() != 1 || g.Degree(1) != 1 || g.Degree(3) != 0 {
		t.Fatal("counts wrong")
	}
	if !g.RemoveEdge(1, 2) || g.RemoveEdge(1, 2) {
		t.Fatal("RemoveEdge wrong")
	}
	v := g.AddVertex()
	if v != 5 || g.N != 5 {
		t.Fatal("AddVertex wrong")
	}
	if g.HasEdge(0, 1) || g.HasEdge(1, 99) {
		t.Fatal("out-of-range HasEdge should be false")
	}
}

func TestGraphPanics(t *testing.T) {
	g := NewGraph(2)
	for _, fn := range []func(){
		func() { g.AddEdge(1, 1) },
		func() { g.AddEdge(0, 1) },
		func() { g.RemoveVertex(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestRemoveVertex(t *testing.T) {
	g := triangle()
	g.RemoveVertex(2)
	if g.Degree(2) != 0 || g.HasEdge(1, 2) || !g.HasEdge(1, 3) {
		t.Fatal("RemoveVertex wrong")
	}
	if g.N != 3 {
		t.Fatal("vertex index should remain valid")
	}
}

func TestEdgesSortedAndClone(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(3, 4)
	g.AddEdge(1, 2)
	es := g.Edges()
	if len(es) != 2 || es[0] != [2]int{1, 2} || es[1] != [2]int{3, 4} {
		t.Fatalf("Edges = %v", es)
	}
	c := g.Clone()
	c.AddEdge(1, 3)
	if g.HasEdge(1, 3) {
		t.Fatal("Clone shares storage")
	}
	if g.MaxDegree() != 1 || c.MaxDegree() != 2 {
		t.Fatal("MaxDegree wrong")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := NewGraph(5)
	g.AddEdge(3, 5)
	g.AddEdge(3, 1)
	g.AddEdge(3, 4)
	n := g.Neighbors(3)
	if len(n) != 3 || n[0] != 1 || n[1] != 4 || n[2] != 5 {
		t.Fatalf("Neighbors = %v", n)
	}
}

func TestRandomGraphDeterministic(t *testing.T) {
	a := RandomGraph(20, 0.3, 7)
	b := RandomGraph(20, 0.3, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("RandomGraph not deterministic")
	}
	if a.NumEdges() == 0 || a.NumEdges() == 20*19/2 {
		t.Fatalf("suspicious edge count %d", a.NumEdges())
	}
}

func TestPlantedColorable(t *testing.T) {
	g, colors := PlantedColorable(30, 4, 0.4, 11)
	col := Coloring(colors)
	if !col.Valid(g, 4) {
		t.Fatal("planted coloring invalid")
	}
}

func TestColoringValid(t *testing.T) {
	g := triangle()
	good := Coloring{0, 1, 2, 3}
	bad := Coloring{0, 1, 1, 2}
	if !good.Valid(g, 3) || bad.Valid(g, 3) {
		t.Fatal("Valid wrong")
	}
	if good.Valid(g, 2) {
		t.Fatal("palette check missed color 3")
	}
	if (Coloring{0, 1, 2}).Valid(g, 3) {
		t.Fatal("short coloring accepted")
	}
	if good.NumColors() != 3 {
		t.Fatal("NumColors wrong")
	}
}

func TestColoringAgreement(t *testing.T) {
	a := Coloring{0, 1, 2, 3, 1}
	b := Coloring{0, 1, 2, 1, 1}
	if got := a.Agreement(b); got != 0.75 {
		t.Fatalf("Agreement = %v", got)
	}
	if got := (Coloring{0}).Agreement(Coloring{0}); got != 1 {
		t.Fatalf("empty Agreement = %v", got)
	}
	c := a.Clone()
	c[1] = 9
	if a[1] != 1 {
		t.Fatal("Clone aliases")
	}
}

func TestColRoundTrip(t *testing.T) {
	g := triangle()
	var buf bytes.Buffer
	if err := WriteCol(&buf, g, "triangle"); err != nil {
		t.Fatal(err)
	}
	h, err := ParseCol(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.N != 3 || h.NumEdges() != 3 {
		t.Fatalf("round trip: %d vertices %d edges", h.N, h.NumEdges())
	}
}

func TestParseColErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"no header", "e 1 2\n"},
		{"bad header", "p edge x 1\n"},
		{"self loop", "p edge 2 1\ne 1 1\n"},
		{"vertex range", "p edge 2 1\ne 1 5\n"},
		{"edge count", "p edge 2 3\ne 1 2\n"},
		{"unknown record", "p edge 2 0\nq 1 2\n"},
		{"duplicate header", "p edge 2 0\np edge 2 0\n"},
		{"empty", ""},
	}
	for _, c := range cases {
		if _, err := ParseCol(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestParseColToleratesDirectedDoubleCount(t *testing.T) {
	in := "p edge 2 2\ne 1 2\n"
	g, err := ParseCol(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatal("double-counted header not tolerated")
	}
}
