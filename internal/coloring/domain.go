package coloring

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"ilpec/internal/domain"
	"ilpec/internal/ilp"
)

// This file adapts graph k-coloring to the generic domain.Domain
// interface, replacing the bespoke FastRecolor/PreserveRecolor/
// SolveEnable entry points as the serving-layer path. Problem values are
// *coloring.Problem, solutions are Coloring, changes are coloring.Change.

// Problem is the EC problem value of the coloring domain: a graph plus
// the palette size K.
type Problem struct {
	G *Graph
	K int
}

// Clone deep-copies the problem.
func (p *Problem) Clone() *Problem { return &Problem{G: p.G.Clone(), K: p.K} }

// Change is one coloring specification change.
type Change struct {
	// Kind is "add-edge", "remove-edge", "add-vertex", or "remove-vertex"
	// (removal isolates the vertex, mirroring cnf variable elimination).
	Kind string `json:"kind"`
	U    int    `json:"u,omitempty"`
	V    int    `json:"v,omitempty"`
}

// Domain returns the graph-coloring domain adapter.
func Domain() domain.Domain { return colorDomain{} }

func init() { domain.Register(Domain()) }

type colorDomain struct{}

func (colorDomain) Name() string { return "coloring" }

func (colorDomain) problem(p any) (*Problem, error) {
	cp, ok := p.(*Problem)
	if !ok || cp == nil || cp.G == nil {
		return nil, fmt.Errorf("coloring: problem is %T, want *coloring.Problem", p)
	}
	return cp, nil
}

func (colorDomain) solution(s any) (Coloring, error) {
	col, ok := s.(Coloring)
	if !ok || col == nil {
		return nil, fmt.Errorf("coloring: solution is %T, want coloring.Coloring", s)
	}
	return col, nil
}

func (d colorDomain) Validate(p any) error {
	cp, err := d.problem(p)
	if err != nil {
		return err
	}
	if cp.K < 1 {
		return fmt.Errorf("coloring: palette size %d", cp.K)
	}
	if cp.G.N < 0 {
		return fmt.Errorf("coloring: negative vertex count")
	}
	return nil
}

func (d colorDomain) CloneProblem(p any) any {
	cp, err := d.problem(p)
	if err != nil {
		panic(err)
	}
	return cp.Clone()
}

func (d colorDomain) ProblemSize(p any) (int, int) {
	cp, err := d.problem(p)
	if err != nil {
		return 0, 0
	}
	return cp.G.N, cp.G.NumEdges()
}

// problemJSON is the coloring wire form.
type problemJSON struct {
	Vertices int      `json:"vertices"`
	K        int      `json:"k"`
	Edges    [][2]int `json:"edges"`
}

func (d colorDomain) ParseProblem(spec json.RawMessage) (any, error) {
	var req problemJSON
	dec := json.NewDecoder(strings.NewReader(string(spec)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("coloring: bad problem: %w", err)
	}
	if req.Vertices < 0 || req.K < 1 {
		return nil, fmt.Errorf("coloring: need vertices ≥ 0 and k ≥ 1")
	}
	g := NewGraph(req.Vertices)
	for i, e := range req.Edges {
		u, v := e[0], e[1]
		if u == v || u < 1 || v < 1 || u > g.N || v > g.N {
			return nil, fmt.Errorf("coloring: bad edge %d (%d,%d)", i, u, v)
		}
		g.AddEdge(u, v)
	}
	return &Problem{G: g, K: req.K}, nil
}

func (d colorDomain) RenderProblem(p any) any {
	cp, err := d.problem(p)
	if err != nil {
		return nil
	}
	return problemJSON{Vertices: cp.G.N, K: cp.K, Edges: cp.G.Edges()}
}

func (d colorDomain) ParseChange(spec json.RawMessage) (any, error) {
	var c Change
	if err := json.Unmarshal(spec, &c); err != nil {
		return nil, fmt.Errorf("coloring: bad change: %w", err)
	}
	switch strings.ToLower(c.Kind) {
	case "add-edge", "remove-edge", "add-vertex", "remove-vertex":
		c.Kind = strings.ToLower(c.Kind)
		return c, nil
	default:
		return nil, fmt.Errorf("coloring: unknown kind %q", c.Kind)
	}
}

func (d colorDomain) RenderChange(change any) any {
	c, ok := change.(Change)
	if !ok {
		return nil
	}
	return c
}

func (d colorDomain) ApplyChanges(p any, changes []any) (any, error) {
	cp, err := d.problem(p)
	if err != nil {
		return nil, err
	}
	out := cp.Clone()
	for i, raw := range changes {
		c, ok := raw.(Change)
		if !ok {
			return nil, fmt.Errorf("coloring: change %d is %T, want coloring.Change", i, raw)
		}
		switch c.Kind {
		case "add-edge":
			if c.U == c.V || c.U < 1 || c.V < 1 || c.U > out.G.N || c.V > out.G.N {
				return nil, fmt.Errorf("coloring: change %d: bad edge (%d,%d)", i, c.U, c.V)
			}
			out.G.AddEdge(c.U, c.V)
		case "remove-edge":
			if !out.G.RemoveEdge(c.U, c.V) {
				return nil, fmt.Errorf("coloring: change %d: edge (%d,%d) absent", i, c.U, c.V)
			}
		case "add-vertex":
			out.G.AddVertex()
		case "remove-vertex":
			if c.V < 1 || c.V > out.G.N {
				return nil, fmt.Errorf("coloring: change %d: vertex %d out of range", i, c.V)
			}
			out.G.RemoveVertex(c.V)
		default:
			return nil, fmt.Errorf("coloring: change %d has unknown kind %q", i, c.Kind)
		}
	}
	return out, nil
}

func (colorDomain) Tightening(change any) bool {
	c, ok := change.(Change)
	// Only new edges can invalidate a coloring; vertex additions are
	// colored greedily by ExtendSolution and removals only isolate.
	return ok && c.Kind == "add-edge"
}

func (d colorDomain) CloneSolution(s any) any {
	col, err := d.solution(s)
	if err != nil {
		panic(err)
	}
	return col.Clone()
}

func (d colorDomain) ExtendSolution(p, prev any) (any, error) {
	cp, err := d.problem(p)
	if err != nil {
		return nil, err
	}
	col, err := d.solution(prev)
	if err != nil {
		return nil, err
	}
	next := make(Coloring, cp.G.N+1)
	copy(next, col)
	for v := 1; v <= cp.G.N; v++ {
		if next[v] >= 1 && next[v] <= cp.K {
			continue
		}
		spare := SpareColors(cp.G, next, v, cp.K)
		if len(spare) == 0 {
			return nil, fmt.Errorf("coloring: cannot extend: vertex %d has no free color", v)
		}
		next[v] = spare[0]
	}
	return next, nil
}

func (d colorDomain) Verify(p, s any) error {
	cp, err := d.problem(p)
	if err != nil {
		return err
	}
	col, err := d.solution(s)
	if err != nil {
		return err
	}
	if !col.Valid(cp.G, cp.K) {
		return fmt.Errorf("coloring: invalid %d-coloring", cp.K)
	}
	return nil
}

func (d colorDomain) Render(p, s any) any {
	col, err := d.solution(s)
	if err != nil {
		return nil
	}
	if len(col) == 0 {
		return []int{}
	}
	return []int(col[1:]) // per-vertex colors, vertex 1 first
}

func (d colorDomain) ParseSolution(p any, spec json.RawMessage) (any, error) {
	cp, err := d.problem(p)
	if err != nil {
		return nil, err
	}
	var colors []int
	if err := json.Unmarshal(spec, &colors); err != nil {
		return nil, fmt.Errorf("coloring: bad solution: %w", err)
	}
	if len(colors) != cp.G.N {
		return nil, fmt.Errorf("coloring: solution covers %d vertices, want %d", len(colors), cp.G.N)
	}
	col := make(Coloring, cp.G.N+1)
	copy(col[1:], colors)
	return col, nil
}

func (d colorDomain) Agreement(prev, next any) float64 {
	pc, err1 := d.solution(prev)
	nc, err2 := d.solution(next)
	if err1 != nil || err2 != nil {
		return 0
	}
	return nc.Agreement(pc)
}

func (colorDomain) DontCares(p, s any) int { return 0 }

func (d colorDomain) Flex(p, s any, k int) (domain.FlexReport, error) {
	cp, err := d.problem(p)
	if err != nil {
		return domain.FlexReport{}, err
	}
	col, err := d.solution(s)
	if err != nil {
		return domain.FlexReport{}, err
	}
	rep := VerifyFlexibility(cp.G, col, cp.K)
	return domain.FlexReport{Total: rep.Total, Flexible: rep.WithSpare}, nil
}

// colorEncoding wraps the k-coloring ILP encoding.
type colorEncoding struct {
	e *Encoding
}

func (ce *colorEncoding) ILP() *ilp.Model { return ce.e.Model }

func (ce *colorEncoding) Decode(sol ilp.Solution) (any, error) {
	return ce.e.Decode(sol), nil
}

func (ce *colorEncoding) WarmStart(sol any) (ilp.Solution, bool) {
	col, ok := sol.(Coloring)
	if !ok || col == nil {
		return nil, false
	}
	return ce.e.EncodeColoring(col), true
}

func (d colorDomain) Encode(p any) (domain.Encoding, error) {
	cp, err := d.problem(p)
	if err != nil {
		return nil, err
	}
	return &colorEncoding{e: NewEncoding(cp.G, cp.K)}, nil
}

func (d colorDomain) PreserveTerms(enc domain.Encoding, p, prev any) error {
	ce, ok := enc.(*colorEncoding)
	if !ok {
		return fmt.Errorf("coloring: encoding is %T", enc)
	}
	col, err := d.solution(prev)
	if err != nil {
		return err
	}
	addPreserveTerms(ce.e, col)
	return nil
}

func (d colorDomain) EnableTerms(enc domain.Encoding, p any, opts domain.EnableOptions) error {
	ce, ok := enc.(*colorEncoding)
	if !ok {
		return fmt.Errorf("coloring: encoding is %T", enc)
	}
	addEnableTerms(ce.e, opts.Hard, opts.Weight)
	return nil
}

// edgeRowNames returns the names of the K conflict rows of edge {u,v}
// under the NewEncoding naming scheme (endpoints ordered low-high).
func edgeRowNames(u, v, k int) []string {
	if u > v {
		u, v = v, u
	}
	names := make([]string, k)
	for c := 1; c <= k; c++ {
		names[c-1] = fmt.Sprintf("e%d_%d_c%d", u, v, c)
	}
	return names
}

// EncodeDelta translates a change batch into row edits against the
// previous coloring encoding: edge additions append the K conflict rows,
// edge removals (and vertex removals, which only isolate) drop them. A
// batch containing add-vertex cannot be expressed as a delta — it grows
// the variable set — so it reports ok=false and the caller re-encodes.
func (d colorDomain) EncodeDelta(prev domain.Encoding, prevProblem any, changes []any) (*domain.Delta, bool) {
	ce, ok := prev.(*colorEncoding)
	if !ok {
		return nil, false
	}
	cp, ok := prevProblem.(*Problem)
	if !ok || cp == nil || cp.G == nil {
		return nil, false
	}
	k := ce.e.K
	if cp.K != k || cp.G.N != ce.e.Graph.N {
		return nil, false // problem drifted off the encoding's variable set
	}
	g := cp.G.Clone() // working copy: validates sequential batches
	out := &domain.Delta{}
	for _, raw := range changes {
		c, ok := raw.(Change)
		if !ok {
			return nil, false
		}
		switch c.Kind {
		case "add-edge":
			if c.U == c.V || c.U < 1 || c.V < 1 || c.U > g.N || c.V > g.N {
				return nil, false // invalid batch: let the rebuild path error
			}
			if !g.AddEdge(c.U, c.V) {
				continue // already present: encoding unchanged
			}
			u, v := c.U, c.V
			if u > v {
				u, v = v, u
			}
			for col := 1; col <= k; col++ {
				out.AddRows = append(out.AddRows, ilp.Row{
					Name: fmt.Sprintf("e%d_%d_c%d", u, v, col),
					Coefs: []ilp.Coef{
						{Var: ce.e.XCol(u, col), Val: 1},
						{Var: ce.e.XCol(v, col), Val: 1},
					},
					Sense: ilp.LE,
					RHS:   1,
				})
			}
		case "remove-edge":
			if !g.RemoveEdge(c.U, c.V) {
				return nil, false
			}
			for _, name := range edgeRowNames(c.U, c.V, k) {
				out.DropRow(name)
			}
		case "remove-vertex":
			if c.V < 1 || c.V > g.N {
				return nil, false
			}
			for _, u := range g.Neighbors(c.V) {
				for _, name := range edgeRowNames(u, c.V, k) {
					out.DropRow(name)
				}
			}
			g.RemoveVertex(c.V)
		default:
			// add-vertex (and anything unknown) grows or reshapes the
			// variable set: not expressible as a delta.
			return nil, false
		}
	}
	return out, true
}

// colorRegion recolors the conflicted vertices with the rest frozen,
// absorbing neighbor rings on escalation.
type colorRegion struct {
	p      *Problem
	prev   Coloring
	region map[int]bool
	full   bool
}

func (d colorDomain) AffectedRegion(p, prev any) (domain.Region, error) {
	cp, err := d.problem(p)
	if err != nil {
		return nil, err
	}
	col, err := d.solution(prev)
	if err != nil {
		return nil, err
	}
	region := map[int]bool{}
	for _, e := range cp.G.Edges() {
		if e[0] < len(col) && e[1] < len(col) && col[e[0]] != 0 && col[e[0]] == col[e[1]] {
			region[e[0]] = true
			region[e[1]] = true
		}
	}
	for v := 1; v <= cp.G.N; v++ {
		if v >= len(col) || col[v] < 1 || col[v] > cp.K {
			region[v] = true // uncolored or out-of-palette vertices join
		}
	}
	if len(region) == 0 {
		return nil, nil
	}
	grown := make(Coloring, cp.G.N+1)
	copy(grown, col)
	return &colorRegion{p: cp, prev: grown, region: region}, nil
}

func (r *colorRegion) Size() int {
	if r.full {
		return r.p.G.N
	}
	return len(r.region)
}

func (r *colorRegion) Full() bool { return r.full || len(r.region) >= r.p.G.N }

func (r *colorRegion) Encoding() (domain.Encoding, error) {
	e := NewEncoding(r.p.G, r.p.K)
	if !r.Full() {
		for v := 1; v <= r.p.G.N; v++ {
			if r.region[v] {
				continue
			}
			c := r.prev[v]
			if c < 1 || c > r.p.K {
				return nil, fmt.Errorf("coloring: frozen vertex %d has no valid color", v)
			}
			e.Model.AddRow(fmt.Sprintf("freeze_%d", v),
				[]ilp.Coef{{Var: e.XCol(v, c), Val: 1}}, ilp.GE, 1)
		}
	}
	return &colorEncoding{e: e}, nil
}

func (r *colorRegion) Merge(sub any) (any, error) {
	col, ok := sub.(Coloring)
	if !ok {
		return nil, fmt.Errorf("coloring: sub-solution is %T", sub)
	}
	return col, nil // the region model decodes the full coloring
}

func (r *colorRegion) Escalate() bool {
	if r.Full() {
		return false
	}
	grew := false
	var members []int
	for v := range r.region {
		members = append(members, v)
	}
	for _, v := range members {
		for _, u := range r.p.G.Neighbors(v) {
			if !r.region[u] {
				r.region[u] = true
				grew = true
			}
		}
	}
	return grew
}

func (r *colorRegion) EscalateToFull() { r.full = true }

func (d colorDomain) FingerprintProblem(w io.Writer, p any) {
	cp, err := d.problem(p)
	if err != nil {
		domain.WriteString(w, "coloring-bad-problem")
		return
	}
	edges := cp.G.Edges()
	domain.WriteInts(w, int64(cp.G.N), int64(cp.K), int64(len(edges)))
	for _, e := range edges {
		domain.WriteInts(w, int64(e[0]), int64(e[1]))
	}
}

func (d colorDomain) FingerprintSolution(w io.Writer, s any) {
	col, err := d.solution(s)
	if err != nil {
		domain.WriteString(w, "coloring-bad-solution")
		return
	}
	domain.WriteInts(w, int64(len(col)))
	for _, c := range col {
		domain.WriteInts(w, int64(c))
	}
}

// Conformance supplies the shared domain test fixture: a 5-vertex
// 3-colorable graph whose tightening batch adds edges forcing a local
// recolor.
func (colorDomain) Conformance() domain.Conformance {
	g := NewGraph(5)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	return domain.Conformance{
		Problem:     &Problem{G: g, K: 3},
		ProblemJSON: json.RawMessage(`{"vertices": 5, "k": 3, "edges": [[1,2],[2,3],[3,4],[4,5]]}`),
		Tightening: []any{
			Change{Kind: "add-edge", U: 1, V: 3},
			Change{Kind: "add-edge", U: 2, V: 4},
		},
		TighteningJSON: []json.RawMessage{
			json.RawMessage(`{"kind":"add-edge","u":1,"v":3}`),
			json.RawMessage(`{"kind":"add-edge","u":2,"v":4}`),
		},
		Relaxing: []any{
			Change{Kind: "add-vertex"},
			Change{Kind: "remove-edge", U: 4, V: 5},
		},
		Enable: domain.EnableOptions{Weight: 2},
		FlexK:  1,
	}
}
