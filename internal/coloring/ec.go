package coloring

import (
	"fmt"
	"sort"

	"ilpec/internal/ilp"
)

// This file adapts the three EC components to graph coloring, mirroring
// the SAT constructions of internal/core:
//
//   - enabling EC: every vertex should have a spare color — a color no
//     neighbor uses and the vertex itself does not use — so edge additions
//     can be absorbed by a local recolor (the coloring analogue of
//     2-satisfiability / flip support);
//   - fast EC: after edge additions, only the conflicted vertices and
//     their closure are re-colored;
//   - preserving EC: re-solve under an objective that maximizes the number
//     of vertices keeping their color.

// SpareColors returns, for vertex v, the colors in 1..k unused by v and by
// all of v's neighbors.
func SpareColors(g *Graph, col Coloring, v, k int) []int {
	used := make([]bool, k+1)
	if c := col[v]; c >= 1 && c <= k {
		used[c] = true
	}
	for _, u := range g.Neighbors(v) {
		if c := col[u]; c >= 1 && c <= k {
			used[c] = true
		}
	}
	var out []int
	for c := 1; c <= k; c++ {
		if !used[c] {
			out = append(out, c)
		}
	}
	return out
}

// FlexReport audits the enabling goal: the number of vertices with at
// least one spare color.
type FlexReport struct {
	Total     int
	WithSpare int
	// Inflexible lists vertices with no spare color.
	Inflexible []int
}

// VerifyFlexibility counts spare-color coverage of a coloring.
func VerifyFlexibility(g *Graph, col Coloring, k int) FlexReport {
	r := FlexReport{Total: g.N}
	for v := 1; v <= g.N; v++ {
		if len(SpareColors(g, col, v, k)) > 0 {
			r.WithSpare++
		} else {
			r.Inflexible = append(r.Inflexible, v)
		}
	}
	return r
}

// BuildEnable extends the k-coloring ILP with spare-color variables: s_{v,c}
// = 1 indicates color c is spare at v (neither v nor any neighbor uses it).
// The objective rewards each vertex that has some spare color with weight w
// (the objective-mode analogue of §5; a hard variant adds per-vertex rows).
func BuildEnable(g *Graph, k int, hard bool, w float64) *Encoding {
	e := NewEncoding(g, k)
	addEnableTerms(e, hard, w)
	return e
}

// addEnableTerms extends an existing coloring encoding with the
// spare-color variables and flexibility rewards (shared by BuildEnable
// and the domain adapter).
func addEnableTerms(e *Encoding, hard bool, w float64) {
	g, k := e.Graph, e.K
	m := e.Model
	if w <= 0 {
		w = 1
	}
	for v := 1; v <= g.N; v++ {
		var spareTerms []ilp.Coef
		for c := 1; c <= k; c++ {
			s := m.AddVar(fmt.Sprintf("s%d_%d", v, c), 0)
			// s ≤ 1 - x_{v,c} and s ≤ 1 - x_{u,c} for neighbors u.
			m.AddRow("", []ilp.Coef{{Var: s, Val: 1}, {Var: e.XCol(v, c), Val: 1}}, ilp.LE, 1)
			for _, u := range g.Neighbors(v) {
				m.AddRow("", []ilp.Coef{{Var: s, Val: 1}, {Var: e.XCol(u, c), Val: 1}}, ilp.LE, 1)
			}
			spareTerms = append(spareTerms, ilp.Coef{Var: s, Val: 1})
		}
		if hard {
			m.AddRow(fmt.Sprintf("spare_%d", v), spareTerms, ilp.GE, 1)
		} else {
			fv := m.AddVar(fmt.Sprintf("flex_%d", v), -w)
			terms := append(append([]ilp.Coef(nil), spareTerms...), ilp.Coef{Var: fv, Val: -1})
			m.AddRow(fmt.Sprintf("flexdef_%d", v), terms, ilp.GE, 0)
		}
	}
}

// SolveEnable colors g with spare-color flexibility. hard requires a spare
// at every vertex; otherwise flexibility is a weighted objective. warm,
// when non-nil, guides branching toward an existing coloring.
func SolveEnable(g *Graph, k int, hard bool, w float64, warm Coloring, opts ilp.Options) (Coloring, ilp.Result, error) {
	e := BuildEnable(g, k, hard, w)
	if warm != nil {
		// EncodeColoring sizes to the extended model: support and
		// flexibility columns stay 0 and merely guide branching.
		opts.WarmStart = e.EncodeColoring(warm)
	}
	res := ilp.Solve(e.Model, opts)
	switch res.Status {
	case ilp.Optimal, ilp.Feasible:
		col := e.Decode(res.Solution)
		if !col.Valid(g, k) {
			return nil, res, fmt.Errorf("coloring: enabled coloring invalid (internal error)")
		}
		return col, res, nil
	case ilp.Infeasible:
		return nil, res, fmt.Errorf("coloring: enabling infeasible for k=%d", k)
	default:
		return nil, res, fmt.Errorf("coloring: enabling solve hit limits (%s)", res.Status)
	}
}

// FastRecolorResult reports the outcome of FastRecolor.
type FastRecolorResult struct {
	AlreadyValid bool
	Coloring     Coloring
	// SubVertices is the number of vertices re-colored.
	SubVertices int
	// Escalations counts ring expansions needed.
	Escalations int
	ILP         ilp.Result
}

// FastRecolor implements the fast-EC analogue on coloring: given a changed
// graph and the previous coloring, it recolors only the endpoints of
// violated edges (growing the region on demand) with all other colors
// frozen.
func FastRecolor(g *Graph, prev Coloring, k int, opts ilp.Options) (*FastRecolorResult, error) {
	// Conflicted vertices.
	region := map[int]bool{}
	for _, e := range g.Edges() {
		if prev[e[0]] != 0 && prev[e[0]] == prev[e[1]] {
			region[e[0]] = true
			region[e[1]] = true
		}
	}
	for v := 1; v <= g.N; v++ {
		if v >= len(prev) || prev[v] < 1 || prev[v] > k {
			region[v] = true // uncolored or out-of-palette vertices join
		}
	}
	if len(region) == 0 {
		return &FastRecolorResult{AlreadyValid: true, Coloring: prev.Clone()}, nil
	}
	for esc := 0; ; esc++ {
		col, res, err := solveRegion(g, prev, k, region, opts)
		if err == nil {
			return &FastRecolorResult{
				Coloring: col, SubVertices: len(region), Escalations: esc, ILP: res,
			}, nil
		}
		// Escalate: absorb all neighbors of the region.
		grew := false
		var members []int
		for v := range region {
			members = append(members, v)
		}
		sort.Ints(members)
		for _, v := range members {
			for _, u := range g.Neighbors(v) {
				if !region[u] {
					region[u] = true
					grew = true
				}
			}
		}
		if !grew {
			return nil, fmt.Errorf("coloring: fast recolor infeasible even on full region: %w", err)
		}
	}
}

// solveRegion recolors exactly the region vertices, freezing the rest.
func solveRegion(g *Graph, prev Coloring, k int, region map[int]bool, opts ilp.Options) (Coloring, ilp.Result, error) {
	e := NewEncoding(g, k)
	m := e.Model
	for v := 1; v <= g.N; v++ {
		if region[v] {
			continue
		}
		c := prev[v]
		if c < 1 || c > k {
			return nil, ilp.Result{}, fmt.Errorf("coloring: frozen vertex %d has no valid color", v)
		}
		m.AddRow(fmt.Sprintf("freeze_%d", v), []ilp.Coef{{Var: e.XCol(v, c), Val: 1}}, ilp.GE, 1)
	}
	opts.WarmStart = e.EncodeColoring(prev)
	res := ilp.Solve(m, opts)
	switch res.Status {
	case ilp.Optimal, ilp.Feasible:
		col := e.Decode(res.Solution)
		if !col.Valid(g, k) {
			return nil, res, fmt.Errorf("coloring: recolored coloring invalid (internal error)")
		}
		return col, res, nil
	case ilp.Infeasible:
		return nil, res, fmt.Errorf("coloring: region recolor infeasible")
	default:
		return nil, res, fmt.Errorf("coloring: region recolor hit limits (%s)", res.Status)
	}
}

// addPreserveTerms replaces the palette-minimizing objective of an
// existing encoding with pure preservation against prev (shared by
// PreserveRecolor and the domain adapter).
func addPreserveTerms(e *Encoding, prev Coloring) {
	m, g, k := e.Model, e.Graph, e.K
	for c := 1; c <= k; c++ {
		m.SetObj(e.YCol(c), 0)
	}
	for v := 1; v <= g.N && v < len(prev); v++ {
		if c := prev[v]; c >= 1 && c <= k {
			m.SetObj(e.XCol(v, c), -1) // maximize matches
		}
	}
}

// PreserveRecolor re-solves the whole instance maximizing the number of
// vertices that keep their previous color (§7 analogue).
func PreserveRecolor(g *Graph, prev Coloring, k int, opts ilp.Options) (Coloring, ilp.Result, error) {
	e := NewEncoding(g, k)
	addPreserveTerms(e, prev)
	opts.WarmStart = e.EncodeColoring(prev)
	res := ilp.Solve(e.Model, opts)
	switch res.Status {
	case ilp.Optimal, ilp.Feasible:
		col := e.Decode(res.Solution)
		if !col.Valid(g, k) {
			return nil, res, fmt.Errorf("coloring: preserving coloring invalid (internal error)")
		}
		return col, res, nil
	case ilp.Infeasible:
		return nil, res, fmt.Errorf("coloring: graph is not %d-colorable", k)
	default:
		return nil, res, fmt.Errorf("coloring: preserving solve hit limits (%s)", res.Status)
	}
}
